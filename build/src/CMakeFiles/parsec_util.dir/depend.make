# Empty dependencies file for parsec_util.
# This may be replaced when dependencies are built.
