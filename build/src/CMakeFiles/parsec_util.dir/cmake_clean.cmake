file(REMOVE_RECURSE
  "CMakeFiles/parsec_util.dir/util/sexpr.cpp.o"
  "CMakeFiles/parsec_util.dir/util/sexpr.cpp.o.d"
  "CMakeFiles/parsec_util.dir/util/table.cpp.o"
  "CMakeFiles/parsec_util.dir/util/table.cpp.o.d"
  "libparsec_util.a"
  "libparsec_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsec_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
