file(REMOVE_RECURSE
  "libparsec_util.a"
)
