file(REMOVE_RECURSE
  "libparsec_engine.a"
)
