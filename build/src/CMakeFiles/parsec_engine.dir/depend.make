# Empty dependencies file for parsec_engine.
# This may be replaced when dependencies are built.
