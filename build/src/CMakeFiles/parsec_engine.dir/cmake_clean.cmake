file(REMOVE_RECURSE
  "CMakeFiles/parsec_engine.dir/parsec/maspar_parser.cpp.o"
  "CMakeFiles/parsec_engine.dir/parsec/maspar_parser.cpp.o.d"
  "CMakeFiles/parsec_engine.dir/parsec/mesh_parser.cpp.o"
  "CMakeFiles/parsec_engine.dir/parsec/mesh_parser.cpp.o.d"
  "CMakeFiles/parsec_engine.dir/parsec/omp_parser.cpp.o"
  "CMakeFiles/parsec_engine.dir/parsec/omp_parser.cpp.o.d"
  "CMakeFiles/parsec_engine.dir/parsec/pram_parser.cpp.o"
  "CMakeFiles/parsec_engine.dir/parsec/pram_parser.cpp.o.d"
  "libparsec_engine.a"
  "libparsec_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsec_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
