file(REMOVE_RECURSE
  "CMakeFiles/parsec_grammars.dir/grammars/anbncn_grammar.cpp.o"
  "CMakeFiles/parsec_grammars.dir/grammars/anbncn_grammar.cpp.o.d"
  "CMakeFiles/parsec_grammars.dir/grammars/cfg_workloads.cpp.o"
  "CMakeFiles/parsec_grammars.dir/grammars/cfg_workloads.cpp.o.d"
  "CMakeFiles/parsec_grammars.dir/grammars/english_grammar.cpp.o"
  "CMakeFiles/parsec_grammars.dir/grammars/english_grammar.cpp.o.d"
  "CMakeFiles/parsec_grammars.dir/grammars/grammar_io.cpp.o"
  "CMakeFiles/parsec_grammars.dir/grammars/grammar_io.cpp.o.d"
  "CMakeFiles/parsec_grammars.dir/grammars/sentence_gen.cpp.o"
  "CMakeFiles/parsec_grammars.dir/grammars/sentence_gen.cpp.o.d"
  "CMakeFiles/parsec_grammars.dir/grammars/toy_grammar.cpp.o"
  "CMakeFiles/parsec_grammars.dir/grammars/toy_grammar.cpp.o.d"
  "libparsec_grammars.a"
  "libparsec_grammars.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsec_grammars.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
