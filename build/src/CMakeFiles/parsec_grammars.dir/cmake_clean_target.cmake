file(REMOVE_RECURSE
  "libparsec_grammars.a"
)
