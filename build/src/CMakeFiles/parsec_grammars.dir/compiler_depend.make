# Empty compiler generated dependencies file for parsec_grammars.
# This may be replaced when dependencies are built.
