
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grammars/anbncn_grammar.cpp" "src/CMakeFiles/parsec_grammars.dir/grammars/anbncn_grammar.cpp.o" "gcc" "src/CMakeFiles/parsec_grammars.dir/grammars/anbncn_grammar.cpp.o.d"
  "/root/repo/src/grammars/cfg_workloads.cpp" "src/CMakeFiles/parsec_grammars.dir/grammars/cfg_workloads.cpp.o" "gcc" "src/CMakeFiles/parsec_grammars.dir/grammars/cfg_workloads.cpp.o.d"
  "/root/repo/src/grammars/english_grammar.cpp" "src/CMakeFiles/parsec_grammars.dir/grammars/english_grammar.cpp.o" "gcc" "src/CMakeFiles/parsec_grammars.dir/grammars/english_grammar.cpp.o.d"
  "/root/repo/src/grammars/grammar_io.cpp" "src/CMakeFiles/parsec_grammars.dir/grammars/grammar_io.cpp.o" "gcc" "src/CMakeFiles/parsec_grammars.dir/grammars/grammar_io.cpp.o.d"
  "/root/repo/src/grammars/sentence_gen.cpp" "src/CMakeFiles/parsec_grammars.dir/grammars/sentence_gen.cpp.o" "gcc" "src/CMakeFiles/parsec_grammars.dir/grammars/sentence_gen.cpp.o.d"
  "/root/repo/src/grammars/toy_grammar.cpp" "src/CMakeFiles/parsec_grammars.dir/grammars/toy_grammar.cpp.o" "gcc" "src/CMakeFiles/parsec_grammars.dir/grammars/toy_grammar.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/parsec_cdg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/parsec_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/parsec_pram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/parsec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
