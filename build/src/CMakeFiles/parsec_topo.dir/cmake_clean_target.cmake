file(REMOVE_RECURSE
  "libparsec_topo.a"
)
