# Empty dependencies file for parsec_topo.
# This may be replaced when dependencies are built.
