file(REMOVE_RECURSE
  "CMakeFiles/parsec_topo.dir/topo/reduction.cpp.o"
  "CMakeFiles/parsec_topo.dir/topo/reduction.cpp.o.d"
  "libparsec_topo.a"
  "libparsec_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsec_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
