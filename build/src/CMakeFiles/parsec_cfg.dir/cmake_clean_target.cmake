file(REMOVE_RECURSE
  "libparsec_cfg.a"
)
