# Empty compiler generated dependencies file for parsec_cfg.
# This may be replaced when dependencies are built.
