file(REMOVE_RECURSE
  "CMakeFiles/parsec_cfg.dir/cfg/cfg.cpp.o"
  "CMakeFiles/parsec_cfg.dir/cfg/cfg.cpp.o.d"
  "CMakeFiles/parsec_cfg.dir/cfg/cnf.cpp.o"
  "CMakeFiles/parsec_cfg.dir/cfg/cnf.cpp.o.d"
  "CMakeFiles/parsec_cfg.dir/cfg/cyk.cpp.o"
  "CMakeFiles/parsec_cfg.dir/cfg/cyk.cpp.o.d"
  "CMakeFiles/parsec_cfg.dir/cfg/cyk_mesh.cpp.o"
  "CMakeFiles/parsec_cfg.dir/cfg/cyk_mesh.cpp.o.d"
  "CMakeFiles/parsec_cfg.dir/cfg/cyk_pram.cpp.o"
  "CMakeFiles/parsec_cfg.dir/cfg/cyk_pram.cpp.o.d"
  "CMakeFiles/parsec_cfg.dir/cfg/parse_tree.cpp.o"
  "CMakeFiles/parsec_cfg.dir/cfg/parse_tree.cpp.o.d"
  "libparsec_cfg.a"
  "libparsec_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsec_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
