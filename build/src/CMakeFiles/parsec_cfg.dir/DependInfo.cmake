
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cfg/cfg.cpp" "src/CMakeFiles/parsec_cfg.dir/cfg/cfg.cpp.o" "gcc" "src/CMakeFiles/parsec_cfg.dir/cfg/cfg.cpp.o.d"
  "/root/repo/src/cfg/cnf.cpp" "src/CMakeFiles/parsec_cfg.dir/cfg/cnf.cpp.o" "gcc" "src/CMakeFiles/parsec_cfg.dir/cfg/cnf.cpp.o.d"
  "/root/repo/src/cfg/cyk.cpp" "src/CMakeFiles/parsec_cfg.dir/cfg/cyk.cpp.o" "gcc" "src/CMakeFiles/parsec_cfg.dir/cfg/cyk.cpp.o.d"
  "/root/repo/src/cfg/cyk_mesh.cpp" "src/CMakeFiles/parsec_cfg.dir/cfg/cyk_mesh.cpp.o" "gcc" "src/CMakeFiles/parsec_cfg.dir/cfg/cyk_mesh.cpp.o.d"
  "/root/repo/src/cfg/cyk_pram.cpp" "src/CMakeFiles/parsec_cfg.dir/cfg/cyk_pram.cpp.o" "gcc" "src/CMakeFiles/parsec_cfg.dir/cfg/cyk_pram.cpp.o.d"
  "/root/repo/src/cfg/parse_tree.cpp" "src/CMakeFiles/parsec_cfg.dir/cfg/parse_tree.cpp.o" "gcc" "src/CMakeFiles/parsec_cfg.dir/cfg/parse_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/parsec_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/parsec_cdg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/parsec_pram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
