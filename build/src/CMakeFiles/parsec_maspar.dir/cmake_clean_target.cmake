file(REMOVE_RECURSE
  "libparsec_maspar.a"
)
