# Empty dependencies file for parsec_maspar.
# This may be replaced when dependencies are built.
