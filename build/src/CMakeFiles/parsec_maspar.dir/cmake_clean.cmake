file(REMOVE_RECURSE
  "CMakeFiles/parsec_maspar.dir/maspar/cost_model.cpp.o"
  "CMakeFiles/parsec_maspar.dir/maspar/cost_model.cpp.o.d"
  "CMakeFiles/parsec_maspar.dir/maspar/layout.cpp.o"
  "CMakeFiles/parsec_maspar.dir/maspar/layout.cpp.o.d"
  "CMakeFiles/parsec_maspar.dir/maspar/machine.cpp.o"
  "CMakeFiles/parsec_maspar.dir/maspar/machine.cpp.o.d"
  "libparsec_maspar.a"
  "libparsec_maspar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsec_maspar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
