
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cdg/ac4.cpp" "src/CMakeFiles/parsec_cdg.dir/cdg/ac4.cpp.o" "gcc" "src/CMakeFiles/parsec_cdg.dir/cdg/ac4.cpp.o.d"
  "/root/repo/src/cdg/constraint.cpp" "src/CMakeFiles/parsec_cdg.dir/cdg/constraint.cpp.o" "gcc" "src/CMakeFiles/parsec_cdg.dir/cdg/constraint.cpp.o.d"
  "/root/repo/src/cdg/constraint_eval.cpp" "src/CMakeFiles/parsec_cdg.dir/cdg/constraint_eval.cpp.o" "gcc" "src/CMakeFiles/parsec_cdg.dir/cdg/constraint_eval.cpp.o.d"
  "/root/repo/src/cdg/constraint_parser.cpp" "src/CMakeFiles/parsec_cdg.dir/cdg/constraint_parser.cpp.o" "gcc" "src/CMakeFiles/parsec_cdg.dir/cdg/constraint_parser.cpp.o.d"
  "/root/repo/src/cdg/diagnose.cpp" "src/CMakeFiles/parsec_cdg.dir/cdg/diagnose.cpp.o" "gcc" "src/CMakeFiles/parsec_cdg.dir/cdg/diagnose.cpp.o.d"
  "/root/repo/src/cdg/extract.cpp" "src/CMakeFiles/parsec_cdg.dir/cdg/extract.cpp.o" "gcc" "src/CMakeFiles/parsec_cdg.dir/cdg/extract.cpp.o.d"
  "/root/repo/src/cdg/grammar.cpp" "src/CMakeFiles/parsec_cdg.dir/cdg/grammar.cpp.o" "gcc" "src/CMakeFiles/parsec_cdg.dir/cdg/grammar.cpp.o.d"
  "/root/repo/src/cdg/lexicon.cpp" "src/CMakeFiles/parsec_cdg.dir/cdg/lexicon.cpp.o" "gcc" "src/CMakeFiles/parsec_cdg.dir/cdg/lexicon.cpp.o.d"
  "/root/repo/src/cdg/network.cpp" "src/CMakeFiles/parsec_cdg.dir/cdg/network.cpp.o" "gcc" "src/CMakeFiles/parsec_cdg.dir/cdg/network.cpp.o.d"
  "/root/repo/src/cdg/parser.cpp" "src/CMakeFiles/parsec_cdg.dir/cdg/parser.cpp.o" "gcc" "src/CMakeFiles/parsec_cdg.dir/cdg/parser.cpp.o.d"
  "/root/repo/src/cdg/printer.cpp" "src/CMakeFiles/parsec_cdg.dir/cdg/printer.cpp.o" "gcc" "src/CMakeFiles/parsec_cdg.dir/cdg/printer.cpp.o.d"
  "/root/repo/src/cdg/symbols.cpp" "src/CMakeFiles/parsec_cdg.dir/cdg/symbols.cpp.o" "gcc" "src/CMakeFiles/parsec_cdg.dir/cdg/symbols.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/parsec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
