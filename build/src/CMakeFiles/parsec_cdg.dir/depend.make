# Empty dependencies file for parsec_cdg.
# This may be replaced when dependencies are built.
