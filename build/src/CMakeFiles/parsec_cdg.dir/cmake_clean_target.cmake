file(REMOVE_RECURSE
  "libparsec_cdg.a"
)
