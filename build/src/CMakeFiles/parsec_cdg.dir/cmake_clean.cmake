file(REMOVE_RECURSE
  "CMakeFiles/parsec_cdg.dir/cdg/ac4.cpp.o"
  "CMakeFiles/parsec_cdg.dir/cdg/ac4.cpp.o.d"
  "CMakeFiles/parsec_cdg.dir/cdg/constraint.cpp.o"
  "CMakeFiles/parsec_cdg.dir/cdg/constraint.cpp.o.d"
  "CMakeFiles/parsec_cdg.dir/cdg/constraint_eval.cpp.o"
  "CMakeFiles/parsec_cdg.dir/cdg/constraint_eval.cpp.o.d"
  "CMakeFiles/parsec_cdg.dir/cdg/constraint_parser.cpp.o"
  "CMakeFiles/parsec_cdg.dir/cdg/constraint_parser.cpp.o.d"
  "CMakeFiles/parsec_cdg.dir/cdg/diagnose.cpp.o"
  "CMakeFiles/parsec_cdg.dir/cdg/diagnose.cpp.o.d"
  "CMakeFiles/parsec_cdg.dir/cdg/extract.cpp.o"
  "CMakeFiles/parsec_cdg.dir/cdg/extract.cpp.o.d"
  "CMakeFiles/parsec_cdg.dir/cdg/grammar.cpp.o"
  "CMakeFiles/parsec_cdg.dir/cdg/grammar.cpp.o.d"
  "CMakeFiles/parsec_cdg.dir/cdg/lexicon.cpp.o"
  "CMakeFiles/parsec_cdg.dir/cdg/lexicon.cpp.o.d"
  "CMakeFiles/parsec_cdg.dir/cdg/network.cpp.o"
  "CMakeFiles/parsec_cdg.dir/cdg/network.cpp.o.d"
  "CMakeFiles/parsec_cdg.dir/cdg/parser.cpp.o"
  "CMakeFiles/parsec_cdg.dir/cdg/parser.cpp.o.d"
  "CMakeFiles/parsec_cdg.dir/cdg/printer.cpp.o"
  "CMakeFiles/parsec_cdg.dir/cdg/printer.cpp.o.d"
  "CMakeFiles/parsec_cdg.dir/cdg/symbols.cpp.o"
  "CMakeFiles/parsec_cdg.dir/cdg/symbols.cpp.o.d"
  "libparsec_cdg.a"
  "libparsec_cdg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsec_cdg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
