file(REMOVE_RECURSE
  "CMakeFiles/parsec_pram.dir/pram/machine.cpp.o"
  "CMakeFiles/parsec_pram.dir/pram/machine.cpp.o.d"
  "libparsec_pram.a"
  "libparsec_pram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsec_pram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
