# Empty dependencies file for parsec_pram.
# This may be replaced when dependencies are built.
