file(REMOVE_RECURSE
  "libparsec_pram.a"
)
