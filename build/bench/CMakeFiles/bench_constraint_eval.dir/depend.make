# Empty dependencies file for bench_constraint_eval.
# This may be replaced when dependencies are built.
