file(REMOVE_RECURSE
  "CMakeFiles/bench_constraint_eval.dir/bench_constraint_eval.cpp.o"
  "CMakeFiles/bench_constraint_eval.dir/bench_constraint_eval.cpp.o.d"
  "bench_constraint_eval"
  "bench_constraint_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_constraint_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
