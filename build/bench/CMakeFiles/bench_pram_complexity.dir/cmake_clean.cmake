file(REMOVE_RECURSE
  "CMakeFiles/bench_pram_complexity.dir/bench_pram_complexity.cpp.o"
  "CMakeFiles/bench_pram_complexity.dir/bench_pram_complexity.cpp.o.d"
  "bench_pram_complexity"
  "bench_pram_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pram_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
