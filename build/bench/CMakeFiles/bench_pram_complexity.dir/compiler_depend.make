# Empty compiler generated dependencies file for bench_pram_complexity.
# This may be replaced when dependencies are built.
