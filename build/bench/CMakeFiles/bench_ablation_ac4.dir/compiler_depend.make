# Empty compiler generated dependencies file for bench_ablation_ac4.
# This may be replaced when dependencies are built.
