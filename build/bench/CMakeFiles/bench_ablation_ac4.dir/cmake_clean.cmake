file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ac4.dir/bench_ablation_ac4.cpp.o"
  "CMakeFiles/bench_ablation_ac4.dir/bench_ablation_ac4.cpp.o.d"
  "bench_ablation_ac4"
  "bench_ablation_ac4.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ac4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
