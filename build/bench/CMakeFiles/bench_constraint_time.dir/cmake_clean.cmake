file(REMOVE_RECURSE
  "CMakeFiles/bench_constraint_time.dir/bench_constraint_time.cpp.o"
  "CMakeFiles/bench_constraint_time.dir/bench_constraint_time.cpp.o.d"
  "bench_constraint_time"
  "bench_constraint_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_constraint_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
