# Empty compiler generated dependencies file for bench_constraint_time.
# This may be replaced when dependencies are built.
