file(REMOVE_RECURSE
  "CMakeFiles/bench_k_scaling.dir/bench_k_scaling.cpp.o"
  "CMakeFiles/bench_k_scaling.dir/bench_k_scaling.cpp.o.d"
  "bench_k_scaling"
  "bench_k_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_k_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
