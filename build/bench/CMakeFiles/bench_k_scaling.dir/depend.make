# Empty dependencies file for bench_k_scaling.
# This may be replaced when dependencies are built.
