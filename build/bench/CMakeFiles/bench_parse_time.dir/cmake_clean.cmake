file(REMOVE_RECURSE
  "CMakeFiles/bench_parse_time.dir/bench_parse_time.cpp.o"
  "CMakeFiles/bench_parse_time.dir/bench_parse_time.cpp.o.d"
  "bench_parse_time"
  "bench_parse_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_parse_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
