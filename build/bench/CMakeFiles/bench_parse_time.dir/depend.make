# Empty dependencies file for bench_parse_time.
# This may be replaced when dependencies are built.
