file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_zeroing.dir/bench_ablation_zeroing.cpp.o"
  "CMakeFiles/bench_ablation_zeroing.dir/bench_ablation_zeroing.cpp.o.d"
  "bench_ablation_zeroing"
  "bench_ablation_zeroing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_zeroing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
