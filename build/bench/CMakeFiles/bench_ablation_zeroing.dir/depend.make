# Empty dependencies file for bench_ablation_zeroing.
# This may be replaced when dependencies are built.
