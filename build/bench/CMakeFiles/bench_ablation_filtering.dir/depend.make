# Empty dependencies file for bench_ablation_filtering.
# This may be replaced when dependencies are built.
