# Empty compiler generated dependencies file for bench_scaling_pes.
# This may be replaced when dependencies are built.
