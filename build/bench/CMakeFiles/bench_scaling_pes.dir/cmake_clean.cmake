file(REMOVE_RECURSE
  "CMakeFiles/bench_scaling_pes.dir/bench_scaling_pes.cpp.o"
  "CMakeFiles/bench_scaling_pes.dir/bench_scaling_pes.cpp.o.d"
  "bench_scaling_pes"
  "bench_scaling_pes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_pes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
