file(REMOVE_RECURSE
  "CMakeFiles/bench_host_parallel.dir/bench_host_parallel.cpp.o"
  "CMakeFiles/bench_host_parallel.dir/bench_host_parallel.cpp.o.d"
  "bench_host_parallel"
  "bench_host_parallel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_host_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
