# Empty compiler generated dependencies file for maspar_demo.
# This may be replaced when dependencies are built.
