file(REMOVE_RECURSE
  "CMakeFiles/maspar_demo.dir/maspar_demo.cpp.o"
  "CMakeFiles/maspar_demo.dir/maspar_demo.cpp.o.d"
  "maspar_demo"
  "maspar_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maspar_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
