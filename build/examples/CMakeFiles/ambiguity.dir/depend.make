# Empty dependencies file for ambiguity.
# This may be replaced when dependencies are built.
