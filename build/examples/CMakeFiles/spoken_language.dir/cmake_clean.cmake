file(REMOVE_RECURSE
  "CMakeFiles/spoken_language.dir/spoken_language.cpp.o"
  "CMakeFiles/spoken_language.dir/spoken_language.cpp.o.d"
  "spoken_language"
  "spoken_language.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spoken_language.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
