# Empty dependencies file for spoken_language.
# This may be replaced when dependencies are built.
