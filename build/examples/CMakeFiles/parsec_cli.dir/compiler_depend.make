# Empty compiler generated dependencies file for parsec_cli.
# This may be replaced when dependencies are built.
