file(REMOVE_RECURSE
  "CMakeFiles/parsec_cli.dir/parsec_cli.cpp.o"
  "CMakeFiles/parsec_cli.dir/parsec_cli.cpp.o.d"
  "parsec_cli"
  "parsec_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parsec_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
