file(REMOVE_RECURSE
  "CMakeFiles/beyond_cfg.dir/beyond_cfg.cpp.o"
  "CMakeFiles/beyond_cfg.dir/beyond_cfg.cpp.o.d"
  "beyond_cfg"
  "beyond_cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/beyond_cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
