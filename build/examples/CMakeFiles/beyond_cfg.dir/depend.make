# Empty dependencies file for beyond_cfg.
# This may be replaced when dependencies are built.
