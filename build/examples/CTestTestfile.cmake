# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_ambiguity "/root/repo/build/examples/ambiguity")
set_tests_properties(example_ambiguity PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_maspar_demo "/root/repo/build/examples/maspar_demo")
set_tests_properties(example_maspar_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_beyond_cfg "/root/repo/build/examples/beyond_cfg")
set_tests_properties(example_beyond_cfg PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_spoken_language "/root/repo/build/examples/spoken_language")
set_tests_properties(example_spoken_language PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_accept "/root/repo/build/examples/parsec_cli" "--builtin" "english" "the" "dog" "runs")
set_tests_properties(example_cli_accept PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_maspar "/root/repo/build/examples/parsec_cli" "--builtin" "toy" "--engine" "maspar" "The" "program" "runs")
set_tests_properties(example_cli_maspar PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_reject "/root/repo/build/examples/parsec_cli" "--builtin" "english" "dog" "the" "runs")
set_tests_properties(example_cli_reject PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_grammar_file "/root/repo/build/examples/parsec_cli" "--grammar" "/root/repo/grammars/toy.cdg" "The" "program" "runs")
set_tests_properties(example_cli_grammar_file PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_corpus_stats "/root/repo/build/examples/corpus_stats" "40" "12")
set_tests_properties(example_corpus_stats PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_dot "/root/repo/build/examples/parsec_cli" "--builtin" "toy" "--dot" "The" "program" "runs")
set_tests_properties(example_cli_dot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
