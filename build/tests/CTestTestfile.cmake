# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/cdg_test[1]_include.cmake")
include("/root/repo/build/tests/golden_figures_test[1]_include.cmake")
include("/root/repo/build/tests/pram_test[1]_include.cmake")
include("/root/repo/build/tests/maspar_test[1]_include.cmake")
include("/root/repo/build/tests/topo_test[1]_include.cmake")
include("/root/repo/build/tests/cfg_test[1]_include.cmake")
include("/root/repo/build/tests/grammars_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
