file(REMOVE_RECURSE
  "CMakeFiles/grammars_test.dir/grammars/anbncn_test.cpp.o"
  "CMakeFiles/grammars_test.dir/grammars/anbncn_test.cpp.o.d"
  "CMakeFiles/grammars_test.dir/grammars/english_grammar_test.cpp.o"
  "CMakeFiles/grammars_test.dir/grammars/english_grammar_test.cpp.o.d"
  "CMakeFiles/grammars_test.dir/grammars/grammar_file_test.cpp.o"
  "CMakeFiles/grammars_test.dir/grammars/grammar_file_test.cpp.o.d"
  "CMakeFiles/grammars_test.dir/grammars/grammar_io_test.cpp.o"
  "CMakeFiles/grammars_test.dir/grammars/grammar_io_test.cpp.o.d"
  "CMakeFiles/grammars_test.dir/grammars/sentence_gen_test.cpp.o"
  "CMakeFiles/grammars_test.dir/grammars/sentence_gen_test.cpp.o.d"
  "grammars_test"
  "grammars_test.pdb"
  "grammars_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grammars_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
