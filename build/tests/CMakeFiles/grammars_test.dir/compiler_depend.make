# Empty compiler generated dependencies file for grammars_test.
# This may be replaced when dependencies are built.
