file(REMOVE_RECURSE
  "CMakeFiles/engine_test.dir/parsec/determinism_test.cpp.o"
  "CMakeFiles/engine_test.dir/parsec/determinism_test.cpp.o.d"
  "CMakeFiles/engine_test.dir/parsec/engines_equivalence_test.cpp.o"
  "CMakeFiles/engine_test.dir/parsec/engines_equivalence_test.cpp.o.d"
  "CMakeFiles/engine_test.dir/parsec/english_engines_test.cpp.o"
  "CMakeFiles/engine_test.dir/parsec/english_engines_test.cpp.o.d"
  "CMakeFiles/engine_test.dir/parsec/maspar_parser_test.cpp.o"
  "CMakeFiles/engine_test.dir/parsec/maspar_parser_test.cpp.o.d"
  "CMakeFiles/engine_test.dir/parsec/pram_parser_test.cpp.o"
  "CMakeFiles/engine_test.dir/parsec/pram_parser_test.cpp.o.d"
  "CMakeFiles/engine_test.dir/parsec/random_sentences_test.cpp.o"
  "CMakeFiles/engine_test.dir/parsec/random_sentences_test.cpp.o.d"
  "CMakeFiles/engine_test.dir/parsec/topology_parser_test.cpp.o"
  "CMakeFiles/engine_test.dir/parsec/topology_parser_test.cpp.o.d"
  "engine_test"
  "engine_test.pdb"
  "engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
