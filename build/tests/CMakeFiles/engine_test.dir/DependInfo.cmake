
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/parsec/determinism_test.cpp" "tests/CMakeFiles/engine_test.dir/parsec/determinism_test.cpp.o" "gcc" "tests/CMakeFiles/engine_test.dir/parsec/determinism_test.cpp.o.d"
  "/root/repo/tests/parsec/engines_equivalence_test.cpp" "tests/CMakeFiles/engine_test.dir/parsec/engines_equivalence_test.cpp.o" "gcc" "tests/CMakeFiles/engine_test.dir/parsec/engines_equivalence_test.cpp.o.d"
  "/root/repo/tests/parsec/english_engines_test.cpp" "tests/CMakeFiles/engine_test.dir/parsec/english_engines_test.cpp.o" "gcc" "tests/CMakeFiles/engine_test.dir/parsec/english_engines_test.cpp.o.d"
  "/root/repo/tests/parsec/maspar_parser_test.cpp" "tests/CMakeFiles/engine_test.dir/parsec/maspar_parser_test.cpp.o" "gcc" "tests/CMakeFiles/engine_test.dir/parsec/maspar_parser_test.cpp.o.d"
  "/root/repo/tests/parsec/pram_parser_test.cpp" "tests/CMakeFiles/engine_test.dir/parsec/pram_parser_test.cpp.o" "gcc" "tests/CMakeFiles/engine_test.dir/parsec/pram_parser_test.cpp.o.d"
  "/root/repo/tests/parsec/random_sentences_test.cpp" "tests/CMakeFiles/engine_test.dir/parsec/random_sentences_test.cpp.o" "gcc" "tests/CMakeFiles/engine_test.dir/parsec/random_sentences_test.cpp.o.d"
  "/root/repo/tests/parsec/topology_parser_test.cpp" "tests/CMakeFiles/engine_test.dir/parsec/topology_parser_test.cpp.o" "gcc" "tests/CMakeFiles/engine_test.dir/parsec/topology_parser_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/parsec_grammars.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/parsec_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/parsec_maspar.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/parsec_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/parsec_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/parsec_cdg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/parsec_pram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/parsec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
