file(REMOVE_RECURSE
  "CMakeFiles/maspar_test.dir/maspar/layout_test.cpp.o"
  "CMakeFiles/maspar_test.dir/maspar/layout_test.cpp.o.d"
  "CMakeFiles/maspar_test.dir/maspar/machine_property_test.cpp.o"
  "CMakeFiles/maspar_test.dir/maspar/machine_property_test.cpp.o.d"
  "CMakeFiles/maspar_test.dir/maspar/machine_test.cpp.o"
  "CMakeFiles/maspar_test.dir/maspar/machine_test.cpp.o.d"
  "CMakeFiles/maspar_test.dir/maspar/plural_test.cpp.o"
  "CMakeFiles/maspar_test.dir/maspar/plural_test.cpp.o.d"
  "maspar_test"
  "maspar_test.pdb"
  "maspar_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/maspar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
