# Empty compiler generated dependencies file for maspar_test.
# This may be replaced when dependencies are built.
