
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/bitmatrix_test.cpp" "tests/CMakeFiles/util_test.dir/util/bitmatrix_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/bitmatrix_test.cpp.o.d"
  "/root/repo/tests/util/bitset_test.cpp" "tests/CMakeFiles/util_test.dir/util/bitset_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/bitset_test.cpp.o.d"
  "/root/repo/tests/util/rng_stats_test.cpp" "tests/CMakeFiles/util_test.dir/util/rng_stats_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/rng_stats_test.cpp.o.d"
  "/root/repo/tests/util/sexpr_test.cpp" "tests/CMakeFiles/util_test.dir/util/sexpr_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/sexpr_test.cpp.o.d"
  "/root/repo/tests/util/table_test.cpp" "tests/CMakeFiles/util_test.dir/util/table_test.cpp.o" "gcc" "tests/CMakeFiles/util_test.dir/util/table_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/parsec_grammars.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/parsec_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/parsec_maspar.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/parsec_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/parsec_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/parsec_cdg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/parsec_pram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/parsec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
