
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cdg/ac4_test.cpp" "tests/CMakeFiles/cdg_test.dir/cdg/ac4_test.cpp.o" "gcc" "tests/CMakeFiles/cdg_test.dir/cdg/ac4_test.cpp.o.d"
  "/root/repo/tests/cdg/constraint_eval_test.cpp" "tests/CMakeFiles/cdg_test.dir/cdg/constraint_eval_test.cpp.o" "gcc" "tests/CMakeFiles/cdg_test.dir/cdg/constraint_eval_test.cpp.o.d"
  "/root/repo/tests/cdg/constraint_fuzz_test.cpp" "tests/CMakeFiles/cdg_test.dir/cdg/constraint_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/cdg_test.dir/cdg/constraint_fuzz_test.cpp.o.d"
  "/root/repo/tests/cdg/constraint_parser_test.cpp" "tests/CMakeFiles/cdg_test.dir/cdg/constraint_parser_test.cpp.o" "gcc" "tests/CMakeFiles/cdg_test.dir/cdg/constraint_parser_test.cpp.o.d"
  "/root/repo/tests/cdg/diagnose_test.cpp" "tests/CMakeFiles/cdg_test.dir/cdg/diagnose_test.cpp.o" "gcc" "tests/CMakeFiles/cdg_test.dir/cdg/diagnose_test.cpp.o.d"
  "/root/repo/tests/cdg/extract_test.cpp" "tests/CMakeFiles/cdg_test.dir/cdg/extract_test.cpp.o" "gcc" "tests/CMakeFiles/cdg_test.dir/cdg/extract_test.cpp.o.d"
  "/root/repo/tests/cdg/grammar_test.cpp" "tests/CMakeFiles/cdg_test.dir/cdg/grammar_test.cpp.o" "gcc" "tests/CMakeFiles/cdg_test.dir/cdg/grammar_test.cpp.o.d"
  "/root/repo/tests/cdg/lexicon_test.cpp" "tests/CMakeFiles/cdg_test.dir/cdg/lexicon_test.cpp.o" "gcc" "tests/CMakeFiles/cdg_test.dir/cdg/lexicon_test.cpp.o.d"
  "/root/repo/tests/cdg/network_invariants_test.cpp" "tests/CMakeFiles/cdg_test.dir/cdg/network_invariants_test.cpp.o" "gcc" "tests/CMakeFiles/cdg_test.dir/cdg/network_invariants_test.cpp.o.d"
  "/root/repo/tests/cdg/network_test.cpp" "tests/CMakeFiles/cdg_test.dir/cdg/network_test.cpp.o" "gcc" "tests/CMakeFiles/cdg_test.dir/cdg/network_test.cpp.o.d"
  "/root/repo/tests/cdg/parser_test.cpp" "tests/CMakeFiles/cdg_test.dir/cdg/parser_test.cpp.o" "gcc" "tests/CMakeFiles/cdg_test.dir/cdg/parser_test.cpp.o.d"
  "/root/repo/tests/cdg/printer_test.cpp" "tests/CMakeFiles/cdg_test.dir/cdg/printer_test.cpp.o" "gcc" "tests/CMakeFiles/cdg_test.dir/cdg/printer_test.cpp.o.d"
  "/root/repo/tests/cdg/role_value_test.cpp" "tests/CMakeFiles/cdg_test.dir/cdg/role_value_test.cpp.o" "gcc" "tests/CMakeFiles/cdg_test.dir/cdg/role_value_test.cpp.o.d"
  "/root/repo/tests/cdg/symbols_test.cpp" "tests/CMakeFiles/cdg_test.dir/cdg/symbols_test.cpp.o" "gcc" "tests/CMakeFiles/cdg_test.dir/cdg/symbols_test.cpp.o.d"
  "/root/repo/tests/cdg/tag_ambiguity_test.cpp" "tests/CMakeFiles/cdg_test.dir/cdg/tag_ambiguity_test.cpp.o" "gcc" "tests/CMakeFiles/cdg_test.dir/cdg/tag_ambiguity_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/parsec_grammars.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/parsec_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/parsec_maspar.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/parsec_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/parsec_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/parsec_cdg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/parsec_pram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/parsec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
