file(REMOVE_RECURSE
  "CMakeFiles/pram_test.dir/pram/machine_test.cpp.o"
  "CMakeFiles/pram_test.dir/pram/machine_test.cpp.o.d"
  "pram_test"
  "pram_test.pdb"
  "pram_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
