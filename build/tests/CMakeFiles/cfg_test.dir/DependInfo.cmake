
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/cfg/cnf_test.cpp" "tests/CMakeFiles/cfg_test.dir/cfg/cnf_test.cpp.o" "gcc" "tests/CMakeFiles/cfg_test.dir/cfg/cnf_test.cpp.o.d"
  "/root/repo/tests/cfg/cyk_count_test.cpp" "tests/CMakeFiles/cfg_test.dir/cfg/cyk_count_test.cpp.o" "gcc" "tests/CMakeFiles/cfg_test.dir/cfg/cyk_count_test.cpp.o.d"
  "/root/repo/tests/cfg/cyk_parallel_test.cpp" "tests/CMakeFiles/cfg_test.dir/cfg/cyk_parallel_test.cpp.o" "gcc" "tests/CMakeFiles/cfg_test.dir/cfg/cyk_parallel_test.cpp.o.d"
  "/root/repo/tests/cfg/cyk_test.cpp" "tests/CMakeFiles/cfg_test.dir/cfg/cyk_test.cpp.o" "gcc" "tests/CMakeFiles/cfg_test.dir/cfg/cyk_test.cpp.o.d"
  "/root/repo/tests/cfg/parse_tree_test.cpp" "tests/CMakeFiles/cfg_test.dir/cfg/parse_tree_test.cpp.o" "gcc" "tests/CMakeFiles/cfg_test.dir/cfg/parse_tree_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/parsec_grammars.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/parsec_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/parsec_maspar.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/parsec_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/parsec_cfg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/parsec_cdg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/parsec_pram.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/parsec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
