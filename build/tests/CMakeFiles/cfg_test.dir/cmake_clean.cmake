file(REMOVE_RECURSE
  "CMakeFiles/cfg_test.dir/cfg/cnf_test.cpp.o"
  "CMakeFiles/cfg_test.dir/cfg/cnf_test.cpp.o.d"
  "CMakeFiles/cfg_test.dir/cfg/cyk_count_test.cpp.o"
  "CMakeFiles/cfg_test.dir/cfg/cyk_count_test.cpp.o.d"
  "CMakeFiles/cfg_test.dir/cfg/cyk_parallel_test.cpp.o"
  "CMakeFiles/cfg_test.dir/cfg/cyk_parallel_test.cpp.o.d"
  "CMakeFiles/cfg_test.dir/cfg/cyk_test.cpp.o"
  "CMakeFiles/cfg_test.dir/cfg/cyk_test.cpp.o.d"
  "CMakeFiles/cfg_test.dir/cfg/parse_tree_test.cpp.o"
  "CMakeFiles/cfg_test.dir/cfg/parse_tree_test.cpp.o.d"
  "cfg_test"
  "cfg_test.pdb"
  "cfg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cfg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
