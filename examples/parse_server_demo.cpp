// parse_server_demo — drive the batched parse service like a traffic
// replay: generate an English workload, submit it in batches across a
// thread pool, and print the aggregate service report.
//
//   parse_server_demo [--threads N] [--sentences N] [--batch N]
//                     [--lo LEN] [--hi LEN]
//                     [--backend serial|omp|pram|maspar]
//                     [--deadline-ms MS] [--quiet]
//
// Exit status: 0 if every request completed (timeouts count as
// completed — they are the graceful path), 1 on a lost request.
#include <iostream>
#include <string>

#include "grammars/english_grammar.h"
#include "grammars/sentence_gen.h"
#include "parsec/backend.h"
#include "serve/parse_service.h"
#include "serve/report.h"

namespace {

int usage() {
  std::cerr << "usage: parse_server_demo [--threads N] [--sentences N]"
               " [--batch N] [--lo LEN] [--hi LEN] [--backend NAME]"
               " [--deadline-ms MS] [--quiet]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace parsec;
  int threads = 4, sentences = 64, lo = 4, hi = 10;
  std::size_t batch = 16;
  engine::Backend backend = engine::Backend::Serial;
  double deadline_ms = 0.0;
  bool quiet = false;

  try {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? std::string(argv[++i]) : std::string();
    };
    if (arg == "--threads")
      threads = std::stoi(next());
    else if (arg == "--sentences")
      sentences = std::stoi(next());
    else if (arg == "--batch")
      batch = static_cast<std::size_t>(std::stoul(next()));
    else if (arg == "--lo")
      lo = std::stoi(next());
    else if (arg == "--hi")
      hi = std::stoi(next());
    else if (arg == "--backend") {
      auto b = engine::backend_from_name(next());
      if (!b) return usage();
      backend = *b;
    } else if (arg == "--deadline-ms")
      deadline_ms = std::stod(next());
    else if (arg == "--quiet")
      quiet = true;
    else
      return usage();
  }
  } catch (const std::exception&) {  // non-numeric value for a numeric flag
    return usage();
  }

  auto bundle = grammars::make_english_grammar();
  grammars::SentenceGenerator gen(bundle, 42);

  serve::ParseService::Options opt;
  opt.threads = threads;
  opt.queue_capacity = std::max<std::size_t>(batch * 2, 32);
  serve::ParseService service(bundle.grammar, opt);

  std::cout << "parse_server_demo: " << sentences << " sentences (n=" << lo
            << ".." << hi << "), batches of " << batch << " on "
            << service.threads() << " threads, backend "
            << engine::to_string(backend) << "\n";

  int submitted = 0, completed = 0, accepted = 0, timeouts = 0;
  while (submitted < sentences) {
    std::vector<serve::ParseRequest> reqs;
    const int this_batch =
        std::min<int>(static_cast<int>(batch), sentences - submitted);
    for (int i = 0; i < this_batch; ++i) {
      serve::ParseRequest r;
      r.sentence = gen.generate_sentence(lo + (submitted + i) % (hi - lo + 1));
      r.backend = backend;
      if (deadline_ms > 0)
        r.deadline = std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(deadline_ms));
      reqs.push_back(std::move(r));
    }
    auto responses = service.parse_batch(std::move(reqs));
    for (const auto& resp : responses) {
      ++completed;
      if (resp.accepted) ++accepted;
      if (resp.status == serve::RequestStatus::Timeout) ++timeouts;
    }
    submitted += this_batch;
    if (!quiet)
      std::cout << "batch done: " << completed << "/" << sentences
                << " completed, " << accepted << " accepted, " << timeouts
                << " timeouts\n";
  }

  std::cout << "\n" << serve::render_service_stats(service.stats());
  if (completed != sentences) {
    std::cout << "FAIL: lost requests\n";
    return 1;
  }
  // The generator emits grammatical sentences: everything that wasn't
  // cut off by a deadline must be accepted.
  if (accepted + timeouts != completed) {
    std::cout << "FAIL: unexpected rejections\n";
    return 1;
  }
  std::cout << "OK\n";
  return 0;
}
