// Corpus-scale evaluation driver: generate a corpus of English
// sentences across lengths, parse every one with the sequential and
// MasPar engines, and report acceptance, ambiguity and timing
// statistics — the kind of batch run the paper's speech-understanding
// motivation implies ("natural language parsing ... will not be a
// bottleneck for real-time systems").
//
//   $ ./examples/corpus_stats [corpus-size] [max-length]
#include <cstdlib>
#include <iostream>

#include "cdg/extract.h"
#include "cdg/parser.h"
#include "grammars/english_grammar.h"
#include "grammars/sentence_gen.h"
#include "parsec/maspar_parser.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace parsec;
  const int corpus_size = argc > 1 ? std::atoi(argv[1]) : 60;
  const int max_len = argc > 2 ? std::atoi(argv[2]) : 14;

  auto bundle = grammars::make_english_grammar();
  cdg::SequentialParser seq(bundle.grammar);
  engine::MasparParser maspar(bundle.grammar);
  grammars::SentenceGenerator gen(bundle, 20260705);

  struct Bucket {
    int count = 0;
    int accepted = 0;
    int ambiguous = 0;
    util::Stats parses;
    util::Stats sim_seconds;
  };
  std::vector<Bucket> buckets(static_cast<std::size_t>(max_len) + 1);

  for (int i = 0; i < corpus_size; ++i) {
    const int n = 2 + i % (max_len - 1);
    cdg::Sentence s = gen.generate_sentence(n);
    cdg::Network net = seq.make_network(s);
    seq.parse(net);
    const std::size_t count = cdg::count_parses(net, 1000);
    auto r = maspar.parse(s);

    Bucket& b = buckets[n];
    ++b.count;
    if (count > 0) ++b.accepted;
    if (count > 1) ++b.ambiguous;
    b.parses.add(static_cast<double>(count));
    b.sim_seconds.add(r.simulated_seconds);
  }

  util::Table t({"n", "sentences", "accepted", "ambiguous", "mean parses",
                 "mean MasPar sim s"});
  int total = 0, accepted = 0;
  for (int n = 2; n <= max_len; ++n) {
    const Bucket& b = buckets[n];
    if (b.count == 0) continue;
    total += b.count;
    accepted += b.accepted;
    char mp[32], ms[32];
    std::snprintf(mp, sizeof mp, "%.2f", b.parses.mean());
    std::snprintf(ms, sizeof ms, "%.3f", b.sim_seconds.mean());
    t.add_row({std::to_string(n), std::to_string(b.count),
               std::to_string(b.accepted), std::to_string(b.ambiguous), mp,
               ms});
  }
  std::cout << "corpus of " << total << " generated sentences:\n\n";
  t.print(std::cout);
  std::cout << "\noverall acceptance: " << accepted << "/" << total << "\n";
  return accepted == total ? 0 : 1;
}
