// Quickstart: parse the paper's worked example with the toy grammar and
// watch the constraint network evolve through Figures 1-7.
//
//   $ ./examples/quickstart [sentence words...]
#include <iostream>
#include <string>
#include <vector>

#include "cdg/extract.h"
#include "cdg/network.h"
#include "cdg/parser.h"
#include "cdg/printer.h"
#include "grammars/toy_grammar.h"

int main(int argc, char** argv) {
  using namespace parsec;

  grammars::CdgBundle bundle = grammars::make_toy_grammar();
  std::vector<std::string> words;
  for (int i = 1; i < argc; ++i) words.push_back(argv[i]);
  if (words.empty()) words = {"The", "program", "runs"};

  for (const auto& w : words) {
    if (!bundle.lexicon.contains(w)) {
      std::cerr << "word not in the toy lexicon: " << w << "\n";
      return 2;
    }
  }
  cdg::Sentence sentence = bundle.lexicon.tag(words);

  cdg::SequentialParser parser(bundle.grammar);
  cdg::Network net = parser.make_network(sentence);

  std::cout << "=== Initial constraint network (Figure 1) ===\n"
            << cdg::render_domains(net) << "\n";

  parser.run_unary(net);
  std::cout << "=== After unary constraint propagation (Figure 3) ===\n"
            << cdg::render_domains(net) << "\n";

  parser.run_binary(net);
  net.filter();
  std::cout << "=== After binary constraints + filtering (Figure 6) ===\n"
            << cdg::render_domains(net) << "\n";

  if (!net.all_roles_nonempty()) {
    std::cout << "REJECTED: some role has no surviving role value.\n";
    return 1;
  }

  auto parses = cdg::extract_parses(net, 10);
  std::cout << "=== Precedence graph(s) (Figure 7) ===\n";
  for (std::size_t i = 0; i < parses.size(); ++i) {
    std::cout << "parse " << (i + 1) << ":\n"
              << cdg::render_solution(net, parses[i]);
  }
  std::cout << "\n" << cdg::render_summary(net) << "\n";
  return 0;
}
