// Contextual constraint sets (paper §1.5): "We are currently developing
// a core set of constraints (i.e., they apply in all situations), which
// are the first constraints to propagate, followed by other
// contextually-determined constraint sets."
//
// This demo parses with the English grammar in stages — core unary
// constraints, then the relational (binary) set, then a stricter
// "careful speech" context (projectivity) — showing how each stage
// shrinks the CN without ever reparsing, the property the paper wants
// for spoken-language understanding.
#include <iostream>

#include "cdg/constraint_parser.h"
#include "cdg/extract.h"
#include "cdg/parser.h"
#include "grammars/english_grammar.h"

int main() {
  using namespace parsec;

  grammars::CdgBundle bundle = grammars::make_english_grammar();
  const std::string text =
      "the old professor watches the quick student in the dark garden";
  cdg::Sentence s = bundle.tag(text);
  cdg::SequentialParser parser(bundle.grammar);
  cdg::Network net = parser.make_network(s);

  std::cout << "utterance: " << text << "\n\n";
  auto report = [&](const char* stage) {
    std::size_t multi = 0;
    for (int role = 0; role < net.num_roles(); ++role)
      if (net.domain(role).count() > 1) ++multi;
    std::cout << stage << ": " << net.total_alive()
              << " role values alive, " << multi << " ambiguous roles, "
              << cdg::count_parses(net, 1000) << " parses stored\n";
  };

  report("initial CN             ");
  parser.run_unary(net);
  report("after core (unary) set ");
  parser.run_binary(net);
  net.filter();
  report("after relational set   ");

  // Context: careful read speech -> projective structure expected.
  cdg::Constraint proj = cdg::parse_constraint(
      bundle.grammar, grammars::kProjectivityConstraint);
  net.apply_binary(cdg::compile_constraint(proj));
  net.filter();
  report("after 'careful speech' ");

  if (!net.all_roles_nonempty()) return 1;
  auto parses = cdg::extract_parses(net, 5);
  std::cout << "\nremaining analyses:\n";
  for (const auto& p : parses)
    std::cout << cdg::render_solution(net, p) << "\n";
  return parses.empty() ? 1 : 0;
}
