// parsec_cli — command-line CDG parser.
//
//   parsec_cli [--grammar FILE | --builtin toy|english|anbncn]
//              [--engine seq|pram|maspar|omp] [--show-network]
//              [--all-parses N] [sentence... | reads lines from stdin]
//
// Exit status: 0 if every input sentence is accepted, 1 otherwise.
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cdg/diagnose.h"
#include "cdg/extract.h"
#include "cdg/parser.h"
#include "cdg/printer.h"
#include "grammars/anbncn_grammar.h"
#include "grammars/english_grammar.h"
#include "grammars/grammar_io.h"
#include "grammars/toy_grammar.h"
#include "parsec/maspar_parser.h"
#include "parsec/omp_parser.h"
#include "parsec/pram_parser.h"

namespace {

using namespace parsec;

int usage() {
  std::cerr
      << "usage: parsec_cli [--grammar FILE | --builtin toy|english|anbncn]\n"
         "                  [--engine seq|pram|maspar|omp] [--show-network]\n"
         "                  [--dot] [--all-parses N] [sentence words...]\n"
         "With no sentence words, parses one sentence per stdin line.\n";
  return 2;
}

struct Options {
  std::string grammar_file;
  std::string builtin = "english";
  std::string engine = "seq";
  bool show_network = false;
  bool dot = false;
  std::size_t max_parses = 1;
  std::vector<std::string> words;
};

bool parse_sentence(const Options& opt, const grammars::CdgBundle& bundle,
                    const std::vector<std::string>& words) {
  for (const auto& w : words) {
    if (!bundle.lexicon.contains(w)) {
      std::cout << "REJECT (unknown word: " << w << ")\n";
      return false;
    }
  }
  cdg::Sentence s = bundle.lexicon.tag(words);
  cdg::SequentialParser seq(bundle.grammar);
  cdg::Network net = seq.make_network(s);

  bool accepted = false;
  if (opt.engine == "seq") {
    accepted = seq.parse(net).accepted;
  } else if (opt.engine == "pram") {
    engine::PramParser p(bundle.grammar);
    auto r = p.parse(net);
    accepted = r.accepted;
    std::cout << "[pram: " << r.stats.time_steps << " steps, peak "
              << r.stats.max_processors << " processors]\n";
  } else if (opt.engine == "omp") {
    engine::OmpParser p(bundle.grammar);
    auto r = p.parse(net);
    accepted = r.accepted;
    std::cout << "[omp: " << r.threads_used << " threads, "
              << r.seconds * 1e3 << " ms]\n";
  } else if (opt.engine == "maspar") {
    engine::MasparOptions mopt;
    mopt.filter_iterations = -1;
    engine::MasparParser p(bundle.grammar, mopt);
    std::unique_ptr<engine::MasparParse> parse;
    auto r = p.parse(s, parse);
    accepted = r.accepted;
    std::cout << "[maspar: " << r.vpes << " virtual PEs, factor "
              << r.virt_factor << ", " << r.simulated_seconds
              << " simulated s]\n";
    // Mirror the MasPar result into the network for display/extraction.
    seq.parse(net);
  }

  if (opt.show_network) std::cout << cdg::render_domains(net);
  if (!accepted || !net.all_roles_nonempty()) {
    cdg::Diagnosis d = cdg::diagnose(seq, s);
    std::cout << "REJECT — "
              << cdg::render_diagnosis(bundle.grammar, s, d) << "\n";
    return false;
  }
  auto parses = cdg::extract_parses(net, opt.max_parses);
  if (parses.empty()) {
    std::cout << "REJECT (no globally consistent assignment)\n";
    return false;
  }
  std::cout << "ACCEPT (" << parses.size()
            << (parses.size() == opt.max_parses ? "+" : "") << " parse"
            << (parses.size() == 1 ? "" : "s") << ")\n";
  for (const auto& p : parses) std::cout << cdg::render_solution(net, p);
  if (opt.dot) std::cout << cdg::render_dot(net, parses.front());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--grammar") {
      const char* v = next();
      if (!v) return usage();
      opt.grammar_file = v;
    } else if (arg == "--builtin") {
      const char* v = next();
      if (!v) return usage();
      opt.builtin = v;
    } else if (arg == "--engine") {
      const char* v = next();
      if (!v) return usage();
      opt.engine = v;
    } else if (arg == "--show-network") {
      opt.show_network = true;
    } else if (arg == "--dot") {
      opt.dot = true;
    } else if (arg == "--all-parses") {
      const char* v = next();
      if (!v) return usage();
      opt.max_parses = std::stoul(v);
    } else if (arg == "--help" || arg == "-h") {
      return usage();
    } else {
      opt.words.push_back(arg);
    }
  }
  if (opt.engine != "seq" && opt.engine != "pram" && opt.engine != "omp" &&
      opt.engine != "maspar")
    return usage();

  grammars::CdgBundle bundle;
  try {
    if (!opt.grammar_file.empty())
      bundle = grammars::load_cdg_bundle_file(opt.grammar_file);
    else if (opt.builtin == "toy")
      bundle = grammars::make_toy_grammar();
    else if (opt.builtin == "english")
      bundle = grammars::make_english_grammar();
    else if (opt.builtin == "anbncn")
      bundle = grammars::make_anbncn_grammar();
    else
      return usage();
  } catch (const std::exception& e) {
    std::cerr << "grammar error: " << e.what() << "\n";
    return 2;
  }

  bool all_ok = true;
  if (!opt.words.empty()) {
    all_ok = parse_sentence(opt, bundle, opt.words);
  } else {
    std::string line;
    while (std::getline(std::cin, line)) {
      if (line.empty()) continue;
      std::istringstream is(line);
      std::vector<std::string> words;
      std::string w;
      while (is >> w) words.push_back(w);
      std::cout << "> " << line << "\n";
      all_ok = parse_sentence(opt, bundle, words) && all_ok;
    }
  }
  return all_ok ? 0 : 1;
}
