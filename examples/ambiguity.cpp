// Ambiguity handling (paper §1.4-1.5): constraint networks compactly
// store several parses; applying further constraints refines the
// analysis without backtracking.
//
// The classic prepositional-phrase attachment: "the student sees the
// professor with the telescope".  The base English grammar keeps both
// readings; a contextual constraint set (here: "instrument reading —
// the PP modifies the verb") settles it.
#include <iostream>

#include "cdg/constraint_eval.h"
#include "cdg/constraint_parser.h"
#include "cdg/extract.h"
#include "cdg/parser.h"
#include "cdg/printer.h"
#include "grammars/english_grammar.h"

int main() {
  using namespace parsec;

  grammars::CdgBundle bundle = grammars::make_english_grammar();
  const std::string text = "the student sees the professor with the telescope";
  cdg::Sentence s = bundle.tag(text);

  cdg::SequentialParser parser(bundle.grammar);
  cdg::Network net = parser.make_network(s);
  parser.parse(net);

  std::cout << "sentence: " << text << "\n\n";
  auto parses = cdg::extract_parses(net, 10);
  std::cout << "the CN stores " << parses.size()
            << " parses simultaneously:\n\n";
  for (std::size_t i = 0; i < parses.size(); ++i) {
    std::cout << "--- parse " << (i + 1) << " ---\n"
              << cdg::render_solution(net, parses[i]) << "\n";
  }

  // Ambiguity is easy to spot in CDG (§1.4): a role with several role
  // values.
  for (int role = 0; role < net.num_roles(); ++role) {
    if (net.domain(role).count() > 1) {
      std::cout << "ambiguous role: word "
                << net.sentence().word_at(net.word_of_role(role)) << " ("
                << bundle.grammar.role_name(net.role_id_of(role))
                << ") = " << cdg::render_role(net, role) << "\n";
    }
  }

  // Contextual refinement: in an instrument-reading context, the PP
  // attaches to the verb.  CDG lets us apply the extra constraint to
  // the already-propagated network (no reparse, no backtracking).
  cdg::Constraint instrument = cdg::parse_constraint(bundle.grammar, R"(
      (if (and (eq (lab x) PREP) (not (eq (mod x) nil)))
          (eq (cat (word (mod x))) verb)))");
  net.apply_unary(cdg::compile_constraint(instrument));
  net.filter();

  std::cout << "\nafter the contextual 'instrument' constraint:\n";
  auto refined = cdg::extract_parses(net, 10);
  for (const auto& p : refined)
    std::cout << cdg::render_solution(net, p) << "\n";
  std::cout << "parses remaining: " << refined.size() << "\n";
  return refined.size() == 1 ? 0 : 1;
}
