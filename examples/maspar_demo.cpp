// Machine-level walkthrough of PARSEC on the simulated MasPar MP-1
// (paper §2.2): PE allocation, kernel phases, router traffic and the
// calibrated simulated time, for sentences of growing length.
#include <cstdio>
#include <iostream>
#include <memory>

#include "grammars/english_grammar.h"
#include "grammars/sentence_gen.h"
#include "maspar/cost_model.h"
#include "parsec/maspar_parser.h"
#include "util/table.h"

int main() {
  using namespace parsec;

  grammars::CdgBundle bundle = grammars::make_english_grammar();
  engine::MasparParser parser(bundle.grammar);

  // --- the worked-style walkthrough on one sentence --------------------
  const std::string text = "the dog runs in the park";
  std::unique_ptr<engine::MasparParse> parse;
  auto r = parser.parse(bundle.tag(text), parse);
  const auto& layout = parse->layout();

  std::cout << "sentence: \"" << text << "\"\n\n";
  std::cout << "PE allocation (paper Fig. 11):\n"
            << "  roles R = n*q            = " << layout.num_roles() << "\n"
            << "  modifiee slots M = n     = " << layout.mods_per_word()
            << "\n"
            << "  label slots l            = " << layout.labels_per_role()
            << " (each PE holds an l x l submatrix, Fig. 13)\n"
            << "  virtual PEs R^2 M^2      = " << layout.vpes() << "\n"
            << "  physical PEs             = " << parse->machine().physical()
            << "\n"
            << "  virtualization factor    = " << r.virt_factor << "\n\n";

  std::cout << "machine activity:\n"
            << "  ACU instruction broadcasts = " << r.stats.plural_ops << "\n"
            << "  segmented scans (router)   = " << r.stats.scan_ops << "\n"
            << "  router gathers             = " << r.stats.route_ops << "\n"
            << "  consistency iterations     = " << r.consistency_iterations
            << "\n"
            << "  accepted                   = " << (r.accepted ? "yes" : "no")
            << "\n";
  std::printf("  simulated time             = %.3f s\n\n",
              r.simulated_seconds);

  // --- the paper's step function (Results §3) ----------------------------
  std::cout << "parse time vs sentence length (virtualization step "
               "function; paper: 0.15 s at n<=8, 0.45 s at n=10):\n\n";
  grammars::SentenceGenerator gen(bundle, 7);
  util::Table t({"n", "virtual PEs", "factor", "simulated s"});
  for (int n = 2; n <= 12; ++n) {
    auto rn = parser.parse(gen.generate_sentence(n));
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", rn.simulated_seconds);
    t.add_row({std::to_string(n), std::to_string(rn.vpes),
               std::to_string(rn.virt_factor), buf});
  }
  t.print(std::cout);
  return r.accepted ? 0 : 1;
}
