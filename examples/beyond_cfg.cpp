// Expressivity beyond context-free grammars (paper §1.5).
//
// "CDG can accept languages that CFGs cannot": this demo runs the CDG
// grammar for a^n b^n c^n — the textbook non-context-free language — on
// a set of strings, and contrasts it with a CFG (CYK) for the best
// context-free approximation a^n b^n c^m, which inevitably accepts
// impostors.
#include <iostream>
#include <string>
#include <vector>

#include "cdg/extract.h"
#include "cdg/parser.h"
#include "cfg/cyk.h"
#include "grammars/anbncn_grammar.h"
#include "util/table.h"

int main() {
  using namespace parsec;

  grammars::CdgBundle bundle = grammars::make_anbncn_grammar();
  cdg::SequentialParser parser(bundle.grammar);

  // CFG approximation: S -> A C;  A -> a A b | a b;  C -> c C | c
  // (language a^n b^n c^m — context-free, but cannot tie m to n).
  cfg::Grammar approx;
  approx.set_start(approx.add_nonterminal("S"));
  approx.add_nonterminal("A");
  approx.add_nonterminal("C");
  approx.add_rule("S", {"A", "C"});
  approx.add_rule("A", {"a", "A", "b"});
  approx.add_rule("A", {"a", "b"});
  approx.add_rule("C", {"c", "C"});
  approx.add_rule("C", {"c"});
  const cfg::CnfGrammar cnf = cfg::to_cnf(approx);

  auto cdg_accepts = [&](const std::vector<std::string>& w) {
    cdg::Network net = parser.make_network(bundle.lexicon.tag(w));
    parser.parse(net);
    return cdg::has_parse(net);
  };
  auto cfg_accepts = [&](const std::vector<std::string>& w) {
    std::vector<int> enc;
    for (const auto& s : w) enc.push_back(approx.terminal(s));
    return cfg::cyk_recognize(cnf, enc);
  };
  auto split = [](const std::string& s) {
    std::vector<std::string> w;
    for (char c : s) w.push_back(std::string(1, c));
    return w;
  };

  util::Table t({"string", "in a^n b^n c^n", "CDG", "CFG approx"});
  const struct {
    const char* s;
    bool member;
  } cases[] = {
      {"abc", true},        {"aabbcc", true},     {"aaabbbccc", true},
      {"aabbc", false},     {"aabbccc", false},   {"abcc", false},
      {"aabbbcc", false},   {"acb", false},       {"abcabc", false},
  };
  bool cdg_perfect = true;
  for (const auto& c : cases) {
    const auto w = split(c.s);
    const bool cdg_ok = cdg_accepts(w);
    const bool cfg_ok = cfg_accepts(w);
    if (cdg_ok != c.member) cdg_perfect = false;
    t.add_row({c.s, c.member ? "yes" : "no", cdg_ok ? "accept" : "reject",
               cfg_ok ? "accept" : "reject"});
  }
  t.print(std::cout);
  std::cout << "\nThe CFG approximation accepts a^n b^n c^m impostors "
               "(counts untied);\nthe CDG grammar decides the "
               "non-context-free language exactly.\n";
  return cdg_perfect ? 0 : 1;
}
