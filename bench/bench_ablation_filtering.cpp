// Ablation: design decision 5 / §2.1 — bounded filtering.
//
// Paper: "we have found that very few filtering steps (typically fewer
// than 10) are required at the end of constraint propagation", which
// justifies bounding the iterations to a constant (full filtering can
// cascade for O(n^2) rounds in the worst case; the paper cites an
// NC-reduction showing filtering is inherently sequential).
//
// Measured here: the fixpoint iteration count over a sentence sweep,
// whether a bound of 10 ever changes acceptance, and how much of the
// elimination happens in the first sweep.
#include <iostream>

#include "bench_common.h"
#include "cdg/parser.h"
#include "parsec/pram_parser.h"
#include "util/stats.h"
#include "util/table.h"

int main() {
  using namespace parsec;
  auto bundle = grammars::make_english_grammar();
  cdg::SequentialParser seq(bundle.grammar);

  std::cout
      << "==============================================================\n"
      << "Ablation (design decision 5): bounded vs full filtering\n"
      << "Paper: 'typically fewer than 10' filtering steps needed\n"
      << "==============================================================\n\n";

  util::Table t({"n", "sweeps to fixpoint", "elims sweep 1",
                 "elims later sweeps", "accept @ bound 10 == fixpoint"});
  grammars::SentenceGenerator gen(bundle, bench::kSeed);
  util::Stats sweeps_stats;
  bool all_agree = true;
  for (int n = 3; n <= 21; n += 3) {
    cdg::Sentence s = gen.generate_sentence(n);

    // Constraint propagation with NO interleaved maintenance (the
    // MasPar schedule: all constraints first, then consistency/filter
    // sweeps), so filtering does all the support-based elimination.
    cdg::ParseOptions defer;
    defer.consistency_after_each_binary = false;
    cdg::SequentialParser dparser(bundle.grammar, defer);
    engine::PramParser pram(bundle.grammar);
    cdg::Network net = dparser.make_network(s);
    dparser.run_unary(net);
    dparser.run_binary(net);
    pram::Machine m;
    int sweeps = 0;
    std::size_t first = 0, later = 0;
    while (true) {
      const int e = pram.parallel_consistency_step(net, m);
      if (e == 0) break;
      ++sweeps;
      if (sweeps == 1)
        first = static_cast<std::size_t>(e);
      else
        later += static_cast<std::size_t>(e);
    }
    sweeps_stats.add(sweeps);
    const bool fix_accept = net.all_roles_nonempty();

    cdg::ParseOptions bounded;
    bounded.filter_sweeps = 10;
    cdg::SequentialParser bparser(bundle.grammar, bounded);
    const bool b_accept = bparser.parse_sentence(s).accepted;
    if (b_accept != fix_accept) all_agree = false;

    t.add_row({std::to_string(n), std::to_string(sweeps),
               std::to_string(first), std::to_string(later),
               b_accept == fix_accept ? "yes" : "NO"});
  }
  t.print(std::cout);
  std::cout << "\nmax sweeps observed: " << sweeps_stats.max()
            << " (paper bound: typically < 10)\n"
            << "bounded-filtering acceptance "
            << (all_agree ? "always matches the fixpoint"
                          : "DIVERGED from the fixpoint")
            << "\n";
  return all_agree && sweeps_stats.max() < 10 ? 0 : 1;
}
