// Shared helpers for the benchmark harness (DESIGN.md §4).
//
// Every bench binary prints the paper's reported value next to our
// measured value in an aligned table and exits 0.  Headline metrics are
// simulated machine steps / calibrated simulated seconds; host
// wall-clock appears as a secondary column where meaningful.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "cdg/lexicon.h"
#include "grammars/english_grammar.h"
#include "grammars/sentence_gen.h"

namespace parsec::bench {

/// Fixed seed so every run prints identical tables.
inline constexpr std::uint64_t kSeed = 19920801;  // ICPP 1992

/// One deterministic English sentence per length in [lo, hi].
inline std::vector<cdg::Sentence> sentence_sweep(
    const grammars::CdgBundle& bundle, int lo, int hi) {
  grammars::SentenceGenerator gen(bundle, kSeed);
  std::vector<cdg::Sentence> out;
  for (int n = lo; n <= hi; ++n) out.push_back(gen.generate_sentence(n));
  return out;
}

/// Wall-clock of a callable, in seconds.
template <typename Fn>
double time_host(Fn&& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

inline std::string fmt(double v, const char* format = "%.4g") {
  char buf[64];
  std::snprintf(buf, sizeof buf, format, v);
  return buf;
}

inline std::string fmt_ms(double seconds) { return fmt(seconds * 1e3, "%.3g"); }

}  // namespace parsec::bench
