// Served-traffic throughput: sentences/second through the batched
// ParseService as worker threads scale.
//
// The paper parallelizes one sentence (O(k + log n) steps); a serving
// deployment also scales across sentences.  This harness replays a
// deterministic English workload from grammars::SentenceGenerator at
// configurable thread counts and batch sizes, verifies every batched
// result is bit-identical to a single-threaded serial parse (the
// service's correctness contract), and writes a BENCH_throughput.json
// report for CI and future perf PRs to diff.
//
//   bench_throughput [--sentences N] [--lo LEN] [--hi LEN]
//                    [--threads T1,T2,...] [--batch B]
//                    [--backend serial|omp|pram|maspar] [--json PATH]
//                    [--metrics-out PATH] [--trace-out PATH]
//                    [--fault-plan PATH] [--shed-load] [--cache]
//                    [--dup-sweep] [--resilience-out PATH]
//
// --metrics-out writes a Prometheus text scrape of everything the
// services published; --trace-out records one fully traced parse
// (factoring, mask build, AC-4 fixpoint, extraction) as Chrome
// trace-event JSON, openable in Perfetto / chrome://tracing.
//
// --fault-plan installs a resil::FaultPlan (docs/ROBUSTNESS.md text
// format) for the whole run: the chaos-smoke CI job replays a seeded
// plan and asserts zero crashes, structured statuses, and Ok-response
// bit-identity.  --shed-load turns on ParseService admission control
// (queue overflow answers Overloaded instead of blocking).  --cache
// enables the parse-result cache on every swept service (hits must
// stay bit-identical, fault plans included — a failed leader abandons
// its slot, it never caches a corrupt result).  --dup-sweep replays a
// 90%-duplicate request stream through a cache-off and a cache-on
// single-threaded service and reports hit rate + speedup; run at one
// thread the cache counters it publishes are exact, so the perf-gate
// CI job pins them in bench/baselines/throughput_counters.json.
// --resilience-out sweeps injected fault rates (0%, 1%, 5%) across a
// mixed-backend workload and writes goodput/p99 per rate.
//
// Exits nonzero only on a correctness (bit-identity) failure; speedup
// is reported, not asserted, so low-core CI boxes stay green.
#include <fstream>
#include <iostream>
#include <iterator>
#include <sstream>

#include <memory>
#include <optional>

#include "bench_common.h"
#include "cdg/extract.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parsec/backend.h"
#include "resil/fault_plan.h"
#include "serve/parse_service.h"
#include "serve/report.h"
#include "util/table.h"

namespace {

using namespace parsec;

struct Config {
  int sentences = 120;
  int lo = 4, hi = 10;
  std::vector<int> threads = {1, 2, 4, 8};
  std::size_t batch = 32;
  engine::Backend backend = engine::Backend::Serial;
  std::string json_path = "BENCH_throughput.json";
  std::string metrics_path;     // empty = no scrape
  std::string trace_path;       // empty = no trace
  std::string fault_plan_path;  // empty = no injected faults
  bool shed_load = false;
  bool cache = false;           // result cache on the swept services
  bool dup_sweep = false;       // duplicated-traffic cache sweep
  std::string resilience_path;  // empty = no fault-rate sweep
};

std::vector<int> parse_int_list(const std::string& s) {
  std::vector<int> out;
  std::istringstream is(s);
  std::string tok;
  while (std::getline(is, tok, ',')) out.push_back(std::stoi(tok));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  try {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? std::string(argv[++i]) : std::string();
    };
    if (arg == "--sentences")
      cfg.sentences = std::stoi(next());
    else if (arg == "--lo")
      cfg.lo = std::stoi(next());
    else if (arg == "--hi")
      cfg.hi = std::stoi(next());
    else if (arg == "--threads")
      cfg.threads = parse_int_list(next());
    else if (arg == "--batch")
      cfg.batch = static_cast<std::size_t>(std::stoul(next()));
    else if (arg == "--backend") {
      auto b = engine::backend_from_name(next());
      if (!b) {
        std::cerr << "unknown backend\n";
        return 2;
      }
      cfg.backend = *b;
    } else if (arg == "--json")
      cfg.json_path = next();
    else if (arg == "--metrics-out")
      cfg.metrics_path = next();
    else if (arg == "--trace-out")
      cfg.trace_path = next();
    else if (arg == "--fault-plan")
      cfg.fault_plan_path = next();
    else if (arg == "--shed-load")
      cfg.shed_load = true;
    else if (arg == "--cache")
      cfg.cache = true;
    else if (arg == "--dup-sweep")
      cfg.dup_sweep = true;
    else if (arg == "--resilience-out")
      cfg.resilience_path = next();
    else {
      std::cerr << "usage: bench_throughput [--sentences N] [--lo L] [--hi H]"
                   " [--threads T1,T2,...] [--batch B] [--backend NAME]"
                   " [--json PATH] [--metrics-out PATH] [--trace-out PATH]"
                   " [--fault-plan PATH] [--shed-load] [--cache]"
                   " [--dup-sweep] [--resilience-out PATH]\n";
      return 2;
    }
  }
  } catch (const std::exception&) {  // non-numeric value for a numeric flag
    std::cerr << "bench_throughput: bad numeric argument\n";
    return 2;
  }

  auto bundle = grammars::make_english_grammar();
  grammars::SentenceGenerator gen(bundle, bench::kSeed);
  std::vector<cdg::Sentence> workload;
  workload.reserve(static_cast<std::size_t>(cfg.sentences));
  for (int i = 0; i < cfg.sentences; ++i)
    workload.push_back(
        gen.generate_sentence(cfg.lo + i % (cfg.hi - cfg.lo + 1)));

  // Single-threaded serial reference fingerprints (the bit-identity
  // contract every batched configuration must reproduce).
  cdg::SequentialParser seq(bundle.grammar);
  std::vector<std::uint64_t> reference;
  reference.reserve(workload.size());
  const double serial_secs = bench::time_host([&] {
    for (const auto& s : workload) {
      cdg::Network net = seq.make_network(s);
      seq.parse(net);
      std::vector<util::DynBitset> domains;
      for (int r = 0; r < net.num_roles(); ++r)
        domains.emplace_back(net.domain(r));
      reference.push_back(engine::hash_domains(domains));
    }
  });

  // Seeded chaos mode: install the plan for the whole sweep.  The
  // service degrades injected faults to structured statuses; the
  // bit-identity contract then applies to every Ok response.
  std::optional<resil::FaultPlan> fault_plan;
  std::unique_ptr<resil::ScopedFaultPlan> fault_scope;
  if (!cfg.fault_plan_path.empty()) {
    try {
      fault_plan = resil::FaultPlan::load(cfg.fault_plan_path);
    } catch (const std::invalid_argument& e) {
      std::cerr << "bench_throughput: " << e.what() << "\n";
      return 2;
    }
    fault_scope = std::make_unique<resil::ScopedFaultPlan>(*fault_plan);
  }

  std::cout
      << "=============================================================\n"
      << "Throughput: batched ParseService vs single-thread, backend "
      << engine::to_string(cfg.backend) << "\n"
      << cfg.sentences << " English sentences, lengths " << cfg.lo << ".."
      << cfg.hi << ", batch size " << cfg.batch << "\n";
  if (fault_plan)
    std::cout << "fault plan: " << cfg.fault_plan_path << " (seed "
              << fault_plan->seed() << ")"
              << (cfg.shed_load ? ", shedding load" : "") << "\n";
  if (cfg.cache) std::cout << "result cache: enabled\n";
  std::cout
      << "=============================================================\n\n";

  util::Table table({"threads", "wall s", "sent/s", "ok/s", "speedup", "eff",
                     "p50 ms", "p95 ms", "p99 ms", "bit-identical"});
  std::vector<serve::ThroughputRow> rows;
  bool all_identical = true;
  bool all_structured = true;
  double single_thread_sps = 0.0;

  for (int threads : cfg.threads) {
    serve::ParseService::Options opt;
    opt.threads = threads;
    opt.queue_capacity = std::max<std::size_t>(cfg.batch * 2, 64);
    opt.shed_load = cfg.shed_load;
    opt.enable_result_cache = cfg.cache;
    serve::ParseService service(bundle.grammar, opt);

    std::vector<std::uint64_t> hashes(workload.size(), 0);
    std::vector<serve::RequestStatus> statuses(workload.size(),
                                               serve::RequestStatus::Ok);
    const double wall = bench::time_host([&] {
      for (std::size_t base = 0; base < workload.size(); base += cfg.batch) {
        const std::size_t end =
            std::min(base + cfg.batch, workload.size());
        std::vector<serve::ParseRequest> batch;
        batch.reserve(end - base);
        for (std::size_t i = base; i < end; ++i) {
          serve::ParseRequest r;
          r.sentence = workload[i];
          r.backend = cfg.backend;
          batch.push_back(std::move(r));
        }
        auto responses = service.parse_batch(std::move(batch));
        for (std::size_t i = base; i < end; ++i) {
          hashes[i] = responses[i - base].domains_hash;
          statuses[i] = responses[i - base].status;
        }
      }
    });

    // All backends (maspar included) run filtering to the fixpoint
    // under the service defaults, so every Ok hash must match serial.
    // Under an installed fault plan some requests degrade to Faulted /
    // Overloaded — structured statuses, never corrupted results.
    bool identical = true;
    std::uint64_t ok_count = 0;
    for (std::size_t i = 0; i < workload.size(); ++i) {
      if (statuses[i] == serve::RequestStatus::Ok) {
        ++ok_count;
        if (hashes[i] != reference[i]) identical = false;
      } else if (statuses[i] != serve::RequestStatus::Faulted &&
                 statuses[i] != serve::RequestStatus::Overloaded &&
                 statuses[i] != serve::RequestStatus::Timeout) {
        all_structured = false;
      }
    }
    if (!fault_plan && !cfg.shed_load && ok_count != workload.size())
      identical = false;  // fault-free runs must answer everything Ok
    all_identical = all_identical && identical;
    const double goodput = static_cast<double>(ok_count) / wall;

    serve::ThroughputRow row;
    row.threads = threads;
    row.batch_size = cfg.batch;
    row.backend = engine::to_string(cfg.backend);
    row.sentences = workload.size();
    row.wall_seconds = wall;
    row.throughput_sps = static_cast<double>(workload.size()) / wall;
    if (threads == 1) single_thread_sps = row.throughput_sps;
    row.speedup = single_thread_sps > 0
                      ? row.throughput_sps / single_thread_sps
                      : 0.0;
    row.efficiency = threads > 0 ? row.speedup / threads : 0.0;
    row.stats = service.stats();
    rows.push_back(row);

    table.add_row({std::to_string(threads), bench::fmt(wall, "%.3f"),
                   bench::fmt(row.throughput_sps, "%.1f"),
                   bench::fmt(goodput, "%.1f"),
                   bench::fmt(row.speedup, "%.2f"),
                   bench::fmt(row.efficiency, "%.2f"),
                   bench::fmt(row.stats.latency_p50_ms, "%.2f"),
                   bench::fmt(row.stats.latency_p95_ms, "%.2f"),
                   bench::fmt(row.stats.latency_p99_ms, "%.2f"),
                   identical ? "yes" : "NO"});
  }
  table.print(std::cout);

  std::cout << "\nplain single-thread loop (no service): "
            << bench::fmt(static_cast<double>(workload.size()) / serial_secs,
                          "%.1f")
            << " sent/s\n";

  // Duplicated-traffic sweep: real serving traffic repeats itself, so
  // replay a stream that cycles 10% of the workload (90% duplicates)
  // through a cache-off and a cache-on service and compare.  One
  // thread, one stream: the hit/miss counters are exact — the first
  // pass over the uniques misses, every later cycle hits — which is
  // what lets the perf gate pin parsec_serve_cache_* in a baseline.
  std::optional<serve::DupSweepResult> dup;
  if (cfg.dup_sweep) {
    const std::size_t uniques =
        std::max<std::size_t>(1, workload.size() / 10);
    const std::size_t total = workload.size();
    auto replay = [&](bool with_cache, bool& identical) {
      serve::ParseService::Options opt;
      opt.threads = 1;
      opt.queue_capacity = std::max<std::size_t>(cfg.batch * 2, 64);
      opt.enable_result_cache = with_cache;
      serve::ParseService service(bundle.grammar, opt);
      std::vector<serve::ParseResponse> responses;
      const double wall = bench::time_host([&] {
        for (std::size_t base = 0; base < total; base += cfg.batch) {
          const std::size_t end = std::min(base + cfg.batch, total);
          std::vector<serve::ParseRequest> batch;
          batch.reserve(end - base);
          for (std::size_t i = base; i < end; ++i) {
            serve::ParseRequest r;
            r.sentence = workload[i % uniques];
            r.backend = cfg.backend;
            batch.push_back(std::move(r));
          }
          auto got = service.parse_batch(std::move(batch));
          responses.insert(responses.end(),
                           std::make_move_iterator(got.begin()),
                           std::make_move_iterator(got.end()));
        }
      });
      for (std::size_t i = 0; i < responses.size(); ++i)
        if (responses[i].status != serve::RequestStatus::Ok ||
            responses[i].domains_hash != reference[i % uniques])
          identical = false;
      dup->cache = service.stats().cache;  // cache-off pass: all zeros
      return wall;
    };

    dup.emplace();
    dup->requests = total;
    dup->unique_sentences = uniques;
    dup->threads = 1;
    dup->backend = engine::to_string(cfg.backend);
    bool identical = true;
    dup->wall_off_seconds = replay(false, identical);
    dup->wall_on_seconds = replay(true, identical);
    all_identical = all_identical && identical;
    dup->sps_off = static_cast<double>(total) / dup->wall_off_seconds;
    dup->sps_on = static_cast<double>(total) / dup->wall_on_seconds;
    dup->speedup = dup->sps_off > 0 ? dup->sps_on / dup->sps_off : 0.0;
    dup->hit_rate =
        dup->cache.lookups
            ? static_cast<double>(dup->cache.hits + dup->cache.coalesced) /
                  static_cast<double>(dup->cache.lookups)
            : 0.0;

    std::cout << "\nduplicated-traffic sweep (" << total << " requests over "
              << uniques << " unique sentences, 1 thread):\n";
    util::Table dtable({"cache", "wall s", "sent/s", "hit rate", "speedup",
                        "bit-identical"});
    dtable.add_row({"off", bench::fmt(dup->wall_off_seconds, "%.3f"),
                    bench::fmt(dup->sps_off, "%.1f"), "-", "1.00",
                    identical ? "yes" : "NO"});
    dtable.add_row({"on", bench::fmt(dup->wall_on_seconds, "%.3f"),
                    bench::fmt(dup->sps_on, "%.1f"),
                    bench::fmt(dup->hit_rate * 100.0, "%.1f%%"),
                    bench::fmt(dup->speedup, "%.2f"),
                    identical ? "yes" : "NO"});
    dtable.print(std::cout);
    std::cout << "cache: " << dup->cache.misses << " misses, "
              << dup->cache.hits << " hits, " << dup->cache.coalesced
              << " coalesced, " << dup->cache.evictions << " evicted\n";
  }

  // SoA lane-batching sweep (serial backend only — the interleaved
  // batcher is a host-fixpoint kernel).  The whole workload goes to the
  // service in one parse_batch call so same-length requests can fill
  // 8-wide lane groups; off vs on isolates the SoA kernel win at the
  // service level.  One thread keeps the occupancy counters exact, so
  // the perf gate pins parsec_serve_batches_total /
  // parsec_serve_batched_requests_total in the throughput baseline.
  std::optional<serve::BatchSweepResult> soa;
  if (cfg.backend == engine::Backend::Serial && !fault_plan &&
      !cfg.shed_load) {
    auto replay = [&](bool batching, bool& identical,
                      serve::ServiceStats& out_stats) {
      serve::ParseService::Options opt;
      opt.threads = 1;
      opt.queue_capacity = std::max(workload.size() * 2, std::size_t{64});
      opt.enable_batching = batching;
      serve::ParseService service(bundle.grammar, opt);
      auto submit_all = [&] {
        std::vector<serve::ParseRequest> batch;
        batch.reserve(workload.size());
        for (const auto& s : workload) {
          serve::ParseRequest r;
          r.sentence = s;
          batch.push_back(std::move(r));
        }
        return service.parse_batch(std::move(batch));
      };
      // One untimed warm replay first: both paths pool per-shape state
      // (NetworkScratch / the worker's BatchParser), and a server at
      // steady state runs warm — timing the cold construction would
      // charge the batched path 8x the network builds per shape.
      submit_all();
      const serve::ServiceStats warm_stats = service.stats();
      std::vector<serve::ParseResponse> responses;
      const double wall = bench::time_host([&] {
        responses = submit_all();
      });
      for (std::size_t i = 0; i < responses.size(); ++i)
        if (responses[i].status != serve::RequestStatus::Ok ||
            responses[i].domains_hash != reference[i])
          identical = false;
      out_stats = service.stats();
      // Occupancy accounting for the timed replay only.
      out_stats.batches -= warm_stats.batches;
      out_stats.batched_requests -= warm_stats.batched_requests;
      return wall;
    };

    soa.emplace();
    soa->requests = workload.size();
    soa->threads = 1;
    bool identical = true;
    serve::ServiceStats off_stats, on_stats;
    soa->wall_off_seconds = replay(false, identical, off_stats);
    soa->wall_on_seconds = replay(true, identical, on_stats);
    all_identical = all_identical && identical;
    soa->sps_off =
        static_cast<double>(soa->requests) / soa->wall_off_seconds;
    soa->sps_on = static_cast<double>(soa->requests) / soa->wall_on_seconds;
    soa->speedup = soa->sps_off > 0 ? soa->sps_on / soa->sps_off : 0.0;
    soa->batches = on_stats.batches;
    soa->batched_requests = on_stats.batched_requests;
    soa->occupancy =
        soa->batches
            ? static_cast<double>(soa->batched_requests) /
                  (static_cast<double>(soa->batches) *
                   static_cast<double>(cdg::BatchParser::kLanes))
            : 0.0;

    std::cout << "\nSoA lane-batching sweep (" << soa->requests
              << " requests, 1 thread, whole workload per submit):\n";
    util::Table btable({"batching", "wall s", "sent/s", "speedup",
                        "batches", "occupancy", "bit-identical"});
    btable.add_row({"off", bench::fmt(soa->wall_off_seconds, "%.3f"),
                    bench::fmt(soa->sps_off, "%.1f"), "1.00", "-", "-",
                    identical ? "yes" : "NO"});
    btable.add_row({"on", bench::fmt(soa->wall_on_seconds, "%.3f"),
                    bench::fmt(soa->sps_on, "%.1f"),
                    bench::fmt(soa->speedup, "%.2f"),
                    std::to_string(soa->batches),
                    bench::fmt(soa->occupancy * 100.0, "%.1f%%"),
                    identical ? "yes" : "NO"});
    btable.print(std::cout);
  }

  std::ostringstream workload_desc;
  workload_desc << "english n=" << cfg.lo << ".." << cfg.hi << " x"
                << cfg.sentences << " batch=" << cfg.batch;
  // Pre-vectorization reference for the default workload (serial
  // backend, 1 thread, 120 sentences n=4..10): lets a single report
  // carry its own before/after comparison.
  serve::ThroughputBaseline baseline;
  baseline.captured = "2026-08-06";
  baseline.commit = "pre-mask-kernels main";
  baseline.single_thread_sps = 2983.9;
  const bool default_workload = cfg.sentences == 120 && cfg.lo == 4 &&
                                cfg.hi == 10 &&
                                cfg.backend == engine::Backend::Serial;
  std::ofstream json(cfg.json_path);
  serve::write_throughput_report(json, workload_desc.str(), rows,
                                 default_workload ? &baseline : nullptr,
                                 dup ? &*dup : nullptr, soa ? &*soa : nullptr);
  std::cout << "report: " << cfg.json_path << "\n";

  // Every service above published into the global registry; one scrape
  // carries all of them (the doc reference is docs/OBSERVABILITY.md).
  if (!cfg.metrics_path.empty()) {
    std::ofstream m(cfg.metrics_path);
    m << obs::Registry::global().scrape();
    std::cout << "metrics: " << cfg.metrics_path << "\n";
  }

  // Traced section, end to end: first a small batch through a real
  // ParseService (so the trace carries serve.request -> backend.*
  // envelope -> engine-phase chains across worker threads — the
  // request graph parsec_analyze reconstructs), then one fully traced
  // direct parse: factoring (EngineSet construction), propagation +
  // mask builds + AC-4 fixpoint (run_backend with the AC-4 serial
  // path), and parse extraction — the span taxonomy of
  // docs/OBSERVABILITY.md in a single timeline.
  if (!cfg.trace_path.empty()) {
    obs::TraceSession session;
    {
      // Isolated registry: the traced service's counters must not
      // leak into Registry::global() scrapes.
      obs::Registry traced_registry;
      serve::ParseService::Options sopt;
      sopt.threads = 2;
      sopt.metrics = &traced_registry;
      serve::ParseService traced_service(bundle.grammar, sopt);
      const std::size_t traced_n = std::min<std::size_t>(workload.size(), 8);
      std::vector<serve::ParseRequest> batch;
      for (std::size_t i = 0; i < traced_n; ++i) {
        serve::ParseRequest r;
        r.sentence = workload[i];
        r.backend = cfg.backend;
        batch.push_back(std::move(r));
      }
      traced_service.parse_batch(std::move(batch));
      // The service joins its workers here, quiescing every recording
      // thread before the session is written.
    }
    engine::EngineSetOptions eopt;
    eopt.serial_ac4 = true;
    engine::EngineSet traced(bundle.grammar, eopt);
    engine::run_backend(traced, cfg.backend, workload.front());
    cdg::Network net = seq.make_network(workload.front());
    seq.parse(net);
    cdg::extract_parses(net, /*limit=*/8);
    std::ofstream t(cfg.trace_path);
    session.write_chrome_trace(t);
    std::cout << "trace: " << cfg.trace_path << " (" << session.span_count()
              << " spans)\n";
  }

  if (fault_plan) {
    std::cout << "\nfault plan fired " << fault_plan->total_fires()
              << " time(s):\n";
    for (const auto& site : fault_plan->sites())
      std::cout << "  " << site << ": " << fault_plan->fires(site) << "/"
                << fault_plan->queries(site) << " queries\n";
  }

  // Fault-rate sweep: goodput and p99 under 0%, 1%, 5% injected fault
  // rates on a mixed-backend workload (every request exercises the
  // site its backend owns; faulted requests fall back on Serial).
  if (!cfg.resilience_path.empty()) {
    // The sweep installs its own plans; release the CLI-provided one.
    fault_scope.reset();
    std::cout << "\nresilience sweep (mixed backends, " << cfg.sentences
              << " sentences):\n";
    util::Table rtable({"fault rate", "wall s", "sent/s", "ok/s", "faulted",
                        "fallbacks", "p99 ms"});
    std::ofstream rjson(cfg.resilience_path);
    rjson << "{\n  \"workload\": \"" << workload_desc.str()
          << " mixed-backends\",\n  \"rates\": [\n";
    const double kRates[] = {0.0, 0.01, 0.05};
    bool sweep_identical = true;
    for (std::size_t ri = 0; ri < std::size(kRates); ++ri) {
      const double rate = kRates[ri];
      resil::FaultPlan plan(bench::kSeed);
      if (rate > 0.0) {
        resil::FaultSpec fault;
        fault.probability = rate;
        plan.arm("arena.alloc", fault);
        plan.arm("maspar.router", fault);
        resil::FaultSpec latency;
        latency.probability = rate;
        latency.param = 0.0002;  // 200us per hit
        plan.arm("engine.latency", latency);
      }
      resil::ScopedFaultPlan scope(plan);
      serve::ParseService::Options opt;
      opt.threads = cfg.threads.back();
      opt.queue_capacity = std::max<std::size_t>(cfg.batch * 2, 64);
      serve::ParseService service(bundle.grammar, opt);
      std::uint64_t ok_count = 0;
      const double wall = bench::time_host([&] {
        for (std::size_t base = 0; base < workload.size();
             base += cfg.batch) {
          const std::size_t end =
              std::min(base + cfg.batch, workload.size());
          std::vector<serve::ParseRequest> batch;
          for (std::size_t i = base; i < end; ++i) {
            serve::ParseRequest r;
            r.sentence = workload[i];
            r.backend = engine::kAllBackends[i % engine::kNumBackends];
            batch.push_back(std::move(r));
          }
          auto responses = service.parse_batch(std::move(batch));
          for (std::size_t i = base; i < end; ++i) {
            if (responses[i - base].status == serve::RequestStatus::Ok) {
              ++ok_count;
              if (responses[i - base].domains_hash != reference[i])
                sweep_identical = false;
            }
          }
        }
      });
      const serve::ServiceStats s = service.stats();
      const double goodput = static_cast<double>(ok_count) / wall;
      rtable.add_row({bench::fmt(rate * 100.0, "%.0f%%"),
                      bench::fmt(wall, "%.3f"),
                      bench::fmt(static_cast<double>(workload.size()) / wall,
                                 "%.1f"),
                      bench::fmt(goodput, "%.1f"),
                      std::to_string(s.faulted),
                      std::to_string(s.fallback_retries),
                      bench::fmt(s.latency_p99_ms, "%.2f")});
      rjson << "    {\"fault_rate\": " << rate
            << ", \"wall_seconds\": " << wall
            << ", \"throughput_sps\": "
            << static_cast<double>(workload.size()) / wall
            << ", \"goodput_sps\": " << goodput
            << ", \"ok\": " << ok_count << ", \"faulted\": " << s.faulted
            << ", \"fallback_retries\": " << s.fallback_retries
            << ", \"fallback_ok\": " << s.fallback_ok
            << ", \"breaker_trips\": " << s.breaker_trips
            << ", \"latency_p99_ms\": " << s.latency_p99_ms
            << ", \"injected_fires\": " << plan.total_fires() << "}"
            << (ri + 1 < std::size(kRates) ? "," : "") << "\n";
    }
    rjson << "  ]\n}\n";
    rtable.print(std::cout);
    std::cout << "resilience report: " << cfg.resilience_path << "\n";
    all_identical = all_identical && sweep_identical;
  }

  if (!all_identical || !all_structured) {
    std::cout << (all_identical ? "verdict: UNSTRUCTURED STATUS\n"
                                : "verdict: BIT-IDENTITY FAILURE\n");
    return 1;
  }
  std::cout << "verdict: batched results bit-identical to serial\n";
  return 0;
}
