// Memory accounting vs the MP-1's 16 KB of PE-local memory (§2.2: "up
// to 16K 4-bit processing elements (PEs), each with 16KB of local
// memory") and the host-side network footprint's O(n^4) growth.
#include <iostream>

#include "bench_common.h"
#include "cdg/parser.h"
#include "maspar/layout.h"
#include "maspar/machine.h"
#include "util/table.h"

int main() {
  using namespace parsec;
  auto bundle = grammars::make_english_grammar();
  grammars::SentenceGenerator gen(bundle, bench::kSeed);

  std::cout
      << "==============================================================\n"
      << "Memory accounting: per-PE state vs the MP-1's 16 KB local\n"
      << "memory, and the CN's O(n^4) arc-matrix footprint\n"
      << "==============================================================\n\n";

  util::Table t({"n", "virtual PEs", "PE-local bytes", "fits 16KB",
                 "host CN bytes", "CN bytes / n^4"});
  for (int n : {4, 8, 12, 16, 20, 24}) {
    cdg::Sentence s = gen.generate_sentence(n);
    maspar::Layout layout(bundle.grammar, s);
    // Per-PE state: the l x l bit submatrix (packed into 8 bytes here;
    // l^2 bits on the real machine) + segment ids, partner id and the
    // mod/label slot registers: a handful of 32-bit words.
    const int l = layout.labels_per_role();
    const std::size_t pe_bytes = (static_cast<std::size_t>(l) * l + 7) / 8 +
                                 4 * sizeof(std::int32_t);
    // With virtualization, each physical PE holds virt_factor copies.
    const int vf =
        (layout.vpes() + maspar::kMp1MaxPes - 1) / maspar::kMp1MaxPes;
    const std::size_t phys_bytes = pe_bytes * static_cast<std::size_t>(vf);

    // Host-side CN: R*(R-1)/2 arc matrices of D*D bits + domains.
    cdg::Network net(bundle.grammar, s);
    const std::size_t R = static_cast<std::size_t>(net.num_roles());
    const std::size_t D = static_cast<std::size_t>(net.domain_size());
    const std::size_t words_per_row = (D + 63) / 64;
    const std::size_t cn_bytes =
        R * (R - 1) / 2 * D * words_per_row * 8 + R * words_per_row * 8;
    const double n4 = static_cast<double>(n) * n * n * n;

    t.add_row({std::to_string(n), std::to_string(layout.vpes()),
               std::to_string(phys_bytes),
               phys_bytes <= 16 * 1024 ? "yes" : "NO",
               util::format_value(static_cast<double>(cn_bytes)),
               bench::fmt(static_cast<double>(cn_bytes) / n4, "%.1f")});
  }
  t.print(std::cout);
  std::cout
      << "\nReading: even heavily virtualized, PE-local state stays\n"
         "orders of magnitude under the 16 KB budget — the paper's\n"
         "claim that the MP-1 'has sufficient processors' extends to\n"
         "memory.  The host CN column shows the O(n^4) matrix growth\n"
         "(bytes/n^4 approaching a constant).\n";
  return 0;
}
