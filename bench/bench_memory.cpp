// Memory accounting: per-PE state vs the MP-1's 16 KB local memory
// (§2.2), the arena-backed host CN's O(n^4) footprint and region
// breakdown, and allocation behaviour of the pooled steady state (cold
// first parse allocates the arena once; warm same-shape parses must be
// allocation-free).  Writes BENCH_memory.json.
//
// Usage: bench_memory [--json PATH]
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <new>
#include <string>

#include "bench_common.h"
#include "cdg/parser.h"
#include "maspar/layout.h"
#include "maspar/machine.h"
#include "parsec/backend.h"
#include "util/table.h"

// ---------------------------------------------------------------------
// Global heap instrumentation: every operator new/delete in the process
// bumps a counter, so "steady-state parses allocate nothing" is a
// measured fact, not an inference from arena bookkeeping.
// ---------------------------------------------------------------------
namespace {
std::atomic<std::uint64_t> g_news{0}, g_deletes{0};
}  // namespace

void* operator new(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept {
  if (p) g_deletes.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}
void operator delete(void* p, std::size_t) noexcept { operator delete(p); }

int main(int argc, char** argv) {
  using namespace parsec;
  std::string json_path = "BENCH_memory.json";
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc)
      json_path = argv[++i];
  }

  auto bundle = grammars::make_english_grammar();
  grammars::SentenceGenerator gen(bundle, bench::kSeed);

  std::cout
      << "==============================================================\n"
      << "Memory accounting: per-PE state vs the MP-1's 16 KB local\n"
      << "memory, and the arena-backed CN's O(n^4) footprint\n"
      << "==============================================================\n\n";

  // ---- table 1: PE-local memory + arena region breakdown -------------
  struct Row {
    int n;
    int vpes;
    std::size_t pe_bytes;
    std::size_t arena_bytes, domains_bytes, arcs_bytes, counts_bytes;
    std::size_t masks_bytes;
  };
  std::vector<Row> rows;
  util::Table t({"n", "virtual PEs", "PE-local bytes", "fits 16KB",
                 "arena bytes", "arcs", "counts", "masks", "arena / n^4"});
  for (int n : {4, 8, 12, 16, 20, 24}) {
    cdg::Sentence s = gen.generate_sentence(n);
    maspar::Layout layout(bundle.grammar, s);
    // Per-PE state: the l x l bit submatrix (packed into 8 bytes here;
    // l^2 bits on the real machine) + segment ids, partner id and the
    // mod/label slot registers: a handful of 32-bit words.
    const int l = layout.labels_per_role();
    const std::size_t pe_bytes = (static_cast<std::size_t>(l) * l + 7) / 8 +
                                 4 * sizeof(std::int32_t);
    // With virtualization, each physical PE holds virt_factor copies.
    const int vf =
        (layout.vpes() + maspar::kMp1MaxPes - 1) / maspar::kMp1MaxPes;
    const std::size_t phys_bytes = pe_bytes * static_cast<std::size_t>(vf);

    // Host-side CN: ONE arena allocation carries domains, arc matrices,
    // AC-4 counters and elimination staging (§2.2.1's fixed-offset
    // PE-array layout, hosted).
    cdg::Network net(bundle.grammar, s);
    const cdg::NetworkArena& a = net.arena();
    const double n4 = static_cast<double>(n) * n * n * n;
    rows.push_back({n, layout.vpes(), phys_bytes, a.bytes(),
                    a.domains_bytes(), a.arcs_bytes(), a.counts_bytes(),
                    a.masks_bytes()});
    t.add_row({std::to_string(n), std::to_string(layout.vpes()),
               std::to_string(phys_bytes),
               phys_bytes <= 16 * 1024 ? "yes" : "NO",
               util::format_value(static_cast<double>(a.bytes())),
               util::format_value(static_cast<double>(a.arcs_bytes())),
               util::format_value(static_cast<double>(a.counts_bytes())),
               util::format_value(static_cast<double>(a.masks_bytes())),
               bench::fmt(static_cast<double>(a.bytes()) / n4, "%.1f")});
  }
  t.print(std::cout);
  std::cout
      << "\nReading: even heavily virtualized, PE-local state stays\n"
         "orders of magnitude under the 16 KB budget.  The arena column\n"
         "is the CN's single backing allocation; arcs dominate and grow\n"
         "as O(n^4) (arena/n^4 approaching a constant), with the AC-4\n"
         "counter region second.\n\n";

  // ---- table 2: allocation counts, cold vs pooled steady state -------
  std::cout
      << "==============================================================\n"
      << "Heap behaviour: cold first parse vs pooled steady state\n"
      << "(global operator new/delete counts around run_backend)\n"
      << "==============================================================\n\n";

  engine::EngineSet engines(bundle.grammar);
  engine::NetworkScratch scratch;
  std::vector<cdg::Sentence> ws;
  for (int i = 0; i < 24; ++i) ws.push_back(gen.generate_sentence(8 + i % 5));

  auto parse_all = [&]() {
    std::uint64_t h = 0;
    for (const auto& s : ws)
      h ^= engine::run_backend(engines, engine::Backend::Serial, s, &scratch)
               .domains_hash;
    return h;
  };

  const std::uint64_t news_before_cold = g_news.load();
  const std::uint64_t hash_cold = parse_all();  // pool fills: 5 shapes
  const std::uint64_t cold_allocs = g_news.load() - news_before_cold;

  const std::uint64_t news_before_warm = g_news.load();
  const int warm_rounds = 10;
  std::uint64_t hash_warm = 0;
  for (int r = 0; r < warm_rounds; ++r) hash_warm = parse_all();
  const std::uint64_t warm_allocs = g_news.load() - news_before_warm;
  const double warm_per_parse =
      static_cast<double>(warm_allocs) /
      static_cast<double>(warm_rounds * ws.size());

  // Throughput of the warm pooled path (the pre-refactor serial sweep
  // measured ~1090 sentences/s on this exact workload).
  constexpr double kBaselineSps = 1090.0;
  const double secs = bench::time_host([&]() {
    for (int r = 0; r < 3; ++r) parse_all();
  });
  const double sps = 3.0 * static_cast<double>(ws.size()) / secs;

  util::Table t2({"phase", "parses", "heap allocs", "allocs/parse"});
  t2.add_row({"cold (pool filling)", std::to_string(ws.size()),
              std::to_string(cold_allocs),
              bench::fmt(static_cast<double>(cold_allocs) /
                             static_cast<double>(ws.size()),
                         "%.2f")});
  t2.add_row({"steady state (pooled)",
              std::to_string(warm_rounds * ws.size()),
              std::to_string(warm_allocs),
              bench::fmt(warm_per_parse, "%.4f")});
  t2.print(std::cout);

  std::cout << "\narena pool: " << scratch.pooled_shapes() << " shapes, "
            << scratch.arena_bytes() << " bytes, "
            << scratch.arena_allocations() << " backing allocations, "
            << scratch.arena_reinits() << " same-shape reinits ("
            << scratch.reuses() << " network reuses)\n";
  std::cout << "fixpoint throughput (warm, serial): " << bench::fmt(sps, "%.0f")
            << " sentences/s  (pre-arena baseline " << kBaselineSps
            << ")\n";
  std::cout << "hash cold " << std::hex << hash_cold << " / warm " << hash_warm
            << std::dec
            << (hash_cold == hash_warm ? "  (bit-identical)\n"
                                       : "  (MISMATCH!)\n");

  // ---- BENCH_memory.json ---------------------------------------------
  std::ofstream json(json_path);
  json << "{\n  \"workload\": \"english n=8..12, 24 sentences, serial\",\n";
  json << "  \"arena\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    json << "    {\"n\": " << r.n << ", \"vpes\": " << r.vpes
         << ", \"pe_local_bytes\": " << r.pe_bytes
         << ", \"arena_bytes\": " << r.arena_bytes
         << ", \"domains_bytes\": " << r.domains_bytes
         << ", \"arcs_bytes\": " << r.arcs_bytes
         << ", \"counts_bytes\": " << r.counts_bytes
         << ", \"masks_bytes\": " << r.masks_bytes << "}"
         << (i + 1 < rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  json << "  \"pool\": {\"shapes\": " << scratch.pooled_shapes()
       << ", \"bytes\": " << scratch.arena_bytes()
       << ", \"backing_allocations\": " << scratch.arena_allocations()
       << ", \"reinits\": " << scratch.arena_reinits()
       << ", \"reuses\": " << scratch.reuses() << "},\n";
  json << "  \"heap\": {\"cold_parses\": " << ws.size()
       << ", \"cold_allocs\": " << cold_allocs
       << ", \"steady_parses\": " << warm_rounds * ws.size()
       << ", \"steady_allocs\": " << warm_allocs
       << ", \"steady_allocs_per_parse\": " << bench::fmt(warm_per_parse, "%.6f")
       << "},\n";
  json << "  \"throughput\": {\"sentences_per_second\": "
       << bench::fmt(sps, "%.1f")
       << ", \"baseline_pre_arena_sps\": " << kBaselineSps
       << ", \"speedup_vs_baseline\": " << bench::fmt(sps / kBaselineSps, "%.3f")
       << "}\n}\n";
  std::cout << "report: " << json_path << "\n";

  return hash_cold == hash_warm ? 0 : 1;
}
