// Ablation: MasPar design decision 4 — eliminated role values have
// their rows/columns *zeroed in place* "rather than reducing [matrix]
// dimensions".
//
// Google-Benchmark micro comparison on arc-matrix-sized bit matrices:
// zeroing a row/column (the paper's choice; O(D) word ops, layout
// untouched) vs compacting the matrix to drop the dead index (layout
// rebuild, O(D^2) copy) — per elimination, across the matrix sizes the
// English grammar actually produces (D = |L|*(n+1)).
#include <benchmark/benchmark.h>

#include "util/bitmatrix.h"
#include "util/rng.h"

namespace {

using parsec::util::BitMatrix;

BitMatrix make_matrix(std::size_t d, double density) {
  parsec::util::Rng rng(7);
  BitMatrix m(d, d);
  for (std::size_t r = 0; r < d; ++r)
    for (std::size_t c = 0; c < d; ++c)
      if (rng.next_bool(density)) m.set(r, c);
  return m;
}

// Design decision 4: zero the dead row and column in place.
void BM_ZeroInPlace(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  BitMatrix m = make_matrix(d, 0.4);
  std::size_t victim = 0;
  for (auto _ : state) {
    m.zero_row(victim);
    m.zero_col(victim);
    victim = (victim + 1) % d;
    benchmark::DoNotOptimize(m.row_words(0));
  }
  state.SetItemsProcessed(state.iterations());
}

// Alternative: compact to a (d-1) x (d-1) matrix dropping the index.
void BM_ShrinkCompact(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  const BitMatrix m = make_matrix(d, 0.4);
  std::size_t victim = 0;
  for (auto _ : state) {
    BitMatrix shrunk(d - 1, d - 1);
    for (std::size_t r = 0, rr = 0; r < d; ++r) {
      if (r == victim) continue;
      for (std::size_t c = 0, cc = 0; c < d; ++c) {
        if (c == victim) continue;
        if (m.test(r, c)) shrunk.set(rr, cc);
        ++cc;
      }
      ++rr;
    }
    victim = (victim + 1) % d;
    benchmark::DoNotOptimize(shrunk.row_words(0));
  }
  state.SetItemsProcessed(state.iterations());
}

// The support check the zeroed layout must still answer quickly.
void BM_RowAnyAfterZeroing(benchmark::State& state) {
  const std::size_t d = static_cast<std::size_t>(state.range(0));
  BitMatrix m = make_matrix(d, 0.4);
  for (std::size_t r = 0; r < d; r += 3) m.zero_row(r);
  std::size_t row = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.row_any(row));
    row = (row + 1) % d;
  }
}

}  // namespace

// D = |L|*(n+1): English grammar (11 labels) at n = 7, 15, 30, 46.
BENCHMARK(BM_ZeroInPlace)->Arg(88)->Arg(176)->Arg(341)->Arg(517);
BENCHMARK(BM_ShrinkCompact)->Arg(88)->Arg(176)->Arg(341)->Arg(517);
BENCHMARK(BM_RowAnyAfterZeroing)->Arg(88)->Arg(341);

int main(int argc, char** argv) {
  std::printf(
      "==============================================================\n"
      "Ablation (design decision 4): zero rows/columns in place vs\n"
      "shrinking arc matrices on every elimination\n"
      "(sizes are D = |L|(n+1) for the English grammar at n = 7..46)\n"
      "==============================================================\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  std::printf(
      "\nReading: in-place zeroing is O(D) words and keeps every PE's\n"
      "layout static (no data movement on the SIMD array); shrinking\n"
      "costs O(D^2) per elimination and would force re-laying-out the\n"
      "PE assignment after every consistency step.\n");
  return 0;
}
