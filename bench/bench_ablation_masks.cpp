// Ablation: the vectorized constraint-evaluation layer, decomposed.
//
//   plain        one bytecode-VM dispatch per (pair, assignment) — the
//                pre-vectorization evaluation path (use_masks = false);
//   masked       hoisted-predicate truth masks decide pairs as bitwise
//                row kernels, residual VM for mask-undecided pairs —
//                the default path, bit-identical to plain (ASSERTED:
//                this binary exits nonzero on any hash divergence);
//   mask-only    masks without the residual VM — undecided pairs are
//                left alive, so the fixpoint under-approximates plain.
//                Expected to diverge; reported, not asserted.  Its time
//                isolates the pure word-kernel cost, and the gap to
//                `masked` prices the residual dispatches.
//
// Also reports the fraction of surviving pairs the masks decide
// without a VM dispatch (the number that makes the ≥2x fixpoint
// speedup mechanical), and a tile-size x ISA-tier grid over the masked
// path: every (SweepTiling rows, forced dispatch tier) combination must
// reach the plain fixpoint bit for bit (ASSERTED — the dispatch tier
// and the tile size are pure throughput knobs), and the grid prices
// each axis.  Writes BENCH_ablation_masks.json; the CI perf-smoke job
// uploads it as an artifact.
//
// Usage: bench_ablation_masks [--json PATH]
#include <fstream>
#include <iostream>
#include <string>

#include "bench_common.h"
#include "cdg/kernels.h"
#include "cdg/parser.h"
#include "cdg/simd.h"
#include "parsec/backend.h"
#include "util/table.h"

namespace {

using namespace parsec;

struct ModeResult {
  std::string name;
  double ms_per_sentence = 0.0;
  std::uint64_t hash = 0;
  std::uint64_t accepted = 0;
  cdg::NetworkCounters counters;
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_ablation_masks.json";
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--json" && i + 1 < argc)
      json_path = argv[++i];

  auto bundle = grammars::make_english_grammar();
  grammars::SentenceGenerator gen(bundle, bench::kSeed);
  std::vector<cdg::Sentence> workload;
  for (int i = 0; i < 48; ++i)
    workload.push_back(gen.generate_sentence(4 + i % 9));  // n = 4..12

  // One parse of `s` in the given mode; returns the domains hash.
  auto parse_one = [&](const cdg::SequentialParser& parser,
                       const cdg::Sentence& s, bool residual_vm,
                       cdg::NetworkCounters& total,
                       std::uint64_t& accepted) -> std::uint64_t {
    cdg::Network net = parser.make_network(s);
    if (residual_vm) {
      auto r = parser.parse(net);
      accepted += r.accepted;
      total += r.counters;
    } else {
      // The mask-only pipeline: same schedule as SequentialParser::parse
      // but every binary sweep skips the residual-VM fallback.
      parser.run_unary(net);
      const auto& binary = parser.compiled_binary();
      for (std::size_t i = 0; i < binary.size(); ++i) {
        net.apply_binary(binary[i], i, /*apply_residual=*/false);
        net.consistency_step();
      }
      net.filter();
      accepted += net.all_roles_nonempty();
      total += net.counters();
    }
    return engine::hash_domains(net);
  };

  auto run_mode = [&](const std::string& name, bool use_masks,
                      bool residual_vm) {
    cdg::ParseOptions opt;
    opt.use_masks = use_masks;
    cdg::SequentialParser parser(bundle.grammar, opt);
    ModeResult m;
    m.name = name;
    // Warm pass (mask builds, page faults), then the timed pass.
    {
      cdg::NetworkCounters scratch;
      std::uint64_t acc = 0;
      for (const auto& s : workload)
        parse_one(parser, s, residual_vm, scratch, acc);
    }
    const double secs = bench::time_host([&] {
      for (const auto& s : workload)
        m.hash ^= parse_one(parser, s, residual_vm, m.counters, m.accepted);
    });
    m.ms_per_sentence = secs * 1e3 / static_cast<double>(workload.size());
    return m;
  };

  const ModeResult plain = run_mode("plain", false, true);
  const ModeResult masked = run_mode("masked", true, true);
  const ModeResult mask_only = run_mode("mask-only", true, false);

  // Tile-size x ISA ablation over the masked path.  Tiers above the
  // host's CPUID ceiling are skipped (forcing them would silently clamp
  // and re-measure the same kernel).
  struct SimdCell {
    cdg::simd::IsaTier tier;
    std::size_t rows;
    ModeResult result;
  };
  std::vector<SimdCell> grid;
  {
    const cdg::kernels::SweepTiling saved = cdg::kernels::sweep_tiling();
    for (cdg::simd::IsaTier tier :
         {cdg::simd::IsaTier::Scalar, cdg::simd::IsaTier::Avx2,
          cdg::simd::IsaTier::Avx512}) {
      if (static_cast<int>(tier) >
          static_cast<int>(cdg::simd::detected_tier()))
        continue;
      cdg::simd::ScopedTier forced(tier);
      for (std::size_t rows : {std::size_t{1}, std::size_t{8},
                               cdg::kernels::kMaxSweepTileRows}) {
        cdg::kernels::set_sweep_tiling({rows});
        std::string name = std::string(cdg::simd::tier_name(tier)) +
                           " rows=" + std::to_string(rows);
        grid.push_back({tier, rows, run_mode(name, true, true)});
      }
    }
    cdg::kernels::set_sweep_tiling(saved);
  }
  bool grid_identical = true;
  for (const SimdCell& c : grid)
    grid_identical = grid_identical && c.result.hash == plain.hash;

  const double decided =
      static_cast<double>(masked.counters.masked_binary_pairs) /
      static_cast<double>(masked.counters.masked_binary_pairs +
                          masked.counters.binary_evals / 2);

  std::cout
      << "==============================================================\n"
      << "Ablation: truth-mask kernels x residual bytecode VM\n"
      << workload.size() << " English sentences, n = 4..12\n"
      << "==============================================================\n\n";

  util::Table t({"mode", "ms/sentence", "speedup vs plain", "vm evals",
                 "masked pairs", "same fixpoint"});
  for (const ModeResult* m : {&plain, &masked, &mask_only}) {
    t.add_row({m->name, bench::fmt(m->ms_per_sentence, "%.4f"),
               bench::fmt(plain.ms_per_sentence / m->ms_per_sentence, "%.2f"),
               std::to_string(m->counters.binary_evals),
               std::to_string(m->counters.masked_binary_pairs),
               m->hash == plain.hash ? "yes" : "no"});
  }
  t.print(std::cout);

  std::cout << "\ntile-size x ISA grid (masked path, "
            << cdg::simd::tier_name(cdg::simd::detected_tier())
            << " detected):\n";
  util::Table g({"tier", "rows", "ms/sentence", "speedup vs scalar r1",
                 "tile sweeps", "lane words", "same fixpoint"});
  const double scalar_r1_ms =
      grid.empty() ? 0.0 : grid.front().result.ms_per_sentence;
  for (const SimdCell& c : grid) {
    g.add_row({cdg::simd::tier_name(c.tier), std::to_string(c.rows),
               bench::fmt(c.result.ms_per_sentence, "%.4f"),
               bench::fmt(scalar_r1_ms / c.result.ms_per_sentence, "%.2f"),
               std::to_string(c.result.counters.tile_sweeps),
               std::to_string(c.result.counters.simd_lane_words),
               c.result.hash == plain.hash ? "yes" : "NO"});
  }
  g.print(std::cout);

  std::cout << "\npairs decided without a VM dispatch: "
            << bench::fmt(decided * 100.0, "%.2f") << "%\n"
            << "mask-only fixpoint "
            << (mask_only.hash == plain.hash
                    ? "matches plain (no residual terms fired)"
                    : "diverges from plain, as expected (residual terms "
                      "matter)")
            << "\n";

  std::ofstream json(json_path);
  json << "{\n  \"workload\": \"english n=4..12 x" << workload.size()
       << ", serial\",\n  \"modes\": [\n";
  const ModeResult* modes[] = {&plain, &masked, &mask_only};
  for (std::size_t i = 0; i < 3; ++i) {
    const ModeResult& m = *modes[i];
    json << "    {\"mode\": \"" << m.name
         << "\", \"ms_per_sentence\": " << bench::fmt(m.ms_per_sentence, "%.4f")
         << ", \"speedup_vs_plain\": "
         << bench::fmt(plain.ms_per_sentence / m.ms_per_sentence, "%.3f")
         << ", \"binary_vm_evals\": " << m.counters.binary_evals
         << ", \"masked_binary_pairs\": " << m.counters.masked_binary_pairs
         << ", \"mask_build_evals\": " << m.counters.mask_build_evals
         << ", \"accepted\": " << m.accepted
         << ", \"fixpoint_matches_plain\": "
         << (m.hash == plain.hash ? "true" : "false") << "}"
         << (i + 1 < 3 ? "," : "") << "\n";
  }
  json << "  ],\n  \"simd_ablation\": {\"detected_tier\": \""
       << cdg::simd::tier_name(cdg::simd::detected_tier())
       << "\", \"cells\": [\n";
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const SimdCell& c = grid[i];
    json << "    {\"tier\": \"" << cdg::simd::tier_name(c.tier)
         << "\", \"tile_rows\": " << c.rows << ", \"ms_per_sentence\": "
         << bench::fmt(c.result.ms_per_sentence, "%.4f")
         << ", \"speedup_vs_scalar_rows1\": "
         << bench::fmt(scalar_r1_ms / c.result.ms_per_sentence, "%.3f")
         << ", \"tile_sweeps\": " << c.result.counters.tile_sweeps
         << ", \"simd_lane_words\": " << c.result.counters.simd_lane_words
         << ", \"fixpoint_matches_plain\": "
         << (c.result.hash == plain.hash ? "true" : "false") << "}"
         << (i + 1 < grid.size() ? "," : "") << "\n";
  }
  json << "  ]},\n  \"decided_without_vm\": " << bench::fmt(decided, "%.4f")
       << ",\n  \"masked_bit_identical\": "
       << (masked.hash == plain.hash ? "true" : "false")
       << ",\n  \"simd_grid_bit_identical\": "
       << (grid_identical ? "true" : "false") << "\n}\n";
  std::cout << "report: " << json_path << "\n";

  if (masked.hash != plain.hash) {
    std::cout << "verdict: MASKED PATH DIVERGED FROM PLAIN\n";
    return 1;
  }
  if (!grid_identical) {
    std::cout << "verdict: SIMD TILE/TIER GRID DIVERGED FROM PLAIN\n";
    return 1;
  }
  std::cout << "verdict: masked path bit-identical to plain on every "
               "tile size and dispatch tier\n";
  return 0;
}
