// Ablation: MasPar design decision 1 — "we construct the arc matrices
// before the propagation of the unary constraints".
//
// On the MasPar this simplifies the kernels (no separate domain pass);
// the cost is initializing matrices over the full pre-unary domains.
// The sequential formulation builds arcs after unary propagation over
// the smaller surviving domains.  Both must reach identical fixpoints;
// this bench quantifies the work difference.
#include <iostream>

#include "bench_common.h"
#include "cdg/parser.h"
#include "util/table.h"

int main() {
  using namespace parsec;
  auto bundle = grammars::make_english_grammar();

  cdg::ParseOptions pre_opt;
  pre_opt.prebuild_arcs = true;
  cdg::ParseOptions lazy_opt;
  lazy_opt.prebuild_arcs = false;
  cdg::SequentialParser pre(bundle.grammar, pre_opt);
  cdg::SequentialParser lazy(bundle.grammar, lazy_opt);

  std::cout
      << "==============================================================\n"
      << "Ablation (design decision 1): arc matrices before vs after\n"
      << "unary constraint propagation\n"
      << "==============================================================\n\n";

  util::Table t({"n", "prebuilt arc bits", "lazy arc bits", "bits ratio",
                 "prebuilt host s", "lazy host s", "fixpoints equal"});
  grammars::SentenceGenerator gen(bundle, bench::kSeed);
  for (int n = 4; n <= 16; n += 4) {
    cdg::Sentence s = gen.generate_sentence(n);

    cdg::Network a = pre.make_network(s);
    const double pre_bits = static_cast<double>(a.arc_ones());
    const double t_pre = bench::time_host([&] {
      pre.parse(a);
    });

    cdg::Network b = lazy.make_network(s);
    double lazy_bits = 0;
    const double t_lazy = bench::time_host([&] {
      lazy.run_unary(b);
      b.build_arcs();
      lazy_bits = static_cast<double>(b.arc_ones());
      lazy.run_binary(b);
      b.filter(lazy_opt.filter_sweeps);
    });

    bool equal = true;
    for (int r = 0; r < a.num_roles(); ++r)
      if (!(a.domain(r) == b.domain(r))) equal = false;

    t.add_row({std::to_string(n), util::format_value(pre_bits),
               util::format_value(lazy_bits),
               bench::fmt(pre_bits / lazy_bits, "%.2f"),
               bench::fmt(t_pre, "%.4f"), bench::fmt(t_lazy, "%.4f"),
               equal ? "yes" : "NO"});
    if (!equal) return 1;
  }
  t.print(std::cout);
  std::cout
      << "\nReading: prebuilding initializes orders of magnitude more\n"
         "matrix bits (the full pre-unary domains) — work the MasPar\n"
         "absorbs for free in one parallel init broadcast, but which a\n"
         "sequential implementation would rather skip by building arcs\n"
         "after unary pruning.  Decision 1 trades redundant parallel\n"
         "init for simpler kernels; the fixpoint is unchanged.\n";
  return 0;
}
