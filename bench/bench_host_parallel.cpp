// Host-parallel PARSEC: OpenMP engine vs the sequential parser.
//
// The paper's point is that CDG parsing parallelizes well because the
// work is embarrassingly data-parallel per arc; on a modern
// shared-memory host the same structure maps onto threads.  This bench
// reports wall-clock for both engines across sentence lengths and
// thread counts.  (On a single-core host the speedup is ~1x by
// construction — the engine is still exercised for correctness; the
// table reports whatever the hardware gives.)
#include <iostream>

#if defined(PARSEC_HAVE_OPENMP)
#include <omp.h>
#endif

#include "bench_common.h"
#include "cdg/parser.h"
#include "parsec/omp_parser.h"
#include "util/table.h"

int main() {
  using namespace parsec;
  auto bundle = grammars::make_english_grammar();
  cdg::SequentialParser seq(bundle.grammar);

  int max_threads = 1;
#if defined(PARSEC_HAVE_OPENMP)
  max_threads = omp_get_max_threads();
#endif
  std::cout
      << "==============================================================\n"
      << "Host-parallel PARSEC (OpenMP, " << max_threads
      << " hardware thread(s) available)\n"
      << "==============================================================\n\n";

  util::Table t({"n", "sequential s", "omp 1-thread s",
                 "omp max-threads s", "speedup", "fixpoints equal"});
  grammars::SentenceGenerator gen(bundle, bench::kSeed);
  for (int n : {8, 12, 16, 20}) {
    cdg::Sentence s = gen.generate_sentence(n);

    cdg::Network ref = seq.make_network(s);
    const double t_seq = bench::time_host([&] {
      seq.parse(ref);
      ref.filter();
    });

    engine::OmpOptions one;
    one.threads = 1;
    engine::OmpParser omp1(bundle.grammar, one);
    cdg::Network n1 = seq.make_network(s);
    const double t_one = bench::time_host([&] { omp1.parse(n1); });

    engine::OmpParser ompN(bundle.grammar);
    cdg::Network nN = seq.make_network(s);
    const double t_max = bench::time_host([&] { ompN.parse(nN); });

    bool equal = true;
    for (int r = 0; r < ref.num_roles(); ++r)
      if (!(nN.domain(r) == ref.domain(r))) equal = false;

    t.add_row({std::to_string(n), bench::fmt(t_seq, "%.4f"),
               bench::fmt(t_one, "%.4f"), bench::fmt(t_max, "%.4f"),
               bench::fmt(t_seq / t_max, "%.2f") + "x",
               equal ? "yes" : "NO"});
    if (!equal) return 1;
  }
  t.print(std::cout);
  return 0;
}
