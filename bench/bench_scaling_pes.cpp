// Ablation: design decision 6 — processor virtualization.
//
// "Because the MasPar has only 16K processors, one processor may have
// to do the work of many to parse longer sentences."  This bench sweeps
// the physical PE count (the MP-1 shipped in 1K-16K configurations) and
// the sentence length, showing simulated parse time scale with the
// virtualization factor ceil(q^2 n^4 / P).
#include <iostream>

#include "bench_common.h"
#include "parsec/maspar_parser.h"
#include "util/table.h"

int main() {
  using namespace parsec;
  auto bundle = grammars::make_english_grammar();
  grammars::SentenceGenerator gen(bundle, bench::kSeed);

  std::cout
      << "==============================================================\n"
      << "Ablation (design decision 6): physical PE count sweep\n"
      << "(MP-1 configurations 1K..16K, plus a hypothetical 64K)\n"
      << "cell = simulated parse seconds (virtualization factor)\n"
      << "==============================================================\n\n";

  const std::vector<int> configs{1024, 4096, 16384, 65536};
  std::vector<std::string> headers{"n", "virtual PEs"};
  for (int p : configs) headers.push_back(std::to_string(p) + " PEs");
  util::Table t(headers);

  for (int n : {4, 6, 8, 10, 12, 14}) {
    cdg::Sentence s = gen.generate_sentence(n);
    std::vector<std::string> row{std::to_string(n)};
    bool first = true;
    for (int p : configs) {
      engine::MasparOptions opt;
      opt.physical_pes = p;
      engine::MasparParser mp(bundle.grammar, opt);
      auto r = mp.parse(s);
      if (first) {
        row.push_back(std::to_string(r.vpes));
        first = false;
      }
      row.push_back(bench::fmt(r.simulated_seconds, "%.3f") + " (x" +
                    std::to_string(r.virt_factor) + ")");
    }
    t.add_row(row);
  }
  t.print(std::cout);
  std::cout
      << "\nReading: time is flat while q^2 n^4 <= P and then grows as\n"
         "ceil(q^2 n^4 / P) — the paper's step function.  16K PEs keep a\n"
         "'typical' 10-word sentence at factor 3; the 1K configuration\n"
         "is already 40x virtualized there.\n";
  return 0;
}
