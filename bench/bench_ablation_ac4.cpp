// Ablation: sweep-based filtering (the paper's §1.4 algorithm, O(n^4)
// per sweep) vs AC-4-style support counting (O(n^4) total) — the
// classic serial trade the paper's bounded-iteration design sidesteps
// on the parallel machine.
#include <iostream>

#include "bench_common.h"
#include "cdg/ac4.h"
#include "cdg/parser.h"
#include "util/table.h"

int main() {
  using namespace parsec;
  auto bundle = grammars::make_english_grammar();
  cdg::ParseOptions deferred;
  deferred.consistency_after_each_binary = false;
  deferred.filter_sweeps = 0;
  cdg::SequentialParser parser(bundle.grammar, deferred);

  std::cout
      << "==============================================================\n"
      << "Ablation: sweep filtering vs AC-4 support counting\n"
      << "(constraints propagated with maintenance deferred, so all\n"
      << "support-based elimination happens in the filtering phase)\n"
      << "==============================================================\n\n";

  util::Table t({"n", "sweeps", "sweep filter s", "ac4 filter s",
                 "ac4 decrements", "eliminations", "equal"});
  grammars::SentenceGenerator gen(bundle, bench::kSeed);
  for (int n = 6; n <= 22; n += 4) {
    cdg::Sentence s = gen.generate_sentence(n);

    cdg::Network a = parser.make_network(s);
    parser.parse(a);
    int sweeps = 0;
    const double t_sweep = bench::time_host([&] { sweeps = a.filter(); });

    cdg::Network b = parser.make_network(s);
    parser.parse(b);
    cdg::Ac4Stats stats;
    const double t_ac4 = bench::time_host([&] { stats = cdg::filter_ac4(b); });

    bool equal = true;
    for (int r = 0; r < a.num_roles(); ++r)
      if (!(a.domain(r) == b.domain(r))) equal = false;

    t.add_row({std::to_string(n), std::to_string(sweeps),
               bench::fmt(t_sweep, "%.4f"), bench::fmt(t_ac4, "%.4f"),
               util::format_value(static_cast<double>(stats.counter_decrements)),
               util::format_value(static_cast<double>(stats.eliminations)),
               equal ? "yes" : "NO"});
    if (!equal) return 1;
  }
  t.print(std::cout);
  std::cout
      << "\nReading: identical fixpoints; AC-4 pays an O(n^4) counter\n"
         "build once, while each sweep rescans matrices — with the\n"
         "paper's observation that few sweeps are needed, the sweep\n"
         "approach stays competitive serially and is what parallelizes\n"
         "trivially on the SIMD array.\n";
  return 0;
}
