// Implementation ablation: tree-walking constraint interpreter vs the
// compiled flat-bytecode evaluator vs the vectorized (mask + residual
// VM) path used in every engine's inner loop.  (All are semantically
// identical — tested in constraint_eval_test / maskcache_test — and
// each evaluation is O(1), the property the paper's complexity
// analysis needs; this bench measures the constant.)  After the
// Google-Benchmark tables it writes BENCH_constraint_eval.json with a
// compact self-timed summary of the same comparisons.
//
// Usage: bench_constraint_eval [--json PATH] [benchmark flags...]
#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "cdg/constraint_eval.h"
#include "cdg/parser.h"
#include "grammars/english_grammar.h"
#include "grammars/sentence_gen.h"

namespace {

using namespace parsec;

struct Fixture {
  Fixture() : bundle(grammars::make_english_grammar()) {
    grammars::SentenceGenerator gen(bundle, 99);
    sentence = gen.generate_sentence(12);
    for (const auto& c : bundle.grammar.unary_constraints())
      unary.push_back(c);
    for (const auto& c : bundle.grammar.binary_constraints())
      binary.push_back(c);
    unary_cc = cdg::compile_all(unary);
    binary_cc = cdg::compile_all(binary);
    // A spread of bindings over the sentence.
    for (int pos = 1; pos <= sentence.size(); ++pos)
      for (int lab = 0; lab < bundle.grammar.num_labels(); ++lab)
        bindings.push_back(cdg::Binding{
            cdg::RoleValue{lab, (pos % sentence.size()) + 1 == pos
                                    ? cdg::kNil
                                    : (pos % sentence.size()) + 1},
            lab % 2, pos});
  }
  grammars::CdgBundle bundle;
  cdg::Sentence sentence;
  std::vector<cdg::Constraint> unary, binary;
  std::vector<cdg::CompiledConstraint> unary_cc, binary_cc;
  std::vector<cdg::Binding> bindings;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_InterpretUnary(benchmark::State& state) {
  auto& f = fixture();
  cdg::EvalContext ctx;
  ctx.sentence = &f.sentence;
  std::size_t i = 0;
  for (auto _ : state) {
    ctx.x = f.bindings[i % f.bindings.size()];
    for (const auto& c : f.unary)
      benchmark::DoNotOptimize(cdg::eval_constraint(c, ctx));
    ++i;
  }
  state.SetItemsProcessed(state.iterations() * f.unary.size());
}

void BM_CompiledUnary(benchmark::State& state) {
  auto& f = fixture();
  cdg::EvalContext ctx;
  ctx.sentence = &f.sentence;
  std::size_t i = 0;
  for (auto _ : state) {
    ctx.x = f.bindings[i % f.bindings.size()];
    for (const auto& c : f.unary_cc)
      benchmark::DoNotOptimize(cdg::eval_compiled(c, ctx));
    ++i;
  }
  state.SetItemsProcessed(state.iterations() * f.unary_cc.size());
}

void BM_InterpretBinary(benchmark::State& state) {
  auto& f = fixture();
  cdg::EvalContext ctx;
  ctx.sentence = &f.sentence;
  std::size_t i = 0;
  for (auto _ : state) {
    ctx.x = f.bindings[i % f.bindings.size()];
    ctx.y = f.bindings[(i + 7) % f.bindings.size()];
    for (const auto& c : f.binary)
      benchmark::DoNotOptimize(cdg::eval_constraint(c, ctx));
    ++i;
  }
  state.SetItemsProcessed(state.iterations() * f.binary.size());
}

void BM_CompiledBinary(benchmark::State& state) {
  auto& f = fixture();
  cdg::EvalContext ctx;
  ctx.sentence = &f.sentence;
  std::size_t i = 0;
  for (auto _ : state) {
    ctx.x = f.bindings[i % f.bindings.size()];
    ctx.y = f.bindings[(i + 7) % f.bindings.size()];
    for (const auto& c : f.binary_cc)
      benchmark::DoNotOptimize(cdg::eval_compiled(c, ctx));
    ++i;
  }
  state.SetItemsProcessed(state.iterations() * f.binary_cc.size());
}

void BM_FullParseSequential(benchmark::State& state) {
  auto& f = fixture();
  cdg::SequentialParser parser(f.bundle.grammar);
  grammars::SentenceGenerator gen(f.bundle, 5);
  cdg::Sentence s = gen.generate_sentence(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    cdg::Network net = parser.make_network(s);
    auto r = parser.parse(net);
    benchmark::DoNotOptimize(r.accepted);
  }
}

void BM_FullParseSequentialPlain(benchmark::State& state) {
  auto& f = fixture();
  cdg::ParseOptions opt;
  opt.use_masks = false;  // one VM dispatch per pair, no truth masks
  cdg::SequentialParser parser(f.bundle.grammar, opt);
  grammars::SentenceGenerator gen(f.bundle, 5);
  cdg::Sentence s = gen.generate_sentence(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    cdg::Network net = parser.make_network(s);
    auto r = parser.parse(net);
    benchmark::DoNotOptimize(r.accepted);
  }
}

double seconds_of(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Self-timed summary for BENCH_constraint_eval.json (the Google
/// Benchmark tables above are for humans; this compact block is what
/// CI archives and perf PRs diff).
void write_json(const std::string& path) {
  auto& f = fixture();
  cdg::EvalContext ctx;
  ctx.sentence = &f.sentence;

  constexpr int kReps = 4000;
  std::size_t sink = 0;
  const double interp_secs = seconds_of([&] {
    for (int i = 0; i < kReps; ++i) {
      ctx.x = f.bindings[static_cast<std::size_t>(i) % f.bindings.size()];
      ctx.y = f.bindings[static_cast<std::size_t>(i + 7) % f.bindings.size()];
      for (const auto& c : f.binary) sink += cdg::eval_constraint(c, ctx);
    }
  });
  const double compiled_secs = seconds_of([&] {
    for (int i = 0; i < kReps; ++i) {
      ctx.x = f.bindings[static_cast<std::size_t>(i) % f.bindings.size()];
      ctx.y = f.bindings[static_cast<std::size_t>(i + 7) % f.bindings.size()];
      for (const auto& c : f.binary_cc) sink += cdg::eval_compiled(c, ctx);
    }
  });
  const double per_eval = 1e9 / (kReps * static_cast<double>(f.binary.size()));

  // Full-parse comparison, masked vs plain, with the decided-pair
  // fraction from the counter contract (kernels.h).
  grammars::SentenceGenerator gen(f.bundle, 5);
  std::vector<cdg::Sentence> ss;
  for (int i = 0; i < 8; ++i) ss.push_back(gen.generate_sentence(12));
  auto run_all = [&](bool masks, cdg::NetworkCounters& total) {
    cdg::ParseOptions opt;
    opt.use_masks = masks;
    cdg::SequentialParser parser(f.bundle.grammar, opt);
    for (const auto& s : ss) {
      auto r = parser.parse_sentence(s);
      total += r.counters;
    }
  };
  cdg::NetworkCounters cm, cp;
  run_all(true, cm);   // warm
  run_all(false, cp);  // warm
  cm = {};
  cp = {};
  const double masked_secs = seconds_of([&] { run_all(true, cm); });
  const double plain_secs = seconds_of([&] { run_all(false, cp); });
  const double decided =
      static_cast<double>(cm.masked_binary_pairs) /
      static_cast<double>(cm.masked_binary_pairs + cm.binary_evals / 2);

  std::ofstream json(path);
  json << "{\n  \"workload\": \"english n=12, " << f.binary.size()
       << " binary constraints\",\n";
  json << "  \"per_eval_ns\": {\"interpreter\": "
       << interp_secs * per_eval << ", \"compiled_vm\": "
       << compiled_secs * per_eval << ", \"vm_speedup\": "
       << interp_secs / compiled_secs << "},\n";
  json << "  \"full_parse\": {\"sentences\": " << ss.size()
       << ", \"masked_ms\": " << masked_secs * 1e3
       << ", \"plain_ms\": " << plain_secs * 1e3
       << ", \"masked_speedup\": " << plain_secs / masked_secs
       << ", \"decided_without_vm\": " << decided
       << ", \"effective_binary_evals_masked\": "
       << cm.effective_binary_evals()
       << ", \"binary_evals_plain\": " << cp.binary_evals << "}\n}\n";
  benchmark::DoNotOptimize(sink);
  std::cout << "report: " << path << "\n";
}

}  // namespace

BENCHMARK(BM_InterpretUnary);
BENCHMARK(BM_CompiledUnary);
BENCHMARK(BM_InterpretBinary);
BENCHMARK(BM_CompiledBinary);
BENCHMARK(BM_FullParseSequential)->Arg(4)->Arg(8)->Arg(12);
BENCHMARK(BM_FullParseSequentialPlain)->Arg(4)->Arg(8)->Arg(12);

int main(int argc, char** argv) {
  std::string json_path = "BENCH_constraint_eval.json";
  // Peel off --json before Google Benchmark sees the flags.
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc)
      json_path = argv[++i];
    else
      rest.push_back(argv[i]);
  }
  int rest_argc = static_cast<int>(rest.size());
  benchmark::Initialize(&rest_argc, rest.data());
  if (benchmark::ReportUnrecognizedArguments(rest_argc, rest.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_json(json_path);
  return 0;
}
