// Implementation ablation: tree-walking constraint interpreter vs the
// compiled flat-bytecode evaluator used in every engine's inner loop.
// (Both are semantically identical — tested in constraint_eval_test —
// and each evaluation is O(1), the property the paper's complexity
// analysis needs; this bench measures the constant.)
#include <benchmark/benchmark.h>

#include "cdg/constraint_eval.h"
#include "cdg/parser.h"
#include "grammars/english_grammar.h"
#include "grammars/sentence_gen.h"

namespace {

using namespace parsec;

struct Fixture {
  Fixture() : bundle(grammars::make_english_grammar()) {
    grammars::SentenceGenerator gen(bundle, 99);
    sentence = gen.generate_sentence(12);
    for (const auto& c : bundle.grammar.unary_constraints())
      unary.push_back(c);
    for (const auto& c : bundle.grammar.binary_constraints())
      binary.push_back(c);
    unary_cc = cdg::compile_all(unary);
    binary_cc = cdg::compile_all(binary);
    // A spread of bindings over the sentence.
    for (int pos = 1; pos <= sentence.size(); ++pos)
      for (int lab = 0; lab < bundle.grammar.num_labels(); ++lab)
        bindings.push_back(cdg::Binding{
            cdg::RoleValue{lab, (pos % sentence.size()) + 1 == pos
                                    ? cdg::kNil
                                    : (pos % sentence.size()) + 1},
            lab % 2, pos});
  }
  grammars::CdgBundle bundle;
  cdg::Sentence sentence;
  std::vector<cdg::Constraint> unary, binary;
  std::vector<cdg::CompiledConstraint> unary_cc, binary_cc;
  std::vector<cdg::Binding> bindings;
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_InterpretUnary(benchmark::State& state) {
  auto& f = fixture();
  cdg::EvalContext ctx;
  ctx.sentence = &f.sentence;
  std::size_t i = 0;
  for (auto _ : state) {
    ctx.x = f.bindings[i % f.bindings.size()];
    for (const auto& c : f.unary)
      benchmark::DoNotOptimize(cdg::eval_constraint(c, ctx));
    ++i;
  }
  state.SetItemsProcessed(state.iterations() * f.unary.size());
}

void BM_CompiledUnary(benchmark::State& state) {
  auto& f = fixture();
  cdg::EvalContext ctx;
  ctx.sentence = &f.sentence;
  std::size_t i = 0;
  for (auto _ : state) {
    ctx.x = f.bindings[i % f.bindings.size()];
    for (const auto& c : f.unary_cc)
      benchmark::DoNotOptimize(cdg::eval_compiled(c, ctx));
    ++i;
  }
  state.SetItemsProcessed(state.iterations() * f.unary_cc.size());
}

void BM_InterpretBinary(benchmark::State& state) {
  auto& f = fixture();
  cdg::EvalContext ctx;
  ctx.sentence = &f.sentence;
  std::size_t i = 0;
  for (auto _ : state) {
    ctx.x = f.bindings[i % f.bindings.size()];
    ctx.y = f.bindings[(i + 7) % f.bindings.size()];
    for (const auto& c : f.binary)
      benchmark::DoNotOptimize(cdg::eval_constraint(c, ctx));
    ++i;
  }
  state.SetItemsProcessed(state.iterations() * f.binary.size());
}

void BM_CompiledBinary(benchmark::State& state) {
  auto& f = fixture();
  cdg::EvalContext ctx;
  ctx.sentence = &f.sentence;
  std::size_t i = 0;
  for (auto _ : state) {
    ctx.x = f.bindings[i % f.bindings.size()];
    ctx.y = f.bindings[(i + 7) % f.bindings.size()];
    for (const auto& c : f.binary_cc)
      benchmark::DoNotOptimize(cdg::eval_compiled(c, ctx));
    ++i;
  }
  state.SetItemsProcessed(state.iterations() * f.binary_cc.size());
}

void BM_FullParseSequential(benchmark::State& state) {
  auto& f = fixture();
  cdg::SequentialParser parser(f.bundle.grammar);
  grammars::SentenceGenerator gen(f.bundle, 5);
  cdg::Sentence s = gen.generate_sentence(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    cdg::Network net = parser.make_network(s);
    auto r = parser.parse(net);
    benchmark::DoNotOptimize(r.accepted);
  }
}

}  // namespace

BENCHMARK(BM_InterpretUnary);
BENCHMARK(BM_CompiledUnary);
BENCHMARK(BM_InterpretBinary);
BENCHMARK(BM_CompiledBinary);
BENCHMARK(BM_FullParseSequential)->Arg(4)->Arg(8)->Arg(12);

BENCHMARK_MAIN();
