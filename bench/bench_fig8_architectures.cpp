// Figure 8: "CDG and CFG parsing algorithms compared."
//
// The paper's table lists, per architecture, the processor count and
// running time for CFG and CDG parsing.  Those entries are analytic
// bounds; we print them verbatim next to *measured* quantities from our
// simulators at a reference length and as a growth sweep:
//   CFG:  sequential CYK work, parallel-fixpoint CYK on the CRCW P-RAM
//         (the Ruzzo row's stand-in, DESIGN.md §5), systolic mesh CYK.
//   CDG:  sequential parser work, PARSEC on the CRCW P-RAM, the
//         topology models (mesh / cellular automaton / tree-hypercube)
//         and the MasPar itself.
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "cdg/parser.h"
#include "cfg/cyk.h"
#include "cfg/cyk_mesh.h"
#include "cfg/cyk_pram.h"
#include "grammars/cfg_workloads.h"
#include "parsec/maspar_parser.h"
#include "parsec/mesh_parser.h"
#include "parsec/pram_parser.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace parsec;

struct CfgRow {
  double seq_work = 0;
  std::uint64_t pram_rounds = 0, pram_procs = 0;
  std::uint64_t mesh_waves = 0, mesh_cells = 0;
};

CfgRow measure_cfg(int n) {
  cfg::Grammar g = grammars::make_english_cfg();
  const cfg::CnfGrammar cnf = cfg::to_cnf(g);
  util::Rng rng(bench::kSeed);
  auto w = grammars::sample_string_of_length(g, rng, n, 5000);
  if (!w) return {};
  CfgRow r;
  cfg::CykStats stats;
  cfg::cyk_recognize(cnf, *w, &stats);
  r.seq_work = static_cast<double>(stats.rule_applications);
  const auto pram = cfg::pram_cyk_recognize(cnf, *w);
  r.pram_rounds = pram.rounds;
  r.pram_procs = pram.stats.max_processors;
  const auto mesh = cfg::mesh_cyk_recognize(cnf, *w);
  r.mesh_waves = mesh.waves;
  r.mesh_cells = mesh.cells;
  return r;
}

struct CdgRow {
  double seq_work = 0;
  std::uint64_t pram_steps = 0, pram_procs = 0;
  std::uint64_t mesh_steps = 0, mesh_pes = 0;
  std::uint64_t tree_steps = 0, tree_pes = 0;
  double maspar_seconds = 0;
  int maspar_vpes = 0;
};

CdgRow measure_cdg(const grammars::CdgBundle& bundle, const cdg::Sentence& s) {
  CdgRow r;
  cdg::SequentialParser seq(bundle.grammar);
  {
    cdg::Network net = seq.make_network(s);
    auto res = seq.parse(net);
    // Effective counts (kernels.h counter contract): plain-sweep
    // units whichever evaluation path ran, so the figure is stable
    // across the vectorized and per-pair evaluators.
    r.seq_work = static_cast<double>(res.counters.effective_unary_evals() +
                                     res.counters.effective_binary_evals() +
                                     res.counters.support_checks);
  }
  {
    engine::PramParser pram(bundle.grammar);
    cdg::Network net = seq.make_network(s);
    auto res = pram.parse(net);
    r.pram_steps = res.stats.time_steps;
    r.pram_procs = res.stats.max_processors;
  }
  {
    engine::TopologyParser mesh(bundle.grammar, engine::Topology::Mesh2D);
    cdg::Network net = seq.make_network(s);
    auto res = mesh.parse(net);
    r.mesh_steps = res.time_steps;
    r.mesh_pes = res.pes;
  }
  {
    engine::TopologyParser tree(bundle.grammar,
                                engine::Topology::TreeHypercube);
    cdg::Network net = seq.make_network(s);
    auto res = tree.parse(net);
    r.tree_steps = res.time_steps;
    r.tree_pes = res.pes;
  }
  {
    engine::MasparParser mp(bundle.grammar);
    auto res = mp.parse(s);
    r.maspar_seconds = res.simulated_seconds;
    r.maspar_vpes = res.vpes;
  }
  return r;
}

}  // namespace

int main() {
  auto bundle = grammars::make_english_grammar();
  const int kRef = 10;  // the paper's "typical English sentence"

  std::cout << "================================================================\n"
            << "Figure 8: CDG and CFG parsing algorithms compared\n"
            << "Paper bounds are analytic; measured columns come from the\n"
            << "simulators at n = " << kRef << " (k = grammatical constant).\n"
            << "================================================================\n\n";

  const CfgRow cfgr = measure_cfg(kRef);
  auto sweep = bench::sentence_sweep(bundle, kRef, kRef);
  const CdgRow cdgr = measure_cdg(bundle, sweep[0]);

  util::Table t({"Architecture", "paper PEs", "paper time", "measured PEs",
                 "measured steps/work"});
  // --- CFG half -------------------------------------------------------
  t.add_row({"CFG Sequential", "1", "O(k^3 n^3)", "1",
             "work=" + util::format_value(cfgr.seq_work)});
  t.add_row({"CFG CRCW P-RAM (Ruzzo)", "O(n^6)", "O(log^2 n)",
             util::format_value(static_cast<double>(cfgr.pram_procs)),
             "rounds=" + std::to_string(cfgr.pram_rounds) +
                 " (fixpoint CYK; see DESIGN.md §5)"});
  t.add_row({"CFG 2D Mesh/CA (Kosaraju)", "O(n^2)", "O(k n)",
             util::format_value(static_cast<double>(cfgr.mesh_cells)),
             "waves=" + std::to_string(cfgr.mesh_waves)});
  // --- CDG half -------------------------------------------------------
  t.add_row({"CDG Sequential", "1", "O(k n^4)", "1",
             "work=" + util::format_value(cdgr.seq_work)});
  t.add_row({"CDG CRCW P-RAM", "O(n^4)", "O(k)",
             util::format_value(static_cast<double>(cdgr.pram_procs)),
             "steps=" + std::to_string(cdgr.pram_steps)});
  t.add_row({"CDG 2D Mesh/CA", "O(n^2)", "O(k + n^2)",
             util::format_value(static_cast<double>(cdgr.mesh_pes)),
             "steps=" + std::to_string(cdgr.mesh_steps)});
  t.add_row({"CDG Tree/Hypercube", "O(n^4/log n)", "O(k + log n)",
             util::format_value(static_cast<double>(cdgr.tree_pes)),
             "steps=" + std::to_string(cdgr.tree_steps)});
  t.add_row({"CDG MasPar MP-1", "16384", "O(k + log n)",
             std::to_string(cdgr.maspar_vpes) + " virtual",
             "sim=" + bench::fmt(cdgr.maspar_seconds, "%.3f") + " s"});
  t.print(std::cout);

  // --- growth sweep: who wins and where ---------------------------------
  std::cout << "\nGrowth sweep (measured steps; the paper's asymptotic "
               "shapes):\n\n";
  util::Table sweep_t({"n", "CDG seq work", "CDG PRAM steps",
                       "CDG mesh steps", "CDG tree steps", "CFG seq work",
                       "CFG mesh waves"});
  for (int n = 4; n <= 16; n += 4) {
    auto s = bench::sentence_sweep(bundle, n, n)[0];
    const CdgRow c = measure_cdg(bundle, s);
    const CfgRow f = measure_cfg(n);
    sweep_t.add_row({std::to_string(n), util::format_value(c.seq_work),
                     std::to_string(c.pram_steps),
                     std::to_string(c.mesh_steps),
                     std::to_string(c.tree_steps),
                     util::format_value(f.seq_work),
                     std::to_string(f.mesh_waves)});
  }
  sweep_t.print(std::cout);
  std::cout
      << "\nReading: CDG P-RAM steps stay ~flat (O(k)); mesh grows ~n^2;\n"
         "tree/hypercube grows ~log n; sequential CDG work grows ~n^4 vs\n"
         "CFG's ~n^3 — the trade the paper's table reports.\n";
  return 0;
}
