// The O(k) factor: parse cost is linear in the number of constraints.
//
// "In summary, CDG parsing requires O(k n^4) time to parse a sentence
// with k = k_u + k_b constraints" (§1.4), and the parallel machines run
// in O(k) / O(k + log n).  This bench grows the constraint set (prefixes
// of the English grammar's constraint list) at fixed n and verifies the
// linear trend on both the serial op count and the simulated MasPar
// time.
#include <iostream>

#include "bench_common.h"
#include "cdg/parser.h"
#include "parsec/maspar_parser.h"
#include "util/table.h"

namespace {

using namespace parsec;

/// A copy of the English grammar holding only the first `ku` unary and
/// `kb` binary constraints.
grammars::CdgBundle prefix_grammar(const grammars::CdgBundle& full, int ku,
                                   int kb) {
  // Grammar has no constraint-removal API by design; rebuild the
  // symbols and tables, then add only the constraint prefixes.
  grammars::CdgBundle out;
  cdg::Grammar& g = out.grammar;
  const cdg::Grammar& src = full.grammar;
  for (const auto& n : src.categories().names()) g.add_category(n);
  for (const auto& n : src.labels().names()) g.add_label(n);
  for (const auto& n : src.roles().names()) g.add_role(n);
  for (cdg::RoleId r = 0; r < src.num_roles(); ++r) {
    for (cdg::LabelId l : src.labels_for_role(r)) {
      bool refined = false;
      for (cdg::CatId c = 0; c < src.num_categories(); ++c)
        if (!src.label_allowed(r, c, l)) refined = true;
      if (!refined) {
        g.allow_label(r, l);
      } else {
        for (cdg::CatId c = 0; c < src.num_categories(); ++c)
          if (src.label_allowed(r, c, l)) g.allow_label_for_category(r, c, l);
      }
    }
  }
  for (int i = 0; i < ku; ++i)
    g.add_constraint(src.unary_constraints()[i]);
  for (int i = 0; i < kb; ++i)
    g.add_constraint(src.binary_constraints()[i]);
  out.lexicon = full.lexicon;
  return out;
}

}  // namespace

int main() {
  auto full = grammars::make_english_grammar();
  const int KU = static_cast<int>(full.grammar.unary_constraints().size());
  const int KB = static_cast<int>(full.grammar.binary_constraints().size());
  const int n = 8;

  std::cout
      << "==============================================================\n"
      << "O(k): cost vs constraint count at fixed n = " << n << "\n"
      << "(prefixes of the English grammar's " << KU << " unary + " << KB
      << " binary constraints)\n"
      << "==============================================================\n\n";

  grammars::SentenceGenerator gen(full, parsec::bench::kSeed);
  const cdg::Sentence s = gen.generate_sentence(n);

  parsec::util::Table t({"k (ku+kb)", "serial constraint evals",
                         "MasPar sim s", "sim s per constraint"});
  for (double frac : {0.25, 0.5, 0.75, 1.0}) {
    const int ku = std::max(1, static_cast<int>(KU * frac));
    const int kb = std::max(1, static_cast<int>(KB * frac));
    auto bundle = prefix_grammar(full, ku, kb);
    cdg::SequentialParser seq(bundle.grammar);
    cdg::Network net = seq.make_network(s);
    seq.parse(net);
    // Effective counts: plain-sweep units regardless of whether the
    // masked or the per-pair evaluator ran (kernels.h contract).
    const double evals =
        static_cast<double>(net.counters().effective_unary_evals() +
                            net.counters().effective_binary_evals());
    engine::MasparParser mp(bundle.grammar);
    auto r = mp.parse(s);
    const int k = ku + kb;
    t.add_row({std::to_string(k), parsec::util::format_value(evals),
               parsec::bench::fmt(r.simulated_seconds, "%.3f"),
               parsec::bench::fmt(r.simulated_seconds * 1e3 / k, "%.2f") +
                   " ms"});
  }
  t.print(std::cout);
  std::cout
      << "\nReading: simulated time grows ~linearly in k while the\n"
         "per-constraint cost stays roughly constant — the O(k) factor\n"
         "of both the serial and the parallel bounds.  (Fewer\n"
         "constraints leave more role values alive, so serial evals are\n"
         "not exactly proportional; the MasPar broadcast count is.)\n";
  return 0;
}
