// §2.1 claims: PARSEC on a CRCW P-RAM runs in O(k) time with O(n^4)
// processors.  Measured: parallel step counts stay flat in n (up to the
// data-dependent filtering iterations) while the peak processor width
// grows as n^4.
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "cdg/parser.h"
#include "parsec/pram_parser.h"
#include "util/table.h"

int main() {
  using namespace parsec;
  auto bundle = grammars::make_english_grammar();
  cdg::SequentialParser seq(bundle.grammar);
  engine::PramParser pram(bundle.grammar);
  const int k = bundle.grammar.num_constraints();

  std::cout
      << "==============================================================\n"
      << "§2.1: PARSEC on the CRCW P-RAM — O(k) steps, O(n^4) processors\n"
      << "Grammar: English CDG, k = " << k << " constraints\n"
      << "==============================================================\n\n";

  util::Table t({"n", "time steps", "filter iters", "peak processors",
                 "procs / n^4", "total work"});
  grammars::SentenceGenerator gen(bundle, bench::kSeed);
  std::vector<std::uint64_t> base_steps;
  bool flat = true;
  double first_norm = -1;
  for (int n = 4; n <= 24; n += 4) {
    cdg::Network net = seq.make_network(gen.generate_sentence(n));
    auto r = pram.parse(net);
    const double n4 = std::pow(static_cast<double>(n), 4);
    const double norm = static_cast<double>(r.stats.max_processors) / n4;
    if (first_norm < 0) first_norm = norm;
    // Steps excluding the data-dependent filtering loop must be equal.
    const std::uint64_t fixed =
        r.stats.time_steps -
        3 * static_cast<std::uint64_t>(r.consistency_iterations);
    base_steps.push_back(fixed);
    if (fixed != base_steps.front()) flat = false;
    t.add_row({std::to_string(n), std::to_string(r.stats.time_steps),
               std::to_string(r.consistency_iterations),
               util::format_value(static_cast<double>(r.stats.max_processors)),
               bench::fmt(norm, "%.2f"),
               util::format_value(static_cast<double>(r.stats.total_work))});
  }
  t.print(std::cout);
  std::cout << "\nverdict:\n"
            << "  constraint-phase steps are "
            << (flat ? "IDENTICAL for every n (O(k) confirmed)"
                     : "NOT flat — check")
            << "\n  processors/n^4 stays within a grammatical-constant "
               "band: the O(n^4) width\n";
  return flat ? 0 : 1;
}
