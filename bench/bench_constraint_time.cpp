// Results §3, experiment 1: "Time trials indicate that it takes less
// than 10 milliseconds to propagate a constraint in a network of one to
// seven words."
//
// We measure the simulated MasPar time per constraint (total pipeline
// time divided by the constraint count, as the paper's trials did) for
// n = 1..7, and the host time per constraint of the portable sequential
// parser for the serial-shape contrast.
#include <iostream>

#include "bench_common.h"
#include "cdg/parser.h"
#include "parsec/maspar_parser.h"
#include "util/table.h"

int main() {
  using namespace parsec;
  auto bundle = grammars::make_english_grammar();
  const int k = bundle.grammar.num_constraints();
  engine::MasparParser mp(bundle.grammar);
  cdg::SequentialParser seq(bundle.grammar);

  std::cout << "==========================================================\n"
            << "Results §3 (1): time to propagate one constraint, n = 1..7\n"
            << "Paper: < 10 ms per constraint on the MasPar MP-1\n"
            << "Grammar: English CDG, k = " << k << " constraints\n"
            << "==========================================================\n\n";

  util::Table t({"n", "MasPar sim ms/constraint", "paper bound",
                 "serial host ms/constraint"});
  grammars::SentenceGenerator gen(bundle, bench::kSeed);
  bool all_within = true;
  for (int n = 1; n <= 7; ++n) {
    // n = 1 has no 2-word sentence; reuse a single noun ("it").
    cdg::Sentence s =
        n == 1 ? bundle.lexicon.tag({"it"}) : gen.generate_sentence(n);
    auto r = mp.parse(s);
    const double sim_ms = r.simulated_seconds * 1e3 / k;
    if (sim_ms >= 10.0) all_within = false;

    double host_s = bench::time_host([&] {
      cdg::Network net = seq.make_network(s);
      seq.parse(net);
    });
    t.add_row({std::to_string(n), bench::fmt(sim_ms, "%.3f"), "< 10 ms",
               bench::fmt(host_s * 1e3 / k, "%.4f")});
  }
  t.print(std::cout);
  std::cout << "\nverdict: "
            << (all_within ? "all n in 1..7 under the paper's 10 ms bound"
                           : "BOUND EXCEEDED — check calibration")
            << "\n";
  return all_within ? 0 : 1;
}
