// Results §3, experiment 2: total parse time as a function of sentence
// length — "approximately 0.15 seconds" for the example sentence,
// "0.45 seconds" for a 10-word sentence, and overall "a discrete step
// function which grows as n^4" driven by processor virtualization.
//
// A second section measures the HOST fixpoint phase (serial backend,
// pooled scratch) against per-length baselines captured on the
// pre-mask-kernel revision, and writes BENCH_parse_time.json with both
// tables so perf PRs can diff the numbers.
//
// Usage: bench_parse_time [--json PATH] [--metrics-out PATH]
//
// --metrics-out writes a Prometheus scrape of the run's cost counters
// (ACU broadcasts, router scans, effective evals; see
// docs/OBSERVABILITY.md) into an isolated registry.
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_common.h"
#include "cdg/batch.h"
#include "obs/metrics.h"
#include "parsec/backend.h"
#include "parsec/maspar_parser.h"
#include "util/table.h"

namespace {

/// Host fixpoint ms/sentence on the pre-vectorization revision
/// (commit "arena-backed constraint network", measured 2026-08-06 on
/// the same workload: 8 sentences per length, seed kSeed + n).
struct HostBaseline {
  int n;
  double ms;
};
constexpr HostBaseline kHostBaseline[] = {
    {4, 0.059}, {6, 0.180},  {8, 0.386},  {10, 0.726},
    {12, 1.218}, {14, 1.827}, {16, 3.896},
};
constexpr double kHostBaselineGeomeanMs = 0.592;

struct HostRow {
  int n;
  double ms;
  double baseline_ms;
  double batched_ms;  // SoA 8-lane batch, per sentence
  std::uint64_t hash;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace parsec;
  std::string json_path = "BENCH_parse_time.json";
  std::string metrics_path;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc)
      json_path = argv[++i];
    else if (std::string(argv[i]) == "--metrics-out" && i + 1 < argc)
      metrics_path = argv[++i];
  }
  auto bundle = grammars::make_english_grammar();
  engine::MasparParser mp(bundle.grammar);
  // Isolated registry: the scrape reflects exactly this run.
  obs::Registry registry;
  engine::StatsPublisher publisher(&registry);

  std::cout
      << "=============================================================\n"
      << "Results §3 (2): MasPar parse time vs sentence length\n"
      << "Paper: ~0.15 s for the example sentence, 0.45 s at n = 10;\n"
      << "a step function growing as n^4 (virtualization on 16K PEs)\n"
      << "=============================================================\n\n";

  util::Table t({"n", "virtual PEs", "virt factor", "sim seconds",
                 "paper reference"});
  grammars::SentenceGenerator gen(bundle, bench::kSeed);
  double t3 = 0, t10 = 0;
  struct MasparRow {
    int n;
    int vpes;
    int virt_factor;
    double sim_seconds;
  };
  std::vector<MasparRow> maspar_rows;
  for (int n = 2; n <= 16; ++n) {
    auto r = mp.parse(gen.generate_sentence(n));
    engine::BackendStats d;
    d.requests = 1;
    d.accepted = r.accepted ? 1 : 0;
    d.consistency_iterations =
        static_cast<std::uint64_t>(r.consistency_iterations);
    d.maspar = r.stats;
    d.maspar_simulated_seconds = r.simulated_seconds;
    publisher.publish(engine::Backend::Maspar, d);
    if (n == 3) t3 = r.simulated_seconds;
    if (n == 10) t10 = r.simulated_seconds;
    maspar_rows.push_back({n, r.vpes, r.virt_factor, r.simulated_seconds});
    const char* ref = n <= 8 ? "~0.15 s (example sentence)"
                             : (n == 10 ? "0.45 s (10-word sentence)" : "");
    t.add_row({std::to_string(n), std::to_string(r.vpes),
               std::to_string(r.virt_factor),
               bench::fmt(r.simulated_seconds, "%.3f"), ref});
  }
  t.print(std::cout);

  std::cout << "\nshape checks:\n"
            << "  measured t(3)  = " << bench::fmt(t3, "%.3f")
            << " s   (paper ~0.15 s)\n"
            << "  measured t(10) = " << bench::fmt(t10, "%.3f")
            << " s   (paper  0.45 s)\n"
            << "  measured ratio t(10)/t(3) = " << bench::fmt(t10 / t3, "%.2f")
            << "   (paper 3.0: virtualization factor 3 at n = 10)\n";
  const bool shape_ok = t10 / t3 > 2.0 && t10 / t3 < 4.5;
  std::cout << "verdict: " << (shape_ok ? "step-function shape reproduced"
                                        : "SHAPE MISMATCH")
            << "\n";

  // ---- host fixpoint phase vs pre-vectorization baseline --------------
  std::cout
      << "\n=============================================================\n"
      << "Host fixpoint phase: serial backend, pooled scratch, vs the\n"
      << "pre-mask-kernel baseline (same workload, same machine class)\n"
      << "=============================================================\n\n";

  engine::EngineSet engines(bundle.grammar);
  engine::NetworkScratch scratch;
  cdg::BatchParser batcher(bundle.grammar);
  constexpr int kSentencesPerN = 8;
  std::vector<HostRow> host_rows;
  bool batched_identical = true;
  util::Table th({"n", "ms/sentence", "baseline ms", "speedup",
                  "batched ms", "batch speedup"});
  double geo = 0.0, geo_base = 0.0, geo_batched = 0.0;
  for (const HostBaseline& base : kHostBaseline) {
    const int n = base.n;
    grammars::SentenceGenerator hgen(bundle,
                                     bench::kSeed + static_cast<std::uint64_t>(n));
    std::vector<cdg::Sentence> ss;
    for (int i = 0; i < kSentencesPerN; ++i)
      ss.push_back(hgen.generate_sentence(n));
    // Warm the pool so timing excludes the arena cold allocation; the
    // warm pass also feeds the metrics scrape (identical counter
    // profile per repetition, so one pass per sentence suffices).
    std::uint64_t seq_h = 0;
    for (const auto& s : ss) {
      auto run =
          engine::run_backend(engines, engine::Backend::Serial, s, &scratch);
      seq_h ^= run.domains_hash;
      publisher.publish(engine::Backend::Serial, run.stats);
    }
    const int reps = n <= 8 ? 40 : (n <= 12 ? 12 : 4);
    std::uint64_t h = 0;
    const double secs = bench::time_host([&] {
      for (int r = 0; r < reps; ++r)
        for (const auto& s : ss)
          h ^= engine::run_backend(engines, engine::Backend::Serial, s,
                                   &scratch)
                   .domains_hash;
    });
    const double ms = secs * 1e3 / (reps * kSentencesPerN);

    // SoA batch: the same 8 sentences in one full lane group (warm pass
    // checks bit-identity against the sequential fixpoints).
    {
      std::uint64_t bat_h = 0;
      for (const auto& run : engine::run_backend_batch(batcher, ss))
        bat_h ^= run.domains_hash;
      if (bat_h != seq_h) batched_identical = false;
    }
    std::uint64_t bh = 0;
    const double bsecs = bench::time_host([&] {
      for (int r = 0; r < reps; ++r)
        for (const auto& run : engine::run_backend_batch(batcher, ss))
          bh ^= run.domains_hash;
    });
    const double bms = bsecs * 1e3 / (reps * kSentencesPerN);

    host_rows.push_back({n, ms, base.ms, bms, h});
    geo += std::log(ms);
    geo_base += std::log(base.ms);
    geo_batched += std::log(bms);
    th.add_row({std::to_string(n), bench::fmt(ms, "%.4f"),
                bench::fmt(base.ms, "%.3f"),
                bench::fmt(base.ms / ms, "%.2f") + "x",
                bench::fmt(bms, "%.4f"),
                bench::fmt(ms / bms, "%.2f") + "x"});
  }
  const double geomean_ms = std::exp(geo / static_cast<double>(host_rows.size()));
  const double geomean_base =
      std::exp(geo_base / static_cast<double>(host_rows.size()));
  const double geomean_batched =
      std::exp(geo_batched / static_cast<double>(host_rows.size()));
  th.print(std::cout);
  std::cout << "\ngeomean " << bench::fmt(geomean_ms, "%.4f") << " ms vs "
            << bench::fmt(geomean_base, "%.3f")
            << " ms baseline: " << bench::fmt(geomean_base / geomean_ms, "%.2f")
            << "x\n"
            << "geomean batched " << bench::fmt(geomean_batched, "%.4f")
            << " ms: " << bench::fmt(geomean_ms / geomean_batched, "%.2f")
            << "x vs sequential, lanes "
            << (batched_identical ? "bit-identical" : "DIVERGED") << "\n";

  // ---- BENCH_parse_time.json -----------------------------------------
  std::ofstream json(json_path);
  json << "{\n  \"workload\": \"english, maspar n=2..16 + host fixpoint"
          " n=4..16 x8\",\n";
  json << "  \"maspar\": [\n";
  for (std::size_t i = 0; i < maspar_rows.size(); ++i) {
    const auto& r = maspar_rows[i];
    json << "    {\"n\": " << r.n << ", \"vpes\": " << r.vpes
         << ", \"virt_factor\": " << r.virt_factor
         << ", \"simulated_seconds\": " << bench::fmt(r.sim_seconds, "%.4f")
         << "}" << (i + 1 < maspar_rows.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  json << "  \"maspar_shape\": {\"t3\": " << bench::fmt(t3, "%.4f")
       << ", \"t10\": " << bench::fmt(t10, "%.4f")
       << ", \"ratio\": " << bench::fmt(t10 / t3, "%.3f")
       << ", \"shape_ok\": " << (shape_ok ? "true" : "false") << "},\n";
  json << "  \"host_fixpoint\": {\n"
       << "    \"baseline\": {\"captured\": \"2026-08-06\", \"commit\": "
          "\"pre-mask-kernels main\"},\n"
       << "    \"rows\": [\n";
  for (std::size_t i = 0; i < host_rows.size(); ++i) {
    const HostRow& r = host_rows[i];
    json << "      {\"n\": " << r.n << ", \"ms_per_sentence\": "
         << bench::fmt(r.ms, "%.4f")
         << ", \"baseline_ms\": " << bench::fmt(r.baseline_ms, "%.3f")
         << ", \"speedup\": " << bench::fmt(r.baseline_ms / r.ms, "%.3f")
         << ", \"batched_ms_per_sentence\": " << bench::fmt(r.batched_ms, "%.4f")
         << ", \"batched_speedup\": " << bench::fmt(r.ms / r.batched_ms, "%.3f")
         << "}" << (i + 1 < host_rows.size() ? "," : "") << "\n";
  }
  json << "    ],\n"
       << "    \"geomean_ms\": " << bench::fmt(geomean_ms, "%.4f")
       << ",\n    \"baseline_geomean_ms\": "
       << bench::fmt(kHostBaselineGeomeanMs, "%.3f")
       << ",\n    \"geomean_speedup\": "
       << bench::fmt(geomean_base / geomean_ms, "%.3f")
       << ",\n    \"batched_geomean_ms\": "
       << bench::fmt(geomean_batched, "%.4f")
       << ",\n    \"batched_geomean_speedup\": "
       << bench::fmt(geomean_ms / geomean_batched, "%.3f")
       << ",\n    \"batched_bit_identical\": "
       << (batched_identical ? "true" : "false") << "\n  }\n}\n";
  std::cout << "report: " << json_path << "\n";

  if (!metrics_path.empty()) {
    std::ofstream m(metrics_path);
    m << registry.scrape();
    std::cout << "metrics: " << metrics_path << "\n";
  }

  if (!batched_identical) {
    std::cout << "verdict: BATCH LANES DIVERGED FROM SEQUENTIAL FIXPOINT\n";
    return 1;
  }
  return shape_ok ? 0 : 1;
}
