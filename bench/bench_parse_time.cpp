// Results §3, experiment 2: total parse time as a function of sentence
// length — "approximately 0.15 seconds" for the example sentence,
// "0.45 seconds" for a 10-word sentence, and overall "a discrete step
// function which grows as n^4" driven by processor virtualization.
#include <iostream>

#include "bench_common.h"
#include "parsec/maspar_parser.h"
#include "util/table.h"

int main() {
  using namespace parsec;
  auto bundle = grammars::make_english_grammar();
  engine::MasparParser mp(bundle.grammar);

  std::cout
      << "=============================================================\n"
      << "Results §3 (2): MasPar parse time vs sentence length\n"
      << "Paper: ~0.15 s for the example sentence, 0.45 s at n = 10;\n"
      << "a step function growing as n^4 (virtualization on 16K PEs)\n"
      << "=============================================================\n\n";

  util::Table t({"n", "virtual PEs", "virt factor", "sim seconds",
                 "paper reference"});
  grammars::SentenceGenerator gen(bundle, bench::kSeed);
  double t3 = 0, t10 = 0;
  for (int n = 2; n <= 16; ++n) {
    auto r = mp.parse(gen.generate_sentence(n));
    if (n == 3) t3 = r.simulated_seconds;
    if (n == 10) t10 = r.simulated_seconds;
    const char* ref = n <= 8 ? "~0.15 s (example sentence)"
                             : (n == 10 ? "0.45 s (10-word sentence)" : "");
    t.add_row({std::to_string(n), std::to_string(r.vpes),
               std::to_string(r.virt_factor),
               bench::fmt(r.simulated_seconds, "%.3f"), ref});
  }
  t.print(std::cout);

  std::cout << "\nshape checks:\n"
            << "  measured t(3)  = " << bench::fmt(t3, "%.3f")
            << " s   (paper ~0.15 s)\n"
            << "  measured t(10) = " << bench::fmt(t10, "%.3f")
            << " s   (paper  0.45 s)\n"
            << "  measured ratio t(10)/t(3) = " << bench::fmt(t10 / t3, "%.2f")
            << "   (paper 3.0: virtualization factor 3 at n = 10)\n";
  const bool shape_ok = t10 / t3 > 2.0 && t10 / t3 < 4.5;
  std::cout << "verdict: " << (shape_ok ? "step-function shape reproduced"
                                        : "SHAPE MISMATCH")
            << "\n";
  return shape_ok ? 0 : 1;
}
