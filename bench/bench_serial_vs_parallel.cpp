// Results §3, experiment 3: serial vs parallel.
//
// Paper: "The corresponding times for our serial implementation
// (running on a Sun SparcStation I) is 15 seconds to apply a single
// constraint and 3 minutes to parse a sentence of 7 words", vs the
// MasPar's <10 ms/constraint and 0.15 s/parse.
//
// Absolute 1989-SPARC numbers are unreproducible; the claims we verify
// are the *shapes*: the serial cost grows ~n^4 while the simulated
// MasPar stays flat until virtualization kicks in, and the
// serial/parallel ratio is orders of magnitude (the paper's ratio is
// 180 s / 0.15 s = 1200x at n = 7).  Serial work is reported both as
// host wall-clock and as machine-independent operation counts.
#include <iostream>

#include "bench_common.h"
#include "cdg/parser.h"
#include "parsec/maspar_parser.h"
#include "util/table.h"

int main() {
  using namespace parsec;
  auto bundle = grammars::make_english_grammar();
  cdg::SequentialParser seq(bundle.grammar);
  engine::MasparParser mp(bundle.grammar);
  const int k = bundle.grammar.num_constraints();

  std::cout
      << "==============================================================\n"
      << "Results §3 (3): serial vs parallel parse cost\n"
      << "Paper @ n=7: serial 15 s/constraint, ~180 s/parse (SPARC I);\n"
      << "             MasPar < 10 ms/constraint, ~0.15 s/parse -> ~1200x\n"
      << "==============================================================\n\n";

  util::Table t({"n", "arc elements", "serial ops", "serial host s",
                 "MasPar sim s", "elems ratio vs n=4", "n^4 ratio"});
  grammars::SentenceGenerator gen(bundle, bench::kSeed);
  double base_elems = 0;
  double serial7 = 0, maspar7 = 0;
  for (int n = 4; n <= 20; n += 2) {
    cdg::Sentence s = gen.generate_sentence(n);
    // The paper's O(n^4) object: the arc elements of the freshly
    // constructed CN ("the time to construct the arcs and initialize
    // the matrices is O(n^4)", §1.4) — also exactly what the MasPar
    // allocates PEs for.  Constraint pruning then shrinks the live set
    // (the later columns), which is why realistic serial cost grows
    // slower than the worst case.
    cdg::Network probe = seq.make_network(s);
    const double elems = static_cast<double>(probe.arc_ones());
    if (n == 4) base_elems = elems;

    cdg::Network net = seq.make_network(s);
    double host = bench::time_host([&] { seq.parse(net); });
    const auto& c = net.counters();
    const double ops = static_cast<double>(
        c.effective_unary_evals() + c.effective_binary_evals() +
        c.support_checks + c.arc_zeroings);
    auto r = mp.parse(s);
    if (n == 8) {
      serial7 = host;
      maspar7 = r.simulated_seconds;
    }
    const double n4 = static_cast<double>(n) * n * n * n / (4.0 * 4 * 4 * 4);
    t.add_row({std::to_string(n), util::format_value(elems),
               util::format_value(ops), bench::fmt(host, "%.4f"),
               bench::fmt(r.simulated_seconds, "%.3f"),
               bench::fmt(elems / base_elems, "%.1f"),
               bench::fmt(n4, "%.1f")});
  }
  t.print(std::cout);

  std::cout
      << "\nReading: 'arc elements' — the paper's O(n^4) object — tracks\n"
         "the 'n^4 ratio' column; total serial ops grow slower because\n"
         "constraint pruning flattens the later passes (the realistic\n"
         "serial cost still explodes while the MasPar column is a step\n"
         "function).  Paper's serial-vs-parallel gap at a 7-8 word\n"
         "sentence was ~1200x on wall-clock; our host CPU is ~10^4x\n"
         "faster than a SPARC I, so the simulated-vs-host ratio is\n"
         "reported for shape, not magnitude: host "
      << bench::fmt(serial7, "%.4f") << " s vs simulated MasPar "
      << bench::fmt(maspar7, "%.3f") << " s.\n";

  // Per-constraint serial shape (paper: 15 s per constraint at n<=7).
  std::cout << "\nserial cost per constraint (ops/k):\n";
  util::Table t2({"n", "ops per constraint"});
  for (int n : {4, 8, 12, 16, 20}) {
    cdg::Sentence s = gen.generate_sentence(n);
    cdg::Network net = seq.make_network(s);
    seq.parse(net);
    const auto& c = net.counters();
    const double ops =
        static_cast<double>(c.effective_unary_evals() +
                            c.effective_binary_evals() + c.support_checks);
    t2.add_row({std::to_string(n), util::format_value(ops / k)});
  }
  t2.print(std::cout);
  return 0;
}
