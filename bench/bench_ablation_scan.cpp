// Ablation: MasPar design decision 3 — the router's scanAnd()/scanOr()
// primitives do global combining in logarithmic time.
//
// We re-price one full parse's machine activity under three combining
// networks: the MP-1 global router (log2 P per scan), the MP-1 X-Net
// mesh (2*sqrt(P): nearest-neighbour only), and a routerless serial
// sweep (P steps).  The kernel's scan count is identical; only the
// per-scan cost changes — this isolates exactly what the global router
// buys and why the paper's bound is O(k + log n) rather than
// O(k + sqrt(n)) or O(k + n).
#include <cmath>
#include <iostream>

#include "bench_common.h"
#include "maspar/cost_model.h"
#include "parsec/maspar_parser.h"
#include "util/table.h"

namespace {

double reprice(const parsec::maspar::MachineStats& s, int vpes, int ppes,
               double hops_per_scan) {
  const auto cm = parsec::maspar::CostModel::mp1();
  const int vf = (vpes + ppes - 1) / ppes;
  const double instr =
      cm.t_instr * (static_cast<double>(vf) * s.plural_ops + s.acu_ops);
  const double scans = static_cast<double>(s.scan_ops + s.route_ops) *
                       (vf * cm.t_instr + hops_per_scan * cm.t_route);
  return instr + scans;
}

}  // namespace

int main() {
  using namespace parsec;
  auto bundle = grammars::make_english_grammar();
  engine::MasparParser mp(bundle.grammar);

  std::cout
      << "==============================================================\n"
      << "Ablation (design decision 3): global router scans vs X-Net\n"
      << "mesh vs serial combining (same kernel, different per-scan cost)\n"
      << "==============================================================\n\n";

  const int P = maspar::kMp1MaxPes;
  util::Table t({"n", "scans", "router log2(P) s", "xnet 2*sqrt(P) s",
                 "serial P s", "router speedup vs serial"});
  grammars::SentenceGenerator gen(bundle, bench::kSeed);
  for (int n : {4, 7, 10, 13, 16}) {
    std::unique_ptr<engine::MasparParse> parse;
    auto r = mp.parse(gen.generate_sentence(n), parse);
    const int eff = std::min(r.vpes, P);
    const double log_hops = std::ceil(std::log2(eff + 1));
    const double mesh_hops = 2.0 * std::sqrt(static_cast<double>(eff));
    const double serial_hops = static_cast<double>(eff);
    const double t_router = reprice(r.stats, r.vpes, P, log_hops);
    const double t_mesh = reprice(r.stats, r.vpes, P, mesh_hops);
    const double t_serial = reprice(r.stats, r.vpes, P, serial_hops);
    t.add_row({std::to_string(n),
               std::to_string(r.stats.scan_ops + r.stats.route_ops),
               bench::fmt(t_router, "%.3f"), bench::fmt(t_mesh, "%.3f"),
               bench::fmt(t_serial, "%.1f"),
               bench::fmt(t_serial / t_router, "%.0f") + "x"});
  }
  t.print(std::cout);
  std::cout
      << "\nReading: without the router the consistency-maintenance scans\n"
         "dominate completely (O(k + n^2)-ish behaviour); the global\n"
         "router's log-time scans are what make the O(k + log n) bound —\n"
         "and the paper's design decision 3 — possible.\n";
  return 0;
}
