#include "cdg/ac4.h"

#include <gtest/gtest.h>

#include "cdg/parser.h"
#include "grammars/english_grammar.h"
#include "grammars/sentence_gen.h"
#include "grammars/toy_grammar.h"

namespace {

using namespace parsec;
using cdg::Network;

class Ac4Test : public ::testing::Test {
 protected:
  /// Propagates constraints with maintenance deferred, so filtering has
  /// real work to do.
  static cdg::ParseOptions deferred() {
    cdg::ParseOptions opt;
    opt.consistency_after_each_binary = false;
    opt.filter_sweeps = 0;
    return opt;
  }
};

TEST_F(Ac4Test, MatchesSweepFilteringOnToySentences) {
  auto bundle = grammars::make_toy_grammar();
  cdg::SequentialParser parser(bundle.grammar, deferred());
  for (const char* text :
       {"The program runs", "A dog halts", "program The runs",
        "The program runs halts", "The The dog runs", "dog crashes"}) {
    cdg::Sentence s = bundle.tag(text);
    Network sweep = parser.make_network(s);
    parser.parse(sweep);
    sweep.filter();

    Network ac4 = parser.make_network(s);
    parser.parse(ac4);
    auto stats = cdg::filter_ac4(ac4);

    for (int r = 0; r < sweep.num_roles(); ++r)
      EXPECT_EQ(ac4.domain(r), sweep.domain(r)) << text << " role " << r;
    EXPECT_EQ(ac4.all_roles_nonempty(), sweep.all_roles_nonempty()) << text;
    (void)stats;
  }
}

TEST_F(Ac4Test, MatchesSweepFilteringOnGeneratedEnglish) {
  auto bundle = grammars::make_english_grammar();
  cdg::SequentialParser parser(bundle.grammar, deferred());
  grammars::SentenceGenerator gen(bundle, 808);
  for (int n : {4, 7, 10, 13, 16}) {
    cdg::Sentence s = gen.generate_sentence(n);
    Network sweep = parser.make_network(s);
    parser.parse(sweep);
    sweep.filter();

    Network ac4 = parser.make_network(s);
    parser.parse(ac4);
    cdg::filter_ac4(ac4);

    for (int r = 0; r < sweep.num_roles(); ++r)
      EXPECT_EQ(ac4.domain(r), sweep.domain(r)) << n << " role " << r;
  }
}

TEST_F(Ac4Test, IdempotentAtFixpoint) {
  auto bundle = grammars::make_toy_grammar();
  cdg::SequentialParser parser(bundle.grammar, deferred());
  Network net = parser.make_network(bundle.tag("The program runs"));
  parser.parse(net);
  auto first = cdg::filter_ac4(net);
  EXPECT_GT(first.eliminations, 0u);
  auto second = cdg::filter_ac4(net);
  EXPECT_EQ(second.eliminations, 0u);
  EXPECT_EQ(net.consistency_step(), 0);
}

TEST_F(Ac4Test, StatsAccountWork) {
  auto bundle = grammars::make_english_grammar();
  cdg::SequentialParser parser(bundle.grammar, deferred());
  grammars::SentenceGenerator gen(bundle, 99);
  Network net = parser.make_network(gen.generate_sentence(10));
  parser.parse(net);
  auto stats = cdg::filter_ac4(net);
  EXPECT_GT(stats.initial_count_work, 0u);
  // Every elimination decrements at least... possibly zero partners
  // (already-zero rows); the counters only move when bits exist.
  EXPECT_GE(stats.counter_decrements, 0u);
}

TEST_F(Ac4Test, CascadeFullyEmptiesDeadNetwork) {
  auto bundle = grammars::make_toy_grammar();
  cdg::SequentialParser parser(bundle.grammar, deferred());
  Network net = parser.make_network(bundle.tag("program The runs"));
  parser.parse(net);
  cdg::filter_ac4(net);
  // The rejection cascades: once one role empties, everything connected
  // loses support.
  EXPECT_FALSE(net.all_roles_nonempty());
  EXPECT_EQ(net.total_alive(), 0u);
}

}  // namespace
