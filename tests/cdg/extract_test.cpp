#include "cdg/extract.h"

#include <gtest/gtest.h>

#include "cdg/parser.h"
#include "grammars/toy_grammar.h"

namespace {

using namespace parsec;
using cdg::Network;
using cdg::SequentialParser;

class ExtractTest : public ::testing::Test {
 protected:
  ExtractTest() : bundle_(grammars::make_toy_grammar()), p_(bundle_.grammar) {}

  Network parsed(const std::string& text) {
    Network net = p_.make_network(bundle_.tag(text));
    p_.parse(net);
    return net;
  }

  grammars::CdgBundle bundle_;
  SequentialParser p_;
};

TEST_F(ExtractTest, UniqueParseExtracted) {
  Network net = parsed("The program runs");
  auto parses = cdg::extract_parses(net);
  ASSERT_EQ(parses.size(), 1u);
  EXPECT_EQ(cdg::count_parses(net), 1u);
  EXPECT_TRUE(cdg::has_parse(net));
  // The assignment respects every arc matrix.
  const auto& sol = parses[0];
  const auto& idx = net.indexer();
  for (int a = 0; a < net.num_roles(); ++a)
    for (int b = a + 1; b < net.num_roles(); ++b)
      EXPECT_TRUE(net.arc_allows(a, idx.encode(sol.assignment[a]), b,
                                 idx.encode(sol.assignment[b])));
}

TEST_F(ExtractTest, RejectedSentenceHasNoParse) {
  Network net = parsed("program The runs");
  EXPECT_EQ(cdg::count_parses(net), 0u);
  EXPECT_FALSE(cdg::has_parse(net));
  EXPECT_TRUE(cdg::extract_parses(net).empty());
}

TEST_F(ExtractTest, AmbiguousNetworkYieldsMultipleParses) {
  // The paper's §1.4: a CN "compactly stores multiple parses".  After
  // unary propagation only (Fig. 3), "The program runs" still has
  // 2*1*2*2*1*2 = 16 consistent assignments; the binary constraints
  // then cut them to 1.
  Network net = p_.make_network(bundle_.tag("The program runs"));
  p_.run_unary(net);
  auto parses = cdg::extract_parses(net);
  EXPECT_EQ(parses.size(), 16u);
  // All parses distinct.
  for (std::size_t i = 0; i < parses.size(); ++i)
    for (std::size_t j = i + 1; j < parses.size(); ++j) {
      bool same = true;
      for (std::size_t r = 0; r < parses[i].assignment.size(); ++r)
        if (!(parses[i].assignment[r] == parses[j].assignment[r]))
          same = false;
      EXPECT_FALSE(same) << i << "," << j;
    }
  // Applying the binary constraints refines the analysis to one parse.
  p_.run_binary(net);
  net.filter();
  EXPECT_EQ(cdg::count_parses(net), 1u);
}

TEST_F(ExtractTest, LimitShortCircuits) {
  Network net = p_.make_network(bundle_.tag("The program runs"));
  p_.run_unary(net);
  EXPECT_EQ(cdg::count_parses(net, 3), 3u);
  EXPECT_EQ(cdg::extract_parses(net, 3).size(), 3u);
}

TEST_F(ExtractTest, CountWithoutPropagationStillConsistent) {
  // Extraction on a fresh (unpropagated) network enumerates all
  // assignments consistent with the all-ones arc matrices; on the
  // propagated network it is a subset.
  Network fresh = p_.make_network(bundle_.tag("The program runs"));
  Network done = parsed("The program runs");
  const std::size_t fresh_count = cdg::count_parses(fresh, 100000);
  EXPECT_GE(fresh_count, cdg::count_parses(done, 100000));
  EXPECT_GT(fresh_count, 1u);
}

TEST_F(ExtractTest, PrecedenceGraphEdgesCoverEveryRole) {
  Network net = parsed("The dog halts");
  auto parses = cdg::extract_parses(net);
  ASSERT_FALSE(parses.empty());
  auto edges = cdg::precedence_graph(net, parses[0]);
  EXPECT_EQ(edges.size(), static_cast<std::size_t>(net.num_roles()));
  // Every governor edge points inside the sentence or to nil.
  for (const auto& e : edges) {
    EXPECT_GE(e.to, 0);
    EXPECT_LE(e.to, net.n());
    EXPECT_GE(e.from, 1);
    EXPECT_LE(e.from, net.n());
  }
}

TEST_F(ExtractTest, RenderDotEmitsPrecedenceGraph) {
  Network net = parsed("The program runs");
  auto parses = cdg::extract_parses(net);
  ASSERT_EQ(parses.size(), 1u);
  const std::string dot = cdg::render_dot(net, parses[0]);
  EXPECT_NE(dot.find("digraph precedence"), std::string::npos);
  // Governor edges of Fig. 7.
  EXPECT_NE(dot.find("w1 -> w2 [label=\"DET\"]"), std::string::npos);
  EXPECT_NE(dot.find("w2 -> w3 [label=\"SUBJ\"]"), std::string::npos);
  // runs is the root (no outgoing governor edge; marked).
  EXPECT_EQ(dot.find("w3 -> "), dot.find("w3 -> w2 [label=\"S\""));
  EXPECT_NE(dot.find("doubleoctagon"), std::string::npos);
  // Needs links are dashed.
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

TEST_F(ExtractTest, RenderSolutionMatchesFigure7Style) {
  Network net = parsed("The program runs");
  auto parses = cdg::extract_parses(net);
  ASSERT_EQ(parses.size(), 1u);
  const std::string s = cdg::render_solution(net, parses[0]);
  EXPECT_NE(s.find("Word=The Position=1 G=DET-2 N=BLANK-nil"),
            std::string::npos);
  EXPECT_NE(s.find("Word=runs Position=3 G=ROOT-nil N=S-2"),
            std::string::npos);
}

}  // namespace
