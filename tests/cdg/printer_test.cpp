#include "cdg/printer.h"

#include <gtest/gtest.h>

#include "cdg/parser.h"
#include "grammars/toy_grammar.h"

namespace {

using namespace parsec;

class PrinterTest : public ::testing::Test {
 protected:
  PrinterTest()
      : bundle_(grammars::make_toy_grammar()),
        parser_(bundle_.grammar),
        net_(parser_.make_network(bundle_.tag("The program runs"))) {}

  grammars::CdgBundle bundle_;
  cdg::SequentialParser parser_;
  cdg::Network net_;
};

TEST_F(PrinterTest, RenderRoleListsDenseOrder) {
  parser_.run_unary(net_);
  // The governor role of "The": dense order is label-major (DET has the
  // highest label id among survivors here, but within one label mods
  // ascend).
  const int role = net_.role_index(1, bundle_.grammar.role("governor"));
  EXPECT_EQ(cdg::render_role(net_, role), "{DET-2, DET-3}");
  const int needs = net_.role_index(1, bundle_.grammar.role("needs"));
  EXPECT_EQ(cdg::render_role(net_, needs), "{BLANK-nil}");
}

TEST_F(PrinterTest, RenderDomainsFullGolden) {
  parser_.parse(net_);
  net_.filter();
  EXPECT_EQ(cdg::render_domains(net_),
            "word 1 \"The\" [det]\n"
            "  governor: {DET-2}\n"
            "  needs: {BLANK-nil}\n"
            "word 2 \"program\" [noun]\n"
            "  governor: {SUBJ-3}\n"
            "  needs: {NP-1}\n"
            "word 3 \"runs\" [verb]\n"
            "  governor: {ROOT-nil}\n"
            "  needs: {S-2}\n");
}

TEST_F(PrinterTest, RenderArcMatrixShowsBits) {
  parser_.run_unary(net_);
  parser_.step_binary(net_, 0);  // zeroes (SUBJ-1, ROOT-nil)
  const int pg = net_.role_index(2, bundle_.grammar.role("governor"));
  const int rg = net_.role_index(3, bundle_.grammar.role("governor"));
  const std::string s = cdg::render_arc_matrix(net_, pg, rg);
  // Header names both roles and words.
  EXPECT_NE(s.find("governor(word 2)"), std::string::npos);
  EXPECT_NE(s.find("governor(word 3)"), std::string::npos);
  // Fig. 4: SUBJ-1 row holds 0, SUBJ-3 row holds 1.
  EXPECT_NE(s.find("SUBJ-1"), std::string::npos);
  EXPECT_NE(s.find('0'), std::string::npos);
  EXPECT_NE(s.find('1'), std::string::npos);
  // Order of rendering doesn't depend on argument order.
  EXPECT_EQ(s, cdg::render_arc_matrix(net_, rg, pg));
}

TEST_F(PrinterTest, RenderSummaryCounts) {
  const std::string s = cdg::render_summary(net_);
  EXPECT_NE(s.find("n=3"), std::string::npos);
  EXPECT_NE(s.find("roles=6"), std::string::npos);
  EXPECT_NE(s.find("D=24"), std::string::npos);
  EXPECT_NE(s.find("alive=54"), std::string::npos);
  EXPECT_NE(s.find("arc_ones="), std::string::npos);
}

}  // namespace
