#include "cdg/network.h"

#include <gtest/gtest.h>

#include "cdg/parser.h"
#include "grammars/toy_grammar.h"

namespace {

using namespace parsec;
using cdg::Network;

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest() : bundle_(grammars::make_toy_grammar()) {}

  Network make(const std::string& text, bool prebuild = true) {
    cdg::NetworkOptions opt;
    opt.prebuild_arcs = prebuild;
    return Network(bundle_.grammar, bundle_.tag(text), opt);
  }

  grammars::CdgBundle bundle_;
};

TEST_F(NetworkTest, ShapeMatchesPaperAccounting) {
  Network net = make("The program runs");
  EXPECT_EQ(net.n(), 3);
  EXPECT_EQ(net.roles_per_word(), 2);
  EXPECT_EQ(net.num_roles(), 6);
  // D = |L| * (n+1) = 6 * 4.
  EXPECT_EQ(net.domain_size(), 24);
  // Initial role values: 3 T-allowed labels x 3 modifiees per role.
  for (int r = 0; r < net.num_roles(); ++r)
    EXPECT_EQ(net.domain(r).count(), 9u);
}

TEST_F(NetworkTest, RoleIndexRoundTrip) {
  Network net = make("The program runs");
  for (cdg::WordPos w = 1; w <= 3; ++w) {
    for (cdg::RoleId r = 0; r < 2; ++r) {
      const int role = net.role_index(w, r);
      EXPECT_EQ(net.word_of_role(role), w);
      EXPECT_EQ(net.role_id_of(role), r);
    }
  }
}

TEST_F(NetworkTest, NoSelfModification) {
  Network net = make("The program runs");
  const auto& idx = net.indexer();
  for (int role = 0; role < net.num_roles(); ++role) {
    const cdg::WordPos w = net.word_of_role(role);
    for (const auto& rv : net.alive_values(role)) EXPECT_NE(rv.mod, w);
    (void)idx;
  }
}

TEST_F(NetworkTest, ArcCountIsRChoose2) {
  Network net = make("The program runs");
  // 6 roles -> 15 arcs; every pair queryable in both orders.
  int count = 0;
  for (int a = 0; a < net.num_roles(); ++a)
    for (int b = a + 1; b < net.num_roles(); ++b) {
      (void)net.arc_matrix(a, b);
      ++count;
    }
  EXPECT_EQ(count, 15);
}

TEST_F(NetworkTest, ArcAllowsSymmetricAccess) {
  Network net = make("The program runs");
  const int ra = net.role_index(1, 0), rb = net.role_index(2, 0);
  const int i = net.domain(ra).find_first();
  const int j = net.domain(rb).find_first();
  EXPECT_TRUE(net.arc_allows(ra, i, rb, j));
  EXPECT_TRUE(net.arc_allows(rb, j, ra, i));
  net.arc_forbid(rb, j, ra, i);  // reversed order must hit the same bit
  EXPECT_FALSE(net.arc_allows(ra, i, rb, j));
  EXPECT_FALSE(net.arc_allows(rb, j, ra, i));
}

TEST_F(NetworkTest, EliminateZeroesRowsAndColumns) {
  Network net = make("The program runs");
  const int role = net.role_index(2, 0);
  const int rv = net.domain(role).find_first();
  net.eliminate(role, rv);
  EXPECT_FALSE(net.alive(role, rv));
  for (int other = 0; other < net.num_roles(); ++other) {
    if (other == role) continue;
    net.domain(other).for_each([&](std::size_t j) {
      EXPECT_FALSE(net.arc_allows(role, rv, other, static_cast<int>(j)));
    });
  }
  // Idempotent.
  auto before = net.counters().eliminations;
  net.eliminate(role, rv);
  EXPECT_EQ(net.counters().eliminations, before);
}

TEST_F(NetworkTest, SupportedDetectsZeroedRow) {
  Network net = make("The program runs");
  const int ra = net.role_index(2, 0);
  const int rb = net.role_index(3, 0);
  const int rv = net.domain(ra).find_first();
  // Zero rv's row against every other role: unsupported.
  for (int other = 0; other < net.num_roles(); ++other) {
    if (other == ra) continue;
    net.domain(other).for_each([&](std::size_t j) {
      if (other == rb) net.arc_forbid(ra, rv, other, static_cast<int>(j));
    });
  }
  EXPECT_FALSE(net.supported(ra, rv));
  const int other_rv = net.domain(ra).find_next_from(rv + 1);
  EXPECT_TRUE(net.supported(ra, static_cast<int>(other_rv)));
}

TEST_F(NetworkTest, ConsistencyStepRemovesUnsupported) {
  Network net = make("The program runs");
  const int ra = net.role_index(2, 0);
  const int rb = net.role_index(3, 0);
  const int rv = net.domain(ra).find_first();
  net.domain(rb).for_each([&](std::size_t j) {
    net.arc_forbid(ra, rv, rb, static_cast<int>(j));
  });
  const std::size_t alive_before = net.total_alive();
  const int eliminated = net.consistency_step();
  EXPECT_EQ(eliminated, 1);
  EXPECT_FALSE(net.alive(ra, rv));
  EXPECT_EQ(net.total_alive(), alive_before - 1);
  // Quiescent afterwards.
  EXPECT_EQ(net.consistency_step(), 0);
}

TEST_F(NetworkTest, FilterReachesFixpoint) {
  Network net = make("The program runs");
  cdg::SequentialParser parser(bundle_.grammar);
  parser.run_unary(net);
  parser.run_binary(net);
  net.filter();
  // A further sweep finds nothing.
  EXPECT_EQ(net.consistency_step(), 0);
}

TEST_F(NetworkTest, LazyArcsMatchPrebuiltAfterUnary) {
  // Design decision 1 (§2.2.1): building arcs before or after unary
  // propagation must give identical final networks.
  cdg::SequentialParser pre(bundle_.grammar, {.prebuild_arcs = true});
  cdg::SequentialParser lazy(bundle_.grammar, {.prebuild_arcs = false});
  for (const char* text : {"The program runs", "A dog crashes",
                           "The dog runs", "program runs"}) {
    Network a = pre.make_network(bundle_.tag(text));
    Network b = lazy.make_network(bundle_.tag(text));
    pre.parse(a);
    lazy.parse(b);
    for (int r = 0; r < a.num_roles(); ++r)
      EXPECT_EQ(a.domain(r), b.domain(r)) << text << " role " << r;
    EXPECT_EQ(a.all_roles_nonempty(), b.all_roles_nonempty()) << text;
  }
}

TEST_F(NetworkTest, EmptySentenceRejected) {
  cdg::Sentence s;
  EXPECT_THROW(Network(bundle_.grammar, s), std::invalid_argument);
}

TEST_F(NetworkTest, CountersAccumulate) {
  Network net = make("The program runs");
  cdg::SequentialParser parser(bundle_.grammar);
  cdg::ParseResult r = parser.parse(net);
  EXPECT_GT(r.counters.unary_evals, 0u);
  EXPECT_GT(r.counters.binary_evals, 0u);
  EXPECT_GT(r.counters.eliminations, 0u);
  EXPECT_GT(r.counters.support_checks, 0u);
}

TEST_F(NetworkTest, SingleWordSentence) {
  // "program" alone: governor must modify something (noun unary
  // constraint), but there is nothing to modify: reject.
  Network net = make("program");
  cdg::SequentialParser parser(bundle_.grammar);
  cdg::ParseResult r = parser.parse(net);
  EXPECT_FALSE(r.accepted);
}

}  // namespace
