#include "cdg/diagnose.h"

#include <gtest/gtest.h>

#include "grammars/english_grammar.h"
#include "grammars/toy_grammar.h"

namespace {

using namespace parsec;
using cdg::Diagnosis;
using cdg::TraceEvent;

class DiagnoseTest : public ::testing::Test {
 protected:
  DiagnoseTest()
      : toy_(grammars::make_toy_grammar()),
        english_(grammars::make_english_grammar()),
        toy_parser_(toy_.grammar),
        english_parser_(english_.grammar) {}

  grammars::CdgBundle toy_, english_;
  cdg::SequentialParser toy_parser_, english_parser_;
};

TEST_F(DiagnoseTest, AcceptedSentenceSaysSo) {
  Diagnosis d = cdg::diagnose(toy_parser_, toy_.tag("The program runs"));
  EXPECT_TRUE(d.accepted);
  EXPECT_EQ(d.empty_role, -1);
  EXPECT_EQ(cdg::render_diagnosis(toy_.grammar,
                                  toy_.tag("The program runs"), d),
            "accepted");
  // The worked example eliminates plenty along the way; the trace saw
  // all of it (54 initial - 6 surviving = 48 eliminations).
  EXPECT_EQ(d.events.size(), 48u);
}

TEST_F(DiagnoseTest, LoneVerbBlamesUnaryConstraint) {
  // "runs": the verb's needs role must modify something, but there is
  // nothing to modify — the unary constraint empties the role directly.
  cdg::Sentence s = toy_.tag("runs");
  Diagnosis d = cdg::diagnose(toy_parser_, s);
  EXPECT_FALSE(d.accepted);
  EXPECT_EQ(d.word, 1);
  EXPECT_EQ(toy_.grammar.role_name(d.role_id), "needs");
  EXPECT_EQ(d.kind, TraceEvent::Kind::UnaryElimination);
  EXPECT_EQ(d.cause, "verbs-need-s-modifying");
  const std::string text = cdg::render_diagnosis(toy_.grammar, s, d);
  EXPECT_NE(text.find("\"runs\""), std::string::npos);
  EXPECT_NE(text.find("verbs-need-s-modifying"), std::string::npos);
}

TEST_F(DiagnoseTest, WordOrderViolationBlamesConsistency) {
  cdg::Sentence s = toy_.tag("program The runs");
  Diagnosis d = cdg::diagnose(toy_parser_, s);
  EXPECT_FALSE(d.accepted);
  // The det-governed-by-noun constraint zeroes every pairing between
  // "The"'s DET values and the noun's roles; the first governor role to
  // actually lose its last support in the sweep order is the noun's
  // (SUBJ-3 vs the emptied DET row).  Either word is a sound root
  // cause; the kind must be a consistency elimination.
  EXPECT_TRUE(d.word == 1 || d.word == 2) << d.word;
  EXPECT_EQ(toy_.grammar.role_name(d.role_id), "governor");
  EXPECT_EQ(d.kind, TraceEvent::Kind::SupportElimination);
  const std::string text = cdg::render_diagnosis(toy_.grammar, s, d);
  EXPECT_NE(text.find("consistency maintenance"), std::string::npos);
}

TEST_F(DiagnoseTest, EnglishMissingDeterminer) {
  cdg::Sentence s = english_.tag("dog runs");
  Diagnosis d = cdg::diagnose(english_parser_, s);
  EXPECT_FALSE(d.accepted);
  EXPECT_EQ(d.word, 1);  // the bare noun
  EXPECT_EQ(english_.grammar.role_name(d.role_id), "needs");
  EXPECT_EQ(d.kind, TraceEvent::Kind::UnaryElimination);
  EXPECT_EQ(d.cause, "noun-needs-det");
}

TEST_F(DiagnoseTest, EventsAreOrderedAndAttributed) {
  cdg::Sentence s = toy_.tag("The program runs");
  Diagnosis d = cdg::diagnose(toy_parser_, s);
  bool seen_unary = false, seen_support = false;
  for (const auto& e : d.events) {
    if (e.kind == TraceEvent::Kind::UnaryElimination) {
      seen_unary = true;
      EXPECT_FALSE(e.cause.empty());
      EXPECT_FALSE(seen_support) << "unary after consistency in toy parse";
    } else {
      seen_support = true;
      EXPECT_EQ(e.cause, "consistency");
    }
    EXPECT_GE(e.role, 0);
    EXPECT_LT(e.role, 6);
  }
  EXPECT_TRUE(seen_unary);
  EXPECT_TRUE(seen_support);
}

}  // namespace
