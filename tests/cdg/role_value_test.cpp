#include "cdg/role_value.h"

#include <gtest/gtest.h>

#include <set>

#include "cdg/network.h"
#include "grammars/toy_grammar.h"

namespace {

using namespace parsec::cdg;

TEST(RvIndexer, EncodeDecodeRoundTrip) {
  for (int n : {1, 3, 10}) {
    for (int L : {1, 6, 11}) {
      RvIndexer idx(n, L);
      EXPECT_EQ(idx.domain_size(), L * (n + 1));
      std::set<int> seen;
      for (LabelId l = 0; l < L; ++l) {
        for (WordPos m = 0; m <= n; ++m) {
          const int code = idx.encode(RoleValue{l, m});
          EXPECT_TRUE(seen.insert(code).second) << "collision";
          EXPECT_GE(code, 0);
          EXPECT_LT(code, idx.domain_size());
          const RoleValue rv = idx.decode(code);
          EXPECT_EQ(rv.label, l);
          EXPECT_EQ(rv.mod, m);
          EXPECT_EQ(idx.label_of(code), l);
          EXPECT_EQ(idx.mod_of(code), m);
        }
      }
      EXPECT_EQ(seen.size(), static_cast<std::size_t>(idx.domain_size()));
    }
  }
}

TEST(RvIndexer, DenseOrderIsLabelMajor) {
  RvIndexer idx(3, 2);
  // label 0 mods 0..3, then label 1 mods 0..3.
  EXPECT_EQ(idx.encode({0, 0}), 0);
  EXPECT_EQ(idx.encode({0, 3}), 3);
  EXPECT_EQ(idx.encode({1, 0}), 4);
  EXPECT_EQ(idx.encode({1, 3}), 7);
}

TEST(RoleValueToString, PaperNotation) {
  auto bundle = parsec::grammars::make_toy_grammar();
  const auto& g = bundle.grammar;
  EXPECT_EQ(to_string(g, RoleValue{g.label("SUBJ"), 3}), "SUBJ-3");
  EXPECT_EQ(to_string(g, RoleValue{g.label("ROOT"), kNil}), "ROOT-nil");
  EXPECT_EQ(to_string(g, RoleValue{g.label("BLANK"), 1}), "BLANK-1");
}

TEST(RoleValueEquality, ComparesBothFields) {
  EXPECT_EQ((RoleValue{1, 2}), (RoleValue{1, 2}));
  EXPECT_FALSE((RoleValue{1, 2}) == (RoleValue{1, 3}));
  EXPECT_FALSE((RoleValue{0, 2}) == (RoleValue{1, 2}));
}

}  // namespace
