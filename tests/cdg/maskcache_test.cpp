// The vectorized evaluation layer's cache and counter contracts:
//   * mask bits equal the per-value hoisted-part evaluation at every
//     alive position (the masks ARE the hoisted predicates);
//   * Network::reinit invalidates every mask (generation check), and a
//     rebuild produces the new sentence's truths;
//   * the effective eval counters equal the plain path's counts exactly
//     (kernels.h counter-hook contract), so paper-figure numbers are
//     reproducible whichever evaluator ran;
//   * masked and plain full parses reach bit-identical fixpoints.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "cdg/constraint_eval.h"
#include "cdg/kernels.h"
#include "cdg/network.h"
#include "cdg/parser.h"
#include "grammars/english_grammar.h"
#include "grammars/sentence_gen.h"
#include "parsec/backend.h"

namespace {

using namespace parsec;
using cdg::Binding;
using cdg::FactoredConstraint;

class MaskCacheTest : public ::testing::Test {
 protected:
  MaskCacheTest() : bundle(grammars::make_english_grammar()) {}

  cdg::Sentence sentence(std::uint64_t seed, int n) {
    grammars::SentenceGenerator gen(bundle, seed);
    return gen.generate_sentence(n);
  }

  grammars::CdgBundle bundle;
};

TEST_F(MaskCacheTest, MaskBitsEqualHoistedEvalAtAlivePositions) {
  const auto binary = cdg::factor_all(bundle.grammar.binary_constraints());
  cdg::Network net(bundle.grammar, sentence(7, 6));
  for (std::size_t k = 0; k < binary.size(); ++k) {
    const FactoredConstraint& c = binary[k];
    net.ensure_masks(c, k);
    for (int role = 0; role < net.num_roles(); ++role) {
      const cdg::kernels::FactoredMasks m = net.masks(k, role);
      net.domain(role).for_each([&](std::size_t rv) {
        const Binding b{net.indexer().decode(static_cast<int>(rv)),
                        net.role_id_of(role), net.word_of_role(role)};
        EXPECT_EQ(m.ante_x.test(rv),
                  eval_hoisted(c.ante_x, net.sentence(), b))
            << c.name << " ante_x role " << role << " rv " << rv;
        EXPECT_EQ(m.ante_y.test(rv),
                  eval_hoisted(c.ante_y, net.sentence(), b))
            << c.name << " ante_y role " << role << " rv " << rv;
        EXPECT_EQ(m.cons_x.test(rv),
                  eval_hoisted(c.cons_x, net.sentence(), b))
            << c.name << " cons_x role " << role << " rv " << rv;
        EXPECT_EQ(m.cons_y.test(rv),
                  eval_hoisted(c.cons_y, net.sentence(), b))
            << c.name << " cons_y role " << role << " rv " << rv;
      });
    }
  }
}

TEST_F(MaskCacheTest, ReinitInvalidatesEveryMask) {
  const auto binary = cdg::factor_all(bundle.grammar.binary_constraints());
  ASSERT_FALSE(binary.empty());
  cdg::Network net(bundle.grammar, sentence(7, 6));

  for (std::size_t k = 0; k < binary.size(); ++k) {
    EXPECT_FALSE(net.mask_cache().built(net.arena(), k)) << k;
    net.ensure_masks(binary[k], k);
    EXPECT_TRUE(net.mask_cache().built(net.arena(), k)) << k;
  }
  const std::uint64_t builds_before = net.mask_cache().builds();
  // A second ensure is a cache hit: no rebuild, no build evals.
  const std::size_t build_evals = net.counters().mask_build_evals;
  net.ensure_masks(binary[0], 0);
  EXPECT_EQ(net.mask_cache().builds(), builds_before);
  EXPECT_EQ(net.counters().mask_build_evals, build_evals);

  // Re-binding the arena to a new same-length sentence invalidates all
  // masks in O(1) — the generation check, not a mask wipe.
  ASSERT_TRUE(net.reinit(sentence(99, 6)));
  for (std::size_t k = 0; k < binary.size(); ++k)
    EXPECT_FALSE(net.mask_cache().built(net.arena(), k)) << k;

  // Rebuilding yields the NEW sentence's truth masks.
  const FactoredConstraint& c = binary[0];
  net.ensure_masks(c, 0);
  EXPECT_GT(net.mask_cache().builds(), builds_before);
  for (int role = 0; role < net.num_roles(); ++role) {
    const cdg::kernels::FactoredMasks m = net.masks(0, role);
    net.domain(role).for_each([&](std::size_t rv) {
      const Binding b{net.indexer().decode(static_cast<int>(rv)),
                      net.role_id_of(role), net.word_of_role(role)};
      EXPECT_EQ(m.ante_x.test(rv), eval_hoisted(c.ante_x, net.sentence(), b));
      EXPECT_EQ(m.cons_x.test(rv), eval_hoisted(c.cons_x, net.sentence(), b));
    });
  }
}

// The counter contract (kernels.h): effective counts in plain-sweep
// units must equal the plain path's actual counts, and the fixpoints
// must be bit-identical — for every sentence of a mixed corpus.
TEST_F(MaskCacheTest, EffectiveCountsAndFixpointsMatchPlainPath) {
  cdg::ParseOptions masked_opt;  // defaults: use_masks = true
  cdg::ParseOptions plain_opt;
  plain_opt.use_masks = false;
  cdg::SequentialParser masked(bundle.grammar, masked_opt);
  cdg::SequentialParser plain(bundle.grammar, plain_opt);

  grammars::SentenceGenerator gen(bundle, 4711);
  for (int i = 0; i < 12; ++i) {
    const cdg::Sentence s = gen.generate_sentence(3 + i % 8);
    cdg::Network nm = masked.make_network(s);
    cdg::Network np = plain.make_network(s);
    const auto rm = masked.parse(nm);
    const auto rp = plain.parse(np);

    EXPECT_EQ(engine::hash_domains(nm), engine::hash_domains(np)) << i;
    EXPECT_EQ(rm.accepted, rp.accepted) << i;
    const auto& cm = rm.counters;
    const auto& cp = rp.counters;
    EXPECT_EQ(cm.effective_unary_evals(), cp.unary_evals) << i;
    EXPECT_EQ(cm.effective_binary_evals(), cp.binary_evals) << i;
    EXPECT_EQ(cm.eliminations, cp.eliminations) << i;
    EXPECT_EQ(cm.arc_zeroings, cp.arc_zeroings) << i;
    // The masked path must actually be masking (not falling back to the
    // VM for everything) on real sentences.
    EXPECT_GT(cm.masked_binary_pairs, 0u) << i;
    EXPECT_LT(cm.binary_evals, cp.binary_evals) << i;
  }
}

}  // namespace
