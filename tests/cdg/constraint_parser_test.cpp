#include "cdg/constraint_parser.h"

#include <gtest/gtest.h>

#include "cdg/grammar.h"

namespace {

using namespace parsec::cdg;

class ConstraintParserTest : public ::testing::Test {
 protected:
  ConstraintParserTest() {
    g.add_category("det");
    g.add_category("noun");
    g.add_category("verb");
    g.add_label("SUBJ");
    g.add_label("ROOT");
    g.add_role("governor");
    g.add_role("needs");
  }
  Grammar g;
};

TEST_F(ConstraintParserTest, ParsesPaperUnaryConstraint) {
  Constraint c = parse_constraint(g, R"(
      (if (and (eq (cat (word (pos x))) verb)
               (eq (role x) governor))
          (and (eq (lab x) ROOT)
               (eq (mod x) nil))))");
  EXPECT_EQ(c.arity, 1);
  EXPECT_EQ(c.root.op, Op::If);
  ASSERT_EQ(c.root.args.size(), 2u);
  EXPECT_EQ(c.antecedent().op, Op::And);
  EXPECT_EQ(c.consequent().op, Op::And);
}

TEST_F(ConstraintParserTest, ParsesPaperBinaryConstraint) {
  Constraint c = parse_constraint(g, R"(
      (if (and (eq (lab x) SUBJ) (eq (lab y) ROOT))
          (and (eq (mod x) (pos y)) (lt (pos x) (pos y)))))");
  EXPECT_EQ(c.arity, 2);
}

TEST_F(ConstraintParserTest, ResolvesSymbolsByOppositeSideType) {
  // `governor` must resolve as a role here, ROOT as a label.
  Constraint c = parse_constraint(
      g, "(if (eq (role x) governor) (eq (lab x) ROOT))");
  const Expr& ante = c.antecedent();
  EXPECT_EQ(ante.op, Op::Eq);
  EXPECT_EQ(ante.args[1].op, Op::ConstSym);
  EXPECT_EQ(ante.args[1].type, ValueType::RoleT);
  EXPECT_EQ(ante.args[1].value, g.role("governor"));
  const Expr& cons = c.consequent();
  EXPECT_EQ(cons.args[1].type, ValueType::Label);
  EXPECT_EQ(cons.args[1].value, g.label("ROOT"));
}

TEST_F(ConstraintParserTest, NilIsPositionZero) {
  Constraint c = parse_constraint(g, "(if (eq (mod x) nil) (eq (pos x) 1))");
  EXPECT_EQ(c.antecedent().args[1].op, Op::ConstInt);
  EXPECT_EQ(c.antecedent().args[1].value, kNil);
  EXPECT_EQ(c.consequent().args[1].value, 1);
}

TEST_F(ConstraintParserTest, NaryAndOrAccepted) {
  Constraint c = parse_constraint(g, R"(
      (if (and (eq (lab x) SUBJ)
               (eq (role x) governor)
               (not (eq (mod x) nil)))
          (or (lt (pos x) 3) (gt (pos x) 5) (eq (pos x) 4))))");
  EXPECT_EQ(c.antecedent().args.size(), 3u);
  EXPECT_EQ(c.consequent().args.size(), 3u);
}

TEST_F(ConstraintParserTest, RejectsMalformedTopLevel) {
  EXPECT_THROW(parse_constraint(g, "(eq (lab x) SUBJ)"),
               ConstraintParseError);
  EXPECT_THROW(parse_constraint(g, "(if (eq (lab x) SUBJ))"),
               ConstraintParseError);
}

TEST_F(ConstraintParserTest, RejectsUnknownSymbols) {
  EXPECT_THROW(
      parse_constraint(g, "(if (eq (lab x) NOPE) (eq (mod x) nil))"),
      ConstraintParseError);
  EXPECT_THROW(
      parse_constraint(g, "(if (eq (role x) nurble) (eq (mod x) nil))"),
      ConstraintParseError);
  EXPECT_THROW(
      parse_constraint(
          g, "(if (eq (cat (word (pos x))) blorb) (eq (mod x) nil))"),
      ConstraintParseError);
}

TEST_F(ConstraintParserTest, RejectsTypeMismatches) {
  // label vs role
  EXPECT_THROW(
      parse_constraint(g, "(if (eq (lab x) (role x)) (eq (mod x) nil))"),
      ConstraintParseError);
  // gt on labels
  EXPECT_THROW(
      parse_constraint(g, "(if (gt (lab x) (lab y)) (eq (mod x) nil))"),
      ConstraintParseError);
}

TEST_F(ConstraintParserTest, RejectsBadVariables) {
  EXPECT_THROW(parse_constraint(g, "(if (eq (lab z) SUBJ) (eq (mod x) nil))"),
               ConstraintParseError);
  EXPECT_THROW(parse_constraint(g, "(if (eq (lab 3) SUBJ) (eq (mod x) nil))"),
               ConstraintParseError);
}

TEST_F(ConstraintParserTest, RejectsUnknownFunctions) {
  EXPECT_THROW(
      parse_constraint(g, "(if (eq (labb x) SUBJ) (eq (mod x) nil))"),
      ConstraintParseError);
  EXPECT_THROW(parse_constraint(g, "(if (xor (eq (lab x) SUBJ) (eq (lab x) "
                                   "ROOT)) (eq (mod x) nil))"),
               ConstraintParseError);
}

TEST_F(ConstraintParserTest, ModComparesAgainstPos) {
  // (eq (mod x) (pos y)) — both positions; legal and common.
  Constraint c = parse_constraint(
      g, "(if (eq (mod x) (pos y)) (lt (pos x) (pos y)))");
  EXPECT_EQ(c.arity, 2);
  EXPECT_EQ(c.antecedent().args[0].type, ValueType::Pos);
  EXPECT_EQ(c.antecedent().args[1].type, ValueType::Pos);
}

TEST_F(ConstraintParserTest, RendersBackToSurfaceSyntax) {
  Constraint c = parse_constraint(
      g, "(if (eq (lab x) SUBJ) (and (eq (mod x) nil) (lt (pos x) 2)))");
  EXPECT_EQ(c.root.to_string_with(g),
            "(if (eq (lab x) SUBJ) (and (eq (mod x) nil) (lt (pos x) 2)))");
}

}  // namespace
