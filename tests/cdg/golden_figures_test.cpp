// Golden reproduction of the paper's worked example (Figures 1-7).
//
// The toy grammar of §1.1-1.3 is run over "The program runs" and the CN
// state is checked after every stage against the states printed in the
// figures.  Role-set notation below matches the paper exactly.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "cdg/extract.h"
#include "cdg/network.h"
#include "cdg/parser.h"
#include "cdg/printer.h"
#include "grammars/toy_grammar.h"

namespace {

using namespace parsec;
using cdg::Network;
using cdg::RoleValue;

class GoldenFigures : public ::testing::Test {
 protected:
  GoldenFigures()
      : bundle_(grammars::make_toy_grammar()),
        parser_(bundle_.grammar),
        sentence_(bundle_.tag("The program runs")),
        net_(parser_.make_network(sentence_)) {}

  /// Alive role values of (word, role-name) as "LABEL-mod" strings.
  std::set<std::string> role_set(int word, const char* role_name) {
    const int role = net_.role_index(word, bundle_.grammar.role(role_name));
    std::set<std::string> out;
    for (const RoleValue& rv : net_.alive_values(role))
      out.insert(cdg::to_string(bundle_.grammar, rv));
    return out;
  }

  int role_of(int word, const char* role_name) {
    return net_.role_index(word, bundle_.grammar.role(role_name));
  }

  /// Arc-matrix bit between two named role values.
  bool arc_bit(int word_a, const char* role_a, const char* rv_a, int word_b,
               const char* role_b, const char* rv_b) {
    const auto& idx = net_.indexer();
    return net_.arc_allows(role_of(word_a, role_a), idx.encode(parse_rv(rv_a)),
                           role_of(word_b, role_b), idx.encode(parse_rv(rv_b)));
  }

  RoleValue parse_rv(const std::string& s) {
    const auto dash = s.rfind('-');
    const std::string lab = s.substr(0, dash);
    const std::string mod = s.substr(dash + 1);
    return RoleValue{bundle_.grammar.label(lab),
                     mod == "nil" ? cdg::kNil : std::stoi(mod)};
  }

  grammars::CdgBundle bundle_;
  cdg::SequentialParser parser_;
  cdg::Sentence sentence_;
  Network net_;
};

using S = std::set<std::string>;

// --------------------------------------------------------------------
// Figure 1: initial CN.  Each role holds every T-allowed label crossed
// with every modifiee (nil + all other positions; no self-modification).
// --------------------------------------------------------------------
TEST_F(GoldenFigures, Figure1_InitialNetwork) {
  EXPECT_EQ(role_set(1, "governor"),
            (S{"DET-nil", "DET-2", "DET-3", "SUBJ-nil", "SUBJ-2", "SUBJ-3",
               "ROOT-nil", "ROOT-2", "ROOT-3"}));
  EXPECT_EQ(role_set(1, "needs"),
            (S{"BLANK-nil", "BLANK-2", "BLANK-3", "NP-nil", "NP-2", "NP-3",
               "S-nil", "S-2", "S-3"}));
  EXPECT_EQ(role_set(2, "governor"),
            (S{"DET-nil", "DET-1", "DET-3", "SUBJ-nil", "SUBJ-1", "SUBJ-3",
               "ROOT-nil", "ROOT-1", "ROOT-3"}));
  EXPECT_EQ(role_set(2, "needs"),
            (S{"BLANK-nil", "BLANK-1", "BLANK-3", "NP-nil", "NP-1", "NP-3",
               "S-nil", "S-1", "S-3"}));
  EXPECT_EQ(role_set(3, "governor"),
            (S{"DET-nil", "DET-1", "DET-2", "SUBJ-nil", "SUBJ-1", "SUBJ-2",
               "ROOT-nil", "ROOT-1", "ROOT-2"}));
  EXPECT_EQ(role_set(3, "needs"),
            (S{"BLANK-nil", "BLANK-1", "BLANK-2", "NP-nil", "NP-1", "NP-2",
               "S-nil", "S-1", "S-2"}));

  // §1.2 size accounting: p*n role values per role, O(n^2) overall.
  EXPECT_EQ(net_.total_alive(), 6u * 9u);
}

// --------------------------------------------------------------------
// Figure 9 (design decision 1): with arcs prebuilt before unary
// propagation, the governor-governor matrix spans all 9 x 9 role values
// and is entirely ones.
// --------------------------------------------------------------------
TEST_F(GoldenFigures, Figure9_PrebuiltArcMatrixAllOnes) {
  const auto& m =
      net_.arc_matrix(role_of(1, "governor"), role_of(2, "governor"));
  EXPECT_EQ(m.count(), 81u);
  EXPECT_TRUE(arc_bit(1, "governor", "SUBJ-2", 2, "governor", "ROOT-nil"));
}

// --------------------------------------------------------------------
// Figure 2: after the first unary constraint (verbs are ungoverned
// ROOTs) only ROOT-nil survives in the governor role of "runs"; all
// other roles are untouched.
// --------------------------------------------------------------------
TEST_F(GoldenFigures, Figure2_FirstUnaryConstraint) {
  parser_.step_unary(net_, 0);
  EXPECT_EQ(role_set(3, "governor"), (S{"ROOT-nil"}));
  EXPECT_EQ(role_set(3, "needs"),
            (S{"BLANK-nil", "BLANK-1", "BLANK-2", "NP-nil", "NP-1", "NP-2",
               "S-nil", "S-1", "S-2"}));
  EXPECT_EQ(role_set(1, "governor").size(), 9u);
  EXPECT_EQ(role_set(2, "governor").size(), 9u);
}

// --------------------------------------------------------------------
// Figure 3: after all unary constraints.
// --------------------------------------------------------------------
TEST_F(GoldenFigures, Figure3_AfterUnaryPropagation) {
  parser_.run_unary(net_);
  EXPECT_EQ(role_set(1, "governor"), (S{"DET-2", "DET-3"}));
  EXPECT_EQ(role_set(1, "needs"), (S{"BLANK-nil"}));
  EXPECT_EQ(role_set(2, "governor"), (S{"SUBJ-1", "SUBJ-3"}));
  EXPECT_EQ(role_set(2, "needs"), (S{"NP-1", "NP-3"}));
  EXPECT_EQ(role_set(3, "governor"), (S{"ROOT-nil"}));
  EXPECT_EQ(role_set(3, "needs"), (S{"S-1", "S-2"}));

  // Figure 3's pictured matrices (between the surviving role values)
  // are still all ones: no binary constraint has run.
  EXPECT_TRUE(arc_bit(2, "governor", "SUBJ-1", 3, "governor", "ROOT-nil"));
  EXPECT_TRUE(arc_bit(2, "governor", "SUBJ-3", 3, "governor", "ROOT-nil"));
  EXPECT_TRUE(arc_bit(1, "governor", "DET-2", 2, "needs", "NP-1"));
  EXPECT_TRUE(arc_bit(1, "governor", "DET-3", 2, "needs", "NP-3"));
  EXPECT_TRUE(arc_bit(1, "governor", "DET-2", 3, "needs", "S-1"));
  EXPECT_TRUE(arc_bit(1, "governor", "DET-3", 3, "needs", "S-2"));
}

// --------------------------------------------------------------------
// Figure 4: the first binary constraint (a SUBJ is governed by a ROOT
// to its right) zeroes exactly the (SUBJ-1, ROOT-nil) entry of the
// governor-governor matrix; the other pictured matrices keep all ones.
// --------------------------------------------------------------------
TEST_F(GoldenFigures, Figure4_FirstBinaryConstraint) {
  parser_.run_unary(net_);
  parser_.step_binary(net_, 0);
  EXPECT_FALSE(arc_bit(2, "governor", "SUBJ-1", 3, "governor", "ROOT-nil"));
  EXPECT_TRUE(arc_bit(2, "governor", "SUBJ-3", 3, "governor", "ROOT-nil"));
  // DET x NP and DET x S matrices untouched (Fig. 4 bottom).
  for (const char* det : {"DET-2", "DET-3"}) {
    for (const char* np : {"NP-1", "NP-3"})
      EXPECT_TRUE(arc_bit(1, "governor", det, 2, "needs", np)) << det << np;
    for (const char* s : {"S-1", "S-2"})
      EXPECT_TRUE(arc_bit(1, "governor", det, 3, "needs", s)) << det << s;
  }
  // Domains unchanged until consistency maintenance runs.
  EXPECT_EQ(role_set(2, "governor"), (S{"SUBJ-1", "SUBJ-3"}));
}

// --------------------------------------------------------------------
// Figure 5: consistency maintenance removes SUBJ-1 (its row against
// runs' governor role is all zeros).
// --------------------------------------------------------------------
TEST_F(GoldenFigures, Figure5_ConsistencyMaintenance) {
  parser_.run_unary(net_);
  parser_.step_binary(net_, 0);
  const int eliminated = net_.consistency_step();
  EXPECT_EQ(eliminated, 1);
  EXPECT_EQ(role_set(2, "governor"), (S{"SUBJ-3"}));
  // Fig. 5 still shows ambiguity elsewhere.
  EXPECT_EQ(role_set(1, "governor"), (S{"DET-2", "DET-3"}));
  EXPECT_EQ(role_set(2, "needs"), (S{"NP-1", "NP-3"}));
  EXPECT_EQ(role_set(3, "needs"), (S{"S-1", "S-2"}));
}

// --------------------------------------------------------------------
// Figure 6: all binary constraints + consistency maintenance leave the
// unique analysis.
// --------------------------------------------------------------------
TEST_F(GoldenFigures, Figure6_AfterAllBinaryConstraints) {
  parser_.run_unary(net_);
  parser_.run_binary(net_);
  net_.filter();
  EXPECT_EQ(role_set(1, "governor"), (S{"DET-2"}));
  EXPECT_EQ(role_set(1, "needs"), (S{"BLANK-nil"}));
  EXPECT_EQ(role_set(2, "governor"), (S{"SUBJ-3"}));
  EXPECT_EQ(role_set(2, "needs"), (S{"NP-1"}));
  EXPECT_EQ(role_set(3, "governor"), (S{"ROOT-nil"}));
  EXPECT_EQ(role_set(3, "needs"), (S{"S-2"}));
}

// --------------------------------------------------------------------
// Figure 7: the precedence graph of the unique parse.
// --------------------------------------------------------------------
TEST_F(GoldenFigures, Figure7_PrecedenceGraph) {
  cdg::ParseResult r = parser_.parse(net_);
  EXPECT_TRUE(r.accepted);
  EXPECT_FALSE(r.ambiguous);

  auto parses = cdg::extract_parses(net_);
  ASSERT_EQ(parses.size(), 1u);
  const std::string rendered = cdg::render_solution(net_, parses[0]);
  EXPECT_EQ(rendered,
            "Word=The Position=1 G=DET-2 N=BLANK-nil\n"
            "Word=program Position=2 G=SUBJ-3 N=NP-1\n"
            "Word=runs Position=3 G=ROOT-nil N=S-2\n");

  const auto edges = cdg::precedence_graph(net_, parses[0]);
  const auto& g = bundle_.grammar;
  // Governor edges: The -> program (DET), program -> runs (SUBJ),
  // runs -> nil (ROOT).
  auto find_edge = [&](int from, const char* role) {
    for (const auto& e : edges)
      if (e.from == from && e.role == g.role(role)) return e;
    ADD_FAILURE() << "edge not found";
    return cdg::PrecedenceEdge{};
  };
  EXPECT_EQ(find_edge(1, "governor").to, 2);
  EXPECT_EQ(find_edge(1, "governor").label, g.label("DET"));
  EXPECT_EQ(find_edge(2, "governor").to, 3);
  EXPECT_EQ(find_edge(2, "governor").label, g.label("SUBJ"));
  EXPECT_EQ(find_edge(3, "governor").to, cdg::kNil);
  EXPECT_EQ(find_edge(3, "governor").label, g.label("ROOT"));
}

// --------------------------------------------------------------------
// End-to-end sanity on sentences near the worked example.
// --------------------------------------------------------------------
TEST_F(GoldenFigures, AcceptsAndRejectsNearbySentences) {
  auto parse_text = [&](const std::string& text) {
    cdg::Sentence s = bundle_.tag(text);
    Network net = parser_.make_network(s);
    return parser_.parse(net).accepted;
  };
  EXPECT_TRUE(parse_text("The dog runs"));
  EXPECT_TRUE(parse_text("A compiler crashes"));
  // The toy grammar's binary constraints are pairwise implications, so
  // "The runs" is (vacuously) accepted: with no SUBJ role value in the
  // network, "a verb with label S needs a SUBJ to its left" never
  // fires.  The paper's grammar has the same property; the richer
  // English grammar closes this hole.
  EXPECT_TRUE(parse_text("The runs"));
  // Ungrammatical: determiner must precede its noun.
  EXPECT_FALSE(parse_text("program The runs"));
  // Ungrammatical: a lone verb's needs role has no possible modifiee.
  EXPECT_FALSE(parse_text("runs"));
  // Ungrammatical: the noun cannot be SUBJ of both verbs, and each
  // verb's ROOT requirement forces contradictory modifiees on it.
  EXPECT_FALSE(parse_text("The program runs halts"));
}

}  // namespace
