#include "cdg/grammar.h"

#include <gtest/gtest.h>

namespace {

using namespace parsec::cdg;

TEST(Grammar, TableTAllowsPerRole) {
  Grammar g;
  auto gov = g.add_role("governor");
  auto needs = g.add_role("needs");
  auto subj = g.add_label("SUBJ");
  auto np = g.add_label("NP");
  g.allow_label(gov, subj);
  g.allow_label(needs, np);
  auto any_cat = g.add_category("noun");
  EXPECT_TRUE(g.label_allowed(gov, any_cat, subj));
  EXPECT_FALSE(g.label_allowed(gov, any_cat, np));
  EXPECT_TRUE(g.label_allowed(needs, any_cat, np));
  EXPECT_FALSE(g.label_allowed(needs, any_cat, subj));
}

TEST(Grammar, CategoryRefinementSupersedesCoarseGrant) {
  Grammar g;
  auto gov = g.add_role("governor");
  auto det = g.add_category("det");
  auto noun = g.add_category("noun");
  auto detl = g.add_label("DET");
  auto subj = g.add_label("SUBJ");
  g.allow_label_for_category(gov, det, detl);  // DET only for determiners
  g.allow_label(gov, subj);                    // SUBJ for everyone
  EXPECT_TRUE(g.label_allowed(gov, det, detl));
  EXPECT_FALSE(g.label_allowed(gov, noun, detl));
  EXPECT_TRUE(g.label_allowed(gov, noun, subj));
  EXPECT_TRUE(g.label_allowed(gov, det, subj));
  // The coarse table still admits DET (arc matrices are category-blind).
  EXPECT_TRUE(g.label_allowed_any_cat(gov, detl));
}

TEST(Grammar, LabelsForRoleSortedAndMax) {
  Grammar g;
  auto gov = g.add_role("governor");
  auto needs = g.add_role("needs");
  auto a = g.add_label("A");
  auto b = g.add_label("B");
  auto c = g.add_label("C");
  g.allow_label(gov, c);
  g.allow_label(gov, a);
  g.allow_label(needs, b);
  EXPECT_EQ(g.labels_for_role(gov), (std::vector<LabelId>{a, c}));
  EXPECT_EQ(g.labels_for_role(needs), (std::vector<LabelId>{b}));
  EXPECT_EQ(g.max_labels_per_role(), 2);
}

TEST(Grammar, ConstraintsSplitByArity) {
  Grammar g;
  g.add_role("governor");
  g.add_label("ROOT");
  g.add_category("verb");
  g.add_constraint_text("u", "(if (eq (role x) governor) (eq (lab x) ROOT))");
  g.add_constraint_text("b", "(if (eq (lab x) ROOT) (lt (pos y) (pos x)))");
  EXPECT_EQ(g.unary_constraints().size(), 1u);
  EXPECT_EQ(g.binary_constraints().size(), 1u);
  EXPECT_EQ(g.num_constraints(), 2);
  EXPECT_EQ(g.unary_constraints()[0].name, "u");
  EXPECT_EQ(g.binary_constraints()[0].name, "b");
}

TEST(Grammar, SymbolAccessorsThrowOnUnknown) {
  Grammar g;
  g.add_label("SUBJ");
  EXPECT_EQ(g.label("SUBJ"), 0);
  EXPECT_THROW(g.label("NOPE"), std::out_of_range);
  EXPECT_THROW(g.role("governor"), std::out_of_range);
  EXPECT_THROW(g.category("verb"), std::out_of_range);
}

}  // namespace
