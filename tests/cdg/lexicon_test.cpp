#include "cdg/lexicon.h"

#include <gtest/gtest.h>

#include "cdg/grammar.h"

namespace {

using namespace parsec::cdg;

TEST(Lexicon, TagUsesPreferredCategory) {
  Grammar g;
  Lexicon lex;
  lex.add(g, "run", {"verb", "noun"});
  lex.add(g, "the", {"det"});
  Sentence s = lex.tag({"the", "run"});
  EXPECT_EQ(s.size(), 2);
  EXPECT_EQ(s.cat_at(1), g.category("det"));
  EXPECT_EQ(s.cat_at(2), g.category("verb"));
  EXPECT_EQ(s.word_at(2), "run");
}

TEST(Lexicon, UnknownWordThrows) {
  Lexicon lex;
  EXPECT_THROW(lex.tag({"xyzzy"}), std::out_of_range);
  EXPECT_FALSE(lex.contains("xyzzy"));
}

TEST(Lexicon, EmptyCategoryListRejected) {
  Lexicon lex;
  EXPECT_THROW(lex.add("w", {}), std::invalid_argument);
}

TEST(Lexicon, TaggingsEnumerateCartesianProduct) {
  Grammar g;
  Lexicon lex;
  lex.add(g, "run", {"verb", "noun"});
  lex.add(g, "watch", {"verb", "noun"});
  auto all = lex.taggings({"run", "watch"});
  ASSERT_EQ(all.size(), 4u);
  // Preferred-first: first tagging is all-preferred.
  EXPECT_EQ(all[0].cat_at(1), g.category("verb"));
  EXPECT_EQ(all[0].cat_at(2), g.category("verb"));
  // All combinations distinct.
  for (std::size_t i = 0; i < all.size(); ++i)
    for (std::size_t j = i + 1; j < all.size(); ++j)
      EXPECT_FALSE(all[i].cats == all[j].cats) << i << "," << j;
}

TEST(Lexicon, TaggingsHonorsLimit) {
  Grammar g;
  Lexicon lex;
  lex.add(g, "a", {"verb", "noun", "det"});
  lex.add(g, "b", {"verb", "noun", "det"});
  lex.add(g, "c", {"verb", "noun", "det"});
  auto all = lex.taggings({"a", "b", "c"}, 10);
  EXPECT_EQ(all.size(), 10u);
}

TEST(Sentence, PositionsAreOneBased) {
  Grammar g;
  Lexicon lex;
  lex.add(g, "dogs", {"noun"});
  lex.add(g, "bark", {"verb"});
  Sentence s = lex.tag({"dogs", "bark"});
  EXPECT_EQ(s.word_at(1), "dogs");
  EXPECT_EQ(s.word_at(2), "bark");
  EXPECT_THROW(s.word_at(0), std::out_of_range);
  EXPECT_THROW(s.word_at(3), std::out_of_range);
}

}  // namespace
