// Property tests on constraint-network invariants that every engine
// relies on.
#include <gtest/gtest.h>

#include "cdg/parser.h"
#include "grammars/english_grammar.h"
#include "grammars/sentence_gen.h"
#include "grammars/toy_grammar.h"
#include "util/rng.h"

namespace {

using namespace parsec;
using cdg::Network;

class NetworkInvariants : public ::testing::TestWithParam<int> {
 protected:
  NetworkInvariants()
      : bundle_(grammars::make_english_grammar()), parser_(bundle_.grammar) {}

  cdg::Sentence sentence() {
    grammars::SentenceGenerator gen(bundle_, 1000 + GetParam());
    return gen.generate_sentence(4 + GetParam() % 9);
  }

  grammars::CdgBundle bundle_;
  cdg::SequentialParser parser_;
};

TEST_P(NetworkInvariants, PropagationOnlyRemoves) {
  Network net = parser_.make_network(sentence());
  std::vector<util::DynBitset> prev;
  for (int r = 0; r < net.num_roles(); ++r) prev.emplace_back(net.domain(r));
  auto check_shrunk = [&]() {
    for (int r = 0; r < net.num_roles(); ++r) {
      net.domain(r).for_each([&](std::size_t rv) {
        EXPECT_TRUE(prev[r].test(rv)) << "role " << r << " grew";
      });
      prev[r] = net.domain(r);
    }
  };
  parser_.run_unary(net);
  check_shrunk();
  parser_.run_binary(net);
  check_shrunk();
  net.filter();
  check_shrunk();
}

TEST_P(NetworkInvariants, ArcBitsNeverPointAtDeadValues) {
  Network net = parser_.make_network(sentence());
  parser_.parse(net);
  net.filter();
  // The structural self-check covers the same property (plus counter
  // consistency when AC-4 counters are valid); keep the explicit loop
  // below as an independent witness.
  EXPECT_TRUE(net.check_invariants());
  for (int a = 0; a < net.num_roles(); ++a) {
    for (int b = a + 1; b < net.num_roles(); ++b) {
      const auto& m = net.arc_matrix(a, b);
      for (int i = 0; i < net.domain_size(); ++i) {
        for (int j = 0; j < net.domain_size(); ++j) {
          if (m.test(i, j)) {
            EXPECT_TRUE(net.alive(a, i)) << a << "," << i;
            EXPECT_TRUE(net.alive(b, j)) << b << "," << j;
          }
        }
      }
    }
  }
}

TEST_P(NetworkInvariants, FixpointIsStable) {
  Network net = parser_.make_network(sentence());
  parser_.parse(net);
  net.filter();
  // Re-running every phase changes nothing further.
  const std::size_t alive = net.total_alive();
  const std::size_t ones = net.arc_ones();
  EXPECT_EQ(parser_.run_unary(net), 0);
  parser_.run_binary(net);
  EXPECT_EQ(net.filter(), 0);
  EXPECT_EQ(net.total_alive(), alive);
  EXPECT_EQ(net.arc_ones(), ones);
  EXPECT_TRUE(net.check_invariants());
}

TEST_P(NetworkInvariants, EverySurvivorIsSupported) {
  Network net = parser_.make_network(sentence());
  parser_.parse(net);
  net.filter();
  for (int r = 0; r < net.num_roles(); ++r)
    net.domain(r).for_each([&](std::size_t rv) {
      EXPECT_TRUE(net.supported(r, static_cast<int>(rv)))
          << "role " << r << " rv " << rv;
    });
}

TEST_P(NetworkInvariants, CountersMonotone) {
  Network net = parser_.make_network(sentence());
  auto snapshot = net.counters();
  parser_.run_unary(net);
  EXPECT_GE(net.counters().unary_evals, snapshot.unary_evals);
  snapshot = net.counters();
  parser_.run_binary(net);
  EXPECT_GE(net.counters().binary_evals, snapshot.binary_evals);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetworkInvariants,
                         ::testing::Range(0, 6));

// --------------------------------------------------------------------
// Random-order constraint application must not change the fixpoint
// (confluence of constraint propagation + filtering).
// --------------------------------------------------------------------
TEST(NetworkConfluence, ConstraintOrderIrrelevantAtFixpoint) {
  auto bundle = grammars::make_toy_grammar();
  cdg::SequentialParser parser(bundle.grammar);
  util::Rng rng(4242);
  for (const char* text : {"The program runs", "A dog halts",
                           "The dog crashes runs", "program The runs"}) {
    cdg::Sentence s = bundle.tag(text);
    Network ref = parser.make_network(s);
    parser.parse(ref);
    ref.filter();
    for (int trial = 0; trial < 5; ++trial) {
      Network net = parser.make_network(s);
      // Shuffled order, unary and binary interleaved arbitrarily.
      std::vector<std::pair<bool, std::size_t>> order;
      for (std::size_t i = 0; i < parser.compiled_unary().size(); ++i)
        order.emplace_back(true, i);
      for (std::size_t i = 0; i < parser.compiled_binary().size(); ++i)
        order.emplace_back(false, i);
      for (std::size_t i = order.size(); i > 1; --i)
        std::swap(order[i - 1], order[rng.next_below(i)]);
      for (auto [is_unary, idx] : order) {
        if (is_unary)
          parser.step_unary(net, idx);
        else
          parser.step_binary(net, idx);
        if (rng.next_bool(0.3)) net.consistency_step();
      }
      net.filter();
      for (int r = 0; r < net.num_roles(); ++r)
        EXPECT_EQ(net.domain(r), ref.domain(r))
            << text << " trial " << trial << " role " << r;
    }
  }
}

}  // namespace
