#include "cdg/symbols.h"

#include <gtest/gtest.h>

namespace {

using parsec::cdg::SymbolTable;

TEST(SymbolTable, InternAssignsDenseIds) {
  SymbolTable t;
  EXPECT_EQ(t.intern("SUBJ"), 0);
  EXPECT_EQ(t.intern("ROOT"), 1);
  EXPECT_EQ(t.intern("SUBJ"), 0);  // idempotent
  EXPECT_EQ(t.size(), 2);
}

TEST(SymbolTable, NameRoundTrip) {
  SymbolTable t;
  int id = t.intern("governor");
  EXPECT_EQ(t.name(id), "governor");
}

TEST(SymbolTable, FindAndAt) {
  SymbolTable t;
  t.intern("det");
  EXPECT_TRUE(t.find("det").has_value());
  EXPECT_FALSE(t.find("noun").has_value());
  EXPECT_EQ(t.at("det"), 0);
  EXPECT_THROW(t.at("noun"), std::out_of_range);
  EXPECT_TRUE(t.contains("det"));
  EXPECT_FALSE(t.contains("verb"));
}

TEST(SymbolTable, CaseSensitive) {
  SymbolTable t;
  int a = t.intern("subj");
  int b = t.intern("SUBJ");
  EXPECT_NE(a, b);
}

}  // namespace
