// Lexical-category ambiguity (DESIGN.md §5, deviation 2): the paper's
// nodes store several possible parts of speech; we resolve by trying
// taggings preferred-first.
#include <gtest/gtest.h>

#include "cdg/parser.h"
#include "grammars/english_grammar.h"

namespace {

using namespace parsec;

class TagAmbiguityTest : public ::testing::Test {
 protected:
  TagAmbiguityTest()
      : bundle_(grammars::make_english_grammar()), parser_(bundle_.grammar) {}
  grammars::CdgBundle bundle_;
  cdg::SequentialParser parser_;
};

TEST_F(TagAmbiguityTest, PreferredTaggingWinsWhenGrammatical) {
  // "she watch ..." is wrong English but the grammar only checks
  // structure: watch-as-verb (preferred) parses directly.
  cdg::Sentence chosen;
  auto r = parser_.parse_any_tagging(
      bundle_.lexicon, {"she", "watch", "the", "dog"}, &chosen);
  EXPECT_TRUE(r.accepted);
  EXPECT_EQ(chosen.cat_at(2), bundle_.grammar.category("verb"));
}

TEST_F(TagAmbiguityTest, FallsBackToSecondaryCategory) {
  // "the watch runs": watch-as-verb fails (a det cannot modify a verb);
  // watch-as-noun parses.
  cdg::Sentence chosen;
  auto r = parser_.parse_any_tagging(bundle_.lexicon,
                                     {"the", "watch", "runs"}, &chosen);
  EXPECT_TRUE(r.accepted);
  EXPECT_EQ(chosen.cat_at(2), bundle_.grammar.category("noun"));
  // The single-tagging parse with the preferred category indeed fails.
  EXPECT_FALSE(
      parser_.parse_sentence(bundle_.tag("the watch runs")).accepted);
}

TEST_F(TagAmbiguityTest, MultipleAmbiguousWords) {
  // "the light watch runs": light-as-adj + watch-as-noun is the only
  // combination that parses (2 x 2 taggings tried).
  cdg::Sentence chosen;
  auto r = parser_.parse_any_tagging(
      bundle_.lexicon, {"the", "light", "watch", "runs"}, &chosen);
  EXPECT_TRUE(r.accepted);
  EXPECT_EQ(chosen.cat_at(2), bundle_.grammar.category("adj"));
  EXPECT_EQ(chosen.cat_at(3), bundle_.grammar.category("noun"));
}

TEST_F(TagAmbiguityTest, TotalFailureReturnsPreferredResult) {
  cdg::Sentence chosen;
  auto r = parser_.parse_any_tagging(bundle_.lexicon,
                                     {"watch", "watch"}, &chosen);
  EXPECT_FALSE(r.accepted);
  // `chosen` reports the preferred tagging that was tried first.
  EXPECT_EQ(chosen.cat_at(1), bundle_.grammar.category("verb"));
}

TEST_F(TagAmbiguityTest, UnambiguousSentenceUnaffected) {
  auto direct = parser_.parse_sentence(bundle_.tag("the dog runs"));
  cdg::Sentence chosen;
  auto via = parser_.parse_any_tagging(bundle_.lexicon,
                                       {"the", "dog", "runs"}, &chosen);
  EXPECT_EQ(direct.accepted, via.accepted);
  EXPECT_EQ(direct.alive_role_values, via.alive_role_values);
}

}  // namespace
