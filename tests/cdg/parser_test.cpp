#include "cdg/parser.h"

#include <gtest/gtest.h>

#include "cdg/extract.h"
#include "grammars/toy_grammar.h"

namespace {

using namespace parsec;
using cdg::Network;
using cdg::ParseOptions;
using cdg::ParseResult;
using cdg::SequentialParser;

class ParserTest : public ::testing::Test {
 protected:
  ParserTest() : bundle_(grammars::make_toy_grammar()) {}
  grammars::CdgBundle bundle_;
};

TEST_F(ParserTest, AcceptsTheWorkedExample) {
  SequentialParser p(bundle_.grammar);
  ParseResult r = p.parse_sentence(bundle_.tag("The program runs"));
  EXPECT_TRUE(r.accepted);
  EXPECT_FALSE(r.ambiguous);
  // Fully disambiguated: exactly one role value per role.
  EXPECT_EQ(r.alive_role_values, 6u);
}

TEST_F(ParserTest, CompilesConstraintSetsOnce) {
  SequentialParser p(bundle_.grammar);
  EXPECT_EQ(p.compiled_unary().size(), 6u);
  EXPECT_EQ(p.compiled_binary().size(), 4u);
}

TEST_F(ParserTest, DeferredConsistencyGivesSameFixpoint) {
  // Running consistency only at the end (via filtering) must reach the
  // same fixpoint as interleaved maintenance: both compute the largest
  // locally-consistent subnetwork after all constraints.
  SequentialParser interleaved(bundle_.grammar,
                               {.consistency_after_each_binary = true});
  ParseOptions deferred_opt;
  deferred_opt.consistency_after_each_binary = false;
  SequentialParser deferred(bundle_.grammar, deferred_opt);
  for (const char* text :
       {"The program runs", "The dog halts", "A compiler crashes",
        "The program", "dog runs", "The The dog runs"}) {
    Network a = interleaved.make_network(bundle_.tag(text));
    Network b = deferred.make_network(bundle_.tag(text));
    ParseResult ra = interleaved.parse(a);
    ParseResult rb = deferred.parse(b);
    EXPECT_EQ(ra.accepted, rb.accepted) << text;
    for (int r = 0; r < a.num_roles(); ++r)
      EXPECT_EQ(a.domain(r), b.domain(r)) << text << " role " << r;
  }
}

TEST_F(ParserTest, BoundedFilteringIsPrefixOfFullFiltering) {
  // MasPar design decision 5: a constant filtering bound.  With bound 0
  // no filtering sweep runs; with a large bound results equal the
  // fixpoint.
  ParseOptions none;
  none.filter_sweeps = 0;
  ParseOptions full;
  full.filter_sweeps = -1;
  SequentialParser p_none(bundle_.grammar, none);
  SequentialParser p_full(bundle_.grammar, full);
  Network a = p_none.make_network(bundle_.tag("The program runs"));
  Network b = p_full.make_network(bundle_.tag("The program runs"));
  ParseResult ra = p_none.parse(a);
  ParseResult rb = p_full.parse(b);
  // Every value alive in the fixpoint is alive under bounded filtering
  // (filtering only removes).
  for (int r = 0; r < a.num_roles(); ++r) {
    b.domain(r).for_each([&](std::size_t rv) {
      EXPECT_TRUE(a.domain(r).test(rv)) << "role " << r << " rv " << rv;
    });
  }
  EXPECT_GE(ra.alive_role_values, rb.alive_role_values);
}

TEST_F(ParserTest, StepwiseEqualsBatch) {
  SequentialParser p(bundle_.grammar);
  Network a = p.make_network(bundle_.tag("The dog runs"));
  Network b = p.make_network(bundle_.tag("The dog runs"));
  // a: stepwise unary then binary; b: batch helpers.
  for (std::size_t i = 0; i < p.compiled_unary().size(); ++i)
    p.step_unary(a, i);
  p.run_unary(b);
  for (int r = 0; r < a.num_roles(); ++r) EXPECT_EQ(a.domain(r), b.domain(r));
  for (std::size_t i = 0; i < p.compiled_binary().size(); ++i) {
    p.step_binary(a, i);
    a.consistency_step();
  }
  p.run_binary(b);
  for (int r = 0; r < a.num_roles(); ++r) EXPECT_EQ(a.domain(r), b.domain(r));
}

TEST_F(ParserTest, AmbiguousSentenceReported) {
  // "The dog runs" is unambiguous under the toy grammar; build a small
  // ambiguity instead: two determiners before a noun leave the parse
  // ambiguous in... actually "The The dog runs" both DETs must modify
  // the noun, which is fine for each independently; check ambiguity
  // detection directly on a half-propagated network.
  SequentialParser p(bundle_.grammar);
  Network net = p.make_network(bundle_.tag("The program runs"));
  p.run_unary(net);
  // Before binary constraints, several roles are still ambiguous.
  bool any_multi = false;
  for (int r = 0; r < net.num_roles(); ++r)
    if (net.domain(r).count() > 1) any_multi = true;
  EXPECT_TRUE(any_multi);
}

TEST_F(ParserTest, RejectionLeavesEmptyRole) {
  SequentialParser p(bundle_.grammar);
  Network net = p.make_network(bundle_.tag("program The runs"));
  ParseResult r = p.parse(net);
  EXPECT_FALSE(r.accepted);
  bool any_empty = false;
  for (int role = 0; role < net.num_roles(); ++role)
    if (net.domain(role).none()) any_empty = true;
  EXPECT_TRUE(any_empty);
}

TEST_F(ParserTest, AcceptanceAgreesWithExtraction) {
  // Necessary-condition acceptance (nonempty domains after full
  // filtering) must agree with exact extraction on the toy grammar's
  // tiny sentences.
  SequentialParser p(bundle_.grammar);
  for (const char* text :
       {"The program runs", "The dog halts", "dog runs", "The program",
        "program The runs", "The program runs halts", "A A dog runs"}) {
    Network net = p.make_network(bundle_.tag(text));
    ParseResult r = p.parse(net);
    const bool exact = cdg::has_parse(net);
    EXPECT_EQ(r.accepted, exact) << text;
  }
}

}  // namespace
