// NetworkArena layout and reuse: one allocation, offsets that are pure
// functions of the shape, O(1) same-shape reinit (paper §2.2.1's
// fixed-offset PE-array layout, hosted).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "cdg/arena.h"
#include "cdg/network.h"
#include "cdg/parser.h"
#include "grammars/toy_grammar.h"

namespace {

using namespace parsec;
using cdg::NetworkArena;

TEST(NetworkArena, ShapeAndRegionSizes) {
  NetworkArena a(6, 70);  // D > 64 exercises the two-word stride
  EXPECT_EQ(a.roles(), 6);
  EXPECT_EQ(a.domain_size(), 70);
  EXPECT_EQ(a.row_words(), 2u);
  // Domain rows pad to a whole cache line; arc rows keep the natural
  // stride.
  EXPECT_EQ(a.aligned_row_words(), NetworkArena::kAlignWords);
  EXPECT_EQ(a.num_arcs(), 15u);  // 6*5/2
  EXPECT_EQ(a.domains_bytes(),
            6u * NetworkArena::kAlignWords * sizeof(NetworkArena::Word));
  EXPECT_EQ(a.arcs_bytes(), 15u * 70 * 2 * sizeof(NetworkArena::Word));
  EXPECT_EQ(a.counts_bytes(), 6u * 70 * 6 * sizeof(std::int32_t));
  EXPECT_GE(a.bytes(), a.domains_bytes() + a.arcs_bytes() + a.counts_bytes());
  EXPECT_EQ(a.allocations(), 1u);
  EXPECT_EQ(a.reinits(), 0u);
}

TEST(NetworkArena, AlignedRowsStartOnCacheLines) {
  NetworkArena a(5, 70, /*mask_slots=*/3);
  auto aligned = [](const void* p) {
    return reinterpret_cast<std::uintptr_t>(p) %
               NetworkArena::kRowAlignBytes ==
           0;
  };
  for (int r = 0; r < 5; ++r) {
    EXPECT_TRUE(aligned(a.domain(r).words())) << "domain " << r;
    EXPECT_TRUE(aligned(a.support_scratch(r).words())) << "scratch " << r;
    for (std::size_t s = 0; s < a.mask_slots(); ++s)
      EXPECT_TRUE(aligned(a.mask(s, r).words())) << "mask " << s << "," << r;
  }
}

TEST(NetworkArena, ArcIndexIsRowMajorUpperTriangleBijection) {
  NetworkArena a(5, 8);
  std::set<std::size_t> seen;
  std::size_t expect = 0;
  for (int ra = 0; ra < 5; ++ra)
    for (int rb = ra + 1; rb < 5; ++rb) {
      const std::size_t idx = a.arc_index(ra, rb);
      EXPECT_EQ(idx, expect++);  // row-major order
      EXPECT_TRUE(seen.insert(idx).second) << ra << "," << rb;
      const auto [pa, pb] = a.arc_pair(idx);  // inverse
      EXPECT_EQ(pa, ra);
      EXPECT_EQ(pb, rb);
    }
  EXPECT_EQ(seen.size(), a.num_arcs());
}

TEST(NetworkArena, SpansAndViewsAddressDisjointStorage) {
  NetworkArena a(4, 10);
  // Write a distinct pattern through every accessor, then read it all
  // back: no region may alias another.
  for (int r = 0; r < 4; ++r) {
    auto d = a.domain(r);
    d.reset_all();
    d.set(static_cast<std::size_t>(r));
  }
  for (std::size_t t = 0; t < a.num_arcs(); ++t) {
    auto m = a.arc(t);
    m.reset_all();
    m.set(t % 10, (t + 1) % 10);
  }
  for (auto& c : a.support_counts()) c = 7;
  for (auto& f : a.rv_flags()) f = 3;
  for (auto& q : a.queue_storage()) q = -2;

  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(a.domain(r).count(), 1u);
    EXPECT_TRUE(a.domain(r).test(static_cast<std::size_t>(r)));
  }
  for (std::size_t t = 0; t < a.num_arcs(); ++t) {
    EXPECT_EQ(a.arc(t).count(), 1u) << "arc " << t;
    EXPECT_TRUE(a.arc(t).test(t % 10, (t + 1) % 10));
  }
  for (auto c : a.support_counts()) EXPECT_EQ(c, 7);
  for (auto f : a.rv_flags()) EXPECT_EQ(f, 3);
  for (auto q : a.queue_storage()) EXPECT_EQ(q, -2);
  EXPECT_EQ(a.support_count(2, 5, 1), 7);
}

TEST(NetworkArena, ReinitKeepsAllocationAndPointers) {
  NetworkArena a(4, 9);
  ASSERT_EQ(a.allocations(), 1u);
  const NetworkArena::Word* dom0 = a.domain(0).words();
  const std::size_t bytes = a.bytes();
  a.reinit();
  a.reinit();
  EXPECT_EQ(a.reinits(), 2u);
  EXPECT_EQ(a.allocations(), 1u);  // no realloc
  EXPECT_EQ(a.bytes(), bytes);
  EXPECT_EQ(a.domain(0).words(), dom0);  // storage stable
  EXPECT_FALSE(a.counts_valid());        // counters invalidated
}

TEST(NetworkArena, SameShapeReshapeDoesNotReallocate) {
  NetworkArena a(5, 12);
  const std::size_t bytes = a.bytes();
  a.reshape(5, 12);
  EXPECT_EQ(a.allocations(), 1u);
  EXPECT_EQ(a.bytes(), bytes);
  // Shrinking fits in the existing capacity too.
  a.reshape(3, 8);
  EXPECT_EQ(a.allocations(), 1u);
  EXPECT_TRUE(a.same_shape(3, 8));
  // Growing past capacity reallocates exactly once.
  a.reshape(8, 20);
  EXPECT_EQ(a.allocations(), 2u);
}

TEST(NetworkArena, CountsValidFlagGatesOnMutation) {
  NetworkArena a(3, 6);
  EXPECT_FALSE(a.counts_valid());
  a.set_counts_valid(true);
  EXPECT_TRUE(a.counts_valid());
  a.reinit();
  EXPECT_FALSE(a.counts_valid());
}

// ---------------------------------------------------------------------
// Arena reuse through Network::reinit — mirrors the existing Network
// reinit tests, but asserts on the arena's accounting.
// ---------------------------------------------------------------------
TEST(NetworkArenaReuse, NetworkReinitIsAllocationFreeAndBitIdentical) {
  auto bundle = grammars::make_toy_grammar();
  cdg::SequentialParser parser(bundle.grammar);
  cdg::Sentence s1 = bundle.tag("The program runs");
  cdg::Sentence s2 = bundle.tag("a compiler halts");

  cdg::Network net = parser.make_network(s1);
  const std::uint64_t allocs = net.arena().allocations();
  parser.parse(net);
  net.filter();
  EXPECT_TRUE(net.check_invariants());

  // Fresh-network reference for the second sentence.
  cdg::Network ref = parser.make_network(s2);
  parser.parse(ref);
  ref.filter();

  // Same-length reinit: arena reused, fixpoint bit-identical.
  ASSERT_TRUE(net.reinit(s2));
  EXPECT_EQ(net.arena().allocations(), allocs);
  EXPECT_GE(net.arena().reinits(), 1u);
  parser.parse(net);
  net.filter();
  EXPECT_TRUE(net.check_invariants());
  for (int r = 0; r < net.num_roles(); ++r)
    EXPECT_EQ(ref.domain(r), net.domain(r)) << "role " << r;
  for (int a = 0; a < net.num_roles(); ++a)
    for (int b = a + 1; b < net.num_roles(); ++b)
      EXPECT_TRUE(ref.arc_matrix(a, b) == net.arc_matrix(a, b))
          << "arc " << a << "," << b;

  // Different length: reinit must refuse (shape change).
  EXPECT_FALSE(net.reinit(bundle.tag("The dog")));
}

}  // namespace
