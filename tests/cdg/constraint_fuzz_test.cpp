// Constraint-language fuzzing: random well-typed constraint ASTs are
// printed to the paper's surface syntax, re-parsed, compiled, and
// evaluated — printer, parser, type-checker, interpreter and bytecode
// must all agree on every binding.
#include <gtest/gtest.h>

#include "cdg/constraint_eval.h"
#include "cdg/constraint_parser.h"
#include "cdg/grammar.h"
#include "grammars/toy_grammar.h"
#include "util/rng.h"

namespace {

using namespace parsec;
using namespace parsec::cdg;
using parsec::util::Rng;

/// Generates random well-typed expressions over the toy grammar's
/// symbols.
class AstFuzzer {
 public:
  AstFuzzer(const Grammar& g, Rng& rng) : g_(g), rng_(rng) {}

  Constraint constraint() {
    Constraint c;
    c.root.op = Op::If;
    c.root.type = ValueType::Bool;
    c.root.args.push_back(boolean(3));
    c.root.args.push_back(boolean(3));
    c.arity = uses_y_ ? 2 : 1;
    return c;
  }

 private:
  Expr var() {
    Expr e;
    e.op = Op::Var;
    e.type = ValueType::Bool;
    e.value = rng_.next_bool(0.4) ? 1 : 0;
    if (e.value == 1) uses_y_ = true;
    return e;
  }

  Expr access(Op op, ValueType type) {
    Expr e;
    e.op = op;
    e.type = type;
    e.args.push_back(var());
    return e;
  }

  Expr pos_expr() {
    switch (rng_.next_below(3)) {
      case 0:
        return access(Op::Mod, ValueType::Pos);
      case 1:
        return access(Op::PosOf, ValueType::Pos);
      default: {
        Expr e;
        e.op = Op::ConstInt;
        e.type = ValueType::Pos;
        e.value = static_cast<int>(rng_.next_below(5));  // incl. nil = 0
        return e;
      }
    }
  }

  Expr value_pair_lhs(ValueType t) {
    switch (t) {
      case ValueType::Label:
        return access(Op::Lab, ValueType::Label);
      case ValueType::RoleT:
        return access(Op::RoleOf, ValueType::RoleT);
      case ValueType::Cat: {
        Expr w;
        w.op = Op::WordAt;
        w.type = ValueType::Word;
        w.args.push_back(pos_expr());
        Expr e;
        e.op = Op::CatOf;
        e.type = ValueType::Cat;
        e.args.push_back(std::move(w));
        return e;
      }
      default:
        return pos_expr();
    }
  }

  Expr value_pair_rhs(ValueType t) {
    // Half the time a structural expression, half a constant.
    if (rng_.next_bool() && t == ValueType::Pos) return pos_expr();
    Expr e;
    e.type = t;
    switch (t) {
      case ValueType::Label:
        e.op = Op::ConstSym;
        e.value = static_cast<int>(rng_.next_below(g_.num_labels()));
        return e;
      case ValueType::RoleT:
        e.op = Op::ConstSym;
        e.value = static_cast<int>(rng_.next_below(g_.num_roles()));
        return e;
      case ValueType::Cat:
        e.op = Op::ConstSym;
        e.value = static_cast<int>(rng_.next_below(g_.num_categories()));
        return e;
      default:
        e.op = Op::ConstInt;
        e.value = static_cast<int>(rng_.next_below(5));
        return e;
    }
  }

  Expr comparison() {
    Expr e;
    e.type = ValueType::Bool;
    const int kind = static_cast<int>(rng_.next_below(4));
    if (kind >= 2) {
      // gt / lt on positions.
      e.op = kind == 2 ? Op::Gt : Op::Lt;
      e.args.push_back(pos_expr());
      e.args.push_back(pos_expr());
      return e;
    }
    e.op = Op::Eq;
    const ValueType types[] = {ValueType::Label, ValueType::RoleT,
                               ValueType::Cat, ValueType::Pos};
    const ValueType t = types[rng_.next_below(4)];
    e.args.push_back(value_pair_lhs(t));
    e.args.push_back(value_pair_rhs(t));
    return e;
  }

  Expr boolean(int depth) {
    if (depth == 0 || rng_.next_bool(0.4)) return comparison();
    Expr e;
    e.type = ValueType::Bool;
    switch (rng_.next_below(3)) {
      case 0:
        e.op = Op::And;
        break;
      case 1:
        e.op = Op::Or;
        break;
      default:
        e.op = Op::Not;
        e.args.push_back(boolean(depth - 1));
        return e;
    }
    const int arity = 2 + static_cast<int>(rng_.next_below(2));
    for (int i = 0; i < arity; ++i) e.args.push_back(boolean(depth - 1));
    return e;
  }

  const Grammar& g_;
  Rng& rng_;
  bool uses_y_ = false;
};

class ConstraintFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ConstraintFuzz, PrintParseEvalRoundTrip) {
  auto bundle = grammars::make_toy_grammar();
  const Grammar& g = bundle.grammar;
  Rng rng(9000 + GetParam());
  cdg::Sentence s = bundle.tag("The program runs");

  for (int iter = 0; iter < 40; ++iter) {
    AstFuzzer fuzz(g, rng);
    Constraint original = fuzz.constraint();
    const std::string text = original.root.to_string_with(g);

    // Re-parse the printed form.
    Constraint reparsed = parse_constraint(g, text);
    EXPECT_EQ(reparsed.arity, original.arity) << text;
    EXPECT_EQ(reparsed.root.to_string_with(g), text) << "print fixpoint";

    const CompiledConstraint cc_orig = compile_constraint(original);
    const CompiledConstraint cc_re = compile_constraint(reparsed);

    // Evaluate everything on a sweep of bindings.
    EvalContext ctx;
    ctx.sentence = &s;
    for (int trial = 0; trial < 60; ++trial) {
      ctx.x = Binding{RoleValue{static_cast<int>(rng.next_below(6)),
                                static_cast<int>(rng.next_below(4))},
                      static_cast<int>(rng.next_below(2)),
                      1 + static_cast<int>(rng.next_below(3))};
      ctx.y = Binding{RoleValue{static_cast<int>(rng.next_below(6)),
                                static_cast<int>(rng.next_below(4))},
                      static_cast<int>(rng.next_below(2)),
                      1 + static_cast<int>(rng.next_below(3))};
      const bool a = eval_constraint(original, ctx);
      EXPECT_EQ(eval_constraint(reparsed, ctx), a) << text;
      EXPECT_EQ(eval_compiled(cc_orig, ctx), a) << text;
      EXPECT_EQ(eval_compiled(cc_re, ctx), a) << text;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConstraintFuzz, ::testing::Range(0, 6));

// Differential check of the predicate-hoisting pass (constraint_eval.h
// "Factored form"): on random well-typed constraints, the three-valued
// decision the masked sweep derives from the hoisted parts must be
// sound against the full program, and each hoisted part must equal the
// conjunction of its per-term programs (what the mask builder
// evaluates).
TEST_P(ConstraintFuzz, FactoredDecisionsAreSoundAgainstFullProgram) {
  auto bundle = grammars::make_toy_grammar();
  const Grammar& g = bundle.grammar;
  Rng rng(17000 + GetParam());
  cdg::Sentence s = bundle.tag("The program runs");

  auto conj_of_terms = [&](const std::vector<HoistedTerm>& terms,
                           const Binding& b) {
    for (const HoistedTerm& t : terms)
      if (!eval_hoisted(t.prog, s, b)) return false;
    return true;
  };
  auto random_binding = [&]() {
    return Binding{RoleValue{static_cast<int>(rng.next_below(6)),
                             static_cast<int>(rng.next_below(4))},
                   static_cast<int>(rng.next_below(2)),
                   1 + static_cast<int>(rng.next_below(3))};
  };

  for (int iter = 0; iter < 40; ++iter) {
    AstFuzzer fuzz(g, rng);
    Constraint original = fuzz.constraint();
    const FactoredConstraint f = factor_constraint(original);
    const std::string text = original.root.to_string_with(g);
    EXPECT_EQ(f.arity, original.arity) << text;

    EvalContext ctx;
    ctx.sentence = &s;
    for (int trial = 0; trial < 60; ++trial) {
      ctx.x = random_binding();
      ctx.y = random_binding();
      const bool sat = eval_compiled(f.full, ctx);
      EXPECT_EQ(eval_constraint(original, ctx), sat) << text;

      if (f.arity == 1) {
        // Unary split: guard false => vacuously satisfied; guard true
        // => the rest decides, identically to the full program.
        const bool guard = eval_hoisted(f.unary_guard, s, ctx.x);
        if (!guard)
          EXPECT_TRUE(sat) << text;
        else
          EXPECT_EQ(eval_compiled(f.unary_rest, ctx), sat) << text;
        continue;
      }

      // Part == conjunction of its terms (one variable assignment; the
      // hoisted programs read whichever slot holds the binding).
      const bool ax = eval_hoisted(f.ante_x, s, ctx.x);
      const bool ay = eval_hoisted(f.ante_y, s, ctx.y);
      const bool cx = eval_hoisted(f.cons_x, s, ctx.x);
      const bool cy = eval_hoisted(f.cons_y, s, ctx.y);
      EXPECT_EQ(ax, conj_of_terms(f.ante_x_terms, ctx.x)) << text;
      EXPECT_EQ(ay, conj_of_terms(f.ante_y_terms, ctx.y)) << text;
      EXPECT_EQ(cx, conj_of_terms(f.cons_x_terms, ctx.x)) << text;
      EXPECT_EQ(cy, conj_of_terms(f.cons_y_terms, ctx.y)) << text;

      // The sweep's three-valued decision (constraint_eval.h):
      if (!ax || !ay) EXPECT_TRUE(sat) << text << " (A known false)";
      if (cx && cy && !f.cons_residual)
        EXPECT_TRUE(sat) << text << " (C known true)";
      if (ax && ay && !f.ante_residual && (!cx || !cy))
        EXPECT_FALSE(sat) << text << " (A true, C false)";
    }
  }
}

}  // namespace
