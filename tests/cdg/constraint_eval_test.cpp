#include "cdg/constraint_eval.h"

#include <gtest/gtest.h>

#include "cdg/constraint_parser.h"
#include "cdg/grammar.h"
#include "util/rng.h"

namespace {

using namespace parsec::cdg;

class ConstraintEvalTest : public ::testing::Test {
 protected:
  ConstraintEvalTest() {
    det = g.add_category("det");
    noun = g.add_category("noun");
    verb = g.add_category("verb");
    SUBJ = g.add_label("SUBJ");
    ROOT = g.add_label("ROOT");
    DET = g.add_label("DET");
    governor = g.add_role("governor");
    needs = g.add_role("needs");
    // "The program runs"
    s.words = {"The", "program", "runs"};
    s.cats = {det, noun, verb};
  }

  EvalContext ctx_for(RoleValue xrv, RoleId xrole, WordPos xpos) {
    EvalContext ctx;
    ctx.sentence = &s;
    ctx.x = Binding{xrv, xrole, xpos};
    return ctx;
  }

  Grammar g;
  Sentence s;
  CatId det, noun, verb;
  LabelId SUBJ, ROOT, DET;
  RoleId governor, needs;
};

TEST_F(ConstraintEvalTest, PaperFirstUnaryConstraintSemantics) {
  Constraint c = parse_constraint(g, R"(
      (if (and (eq (cat (word (pos x))) verb)
               (eq (role x) governor))
          (and (eq (lab x) ROOT)
               (eq (mod x) nil))))");
  // runs.governor = ROOT-nil: satisfied.
  EXPECT_TRUE(eval_constraint(c, ctx_for({ROOT, kNil}, governor, 3)));
  // runs.governor = SUBJ-1: antecedent true, consequent false: violated.
  EXPECT_FALSE(eval_constraint(c, ctx_for({SUBJ, 1}, governor, 3)));
  // runs.governor = ROOT-1 (non-nil modifiee): violated.
  EXPECT_FALSE(eval_constraint(c, ctx_for({ROOT, 1}, governor, 3)));
  // program.governor = SUBJ-3: antecedent false (noun): satisfied.
  EXPECT_TRUE(eval_constraint(c, ctx_for({SUBJ, 3}, governor, 2)));
  // runs.needs: antecedent false (role mismatch): satisfied.
  EXPECT_TRUE(eval_constraint(c, ctx_for({SUBJ, 1}, needs, 3)));
}

TEST_F(ConstraintEvalTest, BinaryConstraintBothVariables) {
  Constraint c = parse_constraint(g, R"(
      (if (and (eq (lab x) SUBJ) (eq (lab y) ROOT))
          (and (eq (mod x) (pos y)) (lt (pos x) (pos y)))))");
  EvalContext ctx;
  ctx.sentence = &s;
  // x = SUBJ-3 at word 2, y = ROOT-nil at word 3: satisfied.
  ctx.x = Binding{{SUBJ, 3}, governor, 2};
  ctx.y = Binding{{ROOT, kNil}, governor, 3};
  EXPECT_TRUE(eval_constraint(c, ctx));
  // x = SUBJ-1 at word 2: mod (1) != pos y (3): violated.
  ctx.x = Binding{{SUBJ, 1}, governor, 2};
  EXPECT_FALSE(eval_constraint(c, ctx));
  // Swapped: x = ROOT, y = SUBJ: antecedent false: satisfied.
  ctx.x = Binding{{ROOT, kNil}, governor, 3};
  ctx.y = Binding{{SUBJ, 1}, governor, 2};
  EXPECT_TRUE(eval_constraint(c, ctx));
}

TEST_F(ConstraintEvalTest, CatOfNilWordIsInvalidNotCrash) {
  // (cat (word (mod x))) with mod = nil: the access is invalid and every
  // comparison with it is false, so the antecedent can't fire.
  Constraint c = parse_constraint(g, R"(
      (if (eq (cat (word (mod x))) noun)
          (eq (lab x) DET)))");
  // mod = nil: antecedent false -> satisfied regardless of label.
  EXPECT_TRUE(eval_constraint(c, ctx_for({ROOT, kNil}, governor, 3)));
  // mod = 2 (noun), label != DET: violated.
  EXPECT_FALSE(eval_constraint(c, ctx_for({ROOT, 2}, governor, 3)));
  // mod = 3 (verb): antecedent false -> satisfied.
  EXPECT_TRUE(eval_constraint(c, ctx_for({ROOT, 3}, governor, 1)));
}

TEST_F(ConstraintEvalTest, OutOfRangePositionIsInvalid) {
  Constraint c = parse_constraint(g, R"(
      (if (eq (cat (word 9)) noun) (eq (lab x) DET)))");
  // word 9 does not exist: antecedent false.
  EXPECT_TRUE(eval_constraint(c, ctx_for({ROOT, kNil}, governor, 1)));
}

TEST_F(ConstraintEvalTest, NotAndOrSemantics) {
  Constraint c = parse_constraint(g, R"(
      (if (not (eq (mod x) nil))
          (or (eq (lab x) SUBJ) (eq (lab x) DET))))");
  EXPECT_TRUE(eval_constraint(c, ctx_for({SUBJ, 1}, governor, 2)));
  EXPECT_TRUE(eval_constraint(c, ctx_for({DET, 2}, governor, 1)));
  EXPECT_FALSE(eval_constraint(c, ctx_for({ROOT, 1}, governor, 2)));
  EXPECT_TRUE(eval_constraint(c, ctx_for({ROOT, kNil}, governor, 2)));
}

TEST_F(ConstraintEvalTest, GtLtOnPositions) {
  Constraint c = parse_constraint(g, R"(
      (if (gt (pos x) 1) (lt (pos x) 3)))");
  EXPECT_TRUE(eval_constraint(c, ctx_for({SUBJ, 1}, governor, 1)));
  EXPECT_TRUE(eval_constraint(c, ctx_for({SUBJ, 1}, governor, 2)));
  EXPECT_FALSE(eval_constraint(c, ctx_for({SUBJ, 1}, governor, 3)));
}

// ---------------------------------------------------------------------
// Property: the compiled bytecode evaluator agrees with the tree-walking
// interpreter on every constraint in a pool, over a sweep of bindings.
// ---------------------------------------------------------------------
class CompiledVsInterpreted
    : public ConstraintEvalTest,
      public ::testing::WithParamInterface<const char*> {};

TEST_P(CompiledVsInterpreted, Agree) {
  Constraint c = parse_constraint(g, GetParam());
  CompiledConstraint cc = compile_constraint(c);
  EXPECT_EQ(cc.arity, c.arity);
  EvalContext ctx;
  ctx.sentence = &s;
  for (LabelId lx : {SUBJ, ROOT, DET}) {
    for (WordPos mx = 0; mx <= 3; ++mx) {
      for (RoleId rx : {governor, needs}) {
        for (WordPos px = 1; px <= 3; ++px) {
          ctx.x = Binding{{lx, mx}, rx, px};
          for (LabelId ly : {SUBJ, ROOT, DET}) {
            for (WordPos my = 0; my <= 3; ++my) {
              ctx.y = Binding{{ly, my}, governor, (px % 3) + 1};
              EXPECT_EQ(eval_constraint(c, ctx), eval_compiled(cc, ctx))
                  << c.root.to_string_with(g);
            }
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Pool, CompiledVsInterpreted,
    ::testing::Values(
        "(if (and (eq (cat (word (pos x))) verb) (eq (role x) governor)) "
        "(and (eq (lab x) ROOT) (eq (mod x) nil)))",
        "(if (and (eq (lab x) SUBJ) (eq (lab y) ROOT)) "
        "(and (eq (mod x) (pos y)) (lt (pos x) (pos y))))",
        "(if (and (eq (lab x) DET) (eq (cat (word (pos y))) noun)) "
        "(and (eq (mod x) (pos y)) (lt (pos x) (pos y))))",
        "(if (not (eq (mod x) nil)) (or (eq (lab x) SUBJ) (gt (pos x) 1)))",
        "(if (eq (cat (word (mod x))) noun) (eq (lab x) DET))",
        "(if (or (eq (lab x) SUBJ) (eq (lab y) SUBJ) (eq (lab x) DET)) "
        "(and (not (eq (mod x) (mod y))) (lt (mod x) 4)))",
        "(if (gt (mod x) (mod y)) (gt (pos x) (pos y)))"));

TEST_F(ConstraintEvalTest, CompileAllMatchesSizes) {
  Constraint a = parse_constraint(g, "(if (eq (lab x) SUBJ) (gt (pos x) 1))");
  Constraint b = parse_constraint(
      g, "(if (eq (lab x) SUBJ) (eq (mod x) (pos y)))");
  auto compiled = compile_all({a, b});
  ASSERT_EQ(compiled.size(), 2u);
  EXPECT_EQ(compiled[0].arity, 1);
  EXPECT_EQ(compiled[1].arity, 2);
}

}  // namespace
