#include "util/table.h"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using parsec::util::format_value;
using parsec::util::Table;

TEST(Table, AlignsColumns) {
  Table t({"arch", "PEs", "time"});
  t.add("Sequential", 1, 15.25);
  t.add("MasPar MP-1", 16384, 0.15);
  const std::string s = t.to_string();
  // Header present, rule present, rows present.
  EXPECT_NE(s.find("arch"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  EXPECT_NE(s.find("MasPar MP-1"), std::string::npos);
  EXPECT_NE(s.find("16384"), std::string::npos);
  // Numeric column is right-aligned: "1" ends where "16384" ends.
  auto line_of = [&](const std::string& needle) {
    auto pos = s.find(needle);
    auto start = s.rfind('\n', pos);
    auto end = s.find('\n', pos);
    return s.substr(start + 1, end - start - 1);
  };
  std::string seq = line_of("Sequential");
  std::string mp = line_of("MasPar");
  EXPECT_EQ(seq.size(), mp.size());
}

TEST(Table, FormatValueIntegersExact) {
  EXPECT_EQ(format_value(0), "0");
  EXPECT_EQ(format_value(16384), "16384");
  EXPECT_EQ(format_value(-7), "-7");
}

TEST(Table, FormatValueReals) {
  EXPECT_EQ(format_value(0.15), "0.15");
  EXPECT_EQ(format_value(std::nan("")), "-");
  // Very large/small non-integral values switch to scientific.
  EXPECT_NE(format_value(1234567.89).find('e'), std::string::npos);
  EXPECT_NE(format_value(1.2e-6).find('e'), std::string::npos);
}

}  // namespace
