#include "util/sexpr.h"

#include <gtest/gtest.h>

namespace {

using parsec::util::parse_sexpr;
using parsec::util::parse_sexprs;
using parsec::util::Sexpr;
using parsec::util::SexprError;

TEST(Sexpr, ParsesAtom) {
  Sexpr s = parse_sexpr("SUBJ");
  EXPECT_TRUE(s.is_atom());
  EXPECT_EQ(s.atom, "SUBJ");
}

TEST(Sexpr, ParsesFlatList) {
  Sexpr s = parse_sexpr("(eq x y)");
  ASSERT_TRUE(s.is_list());
  ASSERT_EQ(s.size(), 3u);
  EXPECT_TRUE(s[0].is("eq"));
  EXPECT_TRUE(s[1].is("x"));
  EXPECT_TRUE(s[2].is("y"));
}

TEST(Sexpr, ParsesNestedConstraint) {
  Sexpr s = parse_sexpr(R"(
      (if (and (eq (cat (word (pos x))) verb)
               (eq (role x) governor))
          (and (eq (lab x) ROOT)
               (eq (mod x) nil))))");
  ASSERT_TRUE(s.is_list());
  ASSERT_EQ(s.size(), 3u);
  EXPECT_TRUE(s[0].is("if"));
  EXPECT_TRUE(s[1].is_list());
  EXPECT_EQ(s[1][0].atom, "and");
  // Deep access: (cat (word (pos x)))
  const Sexpr& cat = s[1][1][1];
  EXPECT_EQ(cat[0].atom, "cat");
  EXPECT_EQ(cat[1][0].atom, "word");
  EXPECT_EQ(cat[1][1][0].atom, "pos");
  EXPECT_EQ(cat[1][1][1].atom, "x");
}

TEST(Sexpr, CommentsIgnored) {
  auto all = parse_sexprs("; header comment\n(a b) ; trailing\n(c)\n");
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].size(), 2u);
  EXPECT_EQ(all[1].size(), 1u);
}

TEST(Sexpr, RoundTripsToString) {
  const std::string text = "(if (and (eq (lab x) SUBJ) (eq (lab y) ROOT)) "
                           "(and (eq (mod x) (pos y)) (lt (pos x) (pos y))))";
  EXPECT_EQ(parse_sexpr(text).to_string(), text);
}

TEST(Sexpr, ErrorsCarryPositions) {
  try {
    parse_sexpr("(a (b c)");
    FAIL() << "expected SexprError";
  } catch (const SexprError& e) {
    EXPECT_EQ(e.line, 1);
    EXPECT_EQ(e.col, 1);
  }
  EXPECT_THROW(parse_sexpr(")"), SexprError);
  EXPECT_THROW(parse_sexpr(""), SexprError);
  EXPECT_THROW(parse_sexpr("(a) (b)"), SexprError);  // trailing form
}

TEST(Sexpr, EmptyListAllowed) {
  Sexpr s = parse_sexpr("()");
  EXPECT_TRUE(s.is_list());
  EXPECT_EQ(s.size(), 0u);
}

TEST(Sexpr, TracksLineNumbers) {
  Sexpr s = parse_sexpr("\n\n  (a\n     b)");
  EXPECT_EQ(s.line, 3);
  EXPECT_EQ(s[1].line, 4);
}

}  // namespace
