#include "util/bitmatrix.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace {

using parsec::util::BitMatrix;
using parsec::util::DynBitset;

TEST(BitMatrix, ConstructAllOnes) {
  BitMatrix m(9, 9, true);
  EXPECT_EQ(m.count(), 81u);
  EXPECT_TRUE(m.test(0, 0));
  EXPECT_TRUE(m.test(8, 8));
}

TEST(BitMatrix, SetResetRoundtrip) {
  BitMatrix m(70, 130);
  m.set(0, 0);
  m.set(69, 129);
  m.set(13, 64);
  EXPECT_TRUE(m.test(0, 0));
  EXPECT_TRUE(m.test(69, 129));
  EXPECT_TRUE(m.test(13, 64));
  EXPECT_EQ(m.count(), 3u);
  m.reset(13, 64);
  EXPECT_FALSE(m.test(13, 64));
}

TEST(BitMatrix, ZeroRow) {
  BitMatrix m(4, 100, true);
  m.zero_row(2);
  for (std::size_t c = 0; c < 100; ++c) EXPECT_FALSE(m.test(2, c));
  EXPECT_EQ(m.count(), 300u);
  EXPECT_FALSE(m.row_any(2));
  EXPECT_TRUE(m.row_any(1));
}

TEST(BitMatrix, ZeroCol) {
  BitMatrix m(10, 70, true);
  m.zero_col(64);
  for (std::size_t r = 0; r < 10; ++r) EXPECT_FALSE(m.test(r, 64));
  EXPECT_EQ(m.count(), 10u * 69u);
  EXPECT_FALSE(m.col_any(64));
  EXPECT_TRUE(m.col_any(63));
}

TEST(BitMatrix, RowColAnyOnEmpty) {
  BitMatrix m(5, 5);
  EXPECT_FALSE(m.row_any(0));
  EXPECT_FALSE(m.col_any(4));
  m.set(3, 2);
  EXPECT_TRUE(m.row_any(3));
  EXPECT_TRUE(m.col_any(2));
  EXPECT_FALSE(m.row_any(2));
  EXPECT_FALSE(m.col_any(3));
}

TEST(BitMatrix, RowIntersects) {
  BitMatrix m(3, 128);
  m.set(1, 100);
  DynBitset mask(128);
  EXPECT_FALSE(m.row_intersects(1, mask));
  mask.set(100);
  EXPECT_TRUE(m.row_intersects(1, mask));
  EXPECT_FALSE(m.row_intersects(0, mask));
}

TEST(BitMatrix, ColIntersects) {
  BitMatrix m(90, 4);
  m.set(88, 2);
  DynBitset mask(90);
  EXPECT_FALSE(m.col_intersects(2, mask));
  mask.set(88);
  EXPECT_TRUE(m.col_intersects(2, mask));
  EXPECT_FALSE(m.col_intersects(1, mask));
}

TEST(BitMatrix, AllOnesTailTrimmed) {
  // Non-multiple-of-64 columns: tail bits must not pollute count.
  BitMatrix m(3, 65, true);
  EXPECT_EQ(m.count(), 3u * 65u);
  m.zero_row(0);
  m.zero_row(1);
  m.zero_row(2);
  EXPECT_EQ(m.count(), 0u);
}

TEST(BitMatrix, RandomizedAgainstReference) {
  parsec::util::Rng rng(7);
  const std::size_t R = 37, C = 81;
  BitMatrix m(R, C);
  std::vector<std::vector<bool>> ref(R, std::vector<bool>(C, false));
  for (int step = 0; step < 4000; ++step) {
    std::size_t r = rng.next_below(R), c = rng.next_below(C);
    switch (rng.next_below(4)) {
      case 0:
        m.set(r, c);
        ref[r][c] = true;
        break;
      case 1:
        m.reset(r, c);
        ref[r][c] = false;
        break;
      case 2:
        m.zero_row(r);
        for (std::size_t j = 0; j < C; ++j) ref[r][j] = false;
        break;
      case 3:
        m.zero_col(c);
        for (std::size_t i = 0; i < R; ++i) ref[i][c] = false;
        break;
    }
  }
  std::size_t want = 0;
  for (std::size_t r = 0; r < R; ++r)
    for (std::size_t c = 0; c < C; ++c) {
      EXPECT_EQ(m.test(r, c), ref[r][c]) << r << "," << c;
      want += ref[r][c];
    }
  EXPECT_EQ(m.count(), want);
}

}  // namespace
