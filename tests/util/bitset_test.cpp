#include "util/bitset.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace {

using parsec::util::DynBitset;

TEST(DynBitset, StartsEmpty) {
  DynBitset b(130);
  EXPECT_EQ(b.size(), 130u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  EXPECT_FALSE(b.any());
}

TEST(DynBitset, SetResetTest) {
  DynBitset b(100);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(99);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(99));
  EXPECT_FALSE(b.test(1));
  EXPECT_EQ(b.count(), 4u);
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  EXPECT_EQ(b.count(), 3u);
}

TEST(DynBitset, SetAllRespectsSize) {
  // The tail bits beyond size() must not leak into count().
  for (std::size_t n : {1u, 63u, 64u, 65u, 127u, 128u, 129u}) {
    DynBitset b(n, true);
    EXPECT_EQ(b.count(), n) << n;
    b.reset_all();
    EXPECT_EQ(b.count(), 0u);
    b.set_all();
    EXPECT_EQ(b.count(), n) << n;
  }
}

TEST(DynBitset, FindFirstAndNext) {
  DynBitset b(200);
  EXPECT_EQ(b.find_first(), 200u);
  b.set(5);
  b.set(77);
  b.set(199);
  EXPECT_EQ(b.find_first(), 5u);
  EXPECT_EQ(b.find_next_from(6), 77u);
  EXPECT_EQ(b.find_next_from(77), 77u);
  EXPECT_EQ(b.find_next_from(78), 199u);
  EXPECT_EQ(b.find_next_from(200), 200u);
}

TEST(DynBitset, ForEachVisitsAscending) {
  DynBitset b(150);
  std::vector<std::size_t> want = {0, 1, 63, 64, 65, 100, 149};
  for (auto i : want) b.set(i);
  std::vector<std::size_t> got;
  b.for_each([&](std::size_t i) { got.push_back(i); });
  EXPECT_EQ(got, want);
}

TEST(DynBitset, AndOrIntersects) {
  DynBitset a(80), b(80);
  a.set(3);
  a.set(70);
  b.set(70);
  b.set(10);
  EXPECT_TRUE(a.intersects(b));
  DynBitset c = a;
  c &= b;
  EXPECT_EQ(c.count(), 1u);
  EXPECT_TRUE(c.test(70));
  DynBitset d = a;
  d |= b;
  EXPECT_EQ(d.count(), 3u);
  b.reset(70);
  EXPECT_FALSE(a.intersects(b));
}

TEST(DynBitset, EqualityAndCopy) {
  DynBitset a(66), b(66);
  EXPECT_EQ(a, b);
  a.set(65);
  EXPECT_FALSE(a == b);
  b.set(65);
  EXPECT_EQ(a, b);
}

TEST(DynBitset, RandomizedAgainstReference) {
  parsec::util::Rng rng(42);
  const std::size_t n = 257;
  DynBitset b(n);
  std::vector<bool> ref(n, false);
  for (int step = 0; step < 2000; ++step) {
    std::size_t i = rng.next_below(n);
    if (rng.next_bool()) {
      b.set(i);
      ref[i] = true;
    } else {
      b.reset(i);
      ref[i] = false;
    }
  }
  std::size_t want_count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(b.test(i), ref[i]) << i;
    want_count += ref[i];
  }
  EXPECT_EQ(b.count(), want_count);
}

}  // namespace
