#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/stats.h"

namespace {

using parsec::util::Rng;
using parsec::util::Stats;

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    auto va = a.next_u64();
    EXPECT_EQ(va, b.next_u64());
    (void)c;
  }
  Rng d(124);
  EXPECT_NE(Rng(123).next_u64(), d.next_u64());
}

TEST(Rng, NextBelowInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(7), 7u);
    auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(5);
  std::vector<int> hits(5, 0);
  for (int i = 0; i < 5000; ++i) ++hits[rng.next_below(5)];
  for (int h : hits) EXPECT_GT(h, 700);  // roughly uniform
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(77);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Stats, MeanMinMax) {
  Stats s;
  for (double x : {2.0, 4.0, 6.0}) s.add(x);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 6.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
}

TEST(Stats, EmptyIsSafe) {
  Stats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Stats, SingleSampleHasZeroVariance) {
  Stats s;
  s.add(5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.mean(), 5.0);
}

}  // namespace
