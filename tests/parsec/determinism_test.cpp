// Simulator determinism and SIMD obliviousness properties.
//
// A SIMD machine broadcasts the same instruction stream regardless of
// the data in the PEs: for a fixed sentence length and grammar, the
// MasPar kernel's machine activity (before data-dependent filtering)
// must be *identical* for different word content.  And the whole
// simulation stack must be bit-deterministic run to run.
#include <gtest/gtest.h>

#include <set>

#include <memory>

#include "cdg/parser.h"
#include "grammars/toy_grammar.h"
#include "maspar/cost_model.h"
#include "parsec/maspar_parser.h"
#include "parsec/pram_parser.h"
#include "pram/machine.h"

namespace {

using namespace parsec;

TEST(SimdObliviousness, ConstraintPhaseStatsIndependentOfWords) {
  auto bundle = grammars::make_toy_grammar();
  engine::MasparParser parser(bundle.grammar);
  // Same length, different content (one grammatical, one not).
  const char* texts[] = {"The program runs", "runs runs runs",
                         "dog A crashes"};
  std::vector<maspar::MachineStats> stats;
  for (const char* text : texts) {
    engine::MasparParse p(bundle.grammar, bundle.tag(text));
    for (const auto& c : parser.compiled_unary()) p.apply_unary(c);
    for (const auto& c : parser.compiled_binary()) p.apply_binary(c);
    stats.push_back(p.machine().stats());
  }
  for (std::size_t i = 1; i < stats.size(); ++i) {
    EXPECT_EQ(stats[i].plural_ops, stats[0].plural_ops) << i;
    EXPECT_EQ(stats[i].scan_ops, stats[0].scan_ops) << i;
    EXPECT_EQ(stats[i].route_ops, stats[0].route_ops) << i;
    EXPECT_EQ(stats[i].acu_ops, stats[0].acu_ops) << i;
  }
}

TEST(SimdObliviousness, OneConsistencyIterationHasFixedCost) {
  auto bundle = grammars::make_toy_grammar();
  const char* texts[] = {"The program runs", "A dog halts"};
  std::vector<std::uint64_t> scan_deltas;
  for (const char* text : texts) {
    engine::MasparParse p(bundle.grammar, bundle.tag(text));
    const auto before = p.machine().stats();
    p.consistency_iteration();
    const auto after = p.machine().stats();
    scan_deltas.push_back(after.scan_ops - before.scan_ops);
    EXPECT_EQ(after.route_ops - before.route_ops, 3u) << text;  // l gathers
  }
  EXPECT_EQ(scan_deltas[0], scan_deltas[1]);
  EXPECT_EQ(scan_deltas[0], 2u * 3u + 1u);  // 2 scans per label + change OR
}

TEST(Determinism, MasparRunTwiceIsBitIdentical) {
  auto bundle = grammars::make_toy_grammar();
  engine::MasparOptions opt;
  opt.filter_iterations = -1;
  engine::MasparParser parser(bundle.grammar, opt);
  std::unique_ptr<engine::MasparParse> p1, p2;
  auto r1 = parser.parse(bundle.tag("The program runs"), p1);
  auto r2 = parser.parse(bundle.tag("The program runs"), p2);
  EXPECT_EQ(r1.accepted, r2.accepted);
  EXPECT_EQ(r1.stats.plural_ops, r2.stats.plural_ops);
  EXPECT_EQ(r1.stats.scan_ops, r2.stats.scan_ops);
  EXPECT_EQ(r1.simulated_seconds, r2.simulated_seconds);
  const auto d1 = p1->domains(), d2 = p2->domains();
  ASSERT_EQ(d1.size(), d2.size());
  for (std::size_t i = 0; i < d1.size(); ++i) EXPECT_EQ(d1[i], d2[i]);
}

TEST(Determinism, PramArbitraryWritesSeeded) {
  // Arbitrary CRCW picks "a random processor"; with a fixed seed the
  // simulation is reproducible.
  auto run = [](std::uint64_t seed) {
    pram::Machine m(pram::WriteMode::Arbitrary, seed);
    std::vector<int> cells(1, -1);
    m.concurrent_write<int>(
        cells, 32, [](std::size_t) { return std::size_t{0}; },
        [](std::size_t i) { return static_cast<int>(i); });
    return cells[0];
  };
  EXPECT_EQ(run(5), run(5));
  // Different seeds *may* differ; over several seeds at least two
  // outcomes appear (sanity that randomness is live).
  std::set<int> outcomes;
  for (std::uint64_t s = 1; s <= 8; ++s) outcomes.insert(run(s));
  EXPECT_GT(outcomes.size(), 1u);
}

TEST(CostModel, ZeroStatsZeroSeconds) {
  maspar::MachineStats empty;
  EXPECT_EQ(maspar::CostModel::mp1().seconds(empty, 1024, 16384), 0.0);
}

TEST(CostModel, MonotoneInEveryCounter) {
  const auto cm = maspar::CostModel::mp1();
  maspar::MachineStats base;
  base.plural_ops = 100;
  base.scan_ops = 10;
  base.route_ops = 5;
  base.acu_ops = 7;
  const double t0 = cm.seconds(base, 10000, 16384);
  auto bump = [&](auto field) {
    maspar::MachineStats s = base;
    field(s);
    return cm.seconds(s, 10000, 16384);
  };
  EXPECT_GT(bump([](auto& s) { ++s.plural_ops; }), t0);
  EXPECT_GT(bump([](auto& s) { ++s.scan_ops; }), t0);
  EXPECT_GT(bump([](auto& s) { ++s.route_ops; }), t0);
  EXPECT_GT(bump([](auto& s) { ++s.acu_ops; }), t0);
  // More virtual PEs on the same hardware never makes it faster.
  EXPECT_GE(cm.seconds(base, 40000, 16384), t0);
}

}  // namespace
