// Cross-tier and cross-kernel identity for the runtime-dispatched SIMD
// sweep layer (cdg/simd.h): every ISA tier (scalar / AVX2 / AVX-512,
// clamped to what the host supports), every tile size, the per-pair VM
// path and the SoA batch parser must all reach the same fixpoint bit
// for bit — the dispatch tier and the batching are pure throughput
// knobs.  This is the test-side half of the CI forced-scalar leg and
// the bench ISA ablation.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cdg/batch.h"
#include "cdg/kernels.h"
#include "cdg/simd.h"
#include "grammars/english_grammar.h"
#include "grammars/sentence_gen.h"
#include "grammars/toy_grammar.h"
#include "parsec/backend.h"
#include "util/rng.h"

namespace {

using namespace parsec;
using cdg::simd::IsaTier;
using cdg::simd::ScopedTier;

std::vector<std::string> random_words(util::Rng& rng, int n) {
  static const std::vector<std::string> pool{
      "The", "a", "program", "dog", "compiler", "runs", "halts", "crashes"};
  std::vector<std::string> words;
  for (int i = 0; i < n; ++i) words.push_back(rng.pick(pool));
  return words;
}

struct Case {
  bool toy = false;
  cdg::Sentence s;
};

// The 60-sentence fuzz corpus: 30 random toy word strings (grammatical
// or not) + 30 generated English sentences, lengths 3..11.
std::vector<Case> fuzz_corpus(const grammars::CdgBundle& toy,
                              const grammars::CdgBundle& english) {
  std::vector<Case> corpus;
  util::Rng rng(20260807);
  for (int i = 0; i < 30; ++i) {
    const int n = 1 + static_cast<int>(rng.next_below(7));
    corpus.push_back({true, toy.lexicon.tag(random_words(rng, n))});
  }
  grammars::SentenceGenerator gen(english, 31337);
  for (int i = 0; i < 30; ++i)
    corpus.push_back({false, gen.generate_sentence(3 + i % 9)});
  return corpus;
}

// Restores the process-wide sweep tiling on scope exit.
struct TilingGuard {
  cdg::kernels::SweepTiling saved = cdg::kernels::sweep_tiling();
  ~TilingGuard() { cdg::kernels::set_sweep_tiling(saved); }
};

// Every dispatch tier must produce the reference fixpoint AND the
// reference cost-counter totals on every backend: the per-word sweep
// algebra has no cross-word reduction, so counters are bit-determined
// too (this is what lets the perf gate pin them machine-independently).
TEST(SimdDispatch, AllTiersAllBackendsBitIdenticalOnFuzzCorpus) {
  auto toy = grammars::make_toy_grammar();
  auto english = grammars::make_english_grammar();
  const auto corpus = fuzz_corpus(toy, english);
  engine::EngineSet toy_engines(toy.grammar);
  engine::EngineSet eng_engines(english.grammar);
  engine::NetworkScratch scratch;

  // References at the default (widest) tier.
  struct Ref {
    std::uint64_t hash;
    bool accepted;
    std::size_t alive;
    std::uint64_t binary_evals;
    std::uint64_t lane_words;
  };
  std::vector<Ref> refs;
  for (const Case& c : corpus) {
    const engine::BackendRun r = engine::run_backend(
        c.toy ? toy_engines : eng_engines, engine::Backend::Serial, c.s,
        &scratch);
    refs.push_back({r.domains_hash, r.accepted, r.alive_role_values,
                    r.stats.network.effective_binary_evals(),
                    r.stats.network.simd_lane_words});
  }

  for (IsaTier tier : {IsaTier::Scalar, IsaTier::Avx2, IsaTier::Avx512}) {
    ScopedTier forced(tier);
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      const Case& c = corpus[i];
      for (auto b : engine::kAllBackends) {
        const engine::BackendRun run = engine::run_backend(
            c.toy ? toy_engines : eng_engines, b, c.s, &scratch);
        EXPECT_EQ(run.domains_hash, refs[i].hash)
            << "sentence " << i << " tier "
            << cdg::simd::tier_name(tier) << " backend "
            << engine::to_string(b);
        EXPECT_EQ(run.accepted, refs[i].accepted) << "sentence " << i;
        EXPECT_EQ(run.alive_role_values, refs[i].alive) << "sentence " << i;
        if (b == engine::Backend::Serial) {
          EXPECT_EQ(run.stats.network.effective_binary_evals(),
                    refs[i].binary_evals)
              << "sentence " << i << " tier " << cdg::simd::tier_name(tier);
          EXPECT_EQ(run.stats.network.simd_lane_words, refs[i].lane_words)
              << "sentence " << i << " tier " << cdg::simd::tier_name(tier);
        }
      }
    }
  }
}

// Forcing a tier above the CPU's ceiling clamps down; forcing scalar
// always takes effect (the CI forced-scalar leg relies on it).
TEST(SimdDispatch, ForcedTierClampsAndScalarAlwaysWins) {
  {
    ScopedTier forced(IsaTier::Scalar);
    EXPECT_EQ(cdg::simd::active_tier(), IsaTier::Scalar);
  }
  {
    ScopedTier forced(IsaTier::Avx512);
    EXPECT_LE(static_cast<int>(cdg::simd::active_tier()),
              static_cast<int>(cdg::simd::detected_tier()));
  }
  EXPECT_LE(static_cast<int>(cdg::simd::active_tier()),
            static_cast<int>(cdg::simd::detected_tier()));
}

// The tile size (rows staged per vector phase) must not change the
// fixpoint: residual verdicts depend only on (sentence, i, j), never on
// which tile surfaced the pair.  lane-word totals are tile-independent
// too; tile_sweeps itself scales with the tile size, so it is only
// pinned under the default tiling.
TEST(SimdDispatch, TileSizeDoesNotChangeFixpointOrLaneWords) {
  auto english = grammars::make_english_grammar();
  grammars::SentenceGenerator gen(english, 777);
  engine::EngineSet engines(english.grammar);
  engine::NetworkScratch scratch;
  std::vector<cdg::Sentence> ws;
  for (int n : {3, 5, 8, 11}) ws.push_back(gen.generate_sentence(n));

  TilingGuard guard;
  std::vector<std::uint64_t> ref_hash, ref_lane_words;
  for (std::size_t rows : {std::size_t{1}, std::size_t{2}, std::size_t{7},
                           std::size_t{64}}) {
    cdg::kernels::set_sweep_tiling({rows});
    for (std::size_t i = 0; i < ws.size(); ++i) {
      const engine::BackendRun run = engine::run_backend(
          engines, engine::Backend::Serial, ws[i], &scratch);
      if (ref_hash.size() <= i) {
        ref_hash.push_back(run.domains_hash);
        ref_lane_words.push_back(run.stats.network.simd_lane_words);
      } else {
        EXPECT_EQ(run.domains_hash, ref_hash[i])
            << "rows=" << rows << " sentence " << i;
        EXPECT_EQ(run.stats.network.simd_lane_words, ref_lane_words[i])
            << "rows=" << rows << " sentence " << i;
      }
    }
  }
}

// set_sweep_tiling clamps out-of-range requests instead of letting a
// zero-row tile wedge the sweep loop.
TEST(SimdDispatch, SweepTilingClampsToValidRange) {
  TilingGuard guard;
  cdg::kernels::set_sweep_tiling({0});
  EXPECT_EQ(cdg::kernels::sweep_tiling().rows, 1u);
  cdg::kernels::set_sweep_tiling({100000});
  EXPECT_EQ(cdg::kernels::sweep_tiling().rows, cdg::kernels::kMaxSweepTileRows);
}

// SoA batch parsing: every lane of every batch shape (full, partial,
// singleton) must hash identically to a sequential Serial parse of the
// same sentence — on every dispatch tier.
TEST(SimdBatch, BatchLanesBitIdenticalToSequentialOnEveryTier) {
  auto english = grammars::make_english_grammar();
  grammars::SentenceGenerator gen(english, 20260807);
  engine::EngineSet engines(english.grammar);
  engine::NetworkScratch scratch;

  for (IsaTier tier : {IsaTier::Scalar, IsaTier::Avx2, IsaTier::Avx512}) {
    ScopedTier forced(tier);
    cdg::BatchParser parser(english.grammar);
    for (std::size_t batch_size : {std::size_t{1}, std::size_t{3},
                                   std::size_t{8}}) {
      for (int n : {4, 6, 9}) {
        std::vector<cdg::Sentence> batch;
        for (std::size_t b = 0; b < batch_size; ++b)
          batch.push_back(gen.generate_sentence(n));
        const auto runs = engine::run_backend_batch(parser, batch,
                                                    /*capture_domains=*/true);
        ASSERT_EQ(runs.size(), batch.size());
        for (std::size_t b = 0; b < batch.size(); ++b) {
          const engine::BackendRun ref = engine::run_backend(
              engines, engine::Backend::Serial, batch[b], &scratch);
          EXPECT_EQ(runs[b].domains_hash, ref.domains_hash)
              << "tier " << cdg::simd::tier_name(tier) << " batch "
              << batch_size << " n=" << n << " lane " << b;
          EXPECT_EQ(runs[b].accepted, ref.accepted) << "lane " << b;
          EXPECT_EQ(runs[b].alive_role_values, ref.alive_role_values)
              << "lane " << b;
          // Captured domains are the hashed bits themselves.
          EXPECT_EQ(engine::hash_domains(runs[b].domains), ref.domains_hash)
              << "lane " << b;
        }
      }
    }
  }
}

// Duplicate sentences across lanes must converge to identical lanes
// (the batch sweep treats each lane independently even in lockstep),
// and a toy-grammar batch with accept/reject mixtures splits statuses
// correctly.
TEST(SimdBatch, MixedAcceptRejectLanesSplitCorrectly) {
  auto toy = grammars::make_toy_grammar();
  engine::EngineSet engines(toy.grammar);
  cdg::BatchParser parser(toy.grammar);
  std::vector<cdg::Sentence> batch;
  for (int i = 0; i < 6; ++i)
    batch.push_back(
        toy.tag(i % 2 == 0 ? "The program runs" : "program The runs"));
  const auto runs = engine::run_backend_batch(parser, batch);
  ASSERT_EQ(runs.size(), 6u);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(runs[static_cast<std::size_t>(i)].accepted, i % 2 == 0) << i;
    const engine::BackendRun ref = engine::run_backend(
        engines, engine::Backend::Serial, batch[static_cast<std::size_t>(i)]);
    EXPECT_EQ(runs[static_cast<std::size_t>(i)].domains_hash,
              ref.domains_hash)
        << i;
  }
  // Equal inputs, equal lanes.
  EXPECT_EQ(runs[0].domains_hash, runs[2].domains_hash);
  EXPECT_EQ(runs[1].domains_hash, runs[3].domains_hash);
}

// The batch parser is reusable across shapes: a different length
// reshapes the interleaved buffers without disturbing correctness.
TEST(SimdBatch, ReusableAcrossShapes) {
  auto english = grammars::make_english_grammar();
  grammars::SentenceGenerator gen(english, 99);
  engine::EngineSet engines(english.grammar);
  cdg::BatchParser parser(english.grammar);
  for (int round = 0; round < 2; ++round) {
    for (int n : {7, 4, 10, 4}) {
      std::vector<cdg::Sentence> batch;
      for (int b = 0; b < 5; ++b) batch.push_back(gen.generate_sentence(n));
      const auto runs = engine::run_backend_batch(parser, batch);
      for (std::size_t b = 0; b < batch.size(); ++b)
        EXPECT_EQ(runs[b].domains_hash,
                  engine::run_backend(engines, engine::Backend::Serial,
                                      batch[b])
                      .domains_hash)
            << "round " << round << " n=" << n << " lane " << b;
    }
  }
}

}  // namespace
