// Engine equivalence on the full English grammar: exercises l = 7
// label slots, category-refined table T and a larger constraint set on
// the MasPar kernel.
#include <gtest/gtest.h>

#include <memory>

#include "cdg/parser.h"
#include "grammars/english_grammar.h"
#include "grammars/sentence_gen.h"
#include "parsec/maspar_parser.h"
#include "parsec/omp_parser.h"
#include "parsec/pram_parser.h"

namespace {

using namespace parsec;

class EnglishEngines : public ::testing::Test {
 protected:
  EnglishEngines()
      : bundle_(grammars::make_english_grammar()), seq_(bundle_.grammar) {}

  void expect_all_engines_match(const cdg::Sentence& s,
                                const std::string& label) {
    cdg::Network ref = seq_.make_network(s);
    const bool accepted = seq_.parse(ref).accepted;
    ref.filter();

    engine::PramParser pram(bundle_.grammar);
    cdg::Network net_p = seq_.make_network(s);
    EXPECT_EQ(pram.parse(net_p).accepted, accepted) << label;
    for (int r = 0; r < ref.num_roles(); ++r)
      EXPECT_EQ(net_p.domain(r), ref.domain(r)) << label << " role " << r;

    engine::OmpParser omp(bundle_.grammar);
    cdg::Network net_o = seq_.make_network(s);
    EXPECT_EQ(omp.parse(net_o).accepted, accepted) << label;
    for (int r = 0; r < ref.num_roles(); ++r)
      EXPECT_EQ(net_o.domain(r), ref.domain(r)) << label << " role " << r;

    engine::MasparOptions opt;
    opt.filter_iterations = -1;
    engine::MasparParser mp(bundle_.grammar, opt);
    std::unique_ptr<engine::MasparParse> parse;
    EXPECT_EQ(mp.parse(s, parse).accepted, accepted) << label;
    const auto domains = parse->domains();
    for (int r = 0; r < ref.num_roles(); ++r)
      EXPECT_EQ(domains[r], ref.domain(r)) << label << " role " << r;
  }

  grammars::CdgBundle bundle_;
  cdg::SequentialParser seq_;
};

TEST_F(EnglishEngines, HandPickedSentences) {
  for (const char* text :
       {"the dog runs", "it runs", "the big dog chases the small cat",
        "the dog runs in the park", "dog the runs", "the dog the cat runs"}) {
    expect_all_engines_match(bundle_.tag(text), text);
  }
}

TEST_F(EnglishEngines, GeneratedSentences) {
  grammars::SentenceGenerator gen(bundle_, 31);
  for (int n : {4, 6, 8}) {
    cdg::Sentence s = gen.generate_sentence(n);
    expect_all_engines_match(s, "generated n=" + std::to_string(n));
  }
}

TEST_F(EnglishEngines, MasparHandlesEightLabelSlots) {
  engine::MasparParser mp(bundle_.grammar);
  std::unique_ptr<engine::MasparParse> parse;
  auto r = mp.parse(bundle_.tag("the dog runs in the park"), parse);
  EXPECT_TRUE(r.accepted);
  EXPECT_EQ(parse->layout().labels_per_role(), 8);
  // 6 words, q=2: V = 4 * 6^4 = 5184 virtual PEs, factor 1 on 16K.
  EXPECT_EQ(r.vpes, 5184);
  EXPECT_EQ(r.virt_factor, 1);
}

}  // namespace
