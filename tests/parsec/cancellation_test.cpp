// Engine-wide cooperative cancellation: every backend polls the
// CancelFn at its checkpoints and aborts promptly, and a cancel that
// never fires leaves results bit-identical to no cancel at all.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "grammars/english_grammar.h"
#include "grammars/sentence_gen.h"
#include "grammars/toy_grammar.h"
#include "parsec/backend.h"

namespace {

using namespace parsec;

TEST(EngineCancellation, PreFiredCancelAbortsEveryBackend) {
  auto bundle = grammars::make_toy_grammar();
  engine::EngineSet engines(bundle.grammar);
  const cdg::Sentence s = bundle.tag("The program runs");
  for (engine::Backend b : engine::kAllBackends) {
    SCOPED_TRACE(engine::to_string(b));
    const engine::BackendRun run = engine::run_backend(
        engines, b, s, nullptr, [] { return true; });
    EXPECT_TRUE(run.cancelled);
    EXPECT_FALSE(run.accepted);
    EXPECT_EQ(run.stats.cancelled, 1u);
    EXPECT_EQ(run.stats.accepted, 0u);
  }
}

TEST(EngineCancellation, MidParseCancelAbortsEveryBackend) {
  // A longer english sentence gives every backend plenty of
  // checkpoints; cancel after the first few polls and the engine must
  // stop at the next one — well before the fixpoint.
  auto bundle = grammars::make_english_grammar();
  grammars::SentenceGenerator gen(bundle, 11);
  const cdg::Sentence s = gen.generate_sentence(8);
  engine::EngineSet engines(bundle.grammar);
  for (engine::Backend b : engine::kAllBackends) {
    SCOPED_TRACE(engine::to_string(b));
    auto polls = std::make_shared<std::atomic<int>>(0);
    const engine::BackendRun run = engine::run_backend(
        engines, b, s, nullptr,
        [polls] { return polls->fetch_add(1) >= 3; });
    EXPECT_TRUE(run.cancelled);
    EXPECT_FALSE(run.accepted);
    // The engine stopped at the first firing checkpoint: it polled at
    // most a handful of times past the trigger, not once per
    // constraint application to the fixpoint.
    EXPECT_LE(polls->load(), 10);
  }
}

TEST(EngineCancellation, NeverFiringCancelIsBitIdenticalToNone) {
  auto bundle = grammars::make_toy_grammar();
  engine::EngineSet engines(bundle.grammar);
  const cdg::Sentence s = bundle.tag("The program runs");
  for (engine::Backend b : engine::kAllBackends) {
    SCOPED_TRACE(engine::to_string(b));
    const engine::BackendRun plain =
        engine::run_backend(engines, b, s, nullptr, {}, true);
    const engine::BackendRun watched = engine::run_backend(
        engines, b, s, nullptr, [] { return false; }, true);
    EXPECT_FALSE(watched.cancelled);
    EXPECT_EQ(watched.accepted, plain.accepted);
    EXPECT_EQ(watched.domains_hash, plain.domains_hash);
    EXPECT_EQ(watched.domains, plain.domains);
  }
}

}  // namespace
