// CRCW P-RAM engine: complexity-claim measurements (paper §2.1).
#include "parsec/pram_parser.h"

#include <gtest/gtest.h>

#include "cdg/parser.h"
#include "grammars/toy_grammar.h"

namespace {

using namespace parsec;

class PramParserTest : public ::testing::Test {
 protected:
  PramParserTest() : bundle_(grammars::make_toy_grammar()) {}

  cdg::Sentence repeat_sentence(int n) const {
    std::vector<std::string> words;
    for (int i = 0; i < n; ++i)
      words.push_back(i % 3 == 0 ? "The" : (i % 3 == 1 ? "dog" : "runs"));
    return bundle_.lexicon.tag(words);
  }

  grammars::CdgBundle bundle_;
};

TEST_F(PramParserTest, AcceptsWorkedExample) {
  engine::PramParser p(bundle_.grammar);
  cdg::SequentialParser seq(bundle_.grammar);
  cdg::Network net = seq.make_network(bundle_.tag("The program runs"));
  auto r = p.parse(net);
  EXPECT_TRUE(r.accepted);
  EXPECT_GT(r.stats.time_steps, 0u);
}

TEST_F(PramParserTest, ProcessorsScaleAsNto4) {
  // O(n^4) processors: the peak parallel width is the number of arc
  // elements, Theta(q^2 n^4 p^2) with grammatical constants fixed.
  engine::PramParser p(bundle_.grammar);
  cdg::SequentialParser seq(bundle_.grammar);
  std::vector<double> peaks;
  std::vector<int> sizes{4, 8, 16};
  for (int n : sizes) {
    cdg::Network net = seq.make_network(repeat_sentence(n));
    auto r = p.parse(net);
    peaks.push_back(static_cast<double>(r.stats.max_processors));
  }
  // Doubling n should multiply the peak width by ~2^4 = 16 (within a
  // factor of 2: alive-set sizes vary with propagation).
  const double g1 = peaks[1] / peaks[0];
  const double g2 = peaks[2] / peaks[1];
  EXPECT_GT(g1, 8.0);
  EXPECT_LT(g1, 32.0);
  EXPECT_GT(g2, 8.0);
  EXPECT_LT(g2, 32.0);
}

TEST_F(PramParserTest, TimeStepsIndependentOfSentenceLength) {
  // O(k) time: steps depend on the constraint count and the filtering
  // iterations, not on n.
  engine::PramParser p(bundle_.grammar);
  cdg::SequentialParser seq(bundle_.grammar);
  std::vector<std::uint64_t> steps;
  for (int n : {3, 6, 9, 12}) {
    cdg::Network net = seq.make_network(repeat_sentence(n));
    auto r = p.parse(net);
    // Normalize by consistency iterations (the data-dependent part).
    steps.push_back(r.stats.time_steps -
                    3 * static_cast<std::uint64_t>(r.consistency_iterations));
  }
  for (std::size_t i = 1; i < steps.size(); ++i)
    EXPECT_EQ(steps[i], steps[0]) << "n index " << i;
}

TEST_F(PramParserTest, MatchesSequentialOnPool) {
  engine::PramParser p(bundle_.grammar);
  cdg::SequentialParser seq(bundle_.grammar);
  for (int n : {1, 2, 3, 5, 8}) {
    cdg::Network a = seq.make_network(repeat_sentence(n));
    cdg::Network b = seq.make_network(repeat_sentence(n));
    auto ra = p.parse(a);
    seq.parse(b);
    b.filter();
    EXPECT_EQ(ra.accepted, b.all_roles_nonempty()) << n;
    for (int r = 0; r < a.num_roles(); ++r)
      EXPECT_EQ(a.domain(r), b.domain(r)) << n << " role " << r;
  }
}

TEST_F(PramParserTest, BoundedFilteringOption) {
  engine::PramOptions opt;
  opt.filter_iterations = 1;
  engine::PramParser p(bundle_.grammar, opt);
  cdg::SequentialParser seq(bundle_.grammar);
  cdg::Network net = seq.make_network(bundle_.tag("The program runs"));
  auto r = p.parse(net);
  EXPECT_EQ(r.consistency_iterations, 1);
}

}  // namespace
