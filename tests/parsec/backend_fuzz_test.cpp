// Randomized cross-backend fuzz over the unified run_backend entry:
// every backend (serial sweep, serial AC-4, OpenMP, P-RAM, MasPar) must
// produce the identical domains_hash fingerprint for the same sentence,
// and pooled-arena reuse (NetworkScratch) must not change a single bit.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "grammars/english_grammar.h"
#include "grammars/sentence_gen.h"
#include "grammars/toy_grammar.h"
#include "parsec/backend.h"
#include "util/rng.h"

namespace {

using namespace parsec;

std::vector<std::string> random_words(util::Rng& rng, int n) {
  static const std::vector<std::string> pool{
      "The", "a", "program", "dog", "compiler", "runs", "halts", "crashes"};
  std::vector<std::string> words;
  for (int i = 0; i < n; ++i) words.push_back(rng.pick(pool));
  return words;
}

class BackendFuzz : public ::testing::TestWithParam<int> {};

// 5 seeds x 10 sentences = 50 random word strings (grammatical or not).
TEST_P(BackendFuzz, AllBackendsHashIdenticalOnToySentences) {
  auto bundle = grammars::make_toy_grammar();
  engine::EngineSet engines(bundle.grammar);
  engine::EngineSetOptions ac4_opt;
  ac4_opt.serial_ac4 = true;
  engine::EngineSet ac4_engines(bundle.grammar, ac4_opt);
  engine::NetworkScratch scratch;  // shared pool: exercises arena reuse

  util::Rng rng(910 + GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 1 + static_cast<int>(rng.next_below(7));
    cdg::Sentence s = bundle.lexicon.tag(random_words(rng, n));
    std::string label;
    for (const auto& w : s.words) label += w + " ";

    const engine::BackendRun ref =
        engine::run_backend(engines, engine::Backend::Serial, s);
    for (auto b : engine::kAllBackends) {
      engine::BackendRun run = engine::run_backend(engines, b, s, &scratch);
      EXPECT_EQ(run.domains_hash, ref.domains_hash)
          << label << "backend " << engine::to_string(b);
      EXPECT_EQ(run.accepted, ref.accepted)
          << label << "backend " << engine::to_string(b);
      EXPECT_EQ(run.alive_role_values, ref.alive_role_values)
          << label << "backend " << engine::to_string(b);
    }
    // AC-4 filtering reaches the same fixpoint (confluence).
    const engine::BackendRun ac4 = engine::run_backend(
        ac4_engines, engine::Backend::Serial, s, &scratch);
    EXPECT_EQ(ac4.domains_hash, ref.domains_hash) << label << "serial_ac4";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendFuzz, ::testing::Range(0, 5));

TEST(BackendFuzz, EnglishSentencesHashIdenticalAcrossBackends) {
  auto bundle = grammars::make_english_grammar();
  grammars::SentenceGenerator gen(bundle, 20260806);
  engine::EngineSet engines(bundle.grammar);
  engine::NetworkScratch scratch;
  for (int n : {3, 5, 7, 9, 11}) {
    cdg::Sentence s = gen.generate_sentence(n);
    const engine::BackendRun ref =
        engine::run_backend(engines, engine::Backend::Serial, s);
    for (auto b : engine::kAllBackends)
      EXPECT_EQ(engine::run_backend(engines, b, s, &scratch).domains_hash,
                ref.domains_hash)
          << "n=" << n << " backend " << engine::to_string(b);
  }
}

// Pooled arenas: parsing the same sentence through a warm pool must be
// bit-identical to a cold parse, steady state must not reallocate, and
// the reused network must still satisfy every structural invariant.
TEST(BackendFuzz, PooledArenaReuseIsBitIdenticalAndAllocationFree) {
  auto bundle = grammars::make_english_grammar();
  grammars::SentenceGenerator gen(bundle, 424242);
  engine::EngineSet engines(bundle.grammar);
  engine::NetworkScratch scratch;

  std::vector<cdg::Sentence> ws;
  std::vector<std::uint64_t> cold;
  for (int i = 0; i < 8; ++i) {
    ws.push_back(gen.generate_sentence(4 + i % 3));  // repeating lengths
    cold.push_back(
        engine::run_backend(engines, engine::Backend::Serial, ws.back())
            .domains_hash);
  }

  // Warm the pool, then go around it twice more.
  for (int round = 0; round < 3; ++round)
    for (std::size_t i = 0; i < ws.size(); ++i)
      EXPECT_EQ(engine::run_backend(engines, engine::Backend::Serial, ws[i],
                                    &scratch)
                    .domains_hash,
                cold[i])
          << "round " << round << " sentence " << i;

  // 3 distinct lengths -> 3 pooled shapes, one allocation each; every
  // later request reused an arena.
  EXPECT_EQ(scratch.pooled_shapes(), 3u);
  EXPECT_EQ(scratch.arena_allocations(), 3u);
  EXPECT_EQ(scratch.reuses(), 3 * ws.size() - 3);
  EXPECT_EQ(scratch.arena_reinits(), scratch.reuses());
  EXPECT_GT(scratch.arena_bytes(), 0u);

  // The pooled networks end each request at a structurally consistent
  // fixpoint: run one more request and inspect the network directly.
  cdg::NetworkOptions nopt;
  cdg::Network& net = scratch.acquire(bundle.grammar, ws[0], nopt);
  engines.serial().parse(net);
  net.filter();
  EXPECT_TRUE(net.check_invariants());
}

// Masked vs plain evaluation differential over a 60-sentence fuzz
// corpus: the vectorized path (truth masks + residual VM, the default)
// and the per-pair VM path (use_masks = false) must reach bit-identical
// fixpoints on every sentence — the CI perf-smoke gate asserts the same
// property via bench_ablation_masks.
TEST(BackendFuzz, MaskedAndPlainSerialBitIdenticalOnFuzzCorpus) {
  auto toy = grammars::make_toy_grammar();
  auto english = grammars::make_english_grammar();
  engine::EngineSetOptions plain_opt;
  plain_opt.serial.use_masks = false;

  struct Case {
    const grammars::CdgBundle* bundle;
    cdg::Sentence s;
  };
  std::vector<Case> corpus;
  util::Rng rng(20260806);
  for (int i = 0; i < 30; ++i) {
    const int n = 1 + static_cast<int>(rng.next_below(7));
    corpus.push_back({&toy, toy.lexicon.tag(random_words(rng, n))});
  }
  grammars::SentenceGenerator gen(english, 31337);
  for (int i = 0; i < 30; ++i)
    corpus.push_back({&english, gen.generate_sentence(3 + i % 9)});

  engine::EngineSet toy_masked(toy.grammar);
  engine::EngineSet toy_plain(toy.grammar, plain_opt);
  engine::EngineSet eng_masked(english.grammar);
  engine::EngineSet eng_plain(english.grammar, plain_opt);
  engine::NetworkScratch scratch;

  for (std::size_t i = 0; i < corpus.size(); ++i) {
    const bool is_toy = corpus[i].bundle == &toy;
    const engine::BackendRun masked =
        engine::run_backend(is_toy ? toy_masked : eng_masked,
                            engine::Backend::Serial, corpus[i].s, &scratch);
    const engine::BackendRun plain =
        engine::run_backend(is_toy ? toy_plain : eng_plain,
                            engine::Backend::Serial, corpus[i].s, &scratch);
    EXPECT_EQ(masked.domains_hash, plain.domains_hash) << "sentence " << i;
    EXPECT_EQ(masked.accepted, plain.accepted) << "sentence " << i;
    EXPECT_EQ(masked.alive_role_values, plain.alive_role_values)
        << "sentence " << i;
  }
}

// AC-4 leaves its support counters valid at the fixpoint; the invariant
// checker cross-checks them against the arc matrices only in that state.
TEST(BackendFuzz, Ac4CountersMatchMatricesAtFixpoint) {
  auto bundle = grammars::make_toy_grammar();
  cdg::SequentialParser parser(bundle.grammar);
  for (const char* text : {"The program runs", "a dog halts",
                           "The compiler crashes", "dog runs The"}) {
    cdg::Sentence s = bundle.tag(text);
    cdg::Network net = parser.make_network(s);
    parser.run_unary(net);
    parser.run_binary(net);
    cdg::filter_ac4(net);
    EXPECT_TRUE(net.arena().counts_valid()) << text;
    EXPECT_TRUE(net.check_invariants()) << text;
  }
}

}  // namespace
