// Cross-engine property test: every engine (sequential, CRCW P-RAM,
// MasPar, OpenMP host-parallel, and the Fig.-8 topology models) must
// reach the identical constraint-network fixpoint on every sentence.
// Support-removal is confluent, so execution order must not matter.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "cdg/parser.h"
#include "grammars/toy_grammar.h"
#include "parsec/maspar_parser.h"
#include "parsec/mesh_parser.h"
#include "parsec/omp_parser.h"
#include "parsec/pram_parser.h"

namespace {

using namespace parsec;

class EnginesEquivalence : public ::testing::TestWithParam<const char*> {
 protected:
  EnginesEquivalence() : bundle_(grammars::make_toy_grammar()) {}
  grammars::CdgBundle bundle_;
};

TEST_P(EnginesEquivalence, AllEnginesAgreeOnFixpoint) {
  const std::string text = GetParam();
  const cdg::Sentence s = bundle_.tag(text);

  // Reference: sequential parser, full filtering.
  cdg::SequentialParser seq(bundle_.grammar);
  cdg::Network ref = seq.make_network(s);
  const bool ref_accepted = seq.parse(ref).accepted;
  ref.filter();

  // CRCW P-RAM.
  {
    engine::PramParser pram(bundle_.grammar);
    cdg::Network net = seq.make_network(s);
    auto r = pram.parse(net);
    EXPECT_EQ(r.accepted, ref_accepted) << "pram: " << text;
    for (int i = 0; i < ref.num_roles(); ++i)
      EXPECT_EQ(net.domain(i), ref.domain(i)) << "pram role " << i;
  }

  // OpenMP.
  {
    engine::OmpParser omp(bundle_.grammar);
    cdg::Network net = seq.make_network(s);
    auto r = omp.parse(net);
    EXPECT_EQ(r.accepted, ref_accepted) << "omp: " << text;
    for (int i = 0; i < ref.num_roles(); ++i)
      EXPECT_EQ(net.domain(i), ref.domain(i)) << "omp role " << i;
  }

  // Topology models.
  for (auto topo :
       {engine::Topology::CrcwPram, engine::Topology::Mesh2D,
        engine::Topology::TreeHypercube}) {
    engine::TopologyParser tp(bundle_.grammar, topo);
    cdg::Network net = seq.make_network(s);
    auto r = tp.parse(net);
    EXPECT_EQ(r.accepted, ref_accepted)
        << engine::to_string(topo) << ": " << text;
    for (int i = 0; i < ref.num_roles(); ++i)
      EXPECT_EQ(net.domain(i), ref.domain(i))
          << engine::to_string(topo) << " role " << i;
  }

  // MasPar.
  {
    engine::MasparOptions opt;
    opt.filter_iterations = -1;
    engine::MasparParser mp(bundle_.grammar, opt);
    std::unique_ptr<engine::MasparParse> p;
    auto r = mp.parse(s, p);
    EXPECT_EQ(r.accepted, ref_accepted) << "maspar: " << text;
    const auto domains = p->domains();
    for (int i = 0; i < ref.num_roles(); ++i)
      EXPECT_EQ(domains[i], ref.domain(i)) << "maspar role " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SentencePool, EnginesEquivalence,
    ::testing::Values("The program runs", "A dog crashes",
                      "The dog halts", "program runs", "dog crashes",
                      "The runs", "runs", "The program",
                      "program The runs", "The program runs halts",
                      "A A dog runs", "The dog The runs",
                      "dog dog runs", "A compiler crashes runs",
                      "The The The dog runs"));

}  // namespace
