// MasPar-engine tests: Figures 9, 10 and 12 plus network equivalence
// with the sequential parser.
#include "parsec/maspar_parser.h"

#include <gtest/gtest.h>

#include <memory>

#include "cdg/parser.h"
#include "grammars/toy_grammar.h"

namespace {

using namespace parsec;
using cdg::RoleValue;
using engine::MasparOptions;
using engine::MasparParse;
using engine::MasparParser;

class MasparParserTest : public ::testing::Test {
 protected:
  MasparParserTest()
      : bundle_(grammars::make_toy_grammar()),
        sentence_(bundle_.tag("The program runs")) {}

  RoleValue rv(const char* lab, cdg::WordPos mod) const {
    return RoleValue{bundle_.grammar.label(lab), mod};
  }
  int role(int word, const char* name) const {
    return (word - 1) * 2 + bundle_.grammar.role(name);
  }

  grammars::CdgBundle bundle_;
  cdg::Sentence sentence_;
};

// Figure 9: before any constraint, the arc between the governor roles of
// "The" and "program" holds all 9x9 ones (design decision 1: matrices
// exist before unary propagation).
TEST_F(MasparParserTest, Figure9_InitialMatrixAllOnes) {
  MasparParse p(bundle_.grammar, sentence_);
  int ones = 0;
  for (const char* la : {"SUBJ", "ROOT", "DET"})
    for (cdg::WordPos ma : {0, 2, 3})
      for (const char* lb : {"SUBJ", "ROOT", "DET"})
        for (cdg::WordPos mb : {0, 1, 3})
          if (p.arc_entry(role(1, "governor"), rv(la, ma),
                          role(2, "governor"), rv(lb, mb)))
            ++ones;
  EXPECT_EQ(ones, 81);
  // Needs-side labels are absent from governor roles.
  EXPECT_FALSE(p.arc_entry(role(1, "governor"), rv("NP", 2),
                           role(2, "governor"), rv("SUBJ", 3)));
}

// Figures 10 and 12: after unary propagation and the first binary
// constraint, the consistency-maintenance kernel (scanOr per arc,
// scanAnd per role, router for the column side) eliminates SUBJ-1.
TEST_F(MasparParserTest, Figure12_ScanKernelEliminatesSubj1) {
  MasparParser parser(bundle_.grammar);
  MasparParse p(bundle_.grammar, sentence_);
  for (const auto& c : parser.compiled_unary()) p.apply_unary(c);
  EXPECT_TRUE(p.supported(role(2, "governor"), rv("SUBJ", 1)));
  p.apply_binary(parser.compiled_binary()[0]);
  // The matrix bit of Fig. 4 is zeroed...
  EXPECT_FALSE(p.arc_entry(role(2, "governor"), rv("SUBJ", 1),
                           role(3, "governor"), rv("ROOT", cdg::kNil)));
  EXPECT_TRUE(p.arc_entry(role(2, "governor"), rv("SUBJ", 3),
                          role(3, "governor"), rv("ROOT", cdg::kNil)));
  // ...and one scan-based consistency iteration kills SUBJ-1 (Fig. 12).
  const auto scans_before = p.machine().stats().scan_ops;
  const auto routes_before = p.machine().stats().route_ops;
  EXPECT_TRUE(p.consistency_iteration());
  EXPECT_FALSE(p.supported(role(2, "governor"), rv("SUBJ", 1)));
  EXPECT_TRUE(p.supported(role(2, "governor"), rv("SUBJ", 3)));
  // The kernel used the router: 2 scans + 1 gather per label slot,
  // plus the global change-detection scan.
  EXPECT_EQ(p.machine().stats().scan_ops - scans_before, 2u * 3u + 1u);
  EXPECT_EQ(p.machine().stats().route_ops - routes_before, 3u);
}

// End-to-end: the MasPar engine reaches exactly the sequential
// fixpoint on the worked example (Figs. 6-7).
TEST_F(MasparParserTest, WorkedExampleMatchesSequential) {
  MasparOptions opt;
  opt.filter_iterations = -1;  // fixpoint for exact comparison
  MasparParser parser(bundle_.grammar, opt);
  std::unique_ptr<MasparParse> p;
  auto result = parser.parse(sentence_, p);
  EXPECT_TRUE(result.accepted);
  EXPECT_EQ(result.vpes, 324);
  EXPECT_EQ(result.virt_factor, 1);

  cdg::SequentialParser seq(bundle_.grammar);
  cdg::Network net = seq.make_network(sentence_);
  seq.parse(net);
  net.filter();

  const auto domains = p->domains();
  ASSERT_EQ(static_cast<int>(domains.size()), net.num_roles());
  for (int r = 0; r < net.num_roles(); ++r)
    EXPECT_EQ(domains[r], net.domain(r)) << "role " << r;
}

// The arc matrices themselves (not just the domains) must match the
// sequential network at the fixpoint, on every arc.
TEST_F(MasparParserTest, ArcMatricesMatchSequentialAtFixpoint) {
  MasparOptions opt;
  opt.filter_iterations = -1;
  MasparParser parser(bundle_.grammar, opt);
  std::unique_ptr<MasparParse> p;
  parser.parse(sentence_, p);

  cdg::SequentialParser seq(bundle_.grammar);
  cdg::Network net = seq.make_network(sentence_);
  seq.parse(net);
  net.filter();

  const auto& idx = net.indexer();
  for (int a = 0; a < net.num_roles(); ++a) {
    for (int b = a + 1; b < net.num_roles(); ++b) {
      for (int i = 0; i < net.domain_size(); ++i) {
        for (int j = 0; j < net.domain_size(); ++j) {
          const RoleValue ra = idx.decode(i), rb = idx.decode(j);
          const bool seq_bit =
              net.arc_allows(a, i, b, j) && net.alive(a, i) &&
              net.alive(b, j);
          const bool mp_bit = p->arc_entry(a, ra, b, rb) &&
                              p->supported(a, ra) && p->supported(b, rb);
          EXPECT_EQ(mp_bit, seq_bit)
              << "arc " << a << "-" << b << " rv " << i << "," << j;
        }
      }
    }
  }
}

TEST_F(MasparParserTest, RejectsUngrammaticalSentence) {
  MasparOptions opt;
  opt.filter_iterations = -1;
  MasparParser parser(bundle_.grammar, opt);
  EXPECT_FALSE(parser.parse(bundle_.tag("program The runs")).accepted);
  EXPECT_FALSE(parser.parse(bundle_.tag("runs")).accepted);
  EXPECT_TRUE(parser.parse(bundle_.tag("A dog halts")).accepted);
}

TEST_F(MasparParserTest, BoundedFilteringStillAcceptsExample) {
  // Design decision 5: the paper's constant iteration bound (typically
  // fewer than 10 sweeps needed).
  MasparOptions opt;
  opt.filter_iterations = 10;
  MasparParser parser(bundle_.grammar, opt);
  auto r = parser.parse(sentence_);
  EXPECT_TRUE(r.accepted);
  EXPECT_LE(r.consistency_iterations, 10);
}

TEST_F(MasparParserTest, SimulatedTimeIsPositiveAndCalibrated) {
  MasparParser parser(bundle_.grammar);
  auto r = parser.parse(sentence_);
  // Results §3: the example sentence parses in ~0.15 s.  Calibration
  // tolerance is generous; the *shape* benches pin the ratios.
  EXPECT_GT(r.simulated_seconds, 0.01);
  EXPECT_LT(r.simulated_seconds, 1.0);
}

TEST_F(MasparParserTest, VirtualizationKicksInAtTenWords) {
  // 10 words -> 40,000 virtual PEs -> factor 3 on 16K (Results §3).
  std::vector<std::string> words;
  for (int i = 0; i < 10; ++i)
    words.push_back(i % 3 == 0 ? "The" : (i % 3 == 1 ? "dog" : "runs"));
  MasparParser parser(bundle_.grammar);
  auto r = parser.parse(bundle_.lexicon.tag(words));
  EXPECT_EQ(r.vpes, 40000);
  EXPECT_EQ(r.virt_factor, 3);
}

TEST_F(MasparParserTest, TooManyLabelsPerRoleRejected) {
  cdg::Grammar g;
  auto role = g.add_role("r0");
  g.add_role("r1");
  for (int i = 0; i < 9; ++i)
    g.allow_label(role, g.add_label("L" + std::to_string(i)));
  g.add_category("c");
  cdg::Sentence s;
  s.words = {"w"};
  s.cats = {0};
  EXPECT_THROW(MasparParse(g, s), std::invalid_argument);
}

}  // namespace
