// Randomized cross-engine fuzz: arbitrary word strings (grammatical or
// not) from the toy lexicon; every engine must agree with the
// sequential fixpoint on acceptance and domains.
#include <gtest/gtest.h>

#include <memory>

#include "cdg/extract.h"
#include "cdg/parser.h"
#include "grammars/toy_grammar.h"
#include "parsec/maspar_parser.h"
#include "parsec/mesh_parser.h"
#include "parsec/omp_parser.h"
#include "parsec/pram_parser.h"
#include "util/rng.h"

namespace {

using namespace parsec;

class RandomSentences : public ::testing::TestWithParam<int> {
 protected:
  RandomSentences() : bundle_(grammars::make_toy_grammar()) {}

  std::vector<std::string> random_words(util::Rng& rng, int n) {
    static const std::vector<std::string> pool{
        "The", "a", "program", "dog", "compiler", "runs", "halts",
        "crashes"};
    std::vector<std::string> words;
    for (int i = 0; i < n; ++i) words.push_back(rng.pick(pool));
    return words;
  }

  grammars::CdgBundle bundle_;
};

TEST_P(RandomSentences, AllEnginesAgree) {
  util::Rng rng(777 + GetParam());
  cdg::SequentialParser seq(bundle_.grammar);
  engine::PramParser pram(bundle_.grammar);
  engine::OmpParser omp(bundle_.grammar);
  engine::MasparOptions mopt;
  mopt.filter_iterations = -1;
  engine::MasparParser maspar(bundle_.grammar, mopt);
  engine::TopologyParser tree(bundle_.grammar,
                              engine::Topology::TreeHypercube);

  for (int trial = 0; trial < 8; ++trial) {
    const int n = 1 + static_cast<int>(rng.next_below(7));
    cdg::Sentence s = bundle_.lexicon.tag(random_words(rng, n));
    std::string label;
    for (const auto& w : s.words) label += w + " ";

    cdg::Network ref = seq.make_network(s);
    const bool accepted = seq.parse(ref).accepted;
    ref.filter();

    cdg::Network n1 = seq.make_network(s);
    EXPECT_EQ(pram.parse(n1).accepted, accepted) << label;
    cdg::Network n2 = seq.make_network(s);
    EXPECT_EQ(omp.parse(n2).accepted, accepted) << label;
    cdg::Network n3 = seq.make_network(s);
    EXPECT_EQ(tree.parse(n3).accepted, accepted) << label;
    std::unique_ptr<engine::MasparParse> mp;
    EXPECT_EQ(maspar.parse(s, mp).accepted, accepted) << label;

    const auto domains = mp->domains();
    for (int r = 0; r < ref.num_roles(); ++r) {
      EXPECT_EQ(n1.domain(r), ref.domain(r)) << label << "pram r" << r;
      EXPECT_EQ(n2.domain(r), ref.domain(r)) << label << "omp r" << r;
      EXPECT_EQ(n3.domain(r), ref.domain(r)) << label << "tree r" << r;
      EXPECT_EQ(domains[r], ref.domain(r)) << label << "maspar r" << r;
    }
  }
}

TEST_P(RandomSentences, AcceptanceMatchesExactParseExistence) {
  // Local consistency (fixpoint filtering) is a necessary condition;
  // on the toy grammar's small sentences it coincides with exact
  // extraction-based acceptance — document where both agree.
  util::Rng rng(31337 + GetParam());
  cdg::SequentialParser seq(bundle_.grammar);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = 1 + static_cast<int>(rng.next_below(6));
    cdg::Sentence s = bundle_.lexicon.tag(random_words(rng, n));
    cdg::Network net = seq.make_network(s);
    seq.parse(net);
    const bool ac_accept = net.all_roles_nonempty();
    const bool exact = cdg::count_parses(net, 1) > 0;
    // Exact acceptance implies AC acceptance, always.
    if (exact) {
      EXPECT_TRUE(ac_accept);
    }
    // The reverse holds on these inputs (checked, not assumed).
    if (ac_accept) {
      EXPECT_TRUE(exact);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSentences, ::testing::Range(0, 8));

}  // namespace
