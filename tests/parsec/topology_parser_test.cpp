// Topology-model engine: the shapes behind the CDG column of Figure 8.
#include "parsec/mesh_parser.h"

#include <gtest/gtest.h>

#include <cmath>

#include "cdg/parser.h"
#include "grammars/toy_grammar.h"

namespace {

using namespace parsec;
using engine::Topology;
using engine::TopologyParser;

class TopologyParserTest : public ::testing::Test {
 protected:
  TopologyParserTest() : bundle_(grammars::make_toy_grammar()) {}

  cdg::Sentence repeat_sentence(int n) const {
    std::vector<std::string> words;
    for (int i = 0; i < n; ++i)
      words.push_back(i % 3 == 0 ? "The" : (i % 3 == 1 ? "dog" : "runs"));
    return bundle_.lexicon.tag(words);
  }

  std::uint64_t steps(Topology t, int n) {
    TopologyParser p(bundle_.grammar, t);
    cdg::SequentialParser seq(bundle_.grammar);
    cdg::Network net = seq.make_network(repeat_sentence(n));
    return p.parse(net).time_steps;
  }

  grammars::CdgBundle bundle_;
};

TEST_F(TopologyParserTest, PeCountsMatchFigure8) {
  TopologyParser pram(bundle_.grammar, Topology::CrcwPram);
  TopologyParser mesh(bundle_.grammar, Topology::Mesh2D);
  TopologyParser tree(bundle_.grammar, Topology::TreeHypercube);
  // q = 2 roles: PRAM has 4 n^4, mesh n^2, tree ~ 4 n^4 / log2 n.
  EXPECT_EQ(pram.pes_for(10), 40000u);
  EXPECT_EQ(mesh.pes_for(10), 100u);
  const double expected_tree = 4 * 1e4 / std::log2(10.0);
  EXPECT_NEAR(static_cast<double>(tree.pes_for(10)), expected_tree,
              expected_tree * 0.01);
}

TEST_F(TopologyParserTest, PramStepsFlatInN) {
  // O(k): with enough processors, steps do not grow with n (up to the
  // data-dependent filtering iterations, identical for these repeated
  // sentences... compare within a tolerance of a few sweeps).
  const auto s3 = steps(Topology::CrcwPram, 3);
  const auto s12 = steps(Topology::CrcwPram, 12);
  EXPECT_LT(s12, s3 + 30);
}

TEST_F(TopologyParserTest, MeshStepsGrowQuadratically) {
  // O(k + n^2): elementwise phases dominate, n^4 work on n^2 PEs.
  const auto s4 = steps(Topology::Mesh2D, 4);
  const auto s8 = steps(Topology::Mesh2D, 8);
  const auto s16 = steps(Topology::Mesh2D, 16);
  // Doubling n should roughly quadruple... the dominant term is
  // n^4/n^2 = n^2 per constraint pass.
  EXPECT_GT(static_cast<double>(s8) / s4, 2.5);
  EXPECT_GT(static_cast<double>(s16) / s8, 3.0);
  EXPECT_LT(static_cast<double>(s16) / s8, 6.0);
}

TEST_F(TopologyParserTest, TreeStepsGrowLogarithmically) {
  // O(k + log n): far flatter than the mesh.
  const auto s4 = steps(Topology::TreeHypercube, 4);
  const auto s16 = steps(Topology::TreeHypercube, 16);
  EXPECT_LT(static_cast<double>(s16) / s4, 3.0);
  // And the mesh at n=16 is much slower than the tree at n=16.
  EXPECT_GT(steps(Topology::Mesh2D, 16), 10 * s16);
}

TEST_F(TopologyParserTest, CellularAutomatonEqualsMeshCosts) {
  EXPECT_EQ(steps(Topology::CellularAutomaton2D, 6),
            steps(Topology::Mesh2D, 6));
}

TEST_F(TopologyParserTest, NetworkTransformationUnaffectedByTopology) {
  cdg::SequentialParser seq(bundle_.grammar);
  for (auto t : {Topology::CrcwPram, Topology::Mesh2D,
                 Topology::TreeHypercube}) {
    TopologyParser p(bundle_.grammar, t);
    cdg::Network net = seq.make_network(bundle_.tag("The program runs"));
    auto r = p.parse(net);
    EXPECT_TRUE(r.accepted) << engine::to_string(t);
    EXPECT_EQ(net.total_alive(), 6u) << engine::to_string(t);
  }
}

}  // namespace
