// End-to-end fault-injection sites: dead PEs remap work around the
// fault with bit-identical results, router errors are detected and
// retried, and arena allocation failure surfaces as InjectedFault.
#include <gtest/gtest.h>

#include <memory>

#include "cdg/network.h"
#include "grammars/toy_grammar.h"
#include "parsec/backend.h"
#include "parsec/maspar_parser.h"
#include "resil/fault_plan.h"

namespace {

using namespace parsec;
using resil::FaultPlan;
using resil::FaultSpec;
using resil::InjectedFault;
using resil::ScopedFaultPlan;

TEST(FaultInjection, DeadPesRemapWithBitIdenticalResults) {
  auto bundle = grammars::make_toy_grammar();
  const cdg::Sentence s = bundle.tag("The program runs");
  engine::EngineSet engines(bundle.grammar);

  const engine::BackendRun clean =
      engine::run_backend(engines, engine::Backend::Maspar, s);
  ASSERT_TRUE(clean.accepted);

  FaultPlan plan(42);
  FaultSpec dead;
  dead.probability = 0.25;  // ~quarter of the physical array disabled
  plan.arm("maspar.dead_pe", dead);
  ScopedFaultPlan scope(plan);
  const engine::BackendRun degraded =
      engine::run_backend(engines, engine::Backend::Maspar, s);

  // The MP-1's fault story: disable the PE, fold its virtual load onto
  // the survivors, answer identically — only slower.
  EXPECT_TRUE(degraded.accepted);
  EXPECT_EQ(degraded.domains_hash, clean.domains_hash);
  EXPECT_GT(degraded.stats.maspar.dead_pes, 0u);
  EXPECT_GE(degraded.stats.maspar_simulated_seconds,
            clean.stats.maspar_simulated_seconds);
}

TEST(FaultInjection, AllPesDeadIsAHardFault) {
  auto bundle = grammars::make_toy_grammar();
  engine::EngineSet engines(bundle.grammar);
  FaultPlan plan;
  FaultSpec dead;
  dead.every_nth = 1;  // every PE fails its power-on check
  plan.arm("maspar.dead_pe", dead);
  ScopedFaultPlan scope(plan);
  EXPECT_THROW(engine::run_backend(engines, engine::Backend::Maspar,
                                   bundle.tag("The program runs")),
               InjectedFault);
}

TEST(FaultInjection, RouterErrorsAreRetriedNotCorrupting) {
  auto bundle = grammars::make_toy_grammar();
  const cdg::Sentence s = bundle.tag("The program runs");
  engine::EngineSet engines(bundle.grammar);
  const engine::BackendRun clean =
      engine::run_backend(engines, engine::Backend::Maspar, s);

  FaultPlan plan(7);
  FaultSpec router;
  router.every_nth = 10;  // every tenth scan/route op fails once
  plan.arm("maspar.router", router);
  ScopedFaultPlan scope(plan);
  const engine::BackendRun flaky =
      engine::run_backend(engines, engine::Backend::Maspar, s);

  EXPECT_EQ(flaky.domains_hash, clean.domains_hash);
  EXPECT_GT(flaky.stats.maspar.router_retries, 0u);
  // Each retry re-charges the op: the flaky run costs strictly more.
  EXPECT_GT(flaky.stats.maspar.scan_ops + flaky.stats.maspar.route_ops,
            clean.stats.maspar.scan_ops + clean.stats.maspar.route_ops);
}

TEST(FaultInjection, ArenaAllocationFailureThrowsInjectedFault) {
  auto bundle = grammars::make_toy_grammar();
  FaultPlan plan;
  FaultSpec alloc;
  alloc.every_nth = 1;
  plan.arm("arena.alloc", alloc);
  ScopedFaultPlan scope(plan);
  EXPECT_THROW(cdg::Network(bundle.grammar, bundle.tag("The program runs")),
               InjectedFault);
}

TEST(FaultInjection, SameShapeReinitNeverAllocatesSoNeverFaults) {
  auto bundle = grammars::make_toy_grammar();
  // Build (and grow) the network with no plan installed...
  cdg::Network net(bundle.grammar, bundle.tag("The program runs"));
  // ...then arm allocation failure: a same-shape reinit must survive,
  // because the hot path is allocation-free.
  FaultPlan plan;
  FaultSpec alloc;
  alloc.every_nth = 1;
  plan.arm("arena.alloc", alloc);
  ScopedFaultPlan scope(plan);
  EXPECT_TRUE(net.reinit(bundle.tag("A dog halts")));
  EXPECT_EQ(plan.fires("arena.alloc"), 0u);
}

}  // namespace
