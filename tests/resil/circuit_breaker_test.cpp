// CircuitBreaker: trip threshold, streak reset, cooldown, the single
// half-open probe, and trip accounting.
#include "resil/circuit_breaker.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace {

using parsec::resil::CircuitBreaker;
using State = CircuitBreaker::State;
using namespace std::chrono_literals;

CircuitBreaker::Options fast_opts() {
  CircuitBreaker::Options o;
  o.trip_after = 3;
  o.cooldown = 20ms;
  return o;
}

TEST(CircuitBreaker, TripsAfterConsecutiveFailures) {
  CircuitBreaker b(fast_opts());
  EXPECT_TRUE(b.allow());
  EXPECT_FALSE(b.record_failure());
  EXPECT_FALSE(b.record_failure());
  EXPECT_TRUE(b.record_failure());  // third failure trips
  EXPECT_EQ(b.state(), State::Open);
  EXPECT_FALSE(b.allow());
  EXPECT_EQ(b.trips(), 1u);
  // Further failures while Open neither re-trip nor re-count.
  EXPECT_FALSE(b.record_failure());
  EXPECT_EQ(b.trips(), 1u);
}

TEST(CircuitBreaker, SuccessResetsTheStreak) {
  CircuitBreaker b(fast_opts());
  b.record_failure();
  b.record_failure();
  b.record_success();  // streak back to zero
  b.record_failure();
  b.record_failure();
  EXPECT_EQ(b.state(), State::Closed);
  EXPECT_TRUE(b.allow());
}

TEST(CircuitBreaker, CooldownAdmitsExactlyOneProbe) {
  CircuitBreaker b(fast_opts());
  for (int i = 0; i < 3; ++i) b.record_failure();
  EXPECT_FALSE(b.allow());  // still cooling down
  std::this_thread::sleep_for(30ms);
  EXPECT_TRUE(b.allow());   // this caller claims the probe
  EXPECT_EQ(b.state(), State::HalfOpen);
  EXPECT_FALSE(b.allow());  // probe already in flight
}

TEST(CircuitBreaker, ProbeSuccessCloses) {
  CircuitBreaker b(fast_opts());
  for (int i = 0; i < 3; ++i) b.record_failure();
  std::this_thread::sleep_for(30ms);
  ASSERT_TRUE(b.allow());
  b.record_success();
  EXPECT_EQ(b.state(), State::Closed);
  EXPECT_TRUE(b.allow());
}

TEST(CircuitBreaker, ProbeFailureReopensAndRestartsCooldown) {
  CircuitBreaker b(fast_opts());
  for (int i = 0; i < 3; ++i) b.record_failure();
  std::this_thread::sleep_for(30ms);
  ASSERT_TRUE(b.allow());
  EXPECT_TRUE(b.record_failure());  // half-open probe failed: re-trip
  EXPECT_EQ(b.state(), State::Open);
  EXPECT_EQ(b.trips(), 2u);
  EXPECT_FALSE(b.allow());  // cooldown restarted
}

}  // namespace
