// Watchdog: stall detection raises the slot's cancel flag, finished
// parses are never flagged, and stale flags are cleared on begin().
#include "resil/watchdog.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace {

using parsec::resil::Watchdog;
using namespace std::chrono_literals;

Watchdog::Options fast_opts() {
  Watchdog::Options o;
  o.stall_after = 30ms;
  o.interval = 5ms;
  return o;
}

TEST(Watchdog, FlagsAStalledWorker) {
  Watchdog dog(2, fast_opts());
  Watchdog::Slot& slot = dog.begin(0);
  // Simulate a stuck parse: never call end().
  for (int i = 0; i < 100 && !slot.cancel.load(); ++i)
    std::this_thread::sleep_for(5ms);
  EXPECT_TRUE(slot.cancel.load());
  EXPECT_EQ(dog.stalls(), 1u);
  dog.end(0);
  // An ended slot is not re-flagged.
  std::this_thread::sleep_for(60ms);
  EXPECT_EQ(dog.stalls(), 1u);
}

TEST(Watchdog, FastParsesAreNeverFlagged) {
  Watchdog dog(1, fast_opts());
  for (int i = 0; i < 10; ++i) {
    Watchdog::Slot& slot = dog.begin(0);
    std::this_thread::sleep_for(1ms);
    EXPECT_FALSE(slot.cancel.load());
    dog.end(0);
  }
  EXPECT_EQ(dog.stalls(), 0u);
}

TEST(Watchdog, BeginClearsAStaleCancelFlag) {
  Watchdog dog(1, fast_opts());
  Watchdog::Slot& slot = dog.begin(0);
  for (int i = 0; i < 100 && !slot.cancel.load(); ++i)
    std::this_thread::sleep_for(5ms);
  ASSERT_TRUE(slot.cancel.load());
  dog.end(0);
  // The next parse on this worker starts with a clean flag.
  Watchdog::Slot& again = dog.begin(0);
  EXPECT_FALSE(again.cancel.load());
  dog.end(0);
}

}  // namespace
