// FaultPlan: seeded determinism, trigger semantics (probability,
// every_nth, max_fires), the text format, and scoped installation.
#include "resil/fault_plan.h"

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <vector>

namespace {

using parsec::resil::FaultPlan;
using parsec::resil::FaultSpec;
using parsec::resil::ScopedFaultPlan;

std::vector<bool> fire_sequence(FaultPlan& plan, const char* site, int n) {
  std::vector<bool> out;
  out.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) out.push_back(plan.should_fire(site));
  return out;
}

TEST(FaultPlan, SameSeedReplaysBitIdentically) {
  FaultSpec spec;
  spec.probability = 0.3;
  FaultPlan a(42), b(42);
  a.arm("site.x", spec);
  b.arm("site.x", spec);
  EXPECT_EQ(fire_sequence(a, "site.x", 1000),
            fire_sequence(b, "site.x", 1000));
  EXPECT_GT(a.total_fires(), 0u);
  EXPECT_EQ(a.fires("site.x"), b.fires("site.x"));
}

TEST(FaultPlan, DifferentSeedsDiverge) {
  FaultSpec spec;
  spec.probability = 0.3;
  FaultPlan a(1), b(2);
  a.arm("site.x", spec);
  b.arm("site.x", spec);
  EXPECT_NE(fire_sequence(a, "site.x", 1000),
            fire_sequence(b, "site.x", 1000));
}

TEST(FaultPlan, SitesAreIndependentStreams) {
  FaultSpec spec;
  spec.probability = 0.5;
  FaultPlan plan(7);
  plan.arm("site.a", spec);
  plan.arm("site.b", spec);
  EXPECT_NE(fire_sequence(plan, "site.a", 256),
            fire_sequence(plan, "site.b", 256));
}

TEST(FaultPlan, ProbabilityRoughlyMatchesRate) {
  FaultSpec spec;
  spec.probability = 0.1;
  FaultPlan plan(99);
  plan.arm("site.x", spec);
  const int kQueries = 20000;
  for (int i = 0; i < kQueries; ++i) plan.should_fire("site.x");
  const double rate =
      static_cast<double>(plan.fires("site.x")) / kQueries;
  EXPECT_NEAR(rate, 0.1, 0.02);
  EXPECT_EQ(plan.queries("site.x"), static_cast<std::uint64_t>(kQueries));
}

TEST(FaultPlan, EveryNthFiresOnExactCadence) {
  FaultSpec spec;
  spec.every_nth = 3;
  FaultPlan plan;
  plan.arm("site.x", spec);
  // Queries are 1-based: fire on 1, 4, 7, ...
  const auto seq = fire_sequence(plan, "site.x", 9);
  const std::vector<bool> want = {true, false, false, true, false,
                                  false, true, false, false};
  EXPECT_EQ(seq, want);
}

TEST(FaultPlan, MaxFiresCapsTheSite) {
  FaultSpec spec;
  spec.every_nth = 1;  // would otherwise fire on every query
  spec.max_fires = 2;
  FaultPlan plan;
  plan.arm("site.x", spec);
  const auto seq = fire_sequence(plan, "site.x", 5);
  const std::vector<bool> want = {true, true, false, false, false};
  EXPECT_EQ(seq, want);
  EXPECT_EQ(plan.fires("site.x"), 2u);
}

TEST(FaultPlan, UnarmedSiteNeverFires) {
  FaultPlan plan;
  EXPECT_FALSE(plan.armed("site.x"));
  EXPECT_FALSE(plan.should_fire("site.x"));
  EXPECT_EQ(plan.queries("site.x"), 0u);
}

TEST(FaultPlan, ParsesTheTextFormat) {
  std::istringstream in(
      "# chaos plan\n"
      "seed 42\n"
      "\n"
      "arena.alloc   prob=0.01 limit=3\n"
      "maspar.router every=100\n"
      "engine.latency prob=0.05 param=0.0005\n");
  FaultPlan plan = FaultPlan::parse(in);
  EXPECT_EQ(plan.seed(), 42u);
  EXPECT_TRUE(plan.armed("arena.alloc"));
  EXPECT_TRUE(plan.armed("maspar.router"));
  EXPECT_TRUE(plan.armed("engine.latency"));
  EXPECT_DOUBLE_EQ(plan.param("engine.latency"), 0.0005);
  const auto sites = plan.sites();
  ASSERT_EQ(sites.size(), 3u);
  EXPECT_EQ(sites[0], "arena.alloc");
  // every=100 fires on the first query.
  EXPECT_TRUE(plan.should_fire("maspar.router"));
  EXPECT_FALSE(plan.should_fire("maspar.router"));
}

TEST(FaultPlan, ParseRejectsMalformedInput) {
  {
    std::istringstream in("seed notanumber\n");
    EXPECT_THROW(FaultPlan::parse(in), std::invalid_argument);
  }
  {
    std::istringstream in("site.x frequency=3\n");  // unknown key
    EXPECT_THROW(FaultPlan::parse(in), std::invalid_argument);
  }
  {
    std::istringstream in("site.x prob=1.5\n");  // out of range
    EXPECT_THROW(FaultPlan::parse(in), std::invalid_argument);
  }
  EXPECT_THROW(FaultPlan::load("/nonexistent/fault.plan"),
               std::invalid_argument);
}

TEST(FaultPlan, ScopedInstallationIsExclusive) {
  EXPECT_EQ(parsec::resil::installed_plan(), nullptr);
  FaultPlan plan;
  plan.arm("site.x", FaultSpec{});
  {
    ScopedFaultPlan scope(plan);
    EXPECT_EQ(parsec::resil::installed_plan(), &plan);
    FaultPlan other;
    EXPECT_THROW(ScopedFaultPlan nested(other), std::logic_error);
  }
  EXPECT_EQ(parsec::resil::installed_plan(), nullptr);
  // Free helpers are no-ops without a plan.
  EXPECT_FALSE(parsec::resil::should_fire("site.x"));
  EXPECT_DOUBLE_EQ(parsec::resil::site_param("site.x", 1.25), 1.25);
}

TEST(FaultPlan, CheckpointPollsCancelAndInjectsLatency) {
  // No plan: checkpoint just reports the cancel state.
  EXPECT_FALSE(parsec::resil::checkpoint({}));
  EXPECT_TRUE(parsec::resil::checkpoint([] { return true; }));

  FaultPlan plan;
  FaultSpec latency;
  latency.every_nth = 1;
  latency.param = 0.0;  // zero-length sleep: just exercise the path
  plan.arm("engine.latency", latency);
  FaultSpec hang;
  hang.every_nth = 1;
  hang.param = 0.05;  // bound the hang at 50ms even if nobody cancels
  plan.arm("engine.hang", hang);
  ScopedFaultPlan scope(plan);
  // A fired cancel ends the injected hang immediately.
  EXPECT_TRUE(parsec::resil::checkpoint([] { return true; }));
  // An unwatched hang ends at the param bound.
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(parsec::resil::checkpoint({}));
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GE(waited, 0.04);
}

}  // namespace
