#include "topo/reduction.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace {

using namespace parsec::topo;

TEST(TreeReduceSteps, ClosedForm) {
  EXPECT_EQ(tree_reduce_steps(0), 0u);
  EXPECT_EQ(tree_reduce_steps(1), 0u);
  EXPECT_EQ(tree_reduce_steps(2), 1u);
  EXPECT_EQ(tree_reduce_steps(3), 2u);
  EXPECT_EQ(tree_reduce_steps(8), 3u);
  EXPECT_EQ(tree_reduce_steps(9), 4u);
  EXPECT_EQ(tree_reduce_steps(16384), 14u);
}

TEST(MeshReduceSteps, DiameterBound) {
  EXPECT_EQ(mesh_side(16), 4u);
  EXPECT_EQ(mesh_side(17), 5u);
  EXPECT_EQ(mesh_reduce_steps(16), 6u);    // 2*(4-1)
  EXPECT_EQ(mesh_reduce_steps(100), 18u);  // 2*(10-1)
  EXPECT_EQ(mesh_reduce_steps(1), 0u);
}

TEST(HypercubeReduceSteps, LogDimensions) {
  EXPECT_EQ(hypercube_reduce_steps(1024), 10u);
  EXPECT_EQ(hypercube_reduce_steps(16384), 14u);
}

TEST(TreeReduction, OrMatchesReferenceAndRoundCount) {
  parsec::util::Rng rng(11);
  for (std::size_t n : {1u, 2u, 5u, 64u, 100u, 1000u}) {
    std::vector<std::uint8_t> bits(n);
    bool ref = false;
    for (auto& b : bits) {
      b = rng.next_bool(0.05) ? 1 : 0;
      ref = ref || b;
    }
    auto r = tree_reduce_or(bits);
    EXPECT_EQ(r.result, ref) << n;
    EXPECT_EQ(r.rounds, tree_reduce_steps(n)) << n;
  }
}

TEST(TreeReduction, AndMatchesReference) {
  parsec::util::Rng rng(13);
  for (std::size_t n : {1u, 3u, 7u, 128u, 999u}) {
    std::vector<std::uint8_t> bits(n);
    bool ref = true;
    for (auto& b : bits) {
      b = rng.next_bool(0.95) ? 1 : 0;
      ref = ref && b;
    }
    auto r = tree_reduce_and(bits);
    EXPECT_EQ(r.result, ref) << n;
    EXPECT_EQ(r.rounds, tree_reduce_steps(n)) << n;
  }
}

TEST(TreeReduction, EmptyInput) {
  EXPECT_FALSE(tree_reduce_or({}).result);
  EXPECT_TRUE(tree_reduce_and({}).result);
  EXPECT_EQ(tree_reduce_or({}).rounds, 0u);
}

}  // namespace
