// Phase-tracer tests: span recording, Chrome trace-event JSON schema,
// the end-to-end span taxonomy for a traced parse, the bounded
// spans-per-parse overhead guarantee, and bit-identity under tracing.
//
// Every recording assertion is gated on obs::kTracingCompiled so the
// suite also passes (and still checks the no-op contract) on a
// -DPARSEC_TRACING=OFF build.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cdg/extract.h"
#include "cdg/parser.h"
#include "grammars/toy_grammar.h"
#include "obs/trace.h"
#include "parsec/backend.h"

namespace parsec::obs {
namespace {

// ---- minimal JSON well-formedness checker ---------------------------
// Validates syntax only (objects, arrays, strings with escapes,
// numbers, literals); enough to guarantee Perfetto/chrome://tracing can
// parse what write_chrome_trace emits.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_])))
              return false;
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(s_[pos_]) < 0x20) {
        return false;  // raw control character
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing '"'
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::size_t len = std::string(lit).size();
    if (s_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

std::set<std::string> span_names(const TraceSession& session) {
  std::set<std::string> names;
  for (const SpanEvent& e : session.events()) names.insert(e.name);
  return names;
}

bool span_has_arg(const TraceSession& session, const std::string& span,
                  const std::string& key) {
  for (const SpanEvent& e : session.events()) {
    if (span != e.name) continue;
    for (std::uint8_t i = 0; i < e.num_args; ++i)
      if (key == e.args[i].key) return true;
  }
  return false;
}

TEST(Trace, NoSessionMeansNoRecording) {
  {
    Span s("outside.session");
    s.arg("k", std::int64_t{1});
    EXPECT_FALSE(s.active());
  }
  TraceSession session;
  EXPECT_EQ(session.span_count(), 0u);
}

TEST(Trace, SpanRecordsNameCategoryAndArgs) {
  TraceSession session;
  {
    Span s("unit.phase", "testcat");
    s.arg("count", std::int64_t{42});
    s.arg("ratio", 0.5);
  }
  if constexpr (kTracingCompiled) {
    ASSERT_EQ(session.span_count(), 1u);
    const SpanEvent e = session.events()[0];
    EXPECT_STREQ(e.name, "unit.phase");
    EXPECT_STREQ(e.cat, "testcat");
    EXPECT_GE(e.dur_ns, 0);
    ASSERT_EQ(e.num_args, 2);
    EXPECT_STREQ(e.args[0].key, "count");
    EXPECT_EQ(e.args[0].i, 42);
    EXPECT_STREQ(e.args[1].key, "ratio");
    EXPECT_DOUBLE_EQ(e.args[1].f, 0.5);
  } else {
    EXPECT_EQ(session.span_count(), 0u);
  }
}

TEST(Trace, ActiveFollowsSessionLifetime) {
  {
    TraceSession session;
    Span s("lifetime.check");
    EXPECT_EQ(s.active(), kTracingCompiled);
    EXPECT_EQ(TraceSession::active(), &session);
  }
  EXPECT_EQ(TraceSession::active(), nullptr);
  Span after("after.session");
  EXPECT_FALSE(after.active());
}

// Regression: the per-thread buffer cache must not survive a session's
// destruction.  Sequential stack sessions typically land at the same
// address, so an address-keyed cache would falsely hit and push spans
// into the destroyed session's freed buffers (use-after-free) while
// the live session recorded nothing.  Generation keying makes every
// session a cache miss on its first span.
TEST(Trace, SequentialSessionsAtSameAddressRecordIndependently) {
  if constexpr (!kTracingCompiled) GTEST_SKIP() << "tracing compiled out";
  for (int i = 0; i < 3; ++i) {
    TraceSession session;
    { Span s("reuse.span"); }
    EXPECT_EQ(session.span_count(), 1u) << "iteration " << i;
  }
}

TEST(Trace, ThreadsRecordIntoSeparateBuffers) {
  if constexpr (!kTracingCompiled) GTEST_SKIP() << "tracing compiled out";
  TraceSession session;
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([] {
      for (int i = 0; i < 100; ++i) Span s("mt.span");
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(session.span_count(), 400u);
  std::set<std::uint32_t> tids;
  for (const SpanEvent& e : session.events()) tids.insert(e.tid);
  EXPECT_EQ(tids.size(), static_cast<std::size_t>(kThreads));
}

TEST(Trace, ChromeTraceJsonIsWellFormed) {
  TraceSession session;
  {
    Span s("json.span", "cat\"needs\\escaping");
    s.arg("i", std::int64_t{-3});
    s.arg("f", 1.25);
  }
  std::ostringstream os;
  session.write_chrome_trace(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  if constexpr (kTracingCompiled) {
    EXPECT_NE(json.find("\"name\":\"json.span\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"args\":{\"i\":-3,\"f\":1.25}"), std::string::npos);
  }
}

// The acceptance criterion for the observability PR: one traced parse
// emits spans for factoring, mask build, AC-4 fixpoint, and
// extraction, with router-scan and effective-eval counts as span args.
TEST(Trace, EndToEndParseSpanTaxonomy) {
  const grammars::CdgBundle bundle = grammars::make_toy_grammar();
  const cdg::Sentence s = bundle.tag("The program runs");

  TraceSession session;
  // Factoring happens at parser construction.
  engine::EngineSetOptions eopt;
  eopt.serial_ac4 = true;  // propagate, then AC-4 to the fixpoint
  engine::EngineSet engines(bundle.grammar, eopt);
  const engine::BackendRun serial_run =
      engine::run_backend(engines, engine::Backend::Serial, s);
  const engine::BackendRun maspar_run =
      engine::run_backend(engines, engine::Backend::Maspar, s);
  EXPECT_EQ(serial_run.domains_hash, maspar_run.domains_hash);

  cdg::SequentialParser seq(bundle.grammar);
  cdg::Network net = seq.make_network(s);
  seq.parse(net);
  cdg::extract_parses(net, 8);

  if constexpr (kTracingCompiled) {
    const std::set<std::string> names = span_names(session);
    for (const char* required :
         {"cdg.factoring", "cdg.mask_build", "cdg.ac4_fixpoint",
          "cdg.extract", "backend.serial", "backend.maspar", "serial.unary",
          "serial.binary", "serial.filter", "maspar.filter"})
      EXPECT_TRUE(names.count(required)) << "missing span: " << required;
    // Effective-eval counts ride on the backend envelope spans...
    EXPECT_TRUE(span_has_arg(session, "backend.serial",
                             "effective_unary_evals"));
    EXPECT_TRUE(span_has_arg(session, "backend.serial",
                             "effective_binary_evals"));
    // ...and the MasPar envelope carries the machine counters.
    EXPECT_TRUE(span_has_arg(session, "backend.maspar", "scan_ops"));
    EXPECT_TRUE(span_has_arg(session, "backend.maspar", "plural_ops"));
    EXPECT_TRUE(span_has_arg(session, "backend.maspar", "route_ops"));
    EXPECT_TRUE(span_has_arg(session, "maspar.filter", "scan_ops"));
  } else {
    EXPECT_EQ(session.span_count(), 0u);
  }
}

// Overhead guarantee: spans are phase-grained.  A parse records a
// bounded handful of spans — never one per role value or arc element —
// so tracing cost cannot scale with sentence size.
TEST(Trace, SpansPerParseAreBounded) {
  if constexpr (!kTracingCompiled) GTEST_SKIP() << "tracing compiled out";
  const grammars::CdgBundle bundle = grammars::make_toy_grammar();
  const cdg::Sentence s = bundle.tag("The program runs");
  engine::EngineSet engines(bundle.grammar);

  TraceSession session;
  engine::run_backend(engines, engine::Backend::Serial, s);
  const std::size_t serial_spans = session.span_count();
  EXPECT_GE(serial_spans, 4u);   // envelope + unary + binary + filter
  EXPECT_LT(serial_spans, 64u);  // phase granularity, not per-element
  engine::run_backend(engines, engine::Backend::Maspar, s);
  EXPECT_LT(session.span_count(), serial_spans + 64u);
}

// Tracing must observe, never perturb: the masked and plain evaluation
// paths reach bit-identical fixpoints with a session active.
TEST(Trace, MaskedAndPlainFixpointsBitIdenticalUnderTracing) {
  const grammars::CdgBundle bundle = grammars::make_toy_grammar();
  const cdg::Sentence s = bundle.tag("A dog crashes");

  TraceSession session;
  cdg::ParseOptions masked;
  masked.use_masks = true;
  cdg::ParseOptions plain;
  plain.use_masks = false;
  cdg::SequentialParser pm(bundle.grammar, masked);
  cdg::SequentialParser pp(bundle.grammar, plain);
  cdg::Network nm = pm.make_network(s);
  cdg::Network np = pp.make_network(s);
  pm.parse(nm);
  pp.parse(np);
  nm.filter();
  np.filter();
  EXPECT_EQ(engine::hash_domains(nm), engine::hash_domains(np));
}

}  // namespace
}  // namespace parsec::obs
