// Registry merge/scrape correctness, histogram bucketing, Prometheus
// text-format checks, and the StatsPublisher metric families.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "parsec/backend.h"

namespace parsec::obs {
namespace {

TEST(Counter, MergesStripesAcrossThreads) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kIncsPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < kIncsPerThread; ++i) c.inc();
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kIncsPerThread);
}

TEST(Counter, IncByAmount) {
  Counter c;
  c.inc(5);
  c.inc(7);
  EXPECT_EQ(c.value(), 12u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.add(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
}

TEST(Histogram, BucketBoundariesAreLeInclusive) {
  Histogram h({1.0, 2.0, 5.0});
  h.observe(0.5);  // bucket le=1
  h.observe(1.0);  // bucket le=1 (inclusive upper bound)
  h.observe(1.5);  // bucket le=2
  h.observe(10.0); // +Inf bucket
  const Histogram::Snapshot s = h.snapshot();
  ASSERT_EQ(s.buckets.size(), 4u);  // 3 bounds + the implicit +Inf
  EXPECT_EQ(s.buckets[0], 2u);
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[2], 0u);
  EXPECT_EQ(s.buckets[3], 1u);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.sum, 0.5 + 1.0 + 1.5 + 10.0);
}

TEST(Histogram, MergesObservationsAcrossThreads) {
  Histogram h({1.0});
  constexpr int kThreads = 8;
  constexpr int kObsPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h] {
      for (int i = 0; i < kObsPerThread; ++i) h.observe(0.5);
    });
  for (auto& t : threads) t.join();
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kObsPerThread);
  EXPECT_EQ(s.buckets[0], s.count);
  EXPECT_NEAR(s.sum, 0.5 * static_cast<double>(s.count), 1e-6);
}

TEST(Registry, SameNameAndLabelsReturnsSameHandle) {
  Registry reg;
  Counter& a = reg.counter("x_total", "help", {{"k", "v"}});
  Counter& b = reg.counter("x_total", "help", {{"k", "v"}});
  EXPECT_EQ(&a, &b);
  Counter& c = reg.counter("x_total", "help", {{"k", "other"}});
  EXPECT_NE(&a, &c);
}

TEST(Registry, TypeConflictThrows) {
  Registry reg;
  reg.counter("x_total", "help");
  EXPECT_THROW(reg.gauge("x_total", "help"), std::logic_error);
  EXPECT_THROW(reg.histogram("x_total", "help", {1.0}), std::logic_error);
}

TEST(Registry, PrometheusExpositionFormat) {
  Registry reg;
  reg.counter("requests_total", "Requests.", {{"backend", "serial"}}).inc(3);
  reg.gauge("depth", "Queue depth.").set(2.0);
  Histogram& h =
      reg.histogram("latency_seconds", "Latency.", {0.1, 1.0});
  h.observe(0.05);
  h.observe(0.5);
  h.observe(5.0);
  const std::string text = reg.scrape();

  EXPECT_NE(text.find("# HELP requests_total Requests.\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE requests_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("requests_total{backend=\"serial\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("depth 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE latency_seconds histogram\n"),
            std::string::npos);
  // Cumulative buckets: le="1" includes the le="0.1" observation.
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"0.1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("latency_seconds_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("latency_seconds_sum"), std::string::npos);
}

TEST(Registry, LabelValuesAreEscaped) {
  Registry reg;
  reg.counter("esc_total", "Escapes.", {{"k", "a\"b\\c\nd"}}).inc();
  const std::string text = reg.scrape();
  EXPECT_NE(text.find("esc_total{k=\"a\\\"b\\\\c\\nd\"} 1\n"),
            std::string::npos);
}

TEST(Registry, GaugeFnEvaluatedAtScrape) {
  Registry reg;
  double depth = 1.0;
  reg.gauge_fn("live_depth", "Scrape-time gauge.", [&depth] { return depth; });
  EXPECT_NE(reg.scrape().find("live_depth 1\n"), std::string::npos);
  depth = 7.0;
  EXPECT_NE(reg.scrape().find("live_depth 7\n"), std::string::npos);
}

// Scrape copies gauge_fn callbacks and runs them after releasing the
// registry mutex, so a callback may itself use the registry (register
// a metric, read another value) without deadlocking.
TEST(Registry, GaugeFnMayTouchRegistryDuringScrape) {
  Registry reg;
  Counter& seen = reg.counter("scrapes_seen_total", "Scrapes observed.");
  reg.gauge_fn("reentrant_depth", "Callback that touches the registry.",
               [&reg, &seen] {
                 seen.inc();
                 reg.counter("registered_from_callback_total",
                             "Registered mid-scrape.");
                 return static_cast<double>(seen.value());
               });
  const std::string text = reg.scrape();
  EXPECT_NE(text.find("reentrant_depth 1\n"), std::string::npos) << text;
  EXPECT_NE(reg.scrape().find("registered_from_callback_total 0\n"),
            std::string::npos);
}

TEST(Registry, GlobalIsSingleton) {
  EXPECT_EQ(&Registry::global(), &Registry::global());
}

TEST(StatsPublisher, PublishesPerBackendFamilies) {
  Registry reg;
  engine::StatsPublisher pub(&reg);
  engine::BackendStats d;
  d.requests = 1;
  d.accepted = 1;
  d.network.unary_evals = 10;
  d.network.masked_unary_decided = 5;
  d.network.binary_evals = 4;
  d.network.masked_binary_pairs = 3;
  d.network.eliminations = 2;
  d.consistency_iterations = 6;
  pub.publish(engine::Backend::Serial, d, 0.01);
  const std::string text = reg.scrape();
  EXPECT_NE(
      text.find(
          "parsec_requests_total{backend=\"serial\",status=\"accepted\"} 1\n"),
      std::string::npos);
  EXPECT_NE(text.find("parsec_effective_unary_evals_total{backend="
                      "\"serial\"} 15\n"),
            std::string::npos);
  // effective binary = binary_evals + 2 * masked_binary_pairs = 10.
  EXPECT_NE(text.find("parsec_effective_binary_evals_total{backend="
                      "\"serial\"} 10\n"),
            std::string::npos);
  EXPECT_NE(text.find("parsec_eliminations_total{backend=\"serial\"} 2\n"),
            std::string::npos);
  EXPECT_NE(
      text.find("parsec_consistency_iterations_total{backend=\"serial\"} 6\n"),
      std::string::npos);
  // Latency histogram observed once for the serial backend.
  EXPECT_NE(text.find("parsec_parse_duration_seconds_count{backend="
                      "\"serial\"} 1\n"),
            std::string::npos);
  // The calibrated MasPar cost-model constants ride along in every
  // publisher's registry (scrapes are self-describing).
  EXPECT_NE(text.find("parsec_maspar_cost_t_instr_seconds"),
            std::string::npos);
  EXPECT_NE(text.find("parsec_maspar_cost_t_route_seconds"),
            std::string::npos);
}

TEST(StatsPublisher, MasparMachineCountersOnlyForMaspar) {
  Registry reg;
  engine::StatsPublisher pub(&reg);
  engine::BackendStats d;
  d.requests = 1;
  d.maspar.plural_ops = 100;
  d.maspar.scan_ops = 20;
  d.maspar.route_ops = 8;
  pub.publish(engine::Backend::Serial, d);  // wrong backend: not counted
  std::string text = reg.scrape();
  EXPECT_NE(text.find("parsec_maspar_plural_ops_total 0\n"),
            std::string::npos);
  pub.publish(engine::Backend::Maspar, d);
  text = reg.scrape();
  EXPECT_NE(text.find("parsec_maspar_plural_ops_total 100\n"),
            std::string::npos);
  EXPECT_NE(text.find("parsec_maspar_scan_ops_total 20\n"),
            std::string::npos);
  EXPECT_NE(text.find("parsec_maspar_route_ops_total 8\n"),
            std::string::npos);
}

}  // namespace
}  // namespace parsec::obs
