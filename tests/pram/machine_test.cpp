#include "pram/machine.h"

#include <gtest/gtest.h>

namespace {

using namespace parsec::pram;

TEST(PramMachine, ForAllCountsOneStep) {
  Machine m;
  int hits = 0;
  m.for_all(100, [&](std::size_t) { ++hits; });
  EXPECT_EQ(hits, 100);
  EXPECT_EQ(m.stats().time_steps, 1u);
  EXPECT_EQ(m.stats().max_processors, 100u);
  EXPECT_EQ(m.stats().total_work, 100u);
}

TEST(PramMachine, PeakProcessorsIsMax) {
  Machine m;
  m.for_all(10, [](std::size_t) {});
  m.for_all(1000, [](std::size_t) {});
  m.for_all(50, [](std::size_t) {});
  EXPECT_EQ(m.stats().time_steps, 3u);
  EXPECT_EQ(m.stats().max_processors, 1000u);
  EXPECT_EQ(m.stats().total_work, 1060u);
}

TEST(PramMachine, GlobalOrAndAreSingleSteps) {
  Machine m;
  EXPECT_TRUE(m.global_or(64, [](std::size_t i) { return i == 63; }));
  EXPECT_FALSE(m.global_or(64, [](std::size_t) { return false; }));
  EXPECT_TRUE(m.global_and(64, [](std::size_t) { return true; }));
  EXPECT_FALSE(m.global_and(64, [](std::size_t i) { return i != 10; }));
  EXPECT_EQ(m.stats().time_steps, 4u);
}

TEST(PramMachine, CommonWriteAgreementOk) {
  Machine m(WriteMode::Common);
  std::vector<int> cells(4, 0);
  // All processors write the same value to cell 2: legal Common CRCW.
  m.concurrent_write<int>(cells, 8, [](std::size_t) { return std::size_t{2}; },
                          [](std::size_t) { return 7; });
  EXPECT_EQ(cells[2], 7);
  EXPECT_EQ(m.stats().write_conflicts, 7u);
}

TEST(PramMachine, CommonWriteViolationThrows) {
  Machine m(WriteMode::Common);
  std::vector<int> cells(4, 0);
  EXPECT_THROW(m.concurrent_write<int>(
                   cells, 2, [](std::size_t) { return std::size_t{0}; },
                   [](std::size_t i) { return static_cast<int>(i); }),
               std::logic_error);
}

TEST(PramMachine, ArbitraryWritePicksOneWriter) {
  Machine m(WriteMode::Arbitrary, /*seed=*/3);
  std::vector<int> cells(1, -1);
  m.concurrent_write<int>(cells, 16, [](std::size_t) { return std::size_t{0}; },
                          [](std::size_t i) { return static_cast<int>(i); });
  EXPECT_GE(cells[0], 0);
  EXPECT_LT(cells[0], 16);
}

TEST(PramMachine, SilentProcessorsWriteNothing) {
  Machine m;
  std::vector<int> cells(3, 9);
  m.concurrent_write<int>(
      cells, 5,
      [](std::size_t i) {
        return i == 4 ? std::size_t{1} : static_cast<std::size_t>(-1);
      },
      [](std::size_t) { return 42; });
  EXPECT_EQ(cells[0], 9);
  EXPECT_EQ(cells[1], 42);
  EXPECT_EQ(cells[2], 9);
  EXPECT_EQ(m.stats().write_conflicts, 0u);
}

TEST(PramMachine, OutOfRangeWriteThrows) {
  Machine m;
  std::vector<int> cells(2, 0);
  EXPECT_THROW(m.concurrent_write<int>(
                   cells, 1, [](std::size_t) { return std::size_t{5}; },
                   [](std::size_t) { return 1; }),
               std::out_of_range);
}

TEST(PramMachine, SequentialStepsAccumulate) {
  Machine m;
  m.sequential_steps(5);
  EXPECT_EQ(m.stats().time_steps, 5u);
  EXPECT_EQ(m.stats().max_processors, 1u);
  m.reset_stats();
  EXPECT_EQ(m.stats().time_steps, 0u);
}

}  // namespace
