// ThreadPool: job execution, worker indices, per-worker stats,
// shutdown-while-busy draining, and post-after-shutdown rejection.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <thread>

#include "serve/thread_pool.h"

namespace {

using parsec::serve::ThreadPool;

TEST(ThreadPool, RunsEveryPostedJob) {
  ThreadPool pool(4, 32);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i)
    ASSERT_TRUE(pool.post([&](int) { ++ran; }));
  pool.shutdown();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, WorkerIndicesAreInRange) {
  ThreadPool pool(3, 32);
  std::mutex m;
  std::set<int> seen;
  for (int i = 0; i < 60; ++i)
    ASSERT_TRUE(pool.post([&](int w) {
      std::lock_guard lock(m);
      seen.insert(w);
    }));
  pool.shutdown();
  ASSERT_FALSE(seen.empty());
  EXPECT_GE(*seen.begin(), 0);
  EXPECT_LT(*seen.rbegin(), 3);
}

TEST(ThreadPool, ShutdownWhileBusyDrainsBacklog) {
  // One worker, slow jobs: shutdown() must let the queued backlog run
  // to completion before joining.
  ThreadPool pool(1, 16);
  std::atomic<int> ran{0};
  for (int i = 0; i < 8; ++i)
    ASSERT_TRUE(pool.post([&](int) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ++ran;
    }));
  pool.shutdown();  // called while the first jobs are still running
  EXPECT_EQ(ran.load(), 8);
}

TEST(ThreadPool, PostAfterShutdownFails) {
  ThreadPool pool(2, 8);
  pool.shutdown();
  EXPECT_TRUE(pool.shutting_down());
  EXPECT_FALSE(pool.post([](int) {}));
}

TEST(ThreadPool, ShutdownIsIdempotent) {
  ThreadPool pool(2, 8);
  std::atomic<int> ran{0};
  ASSERT_TRUE(pool.post([&](int) { ++ran; }));
  pool.shutdown();
  pool.shutdown();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, DestructorJoinsWithoutShutdownCall) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(2, 8);
    for (int i = 0; i < 10; ++i)
      ASSERT_TRUE(pool.post([&](int) { ++ran; }));
  }  // ~ThreadPool drains + joins
  EXPECT_EQ(ran.load(), 10);
}

TEST(ThreadPool, WorkerStatsCountJobs) {
  ThreadPool pool(2, 32);
  for (int i = 0; i < 20; ++i)
    ASSERT_TRUE(pool.post([](int) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }));
  pool.shutdown();
  const auto stats = pool.worker_stats();
  ASSERT_EQ(stats.size(), 2u);
  std::uint64_t total = 0;
  double busy = 0;
  for (const auto& w : stats) {
    total += w.jobs;
    busy += w.busy_seconds;
  }
  EXPECT_EQ(total, 20u);
  EXPECT_GT(busy, 0.0);
}

}  // namespace
