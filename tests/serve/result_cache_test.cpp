// ResultCache: single-flight semantics at the unit level, plus the
// service-level cache contracts — a stampede of identical requests runs
// ONE engine parse, and cache hits are byte-identical to fresh parses
// (the engines' bit-determinism extended through the cache).  The
// threaded tests here run under TSan in CI (suite names match the
// sanitizer job's regex).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "grammars/english_grammar.h"
#include "grammars/sentence_gen.h"
#include "grammars/toy_grammar.h"
#include "obs/metrics.h"
#include "serve/parse_service.h"
#include "serve/result_cache.h"

namespace {

using namespace parsec;
using namespace std::chrono_literals;
using serve::ParseRequest;
using serve::ParseResponse;
using serve::ParseService;
using serve::RequestStatus;
using serve::ResultCache;

using Outcome = ResultCache::Outcome;

ResultCache::Key key_of(int tenant, std::uint64_t epoch, std::uint64_t h) {
  ResultCache::Key k;
  k.tenant = tenant;
  k.epoch = epoch;
  k.sentence_hash = h;
  return k;
}

ResultCache::Payload accepted_payload(std::uint64_t hash) {
  ResultCache::Payload p;
  p.accepted = true;
  p.alive_role_values = 7;
  p.domains_hash = hash;
  return p;
}

TEST(ResultCache, LeaderFillsThenHits) {
  ResultCache cache(8);
  const auto k = key_of(1, 1, 42);

  auto first = cache.acquire(k, /*need_domains=*/false);
  ASSERT_EQ(first.outcome, Outcome::MissLeader);
  ASSERT_TRUE(first.ticket);
  first.ticket.fill(accepted_payload(0xabc));

  auto second = cache.acquire(k, false);
  EXPECT_EQ(second.outcome, Outcome::Hit);
  ASSERT_TRUE(second.payload);
  EXPECT_TRUE(second.payload->accepted);
  EXPECT_EQ(second.payload->domains_hash, 0xabcu);

  auto s = cache.stats();
  EXPECT_EQ(s.lookups, 2u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
}

TEST(ResultCache, CoalescedWaiterGetsTheLeadersPayload) {
  ResultCache cache(8);
  const auto k = key_of(1, 1, 7);
  auto leader = cache.acquire(k, false);
  ASSERT_EQ(leader.outcome, Outcome::MissLeader);

  std::atomic<bool> waiting{false};
  ResultCache::LookupResult got;
  std::thread waiter([&] {
    waiting.store(true);
    got = cache.acquire(k, false);  // blocks on the in-flight leader
  });
  while (!waiting.load()) std::this_thread::yield();
  std::this_thread::sleep_for(5ms);
  leader.ticket.fill(accepted_payload(0x123));
  waiter.join();

  EXPECT_EQ(got.outcome, Outcome::Coalesced);
  ASSERT_TRUE(got.payload);
  EXPECT_EQ(got.payload->domains_hash, 0x123u);
  EXPECT_EQ(cache.stats().coalesced, 1u);
}

TEST(ResultCache, AbandonedLeaderPromotesAWaiter) {
  ResultCache cache(8);
  const auto k = key_of(1, 1, 9);
  auto leader = cache.acquire(k, false);
  ASSERT_EQ(leader.outcome, Outcome::MissLeader);

  std::atomic<bool> waiting{false};
  ResultCache::LookupResult got;
  std::thread waiter([&] {
    waiting.store(true);
    got = cache.acquire(k, false);
  });
  while (!waiting.load()) std::this_thread::yield();
  std::this_thread::sleep_for(5ms);
  leader.ticket.abandon();  // failed parse: slot released, waiter wakes
  waiter.join();

  // The waiter retried and became the new leader (a crash never wedges
  // the key).
  EXPECT_EQ(got.outcome, Outcome::MissLeader);
  EXPECT_TRUE(got.ticket);
  got.ticket.abandon();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ResultCache, WaiterDeadlineExpires) {
  ResultCache cache(8);
  const auto k = key_of(1, 1, 11);
  auto leader = cache.acquire(k, false);
  ASSERT_EQ(leader.outcome, Outcome::MissLeader);

  // Same thread: the wait honours the deadline instead of blocking on
  // a leader that never fills.
  auto late = cache.acquire(k, false,
                            std::chrono::steady_clock::now() + 10ms);
  EXPECT_EQ(late.outcome, Outcome::WaitExpired);
  EXPECT_FALSE(late.payload);
}

TEST(ResultCache, EvictsLeastRecentlyUsedBeyondCapacity) {
  ResultCache cache(2);
  for (std::uint64_t h : {1u, 2u, 3u}) {
    auto r = cache.acquire(key_of(1, 1, h), false);
    ASSERT_EQ(r.outcome, Outcome::MissLeader);
    r.ticket.fill(accepted_payload(h));
  }
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().evictions, 1u);

  // Key 1 was the LRU entry and is gone; 2 and 3 survive.
  auto r1 = cache.acquire(key_of(1, 1, 1), false);
  EXPECT_EQ(r1.outcome, Outcome::MissLeader);
  r1.ticket.abandon();
  EXPECT_EQ(cache.acquire(key_of(1, 1, 2), false).outcome, Outcome::Hit);
  EXPECT_EQ(cache.acquire(key_of(1, 1, 3), false).outcome, Outcome::Hit);
}

TEST(ResultCache, DomainlessEntryBypassesAndUpgrades) {
  ResultCache cache(8);
  const auto k = key_of(1, 1, 5);
  auto r = cache.acquire(k, false);
  ASSERT_EQ(r.outcome, Outcome::MissLeader);
  r.ticket.fill(accepted_payload(0x5));  // no domains captured

  // A caller that needs domains cannot be served this entry: it parses
  // fresh and upgrades the slot.
  auto ask = cache.acquire(k, /*need_domains=*/true);
  EXPECT_EQ(ask.outcome, Outcome::Bypass);
  ResultCache::Payload full = accepted_payload(0x5);
  full.has_domains = true;
  full.domains.resize(3);
  cache.put(k, std::move(full));

  auto again = cache.acquire(k, true);
  EXPECT_EQ(again.outcome, Outcome::Hit);
  ASSERT_TRUE(again.payload);
  EXPECT_TRUE(again.payload->has_domains);
  // Domain-less callers keep hitting it too.
  EXPECT_EQ(cache.acquire(k, false).outcome, Outcome::Hit);
}

TEST(ResultCache, InvalidateTenantDropsOnlyRetiredEpochs) {
  ResultCache cache(8);
  for (auto [t, e, h] : {std::tuple{1, 1u, 10u}, {1, 1u, 11u},
                         {1, 2u, 12u}, {2, 1u, 13u}}) {
    auto r = cache.acquire(key_of(t, e, h), false);
    ASSERT_EQ(r.outcome, Outcome::MissLeader);
    r.ticket.fill(accepted_payload(h));
  }
  cache.invalidate_tenant(1, /*before_epoch=*/2);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().invalidated, 2u);
  // Tenant 1's epoch-2 entry and tenant 2 entirely are untouched.
  EXPECT_EQ(cache.acquire(key_of(1, 2, 12), false).outcome, Outcome::Hit);
  EXPECT_EQ(cache.acquire(key_of(2, 1, 13), false).outcome, Outcome::Hit);
}

// ---------------------------------------------------------------------
// Service-level contracts.
// ---------------------------------------------------------------------

ParseService::Options cached_service(int threads) {
  ParseService::Options opt;
  opt.threads = threads;
  opt.queue_capacity = 128;
  opt.enable_result_cache = true;
  return opt;
}

// The headline single-flight property: N threads submitting the same
// sentence concurrently produce exactly ONE engine parse — everyone
// else coalesces onto it (or hits the entry it filled) and all N
// responses are bit-identical.  TSan-clean by construction.
TEST(ResultCacheService, StampedeRunsOneParse) {
  auto bundle = grammars::make_toy_grammar();
  ParseService service(bundle.grammar, cached_service(4));

  constexpr int kThreads = 16;
  std::vector<ParseResponse> responses(kThreads);
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i)
      threads.emplace_back([&, i] {
        ParseRequest req;
        req.sentence = bundle.tag("The program runs");
        responses[i] = service.submit(std::move(req)).get();
      });
    for (auto& t : threads) t.join();
  }

  for (const auto& r : responses) {
    EXPECT_EQ(r.status, RequestStatus::Ok);
    EXPECT_TRUE(r.accepted);
    EXPECT_EQ(r.domains_hash, responses[0].domains_hash);
    EXPECT_EQ(r.alive_role_values, responses[0].alive_role_values);
  }
  const auto s = service.stats();
  EXPECT_EQ(s.cache.lookups, static_cast<std::uint64_t>(kThreads));
  EXPECT_EQ(s.cache.misses, 1u) << "stampede must run exactly one parse";
  EXPECT_EQ(s.cache.hits + s.cache.coalesced,
            static_cast<std::uint64_t>(kThreads - 1));
  // Exactly the non-leaders report being served from the cache.
  int cached = 0, coalesced = 0;
  for (const auto& r : responses) {
    cached += r.cached;
    coalesced += r.coalesced;
  }
  EXPECT_EQ(cached, kThreads - 1);
  EXPECT_EQ(coalesced, static_cast<int>(s.cache.coalesced));
}

// Bit-identity fuzz: over a generated corpus, a cache hit must be
// byte-identical to the miss that populated it AND to an uncached
// service's response — accepted flag, alive counts, domains hash, and
// the full domain bitsets.
TEST(ResultCacheService, HitsAreBitIdenticalToMisses) {
  auto bundle = grammars::make_english_grammar();
  auto copt = cached_service(2);
  copt.lexicon = &bundle.lexicon;
  ParseService cached(bundle.grammar, copt);
  ParseService::Options uopt;
  uopt.threads = 2;
  uopt.lexicon = &bundle.lexicon;
  ParseService uncached(bundle.grammar, uopt);

  grammars::SentenceGenerator gen(bundle, 2026);
  const engine::Backend backends[] = {engine::Backend::Serial,
                                      engine::Backend::Omp,
                                      engine::Backend::Pram,
                                      engine::Backend::Maspar,
                                      engine::Backend::Mesh};
  std::set<std::vector<std::string>> seen;
  for (int i = 0; i < 24; ++i) {
    // Unique sentences only: a repeat would turn the expected miss
    // into a hit and skew the counters below.
    std::vector<std::string> words;
    do {
      words = gen.generate(3 + i % 7);
    } while (!seen.insert(words).second);
    auto make = [&](engine::Backend b) {
      ParseRequest req;
      req.words = words;
      req.backend = b;
      req.capture_domains = true;
      return req;
    };
    // Miss (leader) on one backend, hit requested under another: the
    // cached payload must still match, by the engines' determinism.
    const auto miss =
        cached.submit(make(backends[i % 5])).get();
    const auto hit =
        cached.submit(make(backends[(i + 1) % 5])).get();
    const auto fresh =
        uncached.submit(make(backends[(i + 2) % 5])).get();

    ASSERT_EQ(miss.status, RequestStatus::Ok) << "sentence " << i;
    ASSERT_EQ(hit.status, RequestStatus::Ok);
    ASSERT_EQ(fresh.status, RequestStatus::Ok);
    EXPECT_FALSE(miss.cached);
    EXPECT_TRUE(hit.cached);
    EXPECT_FALSE(fresh.cached);
    EXPECT_EQ(hit.accepted, miss.accepted);
    EXPECT_EQ(hit.alive_role_values, miss.alive_role_values);
    EXPECT_EQ(hit.domains_hash, miss.domains_hash);
    EXPECT_EQ(hit.domains, miss.domains);
    EXPECT_EQ(fresh.accepted, miss.accepted);
    EXPECT_EQ(fresh.alive_role_values, miss.alive_role_values);
    EXPECT_EQ(fresh.domains_hash, miss.domains_hash);
    EXPECT_EQ(fresh.domains, miss.domains);
    // A cache hit reports which backend populated the entry.
    EXPECT_EQ(hit.served_backend, miss.served_backend);
  }
  const auto s = cached.stats();
  EXPECT_EQ(s.cache.hits, 24u);
  EXPECT_EQ(s.cache.misses, 24u);
}

// Distinct sentences never collide: every unique input is its own miss.
TEST(ResultCacheService, DistinctSentencesMissIndependently) {
  auto bundle = grammars::make_english_grammar();
  auto opt = cached_service(2);
  opt.lexicon = &bundle.lexicon;
  ParseService service(bundle.grammar, opt);
  grammars::SentenceGenerator gen(bundle, 7);

  std::set<std::uint64_t> hashes;
  std::vector<ParseRequest> reqs;
  for (int i = 0; i < 12; ++i) {
    ParseRequest req;
    req.words = gen.generate(4 + i % 5);
    reqs.push_back(req);
  }
  auto responses = service.parse_batch(std::move(reqs));
  for (const auto& r : responses) {
    ASSERT_EQ(r.status, RequestStatus::Ok);
    hashes.insert(r.domains_hash);
  }
  const auto s = service.stats();
  EXPECT_EQ(s.cache.lookups, 12u);
  // Generated sentences may repeat; misses == number of unique inputs.
  EXPECT_EQ(s.cache.hits + s.cache.coalesced + s.cache.misses, 12u);
  EXPECT_GE(s.cache.misses, hashes.size());
}

}  // namespace
