// BoundedQueue: FIFO order, capacity back-pressure, close semantics,
// and a multi-producer/multi-consumer stress run.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

#include "serve/work_queue.h"

namespace {

using parsec::serve::BoundedQueue;

TEST(WorkQueue, FifoSingleThread) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_EQ(q.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(WorkQueue, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));  // full
  EXPECT_EQ(q.try_pop().value(), 1);
  EXPECT_TRUE(q.try_push(3));
}

TEST(WorkQueue, PushBlocksUntilRoom) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(2));  // blocks until the consumer pops
    second_pushed = true;
  });
  // The producer cannot finish while the queue is full.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load());
  EXPECT_EQ(q.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(WorkQueue, CloseDrainsThenEnds) {
  BoundedQueue<int> q(8);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  q.close();
  EXPECT_TRUE(q.closed());
  EXPECT_FALSE(q.push(3));      // no new work
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.pop().value(), 1);  // but the backlog drains
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());  // closed + drained
}

TEST(WorkQueue, CloseWakesBlockedConsumers) {
  BoundedQueue<int> q(4);
  std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  consumer.join();
}

TEST(WorkQueue, MpmcStressDeliversEverythingOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> q(16);  // small capacity to force contention
  std::atomic<long long> sum{0};
  std::atomic<int> received{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c)
    consumers.emplace_back([&] {
      while (auto v = q.pop()) {
        sum += *v;
        ++received;
      }
    });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i)
        ASSERT_TRUE(q.push(p * kPerProducer + i));
    });
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  const int n = kProducers * kPerProducer;
  EXPECT_EQ(received.load(), n);
  EXPECT_EQ(sum.load(), static_cast<long long>(n) * (n - 1) / 2);
}

}  // namespace
