// ParseService degradation paths: worker-boundary exception
// containment, pre-expired deadlines, load shedding, serial fallback
// (bit-identity preserved), the per-backend circuit breaker, the
// stuck-worker watchdog, shutdown races, and a seeded chaos run that
// checks the exactly-once status accounting end to end.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "cdg/parser.h"
#include "grammars/toy_grammar.h"
#include "obs/metrics.h"
#include "parsec/backend.h"
#include "resil/fault_plan.h"
#include "serve/parse_service.h"

namespace {

using namespace parsec;
using namespace std::chrono_literals;
using resil::FaultPlan;
using resil::FaultSpec;
using resil::ScopedFaultPlan;
using serve::ParseRequest;
using serve::ParseResponse;
using serve::ParseService;
using serve::RequestStatus;

ParseService::Options small_service(int threads) {
  ParseService::Options opt;
  opt.threads = threads;
  opt.queue_capacity = 64;
  return opt;
}

/// Reads one counter sample out of Prometheus exposition text.
double scraped_value(const std::string& text, const std::string& sample) {
  const std::string needle = sample + " ";
  const auto pos = text.find(needle);
  if (pos == std::string::npos) return -1.0;
  return std::stod(text.substr(pos + needle.size()));
}

TEST(ParseServiceResilience, UnknownWordIsBadRequestNotACrash) {
  auto bundle = grammars::make_toy_grammar();
  ParseService::Options opt = small_service(2);
  opt.lexicon = &bundle.lexicon;
  ParseService service(bundle.grammar, opt);
  ParseRequest req;
  req.words = {"The", "flurble", "runs"};
  const ParseResponse resp = service.submit(std::move(req)).get();
  EXPECT_EQ(resp.status, RequestStatus::BadRequest);
  EXPECT_FALSE(resp.accepted);
  EXPECT_NE(resp.error.find("flurble"), std::string::npos) << resp.error;
  EXPECT_EQ(service.stats().bad_requests, 1u);

  // The service is still healthy: a good request right after parses.
  ParseRequest good;
  good.words = {"The", "program", "runs"};
  const ParseResponse ok = service.submit(std::move(good)).get();
  EXPECT_EQ(ok.status, RequestStatus::Ok);
  EXPECT_TRUE(ok.accepted);
}

TEST(ParseServiceResilience, EmptySentenceIsBadRequest) {
  auto bundle = grammars::make_toy_grammar();
  ParseService service(bundle.grammar, small_service(2));
  ParseRequest req;  // empty sentence, no words
  const ParseResponse resp = service.submit(std::move(req)).get();
  EXPECT_EQ(resp.status, RequestStatus::BadRequest);
  EXPECT_NE(resp.error.find("empty sentence"), std::string::npos)
      << resp.error;
}

TEST(ParseServiceResilience, RawWordsWithoutLexiconIsBadRequest) {
  auto bundle = grammars::make_toy_grammar();
  ParseService service(bundle.grammar, small_service(1));
  ParseRequest req;
  req.words = {"The", "program", "runs"};
  const ParseResponse resp = service.submit(std::move(req)).get();
  EXPECT_EQ(resp.status, RequestStatus::BadRequest);
  EXPECT_NE(resp.error.find("lexicon"), std::string::npos);
}

TEST(ParseServiceResilience, PreExpiredDeadlineShortCircuitsAtSubmit) {
  auto bundle = grammars::make_toy_grammar();
  obs::Registry registry;
  ParseService::Options opt = small_service(2);
  opt.metrics = &registry;
  ParseService service(bundle.grammar, opt);
  std::vector<ParseRequest> reqs;
  for (int i = 0; i < 8; ++i) {
    ParseRequest r;
    r.sentence = bundle.tag("The program runs");
    r.deadline = -1ms;  // expired before submission
    reqs.push_back(std::move(r));
  }
  const auto responses = service.parse_batch(std::move(reqs));
  for (const auto& r : responses) {
    EXPECT_EQ(r.status, RequestStatus::Timeout);
    EXPECT_EQ(r.worker, -1);  // never dequeued
  }
  const serve::ServiceStats s = service.stats();
  EXPECT_EQ(s.submitted, 8u);
  EXPECT_EQ(s.timeouts, 8u);
  // No backend ran: the whole batch was answered at submit.
  for (std::size_t b = 0; b < engine::kNumBackends; ++b)
    EXPECT_EQ(s.backends[b].requests, 0u) << b;
  EXPECT_EQ(scraped_value(service.metrics_text(),
                          "parsec_serve_requests_total{status=\"timeout\"}"),
            8.0);
}

TEST(ParseServiceResilience, SheddingAnswersOverloadedInsteadOfBlocking) {
  auto bundle = grammars::make_toy_grammar();
  // One slow worker, a two-slot queue, and a burst: with shed_load the
  // overflow is answered Overloaded immediately instead of blocking the
  // submitter.
  FaultPlan plan;
  FaultSpec latency;
  latency.every_nth = 1;
  latency.param = 0.01;  // 10ms per engine checkpoint
  plan.arm("engine.latency", latency);
  ScopedFaultPlan scope(plan);

  ParseService::Options opt = small_service(1);
  opt.queue_capacity = 2;
  opt.shed_load = true;
  ParseService service(bundle.grammar, opt);
  std::vector<ParseRequest> reqs;
  for (int i = 0; i < 16; ++i) {
    ParseRequest r;
    r.sentence = bundle.tag("The program runs");
    reqs.push_back(std::move(r));
  }
  const auto responses = service.parse_batch(std::move(reqs));
  int ok = 0, shed = 0;
  for (const auto& r : responses) {
    if (r.status == RequestStatus::Ok) ++ok;
    if (r.status == RequestStatus::Overloaded) ++shed;
  }
  EXPECT_EQ(ok + shed, 16);
  EXPECT_GE(shed, 1);
  EXPECT_EQ(service.stats().overloaded, static_cast<std::uint64_t>(shed));
}

TEST(ParseServiceResilience, SerialFallbackPreservesBitIdentity) {
  auto bundle = grammars::make_toy_grammar();
  // Reference fixpoint from a plain serial parse.
  cdg::SequentialParser seq(bundle.grammar);
  cdg::Network net = seq.make_network(bundle.tag("The program runs"));
  seq.parse(net);
  std::vector<util::DynBitset> reference;
  for (int r = 0; r < net.num_roles(); ++r)
    reference.emplace_back(net.domain(r));

  // Every MasPar power-on check fails: the maspar backend hard-faults,
  // and the service retries on Serial.
  FaultPlan plan;
  FaultSpec dead;
  dead.every_nth = 1;
  plan.arm("maspar.dead_pe", dead);
  ScopedFaultPlan scope(plan);

  ParseService::Options opt = small_service(1);
  opt.enable_breaker = false;  // isolate the fallback path
  ParseService service(bundle.grammar, opt);
  ParseRequest req;
  req.sentence = bundle.tag("The program runs");
  req.backend = engine::Backend::Maspar;
  req.capture_domains = true;
  const ParseResponse resp = service.submit(std::move(req)).get();
  EXPECT_EQ(resp.status, RequestStatus::Ok);
  EXPECT_TRUE(resp.accepted);
  EXPECT_TRUE(resp.degraded);
  EXPECT_EQ(resp.served_backend, engine::Backend::Serial);
  EXPECT_EQ(resp.domains_hash, engine::hash_domains(reference));
  ASSERT_EQ(resp.domains.size(), reference.size());
  for (std::size_t r = 0; r < reference.size(); ++r)
    EXPECT_EQ(resp.domains[r], reference[r]) << "role " << r;

  const serve::ServiceStats s = service.stats();
  EXPECT_EQ(s.fallback_retries, 1u);
  EXPECT_EQ(s.fallback_ok, 1u);
  // Both attempts are visible in the engine family: the maspar attempt
  // faulted, the serial one accepted.
  EXPECT_EQ(
      s.backends[static_cast<std::size_t>(engine::Backend::Maspar)].faulted,
      1u);
  EXPECT_EQ(
      s.backends[static_cast<std::size_t>(engine::Backend::Serial)].accepted,
      1u);
}

TEST(ParseServiceResilience, FaultWithoutRetryIsFaulted) {
  auto bundle = grammars::make_toy_grammar();
  FaultPlan plan;
  FaultSpec dead;
  dead.every_nth = 1;
  plan.arm("maspar.dead_pe", dead);
  ScopedFaultPlan scope(plan);

  ParseService::Options opt = small_service(1);
  opt.retry_serial = false;
  opt.enable_breaker = false;
  ParseService service(bundle.grammar, opt);
  ParseRequest req;
  req.sentence = bundle.tag("The program runs");
  req.backend = engine::Backend::Maspar;
  const ParseResponse resp = service.submit(std::move(req)).get();
  EXPECT_EQ(resp.status, RequestStatus::Faulted);
  EXPECT_FALSE(resp.error.empty());
  EXPECT_EQ(service.stats().faulted, 1u);
}

TEST(ParseServiceResilience, BreakerTripsAndReroutesToSerial) {
  auto bundle = grammars::make_toy_grammar();
  FaultPlan plan;
  FaultSpec dead;
  dead.every_nth = 1;
  plan.arm("maspar.dead_pe", dead);
  ScopedFaultPlan scope(plan);

  ParseService::Options opt = small_service(2);
  opt.breaker.trip_after = 2;
  opt.breaker.cooldown = 10s;  // stays open for the whole test
  ParseService service(bundle.grammar, opt);
  for (int i = 0; i < 5; ++i) {
    ParseRequest req;
    req.sentence = bundle.tag("The program runs");
    req.backend = engine::Backend::Maspar;
    const ParseResponse resp = service.submit(std::move(req)).get();
    // Faulted attempts fall back to Serial; once the breaker is open
    // the sick backend is not even tried.
    EXPECT_EQ(resp.status, RequestStatus::Ok) << i;
    EXPECT_TRUE(resp.degraded) << i;
    EXPECT_EQ(resp.served_backend, engine::Backend::Serial) << i;
  }
  const serve::ServiceStats s = service.stats();
  EXPECT_EQ(s.breaker_trips, 1u);
  EXPECT_EQ(s.fallback_retries, 2u);  // only the pre-trip faults retried
  EXPECT_EQ(s.breaker_rerouted, 3u);  // the rest skipped maspar entirely
  EXPECT_EQ(
      s.backends[static_cast<std::size_t>(engine::Backend::Maspar)].requests,
      2u);
}

TEST(ParseServiceResilience, BreakerHalfOpenProbeRecovers) {
  auto bundle = grammars::make_toy_grammar();
  // One transient fault: the first arena growth fails, everything after
  // succeeds — the breaker must recover through its half-open probe.
  FaultPlan plan;
  FaultSpec alloc;
  alloc.every_nth = 1;
  alloc.max_fires = 1;
  plan.arm("arena.alloc", alloc);
  ScopedFaultPlan scope(plan);

  ParseService::Options opt = small_service(1);
  opt.breaker.trip_after = 1;
  opt.breaker.cooldown = 50ms;
  ParseService service(bundle.grammar, opt);

  auto one = [&](RequestStatus want_status, engine::Backend want_served,
                 bool want_degraded) {
    ParseRequest req;
    req.sentence = bundle.tag("The program runs");
    req.backend = engine::Backend::Pram;
    const ParseResponse resp = service.submit(std::move(req)).get();
    EXPECT_EQ(resp.status, want_status);
    EXPECT_EQ(resp.served_backend, want_served);
    EXPECT_EQ(resp.degraded, want_degraded);
  };
  // 1: transient fault -> trip -> serial fallback.
  one(RequestStatus::Ok, engine::Backend::Serial, true);
  // 2: breaker open -> rerouted without trying pram.
  one(RequestStatus::Ok, engine::Backend::Serial, true);
  std::this_thread::sleep_for(80ms);
  // 3: cooldown elapsed -> half-open probe -> pram is healthy again.
  one(RequestStatus::Ok, engine::Backend::Pram, false);
  // 4: breaker closed, traffic flows normally.
  one(RequestStatus::Ok, engine::Backend::Pram, false);
  EXPECT_EQ(service.stats().breaker_trips, 1u);
}

TEST(ParseServiceResilience, WatchdogCancelsAStuckWorker) {
  auto bundle = grammars::make_toy_grammar();
  // The first engine checkpoint hangs for up to 10s; the watchdog must
  // reclaim the worker long before that bound.
  FaultPlan plan;
  FaultSpec hang;
  hang.every_nth = 1;
  hang.max_fires = 1;
  hang.param = 10.0;
  plan.arm("engine.hang", hang);
  ScopedFaultPlan scope(plan);

  ParseService::Options opt = small_service(1);
  opt.retry_serial = false;
  opt.enable_breaker = false;
  opt.watchdog_stall = 100ms;
  opt.watchdog_interval = 10ms;
  ParseService service(bundle.grammar, opt);
  ParseRequest req;
  req.sentence = bundle.tag("The program runs");
  const auto t0 = std::chrono::steady_clock::now();
  const ParseResponse resp = service.submit(std::move(req)).get();
  const double waited =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_EQ(resp.status, RequestStatus::Faulted);
  EXPECT_NE(resp.error.find("watchdog"), std::string::npos) << resp.error;
  EXPECT_LT(waited, 5.0);  // reclaimed at ~100ms, not the 10s hang bound
  EXPECT_EQ(service.stats().watchdog_stalls, 1u);
}

TEST(ParseServiceShutdownRace, ConcurrentSubmitAndShutdown) {
  auto bundle = grammars::make_toy_grammar();
  auto service =
      std::make_unique<ParseService>(bundle.grammar, small_service(2));
  std::atomic<int> resolved{0};
  std::vector<std::thread> submitters;
  std::atomic<bool> go{false};
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < 32; ++i) {
        ParseRequest r;
        r.sentence = bundle.tag("The program runs");
        const ParseResponse resp = service->submit(std::move(r)).get();
        // Every future resolves with a structured status.
        EXPECT_TRUE(resp.status == RequestStatus::Ok ||
                    resp.status == RequestStatus::ShuttingDown)
            << static_cast<int>(resp.status);
        resolved.fetch_add(1);
      }
    });
  }
  go.store(true);
  std::this_thread::sleep_for(1ms);
  service->shutdown();  // races the submitters
  for (auto& t : submitters) t.join();
  EXPECT_EQ(resolved.load(), 4 * 32);
}

TEST(ParseServiceShutdownRace, MidCallbackShutdownInvokesEveryCallback) {
  auto bundle = grammars::make_toy_grammar();
  std::atomic<int> called{0};
  {
    ParseService service(bundle.grammar, small_service(2));
    for (int i = 0; i < 16; ++i) {
      ParseRequest r;
      r.sentence = bundle.tag("The program runs");
      service.submit(std::move(r),
                     [&](ParseResponse) { called.fetch_add(1); });
    }
    service.shutdown();  // drain-then-join while callbacks may be running
  }
  EXPECT_EQ(called.load(), 16);
}

TEST(ParseServiceShutdownRace, DestructorWhileQueuedResolvesEverything) {
  auto bundle = grammars::make_toy_grammar();
  std::vector<std::future<ParseResponse>> futures;
  {
    ParseService service(bundle.grammar, small_service(1));
    for (int i = 0; i < 32; ++i) {
      ParseRequest r;
      r.sentence = bundle.tag("The program runs");
      futures.push_back(service.submit(std::move(r)));
    }
    // Destructor runs with most of the batch still queued.
  }
  for (auto& f : futures) {
    const ParseResponse resp = f.get();
    EXPECT_TRUE(resp.status == RequestStatus::Ok ||
                resp.status == RequestStatus::ShuttingDown);
  }
}

TEST(ParseServiceChaos, SeededChaosRunAccountsEveryRequestExactlyOnce) {
  auto bundle = grammars::make_toy_grammar();
  const char* texts[] = {"The program runs", "A dog halts",
                         "program The runs"};
  // Reference hashes: the serial fixpoint per sentence shape.
  cdg::SequentialParser seq(bundle.grammar);
  std::uint64_t reference[3];
  for (int i = 0; i < 3; ++i) {
    cdg::Network net = seq.make_network(bundle.tag(texts[i]));
    seq.parse(net);
    std::vector<util::DynBitset> domains;
    for (int r = 0; r < net.num_roles(); ++r)
      domains.emplace_back(net.domain(r));
    reference[i] = engine::hash_domains(domains);
  }

  FaultPlan plan(2026);
  FaultSpec alloc;
  alloc.probability = 0.02;
  plan.arm("arena.alloc", alloc);
  FaultSpec router;
  router.probability = 0.01;
  plan.arm("maspar.router", router);
  FaultSpec dead;
  dead.probability = 0.0005;  // a few dead PEs per machine: remap, not fault
  plan.arm("maspar.dead_pe", dead);
  FaultSpec latency;
  latency.probability = 0.01;
  latency.param = 0.0;
  plan.arm("engine.latency", latency);
  ScopedFaultPlan scope(plan);

  obs::Registry registry;
  ParseService::Options opt = small_service(4);
  opt.metrics = &registry;
  opt.watchdog_stall = 2s;  // active but far above normal latency
  ParseService service(bundle.grammar, opt);

  const int kRequests = 500;
  std::vector<ParseRequest> reqs;
  std::vector<int> shape;
  for (int i = 0; i < kRequests; ++i) {
    ParseRequest r;
    const int which = i % 3;
    r.sentence = bundle.tag(texts[which]);
    r.backend = engine::kAllBackends[static_cast<std::size_t>(i) %
                                     engine::kNumBackends];
    shape.push_back(which);
    reqs.push_back(std::move(r));
  }
  const auto responses = service.parse_batch(std::move(reqs));
  ASSERT_EQ(responses.size(), static_cast<std::size_t>(kRequests));

  std::uint64_t by_status[serve::kNumRequestStatuses] = {};
  for (int i = 0; i < kRequests; ++i) {
    const ParseResponse& r = responses[i];
    ++by_status[static_cast<std::size_t>(r.status)];
    // Structured outcomes only — no crash, no mystery status.
    ASSERT_TRUE(r.status == RequestStatus::Ok ||
                r.status == RequestStatus::Faulted)
        << static_cast<int>(r.status);
    // Degraded or not, an Ok response lands on the one true fixpoint.
    if (r.status == RequestStatus::Ok)
      EXPECT_EQ(r.domains_hash,
                reference[static_cast<std::size_t>(shape[
                    static_cast<std::size_t>(i)])])
          << i;
  }

  // Exactly-once accounting: the disjoint serve status counters sum to
  // the number of submitted requests, in the struct and in the scrape.
  const serve::ServiceStats s = service.stats();
  EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(s.completed, static_cast<std::uint64_t>(kRequests));
  const std::string text = service.metrics_text();
  double scrape_sum = 0.0;
  for (const char* status :
       {"ok", "timeout", "shutting-down", "bad-request", "overloaded",
        "faulted"}) {
    const double v = scraped_value(
        text, std::string("parsec_serve_requests_total{status=\"") + status +
                  "\"}");
    ASSERT_GE(v, 0.0) << status;
    scrape_sum += v;
  }
  EXPECT_EQ(scrape_sum, static_cast<double>(kRequests));
  EXPECT_EQ(by_status[static_cast<std::size_t>(RequestStatus::Ok)] +
                by_status[static_cast<std::size_t>(RequestStatus::Faulted)],
            static_cast<std::uint64_t>(kRequests));
  // The plan actually fired (otherwise this test degenerates to a
  // plain throughput run).
  EXPECT_GT(plan.total_fires(), 0u);
}

}  // namespace
