// GrammarRegistry: epoch-versioned hot reload.  Covers the epoch /
// tenant-id protocol, validate-before-publish (a broken reload leaves
// the old snapshot serving), per-request resolution, epoch pinning of
// in-flight parses during a reload, the structural cache invalidation
// that the epoch key provides, and per-tenant admission quotas.  The
// threaded tests run under TSan in CI.
#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <future>
#include <string>
#include <vector>

#include "grammars/grammar_io.h"
#include "grammars/toy_grammar.h"
#include "serve/grammar_registry.h"
#include "serve/parse_service.h"

namespace {

using namespace parsec;
using namespace std::chrono_literals;
using serve::GrammarRegistry;
using serve::ParseRequest;
using serve::ParseResponse;
using serve::ParseService;
using serve::RequestStatus;

// The toy grammar with one extra constraint that contradicts
// verbs-are-ungoverned-roots: every ROOT must be governed, so any
// sentence containing a verb — "The program runs" included — is now
// rejected.  A behavioural change that is trivially observable.
grammars::CdgBundle make_strict_toy() {
  std::string text = save_cdg_bundle(grammars::make_toy_grammar());
  const std::string extra =
      "  (constraint no-ungoverned-roots\n"
      "    (if (eq (lab x) ROOT) (not (eq (mod x) nil))))\n";
  const auto at = text.find(")\n(lexicon");
  EXPECT_NE(at, std::string::npos);
  text.insert(at, extra);
  return grammars::load_cdg_bundle(text);
}

TEST(GrammarRegistry, PublishBumpsEpochAndKeepsTenantId) {
  GrammarRegistry reg;
  auto v1 = reg.publish("toy", grammars::make_toy_grammar());
  EXPECT_EQ(v1->epoch(), 1u);
  EXPECT_EQ(reg.epoch("toy"), 1u);

  auto v2 = reg.publish("toy", make_strict_toy());
  EXPECT_EQ(v2->epoch(), 2u);
  EXPECT_EQ(v2->tenant_id(), v1->tenant_id());
  EXPECT_EQ(reg.epoch("toy"), 2u);

  // A different name is a different tenant with its own epoch line.
  auto other = reg.publish("other", grammars::make_toy_grammar());
  EXPECT_EQ(other->epoch(), 1u);
  EXPECT_NE(other->tenant_id(), v1->tenant_id());
  EXPECT_EQ(reg.size(), 2u);

  // The old snapshot object is immutable; holders still see epoch 1.
  EXPECT_EQ(v1->epoch(), 1u);
  EXPECT_EQ(reg.snapshot("toy")->epoch(), 2u);
  EXPECT_EQ(reg.snapshot("nope"), nullptr);
  EXPECT_EQ(reg.epoch("nope"), 0u);
}

TEST(GrammarRegistry, FailedReloadLeavesOldSnapshotServing) {
  GrammarRegistry reg;
  reg.publish("toy", grammars::make_toy_grammar());

  const std::string path = ::testing::TempDir() + "/bad_reload.cdg";
  {
    std::ofstream out(path);
    out << "(grammar\n  (categories det)\n  (bogus-clause 1))\n";
  }
  EXPECT_THROW(reg.load_file("toy", path), grammars::GrammarIoError);

  // Old snapshot intact and functional.
  auto snap = reg.snapshot("toy");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->epoch(), 1u);
  ParseService service(reg, {});
  ParseRequest req;
  req.words = {"The", "program", "runs"};
  req.grammar = "toy";
  auto resp = service.submit(std::move(req)).get();
  EXPECT_EQ(resp.status, RequestStatus::Ok);
  EXPECT_TRUE(resp.accepted);
  EXPECT_EQ(resp.grammar_epoch, 1u);
}

TEST(GrammarRegistry, PublishHooksRunAfterSwap) {
  GrammarRegistry reg;
  std::vector<std::pair<std::string, std::uint64_t>> seen;
  reg.add_publish_hook([&](const serve::GrammarBundle& b) {
    seen.emplace_back(b.name(), b.epoch());
  });
  reg.publish("a", grammars::make_toy_grammar());
  reg.publish("a", grammars::make_toy_grammar());
  reg.publish("b", grammars::make_toy_grammar());
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair<std::string, std::uint64_t>{"a", 1}));
  EXPECT_EQ(seen[1], (std::pair<std::string, std::uint64_t>{"a", 2}));
  EXPECT_EQ(seen[2], (std::pair<std::string, std::uint64_t>{"b", 1}));
}

TEST(GrammarRegistry, ServiceResolvesGrammarsPerRequest) {
  GrammarRegistry reg;
  reg.publish("permissive", grammars::make_toy_grammar());
  ParseService::Options opt;
  opt.threads = 2;
  ParseService service(reg, opt);

  // Published AFTER service construction: resolution is per request.
  reg.publish("strict", make_strict_toy());

  auto ask = [&](const std::string& grammar) {
    ParseRequest req;
    req.words = {"The", "program", "runs"};
    req.grammar = grammar;
    return service.submit(std::move(req)).get();
  };
  auto ok = ask("permissive");
  EXPECT_EQ(ok.status, RequestStatus::Ok);
  EXPECT_TRUE(ok.accepted);
  auto strict = ask("strict");
  EXPECT_EQ(strict.status, RequestStatus::Ok);
  EXPECT_FALSE(strict.accepted);
  auto unknown = ask("nope");
  EXPECT_EQ(unknown.status, RequestStatus::BadRequest);
  EXPECT_NE(unknown.error.find("unknown grammar"), std::string::npos);
}

// Hot reload during a live batch: requests admitted before the publish
// pin the epoch-1 snapshot and parse under it even when they execute
// after the swap; requests admitted after see epoch 2.  No torn state,
// no mixed results — TSan-clean.
TEST(GrammarRegistryReload, InFlightParsesKeepTheirPinnedEpoch) {
  GrammarRegistry reg;
  reg.publish("toy", grammars::make_toy_grammar());
  ParseService::Options opt;
  opt.threads = 2;
  opt.queue_capacity = 64;
  ParseService service(reg, opt);

  // Queue a burst, then reload while it is (likely still) in flight.
  std::vector<std::future<ParseResponse>> inflight;
  for (int i = 0; i < 16; ++i) {
    ParseRequest req;
    req.words = {"The", "program", "runs"};
    req.grammar = "toy";
    inflight.push_back(service.submit(std::move(req)));
  }
  reg.publish("toy", make_strict_toy());

  for (auto& f : inflight) {
    auto r = f.get();
    EXPECT_EQ(r.status, RequestStatus::Ok);
    EXPECT_TRUE(r.accepted) << "epoch-1 request saw the new grammar";
    EXPECT_EQ(r.grammar_epoch, 1u);
  }

  ParseRequest after;
  after.words = {"The", "program", "runs"};
  after.grammar = "toy";
  auto r2 = service.submit(std::move(after)).get();
  EXPECT_EQ(r2.status, RequestStatus::Ok);
  EXPECT_FALSE(r2.accepted) << "post-reload request must see epoch 2";
  EXPECT_EQ(r2.grammar_epoch, 2u);
}

// The cache epoch key makes invalidation structural: entries cached
// under epoch 1 are unreachable from epoch-2 requests, so a reload can
// never serve a stale (pre-reload) result.
TEST(GrammarRegistryReload, StaleCacheEntriesAreNeverServed) {
  GrammarRegistry reg;
  reg.publish("toy", grammars::make_toy_grammar());
  ParseService::Options opt;
  opt.threads = 2;
  opt.enable_result_cache = true;
  ParseService service(reg, opt);

  auto ask = [&] {
    ParseRequest req;
    req.words = {"The", "program", "runs"};
    req.grammar = "toy";
    return service.submit(std::move(req)).get();
  };
  auto miss = ask();
  EXPECT_TRUE(miss.accepted);
  EXPECT_FALSE(miss.cached);
  auto hit = ask();
  EXPECT_TRUE(hit.accepted);
  EXPECT_TRUE(hit.cached);
  EXPECT_EQ(hit.grammar_epoch, 1u);

  reg.publish("toy", make_strict_toy());

  // Same sentence, new epoch: the cached acceptance MUST NOT be served.
  auto fresh = ask();
  EXPECT_EQ(fresh.status, RequestStatus::Ok);
  EXPECT_FALSE(fresh.cached);
  EXPECT_FALSE(fresh.accepted);
  EXPECT_EQ(fresh.grammar_epoch, 2u);

  const auto s = service.stats();
  EXPECT_GE(s.cache.invalidated, 1u)
      << "epoch bump should have dropped the retired entries";
}

// GrammarBundle::max_inflight maps to Overloaded.  Deterministic
// set-up: one worker, blocked inside a callback after its request
// released its quota slot; further admitted requests hold slots while
// queued, so the (quota+1)-th submit is rejected inline.
TEST(GrammarRegistryQuota, TenantQuotaMapsToOverloaded) {
  GrammarRegistry reg;
  GrammarRegistry::PublishOptions popt;
  popt.max_inflight = 2;
  reg.publish("toy", grammars::make_toy_grammar(), popt);

  ParseService::Options opt;
  opt.threads = 1;
  opt.queue_capacity = 16;
  ParseService service(reg, opt);

  auto make = [] {
    ParseRequest req;
    req.words = {"The", "program", "runs"};
    req.grammar = "toy";
    return req;
  };

  // Block the only worker (after request 0 released its slot).
  std::promise<void> entered, release;
  service.submit(make(), [&](ParseResponse) {
    entered.set_value();
    release.get_future().wait();
  });
  entered.get_future().wait();

  // Two queued requests hold both quota slots...
  auto f1 = service.submit(make());
  auto f2 = service.submit(make());
  // ...so the third is shed inline.
  auto over = service.submit(make()).get();
  EXPECT_EQ(over.status, RequestStatus::Overloaded);
  EXPECT_NE(over.error.find("quota"), std::string::npos);

  release.set_value();
  EXPECT_EQ(f1.get().status, RequestStatus::Ok);
  EXPECT_EQ(f2.get().status, RequestStatus::Ok);
  EXPECT_EQ(service.stats().overloaded, 1u);
}

}  // namespace
