// ParseService: batch ordering, deadlines, shutdown, callbacks, stats,
// per-worker scratch reuse, and the headline determinism property —
// batched parses are byte-identical to single-threaded parses on every
// backend.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>

#include <string>
#include <vector>

#include "cdg/parser.h"
#include "grammars/english_grammar.h"
#include "obs/metrics.h"
#include "grammars/sentence_gen.h"
#include "grammars/toy_grammar.h"
#include "parsec/backend.h"
#include "serve/parse_service.h"

namespace {

using namespace parsec;
using namespace std::chrono_literals;
using serve::ParseRequest;
using serve::ParseResponse;
using serve::ParseService;
using serve::RequestStatus;

ParseService::Options small_service(int threads) {
  ParseService::Options opt;
  opt.threads = threads;
  opt.queue_capacity = 64;
  return opt;
}

TEST(ParseService, AcceptsAndRejectsLikeTheSequentialParser) {
  auto bundle = grammars::make_toy_grammar();
  ParseService service(bundle.grammar, small_service(2));
  ParseRequest ok;
  ok.sentence = bundle.tag("The program runs");
  ParseRequest bad;
  bad.sentence = bundle.tag("program The runs");
  auto f1 = service.submit(std::move(ok));
  auto f2 = service.submit(std::move(bad));
  const ParseResponse r1 = f1.get(), r2 = f2.get();
  EXPECT_EQ(r1.status, RequestStatus::Ok);
  EXPECT_TRUE(r1.accepted);
  EXPECT_EQ(r2.status, RequestStatus::Ok);
  EXPECT_FALSE(r2.accepted);
}

TEST(ParseService, BatchResultsComeBackInInputOrder) {
  auto bundle = grammars::make_toy_grammar();
  ParseService service(bundle.grammar, small_service(4));
  // Alternating accept/reject pattern; the response order must mirror
  // the request order no matter which worker finishes first.
  std::vector<ParseRequest> reqs;
  for (int i = 0; i < 24; ++i) {
    ParseRequest r;
    r.sentence = bundle.tag(i % 2 == 0 ? "The program runs"
                                       : "program The runs");
    reqs.push_back(std::move(r));
  }
  const auto responses = service.parse_batch(std::move(reqs));
  ASSERT_EQ(responses.size(), 24u);
  for (int i = 0; i < 24; ++i) {
    EXPECT_EQ(responses[i].status, RequestStatus::Ok) << i;
    EXPECT_EQ(responses[i].accepted, i % 2 == 0) << i;
  }
}

TEST(ParseService, BatchedParsesByteMatchSingleThreadedOnEveryBackend) {
  auto bundle = grammars::make_toy_grammar();
  const char* texts[] = {"The program runs", "A dog halts",
                         "program The runs"};
  // Reference: plain single-threaded sequential parse to the fixpoint.
  cdg::SequentialParser seq(bundle.grammar);
  std::vector<std::vector<util::DynBitset>> reference;
  std::vector<bool> ref_accepted;
  for (const char* text : texts) {
    cdg::Network net = seq.make_network(bundle.tag(text));
    ref_accepted.push_back(seq.parse(net).accepted);
    std::vector<util::DynBitset> domains;
    for (int r = 0; r < net.num_roles(); ++r) domains.emplace_back(net.domain(r));
    reference.push_back(std::move(domains));
  }

  ParseService service(bundle.grammar, small_service(4));
  for (engine::Backend b : engine::kAllBackends) {
    std::vector<ParseRequest> reqs;
    for (const char* text : texts) {
      ParseRequest r;
      r.sentence = bundle.tag(text);
      r.backend = b;
      r.capture_domains = true;
      reqs.push_back(std::move(r));
    }
    const auto responses = service.parse_batch(std::move(reqs));
    ASSERT_EQ(responses.size(), std::size(texts));
    for (std::size_t i = 0; i < responses.size(); ++i) {
      SCOPED_TRACE(std::string(engine::to_string(b)) + " / " + texts[i]);
      EXPECT_EQ(responses[i].status, RequestStatus::Ok);
      EXPECT_EQ(responses[i].accepted, ref_accepted[i]);
      EXPECT_EQ(responses[i].domains_hash, engine::hash_domains(reference[i]));
      ASSERT_EQ(responses[i].domains.size(), reference[i].size());
      for (std::size_t r = 0; r < reference[i].size(); ++r)
        EXPECT_EQ(responses[i].domains[r], reference[i][r]) << "role " << r;
    }
  }
}

TEST(ParseService, SerialAc4PathReachesTheSameFixpoint) {
  auto bundle = grammars::make_toy_grammar();
  cdg::SequentialParser seq(bundle.grammar);
  cdg::Network net = seq.make_network(bundle.tag("The program runs"));
  seq.parse(net);
  std::vector<util::DynBitset> reference;
  for (int r = 0; r < net.num_roles(); ++r) reference.emplace_back(net.domain(r));

  ParseService::Options opt = small_service(2);
  opt.engines.serial_ac4 = true;
  ParseService service(bundle.grammar, opt);
  ParseRequest req;
  req.sentence = bundle.tag("The program runs");
  req.capture_domains = true;
  const ParseResponse resp = service.submit(std::move(req)).get();
  EXPECT_TRUE(resp.accepted);
  EXPECT_EQ(resp.domains_hash, engine::hash_domains(reference));
}

TEST(ParseService, ExpiredDeadlineReturnsTimeoutNotAStall) {
  auto bundle = grammars::make_english_grammar();
  grammars::SentenceGenerator gen(bundle, 7);
  ParseService service(bundle.grammar, small_service(1));
  ParseRequest req;
  req.sentence = gen.generate_sentence(8);
  req.deadline = 1ns;  // expired the moment it is dequeued
  const ParseResponse resp = service.submit(std::move(req)).get();
  EXPECT_EQ(resp.status, RequestStatus::Timeout);
  EXPECT_FALSE(resp.accepted);
  EXPECT_EQ(service.stats().timeouts, 1u);
}

TEST(ParseService, GenerousDeadlineStillParses) {
  auto bundle = grammars::make_toy_grammar();
  ParseService service(bundle.grammar, small_service(2));
  ParseRequest req;
  req.sentence = bundle.tag("The program runs");
  req.deadline = 60s;
  const ParseResponse resp = service.submit(std::move(req)).get();
  EXPECT_EQ(resp.status, RequestStatus::Ok);
  EXPECT_TRUE(resp.accepted);
}

TEST(ParseService, ShutdownWhileBusySatisfiesEveryFuture) {
  auto bundle = grammars::make_toy_grammar();
  auto service = std::make_unique<ParseService>(bundle.grammar,
                                                small_service(2));
  std::vector<ParseRequest> reqs;
  for (int i = 0; i < 16; ++i) {
    ParseRequest r;
    r.sentence = bundle.tag("The program runs");
    reqs.push_back(std::move(r));
  }
  auto futures = service->submit_batch(std::move(reqs));
  service->shutdown();  // drain-then-join while requests are in flight
  int ok = 0;
  for (auto& f : futures) {
    const ParseResponse r = f.get();  // every future must be satisfied
    if (r.status == RequestStatus::Ok) ++ok;
  }
  EXPECT_EQ(ok, 16);  // drain semantics: queued work still parses

  // After shutdown, new submissions fail fast with a satisfied future.
  ParseRequest late;
  late.sentence = bundle.tag("The program runs");
  EXPECT_EQ(service->submit(std::move(late)).get().status,
            RequestStatus::ShuttingDown);
}

TEST(ParseService, CallbackFlavourDeliversOnWorker) {
  auto bundle = grammars::make_toy_grammar();
  ParseService service(bundle.grammar, small_service(2));
  std::mutex m;
  std::condition_variable cv;
  bool done = false;
  ParseResponse got;
  ParseRequest req;
  req.sentence = bundle.tag("The program runs");
  service.submit(std::move(req), [&](ParseResponse r) {
    std::lock_guard lock(m);
    got = std::move(r);
    done = true;
    cv.notify_one();
  });
  std::unique_lock lock(m);
  ASSERT_TRUE(cv.wait_for(lock, 30s, [&] { return done; }));
  EXPECT_TRUE(got.accepted);
  EXPECT_GE(got.worker, 0);
}

TEST(ParseService, StatsRollUp) {
  auto bundle = grammars::make_toy_grammar();
  ParseService service(bundle.grammar, small_service(2));
  std::vector<ParseRequest> reqs;
  for (int i = 0; i < 10; ++i) {
    ParseRequest r;
    r.sentence = bundle.tag("The program runs");
    r.backend = i < 7 ? engine::Backend::Serial : engine::Backend::Pram;
    reqs.push_back(std::move(r));
  }
  service.parse_batch(std::move(reqs));
  const serve::ServiceStats s = service.stats();
  EXPECT_EQ(s.submitted, 10u);
  EXPECT_EQ(s.completed, 10u);
  EXPECT_EQ(s.accepted, 10u);
  EXPECT_EQ(s.timeouts, 0u);
  EXPECT_GT(s.throughput_sps, 0.0);
  EXPECT_LE(s.latency_p50_ms, s.latency_p95_ms);
  EXPECT_LE(s.latency_p95_ms, s.latency_p99_ms);
  EXPECT_LE(s.latency_p99_ms, s.latency_max_ms + 1e-9);
  const auto& serial =
      s.backends[static_cast<std::size_t>(engine::Backend::Serial)];
  const auto& pram =
      s.backends[static_cast<std::size_t>(engine::Backend::Pram)];
  EXPECT_EQ(serial.requests, 7u);
  EXPECT_EQ(pram.requests, 3u);
  EXPECT_GT(pram.pram.time_steps, 0u);
  std::uint64_t jobs = 0;
  for (const auto& w : s.workers) jobs += w.jobs;
  EXPECT_EQ(jobs, 10u);
}

TEST(ParseService, MetricsTextExposesRequestAndCostCounters) {
  auto bundle = grammars::make_toy_grammar();
  // Isolated registry so counts are exactly this test's traffic.
  obs::Registry registry;
  ParseService::Options opt = small_service(2);
  opt.metrics = &registry;
  ParseService service(bundle.grammar, opt);

  std::vector<ParseRequest> reqs;
  for (int i = 0; i < 4; ++i) {
    ParseRequest r;
    r.sentence = bundle.tag("The program runs");
    r.backend = i < 3 ? engine::Backend::Serial : engine::Backend::Maspar;
    reqs.push_back(std::move(r));
  }
  for (auto& resp : service.parse_batch(std::move(reqs)))
    EXPECT_TRUE(resp.accepted);

  const std::string text = service.metrics_text();
  EXPECT_NE(
      text.find(
          "parsec_requests_total{backend=\"serial\",status=\"accepted\"} 3\n"),
      std::string::npos)
      << text;
  EXPECT_NE(
      text.find(
          "parsec_requests_total{backend=\"maspar\",status=\"accepted\"} 1\n"),
      std::string::npos);
  // The same cost counters stats() reports as a struct, scrapeable:
  // serial did real constraint evaluation and the MasPar run charged
  // router scans and ACU broadcasts.
  const serve::ServiceStats s = service.stats();
  const auto& serial =
      s.backends[static_cast<std::size_t>(engine::Backend::Serial)];
  EXPECT_NE(text.find("parsec_effective_binary_evals_total{backend="
                      "\"serial\"} " +
                      std::to_string(serial.network.effective_binary_evals()) +
                      "\n"),
            std::string::npos);
  const auto& maspar =
      s.backends[static_cast<std::size_t>(engine::Backend::Maspar)];
  EXPECT_GT(maspar.maspar.scan_ops, 0u);
  EXPECT_NE(text.find("parsec_maspar_scan_ops_total " +
                      std::to_string(maspar.maspar.scan_ops) + "\n"),
            std::string::npos);
  EXPECT_NE(text.find("parsec_parse_duration_seconds_count{backend="
                      "\"serial\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("parsec_serve_queue_depth"), std::string::npos);
}

TEST(NetworkScratch, ReusesSameShapeNetworks) {
  auto bundle = grammars::make_toy_grammar();
  engine::EngineSet engines(bundle.grammar);
  engine::NetworkScratch scratch;
  // Two same-length sentences: second acquire reinits in place.
  auto r1 = engine::run_backend(engines, engine::Backend::Serial,
                                bundle.tag("The program runs"), &scratch);
  auto r2 = engine::run_backend(engines, engine::Backend::Serial,
                                bundle.tag("A dog halts"), &scratch);
  EXPECT_EQ(scratch.pooled_shapes(), 1u);
  EXPECT_EQ(scratch.reuses(), 1u);
  EXPECT_TRUE(r1.accepted);
  EXPECT_TRUE(r2.accepted);

  // The reused network must behave exactly like a fresh one.
  cdg::SequentialParser seq(bundle.grammar);
  cdg::Network fresh = seq.make_network(bundle.tag("A dog halts"));
  seq.parse(fresh);
  std::vector<util::DynBitset> domains;
  for (int r = 0; r < fresh.num_roles(); ++r) domains.emplace_back(fresh.domain(r));
  EXPECT_EQ(r2.domains_hash, engine::hash_domains(domains));
}

TEST(NetworkScratch, ReinitRejectsLengthMismatch) {
  auto bundle = grammars::make_toy_grammar();
  cdg::Network net(bundle.grammar, bundle.tag("The program runs"));
  cdg::Sentence longer = bundle.tag("The program runs");
  longer.words.push_back("runs");
  longer.cats.push_back(longer.cats.back());
  EXPECT_FALSE(net.reinit(longer));
  EXPECT_TRUE(net.reinit(bundle.tag("A dog halts")));
}

}  // namespace
