// ParseService SoA batching (Options::enable_batching): grouped
// same-(grammar, length) Serial requests are parsed together through
// the lane batcher, answers stay in input order and bit-identical to
// an unbatched service, ineligible requests fall back to the ordinary
// path, and the occupancy counters account every batched request.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "grammars/english_grammar.h"
#include "grammars/sentence_gen.h"
#include "grammars/toy_grammar.h"
#include "obs/metrics.h"
#include "serve/parse_service.h"

namespace {

using namespace parsec;
using namespace std::chrono_literals;
using serve::ParseRequest;
using serve::ParseResponse;
using serve::ParseService;
using serve::RequestStatus;

TEST(ServeBatching, BatchedResponsesBitIdenticalToUnbatchedService) {
  auto bundle = grammars::make_english_grammar();
  grammars::SentenceGenerator gen(bundle, 20260807);
  // Same-shape heavy workload: 3 lengths, 18 sentences, so the batched
  // service forms multi-lane groups.
  std::vector<cdg::Sentence> ws;
  for (int i = 0; i < 18; ++i) ws.push_back(gen.generate_sentence(4 + i % 3));

  auto make_reqs = [&ws] {
    std::vector<ParseRequest> reqs;
    for (const auto& s : ws) {
      ParseRequest r;
      r.sentence = s;
      reqs.push_back(std::move(r));
    }
    return reqs;
  };

  obs::Registry plain_reg, batched_reg;
  ParseService::Options plain_opt;
  plain_opt.threads = 2;
  plain_opt.metrics = &plain_reg;
  ParseService plain(bundle.grammar, plain_opt);
  const auto ref = plain.parse_batch(make_reqs());

  ParseService::Options batch_opt;
  batch_opt.threads = 2;
  batch_opt.enable_batching = true;
  batch_opt.metrics = &batched_reg;
  ParseService batched(bundle.grammar, batch_opt);
  const auto got = batched.parse_batch(make_reqs());

  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_EQ(got[i].status, RequestStatus::Ok) << i;
    EXPECT_EQ(got[i].accepted, ref[i].accepted) << i;
    EXPECT_EQ(got[i].domains_hash, ref[i].domains_hash) << i;
    EXPECT_EQ(got[i].alive_role_values, ref[i].alive_role_values) << i;
    EXPECT_EQ(got[i].served_backend, engine::Backend::Serial) << i;
  }

  // 18 requests in 3 same-length groups of 6: every request batched,
  // ceil(6/8) = 1 batch per group.
  const auto stats = batched.stats();
  EXPECT_EQ(stats.batched_requests, 18u);
  EXPECT_EQ(stats.batches, 3u);
  EXPECT_EQ(stats.completed, 18u);
  const auto plain_stats = plain.stats();
  EXPECT_EQ(plain_stats.batches, 0u);
  EXPECT_EQ(plain_stats.batched_requests, 0u);
  // The registry carries the same occupancy counters.
  const std::string text = batched.metrics_text();
  EXPECT_NE(text.find("parsec_serve_batches_total 3"), std::string::npos)
      << text;
  EXPECT_NE(text.find("parsec_serve_batched_requests_total 18"),
            std::string::npos)
      << text;
}

TEST(ServeBatching, GroupsSliceIntoLaneSizedChunks) {
  auto bundle = grammars::make_toy_grammar();
  ParseService::Options opt;
  opt.threads = 2;
  opt.enable_batching = true;
  opt.min_batch_lanes = 1;  // batch even the 3-lane tail chunk
  obs::Registry reg;
  opt.metrics = &reg;
  ParseService service(bundle.grammar, opt);
  // 11 same-length sentences -> one group -> ceil(11/8) = 2 batches.
  std::vector<ParseRequest> reqs;
  for (int i = 0; i < 11; ++i) {
    ParseRequest r;
    r.sentence = bundle.tag(i % 2 == 0 ? "The program runs"
                                       : "program The runs");
    reqs.push_back(std::move(r));
  }
  const auto responses = service.parse_batch(std::move(reqs));
  ASSERT_EQ(responses.size(), 11u);
  for (int i = 0; i < 11; ++i) {
    EXPECT_EQ(responses[static_cast<std::size_t>(i)].status,
              RequestStatus::Ok)
        << i;
    EXPECT_EQ(responses[static_cast<std::size_t>(i)].accepted, i % 2 == 0)
        << i;
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.batched_requests, 11u);
  EXPECT_EQ(stats.batches, 2u);
}

TEST(ServeBatching, IneligibleRequestsFallBackToPerRequestPath) {
  auto bundle = grammars::make_toy_grammar();
  ParseService::Options opt;
  opt.threads = 2;
  opt.enable_batching = true;
  opt.min_batch_lanes = 1;  // the eligible pair is only a 2-lane chunk
  obs::Registry reg;
  opt.metrics = &reg;
  opt.lexicon = &bundle.lexicon;
  ParseService service(bundle.grammar, opt);

  std::vector<ParseRequest> reqs;
  ParseRequest serial;  // eligible
  serial.sentence = bundle.tag("The program runs");
  reqs.push_back(serial);
  ParseRequest omp = serial;  // ineligible: non-Serial backend
  omp.backend = engine::Backend::Omp;
  reqs.push_back(omp);
  ParseRequest deadline = serial;  // ineligible: has a deadline
  deadline.deadline = 10s;
  reqs.push_back(deadline);
  ParseRequest raw;  // ineligible: raw words (worker-side tagging)
  raw.words = {"The", "program", "runs"};
  reqs.push_back(raw);
  reqs.push_back(serial);  // eligible, same shape as the first

  const auto responses = service.parse_batch(std::move(reqs));
  ASSERT_EQ(responses.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(responses[i].status, RequestStatus::Ok) << i;
    EXPECT_TRUE(responses[i].accepted) << i;
    EXPECT_EQ(responses[i].domains_hash, responses[0].domains_hash) << i;
  }
  EXPECT_EQ(responses[1].served_backend, engine::Backend::Omp);
  const auto stats = service.stats();
  EXPECT_EQ(stats.batched_requests, 2u);  // the two eligible ones
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.completed, 5u);
}

TEST(ServeBatching, CaptureDomainsHonoredPerRequestWithinABatch) {
  auto bundle = grammars::make_toy_grammar();
  ParseService::Options opt;
  opt.threads = 1;
  opt.enable_batching = true;
  opt.min_batch_lanes = 1;  // force the 2-lane chunk through the batcher
  obs::Registry reg;
  opt.metrics = &reg;
  ParseService service(bundle.grammar, opt);

  std::vector<ParseRequest> reqs(2);
  reqs[0].sentence = bundle.tag("The program runs");
  reqs[0].capture_domains = true;
  reqs[1].sentence = bundle.tag("a dog halts");
  const auto responses = service.parse_batch(std::move(reqs));
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_FALSE(responses[0].domains.empty());
  EXPECT_EQ(engine::hash_domains(responses[0].domains),
            responses[0].domains_hash);
  EXPECT_TRUE(responses[1].domains.empty());
  EXPECT_EQ(service.stats().batches, 1u);
}

// Thin tail chunks (below Options::min_batch_lanes) take the ordinary
// per-request path: a lockstep sweep costs nearly the same at any
// fill, so a 3-lane tail is cheaper unbatched.  Results are identical
// either way; only the occupancy accounting shows the split.
TEST(ServeBatching, ThinTailChunksFallBackPerRequest) {
  auto bundle = grammars::make_toy_grammar();
  ParseService::Options opt;
  opt.threads = 2;
  opt.enable_batching = true;  // min_batch_lanes stays at its default (4)
  obs::Registry reg;
  opt.metrics = &reg;
  ParseService service(bundle.grammar, opt);

  // One group of 11: an 8-lane chunk batches, the 3-lane tail (< 4)
  // falls back per-request.
  std::vector<ParseRequest> reqs;
  for (int i = 0; i < 11; ++i) {
    ParseRequest r;
    r.sentence = bundle.tag("The program runs");
    reqs.push_back(std::move(r));
  }
  const auto responses = service.parse_batch(std::move(reqs));
  ASSERT_EQ(responses.size(), 11u);
  for (const auto& r : responses) {
    EXPECT_EQ(r.status, RequestStatus::Ok);
    EXPECT_TRUE(r.accepted);
    EXPECT_EQ(r.domains_hash, responses[0].domains_hash);
  }
  const auto stats = service.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.batched_requests, 8u);
  EXPECT_EQ(stats.completed, 11u);
}

// Exactly-once status accounting holds on the batched path too: every
// submitted request lands in exactly one serve-status counter.
TEST(ServeBatching, StatusAccountingStaysExactlyOnce) {
  auto bundle = grammars::make_toy_grammar();
  ParseService::Options opt;
  opt.threads = 2;
  opt.enable_batching = true;
  obs::Registry reg;
  opt.metrics = &reg;
  ParseService service(bundle.grammar, opt);

  std::vector<ParseRequest> reqs;
  for (int i = 0; i < 9; ++i) {
    ParseRequest r;
    r.sentence = bundle.tag("The program runs");
    if (i == 4) r.grammar = "no-such-grammar";  // BadRequest at submit
    reqs.push_back(std::move(r));
  }
  const auto responses = service.parse_batch(std::move(reqs));
  std::size_t ok = 0, bad = 0;
  for (const auto& r : responses) {
    ok += r.status == RequestStatus::Ok;
    bad += r.status == RequestStatus::BadRequest;
  }
  EXPECT_EQ(ok, 8u);
  EXPECT_EQ(bad, 1u);
  const auto stats = service.stats();
  EXPECT_EQ(stats.submitted, 9u);
  EXPECT_EQ(stats.batched_requests, 8u);
  EXPECT_EQ(stats.bad_requests, 1u);
}

}  // namespace
