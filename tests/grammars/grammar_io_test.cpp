#include "grammars/grammar_io.h"

#include <gtest/gtest.h>

#include <fstream>

#include "cdg/extract.h"
#include "cdg/parser.h"
#include "grammars/anbncn_grammar.h"
#include "grammars/english_grammar.h"
#include "grammars/sentence_gen.h"

namespace {

using namespace parsec;
using grammars::CdgBundle;
using grammars::GrammarIoError;
using grammars::load_cdg_bundle;
using grammars::save_cdg_bundle;

const char* kToyFile = R"((grammar
  (categories det noun verb)
  (labels SUBJ NP ROOT S DET BLANK)
  (roles governor needs)
  (table (governor SUBJ ROOT DET)
         (needs NP S BLANK))
  (constraint verbs-are-roots
    (if (and (eq (cat (word (pos x))) verb) (eq (role x) governor))
        (and (eq (lab x) ROOT) (eq (mod x) nil))))
  (constraint subj-left-of-root
    (if (and (eq (lab x) SUBJ) (eq (lab y) ROOT))
        (and (eq (mod x) (pos y)) (lt (pos x) (pos y))))))
(lexicon
  (the det)
  (dog noun)
  (runs verb)
  (run verb noun))
)";

TEST(GrammarIo, LoadsHandWrittenFile) {
  CdgBundle b = load_cdg_bundle(kToyFile);
  const auto& g = b.grammar;
  EXPECT_EQ(g.num_categories(), 3);
  EXPECT_EQ(g.num_labels(), 6);
  EXPECT_EQ(g.num_roles(), 2);
  EXPECT_EQ(g.unary_constraints().size(), 1u);
  EXPECT_EQ(g.binary_constraints().size(), 1u);
  EXPECT_EQ(g.unary_constraints()[0].name, "verbs-are-roots");
  EXPECT_TRUE(g.label_allowed_any_cat(g.role("governor"), g.label("SUBJ")));
  EXPECT_FALSE(g.label_allowed_any_cat(g.role("governor"), g.label("NP")));
  EXPECT_TRUE(b.lexicon.contains("dog"));
  // Multi-category entry keeps preferred order.
  EXPECT_EQ(b.lexicon.categories("run")[0], g.category("verb"));
  EXPECT_EQ(b.lexicon.categories("run")[1], g.category("noun"));
}

TEST(GrammarIo, LoadedGrammarParses) {
  CdgBundle b = load_cdg_bundle(kToyFile);
  cdg::SequentialParser p(b.grammar);
  cdg::Network net = p.make_network(b.tag("the dog runs"));
  EXPECT_TRUE(p.parse(net).accepted);
}

class GrammarIoRoundTrip
    : public ::testing::TestWithParam<const char*> {};

TEST_P(GrammarIoRoundTrip, SaveLoadPreservesBehaviour) {
  const std::string which = GetParam();
  CdgBundle original = which == "toy"       ? grammars::make_toy_grammar()
                       : which == "english" ? grammars::make_english_grammar()
                                            : grammars::make_anbncn_grammar();
  const std::string text = save_cdg_bundle(original);
  CdgBundle loaded = load_cdg_bundle(text);

  // Structural identity.
  EXPECT_EQ(loaded.grammar.num_categories(),
            original.grammar.num_categories());
  EXPECT_EQ(loaded.grammar.num_labels(), original.grammar.num_labels());
  EXPECT_EQ(loaded.grammar.num_roles(), original.grammar.num_roles());
  EXPECT_EQ(loaded.grammar.num_constraints(),
            original.grammar.num_constraints());
  EXPECT_EQ(loaded.lexicon.size(), original.lexicon.size());
  for (cdg::RoleId r = 0; r < original.grammar.num_roles(); ++r)
    EXPECT_EQ(loaded.grammar.labels_for_role(r),
              original.grammar.labels_for_role(r));

  // Saving the loaded bundle is a fixpoint.
  EXPECT_EQ(save_cdg_bundle(loaded), text);

  // Behavioural identity on a sentence pool.
  std::vector<std::vector<std::string>> pool;
  if (which == "toy") {
    pool = {{"The", "program", "runs"}, {"program", "The", "runs"},
            {"A", "dog", "halts"}};
  } else if (which == "english") {
    grammars::SentenceGenerator gen(original, 17);
    for (int n : {3, 6, 9}) pool.push_back(gen.generate(n));
    pool.push_back({"dog", "the", "runs"});
  } else {
    pool = {{"a", "b", "c"}, {"a", "a", "b", "b", "c", "c"},
            {"a", "b", "b", "c"}};
  }
  cdg::SequentialParser po(original.grammar), pl(loaded.grammar);
  for (const auto& words : pool) {
    cdg::Network no = po.make_network(original.lexicon.tag(words));
    cdg::Network nl = pl.make_network(loaded.lexicon.tag(words));
    auto ro = po.parse(no);
    auto rl = pl.parse(nl);
    EXPECT_EQ(ro.accepted, rl.accepted);
    EXPECT_EQ(ro.alive_role_values, rl.alive_role_values);
    for (int r = 0; r < no.num_roles(); ++r)
      EXPECT_EQ(no.domain(r), nl.domain(r)) << "role " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Bundles, GrammarIoRoundTrip,
                         ::testing::Values("toy", "english", "anbncn"));

TEST(GrammarIo, RejectsMalformedInput) {
  EXPECT_THROW(load_cdg_bundle("(nonsense)"), GrammarIoError);
  EXPECT_THROW(load_cdg_bundle("(lexicon (a b))"), GrammarIoError);
  EXPECT_THROW(load_cdg_bundle("(grammar (bogus-clause 1))"),
               GrammarIoError);
  EXPECT_THROW(load_cdg_bundle("(grammar (table (nosuchrole X)))"),
               GrammarIoError);
  EXPECT_THROW(load_cdg_bundle(
                   "(grammar (roles governor) (labels A) "
                   "(constraint c (if (eq (lab x) NOPE) (eq (mod x) nil))))"),
               GrammarIoError);
  EXPECT_THROW(load_cdg_bundle("(grammar (categories c)) (lexicon (w d))"),
               GrammarIoError);
  EXPECT_THROW(load_cdg_bundle("((("), GrammarIoError);
  EXPECT_THROW(load_cdg_bundle(""), GrammarIoError);
}

TEST(GrammarIo, FileNotFound) {
  EXPECT_THROW(grammars::load_cdg_bundle_file("/nonexistent/grammar.cdg"),
               GrammarIoError);
}

TEST(GrammarIo, ErrorsCarrySourcePositions) {
  // Semantic error: the bad clause starts on line 3, column 3; the
  // byte offset points at the same character in the text.
  const std::string text =
      "(grammar\n"
      "  (categories c)\n"
      "  (bogus-clause 1))\n";
  try {
    load_cdg_bundle(text);
    FAIL() << "expected GrammarIoError";
  } catch (const GrammarIoError& e) {
    EXPECT_EQ(e.line, 3);
    EXPECT_EQ(e.col, 3);
    ASSERT_NE(e.byte_offset, GrammarIoError::kNoOffset);
    EXPECT_EQ(e.byte_offset, text.find("(bogus-clause"));
    EXPECT_NE(std::string(e.what()).find("3:3"), std::string::npos);
  }

  // Lexer error (unterminated list): SexprError's position survives
  // the wrap into GrammarIoError.
  try {
    load_cdg_bundle("(grammar\n  (categories c)\n");
    FAIL() << "expected GrammarIoError";
  } catch (const GrammarIoError& e) {
    EXPECT_GT(e.line, 0);
    EXPECT_GT(e.col, 0);
  }

  // Location-less errors keep the 0/kNoOffset sentinels.
  try {
    load_cdg_bundle("");
    FAIL() << "expected GrammarIoError";
  } catch (const GrammarIoError& e) {
    EXPECT_EQ(e.line, 0);
    EXPECT_EQ(e.byte_offset, GrammarIoError::kNoOffset);
  }
}

TEST(GrammarIo, FileErrorsNameThePath) {
  // Hot-reload diagnosability: a broken file reports its path and the
  // position of the offending form.
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/broken.cdg";
  {
    std::ofstream out(path);
    out << "(grammar\n  (bogus-clause 1))\n";
  }
  try {
    grammars::load_cdg_bundle_file(path);
    FAIL() << "expected GrammarIoError";
  } catch (const GrammarIoError& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
    EXPECT_EQ(e.line, 2);
    EXPECT_EQ(e.col, 3);
  }
}

TEST(GrammarIo, CommentsAllowed) {
  CdgBundle b = load_cdg_bundle(
      "; a CDG grammar\n(grammar (categories c) (labels L) (roles r)\n"
      "  (table (r L)))\n(lexicon (w c)) ; entry\n");
  EXPECT_EQ(b.grammar.num_categories(), 1);
  EXPECT_TRUE(b.lexicon.contains("w"));
}

}  // namespace
