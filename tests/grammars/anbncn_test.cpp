// Beyond-CFG expressivity (paper §1.5): the CDG grammar for a^n b^n c^n
// accepts exactly that non-context-free language.
#include "grammars/anbncn_grammar.h"

#include <gtest/gtest.h>

#include "cdg/extract.h"
#include "cdg/parser.h"

namespace {

using namespace parsec;

class AnbncnTest : public ::testing::Test {
 protected:
  AnbncnTest()
      : bundle_(grammars::make_anbncn_grammar()), parser_(bundle_.grammar) {}

  bool accepts(const std::vector<std::string>& words) {
    cdg::Network net = parser_.make_network(bundle_.lexicon.tag(words));
    parser_.parse(net);
    // Exact acceptance: a complete consistent assignment must exist
    // (nonempty domains alone are only a necessary condition).
    return cdg::has_parse(net);
  }

  static bool is_anbncn(const std::vector<std::string>& w) {
    const std::size_t n = w.size();
    if (n % 3 != 0 || n == 0) return false;
    const std::size_t k = n / 3;
    for (std::size_t i = 0; i < n; ++i) {
      const char* want = i < k ? "a" : (i < 2 * k ? "b" : "c");
      if (w[i] != want) return false;
    }
    return true;
  }

  grammars::CdgBundle bundle_;
  cdg::SequentialParser parser_;
};

TEST_F(AnbncnTest, AcceptsTheLanguage) {
  for (int n = 1; n <= 5; ++n) {
    std::vector<std::string> w;
    for (int i = 0; i < n; ++i) w.push_back("a");
    for (int i = 0; i < n; ++i) w.push_back("b");
    for (int i = 0; i < n; ++i) w.push_back("c");
    EXPECT_TRUE(accepts(w)) << "n=" << n;
  }
}

TEST_F(AnbncnTest, ExhaustiveUpToLength6) {
  // Every string over {a,b,c} of length 1..6: acceptance iff a^k b^k c^k.
  for (int len = 1; len <= 6; ++len) {
    int count = 1;
    for (int i = 0; i < len; ++i) count *= 3;
    for (int code = 0; code < count; ++code) {
      std::vector<std::string> w;
      int c = code;
      for (int i = 0; i < len; ++i, c /= 3)
        w.push_back(c % 3 == 0 ? "a" : (c % 3 == 1 ? "b" : "c"));
      EXPECT_EQ(accepts(w), is_anbncn(w))
          << "len=" << len << " code=" << code;
    }
  }
}

TEST_F(AnbncnTest, TargetedLongerCases) {
  auto split = [](const std::string& s) {
    std::vector<std::string> w;
    for (char c : s)
      if (c != ' ') w.push_back(std::string(1, c));
    return w;
  };
  EXPECT_TRUE(accepts(split("aaaabbbbcccc")));
  EXPECT_FALSE(accepts(split("aaaabbbcccc")));   // 4-3-4
  EXPECT_FALSE(accepts(split("aaabbbbccc")));    // 3-4-3
  EXPECT_FALSE(accepts(split("abcabcabc")));     // interleaved
  EXPECT_FALSE(accepts(split("cccbbbaaa")));     // reversed blocks
  EXPECT_FALSE(accepts(split("aaabbbccca")));    // trailing a
}

TEST_F(AnbncnTest, ParseIsUniqueAndOrderPreserving) {
  // Order constraints pin the matching: a_i -> b_i -> c_i.
  cdg::Network net = parser_.make_network(
      bundle_.lexicon.tag({"a", "a", "a", "b", "b", "b", "c", "c", "c"}));
  parser_.parse(net);
  net.filter();
  auto parses = cdg::extract_parses(net, 10);
  ASSERT_EQ(parses.size(), 1u);
  const auto& g = bundle_.grammar;
  const auto& p = parses[0];
  for (int i = 1; i <= 3; ++i) {
    EXPECT_EQ(p.assignment[net.role_index(i, g.role("governor"))].mod,
              i + 3);  // a_i -> b_i
    EXPECT_EQ(p.assignment[net.role_index(i + 3, g.role("governor"))].mod,
              i + 6);  // b_i -> c_i
  }
}

}  // namespace
