#include "grammars/english_grammar.h"

#include <gtest/gtest.h>

#include <set>

#include "cdg/extract.h"
#include "cdg/parser.h"
#include "grammars/sentence_gen.h"

namespace {

using namespace parsec;

class EnglishGrammarTest : public ::testing::Test {
 protected:
  EnglishGrammarTest()
      : bundle_(grammars::make_english_grammar()), parser_(bundle_.grammar) {}

  bool accepts(const std::string& text) {
    cdg::Network net = parser_.make_network(bundle_.tag(text));
    parser_.parse(net);
    return cdg::has_parse(net);
  }

  grammars::CdgBundle bundle_;
  cdg::SequentialParser parser_;
};

TEST_F(EnglishGrammarTest, AcceptsCoreSentences) {
  EXPECT_TRUE(accepts("the dog runs"));
  EXPECT_TRUE(accepts("it runs"));
  EXPECT_TRUE(accepts("Randall parses"));
  EXPECT_TRUE(accepts("the big dog chases the small cat"));
  EXPECT_TRUE(accepts("the dog runs in the park"));
  EXPECT_TRUE(accepts("the student sees the professor with the telescope"));
  EXPECT_TRUE(accepts("every quick compiler builds a new program"));
  EXPECT_TRUE(accepts("she likes the quiet garden near the old house"));
  EXPECT_TRUE(accepts("the dog quickly chases the cat"));
  EXPECT_TRUE(accepts("the dog runs quickly"));
  EXPECT_TRUE(accepts("often she reads"));
}

TEST_F(EnglishGrammarTest, RejectsUngrammaticalSentences) {
  EXPECT_FALSE(accepts("dog the runs"));       // det after its noun
  EXPECT_FALSE(accepts("the dog"));            // no verb
  EXPECT_FALSE(accepts("runs the dog"));       // subject must precede verb
  EXPECT_FALSE(accepts("the runs dog"));       // no noun for the det... and
                                               // no subject left of verb
  EXPECT_FALSE(accepts("dog runs"));           // common noun needs a det
  EXPECT_FALSE(accepts("the dog the cat"));    // two NPs, no verb
  EXPECT_FALSE(accepts("in the park"));        // prep needs left attachment
  EXPECT_FALSE(accepts("the dog runs the"));   // dangling det
  EXPECT_FALSE(accepts("the big runs"));       // adj needs a noun
  EXPECT_FALSE(accepts("quickly the dog"));    // adverb with no verb
}

TEST_F(EnglishGrammarTest, PpAttachmentIsAmbiguous) {
  // The classic: "the student sees the professor with the telescope" —
  // the PP attaches to the verb (instrument) or to the object noun.
  cdg::Network net = parser_.make_network(
      bundle_.tag("the student sees the professor with the telescope"));
  parser_.parse(net);
  auto parses = cdg::extract_parses(net, 10);
  EXPECT_GE(parses.size(), 2u);
  // The attachments differ in the PREP role value of "with" (word 6).
  const auto& g = bundle_.grammar;
  const int with_gov = net.role_index(6, g.role("governor"));
  std::set<cdg::WordPos> attachments;
  for (const auto& p : parses) attachments.insert(p.assignment[with_gov].mod);
  EXPECT_TRUE(attachments.count(3));  // sees (verb)
  EXPECT_TRUE(attachments.count(5));  // professor (noun)
}

TEST_F(EnglishGrammarTest, GeneratedSentencesParse) {
  grammars::SentenceGenerator gen(bundle_, 7);
  for (int n = 2; n <= 20; ++n) {
    cdg::Sentence s = gen.generate_sentence(n);
    ASSERT_EQ(s.size(), n);
    cdg::Network net = parser_.make_network(s);
    parser_.parse(net);
    std::string text;
    for (const auto& w : s.words) text += w + " ";
    EXPECT_TRUE(cdg::has_parse(net)) << "n=" << n << ": " << text;
  }
}

TEST_F(EnglishGrammarTest, ProjectivityVariantStillAcceptsGenerated) {
  grammars::EnglishOptions opt;
  opt.projectivity = true;
  auto proj = grammars::make_english_grammar(opt);
  cdg::SequentialParser pparser(proj.grammar);
  grammars::SentenceGenerator gen(proj, 11);
  for (int n : {3, 6, 9, 12, 15}) {
    cdg::Sentence s = gen.generate_sentence(n);
    cdg::Network net = pparser.make_network(s);
    pparser.parse(net);
    EXPECT_TRUE(cdg::has_parse(net)) << n;
  }
  EXPECT_EQ(proj.grammar.num_constraints(),
            bundle_.grammar.num_constraints() + 1);
}

TEST_F(EnglishGrammarTest, ProjectivityPrunesCrossingParses) {
  // Every parse surviving the projectivity constraint must have no
  // crossing governor links.
  grammars::EnglishOptions opt;
  opt.projectivity = true;
  auto proj = grammars::make_english_grammar(opt);
  cdg::SequentialParser pparser(proj.grammar);
  const auto& g = proj.grammar;
  cdg::Network net = pparser.make_network(
      proj.tag("the student sees the professor with the telescope"));
  pparser.parse(net);
  auto parses = cdg::extract_parses(net, 50);
  ASSERT_FALSE(parses.empty());
  for (const auto& p : parses) {
    std::vector<std::pair<int, int>> spans;
    for (int w = 1; w <= net.n(); ++w) {
      const auto rv = p.assignment[net.role_index(w, g.role("governor"))];
      if (rv.mod == cdg::kNil) continue;
      spans.emplace_back(std::min<int>(w, rv.mod), std::max<int>(w, rv.mod));
    }
    for (std::size_t i = 0; i < spans.size(); ++i)
      for (std::size_t j = i + 1; j < spans.size(); ++j) {
        const auto [l1, r1] = spans[i];
        const auto [l2, r2] = spans[j];
        const bool crossing =
            (l1 < l2 && l2 < r1 && r1 < r2) || (l2 < l1 && l1 < r2 && r2 < r1);
        EXPECT_FALSE(crossing) << l1 << "-" << r1 << " x " << l2 << "-" << r2;
      }
  }
}

TEST_F(EnglishGrammarTest, SubjectUniqueness) {
  // Two candidate subjects for one verb cannot both be SUBJ.
  EXPECT_FALSE(accepts("the dog the cat runs"));
}

TEST_F(EnglishGrammarTest, ScalesToLongSentences) {
  // A 28-word sentence: R = 56 roles, D = 12*29 = 348, ~10^5 arc-matrix
  // bits per arc pair.  The sequential parser must stay well under a
  // couple of seconds and still find a parse.
  grammars::SentenceGenerator gen(bundle_, 3);
  cdg::Sentence s = gen.generate_sentence(28);
  cdg::Network net = parser_.make_network(s);
  auto r = parser_.parse(net);
  EXPECT_TRUE(r.accepted);
  EXPECT_TRUE(cdg::has_parse(net));
  EXPECT_EQ(net.num_roles(), 56);
}

TEST_F(EnglishGrammarTest, GrammarShape) {
  const auto& g = bundle_.grammar;
  EXPECT_EQ(g.num_roles(), 2);
  // Coarse T: governor holds 8 labels, needs 4: l = 8, exactly the
  // MasPar PE word bound (8x8 bits per PE submatrix).
  EXPECT_EQ(g.max_labels_per_role(), 8);
  EXPECT_GE(g.num_constraints(), 20);
}

}  // namespace
