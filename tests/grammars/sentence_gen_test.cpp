#include "grammars/sentence_gen.h"

#include <gtest/gtest.h>

namespace {

using namespace parsec;

class SentenceGenTest : public ::testing::Test {
 protected:
  SentenceGenTest() : bundle_(grammars::make_english_grammar()) {}
  grammars::CdgBundle bundle_;
};

TEST_F(SentenceGenTest, HitsExactTargetLength) {
  grammars::SentenceGenerator gen(bundle_, 1);
  for (int n = 2; n <= 30; ++n) {
    for (int trial = 0; trial < 5; ++trial)
      EXPECT_EQ(static_cast<int>(gen.generate(n).size()), n) << n;
  }
}

TEST_F(SentenceGenTest, AllWordsInLexicon) {
  grammars::SentenceGenerator gen(bundle_, 2);
  for (int n : {2, 5, 9, 14, 21}) {
    for (const auto& w : gen.generate(n))
      EXPECT_TRUE(bundle_.lexicon.contains(w)) << w;
  }
}

TEST_F(SentenceGenTest, DeterministicPerSeed) {
  grammars::SentenceGenerator a(bundle_, 99), b(bundle_, 99), c(bundle_, 100);
  bool any_diff = false;
  for (int n : {4, 8, 12}) {
    const auto wa = a.generate(n);
    EXPECT_EQ(wa, b.generate(n));
    if (wa != c.generate(n)) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(SentenceGenTest, RejectsTinyTargets) {
  grammars::SentenceGenerator gen(bundle_, 3);
  EXPECT_THROW(gen.generate(1), std::invalid_argument);
  EXPECT_THROW(gen.generate(0), std::invalid_argument);
}

TEST_F(SentenceGenTest, RequiresEnglishBundle) {
  auto toy = grammars::make_toy_grammar();
  EXPECT_THROW(grammars::SentenceGenerator gen(toy), std::invalid_argument);
}

TEST_F(SentenceGenTest, TaggedFormMatchesWords) {
  grammars::SentenceGenerator gen(bundle_, 4);
  cdg::Sentence s = gen.generate_sentence(10);
  EXPECT_EQ(s.size(), 10);
  for (int p = 1; p <= 10; ++p)
    EXPECT_EQ(s.cat_at(p),
              bundle_.lexicon.categories(s.word_at(p)).front());
}

}  // namespace
