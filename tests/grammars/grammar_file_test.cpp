// Tests against the shipped grammar files (grammars/toy.cdg,
// grammars/english.cdg): each file must stay loadable and behaviourally
// identical to its built-in grammar.
#include <gtest/gtest.h>

#include "cdg/parser.h"
#include "grammars/english_grammar.h"
#include "grammars/grammar_io.h"
#include "grammars/toy_grammar.h"

#ifndef PARSEC_SOURCE_DIR
#define PARSEC_SOURCE_DIR "."
#endif

namespace {

using namespace parsec;

TEST(GrammarFile, ShippedToyGrammarLoads) {
  auto bundle = grammars::load_cdg_bundle_file(
      std::string(PARSEC_SOURCE_DIR) + "/grammars/toy.cdg");
  EXPECT_EQ(bundle.grammar.num_labels(), 6);
  EXPECT_EQ(bundle.grammar.num_roles(), 2);
  EXPECT_EQ(bundle.grammar.num_constraints(), 10);
  EXPECT_TRUE(bundle.lexicon.contains("program"));
}

TEST(GrammarFile, MatchesBuiltinToyGrammarBehaviour) {
  auto file = grammars::load_cdg_bundle_file(
      std::string(PARSEC_SOURCE_DIR) + "/grammars/toy.cdg");
  auto builtin = grammars::make_toy_grammar();
  cdg::SequentialParser pf(file.grammar), pb(builtin.grammar);
  for (const char* text :
       {"The program runs", "A dog halts", "program The runs",
        "The program", "runs", "The dog crashes"}) {
    // Words present in both lexicons only.
    bool known = true;
    for (const auto& w : grammars::split_words(text))
      if (!file.lexicon.contains(w) || !builtin.lexicon.contains(w))
        known = false;
    if (!known) continue;
    cdg::Network nf = pf.make_network(file.tag(text));
    cdg::Network nb = pb.make_network(builtin.tag(text));
    auto rf = pf.parse(nf);
    auto rb = pb.parse(nb);
    EXPECT_EQ(rf.accepted, rb.accepted) << text;
    EXPECT_EQ(rf.alive_role_values, rb.alive_role_values) << text;
  }
}

TEST(GrammarFile, ShippedEnglishGrammarLoads) {
  auto bundle = grammars::load_cdg_bundle_file(
      std::string(PARSEC_SOURCE_DIR) + "/grammars/english.cdg");
  auto builtin = grammars::make_english_grammar();
  EXPECT_EQ(bundle.grammar.num_labels(), builtin.grammar.num_labels());
  EXPECT_EQ(bundle.grammar.num_roles(), builtin.grammar.num_roles());
  EXPECT_EQ(bundle.grammar.num_constraints(),
            builtin.grammar.num_constraints());
  EXPECT_TRUE(bundle.lexicon.contains("telescope"));
}

TEST(GrammarFile, ShippedEnglishMatchesBuiltinBehaviour) {
  auto file = grammars::load_cdg_bundle_file(
      std::string(PARSEC_SOURCE_DIR) + "/grammars/english.cdg");
  auto builtin = grammars::make_english_grammar();
  cdg::SequentialParser pf(file.grammar), pb(builtin.grammar);
  for (const char* text :
       {"the dog runs", "the dog sees the cat",
        "a student with a telescope reads", "dog the runs",
        "the big dog runs quickly", "runs"}) {
    bool known = true;
    for (const auto& w : grammars::split_words(text))
      if (!file.lexicon.contains(w) || !builtin.lexicon.contains(w))
        known = false;
    if (!known) continue;
    cdg::Network nf = pf.make_network(file.tag(text));
    cdg::Network nb = pb.make_network(builtin.tag(text));
    auto rf = pf.parse(nf);
    auto rb = pb.parse(nb);
    EXPECT_EQ(rf.accepted, rb.accepted) << text;
    EXPECT_EQ(rf.alive_role_values, rb.alive_role_values) << text;
  }
}

TEST(GrammarFile, ShippedEnglishSaveIsAFixpoint) {
  const std::string path =
      std::string(PARSEC_SOURCE_DIR) + "/grammars/english.cdg";
  auto bundle = grammars::load_cdg_bundle_file(path);
  const std::string saved = grammars::save_cdg_bundle(bundle);
  auto reloaded = grammars::load_cdg_bundle(saved);
  EXPECT_EQ(grammars::save_cdg_bundle(reloaded), saved);
}

}  // namespace
