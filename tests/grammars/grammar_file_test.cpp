// Tests against the shipped grammar file (grammars/toy.cdg): the file
// must stay loadable and behaviourally identical to the built-in toy
// grammar.
#include <gtest/gtest.h>

#include "cdg/parser.h"
#include "grammars/grammar_io.h"
#include "grammars/toy_grammar.h"

#ifndef PARSEC_SOURCE_DIR
#define PARSEC_SOURCE_DIR "."
#endif

namespace {

using namespace parsec;

TEST(GrammarFile, ShippedToyGrammarLoads) {
  auto bundle = grammars::load_cdg_bundle_file(
      std::string(PARSEC_SOURCE_DIR) + "/grammars/toy.cdg");
  EXPECT_EQ(bundle.grammar.num_labels(), 6);
  EXPECT_EQ(bundle.grammar.num_roles(), 2);
  EXPECT_EQ(bundle.grammar.num_constraints(), 10);
  EXPECT_TRUE(bundle.lexicon.contains("program"));
}

TEST(GrammarFile, MatchesBuiltinToyGrammarBehaviour) {
  auto file = grammars::load_cdg_bundle_file(
      std::string(PARSEC_SOURCE_DIR) + "/grammars/toy.cdg");
  auto builtin = grammars::make_toy_grammar();
  cdg::SequentialParser pf(file.grammar), pb(builtin.grammar);
  for (const char* text :
       {"The program runs", "A dog halts", "program The runs",
        "The program", "runs", "The dog crashes"}) {
    // Words present in both lexicons only.
    bool known = true;
    for (const auto& w : grammars::split_words(text))
      if (!file.lexicon.contains(w) || !builtin.lexicon.contains(w))
        known = false;
    if (!known) continue;
    cdg::Network nf = pf.make_network(file.tag(text));
    cdg::Network nb = pb.make_network(builtin.tag(text));
    auto rf = pf.parse(nf);
    auto rb = pb.parse(nb);
    EXPECT_EQ(rf.accepted, rb.accepted) << text;
    EXPECT_EQ(rf.alive_role_values, rb.alive_role_values) << text;
  }
}

}  // namespace
