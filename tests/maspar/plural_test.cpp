#include "maspar/plural.h"

#include <gtest/gtest.h>

namespace {

using namespace parsec::maspar;
using U8 = Plural<std::uint8_t>;

TEST(Plural, IotaAndArithmetic) {
  Machine m(8, 8);
  auto id = Plural<int>::iota(m);
  auto twice = id + id;
  auto plus3 = id + 3;
  for (int pe = 0; pe < 8; ++pe) {
    EXPECT_EQ(id.lane(pe), pe);
    EXPECT_EQ(twice.lane(pe), 2 * pe);
    EXPECT_EQ(plus3.lane(pe), pe + 3);
  }
}

TEST(Plural, EveryOperationIsOneBroadcast) {
  Machine m(16, 16);
  const auto base = m.stats().plural_ops;
  auto a = Plural<int>(m, 1);           // 1 op
  auto b = Plural<int>::iota(m);        // 2 ops (init + iota fill)
  auto c = a + b;                       // 1
  auto d = c * 2;                       // 1
  auto e = d > 7;                       // 1
  (void)e;
  EXPECT_EQ(m.stats().plural_ops - base, 6u);
}

TEST(Plural, ComparisonsYieldPluralBools) {
  Machine m(6, 6);
  auto id = Plural<int>::iota(m);
  auto big = id > 3;
  EXPECT_EQ(big.data(), (std::vector<std::uint8_t>{0, 0, 0, 0, 1, 1}));
  auto three = id == 3;
  EXPECT_EQ(three.data(), (std::vector<std::uint8_t>{0, 0, 0, 1, 0, 0}));
  auto eq = id == Plural<int>::iota(m);
  for (int pe = 0; pe < 6; ++pe) EXPECT_EQ(eq.lane(pe), 1);
}

TEST(Plural, WhereMasksAssignment) {
  Machine m(8, 8);
  auto id = Plural<int>::iota(m);
  auto v = Plural<int>(m, 0);
  where(m, id > 4, [&] { v = Plural<int>(m, 99); });
  for (int pe = 0; pe < 8; ++pe)
    EXPECT_EQ(v.lane(pe), pe > 4 ? 99 : 0) << pe;
}

TEST(Plural, NestedWhereIntersects) {
  Machine m(10, 10);
  auto id = Plural<int>::iota(m);
  auto v = Plural<int>(m, 0);
  where(m, id > 2, [&] {
    where(m, id < 7, [&] { v = v + 1; });
    v = v + 10;
  });
  for (int pe = 0; pe < 10; ++pe) {
    int want = 0;
    if (pe > 2 && pe < 7) want += 1;
    if (pe > 2) want += 10;
    EXPECT_EQ(v.lane(pe), want) << pe;
  }
}

TEST(Plural, RouterWrappers) {
  Machine m(6, 6);
  auto bits = U8::wrap(m, {0, 1, 0, 0, 0, 1});
  std::vector<int> seg{0, 0, 0, 1, 1, 1};
  auto ors = bits.seg_or(seg);
  EXPECT_EQ(ors.data(), (std::vector<std::uint8_t>{1, 1, 1, 1, 1, 1}));
  auto ands = bits.seg_and(seg);
  EXPECT_EQ(ands.data(), (std::vector<std::uint8_t>{0, 0, 0, 0, 0, 0}));
  auto rev = Plural<int>::iota(m).gather(
      Plural<int>::wrap(m, {5, 4, 3, 2, 1, 0}));
  EXPECT_EQ(rev.data(), (std::vector<int>{5, 4, 3, 2, 1, 0}));
  EXPECT_EQ(m.stats().scan_ops, 2u);
  EXPECT_EQ(m.stats().route_ops, 1u);
}

TEST(Plural, XnetWrapper) {
  Machine m(9, 9);  // 3x3 grid
  auto id = Plural<int>::iota(m);
  auto west = id.xnet(0, -1, -1);
  EXPECT_EQ(west.lane(4), 3);
  EXPECT_EQ(west.lane(3), -1);
  EXPECT_EQ(m.stats().xnet_ops, 1u);
}

TEST(Plural, MiniKernelSumsWithLogSteps) {
  // A textbook MPL exercise: tree-sum by repeated xnet shifting on a
  // 1-row grid... here: OR-reduce via seg_or and verify in one scan.
  Machine m(32, 32);
  auto id = Plural<int>::iota(m);
  auto flag = id == 17;
  std::vector<int> whole(32, 0);
  auto any = flag.seg_or(whole);
  for (int pe = 0; pe < 32; ++pe) EXPECT_EQ(any.lane(pe), 1);
  EXPECT_EQ(m.stats().scan_ops, 1u);
}

}  // namespace
