#include "maspar/machine.h"

#include <gtest/gtest.h>

#include "maspar/cost_model.h"

namespace {

using namespace parsec::maspar;

TEST(MasparMachine, SimdRunsOnEnabledPes) {
  Machine m(8, 8);
  std::vector<int> v(8, 0);
  m.simd(1, [&](int pe) { v[pe] = pe; });
  for (int i = 0; i < 8; ++i) EXPECT_EQ(v[i], i);
  EXPECT_EQ(m.stats().plural_ops, 1u);
}

TEST(MasparMachine, EnableMaskNests) {
  Machine m(6, 6);
  std::vector<std::uint8_t> even{1, 0, 1, 0, 1, 0};
  std::vector<std::uint8_t> low{1, 1, 1, 0, 0, 0};
  std::vector<int> hits(6, 0);
  {
    Machine::EnableScope a(m, even);
    {
      Machine::EnableScope b(m, low);  // even AND low = {0, 2}
      m.simd(1, [&](int pe) { ++hits[pe]; });
    }
    m.simd(1, [&](int pe) { ++hits[pe]; });  // evens again
  }
  m.simd(1, [&](int pe) { ++hits[pe]; });  // all
  EXPECT_EQ(hits, (std::vector<int>{3, 1, 3, 1, 2, 1}));
}

TEST(MasparMachine, EnableUnderflowThrows) {
  Machine m(2, 2);
  EXPECT_THROW(m.pop_enable(), std::logic_error);
  EXPECT_THROW(m.push_enable({1}), std::invalid_argument);
}

TEST(MasparMachine, SegOrBroadcastsSegmentResult) {
  Machine m(8, 8);
  std::vector<std::uint8_t> v{0, 1, 0, 0, 0, 0, 1, 0};
  std::vector<int> seg{0, 0, 0, 1, 1, 2, 2, 2};
  auto out = m.seg_or(v, seg);
  EXPECT_EQ(out, (std::vector<std::uint8_t>{1, 1, 1, 0, 0, 1, 1, 1}));
  EXPECT_EQ(m.stats().scan_ops, 1u);
}

TEST(MasparMachine, SegAndRespectsIdentity) {
  Machine m(6, 6);
  std::vector<std::uint8_t> v{1, 1, 0, 1, 1, 1};
  std::vector<int> seg{0, 0, 0, 1, 1, 1};
  auto out = m.seg_and(v, seg);
  EXPECT_EQ(out, (std::vector<std::uint8_t>{0, 0, 0, 1, 1, 1}));
}

TEST(MasparMachine, DisabledPesAreTransparentToScans) {
  Machine m(4, 4);
  std::vector<std::uint8_t> mask{1, 0, 1, 1};
  Machine::EnableScope s(m, mask);
  std::vector<std::uint8_t> v{0, 1, 0, 1};  // PE1's 1 must not count
  std::vector<int> seg{0, 0, 0, 0};
  auto out = m.seg_or(v, seg);
  EXPECT_EQ(out[0], 1);  // PE3 contributes
  EXPECT_EQ(out[1], 0);  // disabled PEs receive nothing
  std::vector<std::uint8_t> v2{1, 0, 1, 1};
  auto out2 = m.seg_and(v2, seg);
  EXPECT_EQ(out2[0], 1);  // PE1's 0 must not break the AND
}

TEST(MasparMachine, GatherPullsBySourceIndex) {
  Machine m(4, 4);
  std::vector<int> v{10, 11, 12, 13};
  std::vector<int> from{3, 2, 1, 0};
  auto out = m.gather(v, from);
  EXPECT_EQ(out, (std::vector<int>{13, 12, 11, 10}));
  EXPECT_EQ(m.stats().route_ops, 1u);
}

TEST(MasparMachine, VirtualizationFactor) {
  EXPECT_EQ(Machine(100, 100).virt_factor(), 1);
  EXPECT_EQ(Machine(101, 100).virt_factor(), 2);
  EXPECT_EQ(Machine(324, 16384).virt_factor(), 1);
  // Paper Results §3: a 10-word sentence with q=2 needs 40,000 virtual
  // PEs on 16K physical ones: factor 3, hence 0.45 s vs 0.15 s.
  EXPECT_EQ(Machine(40000, 16384).virt_factor(), 3);
}

TEST(MasparMachine, CostModelScalesWithVirtualization) {
  const CostModel cm = CostModel::mp1();
  MachineStats s;
  s.plural_ops = 1000;
  s.scan_ops = 10;
  const double t1 = cm.seconds(s, 16384, 16384);
  const double t3 = cm.seconds(s, 40000, 16384);
  EXPECT_GT(t3, 2.5 * t1 * 0.8);
  EXPECT_LT(t1, t3);
}

TEST(MasparMachine, XnetShiftMovesByCompassDirection) {
  // 3x3 grid of 9 PEs holding their own ids.
  Machine m(9, 9);
  EXPECT_EQ(m.grid_side(), 3);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8};
  // Pull from the west neighbour (dr=0, dc=-1).
  auto west = m.xnet_shift(v, 0, -1, -1);
  EXPECT_EQ(west, (std::vector<int>{-1, 0, 1, -1, 3, 4, -1, 6, 7}));
  // Pull from the north neighbour (dr=-1).
  auto north = m.xnet_shift(v, -1, 0, -1);
  EXPECT_EQ(north, (std::vector<int>{-1, -1, -1, 0, 1, 2, 3, 4, 5}));
  // Diagonal NE.
  auto ne = m.xnet_shift(v, -1, 1, -1);
  EXPECT_EQ(ne[3], 1);
  EXPECT_EQ(ne[5], -1);  // off-grid to the east
  EXPECT_EQ(m.stats().xnet_ops, 3u);
}

TEST(MasparMachine, XnetRespectsEnableMaskAndRaggedEdge) {
  // 7 virtual PEs on a 3x3 grid: PEs 7, 8 do not exist.
  Machine m(7, 16);
  EXPECT_EQ(m.grid_side(), 3);
  std::vector<int> v{10, 11, 12, 13, 14, 15, 16};
  std::vector<std::uint8_t> mask{1, 0, 1, 1, 1, 1, 1};
  Machine::EnableScope scope(m, mask);
  auto east = m.xnet_shift(v, 0, 1, -1);
  EXPECT_EQ(east[0], 11);
  EXPECT_EQ(east[1], -1);  // disabled PE receives nothing (fill)
  EXPECT_EQ(east[6], -1);  // neighbour would be PE 7: beyond the array
}

TEST(MasparMachine, XnetMeshReductionTakesDiameterSteps) {
  // Row-then-column OR reduction via xnet shifts: 2*(side-1) steps —
  // the cost the Fig. 8 mesh row and the scan ablation charge.
  const int side = 8;
  Machine m(side * side, side * side);
  std::vector<std::uint8_t> v(side * side, 0);
  v[37] = 1;
  int steps = 0;
  // Shift-left accumulate: after side-1 steps column 0 holds row ORs.
  for (int i = 0; i < side - 1; ++i) {
    auto shifted = m.xnet_shift(v, 0, 1, std::uint8_t{0});
    for (std::size_t j = 0; j < v.size(); ++j) v[j] |= shifted[j];
    ++steps;
  }
  // Shift-up accumulate on column 0.
  for (int i = 0; i < side - 1; ++i) {
    auto shifted = m.xnet_shift(v, 1, 0, std::uint8_t{0});
    for (std::size_t j = 0; j < v.size(); ++j) v[j] |= shifted[j];
    ++steps;
  }
  EXPECT_EQ(v[0], 1);  // the bit reached the corner
  EXPECT_EQ(steps, 2 * (side - 1));
  EXPECT_EQ(m.stats().xnet_ops, static_cast<std::uint64_t>(steps));
}

TEST(MasparMachine, RejectsNonPositiveSizes) {
  EXPECT_THROW(Machine(0), std::invalid_argument);
  EXPECT_THROW(Machine(4, 0), std::invalid_argument);
}

}  // namespace
