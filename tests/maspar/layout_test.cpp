// PE-allocation golden tests against Figures 11 and 13.
#include "maspar/layout.h"

#include <gtest/gtest.h>

#include <set>

#include "grammars/toy_grammar.h"

namespace {

using namespace parsec;
using maspar::Layout;

class LayoutFig11 : public ::testing::Test {
 protected:
  LayoutFig11()
      : bundle_(grammars::make_toy_grammar()),
        sentence_(bundle_.tag("The program runs")),
        layout_(bundle_.grammar, sentence_) {}

  grammars::CdgBundle bundle_;
  cdg::Sentence sentence_;
  Layout layout_;
};

TEST_F(LayoutFig11, TotalIs324Pes) {
  // "324 PEs total" for the 3-word example (Fig. 11).
  EXPECT_EQ(layout_.vpes(), 324);
  EXPECT_EQ(layout_.num_roles(), 6);
  EXPECT_EQ(layout_.mods_per_word(), 3);
  EXPECT_EQ(layout_.labels_per_role(), 3);
}

TEST_F(LayoutFig11, WordAndRolePartitions) {
  // "The: PEs 0 thru 107, program: 108 thru 215, runs: 216 thru 323",
  // each word's block split in half per role (54 PEs per role).
  // Word of role a: roles 0,1 belong to "The", etc.; each role owns
  // M * R * M = 3*6*3 = 54 contiguous PEs.
  for (int a = 0; a < 6; ++a) {
    const int lo = layout_.vpe(a, 0, 0, 0);
    const int hi = layout_.vpe(a, 2, 5, 2);
    EXPECT_EQ(lo, a * 54);
    EXPECT_EQ(hi, a * 54 + 53);
  }
}

TEST_F(LayoutFig11, Pe9To11HoldTheGovernorNilVsProgramNeeds) {
  // Paper: "Consider processor number 9 ... The column role values for
  // processor 9 belong to the word the, the role for the column role
  // values is governor, and their modifiee value is nil.  The row role
  // values' word is program and their role is needs."
  // In our orientation role a owns the segment, so PE 9's *segment*
  // side is The/governor/nil and its partner side is program/needs.
  for (int pe = 9; pe <= 11; ++pe) {
    const auto c = layout_.coord(pe);
    EXPECT_EQ(c.a, 0) << pe;                             // The, governor
    EXPECT_EQ(layout_.word_of_role(c.a), 1) << pe;
    EXPECT_EQ(bundle_.grammar.role_name(layout_.role_id_of(c.a)),
              "governor");
    EXPECT_EQ(c.mx, 0) << pe;                            // modifiee nil
    EXPECT_EQ(layout_.mods_of_word(1)[c.mx], cdg::kNil);
    EXPECT_EQ(layout_.word_of_role(c.b), 2) << pe;       // program
    EXPECT_EQ(bundle_.grammar.role_name(layout_.role_id_of(c.b)), "needs");
  }
}

TEST_F(LayoutFig11, DiagonalPesDisabledFromStart) {
  // "processors 0, 1, and 2 are disabled... they represent an arc from
  // a role to itself."
  EXPECT_TRUE(layout_.diagonal(0));
  EXPECT_TRUE(layout_.diagonal(1));
  EXPECT_TRUE(layout_.diagonal(2));
  EXPECT_FALSE(layout_.diagonal(3));
  int disabled = 0;
  for (int pe = 0; pe < layout_.vpes(); ++pe)
    if (layout_.diagonal(pe)) ++disabled;
  // R blocks of M*M diagonal PEs: 6 * 9 = 54.
  EXPECT_EQ(disabled, 54);
}

TEST_F(LayoutFig11, VpeCoordRoundTrip) {
  for (int pe = 0; pe < layout_.vpes(); ++pe) {
    const auto c = layout_.coord(pe);
    EXPECT_EQ(layout_.vpe(c.a, c.mx, c.b, c.my), pe);
  }
}

TEST_F(LayoutFig11, PartnerIsInvolutionAcrossBlocks) {
  for (int pe = 0; pe < layout_.vpes(); ++pe) {
    const int p = layout_.partner(pe);
    EXPECT_EQ(layout_.partner(p), pe);
    const auto c = layout_.coord(pe);
    const auto cp = layout_.coord(p);
    EXPECT_EQ(c.a, cp.b);
    EXPECT_EQ(c.mx, cp.my);
    EXPECT_EQ(c.b, cp.a);
    EXPECT_EQ(c.my, cp.mx);
  }
}

TEST_F(LayoutFig11, SegmentsAreContiguous) {
  // Both scan segments must be runs of consecutive PEs.
  int prev_arc = -1, prev_slot = -1;
  std::set<int> seen_arc, seen_slot;
  for (int pe = 0; pe < layout_.vpes(); ++pe) {
    const int sa = layout_.seg_arc(pe);
    const int ss = layout_.seg_role_slot(pe);
    if (sa != prev_arc) {
      EXPECT_TRUE(seen_arc.insert(sa).second) << "arc segment split";
      prev_arc = sa;
    }
    if (ss != prev_slot) {
      EXPECT_TRUE(seen_slot.insert(ss).second) << "slot segment split";
      prev_slot = ss;
    }
  }
  // R*M*R arc segments of length M; R*M slot segments of length R*M.
  EXPECT_EQ(seen_arc.size(), 6u * 3u * 6u);
  EXPECT_EQ(seen_slot.size(), 6u * 3u);
}

TEST_F(LayoutFig11, ModSlotsNilFirstThenAscending) {
  EXPECT_EQ(layout_.mods_of_word(1),
            (std::vector<cdg::WordPos>{cdg::kNil, 2, 3}));
  EXPECT_EQ(layout_.mods_of_word(2),
            (std::vector<cdg::WordPos>{cdg::kNil, 1, 3}));
  EXPECT_EQ(layout_.mods_of_word(3),
            (std::vector<cdg::WordPos>{cdg::kNil, 1, 2}));
  EXPECT_EQ(layout_.mod_slot(2, 3), 2);
  EXPECT_EQ(layout_.mod_slot(2, 2), -1);  // self-modification
}

TEST_F(LayoutFig11, LabelSlots) {
  const auto& g = bundle_.grammar;
  const auto gov = g.role("governor");
  // Governor's T-allowed labels in label-id order: SUBJ, ROOT, DET.
  EXPECT_EQ(layout_.labels_of(gov).size(), 3u);
  EXPECT_EQ(layout_.label_slot(gov, g.label("SUBJ")), 0);
  EXPECT_EQ(layout_.label_slot(gov, g.label("ROOT")), 1);
  EXPECT_EQ(layout_.label_slot(gov, g.label("DET")), 2);
  EXPECT_EQ(layout_.label_slot(gov, g.label("NP")), -1);
}

TEST(LayoutScaling, PeCountIsQsqNto4) {
  // O(n^4) PEs: for q = 2 roles, exactly 4 n^4.
  auto bundle = grammars::make_toy_grammar();
  for (int n : {1, 2, 4, 7, 10}) {
    std::vector<std::string> words;
    for (int i = 0; i < n; ++i)
      words.push_back(i % 3 == 0 ? "The" : (i % 3 == 1 ? "dog" : "runs"));
    cdg::Sentence s = bundle.lexicon.tag(words);
    Layout layout(bundle.grammar, s);
    EXPECT_EQ(layout.vpes(), 4 * n * n * n * n) << n;
  }
  // The paper: 16K PEs suffice for a typical 10-word sentence (40,000
  // virtual PEs at virtualization factor 3).
}

}  // namespace
