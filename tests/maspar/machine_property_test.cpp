// Randomized property tests for the MasPar machine's router primitives:
// segmented scans and gathers against straightforward references, under
// random segmentations and enable masks.
#include <gtest/gtest.h>

#include "maspar/machine.h"
#include "util/rng.h"

namespace {

using namespace parsec::maspar;
using parsec::util::Rng;

class MachineProperty : public ::testing::TestWithParam<int> {};

TEST_P(MachineProperty, SegScansMatchReferenceUnderMasks) {
  Rng rng(555 + GetParam());
  const int V = 1 + static_cast<int>(rng.next_below(300));
  Machine m(V, 64);

  // Random contiguous segmentation.
  std::vector<int> seg(V);
  int seg_id = 0;
  for (int pe = 0; pe < V; ++pe) {
    if (pe > 0 && rng.next_bool(0.2)) ++seg_id;
    seg[pe] = seg_id;
  }
  // Random enable mask and values.
  std::vector<std::uint8_t> mask(V), v(V);
  for (int pe = 0; pe < V; ++pe) {
    mask[pe] = rng.next_bool(0.8);
    v[pe] = rng.next_bool(0.3);
  }

  Machine::EnableScope scope(m, mask);
  const auto or_out = m.seg_or(v, seg);
  const auto and_out = m.seg_and(v, seg);

  // Reference: per-segment reduction over enabled PEs.
  for (int pe = 0; pe < V; ++pe) {
    if (!mask[pe]) continue;
    std::uint8_t ref_or = 0, ref_and = 1;
    for (int q = 0; q < V; ++q) {
      if (seg[q] != seg[pe] || !mask[q]) continue;
      ref_or |= v[q];
      ref_and &= v[q];
    }
    EXPECT_EQ(or_out[pe], ref_or) << "pe " << pe;
    EXPECT_EQ(and_out[pe], ref_and) << "pe " << pe;
  }
}

TEST_P(MachineProperty, GatherMatchesReference) {
  Rng rng(901 + GetParam());
  const int V = 2 + static_cast<int>(rng.next_below(200));
  Machine m(V, 32);
  std::vector<int> values(V), from(V);
  std::vector<std::uint8_t> mask(V);
  for (int pe = 0; pe < V; ++pe) {
    values[pe] = static_cast<int>(rng.next_below(1000));
    from[pe] = static_cast<int>(rng.next_below(V));
    mask[pe] = rng.next_bool(0.7);
  }
  Machine::EnableScope scope(m, mask);
  const auto out = m.gather(values, from);
  for (int pe = 0; pe < V; ++pe) {
    if (mask[pe]) {
      EXPECT_EQ(out[pe], values[from[pe]]) << pe;
    }
  }
}

TEST_P(MachineProperty, StatsCountEveryPrimitive) {
  Rng rng(77 + GetParam());
  const int V = 16;
  Machine m(V, 16);
  const std::uint64_t scans = 1 + rng.next_below(5);
  const std::uint64_t routes = 1 + rng.next_below(5);
  const std::uint64_t plurals = 1 + rng.next_below(5);
  std::vector<std::uint8_t> v(V, 1);
  std::vector<int> seg(V, 0), from(V, 0);
  for (std::uint64_t i = 0; i < scans; ++i) m.seg_or(v, seg);
  for (std::uint64_t i = 0; i < routes; ++i) m.gather(v, from);
  for (std::uint64_t i = 0; i < plurals; ++i) m.simd(3, [](int) {});
  EXPECT_EQ(m.stats().scan_ops, scans);
  EXPECT_EQ(m.stats().route_ops, routes);
  EXPECT_EQ(m.stats().plural_ops, 3 * plurals);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MachineProperty, ::testing::Range(0, 10));

TEST(MachineScanSizes, MismatchedSizesThrow) {
  Machine m(8, 8);
  std::vector<std::uint8_t> v(7, 0);
  std::vector<int> seg(8, 0);
  EXPECT_THROW(m.seg_or(v, seg), std::invalid_argument);
  std::vector<std::uint8_t> v8(8, 0);
  std::vector<int> seg7(7, 0);
  EXPECT_THROW(m.seg_and(v8, seg7), std::invalid_argument);
}

}  // namespace
