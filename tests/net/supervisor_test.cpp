// Supervisor: crash detection via waitpid, hang detection via Ping,
// budgeted restarts with backoff, and the terminal Down state.  These
// tests drive REAL parse_serverd children (PARSEC_SERVERD_PATH is
// injected by CMake) — kill -9 and SIGSTOP are the fault injectors,
// exactly what scripts/run_fleet_chaos.sh does at fleet scale.
#include <gtest/gtest.h>

#include <csignal>
#include <chrono>
#include <string>
#include <thread>

#include "net/client.h"
#include "net/supervisor.h"
#include "obs/metrics.h"

namespace {

using namespace parsec;
using namespace std::chrono_literals;
using net::ShardState;
using net::Supervisor;

// Each test uses its own port range so a slow teardown in one test
// cannot make the next one's bind fail with EADDRINUSE.
Supervisor::Options base_options(std::uint16_t port_base, int shards) {
  Supervisor::Options opt;
  opt.serverd_path = PARSEC_SERVERD_PATH;
  opt.port_base = port_base;
  opt.shards = shards;
  opt.ping_interval = 100ms;
  opt.ping_timeout_ms = 400;
  opt.startup_grace_ms = 10000;
  opt.backoff_base = std::chrono::milliseconds(20);
  opt.backoff_max = std::chrono::milliseconds(100);
  opt.poll_interval_ms = 20;
  return opt;
}

// Polls `pred` until it holds or `timeout` expires.
template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(20ms);
  }
  return pred();
}

TEST(Supervisor, Kill9RestartsTheShardAtTheSamePort) {
  obs::Registry reg;
  auto opt = base_options(9410, 2);
  opt.metrics = &reg;
  Supervisor sup(opt);
  ASSERT_TRUE(sup.wait_all_up(15000));

  const pid_t victim = sup.pid_of(0);
  ASSERT_GT(victim, 0);
  ASSERT_EQ(::kill(victim, SIGKILL), 0);

  // waitpid reaps the corpse, backoff elapses, a new generation comes
  // up — at the SAME port, so routers re-promote without reconfig.
  EXPECT_TRUE(eventually(
      [&] {
        const auto st = sup.stats();
        return st.shards[0].generation >= 2 &&
               st.shards[0].state == ShardState::Up;
      },
      15000ms));

  const auto st = sup.stats();
  EXPECT_GE(st.restarts, 1u);
  EXPECT_EQ(st.permanently_down, 0u);
  EXPECT_NE(sup.pid_of(0), victim);
  // The reborn shard answers on port_base+0 again.
  std::string err;
  auto c = net::Client::connect("127.0.0.1", sup.port_for(0), &err);
  ASSERT_TRUE(c.has_value()) << err;
  EXPECT_TRUE(c->ping(1000, &err)) << err;
  // The untouched shard never restarted.
  EXPECT_EQ(sup.stats().shards[1].generation, 1u);
  sup.stop();
}

TEST(Supervisor, RestartBudgetExhaustionIsTerminalDown) {
  obs::Registry reg;
  auto opt = base_options(9420, 1);
  opt.metrics = &reg;
  opt.restart_budget = 1;  // one free respawn, then give up
  Supervisor sup(opt);
  ASSERT_TRUE(sup.wait_all_up(15000));

  // First kill: consumes the whole budget (restart 1/1).
  ASSERT_EQ(::kill(sup.pid_of(0), SIGKILL), 0);
  ASSERT_TRUE(eventually(
      [&] { return sup.stats().shards[0].generation >= 2 &&
                   sup.stats().shards[0].state == ShardState::Up; },
      15000ms));

  // Second kill: budget exhausted → permanent Down, no more respawns.
  ASSERT_EQ(::kill(sup.pid_of(0), SIGKILL), 0);
  EXPECT_TRUE(eventually(
      [&] { return sup.stats().permanently_down == 1u; }, 15000ms));
  const auto st = sup.stats();
  EXPECT_EQ(st.shards[0].state, ShardState::Down);
  EXPECT_EQ(sup.pid_of(0), -1);

  // Down is terminal: nothing comes back even after the backoff would
  // have elapsed several times over.
  std::this_thread::sleep_for(300ms);
  EXPECT_EQ(sup.stats().shards[0].generation, 2u);
  sup.stop();
}

TEST(Supervisor, HungShardIsKilledAndRestarted) {
  obs::Registry reg;
  auto opt = base_options(9430, 1);
  opt.metrics = &reg;
  opt.ping_interval = 50ms;
  opt.ping_timeout_ms = 200;
  opt.hang_pings = 2;
  Supervisor sup(opt);
  ASSERT_TRUE(sup.wait_all_up(15000));

  // SIGSTOP freezes the process without killing it: the pid stays
  // alive (waitpid sees nothing) but Pings go unanswered.  The
  // supervisor must escalate to SIGKILL and restart.
  const pid_t frozen = sup.pid_of(0);
  ASSERT_EQ(::kill(frozen, SIGSTOP), 0);

  EXPECT_TRUE(eventually(
      [&] {
        const auto st = sup.stats();
        return st.hang_kills >= 1 && st.shards[0].generation >= 2 &&
               st.shards[0].state == ShardState::Up;
      },
      20000ms));
  EXPECT_NE(sup.pid_of(0), frozen);
  sup.stop();

  const auto st = sup.stats();
  EXPECT_GE(st.hang_kills, 1u);
  EXPECT_GE(st.restarts, 1u);
}

}  // namespace
