// Wire protocol: round-trips, the golden hexdump pinned in
// docs/SERVING.md, and rejection of every malformed-frame class
// (truncated, oversized, bad magic/version/type, lying payloads)
// without crashing — the decoder is the trust boundary.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "net/wire.h"
#include "parsec/backend.h"
#include "util/bitset.h"

namespace {

using namespace parsec;
using namespace parsec::net;

WireRequest sample_request() {
  WireRequest req;
  req.grammar = "english";
  req.backend = engine::Backend::Maspar;
  req.deadline_ms = 250;
  req.flags = kFlagCaptureDomains;
  req.idempotency_key = 0xdeadbeefcafe1234ull;
  req.words = {"the", "quick", "dog", "runs"};
  return req;
}

TEST(WireProtocol, RequestRoundTrips) {
  const WireRequest req = sample_request();
  std::vector<std::uint8_t> frame;
  ASSERT_TRUE(encode_request(req, frame));

  FrameHeader header;
  ASSERT_EQ(decode_header(frame.data(), frame.size(), header),
            DecodeStatus::Ok);
  EXPECT_EQ(header.type, FrameType::ParseRequest);
  ASSERT_EQ(frame.size(), kHeaderSize + header.payload_len);

  WireRequest back;
  ASSERT_EQ(decode_request(frame.data() + kHeaderSize, header.payload_len,
                           back),
            DecodeStatus::Ok);
  EXPECT_EQ(back.grammar, req.grammar);
  EXPECT_EQ(back.backend, req.backend);
  EXPECT_EQ(back.deadline_ms, req.deadline_ms);
  EXPECT_EQ(back.flags, req.flags);
  EXPECT_EQ(back.idempotency_key, req.idempotency_key);
  EXPECT_EQ(back.words, req.words);
}

TEST(WireProtocol, ResponseRoundTripsWithDomains) {
  WireResponse resp;
  resp.status = serve::RequestStatus::Ok;
  resp.served_backend = engine::Backend::Serial;
  resp.accepted = true;
  resp.cached = true;
  resp.degraded = true;
  resp.shard = 3;
  resp.idempotency_key = 0x1122334455667788ull;
  resp.hedged = true;
  resp.hedge_won = true;
  resp.grammar_epoch = 7;
  resp.domains_hash = 0x0123456789abcdefull;
  resp.alive_role_values = 42;
  resp.latency_us = 1234;
  resp.error = "soft: rerouted";
  util::DynBitset d(13);
  d.set(0);
  d.set(5);
  d.set(12);
  resp.domains.push_back(d);

  std::vector<std::uint8_t> frame;
  ASSERT_TRUE(encode_response(resp, frame));
  FrameHeader header;
  ASSERT_EQ(decode_header(frame.data(), frame.size(), header),
            DecodeStatus::Ok);
  EXPECT_EQ(header.type, FrameType::ParseResponse);

  WireResponse back;
  ASSERT_EQ(decode_response(frame.data() + kHeaderSize, header.payload_len,
                            back),
            DecodeStatus::Ok);
  EXPECT_EQ(back.status, resp.status);
  EXPECT_EQ(back.served_backend, resp.served_backend);
  EXPECT_TRUE(back.accepted);
  EXPECT_TRUE(back.cached);
  EXPECT_FALSE(back.coalesced);
  EXPECT_TRUE(back.degraded);
  EXPECT_EQ(back.shard, 3);
  EXPECT_EQ(back.idempotency_key, 0x1122334455667788ull);
  EXPECT_TRUE(back.hedged);
  EXPECT_TRUE(back.hedge_won);
  EXPECT_EQ(back.grammar_epoch, 7u);
  EXPECT_EQ(back.domains_hash, resp.domains_hash);
  EXPECT_EQ(back.alive_role_values, 42u);
  EXPECT_EQ(back.latency_us, 1234u);
  EXPECT_EQ(back.error, "soft: rerouted");
  ASSERT_EQ(back.domains.size(), 1u);
  EXPECT_EQ(back.domains[0].size(), 13u);
  for (std::size_t i = 0; i < 13; ++i)
    EXPECT_EQ(back.domains[0].test(i), d.test(i)) << i;
}

// The worked example in docs/SERVING.md ("Anatomy of a request"), byte
// for byte.  If this test moves, the manual moves with it.
TEST(WireProtocol, GoldenHexdumpMatchesTheManual) {
  WireRequest req;
  req.grammar = "english";
  req.backend = engine::Backend::Serial;
  req.deadline_ms = 0;
  req.flags = 0;
  req.words = {"the", "dog", "runs"};
  std::vector<std::uint8_t> frame;
  ASSERT_TRUE(encode_request(req, frame));

  const std::uint8_t golden[] = {
      // header: magic "PARC", version 2, type 1, payload length 41
      0x50, 0x41, 0x52, 0x43, 0x02, 0x01, 0x29, 0x00, 0x00, 0x00,
      // backend=serial(0), flags=0, deadline_ms=0
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      // idempotency_key=0 (v2)
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      // grammar: len 7, "english"
      0x07, 0x00, 'e', 'n', 'g', 'l', 'i', 's', 'h',
      // word count 3; "the", "dog", "runs"
      0x03, 0x00, 0x03, 0x00, 't', 'h', 'e', 0x03, 0x00, 'd', 'o', 'g',
      0x04, 0x00, 'r', 'u', 'n', 's'};
  ASSERT_EQ(frame.size(), sizeof golden);
  for (std::size_t i = 0; i < sizeof golden; ++i)
    EXPECT_EQ(frame[i], golden[i]) << "byte " << i;
}

// A v1 peer (previous release) must keep working against a v2
// decoder: the header accepts version 1, and version-aware payload
// decoding skips the fields v1 never sent (idempotency key / echo).
TEST(WireProtocol, V1RequestFramesStillDecode) {
  // The PR 9 golden frame, byte for byte — version 1, no key field.
  const std::uint8_t v1_frame[] = {
      0x50, 0x41, 0x52, 0x43, 0x01, 0x01, 0x21, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x07, 0x00, 'e', 'n', 'g', 'l', 'i', 's', 'h',
      0x03, 0x00, 0x03, 0x00, 't', 'h', 'e', 0x03, 0x00, 'd', 'o', 'g',
      0x04, 0x00, 'r', 'u', 'n', 's'};
  FrameHeader header;
  ASSERT_EQ(decode_header(v1_frame, sizeof v1_frame, header),
            DecodeStatus::Ok);
  EXPECT_EQ(header.version, 1);
  ASSERT_EQ(sizeof v1_frame, kHeaderSize + header.payload_len);
  WireRequest req;
  ASSERT_EQ(decode_request(v1_frame + kHeaderSize, header.payload_len,
                           req, header.version),
            DecodeStatus::Ok);
  EXPECT_EQ(req.grammar, "english");
  EXPECT_EQ(req.backend, engine::Backend::Serial);
  EXPECT_EQ(req.idempotency_key, 0u);  // v1 never carries one
  EXPECT_EQ(req.words,
            (std::vector<std::string>{"the", "dog", "runs"}));
  // The same payload under v2 rules must NOT decode cleanly — the
  // eight key bytes it lacks shift every later field.
  WireRequest wrong;
  EXPECT_NE(decode_request(v1_frame + kHeaderSize, header.payload_len,
                           wrong, /*version=*/2),
            DecodeStatus::Ok);
}

TEST(WireProtocol, V1ResponseFramesStillDecode) {
  // Hand-built v1 response payload: status/backend/bits/shard, then
  // straight to grammar_epoch (no key echo), epoch=7, hash, counters,
  // error "x", zero domains.
  std::vector<std::uint8_t> payload = {0x00, 0x02, 0x01, 0x02};
  auto put64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i)
      payload.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  auto put32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i)
      payload.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  put64(7);                        // grammar_epoch
  put64(0xfeedfacecafebeefull);    // domains_hash
  put32(42);                       // alive_role_values
  put32(1234);                     // latency_us
  payload.push_back(0x01);         // error len 1
  payload.push_back(0x00);
  payload.push_back('x');
  payload.push_back(0x00);         // ndomains = 0
  payload.push_back(0x00);

  WireResponse back;
  ASSERT_EQ(decode_response(payload.data(), payload.size(), back,
                            /*version=*/1),
            DecodeStatus::Ok);
  EXPECT_EQ(back.status, serve::RequestStatus::Ok);
  EXPECT_EQ(back.served_backend, engine::Backend::Pram);
  EXPECT_TRUE(back.accepted);
  EXPECT_EQ(back.shard, 2);
  EXPECT_EQ(back.idempotency_key, 0u);
  EXPECT_EQ(back.grammar_epoch, 7u);
  EXPECT_EQ(back.domains_hash, 0xfeedfacecafebeefull);
  EXPECT_EQ(back.alive_role_values, 42u);
  EXPECT_EQ(back.latency_us, 1234u);
  EXPECT_EQ(back.error, "x");
}

TEST(WireProtocol, RejectsBadMagicVersionTypeAndOversize) {
  std::vector<std::uint8_t> frame;
  encode_request(sample_request(), frame);
  FrameHeader header;

  auto mutated = frame;
  mutated[0] = 'X';
  EXPECT_EQ(decode_header(mutated.data(), mutated.size(), header),
            DecodeStatus::BadMagic);

  mutated = frame;
  mutated[4] = 99;  // version above kWireVersion
  EXPECT_EQ(decode_header(mutated.data(), mutated.size(), header),
            DecodeStatus::BadVersion);
  mutated[4] = 0;  // below kMinWireVersion
  EXPECT_EQ(decode_header(mutated.data(), mutated.size(), header),
            DecodeStatus::BadVersion);

  mutated = frame;
  mutated[5] = 0;  // type below the enum range
  EXPECT_EQ(decode_header(mutated.data(), mutated.size(), header),
            DecodeStatus::BadType);
  mutated[5] = 200;
  EXPECT_EQ(decode_header(mutated.data(), mutated.size(), header),
            DecodeStatus::BadType);

  mutated = frame;
  // payload_len = kMaxPayload + 1 (little-endian at offset 6)
  const std::uint32_t big = kMaxPayload + 1;
  mutated[6] = static_cast<std::uint8_t>(big);
  mutated[7] = static_cast<std::uint8_t>(big >> 8);
  mutated[8] = static_cast<std::uint8_t>(big >> 16);
  mutated[9] = static_cast<std::uint8_t>(big >> 24);
  EXPECT_EQ(decode_header(mutated.data(), mutated.size(), header),
            DecodeStatus::Oversized);
}

TEST(WireProtocol, EveryTruncationIsRejectedNotCrashed) {
  std::vector<std::uint8_t> frame;
  encode_request(sample_request(), frame);
  FrameHeader header;
  ASSERT_EQ(decode_header(frame.data(), frame.size(), header),
            DecodeStatus::Ok);

  for (std::size_t n = 0; n < kHeaderSize; ++n)
    EXPECT_EQ(decode_header(frame.data(), n, header),
              DecodeStatus::Truncated)
        << n;
  // Every payload prefix shorter than the real payload must decode to
  // Truncated (a string length that lies lands in the same bucket).
  WireRequest req;
  for (std::size_t n = 0; n < header.payload_len; ++n)
    EXPECT_EQ(decode_request(frame.data() + kHeaderSize, n, req),
              DecodeStatus::Truncated)
        << n;
  // Trailing garbage is Malformed, not silently ignored.
  std::vector<std::uint8_t> longer(frame.begin() + kHeaderSize, frame.end());
  longer.push_back(0xee);
  EXPECT_EQ(decode_request(longer.data(), longer.size(), req),
            DecodeStatus::Malformed);
}

TEST(WireProtocol, PayloadLyingAboutItselfIsRejected) {
  // backend byte out of range
  std::vector<std::uint8_t> frame;
  encode_request(sample_request(), frame);
  auto payload = std::vector<std::uint8_t>(frame.begin() + kHeaderSize,
                                           frame.end());
  payload[0] = 200;
  WireRequest req;
  EXPECT_EQ(decode_request(payload.data(), payload.size(), req),
            DecodeStatus::Malformed);

  // response status byte out of range
  WireResponse resp;
  std::vector<std::uint8_t> rframe;
  encode_response(resp, rframe);
  auto rpayload = std::vector<std::uint8_t>(rframe.begin() + kHeaderSize,
                                            rframe.end());
  rpayload[0] = 77;
  WireResponse back;
  EXPECT_EQ(decode_response(rpayload.data(), rpayload.size(), back),
            DecodeStatus::Malformed);
}

// Deterministic mutation fuzz: single-byte corruptions of a valid
// frame must decode to Ok or a clean DecodeStatus — never crash, hang,
// or read out of bounds (ASan/UBSan run this in CI).
TEST(WireProtocol, MutationFuzzNeverCrashes) {
  std::vector<std::uint8_t> frame;
  encode_request(sample_request(), frame);
  std::mt19937 rng(0x5eed);
  std::uniform_int_distribution<std::size_t> pos(0, frame.size() - 1);
  std::uniform_int_distribution<int> byte(0, 255);

  for (int iter = 0; iter < 20000; ++iter) {
    auto mutated = frame;
    const int flips = 1 + iter % 4;
    for (int f = 0; f < flips; ++f)
      mutated[pos(rng)] = static_cast<std::uint8_t>(byte(rng));
    FrameHeader header;
    const DecodeStatus hs =
        decode_header(mutated.data(), mutated.size(), header);
    if (hs != DecodeStatus::Ok) continue;
    WireRequest req;
    const std::size_t avail = mutated.size() - kHeaderSize;
    (void)decode_request(mutated.data() + kHeaderSize,
                         std::min<std::size_t>(avail, header.payload_len),
                         req);
  }
  SUCCEED();
}

WireResponse sample_response() {
  WireResponse resp;
  resp.status = serve::RequestStatus::Ok;
  resp.served_backend = engine::Backend::Maspar;
  resp.accepted = true;
  resp.shard = 1;
  resp.grammar_epoch = 3;
  resp.domains_hash = 0xfeedfacecafebeefull;
  resp.latency_us = 512;
  resp.error = "x";
  util::DynBitset d(21);
  d.set(2);
  d.set(20);
  resp.domains.push_back(d);
  resp.domains.push_back(util::DynBitset(8));
  return resp;
}

// Regression for the decode_response overflow: a domain bit-count near
// UINT32_MAX used to wrap (nbits + 7) / 8 to a tiny nbytes in 32-bit
// arithmetic, pass the bounds check, and read ~512 MiB past the
// payload.  Every hostile count must land in Truncated instead.
TEST(WireProtocol, HostileDomainBitCountIsRejected) {
  WireResponse resp;  // no domains
  std::vector<std::uint8_t> frame;
  ASSERT_TRUE(encode_response(resp, frame));
  auto payload = std::vector<std::uint8_t>(frame.begin() + kHeaderSize,
                                           frame.end());
  // Patch the trailing domain count to 1 and append a lying bit-count
  // plus a few real bytes for a broken decoder to march past.
  payload[payload.size() - 2] = 1;
  payload[payload.size() - 1] = 0;
  for (std::uint64_t nbits = 0xFFFFFFF9ull; nbits <= 0xFFFFFFFFull; ++nbits) {
    auto evil = payload;
    for (int i = 0; i < 4; ++i)
      evil.push_back(static_cast<std::uint8_t>(nbits >> (8 * i)));
    evil.insert(evil.end(), 8, 0xab);
    WireResponse back;
    EXPECT_EQ(decode_response(evil.data(), evil.size(), back),
              DecodeStatus::Truncated)
        << nbits;
  }
}

// The response decoder gets the same hostility sweep as the request
// decoder: every truncation rejected cleanly, trailing garbage is
// Malformed, and random corruption never crashes (ASan/UBSan in CI).
TEST(WireProtocol, ResponseTruncationsAndMutationsNeverCrash) {
  std::vector<std::uint8_t> frame;
  ASSERT_TRUE(encode_response(sample_response(), frame));
  FrameHeader header;
  ASSERT_EQ(decode_header(frame.data(), frame.size(), header),
            DecodeStatus::Ok);

  WireResponse back;
  for (std::size_t n = 0; n < header.payload_len; ++n)
    EXPECT_EQ(decode_response(frame.data() + kHeaderSize, n, back),
              DecodeStatus::Truncated)
        << n;
  std::vector<std::uint8_t> longer(frame.begin() + kHeaderSize, frame.end());
  longer.push_back(0xee);
  EXPECT_EQ(decode_response(longer.data(), longer.size(), back),
            DecodeStatus::Malformed);

  std::mt19937 rng(0xd0d0);
  std::uniform_int_distribution<std::size_t> pos(0, frame.size() - 1);
  std::uniform_int_distribution<int> byte(0, 255);
  for (int iter = 0; iter < 20000; ++iter) {
    auto mutated = frame;
    const int flips = 1 + iter % 4;
    for (int f = 0; f < flips; ++f)
      mutated[pos(rng)] = static_cast<std::uint8_t>(byte(rng));
    const DecodeStatus hs =
        decode_header(mutated.data(), mutated.size(), header);
    if (hs != DecodeStatus::Ok) continue;
    const std::size_t avail = mutated.size() - kHeaderSize;
    (void)decode_response(mutated.data() + kHeaderSize,
                          std::min<std::size_t>(avail, header.payload_len),
                          back);
  }
  SUCCEED();
}

// Encoders refuse messages the frame format cannot represent instead
// of emitting self-inconsistent bytes, and roll `out` back so nothing
// half-framed reaches the wire.
TEST(WireProtocol, EncodeRefusesUnframeableMessages) {
  const std::vector<std::uint8_t> sentinel = {0xaa, 0xbb};

  WireRequest req = sample_request();
  req.words.push_back(std::string(70000, 'w'));  // word > u16 length field
  auto out = sentinel;
  EXPECT_FALSE(encode_request(req, out));
  EXPECT_EQ(out, sentinel);

  req = sample_request();
  req.grammar.assign(70000, 'g');
  out = sentinel;
  EXPECT_FALSE(encode_request(req, out));
  EXPECT_EQ(out, sentinel);

  req = sample_request();
  req.words.assign(65536, "w");  // word count > u16
  out = sentinel;
  EXPECT_FALSE(encode_request(req, out));
  EXPECT_EQ(out, sentinel);

  req = sample_request();
  req.words.assign(20, std::string(60000, 'w'));  // payload > kMaxPayload
  out = sentinel;
  EXPECT_FALSE(encode_request(req, out));
  EXPECT_EQ(out, sentinel);

  WireResponse resp;
  resp.error.assign(70000, 'e');
  out = sentinel;
  EXPECT_FALSE(encode_response(resp, out));
  EXPECT_EQ(out, sentinel);

  resp = WireResponse{};
  resp.domains.assign(65536, util::DynBitset(1));  // domain count > u16
  out = sentinel;
  EXPECT_FALSE(encode_response(resp, out));
  EXPECT_EQ(out, sentinel);

  // The limits are exact, not fuzzy: 65535 one-byte words still frame.
  req = sample_request();
  req.words.assign(65535, "w");
  out.clear();
  EXPECT_TRUE(encode_request(req, out));
}

TEST(WireProtocol, ToWireClampsAbsurdLatencies) {
  serve::ParseResponse resp;
  resp.queue_seconds = 5000.0;  // ~83 min in micros overflows u32
  resp.parse_seconds = 1.0;
  EXPECT_EQ(to_wire(resp, 0).latency_us, 0xFFFFFFFFu);
  resp.queue_seconds = 0.0;
  resp.parse_seconds = 0.5;
  EXPECT_EQ(to_wire(resp, 0).latency_us, 500000u);
}

TEST(WireProtocol, RouteHashSeparatesTenantsAndSentences) {
  WireRequest a = sample_request();
  WireRequest b = sample_request();
  EXPECT_EQ(route_hash(a, false), route_hash(b, false));
  EXPECT_EQ(route_hash(a, true), route_hash(b, true));
  b.words.back() = "sleeps";
  EXPECT_EQ(route_hash(a, false), route_hash(b, false));  // same tenant
  EXPECT_NE(route_hash(a, true), route_hash(b, true));
  b = sample_request();
  b.grammar = "toy";
  EXPECT_NE(route_hash(a, false), route_hash(b, false));
  // Word-boundary separator: {"ab","c"} must not collide with {"a","bc"}.
  WireRequest c = sample_request(), d = sample_request();
  c.words = {"ab", "c"};
  d.words = {"a", "bc"};
  EXPECT_NE(route_hash(c, true), route_hash(d, true));
}

}  // namespace
