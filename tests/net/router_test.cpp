// ParseRouter: hash routing, per-shard spread, failover when a shard
// dies mid-run (rerouted requests succeed, bit-identically), recovery
// via probes, and the no-healthy-shard refusal.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cdg/parser.h"
#include "grammars/english_grammar.h"
#include "grammars/sentence_gen.h"
#include "net/client.h"
#include "net/router.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "parsec/backend.h"
#include "serve/grammar_registry.h"
#include "serve/parse_service.h"

namespace {

using namespace parsec;
using namespace std::chrono_literals;

// One in-process shard: registry + service + wire server.
struct Shard {
  obs::Registry metrics;
  serve::GrammarRegistry registry;
  std::optional<serve::ParseService> service;
  std::optional<net::ParseServer> server;

  explicit Shard(int shard_id) {
    registry.publish("english", grammars::make_english_grammar());
    serve::ParseService::Options sopt;
    sopt.threads = 2;
    sopt.default_grammar = "english";
    sopt.metrics = &metrics;
    service.emplace(registry, sopt);
    net::ParseServer::Options nopt;
    nopt.shard_id = shard_id;
    nopt.metrics = &metrics;
    server.emplace(*service, nopt);
  }
};

struct Fleet {
  std::vector<std::unique_ptr<Shard>> shards;
  obs::Registry router_metrics;
  std::optional<net::ParseRouter> router;

  explicit Fleet(int n, net::ParseRouter::Options opt = {}) {
    std::vector<net::ShardAddr> addrs;
    for (int i = 0; i < n; ++i) {
      shards.push_back(std::make_unique<Shard>(i));
      addrs.push_back({"127.0.0.1", shards.back()->server->port()});
    }
    opt.metrics = &router_metrics;
    opt.probe_interval = 50ms;
    router.emplace(std::move(addrs), opt);
  }

  net::Client connect() {
    std::string err;
    auto c = net::Client::connect("127.0.0.1", router->port(), &err);
    EXPECT_TRUE(c.has_value()) << err;
    return std::move(*c);
  }
};

net::WireRequest wire_request(const std::vector<std::string>& words) {
  net::WireRequest req;
  req.grammar = "english";
  req.backend = engine::Backend::Serial;
  req.words = words;
  return req;
}

TEST(ParseRouter, AnswersPingItself) {
  Fleet fleet(2);
  net::Client client = fleet.connect();
  std::string err;
  EXPECT_TRUE(client.ping(2000, &err)) << err;
}

TEST(ParseRouter, SentenceRoutingSpreadsOneTenantAcrossShards) {
  Fleet fleet(4);
  auto bundle = grammars::make_english_grammar();
  grammars::SentenceGenerator gen(bundle, 42);
  net::Client client = fleet.connect();
  for (int i = 0; i < 40; ++i) {
    net::WireResponse resp;
    std::string err;
    ASSERT_TRUE(client.request(wire_request(gen.generate(4 + i % 8)), resp,
                               &err))
        << err;
    ASSERT_EQ(resp.status, serve::RequestStatus::Ok);
  }
  const auto stats = fleet.router->stats();
  int shards_hit = 0;
  for (std::uint64_t n : stats.per_shard) shards_hit += n > 0;
  EXPECT_GE(shards_hit, 2) << "one tenant stuck to one shard";
  EXPECT_EQ(stats.forwarded, 40u);
}

TEST(ParseRouter, TenantRoutingPinsATenantToOneShard) {
  net::ParseRouter::Options opt;
  opt.route_by = net::RouteBy::Tenant;
  Fleet fleet(4, opt);
  auto bundle = grammars::make_english_grammar();
  grammars::SentenceGenerator gen(bundle, 42);
  net::Client client = fleet.connect();
  for (int i = 0; i < 20; ++i) {
    net::WireResponse resp;
    std::string err;
    ASSERT_TRUE(client.request(wire_request(gen.generate(4 + i % 8)), resp,
                               &err));
    ASSERT_EQ(resp.status, serve::RequestStatus::Ok);
  }
  const auto stats = fleet.router->stats();
  int shards_hit = 0;
  for (std::uint64_t n : stats.per_shard) shards_hit += n > 0;
  EXPECT_EQ(shards_hit, 1) << "tenant affinity broken";
}

// The headline failover property: kill a shard mid-run; every request
// still answers Ok, rerouted requests are bit-identical to the serial
// reference, and the router accounts the failovers.
TEST(ParseRouter, FailoverMidRunIsBitIdentical) {
  Fleet fleet(2);
  auto bundle = grammars::make_english_grammar();
  grammars::SentenceGenerator gen(bundle, 1992);
  cdg::SequentialParser seq(bundle.grammar);
  net::Client client = fleet.connect();

  std::vector<std::vector<std::string>> corpus;
  std::vector<std::uint64_t> reference;
  for (int i = 0; i < 30; ++i) {
    corpus.push_back(gen.generate(4 + i % 8));
    cdg::Network net = seq.make_network(bundle.lexicon.tag(corpus.back()));
    seq.parse(net);
    std::vector<util::DynBitset> domains;
    for (int r = 0; r < net.num_roles(); ++r)
      domains.emplace_back(net.domain(r));
    reference.push_back(engine::hash_domains(domains));
  }

  for (int i = 0; i < 30; ++i) {
    if (i == 10) {
      // Shard 0 dies mid-run (drain closes its listener and
      // connections; the in-flight request finishes first).
      fleet.shards[0]->server->drain();
    }
    net::WireResponse resp;
    std::string err;
    ASSERT_TRUE(client.request(wire_request(corpus[i]), resp, &err))
        << "request " << i << ": " << err;
    ASSERT_EQ(resp.status, serve::RequestStatus::Ok) << "request " << i;
    EXPECT_EQ(resp.domains_hash, reference[i]) << "request " << i;
    if (i >= 10) {
      EXPECT_EQ(resp.shard, 1) << "request " << i;
    }
  }

  const auto stats = fleet.router->stats();
  EXPECT_EQ(stats.forwarded, 30u);
  EXPECT_EQ(stats.unroutable, 0u);
  EXPECT_FALSE(stats.shard_up[0]);
  EXPECT_TRUE(stats.shard_up[1]);
}

TEST(ParseRouter, ProbePromotesARecoveredShard) {
  Fleet fleet(2);
  // Kill shard 1 and let the prober notice.
  fleet.shards[1]->server->drain();
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (fleet.router->stats().shard_up[1] &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(10ms);
  ASSERT_FALSE(fleet.router->stats().shard_up[1]);

  // Resurrect shard 1 on the SAME port (the router's configured
  // address) and wait for the prober to promote it.
  const std::uint16_t port = fleet.shards[1]->server->port();
  fleet.shards[1]->server.reset();
  net::ParseServer::Options nopt;
  nopt.port = port;
  nopt.shard_id = 1;
  nopt.metrics = &fleet.shards[1]->metrics;
  fleet.shards[1]->server.emplace(*fleet.shards[1]->service, nopt);
  while (!fleet.router->stats().shard_up[1] &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(10ms);
  EXPECT_TRUE(fleet.router->stats().shard_up[1]);
}

TEST(ParseRouter, NoHealthyShardAnswersFaultedNotSilence) {
  Fleet fleet(2);
  fleet.shards[0]->server->drain();
  fleet.shards[1]->server->drain();
  net::Client client = fleet.connect();
  net::WireResponse resp;
  std::string err;
  // Some requests may still ride cached legs; eventually every shard is
  // demoted and the router refuses with Faulted.
  bool saw_refusal = false;
  for (int i = 0; i < 10 && !saw_refusal; ++i) {
    ASSERT_TRUE(client.request(wire_request({"the", "dog", "runs"}), resp,
                               &err))
        << err;
    saw_refusal = resp.status == serve::RequestStatus::Faulted &&
                  resp.error == "router: no healthy shard";
  }
  EXPECT_TRUE(saw_refusal);
  EXPECT_GE(fleet.router->stats().unroutable, 1u);
}

TEST(ParseRouter, RouteHookIsDeterministic) {
  Fleet fleet(4);
  net::WireRequest req = wire_request({"the", "dog", "runs"});
  const int first = fleet.router->route(req);
  ASSERT_GE(first, 0);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(fleet.router->route(req), first);
}

}  // namespace
