// ParseRouter: hash routing, per-shard spread, failover when a shard
// dies mid-run (rerouted requests succeed, bit-identically), recovery
// via probes, and the no-healthy-shard refusal.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cdg/parser.h"
#include "grammars/english_grammar.h"
#include "grammars/sentence_gen.h"
#include "net/client.h"
#include "net/router.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "parsec/backend.h"
#include "serve/grammar_registry.h"
#include "serve/parse_service.h"

namespace {

using namespace parsec;
using namespace std::chrono_literals;

// One in-process shard: registry + service + wire server.
struct Shard {
  obs::Registry metrics;
  serve::GrammarRegistry registry;
  std::optional<serve::ParseService> service;
  std::optional<net::ParseServer> server;

  explicit Shard(int shard_id) {
    registry.publish("english", grammars::make_english_grammar());
    serve::ParseService::Options sopt;
    sopt.threads = 2;
    sopt.default_grammar = "english";
    sopt.metrics = &metrics;
    service.emplace(registry, sopt);
    net::ParseServer::Options nopt;
    nopt.shard_id = shard_id;
    nopt.metrics = &metrics;
    server.emplace(*service, nopt);
  }
};

struct Fleet {
  std::vector<std::unique_ptr<Shard>> shards;
  obs::Registry router_metrics;
  std::optional<net::ParseRouter> router;

  explicit Fleet(int n, net::ParseRouter::Options opt = {}) {
    std::vector<net::ShardAddr> addrs;
    for (int i = 0; i < n; ++i) {
      shards.push_back(std::make_unique<Shard>(i));
      addrs.push_back({"127.0.0.1", shards.back()->server->port()});
    }
    opt.metrics = &router_metrics;
    opt.probe_interval = 50ms;
    router.emplace(std::move(addrs), opt);
  }

  net::Client connect() {
    std::string err;
    auto c = net::Client::connect("127.0.0.1", router->port(), &err);
    EXPECT_TRUE(c.has_value()) << err;
    return std::move(*c);
  }
};

net::WireRequest wire_request(const std::vector<std::string>& words) {
  net::WireRequest req;
  req.grammar = "english";
  req.backend = engine::Backend::Serial;
  req.words = words;
  return req;
}

TEST(ParseRouter, AnswersPingItself) {
  Fleet fleet(2);
  net::Client client = fleet.connect();
  std::string err;
  EXPECT_TRUE(client.ping(2000, &err)) << err;
}

TEST(ParseRouter, SentenceRoutingSpreadsOneTenantAcrossShards) {
  Fleet fleet(4);
  auto bundle = grammars::make_english_grammar();
  grammars::SentenceGenerator gen(bundle, 42);
  net::Client client = fleet.connect();
  for (int i = 0; i < 40; ++i) {
    net::WireResponse resp;
    std::string err;
    ASSERT_TRUE(client.request(wire_request(gen.generate(4 + i % 8)), resp,
                               &err))
        << err;
    ASSERT_EQ(resp.status, serve::RequestStatus::Ok);
  }
  const auto stats = fleet.router->stats();
  int shards_hit = 0;
  for (std::uint64_t n : stats.per_shard) shards_hit += n > 0;
  EXPECT_GE(shards_hit, 2) << "one tenant stuck to one shard";
  EXPECT_EQ(stats.forwarded, 40u);
}

TEST(ParseRouter, TenantRoutingPinsATenantToOneShard) {
  net::ParseRouter::Options opt;
  opt.route_by = net::RouteBy::Tenant;
  Fleet fleet(4, opt);
  auto bundle = grammars::make_english_grammar();
  grammars::SentenceGenerator gen(bundle, 42);
  net::Client client = fleet.connect();
  for (int i = 0; i < 20; ++i) {
    net::WireResponse resp;
    std::string err;
    ASSERT_TRUE(client.request(wire_request(gen.generate(4 + i % 8)), resp,
                               &err));
    ASSERT_EQ(resp.status, serve::RequestStatus::Ok);
  }
  const auto stats = fleet.router->stats();
  int shards_hit = 0;
  for (std::uint64_t n : stats.per_shard) shards_hit += n > 0;
  EXPECT_EQ(shards_hit, 1) << "tenant affinity broken";
}

// The headline failover property: kill a shard mid-run; every request
// still answers Ok, rerouted requests are bit-identical to the serial
// reference, and the router accounts the failovers.
TEST(ParseRouter, FailoverMidRunIsBitIdentical) {
  Fleet fleet(2);
  auto bundle = grammars::make_english_grammar();
  grammars::SentenceGenerator gen(bundle, 1992);
  cdg::SequentialParser seq(bundle.grammar);
  net::Client client = fleet.connect();

  std::vector<std::vector<std::string>> corpus;
  std::vector<std::uint64_t> reference;
  for (int i = 0; i < 30; ++i) {
    corpus.push_back(gen.generate(4 + i % 8));
    cdg::Network net = seq.make_network(bundle.lexicon.tag(corpus.back()));
    seq.parse(net);
    std::vector<util::DynBitset> domains;
    for (int r = 0; r < net.num_roles(); ++r)
      domains.emplace_back(net.domain(r));
    reference.push_back(engine::hash_domains(domains));
  }

  for (int i = 0; i < 30; ++i) {
    if (i == 10) {
      // Shard 0 dies mid-run (drain closes its listener and
      // connections; the in-flight request finishes first).
      fleet.shards[0]->server->drain();
    }
    net::WireResponse resp;
    std::string err;
    ASSERT_TRUE(client.request(wire_request(corpus[i]), resp, &err))
        << "request " << i << ": " << err;
    ASSERT_EQ(resp.status, serve::RequestStatus::Ok) << "request " << i;
    EXPECT_EQ(resp.domains_hash, reference[i]) << "request " << i;
    if (i >= 10) {
      EXPECT_EQ(resp.shard, 1) << "request " << i;
    }
  }

  const auto stats = fleet.router->stats();
  EXPECT_EQ(stats.forwarded, 30u);
  EXPECT_EQ(stats.unroutable, 0u);
  EXPECT_FALSE(stats.shard_up[0]);
  EXPECT_TRUE(stats.shard_up[1]);
}

TEST(ParseRouter, ProbePromotesARecoveredShard) {
  Fleet fleet(2);
  // Kill shard 1 and let the prober notice.
  fleet.shards[1]->server->drain();
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (fleet.router->stats().shard_up[1] &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(10ms);
  ASSERT_FALSE(fleet.router->stats().shard_up[1]);

  // Resurrect shard 1 on the SAME port (the router's configured
  // address) and wait for the prober to promote it.
  const std::uint16_t port = fleet.shards[1]->server->port();
  fleet.shards[1]->server.reset();
  net::ParseServer::Options nopt;
  nopt.port = port;
  nopt.shard_id = 1;
  nopt.metrics = &fleet.shards[1]->metrics;
  fleet.shards[1]->server.emplace(*fleet.shards[1]->service, nopt);
  while (!fleet.router->stats().shard_up[1] &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(10ms);
  EXPECT_TRUE(fleet.router->stats().shard_up[1]);
}

TEST(ParseRouter, NoHealthyShardAnswersFaultedNotSilence) {
  Fleet fleet(2);
  fleet.shards[0]->server->drain();
  fleet.shards[1]->server->drain();
  net::Client client = fleet.connect();
  net::WireResponse resp;
  std::string err;
  // Some requests may still ride cached legs; eventually every shard is
  // demoted and the router refuses with Faulted.
  bool saw_refusal = false;
  for (int i = 0; i < 10 && !saw_refusal; ++i) {
    ASSERT_TRUE(client.request(wire_request({"the", "dog", "runs"}), resp,
                               &err))
        << err;
    saw_refusal = resp.status == serve::RequestStatus::Faulted &&
                  resp.error == "router: no healthy shard";
  }
  EXPECT_TRUE(saw_refusal);
  EXPECT_GE(fleet.router->stats().unroutable, 1u);
}

TEST(ParseRouter, RouteHookIsDeterministic) {
  Fleet fleet(4);
  net::WireRequest req = wire_request({"the", "dog", "runs"});
  const int first = fleet.router->route(req);
  ASSERT_GE(first, 0);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(fleet.router->route(req), first);
}

// A scriptable fake shard: answers Pings (so the prober keeps it
// healthy) and either stalls forever on ParseRequests (a straggler /
// hung shard) or drops the connection (a flaky shard).  This is the
// failure mode drain() can't model: the listener stays up and
// accepting, the worker never answers.
class StubShard {
 public:
  enum class Mode { StallRequests, CloseOnRequest };

  explicit StubShard(Mode mode) : mode_(mode) {
    std::string err;
    listener_ = net::tcp_listen(0, 16, &err);
    EXPECT_TRUE(listener_.valid()) << err;
    port_ = net::local_port(listener_);
    accept_thread_ = std::thread([this] { accept_loop(); });
  }

  ~StubShard() {
    stop_.store(true);
    if (accept_thread_.joinable()) accept_thread_.join();
    for (auto& t : conn_threads_)
      if (t.joinable()) t.join();
  }

  std::uint16_t port() const { return port_; }
  int requests_seen() const { return requests_seen_.load(); }

 private:
  void accept_loop() {
    while (!stop_.load()) {
      if (!net::poll_readable(listener_, 20)) continue;
      std::string err;
      net::Socket sock = net::tcp_accept(listener_, &err);
      if (!sock.valid()) continue;
      conn_threads_.emplace_back(
          [this, s = std::move(sock)]() mutable { serve(s); });
    }
  }

  void serve(net::Socket& sock) {
    while (!stop_.load()) {
      if (!net::poll_readable(sock, 20)) continue;
      net::Frame frame;
      net::DecodeStatus status;
      std::string err;
      if (!net::read_frame(sock, frame, &status, &err)) return;
      if (frame.header.type == net::FrameType::Ping) {
        std::vector<std::uint8_t> pong;
        net::encode_control(net::FrameType::Pong, pong);
        if (!net::write_frame(sock, pong, &err)) return;
        continue;
      }
      requests_seen_.fetch_add(1);
      if (mode_ == Mode::CloseOnRequest) return;  // drop the conn
      // StallRequests: swallow the frame and go silent (still drains
      // later pings on OTHER connections; this one just hangs).
      while (!stop_.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      return;
    }
  }

  Mode mode_;
  net::Socket listener_;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::vector<std::thread> conn_threads_;
  std::atomic<bool> stop_{false};
  std::atomic<int> requests_seen_{0};
};

// satellite (a): a hung shard must not wedge Client::request forever —
// the recv deadline expires, errs "timeout", and closes the socket so
// a late reply can never desync the stream.
TEST(ParseRouter, ClientRecvTimeoutUnhooksFromAHungShard) {
  StubShard stub(StubShard::Mode::StallRequests);
  std::string err;
  auto client = net::Client::connect("127.0.0.1", stub.port(), &err);
  ASSERT_TRUE(client.has_value()) << err;

  net::WireResponse resp;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(client->request(wire_request({"the", "dog", "runs"}), resp,
                               &err, /*timeout_ms=*/150));
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(err, "timeout");
  EXPECT_FALSE(client->valid()) << "socket must close on timeout";
  EXPECT_LT(waited, 2s) << "timeout did not bound the wait";
  EXPECT_GE(waited, 100ms) << "gave up before the deadline";
}

// Budgeted retries: two flaky shards that accept and then drop every
// request exhaust max_attempts and answer Faulted with the retry
// taxonomy error — not silence, not a hang.
TEST(ParseRouter, RetriesExhaustedAnswersFaulted) {
  StubShard a(StubShard::Mode::CloseOnRequest);
  StubShard b(StubShard::Mode::CloseOnRequest);
  obs::Registry metrics;
  net::ParseRouter::Options opt;
  opt.metrics = &metrics;
  opt.probe_interval = 50ms;
  opt.max_attempts = 2;
  opt.attempt_timeout_ms = 1000;
  opt.retry_backoff_base = 1ms;
  opt.retry_backoff_max = 5ms;
  opt.hedge_delay_ms = -1;
  net::ParseRouter router(
      {{"127.0.0.1", a.port()}, {"127.0.0.1", b.port()}}, opt);

  std::string err;
  auto client = net::Client::connect("127.0.0.1", router.port(), &err);
  ASSERT_TRUE(client.has_value()) << err;
  net::WireResponse resp;
  ASSERT_TRUE(client->request(wire_request({"the", "dog", "runs"}), resp,
                              &err))
      << err;
  EXPECT_EQ(resp.status, serve::RequestStatus::Faulted);
  EXPECT_NE(resp.error.find("retries exhausted"), std::string::npos)
      << resp.error;
  const auto stats = router.stats();
  EXPECT_GE(stats.retries, 1u);
  EXPECT_GE(stats.unroutable, 1u);
  EXPECT_GE(a.requests_seen() + b.requests_seen(), 2);
}

// The router DECREMENTS the request deadline across attempts: against
// a hung fleet, a 150ms-deadline request answers Timeout in ~150ms
// (not max_attempts * attempt_timeout) and counts deadline_exhausted.
TEST(ParseRouter, DeadlineIsDecrementedAcrossAttempts) {
  StubShard a(StubShard::Mode::StallRequests);
  StubShard b(StubShard::Mode::StallRequests);
  obs::Registry metrics;
  net::ParseRouter::Options opt;
  opt.metrics = &metrics;
  opt.probe_interval = 50ms;
  opt.max_attempts = 8;
  opt.attempt_timeout_ms = 5000;
  opt.retry_backoff_base = 1ms;
  opt.retry_backoff_max = 5ms;
  opt.hedge_delay_ms = -1;
  net::ParseRouter router(
      {{"127.0.0.1", a.port()}, {"127.0.0.1", b.port()}}, opt);

  std::string err;
  auto client = net::Client::connect("127.0.0.1", router.port(), &err);
  ASSERT_TRUE(client.has_value()) << err;
  net::WireRequest req = wire_request({"the", "dog", "runs"});
  req.deadline_ms = 150;
  net::WireResponse resp;
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(client->request(req, resp, &err)) << err;
  const auto waited = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(resp.status, serve::RequestStatus::Timeout);
  EXPECT_NE(resp.error.find("deadline exhausted"), std::string::npos)
      << resp.error;
  EXPECT_LT(waited, 3s) << "deadline did not bound the total wait";
  EXPECT_GE(router.stats().deadline_exhausted, 1u);
}

// Straggler hedging: when the primary shard stalls past the hedge
// delay, the request fires at the second (real) shard, the hedge wins,
// the response is stamped hedged/hedge_won, and the result is still
// bit-identical Ok.
TEST(ParseRouter, HedgeWinsAgainstAStragglerShard) {
  StubShard straggler(StubShard::Mode::StallRequests);
  Shard real(1);
  obs::Registry metrics;
  net::ParseRouter::Options opt;
  opt.metrics = &metrics;
  opt.probe_interval = 50ms;
  opt.max_attempts = 2;
  opt.attempt_timeout_ms = 10000;
  opt.hedge_delay_ms = 25;  // fixed: fire fast in tests
  net::ParseRouter router({{"127.0.0.1", straggler.port()},
                           {"127.0.0.1", real.server->port()}},
                          opt);

  std::string err;
  auto client = net::Client::connect("127.0.0.1", router.port(), &err);
  ASSERT_TRUE(client.has_value()) << err;

  // Find a sentence that routes to the straggler (index 0) so the
  // hedge targets the real shard.
  auto bundle = grammars::make_english_grammar();
  grammars::SentenceGenerator gen(bundle, 7);
  net::WireRequest req;
  bool found = false;
  for (int i = 0; i < 64 && !found; ++i) {
    req = wire_request(gen.generate(4 + i % 6));
    found = router.route(req) == 0;
  }
  ASSERT_TRUE(found) << "no sentence hashed to the straggler";

  req.idempotency_key = 0x5afe5afeull;
  net::WireResponse resp;
  ASSERT_TRUE(client->request(req, resp, &err)) << err;
  EXPECT_EQ(resp.status, serve::RequestStatus::Ok);
  EXPECT_TRUE(resp.hedged);
  EXPECT_TRUE(resp.hedge_won);
  EXPECT_EQ(resp.idempotency_key, 0x5afe5afeull) << "key echo lost";
  EXPECT_EQ(resp.shard, 1) << "hedge answer must come from the real shard";
  const auto stats = router.stats();
  EXPECT_GE(stats.hedges, 1u);
  EXPECT_GE(stats.hedge_wins, 1u);
  EXPECT_EQ(stats.unroutable, 0u);
}

// Keyless requests get a router-stamped idempotency key, so the shard
// sees a stable retry identity even from v1-era clients.
TEST(ParseRouter, RouterStampsKeysOntoKeylessRequests) {
  Fleet fleet(2);
  net::Client client = fleet.connect();
  net::WireRequest req = wire_request({"the", "dog", "runs"});
  ASSERT_EQ(req.idempotency_key, 0u);
  net::WireResponse resp;
  std::string err;
  ASSERT_TRUE(client.request(req, resp, &err)) << err;
  ASSERT_EQ(resp.status, serve::RequestStatus::Ok);
  EXPECT_NE(resp.idempotency_key, 0u)
      << "router must stamp a key so shard-side dedup can engage";
}

}  // namespace
