// ParseServer: loopback bit-identity against the in-process service,
// ping, garbage-frame rejection, drain-under-load, connection caps,
// and the net.accept / net.read fault-injection sites.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cdg/parser.h"
#include "grammars/english_grammar.h"
#include "grammars/sentence_gen.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "parsec/backend.h"
#include "resil/fault_plan.h"
#include "serve/grammar_registry.h"
#include "serve/parse_service.h"

namespace {

using namespace parsec;
using namespace std::chrono_literals;

struct Loopback {
  obs::Registry registry_metrics;
  serve::GrammarRegistry registry;
  std::optional<serve::ParseService> service;
  std::optional<net::ParseServer> server;

  explicit Loopback(net::ParseServer::Options nopt = {}, int threads = 2) {
    registry.publish("english", grammars::make_english_grammar());
    serve::ParseService::Options sopt;
    sopt.threads = threads;
    sopt.default_grammar = "english";
    sopt.metrics = &registry_metrics;
    service.emplace(registry, sopt);
    nopt.metrics = &registry_metrics;
    server.emplace(*service, nopt);
  }

  net::Client connect() {
    std::string err;
    auto c = net::Client::connect("127.0.0.1", server->port(), &err);
    EXPECT_TRUE(c.has_value()) << err;
    return std::move(*c);
  }
};

net::WireRequest wire_request(const std::vector<std::string>& words,
                              engine::Backend backend) {
  net::WireRequest req;
  req.grammar = "english";
  req.backend = backend;
  req.words = words;
  return req;
}

TEST(ParseServer, AnswersPing) {
  Loopback loop;
  net::Client client = loop.connect();
  std::string err;
  EXPECT_TRUE(client.ping(2000, &err)) << err;
  EXPECT_TRUE(client.ping(2000, &err)) << err;  // connection survives
}

// The acceptance gate: results over the wire are bit-identical
// (domains_hash AND captured domains) to the same request submitted
// in-process, on every backend, and both match the single-threaded
// serial reference.
TEST(ParseServer, LoopbackIsBitIdenticalToInProcessService) {
  Loopback loop;
  auto bundle = grammars::make_english_grammar();
  grammars::SentenceGenerator gen(bundle, 1992);
  cdg::SequentialParser seq(bundle.grammar);
  net::Client client = loop.connect();

  const engine::Backend backends[] = {
      engine::Backend::Serial, engine::Backend::Omp, engine::Backend::Maspar};
  for (int n = 4; n <= 12; n += 2) {
    const std::vector<std::string> words = gen.generate(n);

    cdg::Network ref_net = seq.make_network(bundle.lexicon.tag(words));
    seq.parse(ref_net);
    std::vector<util::DynBitset> ref_domains;
    for (int r = 0; r < ref_net.num_roles(); ++r)
      ref_domains.emplace_back(ref_net.domain(r));
    const std::uint64_t ref_hash = engine::hash_domains(ref_domains);

    for (engine::Backend backend : backends) {
      serve::ParseRequest preq;
      preq.words = words;
      preq.grammar = "english";
      preq.backend = backend;
      preq.capture_domains = true;
      const serve::ParseResponse inproc =
          loop.service->submit(std::move(preq)).get();
      ASSERT_EQ(inproc.status, serve::RequestStatus::Ok);

      net::WireRequest wreq = wire_request(words, backend);
      wreq.flags = net::kFlagCaptureDomains;
      net::WireResponse wresp;
      std::string err;
      ASSERT_TRUE(client.request(wreq, wresp, &err)) << err;
      ASSERT_EQ(wresp.status, serve::RequestStatus::Ok);

      EXPECT_EQ(wresp.domains_hash, inproc.domains_hash)
          << "backend " << engine::to_string(backend) << " n=" << n;
      EXPECT_EQ(wresp.domains_hash, ref_hash);
      EXPECT_EQ(wresp.accepted, inproc.accepted);
      EXPECT_EQ(wresp.alive_role_values, inproc.alive_role_values);
      ASSERT_EQ(wresp.domains.size(), inproc.domains.size());
      for (std::size_t d = 0; d < wresp.domains.size(); ++d) {
        ASSERT_EQ(wresp.domains[d].size(), inproc.domains[d].size());
        for (std::size_t b = 0; b < wresp.domains[d].size(); ++b)
          ASSERT_EQ(wresp.domains[d].test(b), inproc.domains[d].test(b));
      }
    }
  }
}

TEST(ParseServer, UnknownWordComesBackBadRequestNotDead) {
  Loopback loop;
  net::Client client = loop.connect();
  net::WireResponse resp;
  std::string err;
  ASSERT_TRUE(client.request(
      wire_request({"the", "xyzzy", "runs"}, engine::Backend::Serial), resp,
      &err))
      << err;
  EXPECT_EQ(resp.status, serve::RequestStatus::BadRequest);
  // Same connection still serves.
  ASSERT_TRUE(client.request(
      wire_request({"the", "dog", "runs"}, engine::Backend::Serial), resp,
      &err))
      << err;
  EXPECT_EQ(resp.status, serve::RequestStatus::Ok);
}

TEST(ParseServer, ShardIdStampsEveryResponse) {
  net::ParseServer::Options nopt;
  nopt.shard_id = 5;
  Loopback loop(nopt);
  net::Client client = loop.connect();
  net::WireResponse resp;
  std::string err;
  ASSERT_TRUE(client.request(
      wire_request({"the", "dog", "runs"}, engine::Backend::Serial), resp,
      &err));
  EXPECT_EQ(resp.shard, 5);
}

TEST(ParseServer, GarbageAndMalformedFramesAreRejectedWithoutCrashing) {
  Loopback loop;

  {  // raw garbage: no valid header, connection dropped, server alive
    std::string err;
    net::Socket s = net::tcp_connect("127.0.0.1", loop.server->port(), &err);
    ASSERT_TRUE(s.valid()) << err;
    const std::uint8_t garbage[] = {0xde, 0xad, 0xbe, 0xef, 0x00,
                                    0x01, 0x02, 0x03, 0x04, 0x05};
    ASSERT_TRUE(net::write_full(s, garbage, sizeof garbage, &err));
    net::Frame frame;
    net::DecodeStatus ds;
    EXPECT_FALSE(net::read_frame(s, frame, &ds, &err));  // closed on us
  }
  {  // valid header, lying payload: structured BadRequest, then close
    std::string err;
    net::Socket s = net::tcp_connect("127.0.0.1", loop.server->port(), &err);
    ASSERT_TRUE(s.valid()) << err;
    net::WireRequest req = wire_request({"a"}, engine::Backend::Serial);
    std::vector<std::uint8_t> frame_bytes;
    net::encode_request(req, frame_bytes);
    frame_bytes[net::kHeaderSize] = 200;  // backend byte out of range
    ASSERT_TRUE(net::write_full(s, frame_bytes.data(), frame_bytes.size(),
                                &err));
    net::Frame frame;
    net::DecodeStatus ds;
    ASSERT_TRUE(net::read_frame(s, frame, &ds, &err)) << err;
    net::WireResponse resp;
    ASSERT_EQ(net::decode_response(frame.payload.data(),
                                   frame.payload.size(), resp),
              net::DecodeStatus::Ok);
    EXPECT_EQ(resp.status, serve::RequestStatus::BadRequest);
    EXPECT_NE(resp.error.find("malformed"), std::string::npos);
  }
  // The server still serves new connections afterwards.
  net::Client client = loop.connect();
  std::string err;
  EXPECT_TRUE(client.ping(2000, &err)) << err;
  EXPECT_GE(loop.server->stats().frame_errors, 2u);
}

TEST(ParseServer, DrainFinishesInFlightAndRefusesNewConnections) {
  Loopback loop({}, /*threads=*/4);
  const int kThreads = 4;
  std::atomic<std::uint64_t> ok{0}, failed_after_drain{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&] {
      net::Client client = loop.connect();
      while (!go.load()) std::this_thread::yield();
      // Hammer until the drain cuts the connection; every response that
      // does come back must be a complete, well-formed Ok.
      for (int i = 0; i < 10000; ++i) {
        net::WireResponse resp;
        std::string err;
        if (!client.request(
                wire_request({"the", "dog", "runs"}, engine::Backend::Serial),
                resp, &err)) {
          failed_after_drain.fetch_add(1);
          break;
        }
        EXPECT_EQ(resp.status, serve::RequestStatus::Ok);
        ok.fetch_add(1);
      }
    });
  }
  go.store(true);
  std::this_thread::sleep_for(50ms);
  loop.server->drain();
  for (auto& t : clients) t.join();

  EXPECT_GT(ok.load(), 0u);
  // Every request the server read was answered: its counter matches the
  // client-side success count (nothing was read-then-dropped).
  EXPECT_EQ(loop.server->stats().requests, ok.load());
  EXPECT_GT(loop.server->stats().drain_seconds, 0.0);

  // The listener is closed: new connections are refused.
  std::string err;
  EXPECT_FALSE(
      net::Client::connect("127.0.0.1", loop.server->port(), &err).has_value());
}

TEST(ParseServer, InjectedReadFaultDropsConnectionNotServer) {
  resil::FaultPlan plan(7);
  resil::FaultSpec spec;
  spec.every_nth = 1;
  spec.max_fires = 1;
  plan.arm("net.read", spec);

  Loopback loop;
  {
    resil::ScopedFaultPlan scope(plan);
    // Raw socket so the client performs no reads of its own until the
    // server's read has consumed the single armed fire (the site is
    // process-wide and both ends live in this process).
    std::string err;
    net::Socket s = net::tcp_connect("127.0.0.1", loop.server->port(), &err);
    ASSERT_TRUE(s.valid()) << err;
    std::vector<std::uint8_t> frame_bytes;
    net::encode_request(
        wire_request({"the", "dog", "runs"}, engine::Backend::Serial),
        frame_bytes);
    ASSERT_TRUE(net::write_full(s, frame_bytes.data(), frame_bytes.size(),
                                &err));
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    while (loop.server->stats().injected_faults == 0 &&
           std::chrono::steady_clock::now() < deadline)
      std::this_thread::sleep_for(10ms);
    net::Frame frame;
    net::DecodeStatus ds;
    EXPECT_FALSE(net::read_frame(s, frame, &ds, &err));  // server died on us
  }
  // Reconnect: the server survived and the fault was accounted.
  net::Client again = loop.connect();
  std::string err;
  EXPECT_TRUE(again.ping(2000, &err)) << err;
  EXPECT_EQ(loop.server->stats().injected_faults, 1u);
}

// satellite (b): a half-dead client (connected, silent) is reaped
// after idle_timeout_ms instead of pinning a connection slot forever;
// an ACTIVE connection is never reaped.
TEST(ParseServer, IdleConnectionsAreReaped) {
  net::ParseServer::Options nopt;
  nopt.idle_timeout_ms = 150;
  nopt.poll_interval_ms = 20;
  Loopback loop(nopt);

  // Active connection: keep pinging past several idle windows.
  net::Client active = loop.connect();
  // Idle connection: connect and go silent.
  net::Client idle = loop.connect();

  std::string err;
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (loop.server->stats().idle_closed == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    EXPECT_TRUE(active.ping(2000, &err)) << err;
    std::this_thread::sleep_for(30ms);
  }
  EXPECT_EQ(loop.server->stats().idle_closed, 1u);

  // The active connection survived the reaper...
  EXPECT_TRUE(active.ping(2000, &err)) << err;
  // ...and the idle one is actually dead: its next request fails.
  net::WireResponse resp;
  EXPECT_FALSE(idle.request(
      wire_request({"the", "dog", "runs"}, engine::Backend::Serial), resp,
      &err));
}

// Tentpole part 2 over the wire: two requests with the same
// idempotency key execute the parse ONCE — the retry replays from the
// shard's idempotency window, flagged cached, bit-identical.
TEST(ParseServer, SameIdempotencyKeyNeverDoubleExecutes) {
  Loopback loop;
  net::Client client = loop.connect();

  net::WireRequest req =
      wire_request({"the", "dog", "runs"}, engine::Backend::Serial);
  req.idempotency_key = 0xabcdef01ull;
  net::WireResponse first, second;
  std::string err;
  ASSERT_TRUE(client.request(req, first, &err)) << err;
  ASSERT_EQ(first.status, serve::RequestStatus::Ok);
  EXPECT_EQ(first.idempotency_key, 0xabcdef01ull) << "key echo missing";
  EXPECT_FALSE(first.cached);

  ASSERT_TRUE(client.request(req, second, &err)) << err;
  ASSERT_EQ(second.status, serve::RequestStatus::Ok);
  EXPECT_TRUE(second.cached) << "retry re-executed the parse";
  EXPECT_EQ(second.domains_hash, first.domains_hash);
  EXPECT_EQ(second.alive_role_values, first.alive_role_values);

  // One MissLeader (the execution) + one Hit (the replay): the engine
  // ran exactly once for this key.
  const auto sstats = loop.service->stats();
  EXPECT_EQ(sstats.idempotency.hits, 1u);
  EXPECT_EQ(sstats.idempotency.misses, 1u);
}

TEST(ParseServer, InjectedAcceptFaultDropsOneConnection) {
  resil::FaultPlan plan(7);
  resil::FaultSpec spec;
  spec.every_nth = 1;
  spec.max_fires = 1;
  plan.arm("net.accept", spec);

  Loopback loop;
  {
    resil::ScopedFaultPlan scope(plan);
    // The TCP handshake completes (the kernel accepted), but the server
    // drops the connection at accept: the first request fails.
    std::string err;
    auto doomed = net::Client::connect("127.0.0.1", loop.server->port(), &err);
    if (doomed) {
      net::WireResponse resp;
      EXPECT_FALSE(doomed->request(
          wire_request({"the", "dog", "runs"}, engine::Backend::Serial), resp,
          &err));
    }
  }
  net::Client again = loop.connect();
  std::string err;
  EXPECT_TRUE(again.ping(2000, &err)) << err;
  EXPECT_EQ(loop.server->stats().injected_faults, 1u);
}

}  // namespace
