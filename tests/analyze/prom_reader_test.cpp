// Tests for the Prometheus text-exposition reader: the 0.0.4 format
// obs::Registry::write_prometheus emits (HELP/TYPE comments, labeled
// series, histogram bucket/sum/count triplets, +Inf), canonical series
// ids, and malformed-line diagnostics.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "analyze/prom_reader.h"
#include "obs/metrics.h"

namespace parsec::analyze {
namespace {

TEST(AnalyzeProm, ParsesTypedLabeledSeries) {
  const Scrape s = read_prometheus_text(
      "# HELP parsec_requests_total Requests by status.\n"
      "# TYPE parsec_requests_total counter\n"
      "parsec_requests_total{status=\"ok\"} 12\n"
      "parsec_requests_total{status=\"timeout\"} 3\n"
      "\n"
      "# TYPE parsec_queue_depth gauge\n"
      "parsec_queue_depth 7\n");
  ASSERT_EQ(s.samples.size(), 3u);
  EXPECT_EQ(s.types.at("parsec_requests_total"), MetricType::Counter);
  EXPECT_EQ(s.types.at("parsec_queue_depth"), MetricType::Gauge);
  EXPECT_EQ(s.help.at("parsec_requests_total"), "Requests by status.");
  EXPECT_DOUBLE_EQ(s.value_or("parsec_requests_total{status=\"ok\"}", -1), 12);
  EXPECT_DOUBLE_EQ(s.value_or("parsec_queue_depth", -1), 7);
  EXPECT_DOUBLE_EQ(s.value_or("absent_series", -1), -1);
  const Sample* ok = s.find("parsec_requests_total{status=\"ok\"}");
  ASSERT_NE(ok, nullptr);
  ASSERT_EQ(ok->labels.size(), 1u);
  EXPECT_EQ(ok->labels[0].first, "status");
  EXPECT_EQ(ok->labels[0].second, "ok");
}

TEST(AnalyzeProm, ParsesHistogramWithInfBucket) {
  const Scrape s = read_prometheus_text(
      "# TYPE parsec_latency_seconds histogram\n"
      "parsec_latency_seconds_bucket{le=\"0.005\"} 4\n"
      "parsec_latency_seconds_bucket{le=\"+Inf\"} 9\n"
      "parsec_latency_seconds_sum 0.0625\n"
      "parsec_latency_seconds_count 9\n");
  EXPECT_EQ(s.types.at("parsec_latency_seconds"), MetricType::Histogram);
  EXPECT_DOUBLE_EQ(
      s.value_or("parsec_latency_seconds_bucket{le=\"+Inf\"}", -1), 9);
  EXPECT_DOUBLE_EQ(s.value_or("parsec_latency_seconds_sum", -1), 0.0625);
}

TEST(AnalyzeProm, ParsesEscapesAndSpecialValues) {
  const Scrape s = read_prometheus_text(
      "m{path=\"a\\\\b\",msg=\"say \\\"hi\\\"\\n\"} 1\n"
      "inf_metric +Inf\n"
      "neg_inf_metric -Inf\n"
      "nan_metric NaN\n");
  ASSERT_EQ(s.samples.size(), 4u);
  EXPECT_EQ(s.samples[0].labels[0].second, "a\\b");
  EXPECT_EQ(s.samples[0].labels[1].second, "say \"hi\"\n");
  EXPECT_TRUE(std::isinf(s.value_or("inf_metric", 0)));
  EXPECT_DOUBLE_EQ(s.value_or("neg_inf_metric", 0),
                   -std::numeric_limits<double>::infinity());
  EXPECT_TRUE(std::isnan(s.samples[3].value));
}

TEST(AnalyzeProm, MalformedLinesThrowWithLineNumber) {
  try {
    read_prometheus_text("good_metric 1\nbad_metric\n");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW(read_prometheus_text("m{a=b} 1\n"), std::invalid_argument);
  EXPECT_THROW(read_prometheus_text("m{a=\"x\" 1\n"), std::invalid_argument);
  EXPECT_THROW(read_prometheus_text("m not_a_number\n"), std::invalid_argument);
  EXPECT_THROW(read_prometheus_file("/nonexistent/metrics.prom"),
               std::invalid_argument);
}

// Lockstep with the writer: everything obs::Registry::write_prometheus
// emits must round-trip through the reader — names, labels, help text,
// types, histogram series, and the exact values.
TEST(AnalyzeProm, RoundTripsRegistryExposition) {
  obs::Registry reg;
  reg.counter("parsec_effective_binary_evals_total",
              "Effective binary evals.", {{"backend", "serial"}})
      .inc(123456);
  reg.counter("parsec_effective_binary_evals_total",
              "Effective binary evals.", {{"backend", "maspar"}})
      .inc(99);
  reg.gauge("parsec_queue_depth", "Queue depth.").set(5);
  obs::Histogram& lat =
      reg.histogram("parsec_parse_seconds", "Parse time.", {0.001, 0.01, 0.1});
  lat.observe(0.0005);
  lat.observe(0.05);

  const Scrape s = read_prometheus_text(reg.scrape());
  EXPECT_EQ(s.types.at("parsec_effective_binary_evals_total"),
            MetricType::Counter);
  EXPECT_EQ(s.types.at("parsec_queue_depth"), MetricType::Gauge);
  EXPECT_EQ(s.types.at("parsec_parse_seconds"), MetricType::Histogram);
  EXPECT_DOUBLE_EQ(
      s.value_or(
          "parsec_effective_binary_evals_total{backend=\"serial\"}", -1),
      123456);
  EXPECT_DOUBLE_EQ(
      s.value_or(
          "parsec_effective_binary_evals_total{backend=\"maspar\"}", -1),
      99);
  EXPECT_DOUBLE_EQ(s.value_or("parsec_queue_depth", -1), 5);
  EXPECT_DOUBLE_EQ(s.value_or("parsec_parse_seconds_count", -1), 2);
  EXPECT_DOUBLE_EQ(s.value_or("parsec_parse_seconds_sum", -1), 0.0505);
  EXPECT_DOUBLE_EQ(
      s.value_or("parsec_parse_seconds_bucket{le=\"0.001\"}", -1), 1);
  EXPECT_DOUBLE_EQ(
      s.value_or("parsec_parse_seconds_bucket{le=\"+Inf\"}", -1), 2);
}

}  // namespace
}  // namespace parsec::analyze
