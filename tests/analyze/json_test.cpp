// Tests for the analyzer's minimal JSON reader/writer: RFC 8259 value
// syntax, escape handling, error offsets, and the integral-number
// rendering the baseline files rely on for clean diffs.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "analyze/json.h"

namespace parsec::analyze {
namespace {

TEST(AnalyzeJson, ParsesScalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").as_bool());
  EXPECT_FALSE(parse_json("false").as_bool());
  EXPECT_DOUBLE_EQ(parse_json("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse_json("-3.5").as_number(), -3.5);
  EXPECT_DOUBLE_EQ(parse_json("1.25e2").as_number(), 125.0);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(AnalyzeJson, ParsesNestedStructure) {
  const JsonValue v = parse_json(
      R"({"traceEvents":[{"name":"a","ts":1.5,"args":{"n":3}},{"name":"b"}],)"
      R"("displayTimeUnit":"ms"})");
  ASSERT_TRUE(v.is_object());
  const JsonValue* events = v.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->as_array().size(), 2u);
  const JsonValue& first = events->as_array()[0];
  EXPECT_EQ(first.string_or("name", ""), "a");
  EXPECT_DOUBLE_EQ(first.number_or("ts", 0.0), 1.5);
  EXPECT_DOUBLE_EQ(first.find("args")->number_or("n", 0.0), 3.0);
  EXPECT_EQ(v.string_or("displayTimeUnit", ""), "ms");
}

TEST(AnalyzeJson, ParsesStringEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\/d\n\t\r")").as_string(),
            "a\"b\\c/d\n\t\r");
  // \u control escapes are what the tracer's writer emits.
  EXPECT_EQ(parse_json("\"A\\u000a\"").as_string(), "A\n");
  // Non-ASCII \u escapes decode to UTF-8.
  EXPECT_EQ(parse_json("\"\\u00e9\"").as_string(), "\xc3\xa9");
}

TEST(AnalyzeJson, WhitespaceAndEmptyContainers) {
  const JsonValue v = parse_json("  { \"a\" : [ ] , \"b\" : { } }  \n");
  EXPECT_TRUE(v.find("a")->as_array().empty());
  EXPECT_TRUE(v.find("b")->as_object().empty());
}

TEST(AnalyzeJson, MalformedInputThrowsWithOffset) {
  EXPECT_THROW(parse_json(""), JsonError);
  EXPECT_THROW(parse_json("{\"a\":}"), JsonError);
  EXPECT_THROW(parse_json("[1,2"), JsonError);
  EXPECT_THROW(parse_json("tru"), JsonError);
  EXPECT_THROW(parse_json("\"unterminated"), JsonError);
  EXPECT_THROW(parse_json("{} garbage"), JsonError);
  try {
    parse_json("[1, x]");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_EQ(e.offset(), 4u);  // points at the bad token
  }
}

TEST(AnalyzeJson, AccessorKindMismatchThrows) {
  const JsonValue v = parse_json("{\"n\": 1}");
  EXPECT_THROW(v.as_array(), std::logic_error);
  EXPECT_THROW(v.find("n")->as_string(), std::logic_error);
  EXPECT_THROW(v.string_or("n", "x"), std::logic_error);  // present, wrong kind
  EXPECT_EQ(v.string_or("absent", "x"), "x");
}

TEST(AnalyzeJson, IntegralNumbersRenderWithoutDecimalPoint) {
  // Counter values in baseline files must diff as integers.
  EXPECT_EQ(to_json(JsonValue::make_number(123456.0)), "123456");
  EXPECT_EQ(to_json(JsonValue::make_number(-7.0)), "-7");
  EXPECT_EQ(to_json(JsonValue::make_number(0.02)), "0.02");
}

TEST(AnalyzeJson, RoundTripPreservesStructure) {
  const std::string src =
      R"({"captured":"2026-08-07","counters":[{"gate":true,"id":"x{a=\"b\"}","tolerance":0.02,"value":42}],"ok":null})";
  const JsonValue v = parse_json(src);
  // to_json writes members in lexicographic key order, matching src.
  EXPECT_EQ(to_json(v), src);
  EXPECT_EQ(to_json(parse_json(to_json(v))), src);
}

}  // namespace
}  // namespace parsec::analyze
