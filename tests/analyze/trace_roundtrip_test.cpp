// Trace-schema lockstep: everything obs::TraceSession's Chrome
// trace-event writer emits must survive the analyzer's reader, and a
// real traced run (ParseService batch + direct backend runs) must
// reconstruct into the full span taxonomy documented in
// docs/OBSERVABILITY.md — serve.request wrappers with their
// queue/status args, backend envelopes with cost-counter args, and the
// engine phases nested beneath them.  If the writer grows a field the
// reader drops (or vice versa), this suite is the tripwire.
//
// Mirrors tests/obs/trace_test.cpp's EndToEndParseSpanTaxonomy on the
// producing side; every recording assertion is gated on
// obs::kTracingCompiled so a -DPARSEC_TRACING=OFF build still checks
// the no-op contract.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analyze/span_graph.h"
#include "analyze/trace_reader.h"
#include "cdg/extract.h"
#include "cdg/parser.h"
#include "grammars/toy_grammar.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "parsec/backend.h"
#include "serve/parse_service.h"

namespace parsec::analyze {
namespace {

constexpr std::size_t kBatch = 8;

/// One traced run: a ParseService batch on 2 workers, then direct
/// serial + maspar backend runs and a sequential parse + extraction
/// (the obs taxonomy test's workload), serialized through the writer.
std::string traced_run_json(std::size_t* span_count) {
  const grammars::CdgBundle bundle = grammars::make_toy_grammar();
  const cdg::Sentence sentence = bundle.tag("The program runs");

  obs::TraceSession session;
  {
    obs::Registry registry;  // isolated: don't pollute the global one
    serve::ParseService::Options sopt;
    sopt.threads = 2;
    sopt.metrics = &registry;
    serve::ParseService service(bundle.grammar, sopt);
    std::vector<serve::ParseRequest> batch(kBatch);
    for (serve::ParseRequest& req : batch) {
      req.sentence = sentence;
      req.backend = engine::Backend::Serial;
    }
    const std::vector<serve::ParseResponse> responses =
        service.parse_batch(std::move(batch));
    for (const serve::ParseResponse& resp : responses) {
      EXPECT_EQ(resp.status, serve::RequestStatus::Ok);
      EXPECT_TRUE(resp.accepted);
    }
  }  // service joins its workers: their span buffers are quiescent

  engine::EngineSetOptions eopt;
  eopt.serial_ac4 = true;
  engine::EngineSet engines(bundle.grammar, eopt);
  engine::run_backend(engines, engine::Backend::Serial, sentence);
  engine::run_backend(engines, engine::Backend::Maspar, sentence);

  cdg::SequentialParser seq(bundle.grammar);
  cdg::Network net = seq.make_network(sentence);
  seq.parse(net);
  cdg::extract_parses(net, 8);

  *span_count = session.span_count();
  std::ostringstream os;
  session.write_chrome_trace(os);
  return os.str();
}

TEST(AnalyzeRoundtrip, ReaderIngestsEverySpanTheWriterEmits) {
  std::size_t span_count = 0;
  const Trace trace = read_trace_text(traced_run_json(&span_count));
  EXPECT_EQ(trace.events.size(), span_count);
  EXPECT_EQ(trace.skipped, 0u);
  if constexpr (!obs::kTracingCompiled) {
    EXPECT_TRUE(trace.events.empty());  // the no-op contract
    return;
  }
  for (const TraceEvent& e : trace.events) {
    EXPECT_FALSE(e.name.empty());
    EXPECT_FALSE(e.cat.empty());
    EXPECT_GE(e.dur_us, 0.0);
  }
}

TEST(AnalyzeRoundtrip, FullSpanTaxonomyReconstructs) {
  if constexpr (!obs::kTracingCompiled)
    GTEST_SKIP() << "tracing compiled out";
  std::size_t span_count = 0;
  const Trace trace = read_trace_text(traced_run_json(&span_count));

  std::set<std::string> names;
  for (const TraceEvent& e : trace.events) names.insert(e.name);
  for (const char* required :
       {"serve.request", "cdg.factoring", "cdg.mask_build",
        "cdg.ac4_fixpoint", "cdg.extract", "backend.serial", "backend.maspar",
        "serial.unary", "serial.binary", "serial.filter", "maspar.filter"})
    EXPECT_TRUE(names.count(required)) << "missing span: " << required;

  // The request wrapper carries the worker-side args...
  std::size_t requests_seen = 0;
  for (const TraceEvent& e : trace.events) {
    if (e.name != "serve.request") continue;
    ++requests_seen;
    EXPECT_EQ(e.cat, "serve");
    for (const char* arg :
         {"queue_us", "n", "status", "accepted", "degraded"})
      EXPECT_TRUE(e.args.count(arg)) << "serve.request missing " << arg;
    EXPECT_DOUBLE_EQ(e.args.at("status"), 0.0);  // RequestStatus::Ok
    EXPECT_DOUBLE_EQ(e.args.at("accepted"), 1.0);
    EXPECT_DOUBLE_EQ(e.args.at("n"), 3.0);  // "The program runs"
  }
  EXPECT_EQ(requests_seen, kBatch);

  // ...and the envelopes keep their cost counters through the reader.
  for (const TraceEvent& e : trace.events) {
    if (e.name == "backend.serial") {
      EXPECT_TRUE(e.args.count("effective_unary_evals"));
      EXPECT_TRUE(e.args.count("effective_binary_evals"));
      EXPECT_GT(e.args.at("effective_binary_evals"), 0.0);
    } else if (e.name == "backend.maspar") {
      for (const char* arg : {"plural_ops", "scan_ops", "route_ops"})
        EXPECT_TRUE(e.args.count(arg)) << "backend.maspar missing " << arg;
    }
  }
}

TEST(AnalyzeRoundtrip, AnalysisReconstructsServiceRequests) {
  if constexpr (!obs::kTracingCompiled)
    GTEST_SKIP() << "tracing compiled out";
  std::size_t span_count = 0;
  const Trace trace = read_trace_text(traced_run_json(&span_count));
  const RunAnalysis run = analyze_trace(trace);

  // kBatch service requests plus the two bare direct-run envelopes.
  ASSERT_EQ(run.requests.size(), kBatch + 2);
  std::size_t service_requests = 0, bare_serial = 0, bare_maspar = 0;
  for (const RequestStat& r : run.requests) {
    if (r.root_name == "serve.request") {
      ++service_requests;
      EXPECT_EQ(r.backend, "serial");
      EXPECT_EQ(r.n, 3);
      EXPECT_EQ(r.accepted, 1);
      EXPECT_GE(r.queue_us, 0.0);
      // The envelope nests inside the wrapper, so the decomposition
      // starts and ends on the wrapper's own time.
      ASSERT_FALSE(r.path.empty());
      EXPECT_EQ(r.path.front().name, "serve.request");
      double sum = 0.0;
      for (const PathSegment& seg : r.path) sum += seg.us;
      EXPECT_NEAR(sum, r.dur_us, 0.1);  // exact up to writer rounding
    } else if (r.root_name == "backend.serial") {
      ++bare_serial;
    } else if (r.root_name == "backend.maspar") {
      ++bare_maspar;
    }
  }
  EXPECT_EQ(service_requests, kBatch);
  EXPECT_EQ(bare_serial, 1u);
  EXPECT_EQ(bare_maspar, 1u);

  // The engine phases must appear in the aggregate with self <= total.
  std::set<std::string> phase_names;
  for (const PhaseStat& p : run.phases) {
    phase_names.insert(p.name);
    EXPECT_LE(p.self_us, p.total_us + 0.1) << p.name;
    EXPECT_GT(p.count, 0u);
  }
  for (const char* required : {"serve.request", "backend.serial",
                               "serial.unary", "serial.binary"})
    EXPECT_TRUE(phase_names.count(required)) << required;
  // Two workers plus the main thread recorded spans.
  EXPECT_GE(run.threads, 2u);
  EXPECT_LE(run.threads, 4u);
}

}  // namespace
}  // namespace parsec::analyze
