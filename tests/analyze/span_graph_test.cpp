// Unit tests for span-forest reconstruction and the run analytics:
// interval-containment nesting per (pid, tid) lane, self-time
// accounting, critical-path decomposition, straggler flagging, and
// phase-skew detection on synthetic traces with known answers.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "analyze/span_graph.h"
#include "analyze/trace_reader.h"

namespace parsec::analyze {
namespace {

TraceEvent ev(const char* name, std::uint32_t tid, double ts, double dur) {
  TraceEvent e;
  e.name = name;
  e.cat = "parse";
  e.pid = 1;
  e.tid = tid;
  e.ts_us = ts;
  e.dur_us = dur;
  return e;
}

TEST(AnalyzeSpanGraph, NestsByIntervalContainmentPerLane) {
  Trace t;
  t.events.push_back(ev("outer", 1, 0, 100));
  t.events.push_back(ev("mid", 1, 10, 40));
  t.events.push_back(ev("inner", 1, 20, 20));
  t.events.push_back(ev("late", 1, 60, 30));
  // Same interval on another thread must NOT nest under tid 1.
  t.events.push_back(ev("other", 2, 20, 20));

  const SpanForest f = build_span_forest(t);
  ASSERT_EQ(f.nodes.size(), 5u);
  EXPECT_EQ(f.nodes[0].parent, -1);
  EXPECT_EQ(f.nodes[1].parent, 0);
  EXPECT_EQ(f.nodes[2].parent, 1);
  EXPECT_EQ(f.nodes[3].parent, 0);  // sibling of mid, after it ended
  EXPECT_EQ(f.nodes[4].parent, -1);
  EXPECT_EQ(f.nodes[2].depth, 2);
  ASSERT_EQ(f.roots.size(), 2u);
  // Self time = duration minus direct children.
  EXPECT_DOUBLE_EQ(f.nodes[0].self_us, 100 - 40 - 30);
  EXPECT_DOUBLE_EQ(f.nodes[1].self_us, 40 - 20);
  EXPECT_DOUBLE_EQ(f.nodes[2].self_us, 20);
}

TEST(AnalyzeSpanGraph, IdenticalStartSortsLongerSpanAsParent) {
  Trace t;
  t.events.push_back(ev("child", 1, 0, 50));   // same start, shorter
  t.events.push_back(ev("parent", 1, 0, 100));
  const SpanForest f = build_span_forest(t);
  EXPECT_EQ(f.nodes[0].parent, 1);
  EXPECT_EQ(f.nodes[1].parent, -1);
}

TEST(AnalyzeSpanGraph, EpsilonAbsorbsWriterRounding) {
  // The writer rounds ts and dur independently, so a child can
  // overshoot its parent's end by a fraction of a nanosecond-decimal.
  Trace t;
  t.events.push_back(ev("parent", 1, 0.0, 10.0));
  t.events.push_back(ev("child", 1, 5.0, 5.001));  // ends at 10.001
  const SpanForest f = build_span_forest(t);
  EXPECT_EQ(f.nodes[1].parent, 0);
}

TEST(AnalyzeSpanGraph, CriticalPathAttributesDeepestSpanAndMerges) {
  Trace t;
  t.events.push_back(ev("req", 1, 0, 100));
  t.events.push_back(ev("a", 1, 10, 30));
  t.events.push_back(ev("b", 1, 50, 20));
  const SpanForest f = build_span_forest(t);
  const std::vector<PathSegment> path = critical_path(t, f, 0);
  ASSERT_EQ(path.size(), 5u);
  EXPECT_EQ(path[0].name, "req");
  EXPECT_DOUBLE_EQ(path[0].us, 10);
  EXPECT_EQ(path[1].name, "a");
  EXPECT_DOUBLE_EQ(path[1].us, 30);
  EXPECT_EQ(path[2].name, "req");
  EXPECT_DOUBLE_EQ(path[2].us, 10);  // gap between a and b
  EXPECT_EQ(path[3].name, "b");
  EXPECT_EQ(path[4].name, "req");
  double sum = 0;
  for (const PathSegment& seg : path) sum += seg.us;
  EXPECT_DOUBLE_EQ(sum, 100);  // decomposition is exact
}

TEST(AnalyzeSpanGraph, EmptyTraceYieldsEmptyAnalysis) {
  const RunAnalysis run = analyze_trace(Trace{});
  EXPECT_EQ(run.events, 0u);
  EXPECT_EQ(run.threads, 0u);
  EXPECT_DOUBLE_EQ(run.wall_us, 0.0);
  EXPECT_TRUE(run.requests.empty());
  EXPECT_TRUE(run.phases.empty());
}

TEST(AnalyzeSpanGraph, RequestRootsAreServeRequestsAndBareEnvelopes) {
  Trace t;
  // serve.request wrapping an envelope: one request, not two.
  t.events.push_back(ev("serve.request", 1, 0, 100));
  t.events.push_back(ev("backend.serial", 1, 10, 80));
  // A bare envelope (tool-driven parse, no service): also a request.
  t.events.push_back(ev("backend.maspar", 2, 0, 50));
  // Compile-time work outside any request: not a request.
  t.events.push_back(ev("cdg.factoring", 3, 0, 40));

  const RunAnalysis run = analyze_trace(t);
  ASSERT_EQ(run.requests.size(), 2u);
  EXPECT_EQ(run.requests[0].root_name, "serve.request");
  EXPECT_EQ(run.requests[0].backend, "serial");
  EXPECT_EQ(run.requests[1].root_name, "backend.maspar");
  EXPECT_EQ(run.requests[1].backend, "maspar");
  // cdg.factoring contributes to phases but not to the request profile.
  for (const PathSegment& seg : run.profile)
    EXPECT_NE(seg.name, "cdg.factoring");
}

TEST(AnalyzeSpanGraph, FlagsStragglersAgainstMedian) {
  Trace t;
  // Four requests of 100us and one of 1000us on separate lanes.
  for (std::uint32_t i = 0; i < 4; ++i)
    t.events.push_back(ev("backend.serial", i + 1, 10.0 * i, 100));
  t.events.push_back(ev("backend.serial", 9, 5, 1000));
  const RunAnalysis run = analyze_trace(t);
  ASSERT_EQ(run.requests.size(), 5u);
  ASSERT_EQ(run.stragglers.size(), 1u);
  EXPECT_DOUBLE_EQ(run.requests[run.stragglers[0]].dur_us, 1000);
  EXPECT_TRUE(run.requests[run.stragglers[0]].straggler);
}

TEST(AnalyzeSpanGraph, SingleRequestIsNeverAStraggler) {
  Trace t;
  t.events.push_back(ev("backend.serial", 1, 0, 5000));
  const RunAnalysis run = analyze_trace(t);
  EXPECT_TRUE(run.stragglers.empty());
}

TEST(AnalyzeSpanGraph, FlagsSkewedPhases) {
  Trace t;
  // 15 quick spans and one 100x outlier of the same phase; a steady
  // phase with the same count must not be flagged.
  for (std::uint32_t i = 0; i < 15; ++i)
    t.events.push_back(ev("spiky.phase", i + 1, 0, 10));
  t.events.push_back(ev("spiky.phase", 99, 0, 1000));
  for (std::uint32_t i = 0; i < 16; ++i)
    t.events.push_back(ev("steady.phase", i + 1, 100, 10));
  AnalyzeOptions opt;
  opt.min_phase_count = 8;
  const RunAnalysis run = analyze_trace(t, opt);
  ASSERT_EQ(run.skewed_phases.size(), 1u);
  EXPECT_EQ(run.skewed_phases[0], "spiky.phase");
}

TEST(AnalyzeSpanGraph, RarePhasesAreExemptFromSkew) {
  Trace t;
  t.events.push_back(ev("rare.phase", 1, 0, 1));
  t.events.push_back(ev("rare.phase", 2, 0, 1000));
  const RunAnalysis run = analyze_trace(t);  // min_phase_count = 8
  EXPECT_TRUE(run.skewed_phases.empty());
}

TEST(AnalyzeSpanGraph, PhasesSortBySelfTimeDescending) {
  Trace t;
  t.events.push_back(ev("outer", 1, 0, 100));
  t.events.push_back(ev("inner", 1, 10, 80));
  const RunAnalysis run = analyze_trace(t);
  ASSERT_EQ(run.phases.size(), 2u);
  EXPECT_EQ(run.phases[0].name, "inner");  // self 80 beats outer's 20
  EXPECT_DOUBLE_EQ(run.phases[0].self_us, 80);
  EXPECT_DOUBLE_EQ(run.phases[1].self_us, 20);
  EXPECT_DOUBLE_EQ(run.phases[1].total_us, 100);
}

}  // namespace
}  // namespace parsec::analyze
