// Tests for the perf-gate baseline layer: classification of scrape
// samples into gated counters vs advisory time aggregates, tolerance
// bands (including the zero-baseline floor), hand-tuned-band carry
// across --update-baseline, save/load round-trips, and the gate
// verdict itself.
#include <gtest/gtest.h>

#include <string>

#include "analyze/baseline.h"
#include "analyze/prom_reader.h"

namespace parsec::analyze {
namespace {

Scrape scrape_of(const std::string& text) {
  return read_prometheus_text(text);
}

const std::string kScrapeText =
    "# TYPE parsec_effective_binary_evals_total counter\n"
    "parsec_effective_binary_evals_total{backend=\"serial\"} 10000\n"
    "parsec_effective_binary_evals_total{backend=\"maspar\"} 10000\n"
    "# TYPE parsec_maspar_plural_ops_total counter\n"
    "parsec_maspar_plural_ops_total 555\n"
    "# TYPE parsec_maspar_simulated_seconds gauge\n"
    "parsec_maspar_simulated_seconds 0.125\n"
    "# TYPE parsec_queue_depth gauge\n"
    "parsec_queue_depth 3\n"
    "# TYPE parsec_parse_seconds histogram\n"
    "parsec_parse_seconds_bucket{le=\"0.01\"} 7\n"
    "parsec_parse_seconds_bucket{le=\"+Inf\"} 9\n"
    "parsec_parse_seconds_sum 0.5\n"
    "parsec_parse_seconds_count 9\n";

TEST(AnalyzeBaseline, MakeBaselineClassifiesSamples) {
  const Baseline b =
      make_baseline(scrape_of(kScrapeText), "bench --flags", "2026-08-07");
  EXPECT_EQ(b.workload, "bench --flags");

  auto entry = [&](const std::string& id) -> const BaselineEntry* {
    for (const BaselineEntry& e : b.entries)
      if (e.id == id) return &e;
    return nullptr;
  };
  // Counters gate with the tight band.
  const BaselineEntry* evals =
      entry("parsec_effective_binary_evals_total{backend=\"serial\"}");
  ASSERT_NE(evals, nullptr);
  EXPECT_TRUE(evals->gate);
  EXPECT_DOUBLE_EQ(evals->tolerance, kCounterTolerance);
  EXPECT_DOUBLE_EQ(evals->value, 10000);
  // Histogram _count gates; _sum is advisory; _bucket is skipped.
  const BaselineEntry* count = entry("parsec_parse_seconds_count");
  ASSERT_NE(count, nullptr);
  EXPECT_TRUE(count->gate);
  const BaselineEntry* sum = entry("parsec_parse_seconds_sum");
  ASSERT_NE(sum, nullptr);
  EXPECT_FALSE(sum->gate);
  EXPECT_DOUBLE_EQ(sum->tolerance, kTimeTolerance);
  EXPECT_EQ(entry("parsec_parse_seconds_bucket{le=\"0.01\"}"), nullptr);
  // The cost model's output gauge gates; sampled gauges are skipped.
  const BaselineEntry* sim = entry("parsec_maspar_simulated_seconds");
  ASSERT_NE(sim, nullptr);
  EXPECT_TRUE(sim->gate);
  EXPECT_EQ(entry("parsec_queue_depth"), nullptr);
}

TEST(AnalyzeBaseline, CarryPreservesHandTunedBands) {
  Baseline old = make_baseline(scrape_of(kScrapeText), "w", "d1");
  for (BaselineEntry& e : old.entries) {
    if (e.id == "parsec_maspar_plural_ops_total") {
      e.tolerance = 0.5;  // hand-widened
      e.gate = false;     // hand-demoted to advisory
    }
  }
  const Baseline fresh = make_baseline(scrape_of(kScrapeText), "w", "d2", &old);
  for (const BaselineEntry& e : fresh.entries) {
    if (e.id == "parsec_maspar_plural_ops_total") {
      EXPECT_DOUBLE_EQ(e.tolerance, 0.5);
      EXPECT_FALSE(e.gate);
      return;
    }
  }
  FAIL() << "plural_ops entry missing";
}

TEST(AnalyzeBaseline, SaveLoadRoundTrip) {
  Baseline b;
  b.workload = "bench_throughput --sentences 120 --batch \"16\"";
  b.captured = "2026-08-07";
  b.entries.push_back(
      {"parsec_effective_binary_evals_total{backend=\"serial\"}", 123456,
       0.02, true});
  b.entries.push_back({"parsec_serve_queue_wait_seconds_sum", 0.75, 1.0,
                       false});
  const std::string path = ::testing::TempDir() + "baseline_roundtrip.json";
  save_baseline(path, b);
  const Baseline loaded = load_baseline(path);
  EXPECT_EQ(loaded.workload, b.workload);
  EXPECT_EQ(loaded.captured, b.captured);
  ASSERT_EQ(loaded.entries.size(), 2u);
  EXPECT_EQ(loaded.entries[0].id, b.entries[0].id);
  EXPECT_DOUBLE_EQ(loaded.entries[0].value, 123456);
  EXPECT_DOUBLE_EQ(loaded.entries[0].tolerance, 0.02);
  EXPECT_TRUE(loaded.entries[0].gate);
  EXPECT_FALSE(loaded.entries[1].gate);
  EXPECT_THROW(load_baseline("/nonexistent/baseline.json"),
               std::invalid_argument);
}

TEST(AnalyzeBaseline, DiffPassesWithinBandFailsOutside) {
  Baseline b;
  b.entries.push_back({"evals_total", 10000, 0.02, true});
  // Inside the band: +1% on a 2% tolerance.
  GateResult ok = diff_scrape(
      b, scrape_of("# TYPE evals_total counter\nevals_total 10100\n"));
  EXPECT_FALSE(ok.regression());
  EXPECT_EQ(ok.gated, 1u);
  EXPECT_EQ(ok.failed, 0u);
  ASSERT_EQ(ok.diffs.size(), 1u);
  EXPECT_TRUE(ok.diffs[0].within);
  EXPECT_NEAR(ok.diffs[0].rel_delta, 0.01, 1e-9);
  // Outside the band: +3%.
  GateResult bad = diff_scrape(
      b, scrape_of("# TYPE evals_total counter\nevals_total 10300\n"));
  EXPECT_TRUE(bad.regression());
  EXPECT_EQ(bad.failed, 1u);
  EXPECT_FALSE(bad.diffs[0].within);
}

TEST(AnalyzeBaseline, MissingGatedSeriesIsARegression) {
  Baseline b;
  b.entries.push_back({"vanished_total", 5, 0.02, true});
  const GateResult r = diff_scrape(b, scrape_of("other_total 5\n"));
  EXPECT_TRUE(r.regression());
  ASSERT_EQ(r.diffs.size(), 1u);
  EXPECT_TRUE(r.diffs[0].missing);
}

TEST(AnalyzeBaseline, AdvisoryEntriesNeverFailTheGate) {
  Baseline b;
  b.entries.push_back({"wall_seconds_sum", 1.0, 0.5, false});
  const GateResult r =
      diff_scrape(b, scrape_of("wall_seconds_sum 100\n"));  // wildly off
  EXPECT_FALSE(r.regression());
  EXPECT_EQ(r.advisories, 1u);
  EXPECT_FALSE(r.diffs[0].within);
}

TEST(AnalyzeBaseline, ZeroBaselineUsesUnitFloor) {
  // value ± tol * max(|value|, 1): a zero baseline demands near-zero
  // actuals instead of accepting any relative delta.
  Baseline b;
  b.entries.push_back({"faults_total", 0, 0.02, true});
  EXPECT_FALSE(diff_scrape(b, scrape_of("faults_total 0\n")).regression());
  EXPECT_TRUE(diff_scrape(b, scrape_of("faults_total 1\n")).regression());
}

TEST(AnalyzeBaseline, ScrapeOnlySeriesAreIgnored) {
  Baseline b;
  b.entries.push_back({"known_total", 10, 0.02, true});
  const GateResult r = diff_scrape(
      b, scrape_of("known_total 10\nnew_metric_total 999\n"));
  EXPECT_FALSE(r.regression());
  EXPECT_EQ(r.diffs.size(), 1u);  // the new series waits for an update
}

}  // namespace
}  // namespace parsec::analyze
