// Golden-trace acceptance test for the analyzer (ISSUE 6 acceptance
// criterion): a committed, hand-written trace with four requests on
// four threads, whose critical paths, per-phase self/total times,
// run profile, and straggler verdicts were computed by hand.  If the
// analyzer's numbers drift from these, the analytics changed meaning.
//
// The fixture (tests/analyze/golden/trace_golden.json):
//   tid 1: serve.request[0,1000] > backend.serial[100,900] >
//          {serial.unary[150,250], serial.binary[300,700] >
//           cdg.mask_build[350,650], cdg.ac4_fixpoint[750,850]};
//          cdg.factoring[1100,1150] outside the request.
//   tid 2: serve.request[200,4200] > backend.maspar[400,3900] >
//          {maspar.unary[500,1500], maspar.binary[1600,3600]}  (straggler)
//   tid 3: serve.request[10,1100] > backend.serial[100,1000]
//   tid 4: backend.serial[50,950]  (bare envelope, no service wrapper)
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "analyze/span_graph.h"
#include "analyze/trace_reader.h"

namespace parsec::analyze {
namespace {

Trace load_golden() {
  return read_trace_file(std::string(PARSEC_SOURCE_DIR) +
                         "/tests/analyze/golden/trace_golden.json");
}

TEST(AnalyzeGolden, LoadsAllEvents) {
  const Trace t = load_golden();
  EXPECT_EQ(t.events.size(), 14u);
  EXPECT_EQ(t.skipped, 0u);
}

TEST(AnalyzeGolden, RunShape) {
  const RunAnalysis run = analyze_trace(load_golden());
  EXPECT_EQ(run.events, 14u);
  EXPECT_EQ(run.threads, 4u);
  EXPECT_DOUBLE_EQ(run.wall_us, 4200.0);  // [0, 4200]
}

TEST(AnalyzeGolden, ReconstructsRequests) {
  const RunAnalysis run = analyze_trace(load_golden());
  ASSERT_EQ(run.requests.size(), 4u);

  // Time order: tid 1 (ts 0), tid 3 (ts 10), tid 4 (ts 50), tid 2 (200).
  const RequestStat& a = run.requests[0];
  EXPECT_EQ(a.root_name, "serve.request");
  EXPECT_EQ(a.backend, "serial");
  EXPECT_EQ(a.tid, 1u);
  EXPECT_DOUBLE_EQ(a.dur_us, 1000.0);
  EXPECT_DOUBLE_EQ(a.queue_us, 50.0);
  EXPECT_EQ(a.n, 5);
  EXPECT_EQ(a.accepted, 1);
  EXPECT_FALSE(a.straggler);

  const RequestStat& c = run.requests[1];
  EXPECT_EQ(c.tid, 3u);
  EXPECT_EQ(c.backend, "serial");
  EXPECT_EQ(c.n, 4);

  const RequestStat& d = run.requests[2];
  EXPECT_EQ(d.root_name, "backend.serial");  // bare envelope
  EXPECT_EQ(d.tid, 4u);
  EXPECT_EQ(d.backend, "serial");
  EXPECT_EQ(d.n, 6);
  EXPECT_DOUBLE_EQ(d.queue_us, 0.0);  // no service wrapper, no queue

  const RequestStat& b = run.requests[3];
  EXPECT_EQ(b.tid, 2u);
  EXPECT_EQ(b.backend, "maspar");
  EXPECT_DOUBLE_EQ(b.dur_us, 4000.0);
  EXPECT_DOUBLE_EQ(b.queue_us, 500.0);
  EXPECT_EQ(b.n, 7);
  EXPECT_EQ(b.accepted, 0);
}

TEST(AnalyzeGolden, CriticalPathOfRequestA) {
  const Trace t = load_golden();
  const RunAnalysis run = analyze_trace(t);
  const std::vector<PathSegment>& path = run.requests[0].path;

  const std::vector<std::pair<std::string, double>> expected = {
      {"serve.request", 100},  {"backend.serial", 50}, {"serial.unary", 100},
      {"backend.serial", 50},  {"serial.binary", 50},  {"cdg.mask_build", 300},
      {"serial.binary", 50},   {"backend.serial", 50},
      {"cdg.ac4_fixpoint", 100}, {"backend.serial", 50}, {"serve.request", 100},
  };
  ASSERT_EQ(path.size(), expected.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(path[i].name, expected[i].first) << "segment " << i;
    EXPECT_DOUBLE_EQ(path[i].us, expected[i].second) << "segment " << i;
    sum += path[i].us;
  }
  EXPECT_DOUBLE_EQ(sum, 1000.0);  // exactly the request duration
}

TEST(AnalyzeGolden, StragglerIsTheMasparRequest) {
  const RunAnalysis run = analyze_trace(load_golden());
  // Durations 1000/1090/900/4000: only the 4000us maspar request
  // exceeds 3x the median.
  ASSERT_EQ(run.stragglers.size(), 1u);
  const RequestStat& s = run.requests[run.stragglers[0]];
  EXPECT_EQ(s.backend, "maspar");
  EXPECT_DOUBLE_EQ(s.dur_us, 4000.0);
  // No phase appears >= 8 times, so skew flags must stay quiet.
  EXPECT_TRUE(run.skewed_phases.empty());
}

TEST(AnalyzeGolden, PhaseSelfAndTotalTimes) {
  const RunAnalysis run = analyze_trace(load_golden());
  std::map<std::string, const PhaseStat*> by_name;
  for (const PhaseStat& p : run.phases) by_name[p.name] = &p;
  ASSERT_EQ(by_name.size(), 10u);

  auto expect_phase = [&](const char* name, std::size_t count, double total,
                          double self) {
    ASSERT_TRUE(by_name.count(name)) << name;
    const PhaseStat& p = *by_name[name];
    EXPECT_EQ(p.count, count) << name;
    EXPECT_DOUBLE_EQ(p.total_us, total) << name;
    EXPECT_DOUBLE_EQ(p.self_us, self) << name;
  };
  expect_phase("serve.request", 3, 6090, 890);
  expect_phase("backend.serial", 3, 2600, 2000);
  expect_phase("backend.maspar", 1, 3500, 500);
  expect_phase("serial.unary", 1, 100, 100);
  expect_phase("serial.binary", 1, 400, 100);
  expect_phase("cdg.mask_build", 1, 300, 300);
  expect_phase("cdg.ac4_fixpoint", 1, 100, 100);
  expect_phase("maspar.unary", 1, 1000, 1000);
  expect_phase("maspar.binary", 1, 2000, 2000);
  expect_phase("cdg.factoring", 1, 50, 50);

  // Sorted by self time: the two 2000us phases lead (name-tiebroken).
  EXPECT_EQ(run.phases[0].name, "backend.serial");
  EXPECT_EQ(run.phases[1].name, "maspar.binary");
}

TEST(AnalyzeGolden, RunProfileSumsRequestCriticalPaths) {
  const RunAnalysis run = analyze_trace(load_golden());
  std::map<std::string, double> profile;
  double total = 0.0;
  for (const PathSegment& seg : run.profile) {
    profile[seg.name] = seg.us;
    total += seg.us;
  }
  EXPECT_DOUBLE_EQ(profile["backend.serial"], 2000.0);
  EXPECT_DOUBLE_EQ(profile["maspar.binary"], 2000.0);
  EXPECT_DOUBLE_EQ(profile["maspar.unary"], 1000.0);
  EXPECT_DOUBLE_EQ(profile["serve.request"], 890.0);
  EXPECT_DOUBLE_EQ(profile["backend.maspar"], 500.0);
  EXPECT_DOUBLE_EQ(profile["cdg.mask_build"], 300.0);
  EXPECT_DOUBLE_EQ(profile["serial.unary"], 100.0);
  EXPECT_DOUBLE_EQ(profile["serial.binary"], 100.0);
  EXPECT_DOUBLE_EQ(profile["cdg.ac4_fixpoint"], 100.0);
  // Factoring runs outside every request: absent from the profile.
  EXPECT_EQ(profile.count("cdg.factoring"), 0u);
  // The profile partitions the requests' wall time exactly:
  // 1000 + 4000 + 1090 + 900.
  EXPECT_DOUBLE_EQ(total, 6990.0);
}

}  // namespace
}  // namespace parsec::analyze
