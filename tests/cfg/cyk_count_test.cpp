// Parse-counting checks with known combinatorics.
#include <gtest/gtest.h>

#include "cfg/cyk.h"
#include "grammars/cfg_workloads.h"

namespace {

using namespace parsec;

TEST(CykCount, FlatParenSequencesCountCatalan) {
  // "()" repeated m times under S -> S S | ( S ) | ( ): the top-level
  // bracketings of m units are counted by Catalan(m-1): 1, 1, 2, 5, 14.
  cfg::Grammar g = grammars::make_paren_grammar();
  const cfg::CnfGrammar cnf = cfg::to_cnf(g);
  const std::uint64_t catalan[] = {1, 1, 2, 5, 14, 42};
  for (int m = 1; m <= 6; ++m) {
    std::vector<int> w;
    for (int i = 0; i < m; ++i) {
      w.push_back(g.terminal("("));
      w.push_back(g.terminal(")"));
    }
    EXPECT_EQ(cfg::cyk_count_parses(cnf, w), catalan[m - 1]) << m;
  }
}

TEST(CykCount, NestedParensUnambiguous) {
  cfg::Grammar g = grammars::make_paren_grammar();
  const cfg::CnfGrammar cnf = cfg::to_cnf(g);
  // "((((...))))" has exactly one parse at any depth.
  for (int depth = 1; depth <= 8; ++depth) {
    std::vector<int> w;
    for (int i = 0; i < depth; ++i) w.push_back(g.terminal("("));
    for (int i = 0; i < depth; ++i) w.push_back(g.terminal(")"));
    EXPECT_EQ(cfg::cyk_count_parses(cnf, w), 1u) << depth;
  }
}

TEST(CykCount, ExpressionChainUnambiguousUnderPrecedence) {
  // id + id * id has exactly one parse in the stratified E/T/F grammar.
  cfg::Grammar g = grammars::make_expr_grammar();
  const cfg::CnfGrammar cnf = cfg::to_cnf(g);
  EXPECT_EQ(cfg::cyk_count_parses(cnf, g.encode("id + id * id")), 1u);
  EXPECT_EQ(cfg::cyk_count_parses(cnf, g.encode("id + id + id")), 1u);
  EXPECT_EQ(cfg::cyk_count_parses(cnf, g.encode("( id + id ) * id")), 1u);
}

TEST(CykCount, EnglishPpAttachmentAmbiguity) {
  // "det noun verb det noun prep det noun": the PP attaches to the
  // object NP or the VP: 2 parses — the same ambiguity the CDG English
  // grammar stores (tests/grammars/english_grammar_test.cpp).
  cfg::Grammar g = grammars::make_english_cfg();
  const cfg::CnfGrammar cnf = cfg::to_cnf(g);
  EXPECT_EQ(cfg::cyk_count_parses(
                cnf, g.encode("det noun verb det noun prep det noun")),
            2u);
  // Two PPs: 2 attachment points each with nesting: 5 parses
  // (Catalan-style growth).
  EXPECT_EQ(cfg::cyk_count_parses(
                cnf, g.encode(
                         "det noun verb det noun prep det noun prep det noun")),
            5u);
}

TEST(CykCount, SaturatesAtLimit) {
  cfg::Grammar g = grammars::make_paren_grammar();
  const cfg::CnfGrammar cnf = cfg::to_cnf(g);
  std::vector<int> w;
  for (int i = 0; i < 12; ++i) {
    w.push_back(g.terminal("("));
    w.push_back(g.terminal(")"));
  }
  // Catalan(11) = 58786 > limit 100: count clamps at the limit.
  EXPECT_EQ(cfg::cyk_count_parses(cnf, w, 100), 100u);
}

}  // namespace
