#include "cfg/parse_tree.h"

#include <gtest/gtest.h>

#include <functional>

#include "grammars/cfg_workloads.h"
#include "util/rng.h"

namespace {

using namespace parsec;
using cfg::cyk_parse;
using cfg::ParseTree;

TEST(ParseTree, SimpleParenTree) {
  cfg::Grammar g = grammars::make_paren_grammar();
  const cfg::CnfGrammar cnf = cfg::to_cnf(g);
  auto t = cyk_parse(cnf, g.encode("( )"));
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(cfg::tree_is_valid(cnf, *t, g.encode("( )")));
  EXPECT_EQ(t->nt, cnf.start);
  EXPECT_EQ(t->len, 2);
  std::vector<std::string> words{"(", ")"};
  const std::string b = cfg::bracketing(cnf, *t, &words);
  EXPECT_EQ(b.front(), '(');
  EXPECT_NE(b.find("S"), std::string::npos);
}

TEST(ParseTree, RejectedWordGivesNullopt) {
  cfg::Grammar g = grammars::make_paren_grammar();
  const cfg::CnfGrammar cnf = cfg::to_cnf(g);
  EXPECT_FALSE(cyk_parse(cnf, g.encode(") (")).has_value());
  EXPECT_FALSE(cyk_parse(cnf, {}).has_value());
}

TEST(ParseTree, ExpressionTreeRespectsPrecedence) {
  cfg::Grammar g = grammars::make_expr_grammar();
  const cfg::CnfGrammar cnf = cfg::to_cnf(g);
  const auto w = g.encode("id + id * id");
  auto t = cyk_parse(cnf, w);
  ASSERT_TRUE(t.has_value());
  EXPECT_TRUE(cfg::tree_is_valid(cnf, *t, w));
  std::vector<std::string> words{"id", "+", "id", "*", "id"};
  const std::string b = cfg::bracketing(cnf, *t, &words);
  // The multiplication binds tighter: "id * id" forms a subtree whose
  // bracketing keeps "* id" together after the second id... we verify
  // structurally instead: the root's left child spans just "id" (the
  // left operand of +), so the right part spans "id * id".
  // Root is E -> E + T (binarized); its left subtree must span 1 or 3
  // tokens, never split the * pair across the +.
  std::vector<int> split_lens;
  const ParseTree* node = &*t;
  while (node && !node->is_leaf()) {
    split_lens.push_back(node->left->len);
    node = node->right.get();
  }
  // The + operator sits at position 1: some split has the left part
  // covering exactly token 0.
  EXPECT_EQ(t->left->len, 1);
  (void)b;
}

TEST(ParseTree, RandomSamplesProduceValidTrees) {
  util::Rng rng(2024);
  for (auto make : {grammars::make_paren_grammar, grammars::make_expr_grammar,
                    grammars::make_english_cfg}) {
    cfg::Grammar g = make();
    const cfg::CnfGrammar cnf = cfg::to_cnf(g);
    int done = 0;
    for (int i = 0; i < 60 && done < 20; ++i) {
      auto w = grammars::sample_string(g, rng, 12);
      if (!w) continue;
      ++done;
      auto t = cyk_parse(cnf, *w);
      ASSERT_TRUE(t.has_value());
      EXPECT_TRUE(cfg::tree_is_valid(cnf, *t, *w));
      EXPECT_EQ(t->len, static_cast<int>(w->size()));
      EXPECT_EQ(t->start, 0);
    }
    EXPECT_GE(done, 10);
  }
}

TEST(ParseTree, LeavesMatchWordLeftToRight) {
  cfg::Grammar g = grammars::make_palindrome_grammar();
  const cfg::CnfGrammar cnf = cfg::to_cnf(g);
  const auto w = g.encode("a b b a");
  auto t = cyk_parse(cnf, w);
  ASSERT_TRUE(t.has_value());
  std::vector<int> leaves;
  std::function<void(const ParseTree&)> collect = [&](const ParseTree& n) {
    if (n.is_leaf()) {
      leaves.push_back(n.terminal);
      return;
    }
    collect(*n.left);
    collect(*n.right);
  };
  collect(*t);
  EXPECT_EQ(leaves, w);
}

}  // namespace
