#include "cfg/cyk.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "grammars/cfg_workloads.h"
#include "util/rng.h"

namespace {

using namespace parsec;
using cfg::CnfGrammar;
using cfg::cyk_count_parses;
using cfg::cyk_recognize;
using cfg::to_cnf;

bool balanced(const std::vector<int>& w, int open, int close) {
  int depth = 0;
  for (int t : w) {
    depth += (t == open) ? 1 : (t == close ? -1 : 0);
    if (depth < 0) return false;
  }
  return depth == 0 && !w.empty();
}

TEST(Cyk, BalancedParensAgainstReference) {
  cfg::Grammar g = grammars::make_paren_grammar();
  CnfGrammar cnf = to_cnf(g);
  const int open = g.terminal("(");
  const int close = g.terminal(")");
  // Every word over {(, )} of length <= 10.
  for (int len = 1; len <= 10; ++len) {
    for (int mask = 0; mask < (1 << len); ++mask) {
      std::vector<int> w;
      for (int i = 0; i < len; ++i)
        w.push_back((mask >> i) & 1 ? open : close);
      EXPECT_EQ(cyk_recognize(cnf, w), balanced(w, open, close))
          << "len=" << len << " mask=" << mask;
    }
  }
}

TEST(Cyk, PalindromesAgainstReference) {
  cfg::Grammar g = grammars::make_palindrome_grammar();
  CnfGrammar cnf = to_cnf(g);
  const int a = g.terminal("a");
  const int b = g.terminal("b");
  for (int len = 1; len <= 12; ++len) {
    for (int mask = 0; mask < (1 << len); ++mask) {
      std::vector<int> w;
      for (int i = 0; i < len; ++i) w.push_back((mask >> i) & 1 ? a : b);
      std::vector<int> rev(w.rbegin(), w.rend());
      EXPECT_EQ(cyk_recognize(cnf, w), w == rev) << len << ":" << mask;
    }
  }
}

TEST(Cyk, ExpressionsAgainstEnumeratedLanguage) {
  cfg::Grammar g = grammars::make_expr_grammar();
  CnfGrammar cnf = to_cnf(g);
  const auto lang = cfg::enumerate_language(g, 7);
  ASSERT_FALSE(lang.empty());
  std::set<std::vector<int>> in_lang(lang.begin(), lang.end());
  for (const auto& w : lang) EXPECT_TRUE(cyk_recognize(cnf, w));
  // Random perturbations that fall outside the enumerated set of the
  // same length must be rejected.
  util::Rng rng(3);
  int checked = 0;
  for (const auto& w : lang) {
    if (w.size() < 2 || checked > 200) continue;
    std::vector<int> bad = w;
    bad[rng.next_below(bad.size())] =
        static_cast<int>(rng.next_below(g.num_terminals()));
    if (in_lang.count(bad)) continue;
    EXPECT_FALSE(cyk_recognize(cnf, bad));
    ++checked;
  }
  EXPECT_GT(checked, 30);
}

TEST(Cyk, EmptyWordRejected) {
  CnfGrammar cnf = to_cnf(grammars::make_paren_grammar());
  EXPECT_FALSE(cyk_recognize(cnf, {}));
}

TEST(Cyk, CountParsesAmbiguity) {
  // "( ) ( ) ( )" has two S -> S S bracketings: (AB)C and A(BC).
  cfg::Grammar g = grammars::make_paren_grammar();
  CnfGrammar cnf = to_cnf(g);
  const auto w = g.encode("( ) ( ) ( )");
  EXPECT_TRUE(cyk_recognize(cnf, w));
  EXPECT_EQ(cyk_count_parses(cnf, w), 2u);
  // "( )" is unambiguous.
  EXPECT_EQ(cyk_count_parses(cnf, g.encode("( )")), 1u);
  // Rejected strings have zero parses.
  EXPECT_EQ(cyk_count_parses(cnf, g.encode(") (")), 0u);
}

TEST(Cyk, SamplerProducesMembers) {
  util::Rng rng(17);
  for (auto make : {grammars::make_paren_grammar, grammars::make_expr_grammar,
                    grammars::make_english_cfg}) {
    cfg::Grammar g = make();
    CnfGrammar cnf = to_cnf(g);
    int produced = 0;
    for (int i = 0; i < 50; ++i) {
      auto w = grammars::sample_string(g, rng, 14);
      if (!w) continue;
      ++produced;
      EXPECT_TRUE(cyk_recognize(cnf, *w)) << i;
    }
    EXPECT_GT(produced, 10);
  }
}

TEST(Cyk, SampleStringOfExactLength) {
  util::Rng rng(29);
  cfg::Grammar g = grammars::make_english_cfg();
  CnfGrammar cnf = to_cnf(g);
  for (std::size_t len : {3u, 5u, 8u, 12u}) {
    auto w = grammars::sample_string_of_length(g, rng, len, /*retries=*/3000);
    ASSERT_TRUE(w.has_value()) << len;
    EXPECT_EQ(w->size(), len);
    EXPECT_TRUE(cyk_recognize(cnf, *w));
  }
}

TEST(Cyk, StatsCountRuleApplications) {
  cfg::Grammar g = grammars::make_paren_grammar();
  CnfGrammar cnf = to_cnf(g);
  cfg::CykStats s4, s8;
  cyk_recognize(cnf, g.encode("( ) ( )"), &s4);
  cyk_recognize(cnf, g.encode("( ) ( ) ( ) ( )"), &s8);
  // O(n^3): doubling n multiplies work by ~8.
  EXPECT_GT(s8.rule_applications, 5 * s4.rule_applications);
}

}  // namespace
