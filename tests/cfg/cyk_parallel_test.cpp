// Mesh (cellular automaton) and P-RAM CYK: agreement with sequential
// CYK plus the step-count shapes of Figure 8's CFG column.
#include <gtest/gtest.h>

#include "cfg/cyk.h"
#include "cfg/cyk_mesh.h"
#include "cfg/cyk_pram.h"
#include "grammars/cfg_workloads.h"
#include "util/rng.h"

namespace {

using namespace parsec;
using cfg::CnfGrammar;
using cfg::to_cnf;

class ParallelCyk : public ::testing::Test {
 protected:
  void agree_on_samples(const cfg::Grammar& g, int samples) {
    CnfGrammar cnf = to_cnf(g);
    util::Rng rng(5);
    int done = 0;
    for (int i = 0; i < samples * 4 && done < samples; ++i) {
      auto w = grammars::sample_string(g, rng, 12);
      if (!w) continue;
      ++done;
      const bool ref = cfg::cyk_recognize(cnf, *w);
      EXPECT_EQ(cfg::mesh_cyk_recognize(cnf, *w).accepted, ref);
      EXPECT_EQ(cfg::pram_cyk_recognize(cnf, *w).accepted, ref);
      // Mutate one terminal; all three must still agree.
      std::vector<int> bad = *w;
      bad[rng.next_below(bad.size())] =
          static_cast<int>(rng.next_below(g.num_terminals()));
      const bool ref_bad = cfg::cyk_recognize(cnf, bad);
      EXPECT_EQ(cfg::mesh_cyk_recognize(cnf, bad).accepted, ref_bad);
      EXPECT_EQ(cfg::pram_cyk_recognize(cnf, bad).accepted, ref_bad);
    }
    EXPECT_GE(done, samples / 2);
  }
};

TEST_F(ParallelCyk, AgreeOnParens) {
  agree_on_samples(grammars::make_paren_grammar(), 30);
}

TEST_F(ParallelCyk, AgreeOnExpressions) {
  agree_on_samples(grammars::make_expr_grammar(), 30);
}

TEST_F(ParallelCyk, AgreeOnEnglishCfg) {
  agree_on_samples(grammars::make_english_cfg(), 30);
}

TEST_F(ParallelCyk, MeshWavesAreLinear) {
  // Kosaraju's bound: O(n) automaton steps on O(n^2) cells; our
  // schedule runs exactly 2n - 1 waves.
  cfg::Grammar g = grammars::make_paren_grammar();
  CnfGrammar cnf = to_cnf(g);
  for (int pairs : {2, 4, 8}) {
    std::vector<int> w;
    for (int i = 0; i < pairs; ++i) {
      w.push_back(g.terminal("("));
      w.push_back(g.terminal(")"));
    }
    const auto r = cfg::mesh_cyk_recognize(cnf, w);
    const int n = 2 * pairs;
    EXPECT_TRUE(r.accepted);
    EXPECT_EQ(r.waves, static_cast<std::uint64_t>(2 * n - 1));
    EXPECT_EQ(r.cells, static_cast<std::uint64_t>(n) * n);
  }
}

TEST_F(ParallelCyk, PramRoundsLogOnBalancedLinearOnLeftRecursive) {
  // Balanced parentheses nest like a tree: rounds grow ~log n.
  cfg::Grammar paren = grammars::make_paren_grammar();
  CnfGrammar paren_cnf = to_cnf(paren);
  std::vector<int> flat;
  for (int i = 0; i < 16; ++i) {
    flat.push_back(paren.terminal("("));
    flat.push_back(paren.terminal(")"));
  }
  const auto balanced = cfg::pram_cyk_recognize(paren_cnf, flat);
  EXPECT_TRUE(balanced.accepted);
  EXPECT_LE(balanced.rounds, 8u);  // ~log2(32) + constant

  // Left-recursive chains force one new span length per round.
  cfg::Grammar expr = grammars::make_expr_grammar();
  CnfGrammar expr_cnf = to_cnf(expr);
  std::vector<int> chain{expr.terminal("id")};
  for (int i = 0; i < 12; ++i) {
    chain.push_back(expr.terminal("+"));
    chain.push_back(expr.terminal("id"));
  }
  const auto linear = cfg::pram_cyk_recognize(expr_cnf, chain);
  EXPECT_TRUE(linear.accepted);
  EXPECT_GT(linear.rounds, 10u);
}

TEST_F(ParallelCyk, EmptyWord) {
  CnfGrammar cnf = to_cnf(grammars::make_paren_grammar());
  EXPECT_FALSE(cfg::mesh_cyk_recognize(cnf, {}).accepted);
  EXPECT_FALSE(cfg::pram_cyk_recognize(cnf, {}).accepted);
}

}  // namespace
