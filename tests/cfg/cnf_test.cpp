#include "cfg/cnf.h"

#include <gtest/gtest.h>

#include <set>

#include "cfg/cyk.h"
#include "grammars/cfg_workloads.h"

namespace {

using namespace parsec;
using cfg::CnfGrammar;
using cfg::to_cnf;

TEST(Cnf, ProducesOnlyBinaryAndTerminalRules) {
  for (auto make :
       {grammars::make_paren_grammar, grammars::make_expr_grammar,
        grammars::make_palindrome_grammar, grammars::make_english_cfg}) {
    CnfGrammar cnf = to_cnf(make());
    EXPECT_FALSE(cnf.binary.empty());
    EXPECT_FALSE(cnf.terminal.empty());
    for (const auto& r : cnf.binary) {
      EXPECT_LT(r.lhs, cnf.num_nonterminals);
      EXPECT_LT(r.left, cnf.num_nonterminals);
      EXPECT_LT(r.right, cnf.num_nonterminals);
    }
    for (const auto& r : cnf.terminal) {
      EXPECT_LT(r.lhs, cnf.num_nonterminals);
      EXPECT_LT(r.terminal, cnf.num_terminals);
    }
    EXPECT_EQ(cnf.nt_names.size(),
              static_cast<std::size_t>(cnf.num_nonterminals));
  }
}

TEST(Cnf, LanguagePreservedOnEnumeratedStrings) {
  // For each sample grammar: the CNF recognizer accepts exactly the
  // strings the original grammar derives (up to a length bound).
  for (auto make : {grammars::make_paren_grammar, grammars::make_expr_grammar,
                    grammars::make_palindrome_grammar}) {
    cfg::Grammar g = make();
    CnfGrammar cnf = to_cnf(g);
    const std::size_t max_len = 7;
    auto lang = cfg::enumerate_language(g, max_len);
    std::set<std::vector<int>> in_lang(lang.begin(), lang.end());
    ASSERT_FALSE(lang.empty());
    for (const auto& w : lang) EXPECT_TRUE(cfg::cyk_recognize(cnf, w));
    // Exhaustive complement check over small alphabets/lengths.
    if (g.num_terminals() <= 2) {
      for (std::size_t len = 1; len <= 6; ++len) {
        for (int mask = 0; mask < (1 << (2 * len)); ++mask) {
          std::vector<int> w;
          int m = mask;
          bool valid = true;
          for (std::size_t i = 0; i < len; ++i, m >>= 2) {
            const int t = m & 3;
            if (t >= g.num_terminals()) {
              valid = false;
              break;
            }
            w.push_back(t);
          }
          if (!valid) continue;
          EXPECT_EQ(cfg::cyk_recognize(cnf, w), in_lang.count(w) > 0);
        }
      }
    }
  }
}

TEST(Cnf, UnitChainsEliminated) {
  // E -> T -> F -> id must yield a direct terminal rule E -> id.
  cfg::Grammar g = grammars::make_expr_grammar();
  CnfGrammar cnf = to_cnf(g);
  const int E = g.nonterminal("E");
  const int id = g.terminal("id");
  bool found = false;
  for (const auto& r : cnf.terminal)
    if (r.lhs == E && r.terminal == id) found = true;
  EXPECT_TRUE(found);
  EXPECT_TRUE(cfg::cyk_recognize(cnf, {id}));
}

TEST(Cnf, EpsilonRejectedAtConstruction) {
  cfg::Grammar g;
  const int s = g.add_nonterminal("S");
  EXPECT_THROW(g.add_production(s, {}), std::invalid_argument);
}

TEST(Cnf, DerivesTerminalTable) {
  cfg::Grammar g = grammars::make_paren_grammar();
  CnfGrammar cnf = to_cnf(g);
  const int open = g.terminal("(");
  bool any = false;
  for (int nt = 0; nt < cnf.num_nonterminals; ++nt)
    if (cnf.derives_terminal[open][nt]) any = true;
  EXPECT_TRUE(any);
}

}  // namespace
