// Fleet supervisor: spawns N parse_serverd shards and keeps them
// alive (docs/ROBUSTNESS.md fleet taxonomy, docs/SERVING.md §fleet).
//
// The MasPar array controller owned PE liveness the same way the host
// owned the ACU: a dead PE was masked out and its work redistributed,
// not debugged in place.  Process-ified, that is a supervisor: each
// shard is a child parse_serverd pinned to port_base+i, and the
// supervisor's only job is to notice death and restore the fleet
// shape.  Detection is two-pronged because crash and hang look
// nothing alike from the outside:
//
//   * crash  — waitpid(WNOHANG) reaps the exit (SIGKILL, abort, OOM,
//              clean exit alike) the next monitor tick;
//   * hang   — a fresh-connection Ping per liveness interval; after
//              Options::hang_pings consecutive failures the shard is
//              SIGKILLed, which converts the hang into a crash and
//              funnels both failure modes through one restart path.
//
// Restarts are budgeted: capped exponential backoff with seeded
// jitter between attempts (a crash-looping shard must not spin), and
// after Options::restart_budget restarts the shard is marked Down
// permanently — the router routes around it, and a human looks at the
// logs.  Shard lifecycle:
//
//     Starting --ping ok--> Up --exit/hang--> Backoff --spawn--> Starting
//                                 \--budget exhausted--> Down (terminal)
//
// Every transition is logged through Options::log (one line each, the
// chaos harness greps them) and mirrored into parsec_fleet_* metrics;
// each restart opens a "supervisor.restart" span.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace parsec::net {

enum class ShardState : std::uint8_t { Starting, Up, Backoff, Down };

const char* to_string(ShardState s);

class Supervisor {
 public:
  struct Options {
    /// Path to the parse_serverd binary to spawn.
    std::string serverd_path;
    /// Extra argv appended to every shard's command line (grammar
    /// flags, --cache, --fault-plan ... — anything parse_serverd
    /// accepts).  The supervisor itself supplies --port and
    /// --shard-id.
    std::vector<std::string> shard_args;
    std::string host = "127.0.0.1";
    /// Shard i listens on port_base + i.  Fixed ports (not ephemeral)
    /// so a restarted shard comes back at the SAME address and the
    /// router's probe leg re-promotes it without reconfiguration.
    std::uint16_t port_base = 9300;
    int shards = 2;

    // ---- liveness ----
    /// Interval between fresh-connection Ping probes per shard.
    std::chrono::milliseconds ping_interval{250};
    /// Reply budget per probe before it counts as failed.
    int ping_timeout_ms = 500;
    /// Consecutive probe failures before a shard is declared hung and
    /// SIGKILLed (converting the hang into a restartable crash).
    int hang_pings = 3;
    /// A Starting shard gets this long to bind + publish grammars
    /// before probe failures count against it.
    int startup_grace_ms = 5000;

    // ---- restart policy ----
    /// Restarts per shard before it is marked Down permanently.
    int restart_budget = 8;
    /// Capped exponential backoff before restart k: base * 2^(k-1)
    /// (at most `max`), scaled by deterministic jitter in [0.5, 1.5).
    std::chrono::milliseconds backoff_base{100};
    std::chrono::milliseconds backoff_max{2000};
    std::uint64_t backoff_seed = 0x5eed5eed5eed5eedull;

    int poll_interval_ms = 50;
    obs::Registry* metrics = &obs::Registry::global();
    /// One line per lifecycle event (spawn, up, exit, hang-kill,
    /// backoff, permanent down).  Null = silent.
    std::function<void(const std::string&)> log;
  };

  struct ShardStats {
    ShardState state = ShardState::Starting;
    pid_t pid = -1;
    std::uint16_t port = 0;
    /// Bumped on every (re)spawn; generation 1 is the initial start.
    std::uint64_t generation = 0;
    std::uint64_t restarts = 0;  // respawns after a failure
    double uptime_seconds = 0.0;  // since last successful spawn
  };

  struct Stats {
    std::uint64_t restarts = 0;
    std::uint64_t hang_kills = 0;
    std::uint64_t permanently_down = 0;
    std::vector<ShardStats> shards;
  };

  /// Spawns all shards and starts the monitor thread.  Throws
  /// std::runtime_error when Options are unusable (no serverd_path,
  /// shards < 1).
  explicit Supervisor(Options opt);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// SIGTERM every live shard, give it a grace period to drain, then
  /// SIGKILL stragglers; joins the monitor thread.  Idempotent.
  void stop();

  Stats stats() const;

  std::uint16_t port_for(int i) const {
    return static_cast<std::uint16_t>(opt_.port_base + i);
  }
  /// Current pid of shard i (-1 when not running).  Test hook: chaos
  /// tests kill -9 / SIGSTOP this pid and watch the state machine.
  pid_t pid_of(int i) const;

  /// Blocks until every non-Down shard answers a Ping (or the timeout
  /// expires).  Returns true when the whole fleet is Up.
  bool wait_all_up(int timeout_ms);

 private:
  struct Shard {
    pid_t pid = -1;
    std::uint16_t port = 0;
    ShardState state = ShardState::Starting;
    std::uint64_t generation = 0;
    std::uint64_t restarts = 0;
    /// Budget exhausted (terminal Down) — distinct from the Down state
    /// stop() applies to cleanly drained shards.
    bool perm_down = false;
    int ping_fails = 0;
    std::chrono::steady_clock::time_point started_at{};
    std::chrono::steady_clock::time_point last_ping{};
    std::chrono::steady_clock::time_point next_start{};
    obs::Counter* m_restarts = nullptr;
    obs::Gauge* m_up = nullptr;
    obs::Gauge* m_generation = nullptr;
    obs::Gauge* m_uptime = nullptr;
  };

  void monitor_loop();
  /// fork/exec one shard (lock held).  Returns false when the fork
  /// itself fails (the shard goes to Backoff and retries).
  bool spawn(std::size_t i);
  void handle_exit(std::size_t i, int wstatus);
  std::chrono::milliseconds backoff_for(const Shard& sh) const;
  void logline(const std::string& line) const;

  Options opt_;
  mutable std::mutex mutex_;  // guards shards_
  std::vector<Shard> shards_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> restarts_total_{0};
  std::atomic<std::uint64_t> hang_kills_{0};
  std::thread monitor_;
  std::once_flag stop_once_;

  obs::Counter* m_hang_kills_ = nullptr;
};

}  // namespace parsec::net
