// Wire-protocol front end for one ParseService (a fleet shard).
//
// Blocking-socket design, deliberately: one accept loop, one reader
// thread per connection, one request in flight per connection.  The
// concurrency knob of the system is the ParseService's worker pool —
// the socket layer only needs enough threads to keep the pool's queue
// fed, and a reader thread that is blocked in recv() costs nothing.
// Admission control is therefore *not* re-implemented here: a request
// that reaches the server flows into the exact shed / tenant-quota /
// breaker / watchdog paths the in-process service already has
// (docs/ROBUSTNESS.md), and the wire response carries the resulting
// status verbatim.  The only server-level limit is max_connections
// (excess connections are accepted and immediately closed, so a
// misbehaving client cannot exhaust reader threads).
//
// Drain contract (SIGTERM in parse_serverd, drain() here):
//   1. stop accepting — the listener closes, new connects are refused;
//   2. finish in-flight — every request already read off a connection
//      is parsed and its response written;
//   3. quiesce — reader threads join; afterwards the caller can write
//      trace.json / metrics.prom knowing no span is still recording.
//
// Observability: spans `net.read` (frame arrival -> decoded),
// `net.request` (decoded -> response written) and `net.write`
// (response serialization + send), and the `parsec_net_*` metric
// family (docs/OBSERVABILITY.md).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "net/socket.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "serve/parse_service.h"

namespace parsec::net {

class ParseServer {
 public:
  struct Options {
    /// Port to bind on 127.0.0.1 (0 = ephemeral; read back via port()).
    std::uint16_t port = 0;
    /// Stamped into every response's shard byte (-1 = unset); loadgen's
    /// per-shard skew accounting keys on it.
    int shard_id = -1;
    /// Reader threads are per-connection; beyond this, connections are
    /// accepted and immediately closed (counted as rejected).
    std::size_t max_connections = 64;
    /// Drain-flag poll granularity for idle accept/read loops.
    int poll_interval_ms = 100;
    /// Close a connection after this many ms without a frame (0 =
    /// never).  A SIGKILLed client leaves a half-dead TCP peer that
    /// would otherwise pin a reader thread and a parsec_net_active
    /// slot until process exit.
    int idle_timeout_ms = 0;
    /// Registry for the parsec_net_* family.  Must outlive the server.
    obs::Registry* metrics = &obs::Registry::global();
  };

  /// Aggregate socket-layer counters (the metric family, struct-shaped;
  /// service-level request accounting lives in ServiceStats).
  struct Stats {
    std::uint64_t connections = 0;
    std::uint64_t connections_rejected = 0;
    std::uint64_t requests = 0;
    std::uint64_t ok = 0;
    std::uint64_t pings = 0;
    std::uint64_t frame_errors = 0;   // bad magic/version/oversized/...
    std::uint64_t injected_faults = 0;  // net.accept / net.read fires
    std::uint64_t idle_closed = 0;    // connections reaped by idle timeout
    std::uint64_t bytes_read = 0;
    std::uint64_t bytes_written = 0;
    double drain_seconds = 0.0;  // 0 until drain() completes
  };

  /// Binds and starts accepting.  Throws std::runtime_error when the
  /// port cannot be bound.  `service` must outlive the server.
  ParseServer(serve::ParseService& service, Options opt);

  /// Drains (idempotent) and joins everything.
  ~ParseServer();

  ParseServer(const ParseServer&) = delete;
  ParseServer& operator=(const ParseServer&) = delete;

  /// The bound port (resolves Options::port == 0).
  std::uint16_t port() const { return port_; }

  /// Stop accepting, finish in-flight requests, join reader threads.
  /// Safe to call from a signal-watcher thread; idempotent.
  void drain();

  bool draining() const {
    return drain_.load(std::memory_order_acquire);
  }

  Stats stats() const;

 private:
  struct Conn {
    Socket sock;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void accept_loop();
  void handle_connection(Conn* conn);
  /// One ParseRequest frame: submit, wait, reply.  False ends the
  /// connection (write failure).  `version` is the frame header's wire
  /// version (v1 payloads lack the idempotency key).
  bool handle_request(Socket& sock, std::vector<std::uint8_t>& payload,
                      std::uint8_t version);
  void reap_finished(bool join_all);

  serve::ParseService& service_;
  Options opt_;
  Socket listener_;
  std::uint16_t port_ = 0;

  std::atomic<bool> drain_{false};
  std::once_flag drain_once_;
  std::thread accept_thread_;
  std::mutex conns_mutex_;
  std::list<std::unique_ptr<Conn>> conns_;
  std::atomic<std::size_t> active_conns_{0};

  // Struct-shaped mirrors of the metric family (tests read these
  // without a registry scrape).
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> connections_rejected_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> ok_{0};
  std::atomic<std::uint64_t> pings_{0};
  std::atomic<std::uint64_t> frame_errors_{0};
  std::atomic<std::uint64_t> injected_faults_{0};
  std::atomic<std::uint64_t> idle_closed_{0};
  std::atomic<std::uint64_t> bytes_read_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
  std::atomic<double> drain_seconds_{0.0};

  // Metric handles (resolved once; updates are lock-free).
  obs::Counter* m_connections_;
  obs::Counter* m_connections_rejected_;
  obs::Counter* m_requests_[serve::kNumRequestStatuses];
  obs::Counter* m_pings_;
  obs::Counter* m_idle_closed_;
  obs::Counter* m_bytes_read_;
  obs::Counter* m_bytes_written_;
  obs::Gauge* m_active_;
  obs::Gauge* m_drain_seconds_;
  obs::Histogram* m_request_seconds_;
};

}  // namespace parsec::net
