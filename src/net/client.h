// Blocking wire-protocol client (one request in flight per connection).
//
// Used by parsec_loadgen, the router's shard legs, the health prober,
// and the loopback tests.  The protocol is strictly request/response
// per connection — no pipelining — so a Client is just a Socket plus
// the encode/decode plumbing.  Not thread-safe; one Client per thread.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/socket.h"
#include "net/wire.h"

namespace parsec::net {

class Client {
 public:
  /// Connects to `host`:`port`.  nullopt + `err` on failure.
  static std::optional<Client> connect(const std::string& host,
                                       std::uint16_t port, std::string* err);

  /// Sends `req` and blocks for the response, for at most `timeout_ms`
  /// (-1 = wait forever).  False on any transport or protocol failure
  /// (the connection is unusable afterwards — reconnect); err is
  /// exactly "timeout" when the peer accepted the request but never
  /// answered within the budget, which is the failover signal for a
  /// shard hung mid-frame.
  bool request(const WireRequest& req, WireResponse& resp, std::string* err,
               int timeout_ms = -1);

  // Split-phase API for the router's straggler hedging: fire the
  // request (send_request), poll socket().fd() while deciding whether
  // to hedge, then collect with recv_response.  A request() is exactly
  // send_request + recv_response.

  /// Writes the request frame without waiting for the response.
  bool send_request(const WireRequest& req, std::string* err);

  /// Reads one response frame (pairs with the last send_request).  On
  /// timeout the socket is closed — the pending reply can never be
  /// collected, so the leg must reconnect.
  bool recv_response(WireResponse& resp, std::string* err,
                     int timeout_ms = -1);

  /// Health probe: Ping, expect Pong within `timeout_ms`.
  bool ping(int timeout_ms, std::string* err);

  bool valid() const { return sock_.valid(); }

  /// Underlying socket (for poll()ing several legs at once).
  const Socket& socket() const { return sock_; }

 private:
  explicit Client(Socket s) : sock_(std::move(s)) {}

  Socket sock_;
  std::vector<std::uint8_t> buf_;  // reused encode buffer
};

/// Parses "host:port" (numeric IPv4).  False on malformed input.
bool parse_addr(const std::string& s, std::string& host, std::uint16_t& port);

}  // namespace parsec::net
