// Length-prefixed binary wire protocol for the parse fleet.
//
// The MasPar split its work between an ACU that broadcasts one
// instruction stream and a PE array that executes it; the fleet keeps
// the same shape across processes — a router (ACU analogue) frames
// requests onto N shard servers (PE analogue), each fronting a
// ParseService.  This header is the contract both sides speak: a tiny,
// dependency-free, explicitly-versioned binary framing that a client in
// any language could implement from docs/SERVING.md alone.
//
// Frame layout (all integers little-endian):
//
//   offset  size  field
//   0       4     magic  "PARC" (0x50 0x41 0x52 0x43 on the wire)
//   4       1     version (kWireVersion = 2; v1 still decodes)
//   5       1     frame type (FrameType)
//   6       4     payload length in bytes (<= kMaxPayload)
//   10      ...   payload
//
// Decoding NEVER throws and never reads past the supplied buffer: every
// malformed input maps to a DecodeStatus, so a byte-flipping peer can
// at worst get its connection closed (tests/net/wire_test.cpp fuzzes
// truncations and corruptions against that contract).  Encoding is
// deterministic — the same message always produces the same bytes —
// which is what lets docs/SERVING.md carry a worked hexdump that a
// golden test pins byte-for-byte.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "parsec/backend.h"
#include "serve/parse_service.h"
#include "util/bitset.h"

namespace parsec::net {

/// "PARC" on the wire, in transmission order.
inline constexpr std::uint8_t kMagic[4] = {0x50, 0x41, 0x52, 0x43};
/// Current wire version.  v2 added the 64-bit idempotency key to both
/// payloads (and redefined deadline_ms as the *remaining* budget, which
/// the router decrements across retry attempts).  Decoders accept
/// kMinWireVersion..kWireVersion; v1 payloads simply lack the key
/// fields and decode with key 0.  Encoders always emit kWireVersion.
inline constexpr std::uint8_t kWireVersion = 2;
inline constexpr std::uint8_t kMinWireVersion = 1;
inline constexpr std::size_t kHeaderSize = 10;
/// Upper bound on one frame's payload; anything larger is rejected
/// before allocation.  The u16 word-count field caps a request at
/// 65535 words, which fits comfortably: 65535 five-letter words frame
/// in under 460 KiB of this 1 MiB budget.
inline constexpr std::uint32_t kMaxPayload = 1u << 20;

enum class FrameType : std::uint8_t {
  ParseRequest = 1,   // client -> server
  ParseResponse = 2,  // server -> client
  Ping = 3,           // health probe (empty payload)
  Pong = 4,           // health reply (empty payload)
};

/// Request flags (bitfield).
inline constexpr std::uint8_t kFlagCaptureDomains = 0x01;

/// Response bits (bitfield).
inline constexpr std::uint8_t kBitAccepted = 0x01;
inline constexpr std::uint8_t kBitCached = 0x02;
inline constexpr std::uint8_t kBitCoalesced = 0x04;
inline constexpr std::uint8_t kBitDegraded = 0x08;
/// v2: the router fired a hedge for this request (straggler suspicion).
inline constexpr std::uint8_t kBitHedged = 0x10;
/// v2: the hedge leg (not the primary) produced this response.
inline constexpr std::uint8_t kBitHedgeWon = 0x20;

/// Shard byte value meaning "no shard id stamped".
inline constexpr std::uint8_t kShardUnset = 0xff;

/// One parse request as it crosses the wire.  Words travel raw (the
/// server tags them with the resolved grammar's lexicon, exactly like
/// an in-process ParseRequest::words submission), so wire results are
/// bit-identical to in-process ones by construction.
struct WireRequest {
  std::string grammar;  // tenant name; empty = server default
  engine::Backend backend = engine::Backend::Serial;
  /// Remaining deadline budget in ms (0 = none).  v2 semantics: each
  /// hop that retries decrements this by the time the failed attempt
  /// consumed, so a request cannot outlive its original budget by
  /// being bounced between shards.
  std::uint32_t deadline_ms = 0;
  /// v2: client-chosen retry identity (0 = none).  A shard treats the
  /// key as a single-flight handle in its result cache: a retransmit
  /// of an already-answered (or still-executing) request is served
  /// from — or coalesced onto — the original execution instead of
  /// parsing twice.
  std::uint64_t idempotency_key = 0;
  std::uint8_t flags = 0;  // kFlagCaptureDomains
  std::vector<std::string> words;
};

/// One parse response as it crosses the wire (the wire projection of
/// serve::ParseResponse plus the answering shard's id).
struct WireResponse {
  serve::RequestStatus status = serve::RequestStatus::Ok;
  engine::Backend served_backend = engine::Backend::Serial;
  bool accepted = false;
  bool cached = false;
  bool coalesced = false;
  bool degraded = false;
  /// Shard that parsed the request (kShardUnset when the server was
  /// started without --shard-id); loadgen's per-shard skew comes from
  /// this byte surviving the trip through the router untouched.
  std::uint8_t shard = kShardUnset;
  /// v2: echo of the request's idempotency key (0 when the request
  /// carried none).  Clients detect stream desync / duplicated replies
  /// by matching this against the key they sent.
  std::uint64_t idempotency_key = 0;
  /// v2: router hedging verdict for this request (never set by shards).
  bool hedged = false;
  bool hedge_won = false;
  std::uint64_t grammar_epoch = 0;
  std::uint64_t domains_hash = 0;
  std::uint32_t alive_role_values = 0;
  std::uint32_t latency_us = 0;  // server-side queue + parse
  std::string error;
  std::vector<util::DynBitset> domains;  // iff kFlagCaptureDomains
};

/// Why a decode failed.  Ok means the bytes parsed completely.
enum class DecodeStatus : std::uint8_t {
  Ok,
  BadMagic,    // header does not start with "PARC"
  BadVersion,  // version byte outside [kMinWireVersion, kWireVersion]
  BadType,     // unknown FrameType
  Oversized,   // payload length > kMaxPayload
  Truncated,   // fewer bytes than the header/payload promises
  Malformed,   // payload structure inconsistent (length fields lie,
               // enum values out of range, trailing garbage)
};

const char* to_string(DecodeStatus s);

/// Parsed frame header.
struct FrameHeader {
  FrameType type = FrameType::ParseRequest;
  /// Negotiated frame version; payload decoders need it to know which
  /// fields the peer actually sent.
  std::uint8_t version = kWireVersion;
  std::uint32_t payload_len = 0;
};

// ---- encoding ------------------------------------------------------------
//
// Encoders fail fast instead of silently truncating: a message that
// cannot be framed honestly (a string over 65535 bytes, more than
// 65535 words/domains, or a payload past kMaxPayload) returns false
// with `out` rolled back to its original size, and no bytes reach the
// wire.  Emitting a frame whose length fields disagree with its
// contents would only move the failure to the peer, which rejects the
// frame and drops the connection.

/// Appends a complete frame (header + payload) for `req` to `out`.
/// False (and `out` unchanged) when `req` exceeds the wire limits.
bool encode_request(const WireRequest& req, std::vector<std::uint8_t>& out);

/// Appends a complete frame (header + payload) for `resp` to `out`.
/// False (and `out` unchanged) when `resp` exceeds the wire limits.
bool encode_response(const WireResponse& resp, std::vector<std::uint8_t>& out);

/// Appends an empty-payload control frame (Ping / Pong) to `out`.
void encode_control(FrameType type, std::vector<std::uint8_t>& out);

// ---- decoding ------------------------------------------------------------

/// Decodes the 10-byte header at `buf` (`n` bytes available).
DecodeStatus decode_header(const std::uint8_t* buf, std::size_t n,
                           FrameHeader& out);

/// Decodes a ParseRequest payload (exactly `n` bytes; trailing bytes
/// are Malformed).  `version` is the frame header's version byte; v1
/// payloads lack the idempotency key (decoded as 0).
DecodeStatus decode_request(const std::uint8_t* buf, std::size_t n,
                            WireRequest& out,
                            std::uint8_t version = kWireVersion);

/// Decodes a ParseResponse payload.  v1 payloads lack the idempotency
/// key echo (decoded as 0).
DecodeStatus decode_response(const std::uint8_t* buf, std::size_t n,
                             WireResponse& out,
                             std::uint8_t version = kWireVersion);

/// Projects a serve::ParseResponse onto the wire shape.  `shard` is the
/// serving process's --shard-id (-1 = unset).
WireResponse to_wire(const serve::ParseResponse& resp, int shard);

/// FNV-1a over the request's routing identity: the tenant name alone
/// (RouteBy::Tenant) or tenant + words (RouteBy::Sentence).  The router
/// and the tests share this so routing is reproducible.
std::uint64_t route_hash(const WireRequest& req, bool include_words);

}  // namespace parsec::net
