#include "net/supervisor.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <stdexcept>

#include "net/client.h"
#include "obs/trace.h"

namespace parsec::net {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::string describe_exit(int wstatus) {
  if (WIFEXITED(wstatus))
    return "exited with status " + std::to_string(WEXITSTATUS(wstatus));
  if (WIFSIGNALED(wstatus))
    return "killed by signal " + std::to_string(WTERMSIG(wstatus));
  return "stopped with wstatus " + std::to_string(wstatus);
}

}  // namespace

const char* to_string(ShardState s) {
  switch (s) {
    case ShardState::Starting: return "starting";
    case ShardState::Up: return "up";
    case ShardState::Backoff: return "backoff";
    case ShardState::Down: return "down";
  }
  return "?";
}

Supervisor::Supervisor(Options opt) : opt_(std::move(opt)) {
  if (opt_.serverd_path.empty())
    throw std::runtime_error("Supervisor: serverd_path is required");
  if (opt_.shards < 1)
    throw std::runtime_error("Supervisor: need at least one shard");
  if (opt_.restart_budget < 0) opt_.restart_budget = 0;
  if (opt_.hang_pings < 1) opt_.hang_pings = 1;

  obs::Registry& reg = *opt_.metrics;
  m_hang_kills_ =
      &reg.counter("parsec_fleet_hang_kills_total",
                   "Shards SIGKILLed after consecutive failed pings");
  shards_.resize(static_cast<std::size_t>(opt_.shards));
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      Shard& sh = shards_[i];
      sh.port = port_for(static_cast<int>(i));
      const std::string label = std::to_string(i);
      sh.m_restarts = &reg.counter(
          "parsec_fleet_restarts_total",
          "Shard respawns after a crash or hang, by shard index",
          {{"shard", label}});
      sh.m_up = &reg.gauge("parsec_fleet_shard_up",
                           "1 when the shard answers pings, else 0",
                           {{"shard", label}});
      sh.m_generation = &reg.gauge(
          "parsec_fleet_shard_generation",
          "Spawn generation (1 = initial start; bumps on restart)",
          {{"shard", label}});
      sh.m_uptime = &reg.gauge(
          "parsec_fleet_shard_uptime_seconds",
          "Seconds since the shard's last successful spawn",
          {{"shard", label}});
      if (!spawn(i)) {
        // fork failed at startup: schedule a retry like any crash.
        sh.state = ShardState::Backoff;
        sh.next_start =
            std::chrono::steady_clock::now() + backoff_for(sh);
      }
    }
  }
  monitor_ = std::thread([this] { monitor_loop(); });
}

Supervisor::~Supervisor() { stop(); }

void Supervisor::logline(const std::string& line) const {
  if (opt_.log) opt_.log(line);
}

bool Supervisor::spawn(std::size_t i) {
  Shard& sh = shards_[i];
  std::vector<std::string> args;
  args.push_back(opt_.serverd_path);
  args.push_back("--port");
  args.push_back(std::to_string(sh.port));
  args.push_back("--shard-id");
  args.push_back(std::to_string(i));
  for (const auto& a : opt_.shard_args) args.push_back(a);

  const bool is_restart = sh.generation > 0;
  obs::Span span("supervisor.restart", "net");
  const pid_t pid = ::fork();
  if (pid < 0) {
    logline("shard " + std::to_string(i) + ": fork failed");
    return false;
  }
  if (pid == 0) {
    // Child: exec the shard.  argv pointers into `args` are fine —
    // execv either replaces the image or we _exit immediately.
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (auto& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(opt_.serverd_path.c_str(), argv.data());
    _exit(127);  // exec failed; parent reaps status 127
  }
  sh.pid = pid;
  sh.state = ShardState::Starting;
  sh.generation += 1;
  sh.ping_fails = 0;
  sh.started_at = std::chrono::steady_clock::now();
  sh.last_ping = sh.started_at;
  sh.m_generation->set(static_cast<double>(sh.generation));
  sh.m_up->set(0.0);
  span.arg("shard", static_cast<std::int64_t>(i));
  span.arg("generation", static_cast<std::int64_t>(sh.generation));
  span.arg("restart", static_cast<std::int64_t>(is_restart ? 1 : 0));
  logline("shard " + std::to_string(i) + ": spawned pid " +
          std::to_string(pid) + " on port " + std::to_string(sh.port) +
          " (generation " + std::to_string(sh.generation) + ")");
  return true;
}

std::chrono::milliseconds Supervisor::backoff_for(const Shard& sh) const {
  const int k = static_cast<int>(std::min<std::uint64_t>(
      sh.restarts, 10));  // cap the shift, the max cap does the rest
  std::chrono::milliseconds b = opt_.backoff_base * (1 << k);
  b = std::min(b, opt_.backoff_max);
  const double jitter =
      0.5 + static_cast<double>(
                splitmix64(opt_.backoff_seed ^
                           (static_cast<std::uint64_t>(sh.port) << 20) ^
                           sh.restarts) %
                1024) /
                1024.0;
  return std::chrono::milliseconds(static_cast<long long>(
      static_cast<double>(b.count()) * jitter));
}

void Supervisor::handle_exit(std::size_t i, int wstatus) {
  Shard& sh = shards_[i];
  sh.pid = -1;
  sh.m_up->set(0.0);
  if (static_cast<int>(sh.restarts) >= opt_.restart_budget) {
    sh.state = ShardState::Down;
    sh.perm_down = true;
    logline("shard " + std::to_string(i) + ": " +
            describe_exit(wstatus) + "; restart budget (" +
            std::to_string(opt_.restart_budget) +
            ") exhausted -- permanently down");
    return;
  }
  sh.state = ShardState::Backoff;
  const auto delay = backoff_for(sh);
  sh.next_start = std::chrono::steady_clock::now() + delay;
  logline("shard " + std::to_string(i) + ": " + describe_exit(wstatus) +
          "; restart " + std::to_string(sh.restarts + 1) + "/" +
          std::to_string(opt_.restart_budget) + " in " +
          std::to_string(delay.count()) + "ms");
}

void Supervisor::monitor_loop() {
  struct Probe {
    std::size_t i;
    pid_t pid;
    std::uint16_t port;
  };
  while (!stop_.load(std::memory_order_acquire)) {
    const auto now = std::chrono::steady_clock::now();
    std::vector<Probe> probes;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (std::size_t i = 0; i < shards_.size(); ++i) {
        Shard& sh = shards_[i];
        switch (sh.state) {
          case ShardState::Down:
            break;
          case ShardState::Backoff:
            if (now >= sh.next_start) {
              sh.restarts += 1;
              sh.m_restarts->inc();
              restarts_total_.fetch_add(1, std::memory_order_relaxed);
              if (!spawn(i)) {
                sh.state = ShardState::Backoff;
                sh.next_start = now + backoff_for(sh);
              }
            }
            break;
          case ShardState::Starting:
          case ShardState::Up: {
            int wstatus = 0;
            const pid_t r = ::waitpid(sh.pid, &wstatus, WNOHANG);
            if (r == sh.pid) {
              handle_exit(i, wstatus);
              break;
            }
            sh.m_uptime->set(
                std::chrono::duration<double>(now - sh.started_at)
                    .count());
            if (now - sh.last_ping >= opt_.ping_interval) {
              sh.last_ping = now;
              probes.push_back({i, sh.pid, sh.port});
            }
            break;
          }
        }
      }
    }
    // Probe outside the lock: a hung shard costs ping_timeout_ms per
    // probe and must not stall stats() or the other shards' reaping.
    for (const Probe& p : probes) {
      std::string err;
      bool ok = false;
      auto leg = Client::connect(opt_.host, p.port, &err);
      if (leg) ok = leg->ping(opt_.ping_timeout_ms, &err);
      std::lock_guard<std::mutex> lock(mutex_);
      Shard& sh = shards_[p.i];
      // The shard may have exited or been respawned while we probed.
      if (sh.pid != p.pid ||
          (sh.state != ShardState::Starting && sh.state != ShardState::Up))
        continue;
      if (ok) {
        if (sh.state == ShardState::Starting)
          logline("shard " + std::to_string(p.i) + ": up (pid " +
                  std::to_string(sh.pid) + ", generation " +
                  std::to_string(sh.generation) + ")");
        sh.state = ShardState::Up;
        sh.ping_fails = 0;
        sh.m_up->set(1.0);
        continue;
      }
      const auto since_start =
          std::chrono::steady_clock::now() - sh.started_at;
      if (sh.state == ShardState::Starting &&
          since_start < std::chrono::milliseconds(opt_.startup_grace_ms))
        continue;  // still booting; failures don't count yet
      sh.ping_fails += 1;
      if (sh.ping_fails >= opt_.hang_pings) {
        logline("shard " + std::to_string(p.i) + ": hung (" +
                std::to_string(sh.ping_fails) +
                " failed pings); killing pid " + std::to_string(sh.pid));
        hang_kills_.fetch_add(1, std::memory_order_relaxed);
        m_hang_kills_->inc();
        ::kill(sh.pid, SIGKILL);
        sh.ping_fails = 0;
        // waitpid reaps the kill next tick and routes it through the
        // normal crash-restart path.
      }
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(opt_.poll_interval_ms));
  }
}

void Supervisor::stop() {
  std::call_once(stop_once_, [this] {
    stop_.store(true, std::memory_order_release);
    if (monitor_.joinable()) monitor_.join();
    std::lock_guard<std::mutex> lock(mutex_);
    for (Shard& sh : shards_)
      if (sh.pid > 0) ::kill(sh.pid, SIGTERM);
    // Drain grace: parse_serverd finishes in-flight requests on
    // SIGTERM; give the fleet a bounded window before escalating.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    for (Shard& sh : shards_) {
      while (sh.pid > 0) {
        int wstatus = 0;
        const pid_t r = ::waitpid(sh.pid, &wstatus, WNOHANG);
        if (r == sh.pid) {
          sh.pid = -1;
          break;
        }
        if (std::chrono::steady_clock::now() >= deadline) {
          ::kill(sh.pid, SIGKILL);
          ::waitpid(sh.pid, &wstatus, 0);
          sh.pid = -1;
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      sh.state = ShardState::Down;
      sh.m_up->set(0.0);
    }
  });
}

Supervisor::Stats Supervisor::stats() const {
  Stats s;
  s.restarts = restarts_total_.load(std::memory_order_relaxed);
  s.hang_kills = hang_kills_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto now = std::chrono::steady_clock::now();
  for (const Shard& sh : shards_) {
    ShardStats ss;
    ss.state = sh.state;
    ss.pid = sh.pid;
    ss.port = sh.port;
    ss.generation = sh.generation;
    ss.restarts = sh.restarts;
    ss.uptime_seconds =
        sh.pid > 0
            ? std::chrono::duration<double>(now - sh.started_at).count()
            : 0.0;
    if (sh.perm_down) s.permanently_down += 1;
    s.shards.push_back(ss);
  }
  return s;
}

pid_t Supervisor::pid_of(int i) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shards_[static_cast<std::size_t>(i)].pid;
}

bool Supervisor::wait_all_up(int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  for (;;) {
    bool all_up = true;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      for (const Shard& sh : shards_)
        if (sh.state != ShardState::Up) all_up = false;
    }
    if (all_up) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

}  // namespace parsec::net
