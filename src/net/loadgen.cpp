// loadgen: open-loop wire-protocol load generator (docs/SERVING.md).
//
//   loadgen --connect HOST:PORT [--requests N] [--qps Q]
//           [--connections C] [--lo L] [--hi H] [--seed S]
//           [--grammar NAME] [--backend NAME] [--deadline-ms D]
//           [--timeout-ms T] [--domains] [--ref-check]
//           [--allow-errors] [--json PATH] [--chaos-out PATH]
//
// Replays a deterministic English corpus (SentenceGenerator, lengths
// cycling L..H) against a server or router.  With --qps the schedule is
// OPEN-LOOP: request i's send time is start + i/qps regardless of how
// fast responses come back, and latency is measured from the
// *scheduled* send time — a stalled server surfaces as queueing delay
// instead of silently slowing the offered load (coordinated-omission
// correction).  --qps 0 (default) is closed-loop: each connection sends
// as fast as responses return.
//
// --ref-check parses the same corpus in-process with the serial
// reference parser and requires every Ok response's domains_hash to
// match — the fleet-level bit-identity gate.  Exit status: 0 when every
// request succeeded (and every hash matched), 1 otherwise;
// --allow-errors downgrades transport/status failures (but never hash
// mismatches) to reporting.
//
// --json writes BENCH_fleet.json: goodput, latency percentiles, error
// mix, per-shard request counts and skew (max/mean over shards seen).
//
// Fault-tolerance accounting (docs/ROBUSTNESS.md): every request is
// stamped with a deterministic idempotency key and the response's key
// echo is verified — an echo mismatch means the reply stream desynced
// (a duplicated or crossed response) and is counted as a duplicate.
// --timeout-ms bounds each request so a killed/hung shard surfaces as
// a "timeout" outcome instead of wedging a worker forever.  Responses
// answered by a hedge (router-stamped hedged/hedge_won bits) are
// tallied.  --chaos-out writes a fleet-resilience JSON section that
// splits the run into three equal windows by request index
// (before/during/after the injected fault) with goodput and latency
// percentiles per window — scripts/run_fleet_chaos.sh merges it into
// BENCH_resilience.json and gates on failed/duplicates/mismatches.
#include <algorithm>
#include <array>
#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cdg/parser.h"
#include "grammars/english_grammar.h"
#include "grammars/sentence_gen.h"
#include "net/client.h"
#include "parsec/backend.h"
#include "util/stats.h"

namespace {

using namespace parsec;

struct Config {
  std::string host;
  std::uint16_t port = 0;
  int requests = 200;
  double qps = 0.0;  // 0 = closed loop
  int connections = 4;
  int lo = 6, hi = 14;
  std::uint64_t seed = 19920801;
  std::string grammar = "english";
  engine::Backend backend = engine::Backend::Maspar;
  std::uint32_t deadline_ms = 0;
  int timeout_ms = 0;  // 0 = wait forever
  bool domains = false;
  bool ref_check = false;
  bool allow_errors = false;
  std::string json_path;
  std::string chaos_path;
};

struct Outcome {
  int idx = 0;                 // request index (phase bucketing)
  double latency_ms = 0.0;
  double done_s = 0.0;         // completion offset from run start
  int shard = -1;              // response shard byte (-1 = unset)
  std::string status;          // RequestStatus name or "transport"
  bool ok = false;
  bool hash_mismatch = false;
  bool duplicate = false;      // idempotency-key echo mismatch
  bool hedged = false;
  bool hedge_won = false;
};

/// splitmix64: deterministic per-request idempotency keys (seeded, so
/// reruns stamp identical keys and chaos runs replay).
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

int usage() {
  std::cerr << "usage: loadgen --connect HOST:PORT [--requests N]"
               " [--qps Q] [--connections C] [--lo L] [--hi H]"
               " [--seed S] [--grammar NAME] [--backend NAME]"
               " [--deadline-ms D] [--timeout-ms T] [--domains]"
               " [--ref-check] [--allow-errors] [--json PATH]"
               " [--chaos-out PATH]\n";
  return 2;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  bool have_target = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw std::invalid_argument("missing value");
        return argv[++i];
      };
      if (arg == "--connect") {
        if (!net::parse_addr(next(), cfg.host, cfg.port)) {
          std::cerr << "loadgen: bad --connect address\n";
          return 2;
        }
        have_target = true;
      } else if (arg == "--requests")
        cfg.requests = std::stoi(next());
      else if (arg == "--qps")
        cfg.qps = std::stod(next());
      else if (arg == "--connections")
        cfg.connections = std::stoi(next());
      else if (arg == "--lo")
        cfg.lo = std::stoi(next());
      else if (arg == "--hi")
        cfg.hi = std::stoi(next());
      else if (arg == "--seed")
        cfg.seed = std::stoull(next());
      else if (arg == "--grammar")
        cfg.grammar = next();
      else if (arg == "--backend") {
        auto b = engine::backend_from_name(next());
        if (!b) {
          std::cerr << "loadgen: unknown backend\n";
          return 2;
        }
        cfg.backend = *b;
      } else if (arg == "--deadline-ms")
        cfg.deadline_ms = static_cast<std::uint32_t>(std::stoul(next()));
      else if (arg == "--timeout-ms")
        cfg.timeout_ms = std::stoi(next());
      else if (arg == "--domains")
        cfg.domains = true;
      else if (arg == "--ref-check")
        cfg.ref_check = true;
      else if (arg == "--allow-errors")
        cfg.allow_errors = true;
      else if (arg == "--json")
        cfg.json_path = next();
      else if (arg == "--chaos-out")
        cfg.chaos_path = next();
      else
        return usage();
    }
  } catch (const std::exception&) {
    return usage();
  }
  if (!have_target || cfg.requests <= 0 || cfg.connections <= 0 ||
      cfg.lo < 2 || cfg.hi < cfg.lo)
    return usage();

  // Deterministic corpus: the same (--seed, --lo, --hi, --requests)
  // always replays the same sentences, so runs are comparable and the
  // ref-check is exact.
  auto bundle = grammars::make_english_grammar();
  grammars::SentenceGenerator gen(bundle, cfg.seed);
  std::vector<std::vector<std::string>> corpus;
  corpus.reserve(static_cast<std::size_t>(cfg.requests));
  for (int i = 0; i < cfg.requests; ++i)
    corpus.push_back(gen.generate(cfg.lo + i % (cfg.hi - cfg.lo + 1)));

  std::vector<std::uint64_t> reference;
  if (cfg.ref_check) {
    cdg::SequentialParser seq(bundle.grammar);
    reference.reserve(corpus.size());
    for (const auto& words : corpus) {
      cdg::Network net = seq.make_network(bundle.lexicon.tag(words));
      seq.parse(net);
      std::vector<util::DynBitset> domains;
      for (int r = 0; r < net.num_roles(); ++r)
        domains.emplace_back(net.domain(r));
      reference.push_back(engine::hash_domains(domains));
    }
  }

  const int nconn = std::min(cfg.connections, cfg.requests);
  std::vector<std::vector<Outcome>> per_worker(
      static_cast<std::size_t>(nconn));
  std::vector<std::thread> workers;
  const auto start = std::chrono::steady_clock::now();

  for (int w = 0; w < nconn; ++w) {
    workers.emplace_back([&, w] {
      auto& out = per_worker[static_cast<std::size_t>(w)];
      std::string err;
      std::optional<net::Client> client =
          net::Client::connect(cfg.host, cfg.port, &err);
      // Requests are striped round-robin so every worker's schedule
      // interleaves across the whole run.
      for (int i = w; i < cfg.requests; i += nconn) {
        if (cfg.qps > 0.0) {
          const auto sched =
              start + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(
                              static_cast<double>(i) / cfg.qps));
          std::this_thread::sleep_until(sched);
        }
        // Latency clock starts at the scheduled time: if the previous
        // request overran its slot, the overrun is charged here.
        const auto t0 = std::chrono::steady_clock::now();
        const auto sched_t0 =
            cfg.qps > 0.0
                ? start + std::chrono::duration_cast<
                              std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(
                                  static_cast<double>(i) / cfg.qps))
                : t0;

        Outcome o;
        o.idx = i;
        if (!client || !client->valid()) {
          client = net::Client::connect(cfg.host, cfg.port, &err);
          if (!client) {
            o.status = "transport";
            o.done_s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
            out.push_back(o);
            continue;
          }
        }
        net::WireRequest req;
        req.grammar = cfg.grammar;
        req.backend = cfg.backend;
        req.deadline_ms = cfg.deadline_ms;
        req.flags = cfg.domains ? net::kFlagCaptureDomains : 0;
        req.words = corpus[static_cast<std::size_t>(i)];
        // Deterministic, never-zero key: retries (ours or the
        // router's) of request i always present the same identity.
        req.idempotency_key =
            splitmix64(cfg.seed ^ static_cast<std::uint64_t>(i) ^
                       0x1d0a1d0aull) | 1;

        net::WireResponse resp;
        if (!client->request(req, resp, &err,
                             cfg.timeout_ms > 0 ? cfg.timeout_ms : -1)) {
          o.status = err == "timeout" ? "timeout" : "transport";
          o.done_s = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - start)
                         .count();
          client.reset();  // reconnect on the next request
          out.push_back(o);
          continue;
        }
        const auto t1 = std::chrono::steady_clock::now();
        o.latency_ms =
            std::chrono::duration<double, std::milli>(t1 - sched_t0).count();
        o.done_s = std::chrono::duration<double>(t1 - start).count();
        o.status = serve::to_string(resp.status);
        o.ok = resp.status == serve::RequestStatus::Ok;
        o.shard =
            resp.shard == net::kShardUnset ? -1 : static_cast<int>(resp.shard);
        o.hedged = resp.hedged;
        o.hedge_won = resp.hedge_won;
        // A v2 responder echoes the key; 0 means a v1 peer (no echo).
        // Any OTHER value is a crossed or duplicated reply — the
        // response stream desynced from the request stream.
        if (resp.idempotency_key != 0 &&
            resp.idempotency_key != req.idempotency_key)
          o.duplicate = true;
        if (o.ok && cfg.ref_check &&
            resp.domains_hash != reference[static_cast<std::size_t>(i)])
          o.hash_mismatch = true;
        out.push_back(o);
      }
    });
  }
  for (auto& t : workers) t.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  // Aggregate.
  util::Quantiles lat;
  std::map<std::string, std::uint64_t> error_mix;
  std::map<int, std::uint64_t> per_shard;
  std::uint64_t ok = 0, transport = 0, mismatches = 0;
  std::uint64_t duplicates = 0, hedges = 0, hedge_wins = 0;
  for (const auto& outs : per_worker) {
    for (const auto& o : outs) {
      if (o.ok) {
        ++ok;
        lat.add(o.latency_ms);
      } else if (o.status == "transport") {
        ++transport;
        ++error_mix[o.status];
      } else {
        ++error_mix[o.status];
      }
      if (o.shard >= 0) ++per_shard[o.shard];
      if (o.hash_mismatch) ++mismatches;
      if (o.duplicate) ++duplicates;
      if (o.hedged) ++hedges;
      if (o.hedge_won) ++hedge_wins;
    }
  }
  const std::uint64_t failed =
      static_cast<std::uint64_t>(cfg.requests) - ok;

  // Per-shard skew: max/mean of request counts over the shards seen.
  double skew = 0.0;
  if (!per_shard.empty()) {
    std::uint64_t total = 0, mx = 0;
    for (const auto& [shard, n] : per_shard) {
      total += n;
      mx = std::max(mx, n);
    }
    skew = static_cast<double>(mx) * static_cast<double>(per_shard.size()) /
           static_cast<double>(total);
  }

  std::cout << "loadgen: " << ok << "/" << cfg.requests << " ok in " << wall
            << "s (goodput " << (wall > 0 ? static_cast<double>(ok) / wall : 0)
            << " req/s); p50 " << lat.p50() << " ms, p95 " << lat.p95()
            << " ms, p99 " << lat.p99() << " ms\n";
  for (const auto& [status, n] : error_mix)
    std::cout << "  " << status << ": " << n << "\n";
  if (!per_shard.empty()) {
    std::cout << "  per-shard:";
    for (const auto& [shard, n] : per_shard)
      std::cout << " s" << shard << "=" << n;
    std::cout << " (skew " << skew << ")\n";
  }
  if (hedges > 0)
    std::cout << "  hedges: " << hedges << " fired, " << hedge_wins
              << " won\n";
  if (duplicates > 0)
    std::cout << "  DUPLICATES (key-echo mismatches): " << duplicates
              << "\n";
  if (cfg.ref_check)
    std::cout << "  ref-check: " << mismatches << " mismatches\n";

  if (!cfg.json_path.empty()) {
    std::ofstream j(cfg.json_path);
    j << "{\n"
      << "  \"bench\": \"fleet\",\n"
      << "  \"target\": \"" << json_escape(cfg.host) << ":" << cfg.port
      << "\",\n"
      << "  \"requests\": " << cfg.requests << ",\n"
      << "  \"connections\": " << nconn << ",\n"
      << "  \"qps_target\": " << cfg.qps << ",\n"
      << "  \"open_loop\": " << (cfg.qps > 0.0 ? "true" : "false") << ",\n"
      << "  \"wall_seconds\": " << wall << ",\n"
      << "  \"ok\": " << ok << ",\n"
      << "  \"failed\": " << failed << ",\n"
      << "  \"goodput_rps\": "
      << (wall > 0 ? static_cast<double>(ok) / wall : 0) << ",\n"
      << "  \"latency_ms\": {\"p50\": " << lat.p50()
      << ", \"p95\": " << lat.p95() << ", \"p99\": " << lat.p99()
      << ", \"count\": " << lat.count() << "},\n";
    j << "  \"error_mix\": {";
    bool first = true;
    for (const auto& [status, n] : error_mix) {
      j << (first ? "" : ", ") << "\"" << json_escape(status) << "\": " << n;
      first = false;
    }
    j << "},\n";
    j << "  \"per_shard\": {";
    first = true;
    for (const auto& [shard, n] : per_shard) {
      j << (first ? "" : ", ") << "\"" << shard << "\": " << n;
      first = false;
    }
    j << "},\n";
    j << "  \"shard_skew\": " << skew << ",\n"
      << "  \"duplicates\": " << duplicates << ",\n"
      << "  \"hedges\": {\"fired\": " << hedges << ", \"won\": "
      << hedge_wins << "},\n"
      << "  \"ref_check\": " << (cfg.ref_check ? "true" : "false") << ",\n"
      << "  \"ref_mismatches\": " << mismatches << "\n"
      << "}\n";
  }

  // Fleet-resilience section: three equal windows by request index.
  // Under an open-loop schedule the middle window is where the chaos
  // script injects its fault, so before/during/after goodput and tail
  // latency read straight off the windows.
  if (!cfg.chaos_path.empty()) {
    struct Phase {
      util::Quantiles lat;
      std::uint64_t ok = 0, total = 0;
      double first_s = 1e300, last_s = 0.0;
    };
    std::array<Phase, 3> phases;
    const int third = std::max(1, cfg.requests / 3);
    for (const auto& outs : per_worker) {
      for (const auto& o : outs) {
        const int p = std::min(o.idx / third, 2);
        Phase& ph = phases[static_cast<std::size_t>(p)];
        ++ph.total;
        if (o.ok) {
          ++ph.ok;
          ph.lat.add(o.latency_ms);
        }
        ph.first_s = std::min(ph.first_s, o.done_s);
        ph.last_s = std::max(ph.last_s, o.done_s);
      }
    }
    std::ofstream c(cfg.chaos_path);
    c << "{\n"
      << "  \"bench\": \"fleet_resilience\",\n"
      << "  \"target\": \"" << json_escape(cfg.host) << ":" << cfg.port
      << "\",\n"
      << "  \"requests\": " << cfg.requests << ",\n"
      << "  \"qps_target\": " << cfg.qps << ",\n"
      << "  \"ok\": " << ok << ",\n"
      << "  \"failed\": " << failed << ",\n"
      << "  \"duplicates\": " << duplicates << ",\n"
      << "  \"ref_mismatches\": " << mismatches << ",\n"
      << "  \"hedges\": {\"fired\": " << hedges << ", \"won\": "
      << hedge_wins << ", \"win_rate\": "
      << (hedges > 0 ? static_cast<double>(hedge_wins) /
                           static_cast<double>(hedges)
                     : 0.0)
      << "},\n"
      << "  \"phases\": {\n";
    const char* names[3] = {"before", "during", "after"};
    for (int p = 0; p < 3; ++p) {
      const Phase& ph = phases[static_cast<std::size_t>(p)];
      const double span = ph.total > 0 && ph.last_s > ph.first_s
                              ? ph.last_s - ph.first_s
                              : 0.0;
      c << "    \"" << names[p] << "\": {\"total\": " << ph.total
        << ", \"ok\": " << ph.ok << ", \"failed\": "
        << (ph.total - ph.ok) << ", \"goodput_rps\": "
        << (span > 0 ? static_cast<double>(ph.ok) / span : 0.0)
        << ", \"p50_ms\": " << ph.lat.p50() << ", \"p99_ms\": "
        << ph.lat.p99() << "}" << (p < 2 ? "," : "") << "\n";
    }
    c << "  }\n}\n";
  }

  if (mismatches > 0) return 1;  // bit-identity failures are never ok
  if (failed > 0 && !cfg.allow_errors) return 1;
  return 0;
}
