// loadgen: open-loop wire-protocol load generator (docs/SERVING.md).
//
//   loadgen --connect HOST:PORT [--requests N] [--qps Q]
//           [--connections C] [--lo L] [--hi H] [--seed S]
//           [--grammar NAME] [--backend NAME] [--deadline-ms D]
//           [--domains] [--ref-check] [--allow-errors] [--json PATH]
//
// Replays a deterministic English corpus (SentenceGenerator, lengths
// cycling L..H) against a server or router.  With --qps the schedule is
// OPEN-LOOP: request i's send time is start + i/qps regardless of how
// fast responses come back, and latency is measured from the
// *scheduled* send time — a stalled server surfaces as queueing delay
// instead of silently slowing the offered load (coordinated-omission
// correction).  --qps 0 (default) is closed-loop: each connection sends
// as fast as responses return.
//
// --ref-check parses the same corpus in-process with the serial
// reference parser and requires every Ok response's domains_hash to
// match — the fleet-level bit-identity gate.  Exit status: 0 when every
// request succeeded (and every hash matched), 1 otherwise;
// --allow-errors downgrades transport/status failures (but never hash
// mismatches) to reporting.
//
// --json writes BENCH_fleet.json: goodput, latency percentiles, error
// mix, per-shard request counts and skew (max/mean over shards seen).
#include <algorithm>
#include <array>
#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cdg/parser.h"
#include "grammars/english_grammar.h"
#include "grammars/sentence_gen.h"
#include "net/client.h"
#include "parsec/backend.h"
#include "util/stats.h"

namespace {

using namespace parsec;

struct Config {
  std::string host;
  std::uint16_t port = 0;
  int requests = 200;
  double qps = 0.0;  // 0 = closed loop
  int connections = 4;
  int lo = 6, hi = 14;
  std::uint64_t seed = 19920801;
  std::string grammar = "english";
  engine::Backend backend = engine::Backend::Maspar;
  std::uint32_t deadline_ms = 0;
  bool domains = false;
  bool ref_check = false;
  bool allow_errors = false;
  std::string json_path;
};

struct Outcome {
  double latency_ms = 0.0;
  int shard = -1;              // response shard byte (-1 = unset)
  std::string status;          // RequestStatus name or "transport"
  bool ok = false;
  bool hash_mismatch = false;
};

int usage() {
  std::cerr << "usage: loadgen --connect HOST:PORT [--requests N]"
               " [--qps Q] [--connections C] [--lo L] [--hi H]"
               " [--seed S] [--grammar NAME] [--backend NAME]"
               " [--deadline-ms D] [--domains] [--ref-check]"
               " [--allow-errors] [--json PATH]\n";
  return 2;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  bool have_target = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw std::invalid_argument("missing value");
        return argv[++i];
      };
      if (arg == "--connect") {
        if (!net::parse_addr(next(), cfg.host, cfg.port)) {
          std::cerr << "loadgen: bad --connect address\n";
          return 2;
        }
        have_target = true;
      } else if (arg == "--requests")
        cfg.requests = std::stoi(next());
      else if (arg == "--qps")
        cfg.qps = std::stod(next());
      else if (arg == "--connections")
        cfg.connections = std::stoi(next());
      else if (arg == "--lo")
        cfg.lo = std::stoi(next());
      else if (arg == "--hi")
        cfg.hi = std::stoi(next());
      else if (arg == "--seed")
        cfg.seed = std::stoull(next());
      else if (arg == "--grammar")
        cfg.grammar = next();
      else if (arg == "--backend") {
        auto b = engine::backend_from_name(next());
        if (!b) {
          std::cerr << "loadgen: unknown backend\n";
          return 2;
        }
        cfg.backend = *b;
      } else if (arg == "--deadline-ms")
        cfg.deadline_ms = static_cast<std::uint32_t>(std::stoul(next()));
      else if (arg == "--domains")
        cfg.domains = true;
      else if (arg == "--ref-check")
        cfg.ref_check = true;
      else if (arg == "--allow-errors")
        cfg.allow_errors = true;
      else if (arg == "--json")
        cfg.json_path = next();
      else
        return usage();
    }
  } catch (const std::exception&) {
    return usage();
  }
  if (!have_target || cfg.requests <= 0 || cfg.connections <= 0 ||
      cfg.lo < 2 || cfg.hi < cfg.lo)
    return usage();

  // Deterministic corpus: the same (--seed, --lo, --hi, --requests)
  // always replays the same sentences, so runs are comparable and the
  // ref-check is exact.
  auto bundle = grammars::make_english_grammar();
  grammars::SentenceGenerator gen(bundle, cfg.seed);
  std::vector<std::vector<std::string>> corpus;
  corpus.reserve(static_cast<std::size_t>(cfg.requests));
  for (int i = 0; i < cfg.requests; ++i)
    corpus.push_back(gen.generate(cfg.lo + i % (cfg.hi - cfg.lo + 1)));

  std::vector<std::uint64_t> reference;
  if (cfg.ref_check) {
    cdg::SequentialParser seq(bundle.grammar);
    reference.reserve(corpus.size());
    for (const auto& words : corpus) {
      cdg::Network net = seq.make_network(bundle.lexicon.tag(words));
      seq.parse(net);
      std::vector<util::DynBitset> domains;
      for (int r = 0; r < net.num_roles(); ++r)
        domains.emplace_back(net.domain(r));
      reference.push_back(engine::hash_domains(domains));
    }
  }

  const int nconn = std::min(cfg.connections, cfg.requests);
  std::vector<std::vector<Outcome>> per_worker(
      static_cast<std::size_t>(nconn));
  std::vector<std::thread> workers;
  const auto start = std::chrono::steady_clock::now();

  for (int w = 0; w < nconn; ++w) {
    workers.emplace_back([&, w] {
      auto& out = per_worker[static_cast<std::size_t>(w)];
      std::string err;
      std::optional<net::Client> client =
          net::Client::connect(cfg.host, cfg.port, &err);
      // Requests are striped round-robin so every worker's schedule
      // interleaves across the whole run.
      for (int i = w; i < cfg.requests; i += nconn) {
        if (cfg.qps > 0.0) {
          const auto sched =
              start + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(
                              static_cast<double>(i) / cfg.qps));
          std::this_thread::sleep_until(sched);
        }
        // Latency clock starts at the scheduled time: if the previous
        // request overran its slot, the overrun is charged here.
        const auto t0 = std::chrono::steady_clock::now();
        const auto sched_t0 =
            cfg.qps > 0.0
                ? start + std::chrono::duration_cast<
                              std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(
                                  static_cast<double>(i) / cfg.qps))
                : t0;

        Outcome o;
        if (!client || !client->valid()) {
          client = net::Client::connect(cfg.host, cfg.port, &err);
          if (!client) {
            o.status = "transport";
            out.push_back(o);
            continue;
          }
        }
        net::WireRequest req;
        req.grammar = cfg.grammar;
        req.backend = cfg.backend;
        req.deadline_ms = cfg.deadline_ms;
        req.flags = cfg.domains ? net::kFlagCaptureDomains : 0;
        req.words = corpus[static_cast<std::size_t>(i)];

        net::WireResponse resp;
        if (!client->request(req, resp, &err)) {
          o.status = "transport";
          client.reset();  // reconnect on the next request
          out.push_back(o);
          continue;
        }
        const auto t1 = std::chrono::steady_clock::now();
        o.latency_ms =
            std::chrono::duration<double, std::milli>(t1 - sched_t0).count();
        o.status = serve::to_string(resp.status);
        o.ok = resp.status == serve::RequestStatus::Ok;
        o.shard =
            resp.shard == net::kShardUnset ? -1 : static_cast<int>(resp.shard);
        if (o.ok && cfg.ref_check &&
            resp.domains_hash != reference[static_cast<std::size_t>(i)])
          o.hash_mismatch = true;
        out.push_back(o);
      }
    });
  }
  for (auto& t : workers) t.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  // Aggregate.
  util::Quantiles lat;
  std::map<std::string, std::uint64_t> error_mix;
  std::map<int, std::uint64_t> per_shard;
  std::uint64_t ok = 0, transport = 0, mismatches = 0;
  for (const auto& outs : per_worker) {
    for (const auto& o : outs) {
      if (o.ok) {
        ++ok;
        lat.add(o.latency_ms);
      } else if (o.status == "transport") {
        ++transport;
        ++error_mix[o.status];
      } else {
        ++error_mix[o.status];
      }
      if (o.shard >= 0) ++per_shard[o.shard];
      if (o.hash_mismatch) ++mismatches;
    }
  }
  const std::uint64_t failed =
      static_cast<std::uint64_t>(cfg.requests) - ok;

  // Per-shard skew: max/mean of request counts over the shards seen.
  double skew = 0.0;
  if (!per_shard.empty()) {
    std::uint64_t total = 0, mx = 0;
    for (const auto& [shard, n] : per_shard) {
      total += n;
      mx = std::max(mx, n);
    }
    skew = static_cast<double>(mx) * static_cast<double>(per_shard.size()) /
           static_cast<double>(total);
  }

  std::cout << "loadgen: " << ok << "/" << cfg.requests << " ok in " << wall
            << "s (goodput " << (wall > 0 ? static_cast<double>(ok) / wall : 0)
            << " req/s); p50 " << lat.p50() << " ms, p95 " << lat.p95()
            << " ms, p99 " << lat.p99() << " ms\n";
  for (const auto& [status, n] : error_mix)
    std::cout << "  " << status << ": " << n << "\n";
  if (!per_shard.empty()) {
    std::cout << "  per-shard:";
    for (const auto& [shard, n] : per_shard)
      std::cout << " s" << shard << "=" << n;
    std::cout << " (skew " << skew << ")\n";
  }
  if (cfg.ref_check)
    std::cout << "  ref-check: " << mismatches << " mismatches\n";

  if (!cfg.json_path.empty()) {
    std::ofstream j(cfg.json_path);
    j << "{\n"
      << "  \"bench\": \"fleet\",\n"
      << "  \"target\": \"" << json_escape(cfg.host) << ":" << cfg.port
      << "\",\n"
      << "  \"requests\": " << cfg.requests << ",\n"
      << "  \"connections\": " << nconn << ",\n"
      << "  \"qps_target\": " << cfg.qps << ",\n"
      << "  \"open_loop\": " << (cfg.qps > 0.0 ? "true" : "false") << ",\n"
      << "  \"wall_seconds\": " << wall << ",\n"
      << "  \"ok\": " << ok << ",\n"
      << "  \"failed\": " << failed << ",\n"
      << "  \"goodput_rps\": "
      << (wall > 0 ? static_cast<double>(ok) / wall : 0) << ",\n"
      << "  \"latency_ms\": {\"p50\": " << lat.p50()
      << ", \"p95\": " << lat.p95() << ", \"p99\": " << lat.p99()
      << ", \"count\": " << lat.count() << "},\n";
    j << "  \"error_mix\": {";
    bool first = true;
    for (const auto& [status, n] : error_mix) {
      j << (first ? "" : ", ") << "\"" << json_escape(status) << "\": " << n;
      first = false;
    }
    j << "},\n";
    j << "  \"per_shard\": {";
    first = true;
    for (const auto& [shard, n] : per_shard) {
      j << (first ? "" : ", ") << "\"" << shard << "\": " << n;
      first = false;
    }
    j << "},\n";
    j << "  \"shard_skew\": " << skew << ",\n"
      << "  \"ref_check\": " << (cfg.ref_check ? "true" : "false") << ",\n"
      << "  \"ref_mismatches\": " << mismatches << "\n"
      << "}\n";
  }

  if (mismatches > 0) return 1;  // bit-identity failures are never ok
  if (failed > 0 && !cfg.allow_errors) return 1;
  return 0;
}
