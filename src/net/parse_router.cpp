// parse_router: fleet front door — hashes wire requests across N
// parse_serverd shards with health probes and failover
// (docs/SERVING.md).
//
//   parse_router --shard HOST:PORT [--shard HOST:PORT]... [--port P]
//                [--route-by tenant|sentence] [--probe-interval-ms N]
//                [--max-attempts N] [--attempt-timeout-ms N]
//                [--backoff-base-ms N] [--backoff-max-ms N]
//                [--hedge-ms N] [--hedge-min-ms N]
//                [--trace-out PATH] [--metrics-out PATH]
//
// Retry knobs map onto ParseRouter::Options (net/router.h):
// --max-attempts bounds forwards per request, --hedge-ms < 0 disables
// hedging, 0 derives the hedge delay from the p99 of recent forwards,
// > 0 fixes it in milliseconds.
//
// Prints "listening on 127.0.0.1:<port>" once ready (parsed by
// scripts/run_fleet.sh).  SIGTERM/SIGINT drain: stop accepting, finish
// in-flight forwards, flush artifacts, exit 0.
#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/router.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

int usage() {
  std::cerr << "usage: parse_router --shard HOST:PORT [--shard HOST:PORT]..."
               " [--port P] [--route-by tenant|sentence]"
               " [--probe-interval-ms N] [--max-attempts N]"
               " [--attempt-timeout-ms N] [--backoff-base-ms N]"
               " [--backoff-max-ms N] [--hedge-ms N] [--hedge-min-ms N]"
               " [--trace-out PATH] [--metrics-out PATH]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace parsec;

  std::vector<net::ShardAddr> shards;
  net::ParseRouter::Options opt;
  std::string trace_path, metrics_path;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw std::invalid_argument("missing value");
        return argv[++i];
      };
      if (arg == "--shard") {
        net::ShardAddr addr;
        if (!net::parse_addr(next(), addr.host, addr.port)) {
          std::cerr << "parse_router: bad --shard address\n";
          return 2;
        }
        shards.push_back(std::move(addr));
      } else if (arg == "--port")
        opt.port = static_cast<std::uint16_t>(std::stoi(next()));
      else if (arg == "--route-by") {
        const std::string by = next();
        if (by == "tenant")
          opt.route_by = net::RouteBy::Tenant;
        else if (by == "sentence")
          opt.route_by = net::RouteBy::Sentence;
        else
          return usage();
      } else if (arg == "--probe-interval-ms")
        opt.probe_interval = std::chrono::milliseconds(std::stoi(next()));
      else if (arg == "--max-attempts")
        opt.max_attempts = std::stoi(next());
      else if (arg == "--attempt-timeout-ms")
        opt.attempt_timeout_ms = std::stoi(next());
      else if (arg == "--backoff-base-ms")
        opt.retry_backoff_base = std::chrono::milliseconds(std::stoi(next()));
      else if (arg == "--backoff-max-ms")
        opt.retry_backoff_max = std::chrono::milliseconds(std::stoi(next()));
      else if (arg == "--hedge-ms")
        opt.hedge_delay_ms = std::stoi(next());
      else if (arg == "--hedge-min-ms")
        opt.hedge_min_delay_ms = std::stoi(next());
      else if (arg == "--trace-out")
        trace_path = next();
      else if (arg == "--metrics-out")
        metrics_path = next();
      else
        return usage();
    }
  } catch (const std::exception&) {
    return usage();
  }
  if (shards.empty()) return usage();

  std::optional<obs::TraceSession> session;
  if (!trace_path.empty()) session.emplace();

  std::unique_ptr<net::ParseRouter> router;
  try {
    router = std::make_unique<net::ParseRouter>(std::move(shards), opt);
  } catch (const std::exception& e) {
    std::cerr << "parse_router: " << e.what() << "\n";
    return 1;
  }

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::cout << "listening on 127.0.0.1:" << router->port() << std::endl;

  while (!g_stop)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::cout << "draining" << std::endl;
  router->drain();
  const auto stats = router->stats();

  if (!metrics_path.empty()) {
    std::ofstream m(metrics_path);
    m << obs::Registry::global().scrape();
  }
  if (session) {
    std::ofstream t(trace_path);
    session->write_chrome_trace(t);
  }

  std::cout << "routed " << stats.forwarded << "/" << stats.requests
            << " requests (" << stats.failovers << " failovers, "
            << stats.retries << " retries, " << stats.hedges << " hedges ("
            << stats.hedge_wins << " won), " << stats.unroutable
            << " unroutable, " << stats.deadline_exhausted
            << " deadline-exhausted); per-shard:";
  for (std::size_t i = 0; i < stats.per_shard.size(); ++i)
    std::cout << " " << stats.per_shard[i];
  std::cout << std::endl;
  return 0;
}
