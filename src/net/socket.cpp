#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "resil/fault_plan.h"

namespace parsec::net {

namespace {

std::string errno_str(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

Socket& Socket::operator=(Socket&& o) noexcept {
  if (this != &o) {
    close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Socket tcp_listen(std::uint16_t port, int backlog, std::string* err) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) {
    if (err) *err = errno_str("socket");
    return {};
  }
  const int one = 1;
  ::setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(s.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (err) *err = errno_str("bind");
    return {};
  }
  if (::listen(s.fd(), backlog) != 0) {
    if (err) *err = errno_str("listen");
    return {};
  }
  return s;
}

std::uint16_t local_port(const Socket& listener) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(listener.fd(), reinterpret_cast<sockaddr*>(&addr), &len) !=
      0)
    return 0;
  return ntohs(addr.sin_port);
}

Socket tcp_connect(const std::string& host, std::uint16_t port,
                   std::string* err) {
  Socket s(::socket(AF_INET, SOCK_STREAM, 0));
  if (!s.valid()) {
    if (err) *err = errno_str("socket");
    return {};
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (err) *err = "bad host '" + host + "'";
    return {};
  }
  if (::connect(s.fd(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (err) *err = errno_str("connect");
    return {};
  }
  const int one = 1;
  ::setsockopt(s.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return s;
}

bool poll_readable(const Socket& s, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = s.fd();
  pfd.events = POLLIN;
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR) return false;
  }
}

Socket tcp_accept(const Socket& listener, std::string* err) {
  for (;;) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      Socket s(fd);
      if (resil::should_fire("net.accept")) {
        // Injected accept-time failure: the connection is dropped on
        // the floor, as if the peer (or a dying NIC) vanished between
        // SYN and first byte.  The peer sees an immediate close.
        if (err) *err = "injected";
        return {};
      }
      const int one = 1;
      ::setsockopt(s.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return s;
    }
    if (errno == EINTR) continue;
    if (err) *err = errno_str("accept");
    return {};
  }
}

bool read_full(Socket& s, std::uint8_t* buf, std::size_t n, std::string* err) {
  if (resil::should_fire("net.read")) {
    // Injected mid-frame death: the connection is torn down before the
    // bytes arrive.  Closing (instead of merely failing) makes the
    // failure symmetric — the peer's next write fails too.
    s.close();
    if (err) *err = "injected short read";
    return false;
  }
  std::size_t got = 0;
  while (got < n) {
    const ssize_t rc = ::recv(s.fd(), buf + got, n - got, 0);
    if (rc > 0) {
      got += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc == 0) {
      if (err) *err = got == 0 ? "eof" : "eof mid-frame";
      return false;
    }
    if (errno == EINTR) continue;
    if (err) *err = errno_str("recv");
    return false;
  }
  return true;
}

bool read_full_deadline(Socket& s, std::uint8_t* buf, std::size_t n,
                        int timeout_ms, std::string* err) {
  if (timeout_ms < 0) return read_full(s, buf, n, err);
  if (resil::should_fire("net.read")) {
    s.close();
    if (err) *err = "injected short read";
    return false;
  }
  using clock = std::chrono::steady_clock;
  const auto deadline = clock::now() + std::chrono::milliseconds(timeout_ms);
  std::size_t got = 0;
  while (got < n) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - clock::now());
    if (remaining.count() <= 0 ||
        !poll_readable(s, static_cast<int>(remaining.count()))) {
      // Expired: close rather than leave a half-read frame in the
      // stream — a reply arriving after we give up would pair with the
      // WRONG future request.
      s.close();
      if (err) *err = "timeout";
      return false;
    }
    const ssize_t rc = ::recv(s.fd(), buf + got, n - got, 0);
    if (rc > 0) {
      got += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc == 0) {
      if (err) *err = got == 0 ? "eof" : "eof mid-frame";
      return false;
    }
    if (errno == EINTR) continue;
    if (err) *err = errno_str("recv");
    return false;
  }
  return true;
}

bool write_full(Socket& s, const std::uint8_t* buf, std::size_t n,
                std::string* err) {
  std::size_t sent = 0;
  while (sent < n) {
    const ssize_t rc = ::send(s.fd(), buf + sent, n - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<std::size_t>(rc);
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    if (err) *err = errno_str("send");
    return false;
  }
  return true;
}

bool read_frame(Socket& s, Frame& out, DecodeStatus* status,
                std::string* err, int timeout_ms) {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  std::uint8_t header[kHeaderSize];
  if (!read_full_deadline(s, header, kHeaderSize, timeout_ms, err)) {
    if (status) *status = DecodeStatus::Truncated;
    return false;
  }
  const DecodeStatus hs = decode_header(header, kHeaderSize, out.header);
  if (hs != DecodeStatus::Ok) {
    if (status) *status = hs;
    if (err) *err = to_string(hs);
    return false;
  }
  // The deadline covers the whole frame: the payload gets whatever the
  // header read left of the budget (clamped at 0 so a slow header still
  // yields "timeout", not a forever-block).
  int payload_budget = timeout_ms;
  if (timeout_ms >= 0) {
    const auto spent = std::chrono::duration_cast<std::chrono::milliseconds>(
        clock::now() - t0);
    payload_budget = static_cast<int>(
        std::max<long long>(0, timeout_ms - spent.count()));
  }
  out.payload.resize(out.header.payload_len);
  if (out.header.payload_len > 0 &&
      !read_full_deadline(s, out.payload.data(), out.payload.size(),
                          payload_budget, err)) {
    if (status) *status = DecodeStatus::Truncated;
    return false;
  }
  if (status) *status = DecodeStatus::Ok;
  return true;
}

bool write_frame(Socket& s, const std::vector<std::uint8_t>& bytes,
                 std::string* err) {
  return write_full(s, bytes.data(), bytes.size(), err);
}

}  // namespace parsec::net
