#include "net/wire.h"

#include <algorithm>
#include <cstring>

namespace parsec::net {

namespace {

// Little-endian primitive writers.  The wire format is explicitly LE
// regardless of host order; these spell the byte shuffles out instead
// of memcpy-ing host memory.
void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

/// Fails (returns false, appends nothing) when `s` exceeds the u16
/// length field instead of emitting a self-inconsistent frame.
bool put_str16(std::vector<std::uint8_t>& out, const std::string& s) {
  if (s.size() > 0xffff) return false;
  put_u16(out, static_cast<std::uint16_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
  return true;
}

/// Bounds-checked little-endian reader over a payload.  Every get_*
/// fails (returns false) instead of reading past `end`.
struct Reader {
  const std::uint8_t* p;
  const std::uint8_t* end;

  std::size_t remaining() const { return static_cast<std::size_t>(end - p); }

  bool get_u8(std::uint8_t& v) {
    if (remaining() < 1) return false;
    v = *p++;
    return true;
  }
  bool get_u16(std::uint16_t& v) {
    if (remaining() < 2) return false;
    v = static_cast<std::uint16_t>(p[0] | (p[1] << 8));
    p += 2;
    return true;
  }
  bool get_u32(std::uint32_t& v) {
    if (remaining() < 4) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    p += 4;
    return true;
  }
  bool get_u64(std::uint64_t& v) {
    if (remaining() < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    p += 8;
    return true;
  }
  bool get_str16(std::string& s) {
    std::uint16_t len = 0;
    if (!get_u16(len) || remaining() < len) return false;
    s.assign(reinterpret_cast<const char*>(p), len);
    p += len;
    return true;
  }
};

void put_header(std::vector<std::uint8_t>& out, FrameType type,
                std::uint32_t payload_len) {
  out.insert(out.end(), kMagic, kMagic + 4);
  put_u8(out, kWireVersion);
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u32(out, payload_len);
}

/// Patches the payload-length field of the header that starts at
/// `header_at`, once the payload has been appended after it.  Fails
/// when the payload outgrew kMaxPayload — the peer would reject the
/// frame as Oversized, so refusing to emit it is strictly better.
bool patch_len(std::vector<std::uint8_t>& out, std::size_t header_at) {
  const std::size_t payload_len = out.size() - header_at - kHeaderSize;
  if (payload_len > kMaxPayload) return false;
  for (int i = 0; i < 4; ++i)
    out[header_at + 6 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(payload_len >> (8 * i));
  return true;
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* b = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= b[i];
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

const char* to_string(DecodeStatus s) {
  switch (s) {
    case DecodeStatus::Ok:
      return "ok";
    case DecodeStatus::BadMagic:
      return "bad_magic";
    case DecodeStatus::BadVersion:
      return "bad_version";
    case DecodeStatus::BadType:
      return "bad_type";
    case DecodeStatus::Oversized:
      return "oversized";
    case DecodeStatus::Truncated:
      return "truncated";
    case DecodeStatus::Malformed:
      return "malformed";
  }
  return "unknown";
}

// Both encoders fail fast — `out` is rolled back to its original size
// and false returned — rather than emit a frame whose length fields
// disagree with its contents (which the peer would reject and answer
// by dropping the connection).
bool encode_request(const WireRequest& req, std::vector<std::uint8_t>& out) {
  const std::size_t header_at = out.size();
  put_header(out, FrameType::ParseRequest, 0);
  put_u8(out, static_cast<std::uint8_t>(req.backend));
  put_u8(out, req.flags);
  put_u32(out, req.deadline_ms);
  put_u64(out, req.idempotency_key);  // v2
  bool ok = put_str16(out, req.grammar) && req.words.size() <= 0xffff;
  if (ok) {
    put_u16(out, static_cast<std::uint16_t>(req.words.size()));
    for (const std::string& w : req.words)
      if (!(ok = put_str16(out, w))) break;
  }
  if (!ok || !patch_len(out, header_at)) {
    out.resize(header_at);
    return false;
  }
  return true;
}

bool encode_response(const WireResponse& resp, std::vector<std::uint8_t>& out) {
  const std::size_t header_at = out.size();
  put_header(out, FrameType::ParseResponse, 0);
  put_u8(out, static_cast<std::uint8_t>(resp.status));
  put_u8(out, static_cast<std::uint8_t>(resp.served_backend));
  std::uint8_t bits = 0;
  if (resp.accepted) bits |= kBitAccepted;
  if (resp.cached) bits |= kBitCached;
  if (resp.coalesced) bits |= kBitCoalesced;
  if (resp.degraded) bits |= kBitDegraded;
  if (resp.hedged) bits |= kBitHedged;
  if (resp.hedge_won) bits |= kBitHedgeWon;
  put_u8(out, bits);
  put_u8(out, resp.shard);
  put_u64(out, resp.idempotency_key);  // v2
  put_u64(out, resp.grammar_epoch);
  put_u64(out, resp.domains_hash);
  put_u32(out, resp.alive_role_values);
  put_u32(out, resp.latency_us);
  bool ok = put_str16(out, resp.error) && resp.domains.size() <= 0xffff;
  if (ok) {
    put_u16(out, static_cast<std::uint16_t>(resp.domains.size()));
    for (const util::DynBitset& d : resp.domains) {
      if (d.size() > 0xffffffffull) {
        ok = false;
        break;
      }
      put_u32(out, static_cast<std::uint32_t>(d.size()));
      // Bit i travels as bit (i % 8) of byte (i / 8).
      std::uint8_t acc = 0;
      for (std::size_t i = 0; i < d.size(); ++i) {
        if (d.test(i)) acc |= static_cast<std::uint8_t>(1u << (i % 8));
        if (i % 8 == 7) {
          put_u8(out, acc);
          acc = 0;
        }
      }
      if (d.size() % 8 != 0) put_u8(out, acc);
    }
  }
  if (!ok || !patch_len(out, header_at)) {
    out.resize(header_at);
    return false;
  }
  return true;
}

void encode_control(FrameType type, std::vector<std::uint8_t>& out) {
  put_header(out, type, 0);
}

DecodeStatus decode_header(const std::uint8_t* buf, std::size_t n,
                           FrameHeader& out) {
  if (n < kHeaderSize) return DecodeStatus::Truncated;
  if (std::memcmp(buf, kMagic, 4) != 0) return DecodeStatus::BadMagic;
  if (buf[4] < kMinWireVersion || buf[4] > kWireVersion)
    return DecodeStatus::BadVersion;
  const std::uint8_t type = buf[5];
  if (type < static_cast<std::uint8_t>(FrameType::ParseRequest) ||
      type > static_cast<std::uint8_t>(FrameType::Pong))
    return DecodeStatus::BadType;
  std::uint32_t len = 0;
  for (int i = 0; i < 4; ++i)
    len |= static_cast<std::uint32_t>(buf[6 + i]) << (8 * i);
  if (len > kMaxPayload) return DecodeStatus::Oversized;
  out.type = static_cast<FrameType>(type);
  out.version = buf[4];
  out.payload_len = len;
  return DecodeStatus::Ok;
}

// Reader underflow is Truncated (bytes missing — a length field that
// points past the end is indistinguishable from a cut-off stream);
// Malformed is reserved for payloads whose bytes are all present but
// lie (enum out of range, trailing garbage).
DecodeStatus decode_request(const std::uint8_t* buf, std::size_t n,
                            WireRequest& out, std::uint8_t version) {
  Reader r{buf, buf + n};
  std::uint8_t backend = 0;
  if (!r.get_u8(backend) || !r.get_u8(out.flags) ||
      !r.get_u32(out.deadline_ms))
    return DecodeStatus::Truncated;
  out.idempotency_key = 0;  // v1 has no key field
  if (version >= 2 && !r.get_u64(out.idempotency_key))
    return DecodeStatus::Truncated;
  if (!r.get_str16(out.grammar)) return DecodeStatus::Truncated;
  if (backend >= engine::kNumBackends) return DecodeStatus::Malformed;
  out.backend = static_cast<engine::Backend>(backend);
  std::uint16_t words = 0;
  if (!r.get_u16(words)) return DecodeStatus::Truncated;
  out.words.clear();
  out.words.reserve(words);
  for (std::uint16_t i = 0; i < words; ++i) {
    std::string w;
    if (!r.get_str16(w)) return DecodeStatus::Truncated;
    out.words.push_back(std::move(w));
  }
  return r.remaining() == 0 ? DecodeStatus::Ok : DecodeStatus::Malformed;
}

DecodeStatus decode_response(const std::uint8_t* buf, std::size_t n,
                             WireResponse& out, std::uint8_t version) {
  Reader r{buf, buf + n};
  std::uint8_t status = 0, backend = 0, bits = 0;
  if (!r.get_u8(status) || !r.get_u8(backend) || !r.get_u8(bits) ||
      !r.get_u8(out.shard))
    return DecodeStatus::Truncated;
  if (status >= serve::kNumRequestStatuses ||
      backend >= engine::kNumBackends)
    return DecodeStatus::Malformed;
  out.status = static_cast<serve::RequestStatus>(status);
  out.served_backend = static_cast<engine::Backend>(backend);
  out.accepted = bits & kBitAccepted;
  out.cached = bits & kBitCached;
  out.coalesced = bits & kBitCoalesced;
  out.degraded = bits & kBitDegraded;
  out.hedged = bits & kBitHedged;
  out.hedge_won = bits & kBitHedgeWon;
  out.idempotency_key = 0;  // v1 has no key echo
  if (version >= 2 && !r.get_u64(out.idempotency_key))
    return DecodeStatus::Truncated;
  if (!r.get_u64(out.grammar_epoch) || !r.get_u64(out.domains_hash) ||
      !r.get_u32(out.alive_role_values) || !r.get_u32(out.latency_us) ||
      !r.get_str16(out.error))
    return DecodeStatus::Truncated;
  std::uint16_t ndomains = 0;
  if (!r.get_u16(ndomains)) return DecodeStatus::Truncated;
  out.domains.clear();
  out.domains.reserve(ndomains);
  for (std::uint16_t d = 0; d < ndomains; ++d) {
    std::uint32_t nbits = 0;
    if (!r.get_u32(nbits)) return DecodeStatus::Truncated;
    // 64-bit arithmetic: nbits near UINT32_MAX must not wrap nbytes to
    // 0 and sail past the bounds check into an out-of-bounds bit copy.
    const std::size_t nbytes = (static_cast<std::size_t>(nbits) + 7) / 8;
    if (r.remaining() < nbytes) return DecodeStatus::Truncated;
    util::DynBitset bs(nbits);
    for (std::uint32_t i = 0; i < nbits; ++i)
      if (r.p[i / 8] & (1u << (i % 8))) bs.set(i);
    r.p += nbytes;
    out.domains.push_back(std::move(bs));
  }
  return r.remaining() == 0 ? DecodeStatus::Ok : DecodeStatus::Malformed;
}

WireResponse to_wire(const serve::ParseResponse& resp, int shard) {
  WireResponse w;
  w.status = resp.status;
  w.served_backend = resp.served_backend;
  w.accepted = resp.accepted;
  w.cached = resp.cached;
  w.coalesced = resp.coalesced;
  w.degraded = resp.degraded;
  w.shard = (shard >= 0 && shard < 0xff) ? static_cast<std::uint8_t>(shard)
                                         : kShardUnset;
  w.grammar_epoch = resp.grammar_epoch;
  w.domains_hash = resp.domains_hash;
  w.alive_role_values = static_cast<std::uint32_t>(resp.alive_role_values);
  // Clamp before the double->u32 cast: an out-of-range conversion
  // (latency beyond ~71 minutes, e.g. a stuck watchdog) is UB.
  const double us = (resp.queue_seconds + resp.parse_seconds) * 1e6;
  w.latency_us =
      us > 0 ? static_cast<std::uint32_t>(std::min(us, 4294967295.0)) : 0;
  w.error = resp.error;
  w.domains = resp.domains;
  return w;
}

std::uint64_t route_hash(const WireRequest& req, bool include_words) {
  std::uint64_t h = fnv1a(kFnvOffset, req.grammar.data(), req.grammar.size());
  if (include_words) {
    for (const std::string& w : req.words) {
      h = fnv1a(h, w.data(), w.size());
      h = fnv1a(h, " ", 1);  // word boundary: {"ab","c"} != {"a","bc"}
    }
  }
  return h;
}

}  // namespace parsec::net
