// Fleet router: hashes requests across N shard servers with health
// probes and failover.
//
// The MasPar ACU/PE split, process-ified: the router owns request
// distribution (the broadcast role), the shards own the parsing.
// Routing is a pure hash of the request's identity —
//
//   RouteBy::Tenant    hash(tenant)            every tenant sticks to
//                                              one shard (cache and
//                                              scratch-pool affinity);
//   RouteBy::Sentence  hash(tenant, words)     a single hot tenant
//                                              spreads across the
//                                              fleet (the default:
//                                              this repo serves few
//                                              grammars to many users)
//
// — mapped onto the first *healthy* shard by linear probing from
// hash % N.  Health is a background prober (Ping/Pong per shard every
// probe_interval) plus inline demotion: a shard that fails a forward
// is marked down immediately and the request retries on the next
// healthy shard.  Because every shard serves the same grammars and
// every backend reaches the same fixpoint, failover changes *where* a
// request parses, never *what* it answers — the same bit-identity
// argument as the serve layer's Serial fallback (docs/ROBUSTNESS.md),
// one level up.
//
// Requests that exhaust every shard answer Faulted with a router error
// ("no healthy shard"), keeping the failure taxonomy closed.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/metrics.h"

namespace parsec::net {

struct ShardAddr {
  std::string host;
  std::uint16_t port = 0;
};

enum class RouteBy : std::uint8_t { Tenant, Sentence };

class ParseRouter {
 public:
  struct Options {
    std::uint16_t port = 0;  // 0 = ephemeral
    RouteBy route_by = RouteBy::Sentence;
    std::chrono::milliseconds probe_interval{200};
    /// Ping reply budget before a probe counts as failed.
    int probe_timeout_ms = 1000;
    std::size_t max_connections = 64;
    int poll_interval_ms = 100;
    obs::Registry* metrics = &obs::Registry::global();
  };

  struct Stats {
    std::uint64_t connections = 0;
    std::uint64_t requests = 0;
    std::uint64_t forwarded = 0;   // reached some shard
    std::uint64_t failovers = 0;   // rerouted after a shard failure
    std::uint64_t unroutable = 0;  // no healthy shard left
    std::uint64_t frame_errors = 0;
    std::vector<std::uint64_t> per_shard;  // forwards per shard index
    std::vector<bool> shard_up;
  };

  /// Binds and starts accepting + probing.  Throws std::runtime_error
  /// when the port cannot be bound.  Needs at least one shard.
  ParseRouter(std::vector<ShardAddr> shards, Options opt);
  ~ParseRouter();

  ParseRouter(const ParseRouter&) = delete;
  ParseRouter& operator=(const ParseRouter&) = delete;

  std::uint16_t port() const { return port_; }

  /// Stop accepting, finish in-flight forwards, join all threads.
  void drain();

  Stats stats() const;

  /// Shard the router would pick for `req` right now (test hook;
  /// considers current health).  -1 when no shard is healthy.
  int route(const WireRequest& req) const;

 private:
  struct Conn {
    Socket sock;
    std::thread thread;
    std::atomic<bool> done{false};
  };
  struct Shard {
    ShardAddr addr;
    std::atomic<bool> up{true};  // optimistic until a probe says no
    std::atomic<std::uint64_t> forwards{0};
    obs::Counter* m_forwards = nullptr;
    obs::Gauge* m_up = nullptr;
  };

  void accept_loop();
  void probe_loop();
  void handle_connection(Conn* conn);
  /// Forwards one decoded request over this connection's shard legs;
  /// fills `reply` with the response frame to relay.  Returns the
  /// shard index used, or -1 (reply then holds a synthesized
  /// router-error response).
  int forward(const WireRequest& req,
              std::vector<std::optional<Client>>& legs,
              std::vector<std::uint8_t>& reply);
  void reap_finished(bool join_all);

  std::vector<std::unique_ptr<Shard>> shards_;
  Options opt_;
  Socket listener_;
  std::uint16_t port_ = 0;

  std::atomic<bool> drain_{false};
  std::once_flag drain_once_;
  std::thread accept_thread_;
  std::thread probe_thread_;
  std::mutex conns_mutex_;
  std::list<std::unique_ptr<Conn>> conns_;
  std::atomic<std::size_t> active_conns_{0};

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> forwarded_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> unroutable_{0};
  std::atomic<std::uint64_t> frame_errors_{0};

  obs::Counter* m_requests_;
  obs::Counter* m_failovers_;
  obs::Counter* m_unroutable_;
};

}  // namespace parsec::net
