// Fleet router: hashes requests across N shard servers with health
// probes and failover.
//
// The MasPar ACU/PE split, process-ified: the router owns request
// distribution (the broadcast role), the shards own the parsing.
// Routing is a pure hash of the request's identity —
//
//   RouteBy::Tenant    hash(tenant)            every tenant sticks to
//                                              one shard (cache and
//                                              scratch-pool affinity);
//   RouteBy::Sentence  hash(tenant, words)     a single hot tenant
//                                              spreads across the
//                                              fleet (the default:
//                                              this repo serves few
//                                              grammars to many users)
//
// — mapped onto the first *healthy* shard by linear probing from
// hash % N.  Health is a background prober (Ping/Pong per shard every
// probe_interval) plus inline demotion: a shard that fails a forward
// is marked down immediately and the request retries on the next
// healthy shard.  Because every shard serves the same grammars and
// every backend reaches the same fixpoint, failover changes *where* a
// request parses, never *what* it answers — the same bit-identity
// argument as the serve layer's Serial fallback (docs/ROBUSTNESS.md),
// one level up.
//
// Fault tolerance (docs/ROBUSTNESS.md fleet taxonomy):
//
//   * budgeted retries — up to Options::max_attempts forwards per
//     request with capped exponential backoff + deterministic jitter
//     between them; each attempt is bounded by attempt_timeout_ms and
//     by the request's remaining deadline, which the router DECREMENTS
//     on the outgoing frame so a bounced request cannot outlive its
//     original budget.  Keyless requests get a router-stamped
//     idempotency key, so a retry after a lost response never
//     double-executes on the shard that already ran it;
//   * straggler hedging — when a primary shard stays silent past the
//     hedge delay (fixed, or auto-derived from the p99 of recent
//     forwards), the request is fired at a second healthy shard and
//     the first response wins; the loser's leg is reset (its late
//     reply would desync the stream).  Bit-identical results make the
//     duplicate execution harmless; parsec_net_hedges_total{won}
//     counts who won.
//
// Requests that exhaust every shard answer Faulted with a router error
// ("no healthy shard" / "retries exhausted"), and ones whose deadline
// ran out mid-retry answer Timeout — the failure taxonomy stays
// closed.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/metrics.h"

namespace parsec::net {

struct ShardAddr {
  std::string host;
  std::uint16_t port = 0;
};

enum class RouteBy : std::uint8_t { Tenant, Sentence };

class ParseRouter {
 public:
  struct Options {
    std::uint16_t port = 0;  // 0 = ephemeral
    RouteBy route_by = RouteBy::Sentence;
    std::chrono::milliseconds probe_interval{200};
    /// Ping reply budget before a probe counts as failed.
    int probe_timeout_ms = 1000;
    std::size_t max_connections = 64;
    int poll_interval_ms = 100;

    // ---- budgeted retry policy ----
    /// Total forward attempts per request (>= 1).  Replaces the old
    /// hardcoded one-pass-over-shards loop: each attempt targets the
    /// next healthy shard (linear probe order) with backoff between.
    int max_attempts = 4;
    /// Response budget per attempt in ms when the request carries no
    /// deadline (0 = wait forever; a hung shard then wedges the
    /// connection, so only tests use 0).  Requests WITH a deadline are
    /// bounded by min(attempt_timeout_ms, remaining deadline).
    int attempt_timeout_ms = 2000;
    /// Capped exponential backoff between attempts: attempt k sleeps
    /// base * 2^(k-1) (at most `max`), scaled by a deterministic
    /// jitter in [0.5, 1.5) seeded from retry_seed and the request key.
    std::chrono::milliseconds retry_backoff_base{5};
    std::chrono::milliseconds retry_backoff_max{100};
    /// Seed for backoff jitter and for stamping idempotency keys onto
    /// keyless requests (deterministic: same seed, same sequence).
    std::uint64_t retry_seed = 0x9e3779b97f4a7c15ull;

    // ---- straggler hedging ----
    /// Hedge delay in ms: after this long without a first byte from
    /// the primary shard, fire the request at a second healthy shard
    /// and take whichever responds first.  <0 disables hedging, 0
    /// derives the delay from the p99 of recent forward latencies
    /// (clamped to >= hedge_min_delay_ms), >0 is a fixed delay.
    int hedge_delay_ms = -1;
    /// Floor (and warm-up value) for the auto-derived hedge delay.
    int hedge_min_delay_ms = 5;

    obs::Registry* metrics = &obs::Registry::global();
  };

  struct Stats {
    std::uint64_t connections = 0;
    std::uint64_t requests = 0;
    std::uint64_t forwarded = 0;   // reached some shard
    std::uint64_t failovers = 0;   // rerouted after a shard failure
    std::uint64_t retries = 0;     // extra attempts beyond the first
    std::uint64_t unroutable = 0;  // no healthy shard left
    std::uint64_t deadline_exhausted = 0;  // budget ran out mid-retry
    std::uint64_t hedges = 0;      // hedge requests fired
    std::uint64_t hedge_wins = 0;  // hedge leg answered first
    std::uint64_t frame_errors = 0;
    std::vector<std::uint64_t> per_shard;  // forwards per shard index
    std::vector<bool> shard_up;
  };

  /// Binds and starts accepting + probing.  Throws std::runtime_error
  /// when the port cannot be bound.  Needs at least one shard.
  ParseRouter(std::vector<ShardAddr> shards, Options opt);
  ~ParseRouter();

  ParseRouter(const ParseRouter&) = delete;
  ParseRouter& operator=(const ParseRouter&) = delete;

  std::uint16_t port() const { return port_; }

  /// Stop accepting, finish in-flight forwards, join all threads.
  void drain();

  Stats stats() const;

  /// Shard the router would pick for `req` right now (test hook;
  /// considers current health).  -1 when no shard is healthy.
  int route(const WireRequest& req) const;

 private:
  struct Conn {
    Socket sock;
    std::thread thread;
    std::atomic<bool> done{false};
  };
  struct Shard {
    ShardAddr addr;
    std::atomic<bool> up{true};  // optimistic until a probe says no
    std::atomic<std::uint64_t> forwards{0};
    obs::Counter* m_forwards = nullptr;
    obs::Gauge* m_up = nullptr;
  };

  void accept_loop();
  void probe_loop();
  void handle_connection(Conn* conn);
  /// Forwards one decoded request over this connection's shard legs
  /// under the retry budget and hedge policy; fills `reply` with the
  /// response frame to relay.  Returns the shard index that answered,
  /// or -1 (reply then holds a synthesized router-error response).
  int forward(const WireRequest& req,
              std::vector<std::optional<Client>>& legs,
              std::vector<std::uint8_t>& reply);
  /// One send+receive on shard `idx`'s leg, hedging onto a second
  /// shard after `hedge_delay_ms` of silence (when enabled).  On
  /// success fills `wresp` (hedged/hedge_won stamped) and returns the
  /// answering shard; on failure returns -1 with `err` set ("timeout"
  /// means the budget expired — do not resend on the same leg).
  int attempt_once(const WireRequest& req,
                   std::vector<std::optional<Client>>& legs,
                   std::size_t idx, int budget_ms, WireResponse& wresp,
                   std::string* err);
  void demote(std::size_t idx);
  /// Picks the first healthy shard at or after probe offset `from` in
  /// linear-probe order from the hash; -1 when none is up.  `skip`
  /// (>= 0) excludes one index (the hedge must target a second shard).
  int pick_shard(std::uint64_t key, std::size_t from, int skip) const;
  /// Records a successful forward's latency and refreshes the
  /// auto-derived hedge delay.
  void note_latency(double ms);
  int hedge_delay_now() const;
  std::uint64_t next_key();
  void reap_finished(bool join_all);

  std::vector<std::unique_ptr<Shard>> shards_;
  Options opt_;
  Socket listener_;
  std::uint16_t port_ = 0;

  std::atomic<bool> drain_{false};
  std::once_flag drain_once_;
  std::thread accept_thread_;
  std::thread probe_thread_;
  std::mutex conns_mutex_;
  std::list<std::unique_ptr<Conn>> conns_;
  std::atomic<std::size_t> active_conns_{0};

  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> forwarded_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> unroutable_{0};
  std::atomic<std::uint64_t> deadline_exhausted_{0};
  std::atomic<std::uint64_t> hedges_{0};
  std::atomic<std::uint64_t> hedge_wins_{0};
  std::atomic<std::uint64_t> frame_errors_{0};

  /// Router-stamped idempotency keys for keyless requests (mixed with
  /// retry_seed so two routers don't collide on low counters).
  std::atomic<std::uint64_t> key_counter_{0};

  /// Recent forward latencies (ms) for the auto hedge delay: bounded
  /// ring under a mutex, p99 recomputed every 32 samples into
  /// hedge_auto_ms_ (read lock-free on the forward path).
  static constexpr std::size_t kLatencyRing = 512;
  mutable std::mutex latency_mutex_;
  std::vector<double> latency_ring_;
  std::size_t latency_next_ = 0;
  std::uint64_t latency_count_ = 0;
  std::atomic<int> hedge_auto_ms_{50};

  obs::Counter* m_requests_;
  obs::Counter* m_failovers_;
  obs::Counter* m_retries_;
  obs::Counter* m_unroutable_;
  obs::Counter* m_hedges_won_[2];  // {won="primary"}, {won="hedge"}
};

}  // namespace parsec::net
