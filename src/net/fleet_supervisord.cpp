// fleet_supervisord: keeps a parse_serverd fleet alive
// (docs/SERVING.md §fleet, docs/ROBUSTNESS.md fleet taxonomy).
//
//   fleet_supervisord [--shards N] [--port-base P] [--serverd PATH]
//                     [--restart-budget N] [--backoff-base-ms MS]
//                     [--backoff-max-ms MS] [--ping-interval-ms MS]
//                     [--ping-timeout-ms MS] [--hang-pings N]
//                     [--startup-grace-ms MS] [--metrics-out PATH]
//                     [-- <args passed to every parse_serverd>]
//
// Spawns N shards on ports P..P+N-1 (shard i inherits this process's
// stdout, so each shard's own "listening on 127.0.0.1:<port>" line
// appears here too), restarts crashed or hung shards under a budgeted
// backoff, and prints one "[fleet] ..." line per lifecycle event —
// scripts/run_fleet_chaos.sh greps them.  Prints exactly one
//
//     supervising <N> shards on 127.0.0.1:<P>..<P+N-1>
//
// line once every shard answers pings.  --serverd defaults to a
// parse_serverd binary next to this executable.  SIGTERM/SIGINT drain
// the fleet (SIGTERM to every shard, bounded grace, then SIGKILL) and
// exit 0.
#include <csignal>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "net/supervisor.h"
#include "obs/metrics.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

int usage() {
  std::cerr << "usage: fleet_supervisord [--shards N] [--port-base P]"
               " [--serverd PATH] [--restart-budget N]"
               " [--backoff-base-ms MS] [--backoff-max-ms MS]"
               " [--ping-interval-ms MS] [--ping-timeout-ms MS]"
               " [--hang-pings N] [--startup-grace-ms MS]"
               " [--metrics-out PATH] [-- serverd args...]\n";
  return 2;
}

std::string sibling_serverd(const char* argv0) {
  std::string self(argv0);
  const std::size_t slash = self.rfind('/');
  if (slash == std::string::npos) return "parse_serverd";
  return self.substr(0, slash + 1) + "parse_serverd";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace parsec;

  net::Supervisor::Options opt;
  opt.shards = 2;
  opt.port_base = 9300;
  opt.serverd_path = sibling_serverd(argv[0]);
  std::string metrics_path;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw std::invalid_argument("missing value");
        return argv[++i];
      };
      if (arg == "--shards")
        opt.shards = std::stoi(next());
      else if (arg == "--port-base")
        opt.port_base = static_cast<std::uint16_t>(std::stoi(next()));
      else if (arg == "--serverd")
        opt.serverd_path = next();
      else if (arg == "--restart-budget")
        opt.restart_budget = std::stoi(next());
      else if (arg == "--backoff-base-ms")
        opt.backoff_base = std::chrono::milliseconds(std::stoi(next()));
      else if (arg == "--backoff-max-ms")
        opt.backoff_max = std::chrono::milliseconds(std::stoi(next()));
      else if (arg == "--ping-interval-ms")
        opt.ping_interval = std::chrono::milliseconds(std::stoi(next()));
      else if (arg == "--ping-timeout-ms")
        opt.ping_timeout_ms = std::stoi(next());
      else if (arg == "--hang-pings")
        opt.hang_pings = std::stoi(next());
      else if (arg == "--startup-grace-ms")
        opt.startup_grace_ms = std::stoi(next());
      else if (arg == "--metrics-out")
        metrics_path = next();
      else if (arg == "--") {
        for (int j = i + 1; j < argc; ++j)
          opt.shard_args.emplace_back(argv[j]);
        break;
      } else
        return usage();
    }
  } catch (const std::exception&) {
    return usage();
  }

  opt.log = [](const std::string& line) {
    std::cout << "[fleet] " << line << std::endl;
  };

  std::unique_ptr<net::Supervisor> sup;
  try {
    sup = std::make_unique<net::Supervisor>(opt);
  } catch (const std::exception& e) {
    std::cerr << "fleet_supervisord: " << e.what() << "\n";
    return 1;
  }

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);

  if (sup->wait_all_up(/*timeout_ms=*/30000)) {
    std::cout << "supervising " << opt.shards << " shards on "
              << opt.host << ":" << opt.port_base << ".."
              << (opt.port_base + opt.shards - 1) << std::endl;
  } else {
    std::cerr << "fleet_supervisord: fleet failed to come up within 30s"
              << std::endl;
    sup->stop();
    return 1;
  }

  while (!g_stop)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::cout << "[fleet] draining" << std::endl;
  sup->stop();
  const auto stats = sup->stats();

  if (!metrics_path.empty()) {
    std::ofstream m(metrics_path);
    m << obs::Registry::global().scrape();
  }

  std::cout << "[fleet] supervised " << stats.shards.size()
            << " shards: " << stats.restarts << " restarts, "
            << stats.hang_kills << " hang kills, "
            << stats.permanently_down << " permanently down"
            << std::endl;
  return 0;
}
