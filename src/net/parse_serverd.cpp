// parse_serverd: one fleet shard — a ParseService behind the wire
// protocol (docs/SERVING.md).
//
//   parse_serverd [--port P] [--shard-id N] [--threads T]
//                 [--grammar NAME=PATH]... [--max-connections N]
//                 [--idle-timeout-ms N] [--cache] [--shed-load]
//                 [--fault-plan PATH] [--trace-out PATH]
//                 [--metrics-out PATH]
//
// --idle-timeout-ms N reaps connections silent for N ms (0 = never):
// a half-dead client (or a router leg abandoned after a hedge loss)
// stops pinning a connection slot.
//
// Binds 127.0.0.1:P (P=0 → ephemeral) and prints exactly one line
//
//     listening on 127.0.0.1:<port>
//
// to stdout once ready — scripts/run_fleet.sh parses it.  The built-in
// "english" grammar is always published; --grammar adds .cdg files on
// top.  SIGTERM/SIGINT trigger the drain contract: stop accepting,
// finish in-flight requests, then flush trace.json / metrics.prom and
// exit 0.
#include <csignal>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "grammars/english_grammar.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "resil/fault_plan.h"
#include "serve/grammar_registry.h"
#include "serve/parse_service.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

int usage() {
  std::cerr << "usage: parse_serverd [--port P] [--shard-id N]"
               " [--threads T] [--grammar NAME=PATH]..."
               " [--max-connections N] [--idle-timeout-ms N]"
               " [--cache] [--shed-load]"
               " [--fault-plan PATH] [--trace-out PATH]"
               " [--metrics-out PATH]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace parsec;

  std::uint16_t port = 0;
  int shard_id = -1;
  int threads = 0;
  std::size_t max_connections = 64;
  int idle_timeout_ms = 0;
  bool cache = false;
  bool shed_load = false;
  std::vector<std::pair<std::string, std::string>> grammar_files;
  std::string fault_plan_path, trace_path, metrics_path;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&]() -> std::string {
        if (i + 1 >= argc) throw std::invalid_argument("missing value");
        return argv[++i];
      };
      if (arg == "--port")
        port = static_cast<std::uint16_t>(std::stoi(next()));
      else if (arg == "--shard-id")
        shard_id = std::stoi(next());
      else if (arg == "--threads")
        threads = std::stoi(next());
      else if (arg == "--max-connections")
        max_connections = std::stoul(next());
      else if (arg == "--idle-timeout-ms")
        idle_timeout_ms = std::stoi(next());
      else if (arg == "--cache")
        cache = true;
      else if (arg == "--shed-load")
        shed_load = true;
      else if (arg == "--grammar") {
        const std::string spec = next();
        const std::size_t eq = spec.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 >= spec.size())
          return usage();
        grammar_files.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
      } else if (arg == "--fault-plan")
        fault_plan_path = next();
      else if (arg == "--trace-out")
        trace_path = next();
      else if (arg == "--metrics-out")
        metrics_path = next();
      else
        return usage();
    }
  } catch (const std::exception&) {
    return usage();
  }

  // Seeded chaos (docs/ROBUSTNESS.md): arms serve.* and net.* sites for
  // the whole process lifetime.
  std::optional<resil::FaultPlan> fault_plan;
  std::unique_ptr<resil::ScopedFaultPlan> fault_scope;
  if (!fault_plan_path.empty()) {
    try {
      fault_plan = resil::FaultPlan::load(fault_plan_path);
    } catch (const std::invalid_argument& e) {
      std::cerr << "parse_serverd: " << e.what() << "\n";
      return 2;
    }
    fault_scope = std::make_unique<resil::ScopedFaultPlan>(*fault_plan);
  }

  // The session must outlive every span, and every span must finish
  // before write_chrome_trace — drain() guarantees the latter.
  std::optional<obs::TraceSession> session;
  if (!trace_path.empty()) session.emplace();

  serve::GrammarRegistry registry;
  registry.publish("english", grammars::make_english_grammar());
  for (const auto& [name, path] : grammar_files) {
    try {
      registry.load_file(name, path);
    } catch (const std::exception& e) {
      std::cerr << "parse_serverd: --grammar " << name << ": " << e.what()
                << "\n";
      return 2;
    }
  }

  serve::ParseService::Options sopt;
  sopt.threads = threads;
  sopt.default_grammar = "english";
  sopt.enable_result_cache = cache;
  sopt.shed_load = shed_load;
  serve::ParseService service(registry, sopt);

  net::ParseServer::Options nopt;
  nopt.port = port;
  nopt.shard_id = shard_id;
  nopt.max_connections = max_connections;
  nopt.idle_timeout_ms = idle_timeout_ms;
  std::unique_ptr<net::ParseServer> server;
  try {
    server = std::make_unique<net::ParseServer>(service, nopt);
  } catch (const std::exception& e) {
    std::cerr << "parse_serverd: " << e.what() << "\n";
    return 1;
  }

  std::signal(SIGTERM, on_signal);
  std::signal(SIGINT, on_signal);
  std::cout << "listening on 127.0.0.1:" << server->port() << std::endl;

  while (!g_stop)
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::cout << "draining" << std::endl;
  server->drain();
  const auto stats = server->stats();
  service.shutdown();

  if (!metrics_path.empty()) {
    std::ofstream m(metrics_path);
    m << obs::Registry::global().scrape();
  }
  if (session) {
    std::ofstream t(trace_path);
    session->write_chrome_trace(t);
  }

  std::cout << "served " << stats.requests << " requests (" << stats.ok
            << " ok, " << stats.frame_errors << " frame errors, "
            << stats.injected_faults << " injected faults) over "
            << stats.connections << " connections; drain took "
            << stats.drain_seconds << "s" << std::endl;
  return 0;
}
