#include "net/server.h"

#include <cstdlib>
#include <stdexcept>

#include "obs/trace.h"
#include "resil/fault_plan.h"

namespace parsec::net {

namespace {

/// Latency buckets for parsec_net_request_seconds (sub-ms parses up to
/// multi-second deadline-bound requests).
std::vector<double> request_bounds() {
  return {0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
          0.025,  0.05,    0.1,    0.25,  0.5,    1.0,   2.5};
}

}  // namespace

ParseServer::ParseServer(serve::ParseService& service, Options opt)
    : service_(service), opt_(opt) {
  std::string err;
  listener_ = tcp_listen(opt_.port, /*backlog=*/64, &err);
  if (!listener_.valid())
    throw std::runtime_error("ParseServer: " + err);
  port_ = local_port(listener_);

  obs::Registry& reg = *opt_.metrics;
  m_connections_ = &reg.counter("parsec_net_connections_total",
                                "Accepted wire-protocol connections");
  m_connections_rejected_ =
      &reg.counter("parsec_net_connections_rejected_total",
                   "Connections closed at accept (max_connections)");
  for (std::size_t s = 0; s < serve::kNumRequestStatuses; ++s)
    m_requests_[s] = &reg.counter(
        "parsec_net_requests_total",
        "Wire requests answered, by final status",
        {{"status",
          serve::to_string(static_cast<serve::RequestStatus>(s))}});
  m_pings_ = &reg.counter("parsec_net_pings_total",
                          "Health-probe pings answered");
  m_idle_closed_ =
      &reg.counter("parsec_net_idle_closed_total",
                   "Connections reaped by the idle timeout");
  m_bytes_read_ = &reg.counter("parsec_net_bytes_read_total",
                               "Frame bytes read off connections");
  m_bytes_written_ = &reg.counter("parsec_net_bytes_written_total",
                                  "Frame bytes written to connections");
  m_active_ = &reg.gauge("parsec_net_connections_active",
                         "Currently open connections");
  m_drain_seconds_ =
      &reg.gauge("parsec_net_drain_seconds",
                 "Wall seconds the last drain took (0 = not drained)");
  m_request_seconds_ =
      &reg.histogram("parsec_net_request_seconds",
                     "Wire request latency, frame decoded to response "
                     "written (server side)",
                     request_bounds());

  accept_thread_ = std::thread([this] { accept_loop(); });
}

ParseServer::~ParseServer() { drain(); }

void ParseServer::drain() {
  std::call_once(drain_once_, [this] {
    const auto t0 = std::chrono::steady_clock::now();
    drain_.store(true, std::memory_order_release);
    if (accept_thread_.joinable()) accept_thread_.join();
    listener_.close();
    reap_finished(/*join_all=*/true);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    drain_seconds_.store(secs, std::memory_order_relaxed);
    m_drain_seconds_->set(secs);
  });
}

ParseServer::Stats ParseServer::stats() const {
  Stats s;
  s.connections = connections_.load(std::memory_order_relaxed);
  s.connections_rejected =
      connections_rejected_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.ok = ok_.load(std::memory_order_relaxed);
  s.pings = pings_.load(std::memory_order_relaxed);
  s.frame_errors = frame_errors_.load(std::memory_order_relaxed);
  s.injected_faults = injected_faults_.load(std::memory_order_relaxed);
  s.idle_closed = idle_closed_.load(std::memory_order_relaxed);
  s.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  s.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  s.drain_seconds = drain_seconds_.load(std::memory_order_relaxed);
  return s;
}

void ParseServer::reap_finished(bool join_all) {
  std::list<std::unique_ptr<Conn>> finished;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (join_all || (*it)->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& c : finished)
    if (c->thread.joinable()) c->thread.join();
}

void ParseServer::accept_loop() {
  while (!drain_.load(std::memory_order_acquire)) {
    reap_finished(/*join_all=*/false);
    if (!poll_readable(listener_, opt_.poll_interval_ms)) continue;
    std::string err;
    Socket sock = tcp_accept(listener_, &err);
    if (!sock.valid()) {
      if (err == "injected")
        injected_faults_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (active_conns_.load(std::memory_order_relaxed) >=
        opt_.max_connections) {
      connections_rejected_.fetch_add(1, std::memory_order_relaxed);
      m_connections_rejected_->inc();
      continue;  // Socket closes on scope exit: immediate refusal
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    m_connections_->inc();
    active_conns_.fetch_add(1, std::memory_order_relaxed);
    m_active_->set(
        static_cast<double>(active_conns_.load(std::memory_order_relaxed)));

    auto conn = std::make_unique<Conn>();
    conn->sock = std::move(sock);
    Conn* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      conns_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { handle_connection(raw); });
  }
}

void ParseServer::handle_connection(Conn* conn) {
  Socket& sock = conn->sock;
  int idle_ms = 0;
  while (!drain_.load(std::memory_order_acquire)) {
    if (!poll_readable(sock, opt_.poll_interval_ms)) {
      if (opt_.idle_timeout_ms > 0) {
        idle_ms += opt_.poll_interval_ms;
        if (idle_ms >= opt_.idle_timeout_ms) {
          // Reap a half-dead peer (e.g. a SIGKILLed client whose TCP
          // endpoint lingers): without this the reader thread and its
          // parsec_net_active slot leak until process exit.
          idle_closed_.fetch_add(1, std::memory_order_relaxed);
          m_idle_closed_->inc();
          break;
        }
      }
      continue;
    }
    idle_ms = 0;

    Frame frame;
    DecodeStatus status;
    std::string err;
    bool read_ok;
    {
      // The span opens only once bytes are ready, so it measures frame
      // assembly, not connection idle time.
      obs::Span read_span("net.read", "net");
      read_ok = read_frame(sock, frame, &status, &err);
      if (read_ok)
        read_span.arg("bytes", static_cast<std::int64_t>(
                                   kHeaderSize + frame.payload.size()));
    }
    if (!read_ok) {
      if (err.rfind("injected", 0) == 0)
        injected_faults_.fetch_add(1, std::memory_order_relaxed);
      else if (err != "eof")
        frame_errors_.fetch_add(1, std::memory_order_relaxed);
      if (err != "eof")
        opt_.metrics->counter("parsec_net_frame_errors_total",
                              "Connections dropped for malformed or "
                              "interrupted frames, by reason",
                              {{"reason", err.rfind("injected", 0) == 0
                                              ? "injected"
                                              : to_string(status)}})
            .inc();
      break;  // stream position unrecoverable (or orderly close)
    }
    bytes_read_.fetch_add(kHeaderSize + frame.payload.size(),
                          std::memory_order_relaxed);
    m_bytes_read_->inc(kHeaderSize + frame.payload.size());

    if (frame.header.type == FrameType::Ping) {
      pings_.fetch_add(1, std::memory_order_relaxed);
      m_pings_->inc();
      std::vector<std::uint8_t> pong;
      encode_control(FrameType::Pong, pong);
      if (!write_frame(sock, pong, &err)) break;
      bytes_written_.fetch_add(pong.size(), std::memory_order_relaxed);
      m_bytes_written_->inc(pong.size());
      continue;
    }
    if (frame.header.type != FrameType::ParseRequest) {
      frame_errors_.fetch_add(1, std::memory_order_relaxed);
      opt_.metrics->counter("parsec_net_frame_errors_total",
                            "Connections dropped for malformed or "
                            "interrupted frames, by reason",
                            {{"reason", "unexpected_type"}})
          .inc();
      break;
    }
    if (!handle_request(sock, frame.payload, frame.header.version)) break;
  }
  active_conns_.fetch_sub(1, std::memory_order_relaxed);
  m_active_->set(
      static_cast<double>(active_conns_.load(std::memory_order_relaxed)));
  conn->done.store(true, std::memory_order_release);
}

bool ParseServer::handle_request(Socket& sock,
                                 std::vector<std::uint8_t>& payload,
                                 std::uint8_t version) {
  const auto t0 = std::chrono::steady_clock::now();
  obs::Span span("net.request", "net");

  WireRequest wreq;
  const DecodeStatus ds =
      decode_request(payload.data(), payload.size(), wreq, version);
  WireResponse wresp;
  if (ds != DecodeStatus::Ok) {
    // Structured refusal, then close: the framing was intact (header
    // decoded) but the payload lies about itself, so the stream can't
    // be trusted past this frame.
    frame_errors_.fetch_add(1, std::memory_order_relaxed);
    opt_.metrics->counter("parsec_net_frame_errors_total",
                          "Connections dropped for malformed or "
                          "interrupted frames, by reason",
                          {{"reason", to_string(ds)}})
        .inc();
    wresp.status = serve::RequestStatus::BadRequest;
    wresp.idempotency_key = wreq.idempotency_key;
    wresp.shard = (opt_.shard_id >= 0 && opt_.shard_id < 0xff)
                      ? static_cast<std::uint8_t>(opt_.shard_id)
                      : kShardUnset;
    wresp.error = std::string("malformed request frame: ") + to_string(ds);
    std::vector<std::uint8_t> out;
    std::string err;
    if (encode_response(wresp, out)) write_frame(sock, out, &err);
    return false;
  }

  // Injected process death: a shard that takes a frame and then dies
  // with it, the harshest client-visible failure mode.  Only armed in
  // spawned daemons (run_fleet_chaos.sh), never in-process tests.
  if (resil::should_fire("proc.abort")) std::abort();

  serve::ParseRequest req;
  req.words = std::move(wreq.words);
  req.grammar = std::move(wreq.grammar);
  req.backend = wreq.backend;
  req.capture_domains = wreq.flags & kFlagCaptureDomains;
  req.idempotency_key = wreq.idempotency_key;
  if (wreq.deadline_ms > 0)
    req.deadline = std::chrono::milliseconds(wreq.deadline_ms);
  const std::size_t n_words = req.words.size();

  // The service is the admission-control and degradation layer: shed
  // load, tenant quotas, breaker reroutes and watchdog stalls all
  // resolve to a RequestStatus here, which crosses the wire verbatim.
  serve::ParseResponse presp = service_.submit(std::move(req)).get();
  wresp = to_wire(presp, opt_.shard_id);
  wresp.idempotency_key = req.idempotency_key;  // v2 echo

  std::vector<std::uint8_t> out;
  std::string err;
  bool write_ok;
  {
    obs::Span write_span("net.write", "net");
    if (!encode_response(wresp, out)) {
      // Response too big for one frame (a domains payload past
      // kMaxPayload): degrade to a domain-free reply so the client
      // still gets the verdict instead of a dropped connection.
      wresp.domains.clear();
      wresp.degraded = true;
      wresp.error = "response exceeded wire limits; domains dropped";
      encode_response(wresp, out);  // minimal reply always fits
    }
    if (resil::should_fire("net.frame_stall")) {
      // Injected straggler: half the frame leaves, then the shard sits
      // on the rest for `param` seconds.  The client's read deadline —
      // not patience — is what ends the wait.
      injected_faults_.fetch_add(1, std::memory_order_relaxed);
      const double stall = resil::site_param("net.frame_stall", 0.5);
      const std::size_t half = out.size() / 2;
      write_ok = write_full(sock, out.data(), half, &err);
      if (write_ok) {
        std::this_thread::sleep_for(std::chrono::duration<double>(stall));
        write_ok = write_full(sock, out.data() + half, out.size() - half,
                              &err);
      }
    } else {
      write_ok = write_frame(sock, out, &err);
    }
    if (write_ok)
      write_span.arg("bytes", static_cast<std::int64_t>(out.size()));
  }

  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (presp.status == serve::RequestStatus::Ok)
    ok_.fetch_add(1, std::memory_order_relaxed);
  m_requests_[static_cast<std::size_t>(presp.status)]->inc();
  m_request_seconds_->observe(secs);
  if (write_ok) {
    bytes_written_.fetch_add(out.size(), std::memory_order_relaxed);
    m_bytes_written_->inc(out.size());
  }
  span.arg("n", static_cast<std::int64_t>(n_words));
  span.arg("status", static_cast<std::int64_t>(presp.status));
  span.arg("latency_us", static_cast<std::int64_t>(secs * 1e6));
  return write_ok;
}

}  // namespace parsec::net
