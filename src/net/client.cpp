#include "net/client.h"

namespace parsec::net {

std::optional<Client> Client::connect(const std::string& host,
                                      std::uint16_t port, std::string* err) {
  Socket s = tcp_connect(host, port, err);
  if (!s.valid()) return std::nullopt;
  return Client(std::move(s));
}

bool Client::request(const WireRequest& req, WireResponse& resp,
                     std::string* err, int timeout_ms) {
  return send_request(req, err) && recv_response(resp, err, timeout_ms);
}

bool Client::send_request(const WireRequest& req, std::string* err) {
  buf_.clear();
  if (!encode_request(req, buf_)) {
    if (err) *err = "request exceeds wire limits";
    return false;
  }
  return write_frame(sock_, buf_, err);
}

bool Client::recv_response(WireResponse& resp, std::string* err,
                           int timeout_ms) {
  Frame frame;
  DecodeStatus status;
  if (!read_frame(sock_, frame, &status, err, timeout_ms)) return false;
  if (frame.header.type != FrameType::ParseResponse) {
    if (err) *err = "unexpected frame type";
    return false;
  }
  const DecodeStatus ds = decode_response(
      frame.payload.data(), frame.payload.size(), resp, frame.header.version);
  if (ds != DecodeStatus::Ok) {
    if (err) *err = std::string("response ") + to_string(ds);
    return false;
  }
  return true;
}

bool Client::ping(int timeout_ms, std::string* err) {
  buf_.clear();
  encode_control(FrameType::Ping, buf_);
  if (!write_frame(sock_, buf_, err)) return false;
  if (!poll_readable(sock_, timeout_ms)) {
    if (err) *err = "ping timeout";
    return false;
  }
  Frame frame;
  DecodeStatus status;
  if (!read_frame(sock_, frame, &status, err)) return false;
  if (frame.header.type != FrameType::Pong) {
    if (err) *err = "expected pong";
    return false;
  }
  return true;
}

bool parse_addr(const std::string& s, std::string& host, std::uint16_t& port) {
  const std::size_t colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= s.size())
    return false;
  host = s.substr(0, colon);
  try {
    const int p = std::stoi(s.substr(colon + 1));
    if (p <= 0 || p > 0xffff) return false;
    port = static_cast<std::uint16_t>(p);
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

}  // namespace parsec::net
