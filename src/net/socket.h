// Thin blocking-socket layer for the parse fleet (loopback TCP).
//
// Everything above this header (server, router, client) speaks frames;
// everything below it is POSIX.  Three properties matter:
//
//   * RAII ownership — a Socket closes its fd on destruction, so
//     error paths can simply return;
//   * exact-length I/O — read_full / write_full loop over partial
//     transfers and EINTR, so the frame layer never sees a short read
//     that the kernel caused (only ones a *fault plan* caused, below);
//   * injectable failure — the resil sites `net.accept` (accepted
//     connection dropped on the floor) and `net.read` (connection dies
//     mid-read, modelling a peer vanishing inside a frame) live here,
//     so chaos plans exercise the socket path the same way they
//     exercise the engines (docs/ROBUSTNESS.md site reference).
//
// Servers bind 127.0.0.1 only: the fleet is a co-located
// router-plus-shards topology, not an internet-facing endpoint.
#pragma once

#include <cstdint>
#include <string>

#include "net/wire.h"

namespace parsec::net {

/// Owning socket fd.  Movable, not copyable; invalid() after a move.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Socket& operator=(Socket&& o) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void close();

 private:
  int fd_ = -1;
};

/// Listens on 127.0.0.1:`port` (port 0 picks an ephemeral port).
/// Returns an invalid Socket and fills `err` on failure.
Socket tcp_listen(std::uint16_t port, int backlog, std::string* err);

/// The port a listener actually bound (resolves port 0).
std::uint16_t local_port(const Socket& listener);

/// Blocking connect to `host`:`port` (numeric IPv4 host, e.g.
/// "127.0.0.1").  Invalid Socket + `err` on failure.
Socket tcp_connect(const std::string& host, std::uint16_t port,
                   std::string* err);

/// Polls `s` readable for up to `timeout_ms`.  Lets accept loops and
/// connection readers wake periodically to check a drain flag instead
/// of blocking forever in accept()/recv().
bool poll_readable(const Socket& s, int timeout_ms);

/// Accepts one connection (call after poll_readable on the listener).
/// Consults the `net.accept` fault site: when it fires, the accepted
/// connection is closed immediately and an invalid Socket is returned
/// with err = "injected".
Socket tcp_accept(const Socket& listener, std::string* err);

/// Reads exactly `n` bytes.  False on EOF/error (err filled; "eof" for
/// an orderly close before any byte of this read).  Consults the
/// `net.read` fault site once per call: a fire closes the socket and
/// fails the read, modelling a peer vanishing mid-frame.
bool read_full(Socket& s, std::uint8_t* buf, std::size_t n, std::string* err);

/// read_full with a total deadline: the bytes must all arrive within
/// `timeout_ms` (-1 = no deadline, identical to read_full).  On expiry
/// the socket is CLOSED (a late reply would desync the stream) and err
/// is exactly "timeout", which callers use to tell a hung peer apart
/// from a dead one.  This is what lets a client fail over from a shard
/// that accepted a frame header and then stalled forever.
bool read_full_deadline(Socket& s, std::uint8_t* buf, std::size_t n,
                        int timeout_ms, std::string* err);

/// Writes exactly `n` bytes (MSG_NOSIGNAL; a dead peer fails the write
/// instead of raising SIGPIPE).
bool write_full(Socket& s, const std::uint8_t* buf, std::size_t n,
                std::string* err);

// ---- framed I/O ----------------------------------------------------------

/// One decoded inbound frame: the header plus its raw payload bytes
/// (request/response payloads are decoded by the caller, which knows
/// which one it expects).
struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
};

/// Reads one frame.  Returns false with `status` = the decode failure
/// (Truncated covers transport errors mid-frame; `err` carries the
/// transport detail) — the caller should close the connection on any
/// failure, since the stream position is unrecoverable.  `timeout_ms`
/// bounds the WHOLE frame (header + payload; -1 = wait forever); on
/// expiry the socket is closed and err = "timeout".
bool read_frame(Socket& s, Frame& out, DecodeStatus* status,
                std::string* err, int timeout_ms = -1);

/// Writes pre-encoded frame bytes (the encode_* output).
bool write_frame(Socket& s, const std::vector<std::uint8_t>& bytes,
                 std::string* err);

}  // namespace parsec::net
