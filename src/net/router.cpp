#include "net/router.h"

#include <stdexcept>

#include "obs/trace.h"

namespace parsec::net {

ParseRouter::ParseRouter(std::vector<ShardAddr> shards, Options opt)
    : opt_(opt) {
  if (shards.empty())
    throw std::runtime_error("ParseRouter: no shards configured");
  obs::Registry& reg = *opt_.metrics;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    auto sh = std::make_unique<Shard>();
    sh->addr = std::move(shards[i]);
    sh->m_forwards =
        &reg.counter("parsec_net_router_requests_total",
                     "Requests forwarded, by shard index",
                     {{"shard", std::to_string(i)}});
    sh->m_up = &reg.gauge("parsec_net_shard_up",
                          "1 when the shard answers probes, else 0",
                          {{"shard", std::to_string(i)}});
    sh->m_up->set(1.0);
    shards_.push_back(std::move(sh));
  }
  m_requests_ = &reg.counter("parsec_net_router_clients_total",
                             "Client requests read by the router");
  m_failovers_ =
      &reg.counter("parsec_net_router_failovers_total",
                   "Requests rerouted after a shard failure");
  m_unroutable_ =
      &reg.counter("parsec_net_router_unroutable_total",
                   "Requests refused because no shard was healthy");

  std::string err;
  listener_ = tcp_listen(opt_.port, /*backlog=*/64, &err);
  if (!listener_.valid()) throw std::runtime_error("ParseRouter: " + err);
  port_ = local_port(listener_);

  accept_thread_ = std::thread([this] { accept_loop(); });
  probe_thread_ = std::thread([this] { probe_loop(); });
}

ParseRouter::~ParseRouter() { drain(); }

void ParseRouter::drain() {
  std::call_once(drain_once_, [this] {
    drain_.store(true, std::memory_order_release);
    if (accept_thread_.joinable()) accept_thread_.join();
    if (probe_thread_.joinable()) probe_thread_.join();
    listener_.close();
    reap_finished(/*join_all=*/true);
  });
}

ParseRouter::Stats ParseRouter::stats() const {
  Stats s;
  s.connections = connections_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.forwarded = forwarded_.load(std::memory_order_relaxed);
  s.failovers = failovers_.load(std::memory_order_relaxed);
  s.unroutable = unroutable_.load(std::memory_order_relaxed);
  s.frame_errors = frame_errors_.load(std::memory_order_relaxed);
  for (const auto& sh : shards_) {
    s.per_shard.push_back(sh->forwards.load(std::memory_order_relaxed));
    s.shard_up.push_back(sh->up.load(std::memory_order_relaxed));
  }
  return s;
}

int ParseRouter::route(const WireRequest& req) const {
  const std::uint64_t key =
      route_hash(req, opt_.route_by == RouteBy::Sentence);
  const std::size_t n = shards_.size();
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t idx = (key + step) % n;
    if (shards_[idx]->up.load(std::memory_order_acquire))
      return static_cast<int>(idx);
  }
  return -1;
}

void ParseRouter::reap_finished(bool join_all) {
  std::list<std::unique_ptr<Conn>> finished;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (join_all || (*it)->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& c : finished)
    if (c->thread.joinable()) c->thread.join();
}

void ParseRouter::accept_loop() {
  while (!drain_.load(std::memory_order_acquire)) {
    reap_finished(/*join_all=*/false);
    if (!poll_readable(listener_, opt_.poll_interval_ms)) continue;
    std::string err;
    Socket sock = tcp_accept(listener_, &err);
    if (!sock.valid()) continue;
    if (active_conns_.load(std::memory_order_relaxed) >=
        opt_.max_connections)
      continue;  // refuse: Socket closes on scope exit
    connections_.fetch_add(1, std::memory_order_relaxed);
    active_conns_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_unique<Conn>();
    conn->sock = std::move(sock);
    Conn* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      conns_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { handle_connection(raw); });
  }
}

void ParseRouter::probe_loop() {
  // Persistent probe legs, one per shard, reconnected lazily after a
  // failure.  A down shard is promoted the moment it answers a Ping —
  // no cooldown: the prober *is* the half-open probe.
  std::vector<std::optional<Client>> legs(shards_.size());
  while (!drain_.load(std::memory_order_acquire)) {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      Shard& sh = *shards_[i];
      std::string err;
      if (!legs[i] || !legs[i]->valid())
        legs[i] = Client::connect(sh.addr.host, sh.addr.port, &err);
      bool up = false;
      if (legs[i] && legs[i]->valid()) {
        up = legs[i]->ping(opt_.probe_timeout_ms, &err);
        if (!up) legs[i].reset();  // reconnect next round
      }
      sh.up.store(up, std::memory_order_release);
      sh.m_up->set(up ? 1.0 : 0.0);
    }
    // Interruptible interval sleep (drain must not wait a full period).
    auto remaining = opt_.probe_interval;
    while (remaining.count() > 0 &&
           !drain_.load(std::memory_order_acquire)) {
      const auto chunk = std::min<std::chrono::milliseconds>(
          remaining, std::chrono::milliseconds(50));
      std::this_thread::sleep_for(chunk);
      remaining -= chunk;
    }
  }
}

void ParseRouter::handle_connection(Conn* conn) {
  Socket& sock = conn->sock;
  // Per-connection shard legs: lazily connected, reused across
  // requests, reconnected after a failure.
  std::vector<std::optional<Client>> legs(shards_.size());
  while (!drain_.load(std::memory_order_acquire)) {
    if (!poll_readable(sock, opt_.poll_interval_ms)) continue;
    Frame frame;
    DecodeStatus status;
    std::string err;
    if (!read_frame(sock, frame, &status, &err)) {
      if (err != "eof")
        frame_errors_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (frame.header.type == FrameType::Ping) {
      std::vector<std::uint8_t> pong;
      encode_control(FrameType::Pong, pong);
      if (!write_frame(sock, pong, &err)) break;
      continue;
    }
    if (frame.header.type != FrameType::ParseRequest) {
      frame_errors_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    requests_.fetch_add(1, std::memory_order_relaxed);
    m_requests_->inc();

    WireRequest req;
    const DecodeStatus ds =
        decode_request(frame.payload.data(), frame.payload.size(), req);
    std::vector<std::uint8_t> reply;
    if (ds != DecodeStatus::Ok) {
      frame_errors_.fetch_add(1, std::memory_order_relaxed);
      WireResponse bad;
      bad.status = serve::RequestStatus::BadRequest;
      bad.error = std::string("malformed request frame: ") + to_string(ds);
      if (encode_response(bad, reply)) write_frame(sock, reply, &err);
      break;
    }

    {
      obs::Span span("router.route", "net");
      const int shard = forward(req, legs, reply);
      span.arg("shard", static_cast<std::int64_t>(shard));
      span.arg("n", static_cast<std::int64_t>(req.words.size()));
    }
    if (!write_frame(sock, reply, &err)) break;
  }
  active_conns_.fetch_sub(1, std::memory_order_relaxed);
  conn->done.store(true, std::memory_order_release);
}

int ParseRouter::forward(const WireRequest& req,
                         std::vector<std::optional<Client>>& legs,
                         std::vector<std::uint8_t>& reply) {
  reply.clear();
  const std::uint64_t key =
      route_hash(req, opt_.route_by == RouteBy::Sentence);
  const std::size_t n = shards_.size();
  bool rerouted = false;
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t idx = (key + step) % n;
    Shard& sh = *shards_[idx];
    if (!sh.up.load(std::memory_order_acquire)) continue;
    // One reconnect attempt per shard: a stale leg (shard restarted,
    // idle timeout) should not trigger failover by itself.
    for (int attempt = 0; attempt < 2; ++attempt) {
      std::string err;
      if (!legs[idx] || !legs[idx]->valid()) {
        legs[idx] = Client::connect(sh.addr.host, sh.addr.port, &err);
        if (!legs[idx]) break;  // connect refused: shard is down
      }
      WireResponse wresp;
      if (legs[idx]->request(req, wresp, &err)) {
        sh.forwards.fetch_add(1, std::memory_order_relaxed);
        sh.m_forwards->inc();
        forwarded_.fetch_add(1, std::memory_order_relaxed);
        if (rerouted) {
          failovers_.fetch_add(1, std::memory_order_relaxed);
          m_failovers_->inc();
        }
        // A decoded response always re-encodes (every field arrived
        // within wire limits), but degrade rather than assume.
        if (!encode_response(wresp, reply)) {
          wresp.domains.clear();
          wresp.degraded = true;
          wresp.error = "router: response exceeded wire limits";
          encode_response(wresp, reply);
        }
        return static_cast<int>(idx);
      }
      legs[idx].reset();  // dead leg; maybe reconnect (attempt 2)
    }
    // Both attempts failed: demote the shard inline (the prober will
    // promote it back when it answers pings again) and fail over.
    sh.up.store(false, std::memory_order_release);
    sh.m_up->set(0.0);
    rerouted = true;
  }
  unroutable_.fetch_add(1, std::memory_order_relaxed);
  m_unroutable_->inc();
  WireResponse none;
  none.status = serve::RequestStatus::Faulted;
  none.error = "router: no healthy shard";
  encode_response(none, reply);  // minimal reply always fits
  return -1;
}

}  // namespace parsec::net
