#include "net/router.h"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <stdexcept>

#include "obs/trace.h"

namespace parsec::net {

namespace {

/// splitmix64: cheap, well-mixed 64-bit hash for deterministic jitter
/// and router-stamped idempotency keys.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

ParseRouter::ParseRouter(std::vector<ShardAddr> shards, Options opt)
    : opt_(opt) {
  if (shards.empty())
    throw std::runtime_error("ParseRouter: no shards configured");
  obs::Registry& reg = *opt_.metrics;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    auto sh = std::make_unique<Shard>();
    sh->addr = std::move(shards[i]);
    sh->m_forwards =
        &reg.counter("parsec_net_router_requests_total",
                     "Requests forwarded, by shard index",
                     {{"shard", std::to_string(i)}});
    sh->m_up = &reg.gauge("parsec_net_shard_up",
                          "1 when the shard answers probes, else 0",
                          {{"shard", std::to_string(i)}});
    sh->m_up->set(1.0);
    shards_.push_back(std::move(sh));
  }
  m_requests_ = &reg.counter("parsec_net_router_clients_total",
                             "Client requests read by the router");
  m_failovers_ =
      &reg.counter("parsec_net_router_failovers_total",
                   "Requests rerouted after a shard failure");
  m_retries_ =
      &reg.counter("parsec_net_router_retries_total",
                   "Forward attempts beyond each request's first");
  m_unroutable_ =
      &reg.counter("parsec_net_router_unroutable_total",
                   "Requests refused because no shard was healthy");
  m_hedges_won_[0] =
      &reg.counter("parsec_net_hedges_total",
                   "Hedged requests by which leg answered first",
                   {{"won", "primary"}});
  m_hedges_won_[1] =
      &reg.counter("parsec_net_hedges_total",
                   "Hedged requests by which leg answered first",
                   {{"won", "hedge"}});
  latency_ring_.assign(kLatencyRing, 0.0);
  hedge_auto_ms_.store(std::max(50, opt_.hedge_min_delay_ms),
                       std::memory_order_relaxed);
  if (opt_.max_attempts < 1) opt_.max_attempts = 1;

  std::string err;
  listener_ = tcp_listen(opt_.port, /*backlog=*/64, &err);
  if (!listener_.valid()) throw std::runtime_error("ParseRouter: " + err);
  port_ = local_port(listener_);

  accept_thread_ = std::thread([this] { accept_loop(); });
  probe_thread_ = std::thread([this] { probe_loop(); });
}

ParseRouter::~ParseRouter() { drain(); }

void ParseRouter::drain() {
  std::call_once(drain_once_, [this] {
    drain_.store(true, std::memory_order_release);
    if (accept_thread_.joinable()) accept_thread_.join();
    if (probe_thread_.joinable()) probe_thread_.join();
    listener_.close();
    reap_finished(/*join_all=*/true);
  });
}

ParseRouter::Stats ParseRouter::stats() const {
  Stats s;
  s.connections = connections_.load(std::memory_order_relaxed);
  s.requests = requests_.load(std::memory_order_relaxed);
  s.forwarded = forwarded_.load(std::memory_order_relaxed);
  s.failovers = failovers_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.unroutable = unroutable_.load(std::memory_order_relaxed);
  s.deadline_exhausted = deadline_exhausted_.load(std::memory_order_relaxed);
  s.hedges = hedges_.load(std::memory_order_relaxed);
  s.hedge_wins = hedge_wins_.load(std::memory_order_relaxed);
  s.frame_errors = frame_errors_.load(std::memory_order_relaxed);
  for (const auto& sh : shards_) {
    s.per_shard.push_back(sh->forwards.load(std::memory_order_relaxed));
    s.shard_up.push_back(sh->up.load(std::memory_order_relaxed));
  }
  return s;
}

int ParseRouter::route(const WireRequest& req) const {
  const std::uint64_t key =
      route_hash(req, opt_.route_by == RouteBy::Sentence);
  const std::size_t n = shards_.size();
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t idx = (key + step) % n;
    if (shards_[idx]->up.load(std::memory_order_acquire))
      return static_cast<int>(idx);
  }
  return -1;
}

void ParseRouter::reap_finished(bool join_all) {
  std::list<std::unique_ptr<Conn>> finished;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (join_all || (*it)->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& c : finished)
    if (c->thread.joinable()) c->thread.join();
}

void ParseRouter::accept_loop() {
  while (!drain_.load(std::memory_order_acquire)) {
    reap_finished(/*join_all=*/false);
    if (!poll_readable(listener_, opt_.poll_interval_ms)) continue;
    std::string err;
    Socket sock = tcp_accept(listener_, &err);
    if (!sock.valid()) continue;
    if (active_conns_.load(std::memory_order_relaxed) >=
        opt_.max_connections)
      continue;  // refuse: Socket closes on scope exit
    connections_.fetch_add(1, std::memory_order_relaxed);
    active_conns_.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_unique<Conn>();
    conn->sock = std::move(sock);
    Conn* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      conns_.push_back(std::move(conn));
    }
    raw->thread = std::thread([this, raw] { handle_connection(raw); });
  }
}

void ParseRouter::probe_loop() {
  // Persistent probe legs, one per shard, reconnected lazily after a
  // failure.  A down shard is promoted the moment it answers a Ping —
  // no cooldown: the prober *is* the half-open probe.
  std::vector<std::optional<Client>> legs(shards_.size());
  while (!drain_.load(std::memory_order_acquire)) {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      Shard& sh = *shards_[i];
      std::string err;
      if (!legs[i] || !legs[i]->valid())
        legs[i] = Client::connect(sh.addr.host, sh.addr.port, &err);
      bool up = false;
      if (legs[i] && legs[i]->valid()) {
        up = legs[i]->ping(opt_.probe_timeout_ms, &err);
        if (!up) legs[i].reset();  // reconnect next round
      }
      sh.up.store(up, std::memory_order_release);
      sh.m_up->set(up ? 1.0 : 0.0);
    }
    // Interruptible interval sleep (drain must not wait a full period).
    auto remaining = opt_.probe_interval;
    while (remaining.count() > 0 &&
           !drain_.load(std::memory_order_acquire)) {
      const auto chunk = std::min<std::chrono::milliseconds>(
          remaining, std::chrono::milliseconds(50));
      std::this_thread::sleep_for(chunk);
      remaining -= chunk;
    }
  }
}

void ParseRouter::handle_connection(Conn* conn) {
  Socket& sock = conn->sock;
  // Per-connection shard legs: lazily connected, reused across
  // requests, reconnected after a failure.
  std::vector<std::optional<Client>> legs(shards_.size());
  while (!drain_.load(std::memory_order_acquire)) {
    if (!poll_readable(sock, opt_.poll_interval_ms)) continue;
    Frame frame;
    DecodeStatus status;
    std::string err;
    if (!read_frame(sock, frame, &status, &err)) {
      if (err != "eof")
        frame_errors_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (frame.header.type == FrameType::Ping) {
      std::vector<std::uint8_t> pong;
      encode_control(FrameType::Pong, pong);
      if (!write_frame(sock, pong, &err)) break;
      continue;
    }
    if (frame.header.type != FrameType::ParseRequest) {
      frame_errors_.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    requests_.fetch_add(1, std::memory_order_relaxed);
    m_requests_->inc();

    WireRequest req;
    const DecodeStatus ds =
        decode_request(frame.payload.data(), frame.payload.size(), req,
                       frame.header.version);
    std::vector<std::uint8_t> reply;
    if (ds != DecodeStatus::Ok) {
      frame_errors_.fetch_add(1, std::memory_order_relaxed);
      WireResponse bad;
      bad.status = serve::RequestStatus::BadRequest;
      bad.error = std::string("malformed request frame: ") + to_string(ds);
      if (encode_response(bad, reply)) write_frame(sock, reply, &err);
      break;
    }

    {
      obs::Span span("router.route", "net");
      const int shard = forward(req, legs, reply);
      span.arg("shard", static_cast<std::int64_t>(shard));
      span.arg("n", static_cast<std::int64_t>(req.words.size()));
    }
    if (!write_frame(sock, reply, &err)) break;
  }
  active_conns_.fetch_sub(1, std::memory_order_relaxed);
  conn->done.store(true, std::memory_order_release);
}

void ParseRouter::demote(std::size_t idx) {
  Shard& sh = *shards_[idx];
  sh.up.store(false, std::memory_order_release);
  sh.m_up->set(0.0);
}

int ParseRouter::pick_shard(std::uint64_t key, std::size_t from,
                            int skip) const {
  const std::size_t n = shards_.size();
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t idx = (key + from + step) % n;
    if (skip >= 0 && idx == static_cast<std::size_t>(skip)) continue;
    if (shards_[idx]->up.load(std::memory_order_acquire))
      return static_cast<int>(idx);
  }
  return -1;
}

std::uint64_t ParseRouter::next_key() {
  // Never 0: 0 means "no key" on the wire.
  const std::uint64_t k = splitmix64(
      opt_.retry_seed ^
      key_counter_.fetch_add(1, std::memory_order_relaxed));
  return k == 0 ? 1 : k;
}

int ParseRouter::hedge_delay_now() const {
  if (opt_.hedge_delay_ms > 0) return opt_.hedge_delay_ms;
  return hedge_auto_ms_.load(std::memory_order_relaxed);
}

void ParseRouter::note_latency(double ms) {
  std::lock_guard<std::mutex> lock(latency_mutex_);
  latency_ring_[latency_next_] = ms;
  latency_next_ = (latency_next_ + 1) % kLatencyRing;
  ++latency_count_;
  if (latency_count_ % 32 != 0) return;
  // Refresh the auto hedge delay: p99 of the filled portion of the
  // ring, floored at hedge_min_delay_ms and capped so a hedge can
  // still fire inside the attempt budget.
  const std::size_t have = static_cast<std::size_t>(
      std::min<std::uint64_t>(latency_count_, kLatencyRing));
  std::vector<double> sorted(
      latency_ring_.begin(),
      latency_ring_.begin() + static_cast<std::ptrdiff_t>(have));
  const std::size_t k = std::min(
      have - 1,
      static_cast<std::size_t>(static_cast<double>(have) * 0.99));
  std::nth_element(sorted.begin(),
                   sorted.begin() + static_cast<std::ptrdiff_t>(k),
                   sorted.end());
  int p99 = static_cast<int>(sorted[k]) + 1;
  p99 = std::max(p99, opt_.hedge_min_delay_ms);
  if (opt_.attempt_timeout_ms > 0)
    p99 = std::min(p99, std::max(1, opt_.attempt_timeout_ms / 2));
  hedge_auto_ms_.store(p99, std::memory_order_relaxed);
}

int ParseRouter::attempt_once(const WireRequest& req,
                              std::vector<std::optional<Client>>& legs,
                              std::size_t idx, int budget_ms,
                              WireResponse& wresp, std::string* err) {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  const auto left = [&](int total) {
    if (total < 0) return -1;
    return std::max(0, total - static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            clock::now() - t0).count()));
  };
  if (!legs[idx]->send_request(req, err)) {
    legs[idx].reset();
    return -1;
  }
  const bool hedge_enabled =
      opt_.hedge_delay_ms >= 0 && shards_.size() > 1;
  const int hedge_delay = hedge_delay_now();
  // Hedge only when enabled AND the budget leaves room for the hedge
  // to actually fire before the attempt expires.
  if (!hedge_enabled || (budget_ms >= 0 && hedge_delay >= budget_ms)) {
    if (!legs[idx]->recv_response(wresp, err, budget_ms)) {
      legs[idx].reset();
      return -1;
    }
    return static_cast<int>(idx);
  }

  if (poll_readable(legs[idx]->socket(), hedge_delay)) {
    // Primary answered within the hedge delay: the common case.
    if (!legs[idx]->recv_response(wresp, err, left(budget_ms))) {
      legs[idx].reset();
      return -1;
    }
    return static_cast<int>(idx);
  }

  // Primary is straggling.  Fire the hedge at a second healthy shard;
  // when none is available (or its connect/send fails), fall back to
  // waiting out the primary alone.
  const std::uint64_t key =
      route_hash(req, opt_.route_by == RouteBy::Sentence);
  const int hidx = pick_shard(key, 0, static_cast<int>(idx));
  bool hedge_sent = false;
  if (hidx >= 0) {
    const std::size_t h = static_cast<std::size_t>(hidx);
    std::string herr;
    if (!legs[h] || !legs[h]->valid())
      legs[h] = Client::connect(shards_[h]->addr.host,
                                shards_[h]->addr.port, &herr);
    if (legs[h] && legs[h]->send_request(req, &herr)) {
      hedge_sent = true;
      hedges_.fetch_add(1, std::memory_order_relaxed);
    } else if (legs[h]) {
      legs[h].reset();
    }
  }
  if (!hedge_sent) {
    if (!legs[idx]->recv_response(wresp, err, left(budget_ms))) {
      legs[idx].reset();
      return -1;
    }
    return static_cast<int>(idx);
  }

  // Race the two legs; the first readable socket wins the decode.
  // The loser's leg is reset — a late reply on a reused leg would
  // pair with the wrong future request.  Duplicate execution is
  // harmless: both shards reach the same fixpoint, and the
  // idempotency key makes the duplicate visible to the service layer.
  const std::size_t h = static_cast<std::size_t>(hidx);
  for (;;) {
    const int rem = left(budget_ms);
    if (budget_ms >= 0 && rem <= 0) {
      legs[idx].reset();
      legs[h].reset();
      if (err) *err = "timeout";
      return -1;
    }
    pollfd pfds[2];
    pfds[0] = {legs[idx]->socket().fd(), POLLIN, 0};
    pfds[1] = {legs[h]->socket().fd(), POLLIN, 0};
    const int rc = ::poll(pfds, 2, rem);
    if (rc < 0) {
      if (errno == EINTR) continue;
      legs[idx].reset();
      legs[h].reset();
      if (err) *err = "poll failed";
      return -1;
    }
    if (rc == 0) continue;  // loops back into the budget check
    const bool primary_ready = pfds[0].revents != 0;
    const std::size_t winner = primary_ready ? idx : h;
    const std::size_t loser = primary_ready ? h : idx;
    const bool got =
        legs[winner]->recv_response(wresp, err, left(budget_ms));
    legs[loser].reset();
    if (!got) {
      legs[winner].reset();
      return -1;
    }
    wresp.hedged = true;
    wresp.hedge_won = !primary_ready;
    if (!primary_ready)
      hedge_wins_.fetch_add(1, std::memory_order_relaxed);
    m_hedges_won_[primary_ready ? 0 : 1]->inc();
    return static_cast<int>(winner);
  }
}

int ParseRouter::forward(const WireRequest& req0,
                         std::vector<std::optional<Client>>& legs,
                         std::vector<std::uint8_t>& reply) {
  using clock = std::chrono::steady_clock;
  reply.clear();
  WireRequest req = req0;
  // Stamp a retry identity onto keyless requests: with it, a retry
  // after a lost response coalesces on (or replays from) the shard
  // that already executed instead of parsing a second time.
  if (req.idempotency_key == 0) req.idempotency_key = next_key();
  const std::uint64_t key =
      route_hash(req, opt_.route_by == RouteBy::Sentence);
  const std::size_t n = shards_.size();
  const bool has_deadline = req0.deadline_ms > 0;
  const auto t_start = clock::now();
  const auto elapsed_ms = [&t_start] {
    return static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            clock::now() - t_start).count());
  };
  const auto synthesize = [&](serve::RequestStatus st,
                              const std::string& msg) {
    WireResponse none;
    none.status = st;
    none.idempotency_key = req.idempotency_key;
    none.error = msg;
    encode_response(none, reply);  // minimal reply always fits
    return -1;
  };

  bool rerouted = false;
  bool saw_healthy = false;
  int attempts = 0;
  std::size_t probe_from = 0;
  std::string last_err;

  while (attempts < opt_.max_attempts) {
    const int idx_pick = pick_shard(key, probe_from, /*skip=*/-1);
    if (idx_pick < 0) break;  // no healthy shard left
    const std::size_t idx = static_cast<std::size_t>(idx_pick);
    Shard& sh = *shards_[idx];
    saw_healthy = true;
    ++attempts;
    if (attempts > 1) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      m_retries_->inc();
    }

    // Decrement the remaining-deadline field on the outgoing frame:
    // the shard sees only what is left of the original budget.
    int remaining = -1;
    if (has_deadline) {
      remaining = static_cast<int>(req0.deadline_ms) - elapsed_ms();
      if (remaining <= 0) break;  // Timeout below
      req.deadline_ms = static_cast<std::uint32_t>(remaining);
    }
    int budget =
        opt_.attempt_timeout_ms > 0 ? opt_.attempt_timeout_ms : -1;
    if (remaining >= 0)
      budget = budget < 0 ? remaining : std::min(budget, remaining);

    std::string err;
    // One reconnect per attempt: a stale leg (shard restarted, idle
    // timeout reaped the connection) should not burn a whole retry.
    for (int leg_try = 0; leg_try < 2; ++leg_try) {
      if (!legs[idx] || !legs[idx]->valid()) {
        legs[idx] = Client::connect(sh.addr.host, sh.addr.port, &err);
        if (!legs[idx]) break;  // connect refused: shard is down
      }
      const auto a0 = clock::now();
      WireResponse wresp;
      const int got = attempt_once(req, legs, idx, budget, wresp, &err);
      if (got >= 0) {
        const std::size_t gidx = static_cast<std::size_t>(got);
        shards_[gidx]->forwards.fetch_add(1, std::memory_order_relaxed);
        shards_[gidx]->m_forwards->inc();
        forwarded_.fetch_add(1, std::memory_order_relaxed);
        if (rerouted) {
          failovers_.fetch_add(1, std::memory_order_relaxed);
          m_failovers_->inc();
        }
        note_latency(std::chrono::duration<double, std::milli>(
                         clock::now() - a0).count());
        // The router is authoritative for the key echo (a v1 shard
        // echoes nothing) — hedge bits were stamped in attempt_once.
        wresp.idempotency_key = req.idempotency_key;
        if (!encode_response(wresp, reply)) {
          wresp.domains.clear();
          wresp.degraded = true;
          wresp.error = "router: response exceeded wire limits";
          encode_response(wresp, reply);
        }
        return got;
      }
      // "timeout" means the shard HAS the frame and is hung — a
      // same-leg resend would just queue behind the hang.  Fail over.
      if (err == "timeout") break;
    }
    last_err = err;
    // Attempt failed: demote (the prober re-promotes on the next
    // answered ping), advance the probe origin past this shard, and
    // back off before the next attempt.
    demote(idx);
    rerouted = true;
    probe_from = (idx + 1 + n - key % n) % n;
    if (attempts < opt_.max_attempts) {
      std::chrono::milliseconds backoff =
          opt_.retry_backoff_base * (1 << std::min(attempts - 1, 10));
      backoff = std::min(backoff, opt_.retry_backoff_max);
      // Deterministic jitter in [0.5, 1.5): seeded, so chaos runs
      // replay identically.
      const double jitter =
          0.5 + static_cast<double>(
                    splitmix64(opt_.retry_seed ^ req.idempotency_key ^
                               static_cast<std::uint64_t>(attempts)) %
                    1024) /
                    1024.0;
      auto sleep_ms = std::chrono::milliseconds(static_cast<long long>(
          static_cast<double>(backoff.count()) * jitter));
      if (has_deadline) {
        const int budget_left =
            static_cast<int>(req0.deadline_ms) - elapsed_ms();
        if (budget_left <= 0) break;
        sleep_ms =
            std::min(sleep_ms, std::chrono::milliseconds(budget_left));
      }
      std::this_thread::sleep_for(sleep_ms);
    }
  }

  if (has_deadline &&
      static_cast<int>(req0.deadline_ms) - elapsed_ms() <= 0) {
    deadline_exhausted_.fetch_add(1, std::memory_order_relaxed);
    return synthesize(serve::RequestStatus::Timeout,
                      "router: deadline exhausted after " +
                          std::to_string(attempts) + " attempts");
  }
  unroutable_.fetch_add(1, std::memory_order_relaxed);
  m_unroutable_->inc();
  if (saw_healthy && attempts >= opt_.max_attempts)
    return synthesize(
        serve::RequestStatus::Faulted,
        "router: retries exhausted after " + std::to_string(attempts) +
            " attempts" +
            (last_err.empty() ? "" : " (last: " + last_err + ")"));
  return synthesize(serve::RequestStatus::Faulted,
                    "router: no healthy shard");
}

}  // namespace parsec::net
