#include "resil/fault_plan.h"

#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>

namespace parsec::resil {

namespace {

/// splitmix64: the statistical-quality seed scrambler (util/rng.h uses
/// the same construction); one application per (seed, site, query)
/// keys the probabilistic trigger deterministically.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Uniform double in [0, 1) from a hash.
double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

void FaultPlan::arm(std::string_view site, FaultSpec spec) {
  auto it = sites_.find(site);
  if (it == sites_.end())
    it = sites_.emplace(std::string(site), std::make_unique<Site>()).first;
  it->second->spec = spec;
}

bool FaultPlan::armed(std::string_view site) const {
  return sites_.find(site) != sites_.end();
}

bool FaultPlan::should_fire(std::string_view site) {
  const auto it = sites_.find(site);
  if (it == sites_.end()) return false;
  Site& s = *it->second;
  // 1-based query index: every_nth=k fires on queries 1, k+1, 2k+1, ...
  // (the first query always fires, so "fault the first request" is
  // every=1 limit=1 rather than an off-by-one puzzle).
  const std::uint64_t q =
      s.queries.fetch_add(1, std::memory_order_relaxed) + 1;
  bool fire = false;
  if (s.spec.every_nth > 0 && (q - 1) % s.spec.every_nth == 0) fire = true;
  if (!fire && s.spec.probability > 0.0) {
    const std::uint64_t h = splitmix64(seed_ ^ fnv1a(site) ^ (q * 0x9e37ull));
    fire = to_unit(h) < s.spec.probability;
  }
  if (!fire) return false;
  // Reserve a fire slot under the cap; losers of the race do not fire.
  std::uint64_t fired = s.fires.load(std::memory_order_relaxed);
  while (fired < s.spec.max_fires) {
    if (s.fires.compare_exchange_weak(fired, fired + 1,
                                      std::memory_order_relaxed))
      return true;
  }
  return false;
}

double FaultPlan::param(std::string_view site, double def) const {
  const auto it = sites_.find(site);
  return it == sites_.end() ? def : it->second->spec.param;
}

std::uint64_t FaultPlan::queries(std::string_view site) const {
  const auto it = sites_.find(site);
  return it == sites_.end()
             ? 0
             : it->second->queries.load(std::memory_order_relaxed);
}

std::uint64_t FaultPlan::fires(std::string_view site) const {
  const auto it = sites_.find(site);
  return it == sites_.end()
             ? 0
             : it->second->fires.load(std::memory_order_relaxed);
}

std::uint64_t FaultPlan::total_fires() const {
  std::uint64_t total = 0;
  for (const auto& [name, site] : sites_)
    total += site->fires.load(std::memory_order_relaxed);
  return total;
}

std::vector<std::string> FaultPlan::sites() const {
  std::vector<std::string> out;
  out.reserve(sites_.size());
  for (const auto& [name, site] : sites_) out.push_back(name);
  return out;
}

FaultPlan FaultPlan::parse(std::istream& in) {
  FaultPlan plan;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream is(line);
    std::string head;
    if (!(is >> head)) continue;  // blank / comment-only line
    auto fail = [&](const std::string& what) {
      throw std::invalid_argument("fault plan line " +
                                  std::to_string(lineno) + ": " + what);
    };
    if (head == "seed") {
      std::uint64_t seed;
      if (!(is >> seed)) fail("seed needs an integer");
      plan.seed_ = seed;
      continue;
    }
    FaultSpec spec;
    std::string kv;
    while (is >> kv) {
      const auto eq = kv.find('=');
      if (eq == std::string::npos) fail("expected key=value, got '" + kv + "'");
      const std::string key = kv.substr(0, eq);
      const std::string val = kv.substr(eq + 1);
      try {
        if (key == "prob")
          spec.probability = std::stod(val);
        else if (key == "every")
          spec.every_nth = std::stoull(val);
        else if (key == "limit")
          spec.max_fires = std::stoull(val);
        else if (key == "param")
          spec.param = std::stod(val);
        else
          fail("unknown key '" + key + "'");
      } catch (const std::invalid_argument&) {
        fail("bad value for '" + key + "'");
      } catch (const std::out_of_range&) {
        fail("bad value for '" + key + "'");
      }
    }
    if (spec.probability < 0.0 || spec.probability > 1.0)
      fail("prob must be in [0, 1]");
    plan.arm(head, spec);
  }
  return plan;
}

FaultPlan FaultPlan::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::invalid_argument("cannot open fault plan: " + path);
  return parse(in);
}

// ---- process-wide installation -------------------------------------------

namespace {
std::atomic<FaultPlan*> g_plan{nullptr};
}  // namespace

FaultPlan* installed_plan() { return g_plan.load(std::memory_order_relaxed); }

ScopedFaultPlan::ScopedFaultPlan(FaultPlan& plan) {
  FaultPlan* expected = nullptr;
  if (!g_plan.compare_exchange_strong(expected, &plan,
                                      std::memory_order_relaxed))
    throw std::logic_error("a FaultPlan is already installed");
}

ScopedFaultPlan::~ScopedFaultPlan() {
  g_plan.store(nullptr, std::memory_order_relaxed);
}

bool should_fire(std::string_view site) {
  FaultPlan* plan = installed_plan();
  return plan != nullptr && plan->should_fire(site);
}

double site_param(std::string_view site, double def) {
  FaultPlan* plan = installed_plan();
  return plan == nullptr ? def : plan->param(site, def);
}

bool checkpoint(const std::function<bool()>& cancel) {
  FaultPlan* plan = installed_plan();
  if (plan != nullptr) {
    if (plan->should_fire("engine.latency")) {
      const double s = plan->param("engine.latency", 0.0);
      if (s > 0.0)
        std::this_thread::sleep_for(std::chrono::duration<double>(s));
    }
    if (plan->should_fire("engine.hang")) {
      // Hang until cancelled; the param bounds the hang so a plan
      // without a watchdog (or deadline) still terminates.
      const auto bound = std::chrono::duration<double>(
          plan->param("engine.hang", 5.0));
      const auto until = std::chrono::steady_clock::now() + bound;
      while (!(cancel && cancel()) &&
             std::chrono::steady_clock::now() < until)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  return cancel && cancel();
}

}  // namespace parsec::resil
