// Stuck-worker watchdog (the serve layer's deadman timer).
//
// A hung backend — an injected engine.hang, a pathological grammar, a
// deadlocked accelerator shim — would otherwise pin a pool worker
// forever while its request's future never resolves.  The watchdog
// gives each worker a heartbeat slot: the worker stamps the slot when a
// parse starts and clears it when the parse ends; a monitor thread
// sweeps the slots every `interval` and raises the slot's cancel flag
// when a parse has been running longer than `stall_after`.  The
// request's CancelFn ORs that flag with its deadline, so the engines'
// cooperative checkpoints (resil::checkpoint) abort the sweep and the
// worker comes back.
//
// Detection is cooperative, not preemptive: a worker stuck somewhere
// that never polls cannot be reclaimed — the watchdog bounds *engine*
// stalls, which poll every fixpoint sweep.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace parsec::resil {

class Watchdog {
 public:
  struct Options {
    /// A parse running longer than this is declared stuck.
    std::chrono::steady_clock::duration stall_after =
        std::chrono::milliseconds(500);
    /// Sweep cadence for the monitor thread.
    std::chrono::steady_clock::duration interval =
        std::chrono::milliseconds(20);
  };

  /// One heartbeat slot per worker.  The worker owns busy_since_ns
  /// (0 = idle); the monitor owns cancel.
  struct Slot {
    std::atomic<std::int64_t> busy_since_ns{0};
    std::atomic<bool> cancel{false};
  };

  Watchdog(std::size_t workers, Options opts)
      : opts_(opts), slots_(workers) {
    monitor_ = std::thread([this] { run(); });
  }
  ~Watchdog() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    monitor_.join();
  }
  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  /// Worker `w` is starting a parse: stamp the slot and clear any stale
  /// cancel from a previous (already-reclaimed) stall.
  Slot& begin(std::size_t w) {
    Slot& s = slots_[w];
    s.cancel.store(false, std::memory_order_relaxed);
    s.busy_since_ns.store(now_ns(), std::memory_order_release);
    return s;
  }

  /// Worker `w` finished (however it ended).
  void end(std::size_t w) {
    slots_[w].busy_since_ns.store(0, std::memory_order_release);
  }

  /// Total stalls declared since construction.
  std::uint64_t stalls() const {
    return stalls_.load(std::memory_order_relaxed);
  }

 private:
  void run() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      cv_.wait_for(lock, opts_.interval, [this] { return stop_; });
      if (stop_) return;
      const std::int64_t now = now_ns();
      const std::int64_t limit =
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              opts_.stall_after)
              .count();
      for (Slot& s : slots_) {
        const std::int64_t since =
            s.busy_since_ns.load(std::memory_order_acquire);
        if (since != 0 && now - since > limit &&
            !s.cancel.exchange(true, std::memory_order_acq_rel))
          stalls_.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  static std::int64_t now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  Options opts_;
  std::vector<Slot> slots_;
  std::atomic<std::uint64_t> stalls_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread monitor_;
};

}  // namespace parsec::resil
