// Deterministic fault injection (the resilience layer's test harness).
//
// The MP-1 survived hardware faults by disabling faulty PEs and
// remapping work around them [MasPar System Overview, 1990]; a service
// reproduction needs the software analogue — every failure mode the
// serve layer claims to survive must be *injectable on demand* so the
// degradation paths are exercised deterministically, not discovered in
// production.
//
// A FaultPlan arms named *sites* (compiled-in injection points: the
// MasPar machine's PE array and router, the network arena's allocator,
// the engines' fixpoint checkpoints) with seeded triggers:
//
//   * probability  — per-query chance, derived from (seed, site, query
//                    index) alone, so a plan replays bit-identically on
//                    every run regardless of thread interleaving *per
//                    site-query order*;
//   * every_nth    — fire on query 1, n+1, 2n+1, ... (exact cadence);
//   * max_fires    — cap on total fires (e.g. fault the first request
//                    only);
//   * param        — site-specific magnitude (seconds of injected
//                    latency, hang bound).
//
// Sites consult the *installed* plan through a single relaxed atomic
// load; with no plan installed an injection point costs one load and a
// branch.  Installation is scoped (ScopedFaultPlan) and process-wide,
// mirroring obs::TraceSession.  The site name reference lives in
// docs/ROBUSTNESS.md.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <limits>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace parsec::resil {

/// Thrown by injection sites that model hard failures (allocation
/// failure, an unusable PE array).  Derived from std::runtime_error so
/// generic catch blocks degrade it like any other fault.
class InjectedFault : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct FaultSpec {
  /// Per-query fire chance in [0, 1]; 0 disables the probabilistic
  /// trigger.
  double probability = 0.0;
  /// Fire deterministically on queries 1, n+1, 2n+1, ...; 0 disables.
  std::uint64_t every_nth = 0;
  /// Total fires allowed before the site goes quiet.
  std::uint64_t max_fires = std::numeric_limits<std::uint64_t>::max();
  /// Site-specific magnitude (e.g. engine.latency sleep seconds,
  /// engine.hang bound seconds).
  double param = 0.0;
};

/// A seeded set of armed sites plus per-site hit accounting.  Arming is
/// done once, up front; should_fire() is then safe to call concurrently
/// from any thread (counters are atomic, the site map is immutable).
class FaultPlan {
 public:
  explicit FaultPlan(std::uint64_t seed = 0) : seed_(seed) {}

  /// Arms `site`.  Not thread-safe against concurrent should_fire();
  /// arm everything before installing the plan.
  void arm(std::string_view site, FaultSpec spec);

  bool armed(std::string_view site) const;

  /// One query at `site`: true when the fault fires.  Deterministic in
  /// (seed, site, query index); thread-safe after arming.
  bool should_fire(std::string_view site);

  /// The armed spec's param (`def` when the site is unarmed).
  double param(std::string_view site, double def = 0.0) const;

  std::uint64_t queries(std::string_view site) const;
  std::uint64_t fires(std::string_view site) const;
  std::uint64_t total_fires() const;
  std::uint64_t seed() const { return seed_; }

  /// Armed site names, sorted (metrics export, reports).
  std::vector<std::string> sites() const;

  /// Parses the plan text format (docs/ROBUSTNESS.md):
  ///
  ///   seed 42
  ///   # site        key=value ...
  ///   arena.alloc   prob=0.01 limit=3
  ///   maspar.router every=100
  ///   engine.latency prob=0.05 param=0.0005
  ///
  /// Throws std::invalid_argument on malformed input.
  static FaultPlan parse(std::istream& in);
  /// parse() over a file; throws std::invalid_argument when unreadable.
  static FaultPlan load(const std::string& path);

 private:
  struct Site {
    FaultSpec spec;
    std::atomic<std::uint64_t> queries{0};
    std::atomic<std::uint64_t> fires{0};
  };

  std::uint64_t seed_ = 0;
  // unique_ptr values keep Site addresses stable and the map copyable
  // enough for parse()'s by-value return (moves only).
  std::map<std::string, std::unique_ptr<Site>, std::less<>> sites_;
};

// ---- process-wide installation -------------------------------------------

/// The currently installed plan (nullptr when none).  One relaxed
/// atomic load; injection sites call this first.
FaultPlan* installed_plan();

/// Installs `plan` for the current scope.  At most one plan may be
/// installed at a time (nesting throws std::logic_error); the plan must
/// outlive the scope.  Installation is process-wide: arm and install
/// before spawning the traffic that should see the faults.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(FaultPlan& plan);
  ~ScopedFaultPlan();
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

// ---- injection-site helpers ----------------------------------------------

/// True when an installed plan fires at `site`.  The no-plan fast path
/// is one relaxed load.
bool should_fire(std::string_view site);

/// The installed plan's param for `site` (`def` when absent).
double site_param(std::string_view site, double def = 0.0);

/// Engine checkpoint: applies the `engine.latency` fault (sleep for
/// `param` seconds) and the `engine.hang` fault (block until `cancel`
/// fires, bounded by `param` seconds so an unwatched hang still ends),
/// then polls `cancel`.  Engines call this between constraint
/// applications and fixpoint sweeps; with no plan installed and an
/// empty `cancel` it costs one load and a branch.
bool checkpoint(const std::function<bool()>& cancel);

}  // namespace parsec::resil
