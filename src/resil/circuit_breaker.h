// Per-backend circuit breaker (the serve layer's trip switch).
//
// A backend that faults repeatedly — injected dead PEs, a poisoned
// scratch pool, a sanitizer-only bug — should stop receiving traffic
// for a cooldown instead of faulting every request that names it.  The
// breaker is the classic three-state machine:
//
//   Closed    — healthy; requests flow.  `trip_after` *consecutive*
//               failures moves to Open (any success resets the streak).
//   Open      — tripped; allow() is false and callers degrade (the
//               service reroutes to Serial).  After `cooldown` the
//               next allow() moves to HalfOpen and lets one probe
//               through.
//   HalfOpen  — one probe in flight; success closes the breaker,
//               failure re-opens it and restarts the cooldown.
//
// All transitions are lock-free (a single state atomic plus a
// consecutive-failure counter); allow() on the Closed fast path is one
// relaxed load.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace parsec::resil {

class CircuitBreaker {
 public:
  enum class State : std::uint8_t { Closed, Open, HalfOpen };

  struct Options {
    /// Consecutive failures before the breaker trips.
    int trip_after = 3;
    /// How long Open lasts before a half-open probe is allowed.
    std::chrono::steady_clock::duration cooldown = std::chrono::seconds(1);
  };

  CircuitBreaker() : CircuitBreaker(Options{}) {}
  explicit CircuitBreaker(Options opts) : opts_(opts) {}

  /// Replaces the options.  Only valid before traffic reaches the
  /// breaker (not thread-safe against allow()/record_*).
  void configure(Options opts) { opts_ = opts; }

  /// May a request proceed?  Closed/HalfOpen: yes.  Open: no, unless
  /// the cooldown elapsed — then this call claims the half-open probe
  /// slot and returns true (exactly one caller wins per cooldown).
  bool allow() {
    State s = state_.load(std::memory_order_acquire);
    if (s == State::Closed) return true;
    if (s == State::HalfOpen) return false;  // probe already in flight
    const std::int64_t now = now_ns();
    if (now < opened_at_ns_.load(std::memory_order_acquire) + cooldown_ns())
      return false;
    // Cooldown elapsed: claim the probe slot.
    State expected = State::Open;
    return state_.compare_exchange_strong(expected, State::HalfOpen,
                                          std::memory_order_acq_rel);
  }

  /// Report a request outcome for this backend.
  void record_success() {
    failures_.store(0, std::memory_order_relaxed);
    // A success in any state (the half-open probe, or a request that
    // was already in flight when the breaker tripped) closes it.
    state_.store(State::Closed, std::memory_order_release);
  }

  /// Returns true when this failure tripped the breaker (a Closed ->
  /// Open or HalfOpen -> Open transition happened on this call).
  bool record_failure() {
    const State s = state_.load(std::memory_order_acquire);
    if (s == State::HalfOpen) return reopen();
    if (s == State::Open) return false;  // already tripped
    const int streak = failures_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (streak >= opts_.trip_after) return reopen();
    return false;
  }

  State state() const { return state_.load(std::memory_order_acquire); }
  bool open() const { return state() != State::Closed; }
  /// Total trips (Closed/HalfOpen -> Open transitions).
  std::uint64_t trips() const {
    return trips_.load(std::memory_order_relaxed);
  }

 private:
  bool reopen() {
    opened_at_ns_.store(now_ns(), std::memory_order_release);
    failures_.store(0, std::memory_order_relaxed);
    if (state_.exchange(State::Open, std::memory_order_acq_rel) ==
        State::Open)
      return false;
    trips_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  static std::int64_t now_ns() {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
  std::int64_t cooldown_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               opts_.cooldown)
        .count();
  }

  Options opts_;
  std::atomic<State> state_{State::Closed};
  std::atomic<int> failures_{0};
  std::atomic<std::int64_t> opened_at_ns_{0};
  std::atomic<std::uint64_t> trips_{0};
};

}  // namespace parsec::resil
