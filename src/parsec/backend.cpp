#include "parsec/backend.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "maspar/cost_model.h"
#include "obs/trace.h"

namespace parsec::engine {

const char* to_string(Backend b) {
  switch (b) {
    case Backend::Serial:
      return "serial";
    case Backend::Omp:
      return "omp";
    case Backend::Pram:
      return "pram";
    case Backend::Maspar:
      return "maspar";
    case Backend::Mesh:
      return "mesh";
  }
  return "?";
}

std::optional<Backend> backend_from_name(std::string_view name) {
  if (name == "serial" || name == "seq") return Backend::Serial;
  if (name == "omp") return Backend::Omp;
  if (name == "pram") return Backend::Pram;
  if (name == "maspar") return Backend::Maspar;
  if (name == "mesh") return Backend::Mesh;
  return std::nullopt;
}

BackendStats& BackendStats::operator+=(const BackendStats& o) {
  requests += o.requests;
  accepted += o.accepted;
  cancelled += o.cancelled;
  faulted += o.faulted;
  network += o.network;
  consistency_iterations += o.consistency_iterations;
  pram.time_steps += o.pram.time_steps;
  pram.max_processors = std::max(pram.max_processors, o.pram.max_processors);
  pram.total_work += o.pram.total_work;
  pram.write_conflicts += o.pram.write_conflicts;
  maspar += o.maspar;
  maspar_simulated_seconds += o.maspar_simulated_seconds;
  topo_time_steps += o.topo_time_steps;
  topo_elementwise_steps += o.topo_elementwise_steps;
  topo_reduction_steps += o.topo_reduction_steps;
  return *this;
}

cdg::Network& NetworkScratch::acquire(const cdg::Grammar& g,
                                      const cdg::Sentence& s,
                                      cdg::NetworkOptions opt) {
  const ShapeKey key{&g, s.size()};
  auto it = by_shape_.find(key);
  if (it != by_shape_.end() && it->second.reinit(s)) {
    ++reuses_;
    return it->second;
  }
  if (it != by_shape_.end()) by_shape_.erase(it);
  auto [pos, inserted] = by_shape_.emplace(key, cdg::Network(g, s, opt));
  (void)inserted;
  return pos->second;
}

void NetworkScratch::purge(const cdg::Grammar* g) {
  for (auto it = by_shape_.begin(); it != by_shape_.end();) {
    if (it->first.grammar == g)
      it = by_shape_.erase(it);
    else
      ++it;
  }
}

std::size_t NetworkScratch::arena_bytes() const {
  std::size_t total = 0;
  for (const auto& [key, net] : by_shape_) total += net.arena().bytes();
  return total;
}

std::uint64_t NetworkScratch::arena_allocations() const {
  std::uint64_t total = 0;
  for (const auto& [key, net] : by_shape_) total += net.arena().allocations();
  return total;
}

std::uint64_t NetworkScratch::arena_reinits() const {
  std::uint64_t total = 0;
  for (const auto& [key, net] : by_shape_) total += net.arena().reinits();
  return total;
}

EngineSet::EngineSet(const cdg::Grammar& g, EngineSetOptions opt)
    : grammar_(&g),
      opt_(opt),
      serial_(g, opt.serial),
      omp_(g, opt.omp),
      pram_(g, opt.pram),
      maspar_(g, opt.maspar),
      mesh_(g, Topology::Mesh2D, opt.mesh_filter_iterations) {}

std::uint64_t hash_domains(const std::vector<util::DynBitset>& domains) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;  // FNV prime
  };
  mix(domains.size());
  for (const auto& d : domains) {
    mix(d.size());
    for (std::size_t wi = 0; wi < d.word_count(); ++wi) mix(d.word_at(wi));
  }
  return h;
}

std::uint64_t hash_domains(const cdg::Network& net) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;  // FNV prime
  };
  const int R = net.num_roles();
  mix(static_cast<std::uint64_t>(R));
  for (int r = 0; r < R; ++r) {
    const util::ConstBitSpan d = net.domain(r);
    mix(d.size());
    for (std::size_t wi = 0; wi < d.word_count(); ++wi) mix(d.word_at(wi));
  }
  return h;
}

std::uint64_t hash_sentence(const cdg::Sentence& s) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;  // FNV prime
  };
  mix(static_cast<std::uint64_t>(s.size()));
  for (const auto& w : s.words) {
    mix(w.size());
    for (unsigned char c : w) mix(c);
  }
  for (cdg::CatId c : s.cats) mix(static_cast<std::uint64_t>(c));
  return h;
}

namespace {

std::vector<util::DynBitset> net_domains(const cdg::Network& net) {
  std::vector<util::DynBitset> out;
  out.reserve(static_cast<std::size_t>(net.num_roles()));
  for (int r = 0; r < net.num_roles(); ++r) out.emplace_back(net.domain(r));
  return out;
}

void finish_from_network(BackendRun& run, const cdg::Network& net,
                         bool capture) {
  run.alive_role_values = net.total_alive();
  // Hash straight off the arena spans; domains are materialized only on
  // request (keeping the steady-state request path allocation-free).
  run.domains_hash = hash_domains(net);
  if (capture) run.domains = net_domains(net);
  run.stats.network += net.counters();
}

// Envelope-span names must be string literals (the tracer stores the
// pointer), so one per backend rather than a formatted string.
const char* backend_span_name(Backend b) {
  switch (b) {
    case Backend::Serial: return "backend.serial";
    case Backend::Omp: return "backend.omp";
    case Backend::Pram: return "backend.pram";
    case Backend::Maspar: return "backend.maspar";
    case Backend::Mesh: return "backend.mesh";
  }
  return "backend.?";
}

BackendRun run_backend_impl(const EngineSet& engines, Backend b,
                            const cdg::Sentence& s, NetworkScratch* scratch,
                            const cdg::CancelFn& cancel,
                            bool capture_domains);

}  // namespace

BackendRun run_backend(const EngineSet& engines, Backend b,
                       const cdg::Sentence& s, NetworkScratch* scratch,
                       const cdg::CancelFn& cancel, bool capture_domains) {
  obs::Span span(backend_span_name(b), "parse");
  BackendRun run =
      run_backend_impl(engines, b, s, scratch, cancel, capture_domains);
  if (span.active()) {
    span.arg("n", static_cast<std::int64_t>(s.size()));
    span.arg("accepted", static_cast<std::int64_t>(run.accepted ? 1 : 0));
    span.arg("effective_unary_evals",
             run.stats.network.effective_unary_evals());
    span.arg("effective_binary_evals",
             run.stats.network.effective_binary_evals());
    span.arg("eliminations", run.stats.network.eliminations);
    span.arg("consistency_iterations", run.stats.consistency_iterations);
    if (b == Backend::Maspar) {
      span.arg("plural_ops", run.stats.maspar.plural_ops);
      span.arg("scan_ops", run.stats.maspar.scan_ops);
      span.arg("route_ops", run.stats.maspar.route_ops);
      span.arg("simulated_seconds", run.stats.maspar_simulated_seconds);
    }
    if (b == Backend::Pram) span.arg("time_steps", run.stats.pram.time_steps);
    if (b == Backend::Mesh) {
      span.arg("time_steps", run.stats.topo_time_steps);
      span.arg("reduction_steps", run.stats.topo_reduction_steps);
    }
  }
  return run;
}

namespace {

BackendRun run_backend_impl(const EngineSet& engines, Backend b,
                            const cdg::Sentence& s, NetworkScratch* scratch,
                            const cdg::CancelFn& cancel,
                            bool capture_domains) {
  BackendRun run;
  run.stats.requests = 1;

  // A deadline that has already passed: refuse before any engine work.
  if (cancel && cancel()) {
    run.cancelled = true;
    run.stats.cancelled = 1;
    return run;
  }

  if (b == Backend::Maspar) {
    // The MasPar engine owns its PE-resident state; no host network.
    std::unique_ptr<MasparParse> parse;
    MasparResult r = engines.maspar().parse(s, parse, cancel);
    run.cancelled = r.cancelled;
    run.accepted = r.accepted;
    run.stats.consistency_iterations +=
        static_cast<std::uint64_t>(r.consistency_iterations);
    run.stats.maspar += r.stats;
    run.stats.maspar_simulated_seconds += r.simulated_seconds;
    run.stats.network.tile_sweeps += r.tile_sweeps;
    run.stats.network.simd_lane_words += r.lane_words;
    auto domains = parse->domains();
    run.alive_role_values = 0;
    for (const auto& d : domains) run.alive_role_values += d.count();
    run.domains_hash = hash_domains(domains);
    if (capture_domains) run.domains = std::move(domains);
    run.stats.accepted = run.accepted ? 1 : 0;
    run.stats.cancelled = run.cancelled ? 1 : 0;
    return run;
  }

  cdg::NetworkOptions nopt;
  nopt.prebuild_arcs = engines.options().serial.prebuild_arcs;
  NetworkScratch local;
  cdg::Network& net = (scratch ? *scratch : local)
                          .acquire(engines.grammar(), s, nopt);

  switch (b) {
    case Backend::Serial: {
      if (engines.options().serial_ac4) {
        // Propagate with cancel polls, then AC-4 filtering to the
        // fixpoint (same fixpoint as sweep filtering; confluent).
        const auto& p = engines.serial();
        bool aborted = false;
        for (std::size_t i = 0; i < p.compiled_unary().size(); ++i) {
          if (cancel && cancel()) {
            aborted = true;
            break;
          }
          p.step_unary(net, i);
        }
        for (std::size_t i = 0; !aborted && i < p.compiled_binary().size();
             ++i) {
          if (cancel && cancel()) {
            aborted = true;
            break;
          }
          p.step_binary(net, i);
        }
        if (!aborted) cdg::filter_ac4(net);
        run.cancelled = aborted;
        run.accepted = !aborted && net.all_roles_nonempty();
      } else {
        cdg::ParseResult r = engines.serial().parse(net, cancel);
        run.cancelled = r.cancelled;
        run.accepted = r.accepted;
        run.stats.consistency_iterations +=
            static_cast<std::uint64_t>(r.filter_sweeps_used);
      }
      break;
    }
    case Backend::Omp: {
      OmpResult r = engines.omp().parse(net, cancel);
      run.cancelled = r.cancelled;
      run.accepted = r.accepted;
      run.stats.consistency_iterations +=
          static_cast<std::uint64_t>(r.consistency_iterations);
      break;
    }
    case Backend::Pram: {
      PramResult r = engines.pram().parse(net, cancel);
      run.cancelled = r.cancelled;
      run.accepted = r.accepted;
      run.stats.consistency_iterations +=
          static_cast<std::uint64_t>(r.consistency_iterations);
      run.stats.pram = r.stats;
      break;
    }
    case Backend::Mesh: {
      TopoResult r = engines.mesh().parse(net, cancel);
      run.cancelled = r.cancelled;
      run.accepted = r.accepted;
      run.stats.consistency_iterations +=
          static_cast<std::uint64_t>(r.consistency_iterations);
      run.stats.topo_time_steps += r.time_steps;
      run.stats.topo_elementwise_steps += r.elementwise_steps;
      run.stats.topo_reduction_steps += r.reduction_steps;
      break;
    }
    case Backend::Maspar:
      break;  // handled above
  }

  finish_from_network(run, net, capture_domains);
  run.stats.accepted = run.accepted ? 1 : 0;
  run.stats.cancelled = run.cancelled ? 1 : 0;
  return run;
}

}  // namespace

std::vector<BackendRun> run_backend_batch(
    cdg::BatchParser& parser, std::span<const cdg::Sentence> sentences,
    bool capture_domains) {
  obs::Span span("backend.batch", "parse");
  std::vector<cdg::BatchLaneResult> lanes = parser.parse(sentences);
  std::vector<BackendRun> runs;
  runs.reserve(lanes.size());
  std::uint64_t tile_sweeps = 0;
  std::uint64_t lane_words = 0;
  for (cdg::BatchLaneResult& lane : lanes) {
    BackendRun run;
    run.stats.requests = 1;
    run.accepted = lane.accepted;
    run.stats.accepted = lane.accepted ? 1 : 0;
    run.alive_role_values = lane.alive_role_values;
    run.domains_hash = hash_domains(lane.domains);
    run.stats.network += lane.counters;
    run.stats.consistency_iterations =
        static_cast<std::uint64_t>(lane.consistency_iterations);
    tile_sweeps += lane.counters.tile_sweeps;
    lane_words += lane.counters.simd_lane_words;
    if (capture_domains) run.domains = std::move(lane.domains);
    runs.push_back(std::move(run));
  }
  if (span.active()) {
    span.arg("lanes", static_cast<std::int64_t>(sentences.size()));
    span.arg("n", sentences.empty()
                      ? std::int64_t{0}
                      : static_cast<std::int64_t>(sentences[0].size()));
    span.arg("tile_sweeps", tile_sweeps);
    span.arg("simd_lane_words", lane_words);
  }
  return runs;
}

StatsPublisher::StatsPublisher(obs::Registry* registry) {
  obs::Registry& reg = *registry;
  for (std::size_t i = 0; i < kNumBackends; ++i) {
    const std::string be = to_string(kAllBackends[i]);
    PerBackend& p = per_backend_[i];
    // `status` values are disjoint — every completed request lands in
    // exactly one — so sum(parsec_requests_total) aggregates correctly.
    p.accepted = &reg.counter("parsec_requests_total",
                              "Parse requests completed, by outcome.",
                              {{"backend", be}, {"status", "accepted"}});
    p.rejected = &reg.counter("parsec_requests_total",
                              "Parse requests completed, by outcome.",
                              {{"backend", be}, {"status", "rejected"}});
    p.cancelled = &reg.counter("parsec_requests_total",
                               "Parse requests completed, by outcome.",
                               {{"backend", be}, {"status", "cancelled"}});
    p.faulted = &reg.counter("parsec_requests_total",
                             "Parse requests completed, by outcome.",
                             {{"backend", be}, {"status", "faulted"}});
    p.effective_unary_evals = &reg.counter(
        "parsec_effective_unary_evals_total",
        "Unary constraint tests in plain-sweep units (masked decisions "
        "counted as if dispatched).",
        {{"backend", be}});
    p.effective_binary_evals = &reg.counter(
        "parsec_effective_binary_evals_total",
        "Binary constraint tests in plain-sweep units (2 per masked pair).",
        {{"backend", be}});
    p.masked_binary_pairs = &reg.counter(
        "parsec_masked_binary_pairs_total",
        "Arc pairs decided by truth masks without a VM dispatch.",
        {{"backend", be}});
    p.mask_build_evals = &reg.counter(
        "parsec_mask_build_evals_total",
        "Hoisted constraint evaluations spent building truth masks.",
        {{"backend", be}});
    p.eliminations =
        &reg.counter("parsec_eliminations_total",
                     "Role values removed from domains.", {{"backend", be}});
    p.arc_zeroings =
        &reg.counter("parsec_arc_zeroings_total",
                     "Arc-matrix bits cleared.", {{"backend", be}});
    p.support_checks =
        &reg.counter("parsec_support_checks_total",
                     "Support probes during consistency maintenance.",
                     {{"backend", be}});
    p.consistency_iterations = &reg.counter(
        "parsec_consistency_iterations_total",
        "Filtering sweeps/iterations run to the fixpoint.",
        {{"backend", be}});
    p.simd_tile_sweeps = &reg.counter(
        "parsec_simd_tile_sweeps_total",
        "Cache-blocked sweep tiles executed by the SIMD kernels "
        "(tier-independent).",
        {{"backend", be}});
    p.simd_lane_words = &reg.counter(
        "parsec_simd_lane_words_total",
        "64-bit words pushed through the vector phase of the sweep "
        "kernels (tier-independent).",
        {{"backend", be}});
    p.latency = &reg.histogram("parsec_parse_duration_seconds",
                               "Wall-clock latency of one parse request.",
                               obs::default_latency_buckets_seconds(),
                               {{"backend", be}});
  }
  maspar_plural_ops_ = &reg.counter(
      "parsec_maspar_plural_ops_total",
      "ACU instruction broadcasts (weighted by per-PE unit cost).");
  maspar_scan_ops_ =
      &reg.counter("parsec_maspar_scan_ops_total",
                   "Segmented router scan invocations (scanOr/scanAnd).");
  maspar_route_ops_ = &reg.counter("parsec_maspar_route_ops_total",
                                   "General router gathers.");
  maspar_simulated_seconds_ = &reg.gauge(
      "parsec_maspar_simulated_seconds",
      "Calibrated MP-1 time accumulated by the cost model (seconds).");
  pram_time_steps_ = &reg.counter("parsec_pram_time_steps_total",
                                  "CRCW P-RAM parallel time steps.");
  topo_time_steps_ = &reg.counter("parsec_topo_time_steps_total",
                                  "Mesh topology-model time steps.");
  topo_reduction_steps_ =
      &reg.counter("parsec_topo_reduction_steps_total",
                   "Mesh topology-model reduction (communication) steps.");
  // The calibrated cost-model constants, exposed so a scrape is
  // self-describing: simulated_seconds can be recomputed from the raw
  // op counters and these two values (see docs/OBSERVABILITY.md).
  const maspar::CostModel cm = maspar::CostModel::mp1();
  reg.gauge("parsec_maspar_cost_t_instr_seconds",
            "Calibrated seconds per ACU instruction broadcast (MP-1).")
      .set(cm.t_instr);
  reg.gauge("parsec_maspar_cost_t_route_seconds",
            "Calibrated seconds per router stage of a log-time scan (MP-1).")
      .set(cm.t_route);
  // ISA dispatch tiers, exposed so a scrape records which kernels the
  // cost counters were produced under (0 = scalar, 1 = AVX2,
  // 2 = AVX-512; see cdg/simd.h).  Detected is the CPU's ceiling;
  // active folds in the PARSEC_SIMD env cap and any forced tier.
  reg.gauge("parsec_simd_detected_tier",
            "Widest SIMD tier the host CPU supports (0=scalar, 1=avx2, "
            "2=avx512).")
      .set(static_cast<double>(cdg::simd::detected_tier()));
  reg.gauge("parsec_simd_active_tier",
            "SIMD tier the sweep kernels dispatch to (0=scalar, 1=avx2, "
            "2=avx512; detected tier capped by PARSEC_SIMD / forced tier).")
      .set(static_cast<double>(cdg::simd::active_tier()));
}

void StatsPublisher::publish(Backend b, const BackendStats& delta,
                             double seconds) {
  PerBackend& p = per_backend_[static_cast<std::size_t>(b)];
  // accepted, cancelled and faulted are mutually exclusive (a run ends
  // exactly one way); whatever remains was parsed to rejection.
  const std::uint64_t resolved =
      delta.accepted + delta.cancelled + delta.faulted;
  p.accepted->inc(delta.accepted);
  p.cancelled->inc(delta.cancelled);
  p.faulted->inc(delta.faulted);
  p.rejected->inc(delta.requests > resolved ? delta.requests - resolved : 0);
  p.effective_unary_evals->inc(delta.network.effective_unary_evals());
  p.effective_binary_evals->inc(delta.network.effective_binary_evals());
  p.masked_binary_pairs->inc(delta.network.masked_binary_pairs);
  p.mask_build_evals->inc(delta.network.mask_build_evals);
  p.eliminations->inc(delta.network.eliminations);
  p.arc_zeroings->inc(delta.network.arc_zeroings);
  p.support_checks->inc(delta.network.support_checks);
  p.consistency_iterations->inc(delta.consistency_iterations);
  p.simd_tile_sweeps->inc(delta.network.tile_sweeps);
  p.simd_lane_words->inc(delta.network.simd_lane_words);
  if (seconds >= 0.0) p.latency->observe(seconds);
  if (b == Backend::Maspar) {
    maspar_plural_ops_->inc(delta.maspar.plural_ops);
    maspar_scan_ops_->inc(delta.maspar.scan_ops);
    maspar_route_ops_->inc(delta.maspar.route_ops);
    maspar_simulated_seconds_->add(delta.maspar_simulated_seconds);
  }
  if (b == Backend::Pram) pram_time_steps_->inc(delta.pram.time_steps);
  if (b == Backend::Mesh) {
    topo_time_steps_->inc(delta.topo_time_steps);
    topo_reduction_steps_->inc(delta.topo_reduction_steps);
  }
}

}  // namespace parsec::engine
