// Host-parallel PARSEC using OpenMP.
//
// The paper targets a SIMD array; on a modern shared-memory host the
// same data parallelism maps onto threads: binary constraints partition
// by arc (each thread owns disjoint matrices), unary constraints and
// consistency maintenance partition by role with pre-sweep semantics
// (support flags computed before any elimination, like the P-RAM
// engine), so the fixpoint is identical to the sequential parser's.
// Constraints are evaluated through the vectorized path (hoisted-
// predicate truth masks + bitwise row kernels) — masks are built once,
// serially, before each parallel sweep.  Falls back to single-threaded
// loops when built without OpenMP.
#pragma once

#include "cdg/network.h"
#include "cdg/parser.h"

namespace parsec::engine {

struct OmpOptions {
  /// Filtering sweep bound; <0 runs to fixpoint.
  int filter_iterations = -1;
  /// Thread count; 0 uses the OpenMP default.
  int threads = 0;
};

struct OmpResult {
  bool accepted = false;
  bool cancelled = false;  // CancelFn fired at an engine checkpoint
  int consistency_iterations = 0;
  int threads_used = 1;
  double seconds = 0.0;  // host wall-clock
};

class OmpParser {
 public:
  explicit OmpParser(const cdg::Grammar& g, OmpOptions opt = {});

  /// Parses `net` in place.  `cancel` (if non-empty) is polled at every
  /// engine checkpoint — before each unary/binary constraint and each
  /// filtering sweep — so a fired deadline aborts within one phase.
  OmpResult parse(cdg::Network& net, const cdg::CancelFn& cancel = {}) const;

  /// One parallel consistency sweep (pre-state support flags); returns
  /// role values eliminated.
  int consistency_sweep(cdg::Network& net) const;

 private:
  void apply_unary(cdg::Network& net, const cdg::FactoredConstraint& c) const;
  void apply_binary(cdg::Network& net, const cdg::FactoredConstraint& c,
                    std::size_t slot) const;

  const cdg::Grammar* grammar_;
  OmpOptions opt_;
  std::vector<cdg::FactoredConstraint> unary_;
  std::vector<cdg::FactoredConstraint> binary_;
};

}  // namespace parsec::engine
