#include "parsec/maspar_parser.h"

#include <bit>
#include <memory>
#include <stdexcept>
#include <utility>

#include "cdg/kernels.h"
#include "obs/trace.h"
#include "resil/fault_plan.h"

namespace parsec::engine {

using cdg::Binding;
using cdg::CompiledConstraint;
using cdg::EvalContext;
using cdg::FactoredConstraint;
using cdg::RoleValue;

MasparParse::MasparParse(const cdg::Grammar& g, const cdg::Sentence& s,
                         MasparOptions opt)
    : grammar_(&g),
      sentence_(s),
      layout_(g, s),
      machine_(layout_.vpes(), opt.physical_pes),
      opt_(opt),
      l_(layout_.labels_per_role()) {
  if (l_ > 8)
    throw std::invalid_argument(
        "MasPar kernel packs an l x l submatrix into 64 bits; grammars "
        "with more than 8 labels per role need a wider PE word");
  const int V = layout_.vpes();
  bits_.assign(static_cast<std::size_t>(V), 0);
  seg_arc_.resize(V);
  seg_slot_.resize(V);
  partner_.resize(V);
  active_.assign(static_cast<std::size_t>(V), 1);

  coords_.resize(V);
  // Each PE derives its coordinates and segment ids from its PE id
  // (design decision 2: no shared memory needed).
  machine_.simd(4, [&](int pe) {
    seg_arc_[pe] = layout_.seg_arc(pe);
    seg_slot_[pe] = layout_.seg_role_slot(pe);
    partner_[pe] = layout_.partner(pe);
    coords_[pe] = layout_.coord(pe);
  });
  // Role-value bindings per (role, mod slot), shared by every PE of the
  // slot (host-side cache of PE-local derivations).
  const int R = layout_.num_roles();
  const int M = layout_.mods_per_word();
  slot_bindings_.resize(static_cast<std::size_t>(R) * M);
  for (int a = 0; a < R; ++a) {
    const cdg::RoleId rid = layout_.role_id_of(a);
    const cdg::WordPos w = layout_.word_of_role(a);
    const auto& labs = layout_.labels_of(rid);
    for (int mx = 0; mx < M; ++mx) {
      auto& bind = slot_bindings_[static_cast<std::size_t>(a) * M + mx];
      const cdg::WordPos mod = layout_.mods_of_word(w)[mx];
      for (cdg::LabelId lab : labs)
        bind.push_back(Binding{RoleValue{lab, mod}, rid, w});
    }
  }
  // Disable self-arc PEs for the whole parse (Fig. 11).
  machine_.simd(1, [&](int pe) {
    if (layout_.diagonal(pe)) active_[pe] = 0;
  });
  machine_.push_enable(active_);

  // CN construction (Fig. 9): all-ones submatrices, restricted by the
  // table T and the words' lexical categories (which the ACU broadcast;
  // cost n scalar ops).
  machine_.acu(static_cast<std::uint64_t>(s.size()));
  machine_.simd(l_ * l_, [&](int pe) {
    const auto c = layout_.coord(pe);
    const cdg::RoleId ra = layout_.role_id_of(c.a);
    const cdg::RoleId rb = layout_.role_id_of(c.b);
    const cdg::CatId ca = sentence_.cat_at(layout_.word_of_role(c.a));
    const cdg::CatId cb = sentence_.cat_at(layout_.word_of_role(c.b));
    const auto& labs_a = layout_.labels_of(ra);
    const auto& labs_b = layout_.labels_of(rb);
    std::uint64_t w = 0;
    for (std::size_t i = 0; i < labs_a.size(); ++i) {
      if (!g.label_allowed(ra, ca, labs_a[i])) continue;
      for (std::size_t j = 0; j < labs_b.size(); ++j) {
        if (!g.label_allowed(rb, cb, labs_b[j])) continue;
        w |= std::uint64_t{1} << (static_cast<int>(i) * l_ +
                                  static_cast<int>(j));
      }
    }
    bits_[pe] = w;
  });
}

void MasparParse::apply_unary(const CompiledConstraint& c) {
  EvalContext ctx;
  ctx.sentence = &sentence_;
  // Every PE tests its l row role values and its l column role values
  // against the broadcast constraint, zeroing violating rows/columns of
  // its submatrix.  2*l evaluations + l*l potential bit clears.
  machine_.acu(1);  // broadcast the constraint
  const int M = layout_.mods_per_word();
  machine_.simd(2 * l_ + l_ * l_, [&](int pe) {
    const auto& co = coords_[pe];
    const auto& row_bind =
        slot_bindings_[static_cast<std::size_t>(co.a) * M + co.mx];
    const auto& col_bind =
        slot_bindings_[static_cast<std::size_t>(co.b) * M + co.my];
    std::uint64_t w = bits_[pe];
    for (std::size_t i = 0; i < row_bind.size(); ++i) {
      ctx.x = row_bind[i];
      if (!eval_compiled(c, ctx))
        w = cdg::kernels::zero_packed_row(w, static_cast<int>(i), l_);
    }
    for (std::size_t j = 0; j < col_bind.size(); ++j) {
      ctx.x = col_bind[j];
      if (!eval_compiled(c, ctx))
        w = cdg::kernels::zero_packed_col(w, static_cast<int>(j), l_);
    }
    bits_[pe] = w;
  });
}

void MasparParse::apply_binary(const CompiledConstraint& c) {
  EvalContext ctx;
  ctx.sentence = &sentence_;
  machine_.acu(1);  // broadcast the constraint
  const int M = layout_.mods_per_word();
  // 2*l*l evaluations per PE (both variable assignments per element).
  machine_.simd(2 * l_ * l_, [&](int pe) {
    std::uint64_t w = bits_[pe];
    if (!w) return;
    const auto& co = coords_[pe];
    const auto& row_bind =
        slot_bindings_[static_cast<std::size_t>(co.a) * M + co.mx];
    const auto& col_bind =
        slot_bindings_[static_cast<std::size_t>(co.b) * M + co.my];
    for (std::size_t i = 0; i < row_bind.size(); ++i) {
      for (std::size_t j = 0; j < col_bind.size(); ++j) {
        const int bit_idx = static_cast<int>(i) * l_ + static_cast<int>(j);
        if (!cdg::kernels::packed_test(w, static_cast<int>(i),
                                       static_cast<int>(j), l_))
          continue;
        ctx.x = row_bind[i];
        ctx.y = col_bind[j];
        bool ok = eval_compiled(c, ctx);
        if (ok) {
          ctx.x = col_bind[j];
          ctx.y = row_bind[i];
          ok = eval_compiled(c, ctx);
        }
        if (!ok) w &= ~(std::uint64_t{1} << bit_idx);
      }
    }
    bits_[pe] = w;
  });
}

void MasparParse::apply_unary(const FactoredConstraint& c) {
  // Vectorized form: the guard reads only (role v)/(pos v), so one host
  // evaluation per role stands in for the lockstep test every PE of the
  // role's slots would make; failing roles are vacuously satisfied and
  // skip the per-value residual entirely.  SIMD op charges are those of
  // the plain kernel — the PE array performs the same phase either way.
  const int R = layout_.num_roles();
  const int M = layout_.mods_per_word();
  std::vector<std::uint8_t> guard_pass(static_cast<std::size_t>(R), 1);
  if (!c.unary_guard.code.empty()) {
    for (int a = 0; a < R; ++a) {
      const Binding b{RoleValue{}, layout_.role_id_of(a),
                      layout_.word_of_role(a)};
      guard_pass[static_cast<std::size_t>(a)] =
          eval_hoisted(c.unary_guard, sentence_, b) ? 1 : 0;
    }
  }
  EvalContext ctx;
  ctx.sentence = &sentence_;
  machine_.acu(1);  // broadcast the constraint
  machine_.simd(2 * l_ + l_ * l_, [&](int pe) {
    const auto& co = coords_[pe];
    std::uint64_t w = bits_[pe];
    if (guard_pass[static_cast<std::size_t>(co.a)]) {
      const auto& row_bind =
          slot_bindings_[static_cast<std::size_t>(co.a) * M + co.mx];
      for (std::size_t i = 0; i < row_bind.size(); ++i) {
        ctx.x = row_bind[i];
        if (!eval_compiled(c.unary_rest, ctx))
          w = cdg::kernels::zero_packed_row(w, static_cast<int>(i), l_);
      }
    }
    if (guard_pass[static_cast<std::size_t>(co.b)]) {
      const auto& col_bind =
          slot_bindings_[static_cast<std::size_t>(co.b) * M + co.my];
      for (std::size_t j = 0; j < col_bind.size(); ++j) {
        ctx.x = col_bind[j];
        if (!eval_compiled(c.unary_rest, ctx))
          w = cdg::kernels::zero_packed_col(w, static_cast<int>(j), l_);
      }
    }
    bits_[pe] = w;
  });
}

void MasparParse::apply_binary(const FactoredConstraint& c) {
  EvalContext ctx;
  ctx.sentence = &sentence_;
  machine_.acu(1);  // broadcast the constraint
  const int R = layout_.num_roles();
  const int M = layout_.mods_per_word();
  const std::size_t S = static_cast<std::size_t>(R) * M;
  // Hoisted-part truth bits per (role, mod slot, label slot), expanded
  // into packed l*l row masks (value as the row side) and column masks
  // (value as the column side): the MasPar counterpart of the word-
  // level MaskCache.
  const CompiledConstraint* parts[4] = {&c.ante_x, &c.ante_y, &c.cons_x,
                                        &c.cons_y};
  std::vector<std::uint64_t> rowm[4], colm[4];
  for (auto& v : rowm) v.assign(S, 0);
  for (auto& v : colm) v.assign(S, 0);
  for (std::size_t s = 0; s < S; ++s) {
    const auto& bind = slot_bindings_[s];
    for (std::size_t i = 0; i < bind.size(); ++i) {
      for (int p = 0; p < 4; ++p) {
        if (eval_hoisted(*parts[p], sentence_, bind[i])) {
          rowm[p][s] |= cdg::kernels::packed_row_mask(static_cast<int>(i), l_);
          colm[p][s] |= cdg::kernels::packed_col_mask(static_cast<int>(i), l_);
        }
      }
    }
  }
  const std::uint64_t full_bits =
      l_ * l_ >= 64 ? ~std::uint64_t{0}
                    : (std::uint64_t{1} << (l_ * l_)) - 1;
  // 2*l*l evaluations per PE (both variable assignments per element) —
  // the abstract machine's charge, independent of how many elements the
  // masks decide host-side.
  machine_.simd(2 * l_ * l_, [&](int pe) {
    std::uint64_t w = bits_[pe];
    if (!w) return;
    // One live PE submatrix word = one packed tile sweep, the l*l
    // counterpart of the host kernels' row tiles (folded into
    // NetworkCounters by run_backend).
    ++tile_sweeps_;
    ++lane_words_;
    const auto& co = coords_[pe];
    const std::size_t sr = static_cast<std::size_t>(co.a) * M + co.mx;
    const std::size_t sc = static_cast<std::size_t>(co.b) * M + co.my;
    const std::uint64_t AXR = rowm[0][sr], AYR = rowm[1][sr];
    const std::uint64_t CXR = rowm[2][sr], CYR = rowm[3][sr];
    const std::uint64_t AXC = colm[0][sc], AYC = colm[1][sc];
    const std::uint64_t CXC = colm[2][sc], CYC = colm[3][sc];
    // Same three-valued decision as kernels::sweep_binary_masked, per
    // packed element (i, j).  Direction 1 binds x to the row value.
    const std::uint64_t keep1 =
        ~AXR | ~AYC | (c.cons_residual ? 0 : (CXR & CYC));
    const std::uint64_t kill1 =
        c.ante_residual ? 0 : (AXR & AYC & (~CXR | ~CYC));
    // Direction 2 binds x to the column value.
    const std::uint64_t keep2 =
        ~AXC | ~AYR | (c.cons_residual ? 0 : (CXC & CYR));
    const std::uint64_t kill2 =
        c.ante_residual ? 0 : (AXC & AYR & (~CXC | ~CYR));
    const std::uint64_t kill = (kill1 | kill2) & full_bits;
    const std::uint64_t keep = keep1 & keep2;
    std::uint64_t undecided = w & ~kill & ~keep;
    w &= ~kill;
    const auto& row_bind = slot_bindings_[sr];
    const auto& col_bind = slot_bindings_[sc];
    while (undecided) {
      const int bit = std::countr_zero(undecided);
      undecided &= undecided - 1;
      const std::size_t i = static_cast<std::size_t>(bit / l_);
      const std::size_t j = static_cast<std::size_t>(bit % l_);
      ctx.x = row_bind[i];
      ctx.y = col_bind[j];
      bool ok = eval_compiled(c.full, ctx);
      if (ok) {
        std::swap(ctx.x, ctx.y);
        ok = eval_compiled(c.full, ctx);
      }
      if (!ok) w &= ~(std::uint64_t{1} << bit);
    }
    bits_[pe] = w;
  });
}

bool MasparParse::consistency_iteration() {
  const int V = layout_.vpes();
  // Support bits per label slot, gathered across the l scan passes
  // (Fig. 13: "the functions must be repeated [l] times, once for each
  // of the labels allowed in the role").
  std::vector<std::vector<std::uint8_t>> support(
      static_cast<std::size_t>(l_));
  std::vector<std::vector<std::uint8_t>> col_support(
      static_cast<std::size_t>(l_));

  for (int lab = 0; lab < l_; ++lab) {
    // Local OR of submatrix row `lab` (l bit tests).
    std::vector<std::uint8_t> row_or(static_cast<std::size_t>(V), 0);
    machine_.simd(l_, [&](int pe) {
      row_or[pe] =
          (bits_[pe] & cdg::kernels::packed_row_mask(lab, l_)) ? 1 : 0;
    });
    // Arc OR via scanOr over the (a, mx, b) segment (Fig. 12 upper).
    std::vector<std::uint8_t> arc_or = machine_.seg_or(row_or, seg_arc_);
    // Support via scanAnd over the (a, mx) role slot (Fig. 12 lower);
    // self-arc PEs are disabled and therefore transparent.
    support[lab] = machine_.seg_and(arc_or, seg_slot_);
    // Column-side support from the transposed partner PE (router).
    col_support[lab] = machine_.gather(support[lab], partner_);
  }

  // Zero rows/columns of dead role values and report whether anything
  // changed (global scanOr read back by the ACU).
  std::vector<std::uint8_t> changed(static_cast<std::size_t>(V), 0);
  machine_.simd(2 * l_ * l_, [&](int pe) {
    std::uint64_t w = bits_[pe];
    const std::uint64_t before = w;
    for (int lab = 0; lab < l_; ++lab) {
      if (!support[lab][pe]) w = cdg::kernels::zero_packed_row(w, lab, l_);
      if (!col_support[lab][pe]) w = cdg::kernels::zero_packed_col(w, lab, l_);
    }
    bits_[pe] = w;
    changed[pe] = (w != before) ? 1 : 0;
  });
  std::vector<int> whole_array(static_cast<std::size_t>(V), 0);
  std::vector<std::uint8_t> any = machine_.seg_or(changed, whole_array);
  machine_.acu(1);  // ACU reads the flag
  for (int pe = 0; pe < V; ++pe)
    if (machine_.is_enabled(pe)) return any[pe] != 0;
  return false;
}

MasparResult MasparParse::filter_and_finish(const cdg::CancelFn& cancel,
                                            bool already_cancelled) {
  MasparResult r;
  r.cancelled = already_cancelled;
  int iters = 0;
  {
    obs::Span span("maspar.filter");
    const maspar::MachineStats before = machine_.stats();
    while (!r.cancelled &&
           (opt_.filter_iterations < 0 || iters < opt_.filter_iterations)) {
      if (resil::checkpoint(cancel)) {
        r.cancelled = true;
        break;
      }
      ++iters;
      if (!consistency_iteration()) break;
    }
    if (span.active()) {
      const maspar::MachineStats after = machine_.stats();
      span.arg("iterations", iters);
      span.arg("plural_ops", after.plural_ops - before.plural_ops);
      span.arg("scan_ops", after.scan_ops - before.scan_ops);
      span.arg("route_ops", after.route_ops - before.route_ops);
    }
  }
  r.consistency_iterations = iters;
  r.accepted = !r.cancelled && accepted();
  r.vpes = layout_.vpes();
  r.virt_factor = machine_.virt_factor();
  r.stats = machine_.stats();
  r.tile_sweeps = tile_sweeps_;
  r.lane_words = lane_words_;
  r.simulated_seconds = maspar::CostModel::mp1().seconds(machine_);
  return r;
}

MasparResult MasparParse::run(
    const std::vector<CompiledConstraint>& unary,
    const std::vector<CompiledConstraint>& binary,
    const cdg::CancelFn& cancel) {
  bool aborted = false;
  {
    obs::Span span("maspar.unary");
    for (const auto& c : unary) {
      if (resil::checkpoint(cancel)) {
        aborted = true;
        break;
      }
      apply_unary(c);
    }
  }
  {
    obs::Span span("maspar.binary");
    for (const auto& c : binary) {
      if (aborted) break;
      if (resil::checkpoint(cancel)) {
        aborted = true;
        break;
      }
      apply_binary(c);
    }
  }
  return filter_and_finish(cancel, aborted);
}

MasparResult MasparParse::run(
    const std::vector<FactoredConstraint>& unary,
    const std::vector<FactoredConstraint>& binary,
    const cdg::CancelFn& cancel) {
  bool aborted = false;
  {
    obs::Span span("maspar.unary");
    const maspar::MachineStats before = machine_.stats();
    for (const auto& c : unary) {
      if (resil::checkpoint(cancel)) {
        aborted = true;
        break;
      }
      apply_unary(c);
    }
    if (span.active())
      span.arg("plural_ops", machine_.stats().plural_ops - before.plural_ops);
  }
  {
    obs::Span span("maspar.binary");
    const maspar::MachineStats before = machine_.stats();
    for (const auto& c : binary) {
      if (aborted) break;
      if (resil::checkpoint(cancel)) {
        aborted = true;
        break;
      }
      apply_binary(c);
    }
    if (span.active())
      span.arg("plural_ops", machine_.stats().plural_ops - before.plural_ops);
  }
  return filter_and_finish(cancel, aborted);
}

bool MasparParse::supported(int role, RoleValue rv) const {
  const int ms = layout_.mod_slot(layout_.word_of_role(role), rv.mod);
  const int ls = layout_.label_slot(layout_.role_id_of(role), rv.label);
  if (ms < 0 || ls < 0) return false;
  const int R = layout_.num_roles();
  bool all = true;
  for (int b = 0; b < R && all; ++b) {
    if (b == role) continue;
    bool arc_ok = false;
    for (int my = 0; my < layout_.mods_per_word() && !arc_ok; ++my) {
      const std::uint64_t w =
          bits_[static_cast<std::size_t>(layout_.vpe(role, ms, b, my))];
      if (w & cdg::kernels::packed_row_mask(ls, l_)) arc_ok = true;
    }
    if (!arc_ok) all = false;
  }
  return all;
}

std::vector<util::DynBitset> MasparParse::domains() const {
  const int R = layout_.num_roles();
  const cdg::RvIndexer idx(layout_.n(), grammar_->num_labels());
  std::vector<util::DynBitset> out(
      static_cast<std::size_t>(R),
      util::DynBitset(static_cast<std::size_t>(idx.domain_size())));
  for (int role = 0; role < R; ++role) {
    const cdg::RoleId rid = layout_.role_id_of(role);
    const cdg::WordPos w = layout_.word_of_role(role);
    for (cdg::LabelId lab : layout_.labels_of(rid)) {
      for (cdg::WordPos m : layout_.mods_of_word(w)) {
        if (supported(role, RoleValue{lab, m}))
          out[role].set(static_cast<std::size_t>(
              idx.encode(RoleValue{lab, m})));
      }
    }
  }
  return out;
}

bool MasparParse::arc_entry(int role_a, RoleValue a, int role_b,
                            RoleValue b) const {
  const int ms = layout_.mod_slot(layout_.word_of_role(role_a), a.mod);
  const int my = layout_.mod_slot(layout_.word_of_role(role_b), b.mod);
  const int li = layout_.label_slot(layout_.role_id_of(role_a), a.label);
  const int lj = layout_.label_slot(layout_.role_id_of(role_b), b.label);
  if (ms < 0 || my < 0 || li < 0 || lj < 0 || role_a == role_b) return false;
  const std::uint64_t w =
      bits_[static_cast<std::size_t>(layout_.vpe(role_a, ms, role_b, my))];
  return cdg::kernels::packed_test(w, li, lj, l_);
}

bool MasparParse::accepted() const {
  const int R = layout_.num_roles();
  for (int role = 0; role < R; ++role) {
    bool nonempty = false;
    const cdg::RoleId rid = layout_.role_id_of(role);
    const cdg::WordPos w = layout_.word_of_role(role);
    for (cdg::LabelId lab : layout_.labels_of(rid)) {
      for (cdg::WordPos m : layout_.mods_of_word(w)) {
        if (supported(role, RoleValue{lab, m})) {
          nonempty = true;
          break;
        }
      }
      if (nonempty) break;
    }
    if (!nonempty) return false;
  }
  return true;
}

MasparParser::MasparParser(const cdg::Grammar& g, MasparOptions opt)
    : grammar_(&g),
      opt_(opt),
      unary_(factor_all(g.unary_constraints())),
      binary_(factor_all(g.binary_constraints())) {}

MasparResult MasparParser::parse(const cdg::Sentence& s) const {
  std::unique_ptr<MasparParse> scratch;
  return parse(s, scratch);
}

MasparResult MasparParser::parse(const cdg::Sentence& s,
                                 std::unique_ptr<MasparParse>& out,
                                 const cdg::CancelFn& cancel) const {
  out = std::make_unique<MasparParse>(*grammar_, s, opt_);
  return out->run(unary_, binary_, cancel);
}

}  // namespace parsec::engine
