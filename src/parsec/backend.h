// Uniform backend selection over the PARSEC engines.
//
// The engines (sequential CDG, OpenMP host-parallel, CRCW P-RAM,
// simulated MasPar) expose different option/result types; callers that
// pick an engine per request — the CLI, the parse service, the
// throughput bench — want one enum, one compiled-parser bundle, and one
// outcome shape.  All engines reach the same fixpoint under unbounded
// filtering (support removal is confluent; the equivalence tests verify
// bit-equality), so `BackendRun::domains_hash` is backend-independent
// for a given sentence and is the service's bit-identity check.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cdg/ac4.h"
#include "cdg/batch.h"
#include "cdg/network.h"
#include "cdg/parser.h"
#include "obs/metrics.h"
#include "parsec/maspar_parser.h"
#include "parsec/mesh_parser.h"
#include "parsec/omp_parser.h"
#include "parsec/pram_parser.h"

namespace parsec::engine {

enum class Backend { Serial, Omp, Pram, Maspar, Mesh };

inline constexpr Backend kAllBackends[] = {Backend::Serial, Backend::Omp,
                                           Backend::Pram, Backend::Maspar,
                                           Backend::Mesh};
inline constexpr std::size_t kNumBackends = 5;

const char* to_string(Backend b);
std::optional<Backend> backend_from_name(std::string_view name);

/// Per-backend work counters rolled up across requests (serve's
/// ServiceStats aggregates one of these per backend).
struct BackendStats {
  std::uint64_t requests = 0;
  std::uint64_t accepted = 0;
  std::uint64_t cancelled = 0;
  /// Requests that ended in a thrown fault (injected or genuine); the
  /// serve layer counts the request here when the worker boundary
  /// degrades the exception to RequestStatus::Faulted.
  std::uint64_t faulted = 0;
  /// Host network work (serial / omp / pram run on a cdg::Network).
  cdg::NetworkCounters network;
  std::uint64_t consistency_iterations = 0;
  /// P-RAM step model (pram backend only).
  pram::StepStats pram;
  /// MasPar machine activity + calibrated time (maspar backend only).
  maspar::MachineStats maspar;
  double maspar_simulated_seconds = 0.0;
  /// Topology step model (mesh backend only).
  std::uint64_t topo_time_steps = 0;
  std::uint64_t topo_elementwise_steps = 0;
  std::uint64_t topo_reduction_steps = 0;

  BackendStats& operator+=(const BackendStats& o);
};

/// Pool of constraint networks keyed by (grammar, sentence length):
/// `acquire` reuses (via Network::reinit) the network — and with it the
/// whole backing arena — built for the last same-shape sentence, so
/// steady-state parsing of a workload with repeating lengths allocates
/// nothing.  Keying by grammar identity (not just length) lets one
/// worker serve many tenants without thrashing the pool when requests
/// alternate between grammars; `purge(&grammar)` releases the networks
/// of a retired grammar snapshot after a hot reload.
class NetworkScratch {
 public:
  cdg::Network& acquire(const cdg::Grammar& g, const cdg::Sentence& s,
                        cdg::NetworkOptions opt = {});

  /// Drops every pooled network built against `g` (call after the
  /// grammar snapshot is retired; pooled networks hold references into
  /// their grammar, so they must not outlive it).
  void purge(const cdg::Grammar* g);

  std::size_t pooled_shapes() const { return by_shape_.size(); }
  std::uint64_t reuses() const { return reuses_; }

  /// Total bytes of the pooled arena allocations (bench_memory reports
  /// these against the paper's PE-memory table).
  std::size_t arena_bytes() const;
  /// Backing-buffer (re)allocations across all pooled arenas.
  std::uint64_t arena_allocations() const;
  /// Same-shape arena reuses across all pooled arenas.
  std::uint64_t arena_reinits() const;

 private:
  /// One pooled network per (grammar instance, sentence length).
  struct ShapeKey {
    const cdg::Grammar* grammar = nullptr;
    int length = 0;
    bool operator==(const ShapeKey&) const = default;
  };
  struct ShapeKeyHash {
    std::size_t operator()(const ShapeKey& k) const {
      return std::hash<const void*>()(k.grammar) ^
             (std::hash<int>()(k.length) * 0x9e3779b97f4a7c15ull);
    }
  };
  std::unordered_map<ShapeKey, cdg::Network, ShapeKeyHash> by_shape_;
  std::uint64_t reuses_ = 0;
};

/// One compiled parser per backend for a grammar.  Construction compiles
/// every constraint set once; the set is immutable afterwards and safe
/// to share across threads (each parse mutates only its own network).
struct EngineSetOptions {
  EngineSetOptions() {
    // Inside a thread-pool worker one request = one thread: the OpenMP
    // engine must not spawn a nested team, and the MasPar engine runs
    // filtering to the fixpoint so its result is bit-identical to the
    // serial parser's.
    omp.threads = 1;
    maspar.filter_iterations = -1;
  }
  cdg::ParseOptions serial;
  /// Serial backend filters with AC-4 support counters instead of
  /// sweep-to-fixpoint (same fixpoint; O(n^4) total instead of per
  /// sweep; the counters live in the network's arena).
  bool serial_ac4 = false;
  OmpOptions omp;
  PramOptions pram;
  MasparOptions maspar;
  /// Mesh backend: the 2-D mesh topology model (Fig. 8 column), run to
  /// the fixpoint so its result is bit-identical to the other engines.
  int mesh_filter_iterations = -1;
};

class EngineSet {
 public:
  explicit EngineSet(const cdg::Grammar& g, EngineSetOptions opt = {});

  const cdg::Grammar& grammar() const { return *grammar_; }
  const cdg::SequentialParser& serial() const { return serial_; }
  const OmpParser& omp() const { return omp_; }
  const PramParser& pram() const { return pram_; }
  const MasparParser& maspar() const { return maspar_; }
  const TopologyParser& mesh() const { return mesh_; }
  const EngineSetOptions& options() const { return opt_; }

 private:
  const cdg::Grammar* grammar_;
  EngineSetOptions opt_;
  cdg::SequentialParser serial_;
  OmpParser omp_;
  PramParser pram_;
  MasparParser maspar_;
  TopologyParser mesh_;
};

/// Outcome of one sentence on one backend.
struct BackendRun {
  bool cancelled = false;  // CancelFn fired at an engine checkpoint
                           // (all five backends poll mid-parse)
  bool accepted = false;
  std::size_t alive_role_values = 0;
  /// FNV-1a over the final domain bitsets; equal across backends at the
  /// fixpoint, equal across runs (bit-determinism).
  std::uint64_t domains_hash = 0;
  /// Final domains, captured only on request (they are O(n^2) bits).
  std::vector<util::DynBitset> domains;
  BackendStats stats;  // this run's contribution
};

/// FNV-1a over domain sizes and words.
std::uint64_t hash_domains(const std::vector<util::DynBitset>& domains);

/// Same hash computed directly over a network's arena-backed domain
/// spans — no per-request domain copies on the serve hot path.
std::uint64_t hash_domains(const cdg::Network& net);

/// FNV-1a over a tagged sentence (words + chosen categories).  The
/// serve layer's parse-result cache keys on this: two requests with the
/// same hash under the same grammar epoch reach the same fixpoint, so
/// the cached response is bit-identical to a fresh parse.
std::uint64_t hash_sentence(const cdg::Sentence& s);

/// Parses `s` on backend `b`.  `scratch` (if non-null) supplies the
/// reusable network pool (networks + arenas + AC-4 counter storage);
/// `cancel` (if non-empty) aborts — every backend polls it at its
/// engine checkpoints (before each constraint and each filtering
/// sweep), so a fired deadline stops work within one fixpoint sweep.
/// `capture_domains` copies the final domains into the result.
///
/// Faults (resil::InjectedFault from an armed fault plan, or genuine
/// grammar/machine exceptions) propagate to the caller; the serve
/// layer degrades them to RequestStatus::Faulted at its worker
/// boundary.
///
/// Thread-safety: `engines` is read-only here and may be shared across
/// concurrent callers; `scratch` is mutated and must NOT be shared —
/// one NetworkScratch per worker thread (the serve layer keeps one per
/// pool thread).  Under an active obs::TraceSession the whole call is
/// wrapped in a `backend.<name>` span carrying the run's cost counters
/// (effective unary/binary evals; router scans and ACU broadcasts on
/// the MasPar backend) as span args.
BackendRun run_backend(const EngineSet& engines, Backend b,
                       const cdg::Sentence& s,
                       NetworkScratch* scratch = nullptr,
                       const cdg::CancelFn& cancel = {},
                       bool capture_domains = false);

/// Parses up to cdg::BatchParser::kLanes same-length sentences in one
/// SoA lane batch (see cdg/batch.h) and splits the outcome back into
/// one BackendRun per sentence, in input order.  Each run's
/// `domains_hash` is bit-identical to a Serial `run_backend` of that
/// sentence alone (confluence); its cost counters reflect the lockstep
/// batch schedule, so they are >= the sequential counters.  Wrapped in
/// a `backend.batch` span carrying lane count and per-batch tile/lane
/// totals.  `parser` is mutated (its interleaved buffers are the batch
/// arena) and must not be shared across threads.
std::vector<BackendRun> run_backend_batch(
    cdg::BatchParser& parser, std::span<const cdg::Sentence> sentences,
    bool capture_domains = false);

/// Publishes per-run BackendStats deltas into an obs::Registry as the
/// Prometheus metrics documented in docs/OBSERVABILITY.md
/// (`parsec_requests_total{backend,status}`, the cost-counter
/// families, and the `parsec_parse_duration_seconds` histogram).
///
/// Handles are resolved once, in the constructor, under the registry
/// mutex; `publish()` is lock-free and safe to call concurrently from
/// any number of threads.  The registry must outlive the publisher
/// (the default, `obs::Registry::global()`, lives for the process).
/// ParseService owns one; the benches construct their own when
/// `--metrics-out` is given.
class StatsPublisher {
 public:
  explicit StatsPublisher(obs::Registry* registry = &obs::Registry::global());

  /// Adds one run's contribution under its backend's labels.
  /// `delta` must be a single-run delta (as in BackendRun::stats), not
  /// a running total.  `seconds` (when >= 0) is observed in the
  /// per-backend latency histogram.
  void publish(Backend b, const BackendStats& delta, double seconds = -1.0);

 private:
  struct PerBackend {
    // Disjoint outcomes of parsec_requests_total{status=...}: every
    // completed request increments exactly one.
    obs::Counter* accepted;
    obs::Counter* rejected;
    obs::Counter* cancelled;
    obs::Counter* faulted;
    obs::Counter* effective_unary_evals;
    obs::Counter* effective_binary_evals;
    obs::Counter* masked_binary_pairs;
    obs::Counter* mask_build_evals;
    obs::Counter* eliminations;
    obs::Counter* arc_zeroings;
    obs::Counter* support_checks;
    obs::Counter* consistency_iterations;
    // SIMD kernel activity (tier-independent work counters; see
    // cdg/kernels.h).
    obs::Counter* simd_tile_sweeps;
    obs::Counter* simd_lane_words;
    obs::Histogram* latency;
  };
  PerBackend per_backend_[kNumBackends];
  // Backend-specific machine counters.
  obs::Counter* maspar_plural_ops_;
  obs::Counter* maspar_scan_ops_;
  obs::Counter* maspar_route_ops_;
  obs::Gauge* maspar_simulated_seconds_;
  obs::Counter* pram_time_steps_;
  obs::Counter* topo_time_steps_;
  obs::Counter* topo_reduction_steps_;
};

}  // namespace parsec::engine
