#include "parsec/pram_parser.h"

#include <algorithm>

#include "cdg/kernels.h"
#include "obs/trace.h"
#include "resil/fault_plan.h"

namespace parsec::engine {

using cdg::FactoredConstraint;
using cdg::Network;

PramParser::PramParser(const cdg::Grammar& g, PramOptions opt)
    : grammar_(&g),
      opt_(opt),
      unary_(factor_all(g.unary_constraints())),
      binary_(factor_all(g.binary_constraints())) {}

void PramParser::apply_unary_parallel(Network& net, pram::Machine& m,
                                      const FactoredConstraint& c) const {
  const int R = net.num_roles();
  const int D = net.domain_size();
  net.refresh_alive_cache();
  // One step, one processor per alive role value: test the constraint.
  // The evaluation itself runs host-side through the shared masked
  // unary kernel; the step model only needs the processor count (which
  // reflects the abstract machine, not the host-side shortcut).
  auto victim = net.arena().rv_flags();
  std::fill(victim.begin(), victim.end(), std::uint8_t{0});
  m.for_all(net.alive_cache_total(), [](std::size_t) {});
  for (int role = 0; role < R; ++role) {
    cdg::kernels::propagate_unary_masked(
        c, net.sentence(), net.indexer(), net.role_id_of(role),
        net.word_of_role(role), net.domain(role),
        victim.subspan(static_cast<std::size_t>(role) * D, D),
        cdg::kernels::MaskedCounters{});
  }
  // One step, O(n^2) processors per victim: zero its rows/columns and
  // clear the domain bit (the writes are to disjoint or identically-
  // valued cells, so Common CRCW holds).
  std::size_t zero_procs = 0;
  for (std::size_t i = 0; i < victim.size(); ++i)
    if (victim[i])
      zero_procs += static_cast<std::size_t>(R - 1) *
                    static_cast<std::size_t>(D);
  m.for_all(std::max<std::size_t>(zero_procs, 1), [](std::size_t) {});
  std::vector<int> victims;
  for (int role = 0; role < R; ++role) {
    victims.clear();
    for (int rv = 0; rv < D; ++rv)
      if (victim[static_cast<std::size_t>(role) * D + rv])
        victims.push_back(rv);
    net.eliminate_batch(role, victims);
  }
}

void PramParser::apply_binary_parallel(Network& net, pram::Machine& m,
                                       const FactoredConstraint& c,
                                       std::size_t slot) const {
  net.build_arcs();
  // One parallel step, one processor per arc element (pair of alive
  // role values on an arc): O(n^4) processors.
  net.refresh_alive_cache();
  const int R = net.num_roles();
  std::size_t pairs = 0;
  for (int a = 0; a < R; ++a)
    for (int b = a + 1; b < R; ++b)
      pairs += net.alive_list(a).size() * net.alive_list(b).size();

  m.for_all(std::max<std::size_t>(pairs, 1), [](std::size_t) {});
  // The actual evaluation (performed host-side through the masked
  // sweep, but each pair decided independently, exactly as the step
  // models).
  net.ensure_masks(c, slot);
  cdg::NetworkArena& arena = net.arena();
  // Tile accounting only: the VM/masked-pair charges stay with the step
  // model's processor counts (the PRAM cost story), but the host-side
  // tile sweeps are real work the SIMD layer performed and the perf
  // gate pins them per backend.
  cdg::kernels::MaskedCounters mc;
  mc.tile_sweeps = &net.counters().tile_sweeps;
  mc.lane_words = &net.counters().simd_lane_words;
  std::size_t zeroed = 0;
  for (int a = 0; a < R; ++a) {
    const cdg::kernels::FactoredMasks ma = net.masks(slot, a);
    for (int b = a + 1; b < R; ++b) {
      zeroed += static_cast<std::size_t>(cdg::kernels::sweep_binary_masked(
          c, net.sentence(), arena.arc(a, b), net.domain(a), ma,
          net.role_id_of(a), net.word_of_role(a), net.masks(slot, b),
          net.role_id_of(b), net.word_of_role(b), net.indexer(), mc));
    }
  }
  net.counters().arc_zeroings += zeroed;
  if (zeroed) arena.set_counts_valid(false);
}

int PramParser::parallel_consistency_step(Network& net,
                                          pram::Machine& m) const {
  net.build_arcs();
  const int R = net.num_roles();
  net.refresh_alive_cache();
  // Support of every alive role value, all computed from the pre-sweep
  // state.  On the CRCW machine this is: one step of concurrent-write
  // ORs over each row/column (O(n^2) cells per role value), one step of
  // ANDs — constant time with one processor per arc element.  Host-side
  // the same bits come from the word-parallel support masks (one
  // arena-scratch row per role, all filled before any elimination).
  const std::size_t or_procs =
      net.alive_cache_total() * static_cast<std::size_t>(R - 1) *
      static_cast<std::size_t>(net.domain_size());
  m.for_all(std::max<std::size_t>(or_procs, 1), [](std::size_t) {});
  m.for_all(std::max<std::size_t>(net.alive_cache_total(), 1),
            [](std::size_t) {});
  for (int role = 0; role < R; ++role) net.support_mask(role);
  // One zeroing step for all victims simultaneously.
  m.for_all(std::max<std::size_t>(or_procs, 1), [](std::size_t) {});
  int eliminated = 0;
  std::vector<int> victims;
  for (int role = 0; role < R; ++role) {
    // Extract victims from the pre-state mask before eliminate_batch
    // clobbers this role's scratch row.
    victims.clear();
    const util::ConstBitSpan sup =
        static_cast<const cdg::NetworkArena&>(net.arena())
            .support_scratch(role);
    net.domain(role).for_each([&](std::size_t rv) {
      if (!sup.test(rv)) victims.push_back(static_cast<int>(rv));
    });
    eliminated += net.eliminate_batch(role, victims);
  }
  return eliminated;
}

PramResult PramParser::parse(Network& net, const cdg::CancelFn& cancel) const {
  pram::Machine m(opt_.write_mode);
  // Role-value generation: constant steps, O(n^2) processors (§2.1).
  m.for_all(static_cast<std::size_t>(net.num_roles()) *
                static_cast<std::size_t>(net.domain_size()),
            [](std::size_t) {});
  net.build_arcs();

  PramResult r;
  {
    obs::Span span("pram.unary");
    for (const auto& c : unary_) {
      if (resil::checkpoint(cancel)) {
        r.cancelled = true;
        break;
      }
      apply_unary_parallel(net, m, c);
    }
  }
  {
    obs::Span span("pram.binary");
    for (std::size_t i = 0; !r.cancelled && i < binary_.size(); ++i) {
      if (resil::checkpoint(cancel)) {
        r.cancelled = true;
        break;
      }
      apply_binary_parallel(net, m, binary_[i], i);
    }
  }

  // Consistency maintenance + filtering.
  int iters = 0;
  {
    obs::Span span("pram.filter");
    while (!r.cancelled &&
           (opt_.filter_iterations < 0 || iters < opt_.filter_iterations)) {
      if (resil::checkpoint(cancel)) {
        r.cancelled = true;
        break;
      }
      ++iters;
      if (parallel_consistency_step(net, m) == 0) break;
    }
    span.arg("iterations", iters);
    span.arg("time_steps", m.stats().time_steps);
  }
  r.consistency_iterations = iters;
  // Acceptance test: one CRCW AND over roles.
  r.accepted = !r.cancelled &&
               m.global_and(static_cast<std::size_t>(net.num_roles()),
                            [&](std::size_t role) {
                              return net.domain(static_cast<int>(role)).any();
                            });
  r.stats = m.stats();
  return r;
}

}  // namespace parsec::engine
