#include "parsec/pram_parser.h"

namespace parsec::engine {

using cdg::CompiledConstraint;
using cdg::EvalContext;
using cdg::Network;

PramParser::PramParser(const cdg::Grammar& g, PramOptions opt)
    : grammar_(&g),
      opt_(opt),
      unary_(compile_all(g.unary_constraints())),
      binary_(compile_all(g.binary_constraints())) {}

namespace {

/// Dense (role, rv) enumeration of currently-alive role values.
struct AliveIndex {
  std::vector<int> role;
  std::vector<int> rv;
  explicit AliveIndex(const Network& net) {
    for (int r = 0; r < net.num_roles(); ++r)
      net.domain(r).for_each([&](std::size_t v) {
        role.push_back(r);
        rv.push_back(static_cast<int>(v));
      });
  }
  std::size_t size() const { return role.size(); }
};

}  // namespace

void PramParser::apply_unary_parallel(Network& net, pram::Machine& m,
                                      const CompiledConstraint& c) const {
  AliveIndex idx(net);
  EvalContext ctx;
  ctx.sentence = &net.sentence();
  // One step, one processor per role value: test the constraint.
  std::vector<std::uint8_t> victim(idx.size(), 0);
  m.for_all(idx.size(), [&](std::size_t i) {
    ctx.x = net.binding(idx.role[i], idx.rv[i]);
    if (!eval_compiled(c, ctx)) victim[i] = 1;
  });
  // One step, O(n^2) processors per victim: zero its rows/columns and
  // clear the domain bit (the writes are to disjoint or identically-
  // valued cells, so Common CRCW holds).
  std::size_t zero_procs = 0;
  for (std::size_t i = 0; i < idx.size(); ++i)
    if (victim[i])
      zero_procs += static_cast<std::size_t>(net.num_roles() - 1) *
                    static_cast<std::size_t>(net.domain_size());
  m.for_all(std::max<std::size_t>(zero_procs, 1), [](std::size_t) {});
  for (std::size_t i = 0; i < idx.size(); ++i)
    if (victim[i]) net.eliminate(idx.role[i], idx.rv[i]);
}

void PramParser::apply_binary_parallel(Network& net, pram::Machine& m,
                                       const CompiledConstraint& c) const {
  net.build_arcs();
  EvalContext ctx;
  ctx.sentence = &net.sentence();
  // One parallel step, one processor per arc element (pair of alive
  // role values on an arc): O(n^4) processors.
  std::vector<std::vector<int>> alive(net.num_roles());
  std::vector<std::vector<cdg::Binding>> bind(net.num_roles());
  for (int r = 0; r < net.num_roles(); ++r)
    net.domain(r).for_each([&](std::size_t v) {
      alive[r].push_back(static_cast<int>(v));
      bind[r].push_back(net.binding(r, static_cast<int>(v)));
    });
  std::size_t pairs = 0;
  for (int a = 0; a < net.num_roles(); ++a)
    for (int b = a + 1; b < net.num_roles(); ++b)
      pairs += alive[a].size() * alive[b].size();

  m.for_all(std::max<std::size_t>(pairs, 1), [](std::size_t) {});
  // The actual evaluation (performed sequentially here, but each pair
  // independently, exactly as the step models).
  for (int a = 0; a < net.num_roles(); ++a) {
    for (int b = a + 1; b < net.num_roles(); ++b) {
      for (std::size_t i = 0; i < alive[a].size(); ++i) {
        for (std::size_t j = 0; j < alive[b].size(); ++j) {
          if (!net.arc_allows(a, alive[a][i], b, alive[b][j])) continue;
          ctx.x = bind[a][i];
          ctx.y = bind[b][j];
          bool ok = eval_compiled(c, ctx);
          if (ok) {
            ctx.x = bind[b][j];
            ctx.y = bind[a][i];
            ok = eval_compiled(c, ctx);
          }
          if (!ok) net.arc_forbid(a, alive[a][i], b, alive[b][j]);
        }
      }
    }
  }
}

int PramParser::parallel_consistency_step(Network& net,
                                          pram::Machine& m) const {
  net.build_arcs();
  AliveIndex idx(net);
  // Support of every alive role value, all computed from the pre-sweep
  // state.  On the CRCW machine this is: one step of concurrent-write
  // ORs over each row/column (O(n^2) cells per role value), one step of
  // ANDs — constant time with one processor per arc element.
  const std::size_t or_procs =
      idx.size() * static_cast<std::size_t>(net.num_roles() - 1) *
      static_cast<std::size_t>(net.domain_size());
  std::vector<std::uint8_t> dead(idx.size(), 0);
  m.for_all(std::max<std::size_t>(or_procs, 1), [](std::size_t) {});
  m.for_all(std::max<std::size_t>(idx.size(), 1), [](std::size_t) {});
  for (std::size_t i = 0; i < idx.size(); ++i)
    if (!net.supported(idx.role[i], idx.rv[i])) dead[i] = 1;
  // One zeroing step for all victims simultaneously.
  m.for_all(std::max<std::size_t>(or_procs, 1), [](std::size_t) {});
  int eliminated = 0;
  for (std::size_t i = 0; i < idx.size(); ++i)
    if (dead[i]) {
      net.eliminate(idx.role[i], idx.rv[i]);
      ++eliminated;
    }
  return eliminated;
}

PramResult PramParser::parse(Network& net) const {
  pram::Machine m(opt_.write_mode);
  // Role-value generation: constant steps, O(n^2) processors (§2.1).
  m.for_all(static_cast<std::size_t>(net.num_roles()) *
                static_cast<std::size_t>(net.domain_size()),
            [](std::size_t) {});
  net.build_arcs();

  for (const auto& c : unary_) apply_unary_parallel(net, m, c);
  for (const auto& c : binary_) apply_binary_parallel(net, m, c);

  PramResult r;
  // Consistency maintenance + filtering.
  int iters = 0;
  while (opt_.filter_iterations < 0 || iters < opt_.filter_iterations) {
    ++iters;
    if (parallel_consistency_step(net, m) == 0) break;
  }
  r.consistency_iterations = iters;
  // Acceptance test: one CRCW AND over roles.
  r.accepted = m.global_and(static_cast<std::size_t>(net.num_roles()),
                            [&](std::size_t role) {
                              return net.domain(static_cast<int>(role)).any();
                            });
  r.stats = m.stats();
  return r;
}

}  // namespace parsec::engine
