// PARSEC on the (simulated) MasPar MP-1 (paper §2.2).
//
// The six design decisions of §2.2.1 are all implemented:
//   1. arc matrices are constructed *before* unary propagation, so
//      unary constraints need not run first (Fig. 9);
//   2. no shared memory: every PE computes what it needs from its PE id
//      plus ACU broadcasts (the sentence's categories);
//   3. global ANDs/ORs use the router's scanAnd()/scanOr() primitives
//      (logarithmic, not constant, time);
//   4. eliminated role values never shrink a matrix: their rows/columns
//      are zeroed in every matrix on arcs emanating from the role;
//   5. only a constant number of consistency-maintenance iterations run
//      during filtering (configurable; fixpoint mode for tests);
//   6. PEs are virtualized: each physical PE emulates a constant number
//      of virtual PEs, and each PE processes an l x l label submatrix
//      (Fig. 13), so scans repeat l times.
//
// The kernel follows Figs. 10-12: for each label slot, PEs OR their
// submatrix row locally, a segmented scanOr per arc segment (a,mx,b)
// forms the arc OR, a segmented scanAnd over the role slot (a,mx) forms
// the support bit, and a router gather from the transposed partner PE
// delivers the column-side support for zeroing.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "cdg/constraint_eval.h"
#include "cdg/grammar.h"
#include "cdg/lexicon.h"
#include "cdg/network.h"
#include "cdg/parser.h"
#include "maspar/cost_model.h"
#include "maspar/layout.h"
#include "maspar/machine.h"

namespace parsec::engine {

struct MasparOptions {
  int physical_pes = maspar::kMp1MaxPes;
  /// Constant bound on consistency iterations (design decision 5);
  /// <0 runs filtering to fixpoint (used by the equivalence tests).
  int filter_iterations = 10;
};

struct MasparResult {
  bool accepted = false;
  bool cancelled = false;  // CancelFn fired at an engine checkpoint
  int consistency_iterations = 0;
  int vpes = 0;
  int virt_factor = 1;
  maspar::MachineStats stats;
  double simulated_seconds = 0.0;  // under CostModel::mp1()
  /// Host-side SIMD-layer accounting for the packed l*l sweeps (the
  /// per-PE submatrix word IS the tile here): folded into
  /// NetworkCounters::tile_sweeps / simd_lane_words by run_backend so
  /// the maspar backend rows stay comparable to the host engines'.
  std::uint64_t tile_sweeps = 0;
  std::uint64_t lane_words = 0;
};

/// One parse instance: machine + PE-resident arc state for a sentence.
/// Construct, run kernels (or just parse()), then read the results.
class MasparParse {
 public:
  MasparParse(const cdg::Grammar& g, const cdg::Sentence& s,
              MasparOptions opt = {});

  // ---- kernels (each models one ACU-driven SIMD phase) ----------------
  /// Applies one unary constraint to every role value (rows and columns
  /// zeroed in place; design decision 1 lets this run any time).
  void apply_unary(const cdg::CompiledConstraint& c);
  /// Vectorized form: the role-value-independent guard is evaluated
  /// once per role slot (host side — the ACU would broadcast it), and
  /// guarded slots run only the residual program.  Identical zeroings;
  /// identical SIMD op charges (the PE array performs the same lockstep
  /// phase either way).
  void apply_unary(const cdg::FactoredConstraint& c);
  /// Applies one binary constraint to every arc element, both variable
  /// assignments.
  void apply_binary(const cdg::CompiledConstraint& c);
  /// Vectorized form: hoisted-part truth masks are evaluated once per
  /// (role, mod-slot, label-slot) and expanded into packed l*l row and
  /// column masks; each PE then decides most elements with a handful of
  /// word ops, dispatching only mask-undecided elements to the bytecode
  /// VM.  Identical zeroings and SIMD op charges to the plain form.
  void apply_binary(const cdg::FactoredConstraint& c);
  /// One consistency-maintenance iteration (Figs. 10/12).  Returns true
  /// if any role value's support changed to dead (read by the ACU via a
  /// global scanOr).
  bool consistency_iteration();
  /// Runs the full pipeline: all unary, all binary, then filtering.
  /// `cancel` (if non-empty) is polled at every engine checkpoint —
  /// before each constraint broadcast and each consistency iteration —
  /// mirroring the ACU's per-phase control flow.
  MasparResult run(const std::vector<cdg::CompiledConstraint>& unary,
                   const std::vector<cdg::CompiledConstraint>& binary,
                   const cdg::CancelFn& cancel = {});
  /// Same pipeline through the vectorized kernels.
  MasparResult run(const std::vector<cdg::FactoredConstraint>& unary,
                   const std::vector<cdg::FactoredConstraint>& binary,
                   const cdg::CancelFn& cancel = {});

  // ---- read-back (host-side measurement; not costed) ------------------
  /// Domains in cdg::Network indexing: alive iff the role value is
  /// supported on every arc (AND of row ORs).
  std::vector<util::DynBitset> domains() const;
  /// Logical arc-matrix entry between two role values.
  bool arc_entry(int role_a, cdg::RoleValue a, int role_b,
                 cdg::RoleValue b) const;
  bool accepted() const;

  const maspar::Layout& layout() const { return layout_; }
  const maspar::Machine& machine() const { return machine_; }
  maspar::Machine& machine() { return machine_; }

  /// Support bit of (role, rv) computed host-side from current bits.
  bool supported(int role, cdg::RoleValue rv) const;

 private:
  /// Shared tail of run(): filtering iterations + result assembly.
  /// `already_cancelled` skips filtering when a constraint phase was
  /// aborted.
  MasparResult filter_and_finish(const cdg::CancelFn& cancel,
                                 bool already_cancelled);

  const cdg::Grammar* grammar_;
  cdg::Sentence sentence_;
  maspar::Layout layout_;
  maspar::Machine machine_;
  MasparOptions opt_;
  int l_;  // label slots per PE submatrix

  // Per-PE state (the PE-local memory).
  std::vector<std::uint64_t> bits_;     // l x l submatrix per PE
  std::vector<int> seg_arc_;            // (a, mx, b) segment ids
  std::vector<int> seg_slot_;           // (a, mx) segment ids
  std::vector<int> partner_;            // transposed-copy PE id
  std::vector<std::uint8_t> active_;    // 0 for diagonal (a == b) PEs
  // Host-side caches of the values each PE derives from its id (pure
  // simulation speed; the derivation itself is costed once in the
  // constructor).
  std::vector<maspar::Layout::Coord> coords_;
  // Bindings of the row role values of slot (role a, mod slot mx),
  // indexed [a * M + mx][label slot].
  std::vector<std::vector<cdg::Binding>> slot_bindings_;
  // Packed-sweep accounting (see MasparResult::tile_sweeps).
  std::uint64_t tile_sweeps_ = 0;
  std::uint64_t lane_words_ = 0;
};

/// Grammar-level wrapper mirroring the other engines.
class MasparParser {
 public:
  explicit MasparParser(const cdg::Grammar& g, MasparOptions opt = {});

  /// Parses and returns timing/step statistics; `out` (if non-null)
  /// receives the parse instance for read-back.
  MasparResult parse(const cdg::Sentence& s) const;
  MasparResult parse(const cdg::Sentence& s,
                     std::unique_ptr<MasparParse>& out,
                     const cdg::CancelFn& cancel = {}) const;

  // Factored (hoisted) forms; each element's `.full` member is the
  // plain compiled program.
  const std::vector<cdg::FactoredConstraint>& compiled_unary() const {
    return unary_;
  }
  const std::vector<cdg::FactoredConstraint>& compiled_binary() const {
    return binary_;
  }

 private:
  const cdg::Grammar* grammar_;
  MasparOptions opt_;
  std::vector<cdg::FactoredConstraint> unary_;
  std::vector<cdg::FactoredConstraint> binary_;
};

}  // namespace parsec::engine
