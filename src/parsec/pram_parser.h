// PARSEC on the CRCW P-RAM (paper §2.1).
//
// The parallel algorithm, phase by phase, with the paper's costs:
//   * role-value generation        — O(1) steps, O(n^2) processors
//   * unary constraint propagation — O(1) steps/constraint, O(n^2) procs
//   * binary constraint propagation— O(1) steps/constraint, O(n^4) procs
//   * consistency maintenance      — O(1) steps, O(n^4) processors
//     (row/column ORs and the per-role-value AND are constant-time on a
//     CRCW machine; all eliminations zero their rows/columns at once)
//   * filtering                    — bounded iterations of the above
//
// Every phase is routed through pram::Machine so the O(k) time and
// O(n^4) processor claims are measured (bench_pram_complexity).  The
// network transformation is semantically identical to the sequential
// parser's, except that a consistency sweep computes all support flags
// from the pre-sweep state (true parallel semantics: no cascading
// within a sweep).  Both reach the same fixpoint under full filtering
// (support removal is confluent).
#pragma once

#include "cdg/network.h"
#include "cdg/parser.h"
#include "pram/machine.h"

namespace parsec::engine {

struct PramOptions {
  /// Filtering iteration bound; <0 runs to fixpoint.  The paper argues
  /// a small constant suffices in practice ("typically fewer than 10").
  int filter_iterations = -1;
  pram::WriteMode write_mode = pram::WriteMode::Common;
};

struct PramResult {
  bool accepted = false;
  bool cancelled = false;  // CancelFn fired at an engine checkpoint
  int consistency_iterations = 0;  // total parallel sweeps executed
  pram::StepStats stats;
};

class PramParser {
 public:
  explicit PramParser(const cdg::Grammar& g, PramOptions opt = {});

  /// Parses `net` in place (the network must use this grammar).
  /// `cancel` (if non-empty) is polled at every engine checkpoint —
  /// before each unary/binary constraint and each filtering sweep.
  PramResult parse(cdg::Network& net, const cdg::CancelFn& cancel = {}) const;

  /// One parallel consistency sweep (pre-state semantics).  Returns the
  /// number of role values eliminated.
  int parallel_consistency_step(cdg::Network& net, pram::Machine& m) const;

 private:
  void apply_unary_parallel(cdg::Network& net, pram::Machine& m,
                            const cdg::FactoredConstraint& c) const;
  void apply_binary_parallel(cdg::Network& net, pram::Machine& m,
                             const cdg::FactoredConstraint& c,
                             std::size_t slot) const;

  const cdg::Grammar* grammar_;
  PramOptions opt_;
  std::vector<cdg::FactoredConstraint> unary_;
  std::vector<cdg::FactoredConstraint> binary_;
};

}  // namespace parsec::engine
