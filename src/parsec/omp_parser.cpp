#include "parsec/omp_parser.h"

#include <chrono>

#if defined(PARSEC_HAVE_OPENMP)
#include <omp.h>
#endif

namespace parsec::engine {

using cdg::CompiledConstraint;
using cdg::EvalContext;
using cdg::Network;

OmpParser::OmpParser(const cdg::Grammar& g, OmpOptions opt)
    : grammar_(&g),
      opt_(opt),
      unary_(compile_all(g.unary_constraints())),
      binary_(compile_all(g.binary_constraints())) {}

void OmpParser::apply_unary(Network& net,
                            const CompiledConstraint& c) const {
  const int R = net.num_roles();
  std::vector<std::vector<int>> victims(static_cast<std::size_t>(R));
#if defined(PARSEC_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
  for (int role = 0; role < R; ++role) {
    EvalContext ctx;
    ctx.sentence = &net.sentence();
    net.domain(role).for_each([&](std::size_t rv) {
      ctx.x = net.binding(role, static_cast<int>(rv));
      if (!eval_compiled(c, ctx))
        victims[role].push_back(static_cast<int>(rv));
    });
  }
  for (int role = 0; role < R; ++role)
    for (int rv : victims[role]) net.eliminate(role, rv);
}

void OmpParser::apply_binary(Network& net,
                             const CompiledConstraint& c) const {
  net.build_arcs();
  const int R = net.num_roles();
  std::vector<std::vector<int>> alive(R);
  std::vector<std::vector<cdg::Binding>> bind(R);
  for (int r = 0; r < R; ++r)
    net.domain(r).for_each([&](std::size_t v) {
      alive[r].push_back(static_cast<int>(v));
      bind[r].push_back(net.binding(r, static_cast<int>(v)));
    });
  // Flatten the arc list: each worker owns whole matrices, so writes
  // never race.
  std::vector<std::pair<int, int>> arcs;
  arcs.reserve(static_cast<std::size_t>(R) * (R - 1) / 2);
  for (int a = 0; a < R; ++a)
    for (int b = a + 1; b < R; ++b) arcs.emplace_back(a, b);

  std::size_t zeroed_total = 0;
#if defined(PARSEC_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic) reduction(+ : zeroed_total)
#endif
  for (std::size_t t = 0; t < arcs.size(); ++t) {
    const auto [a, b] = arcs[t];
    EvalContext ctx;
    ctx.sentence = &net.sentence();
    util::BitMatrix& m = net.arc_matrix_mut(a, b);
    for (std::size_t i = 0; i < alive[a].size(); ++i) {
      for (std::size_t j = 0; j < alive[b].size(); ++j) {
        if (!m.test(static_cast<std::size_t>(alive[a][i]),
                    static_cast<std::size_t>(alive[b][j])))
          continue;
        ctx.x = bind[a][i];
        ctx.y = bind[b][j];
        bool ok = eval_compiled(c, ctx);
        if (ok) {
          ctx.x = bind[b][j];
          ctx.y = bind[a][i];
          ok = eval_compiled(c, ctx);
        }
        if (!ok) {
          m.reset(static_cast<std::size_t>(alive[a][i]),
                  static_cast<std::size_t>(alive[b][j]));
          ++zeroed_total;
        }
      }
    }
  }
  net.counters().arc_zeroings += zeroed_total;
}

int OmpParser::consistency_sweep(Network& net) const {
  net.build_arcs();
  const int R = net.num_roles();
  std::vector<std::vector<int>> dead(static_cast<std::size_t>(R));
#if defined(PARSEC_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic)
#endif
  for (int role = 0; role < R; ++role) {
    net.domain(role).for_each([&](std::size_t rv) {
      // Support check against the pre-sweep matrices (reads only).
      for (int other = 0; other < R; ++other) {
        if (other == role) continue;
        const bool ok =
            role < other ? net.arc_matrix(role, other).row_any(rv)
                         : net.arc_matrix(other, role).col_any(rv);
        if (!ok) {
          dead[role].push_back(static_cast<int>(rv));
          return;
        }
      }
    });
  }
  int eliminated = 0;
  for (int role = 0; role < R; ++role)
    for (int rv : dead[role]) {
      net.eliminate(role, rv);
      ++eliminated;
    }
  return eliminated;
}

OmpResult OmpParser::parse(Network& net) const {
  const auto t0 = std::chrono::steady_clock::now();
#if defined(PARSEC_HAVE_OPENMP)
  if (opt_.threads > 0) omp_set_num_threads(opt_.threads);
#endif
  net.build_arcs();
  for (const auto& c : unary_) apply_unary(net, c);
  for (const auto& c : binary_) apply_binary(net, c);
  OmpResult r;
  int iters = 0;
  while (opt_.filter_iterations < 0 || iters < opt_.filter_iterations) {
    ++iters;
    if (consistency_sweep(net) == 0) break;
  }
  r.consistency_iterations = iters;
  r.accepted = net.all_roles_nonempty();
#if defined(PARSEC_HAVE_OPENMP)
  r.threads_used = omp_get_max_threads();
#endif
  r.seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  return r;
}

}  // namespace parsec::engine
