#include "parsec/omp_parser.h"

#include <algorithm>
#include <chrono>

#include "cdg/kernels.h"

#if defined(PARSEC_HAVE_OPENMP)
#include <omp.h>
#endif

namespace parsec::engine {

using cdg::CompiledConstraint;
using cdg::Network;

void OmpParser::apply_unary(Network& net,
                            const CompiledConstraint& c) const {
  const int R = net.num_roles();
  const int D = net.domain_size();
  // Victim staging in the arena's rv_flags region: each worker writes
  // only its own roles' slices, so the marks are race-free.
  auto flags = net.arena().rv_flags();
  std::fill(flags.begin(), flags.end(), std::uint8_t{0});
#if defined(PARSEC_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
  for (int role = 0; role < R; ++role) {
    cdg::kernels::propagate_unary(
        c, net.sentence(), net.indexer(), net.role_id_of(role),
        net.word_of_role(role), net.domain(role),
        flags.subspan(static_cast<std::size_t>(role) * D, D));
  }
  for (int role = 0; role < R; ++role)
    for (int rv = 0; rv < D; ++rv)
      if (flags[static_cast<std::size_t>(role) * D + rv])
        net.eliminate(role, rv);
}

void OmpParser::apply_binary(Network& net,
                             const CompiledConstraint& c) const {
  net.build_arcs();
  net.refresh_alive_cache();
  cdg::NetworkArena& arena = net.arena();
  // Partition by arc: each worker owns whole matrices, so writes never
  // race.
  const std::size_t A = arena.num_arcs();
  std::size_t zeroed_total = 0;
#if defined(PARSEC_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic) reduction(+ : zeroed_total)
#endif
  for (std::size_t t = 0; t < A; ++t) {
    const auto [a, b] = arena.arc_pair(t);
    zeroed_total += static_cast<std::size_t>(cdg::kernels::sweep_binary(
        c, net.sentence(), arena.arc(t), net.alive_list(a),
        net.binding_list(a), net.alive_list(b), net.binding_list(b)));
  }
  net.counters().arc_zeroings += zeroed_total;
  if (zeroed_total) arena.set_counts_valid(false);
}

int OmpParser::consistency_sweep(Network& net) const {
  net.build_arcs();
  const int R = net.num_roles();
  const int D = net.domain_size();
  auto flags = net.arena().rv_flags();
  std::fill(flags.begin(), flags.end(), std::uint8_t{0});
#if defined(PARSEC_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic)
#endif
  for (int role = 0; role < R; ++role) {
    net.domain(role).for_each([&](std::size_t rv) {
      // Support check against the pre-sweep matrices (reads only).
      if (!cdg::kernels::supported(net.arena(), role, static_cast<int>(rv)))
        flags[static_cast<std::size_t>(role) * D + rv] = 1;
    });
  }
  int eliminated = 0;
  for (int role = 0; role < R; ++role)
    for (int rv = 0; rv < D; ++rv)
      if (flags[static_cast<std::size_t>(role) * D + rv]) {
        net.eliminate(role, rv);
        ++eliminated;
      }
  return eliminated;
}

OmpParser::OmpParser(const cdg::Grammar& g, OmpOptions opt)
    : grammar_(&g),
      opt_(opt),
      unary_(compile_all(g.unary_constraints())),
      binary_(compile_all(g.binary_constraints())) {}

OmpResult OmpParser::parse(Network& net) const {
  const auto t0 = std::chrono::steady_clock::now();
#if defined(PARSEC_HAVE_OPENMP)
  if (opt_.threads > 0) omp_set_num_threads(opt_.threads);
#endif
  net.build_arcs();
  for (const auto& c : unary_) apply_unary(net, c);
  for (const auto& c : binary_) apply_binary(net, c);
  OmpResult r;
  int iters = 0;
  while (opt_.filter_iterations < 0 || iters < opt_.filter_iterations) {
    ++iters;
    if (consistency_sweep(net) == 0) break;
  }
  r.consistency_iterations = iters;
  r.accepted = net.all_roles_nonempty();
#if defined(PARSEC_HAVE_OPENMP)
  r.threads_used = omp_get_max_threads();
#endif
  r.seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  return r;
}

}  // namespace parsec::engine
