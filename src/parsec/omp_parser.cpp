#include "parsec/omp_parser.h"

#include <algorithm>
#include <chrono>

#include "cdg/kernels.h"
#include "obs/trace.h"
#include "resil/fault_plan.h"

#if defined(PARSEC_HAVE_OPENMP)
#include <omp.h>
#endif

namespace parsec::engine {

using cdg::FactoredConstraint;
using cdg::Network;

void OmpParser::apply_unary(Network& net, const FactoredConstraint& c) const {
  const int R = net.num_roles();
  const int D = net.domain_size();
  // Victim staging in the arena's rv_flags region: each worker writes
  // only its own roles' slices, so the marks are race-free.  Counters
  // are not charged inside the parallel region (this engine reports
  // work through wall-clock, not eval counts).
  auto flags = net.arena().rv_flags();
  std::fill(flags.begin(), flags.end(), std::uint8_t{0});
#if defined(PARSEC_HAVE_OPENMP)
#pragma omp parallel for schedule(static)
#endif
  for (int role = 0; role < R; ++role) {
    cdg::kernels::propagate_unary_masked(
        c, net.sentence(), net.indexer(), net.role_id_of(role),
        net.word_of_role(role), net.domain(role),
        flags.subspan(static_cast<std::size_t>(role) * D, D),
        cdg::kernels::MaskedCounters{});
  }
  std::vector<int> victims;
  for (int role = 0; role < R; ++role) {
    victims.clear();
    for (int rv = 0; rv < D; ++rv)
      if (flags[static_cast<std::size_t>(role) * D + rv])
        victims.push_back(rv);
    net.eliminate_batch(role, victims);
  }
}

void OmpParser::apply_binary(Network& net, const FactoredConstraint& c,
                             std::size_t slot) const {
  net.build_arcs();
  // Mask build is serial (it writes the shared mask region once);
  // the sweeps that consume the masks are read-only on them.
  net.ensure_masks(c, slot);
  cdg::NetworkArena& arena = net.arena();
  // Partition by arc: each worker owns whole matrices, so writes never
  // race.
  const std::size_t A = arena.num_arcs();
  std::size_t zeroed_total = 0;
  // Tile accounting rides the existing reduction (this engine otherwise
  // reports work through wall-clock, not eval counts): each worker
  // charges thread-local tile/lane-word accumulators, summed after the
  // barrier so the totals match the serial schedule bit-for-bit.
  std::size_t tiles_total = 0, lanes_total = 0;
#if defined(PARSEC_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic) \
    reduction(+ : zeroed_total, tiles_total, lanes_total)
#endif
  for (std::size_t t = 0; t < A; ++t) {
    const auto [a, b] = arena.arc_pair(t);
    cdg::kernels::MaskedCounters mc;
    std::size_t tiles = 0, lanes = 0;
    mc.tile_sweeps = &tiles;
    mc.lane_words = &lanes;
    zeroed_total += static_cast<std::size_t>(cdg::kernels::sweep_binary_masked(
        c, net.sentence(), arena.arc(t), net.domain(a), net.masks(slot, a),
        net.role_id_of(a), net.word_of_role(a), net.masks(slot, b),
        net.role_id_of(b), net.word_of_role(b), net.indexer(), mc));
    tiles_total += tiles;
    lanes_total += lanes;
  }
  net.counters().tile_sweeps += tiles_total;
  net.counters().simd_lane_words += lanes_total;
  net.counters().arc_zeroings += zeroed_total;
  if (zeroed_total) arena.set_counts_valid(false);
}

int OmpParser::consistency_sweep(Network& net) const {
  net.build_arcs();
  const int R = net.num_roles();
  // Pre-state support masks, one per role, in parallel: every mask is
  // computed against the pre-sweep matrices (reads only; the arena's
  // support-scratch rows are disjoint per role).
#if defined(PARSEC_HAVE_OPENMP)
#pragma omp parallel for schedule(dynamic)
#endif
  for (int role = 0; role < R; ++role) {
    cdg::kernels::support_mask(net.arena(), role,
                               net.arena().support_scratch(role));
  }
  int eliminated = 0;
  std::vector<int> victims;
  for (int role = 0; role < R; ++role) {
    // Extract this role's victims before eliminate_batch clobbers the
    // scratch row; later roles' rows are untouched until their turn.
    victims.clear();
    const util::ConstBitSpan sup =
        static_cast<const cdg::NetworkArena&>(net.arena())
            .support_scratch(role);
    net.domain(role).for_each([&](std::size_t rv) {
      if (!sup.test(rv)) victims.push_back(static_cast<int>(rv));
    });
    eliminated += net.eliminate_batch(role, victims);
  }
  return eliminated;
}

OmpParser::OmpParser(const cdg::Grammar& g, OmpOptions opt)
    : grammar_(&g),
      opt_(opt),
      unary_(factor_all(g.unary_constraints())),
      binary_(factor_all(g.binary_constraints())) {}

OmpResult OmpParser::parse(Network& net, const cdg::CancelFn& cancel) const {
  const auto t0 = std::chrono::steady_clock::now();
#if defined(PARSEC_HAVE_OPENMP)
  if (opt_.threads > 0) omp_set_num_threads(opt_.threads);
#endif
  OmpResult r;
  net.build_arcs();
  {
    obs::Span span("omp.unary");
    for (const auto& c : unary_) {
      if (resil::checkpoint(cancel)) {
        r.cancelled = true;
        break;
      }
      apply_unary(net, c);
    }
  }
  {
    obs::Span span("omp.binary");
    for (std::size_t i = 0; !r.cancelled && i < binary_.size(); ++i) {
      if (resil::checkpoint(cancel)) {
        r.cancelled = true;
        break;
      }
      apply_binary(net, binary_[i], i);
    }
  }
  int iters = 0;
  {
    obs::Span span("omp.filter");
    while (!r.cancelled &&
           (opt_.filter_iterations < 0 || iters < opt_.filter_iterations)) {
      if (resil::checkpoint(cancel)) {
        r.cancelled = true;
        break;
      }
      ++iters;
      if (consistency_sweep(net) == 0) break;
    }
    span.arg("iterations", iters);
  }
  r.consistency_iterations = iters;
  r.accepted = !r.cancelled && net.all_roles_nonempty();
#if defined(PARSEC_HAVE_OPENMP)
  r.threads_used = omp_get_max_threads();
#endif
  r.seconds = std::chrono::duration<double>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  return r;
}

}  // namespace parsec::engine
