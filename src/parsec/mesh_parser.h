// CDG parsing on abstract topologies (the CDG column of Figure 8).
//
// The parallel algorithm is the same on every machine; what changes is
// (a) how many PEs the machine has and (b) how many steps a reduction
// takes.  This engine executes the data-parallel phase schedule on a
// cdg::Network while charging per-phase time for a chosen topology:
//
//   topology        PEs            elementwise phase      reduction
//   CRCW P-RAM      q^2 n^4        ceil(items / PEs)      1
//   2-D mesh / CA   n^2            ceil(items / PEs)      2(sqrt(PEs)-1)
//   tree/hypercube  q^2 n^4/log n  ceil(items / PEs)      log2(PEs)
//
// yielding the paper's O(k), O(k + n^2) and O(k + log n) rows.  The
// final network equals the sequential fixpoint (same removals).
#pragma once

#include <cstdint>

#include "cdg/network.h"
#include "cdg/parser.h"

namespace parsec::engine {

enum class Topology {
  CrcwPram,
  Mesh2D,
  CellularAutomaton2D,  // same costs as the mesh; kept for the Fig. 8 row
  TreeHypercube,
};

const char* to_string(Topology t);

struct TopoResult {
  bool accepted = false;
  bool cancelled = false;  // CancelFn fired at an engine checkpoint
  int consistency_iterations = 0;
  std::size_t pes = 0;
  std::uint64_t time_steps = 0;
  std::uint64_t elementwise_steps = 0;
  std::uint64_t reduction_steps = 0;
};

class TopologyParser {
 public:
  TopologyParser(const cdg::Grammar& g, Topology topo,
                 int filter_iterations = -1);

  /// Number of PEs the topology provides for an n-word sentence.
  std::size_t pes_for(int n) const;

  /// Parses `net` in place, charging topology time.  `cancel` (if
  /// non-empty) is polled at every engine checkpoint — before each
  /// unary/binary constraint and each filtering sweep.
  TopoResult parse(cdg::Network& net, const cdg::CancelFn& cancel = {}) const;

 private:
  std::uint64_t elementwise_cost(std::size_t items, std::size_t pes) const;
  std::uint64_t reduction_cost(std::size_t pes) const;

  const cdg::Grammar* grammar_;
  Topology topo_;
  int filter_iterations_;
  std::vector<cdg::FactoredConstraint> unary_;
  std::vector<cdg::FactoredConstraint> binary_;
};

}  // namespace parsec::engine
