#include "parsec/mesh_parser.h"

#include <algorithm>
#include <cmath>

#include "cdg/kernels.h"
#include "obs/trace.h"
#include "resil/fault_plan.h"
#include "topo/reduction.h"

namespace parsec::engine {

using cdg::EvalContext;
using cdg::FactoredConstraint;
using cdg::Network;

const char* to_string(Topology t) {
  switch (t) {
    case Topology::CrcwPram: return "CRCW P-RAM";
    case Topology::Mesh2D: return "2D Mesh";
    case Topology::CellularAutomaton2D: return "2D Cellular Automata";
    case Topology::TreeHypercube: return "Tree and Hypercube";
  }
  return "?";
}

TopologyParser::TopologyParser(const cdg::Grammar& g, Topology topo,
                               int filter_iterations)
    : grammar_(&g),
      topo_(topo),
      filter_iterations_(filter_iterations),
      unary_(factor_all(g.unary_constraints())),
      binary_(factor_all(g.binary_constraints())) {}

std::size_t TopologyParser::pes_for(int n) const {
  const std::size_t q = static_cast<std::size_t>(grammar_->num_roles());
  const std::size_t n4 = static_cast<std::size_t>(n) * n * n * n;
  switch (topo_) {
    case Topology::CrcwPram:
      return q * q * n4;
    case Topology::Mesh2D:
    case Topology::CellularAutomaton2D:
      return static_cast<std::size_t>(n) * n;
    case Topology::TreeHypercube: {
      const double logn = std::max(1.0, std::log2(static_cast<double>(n)));
      return std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 static_cast<double>(q * q * n4) / logn));
    }
  }
  return 1;
}

std::uint64_t TopologyParser::elementwise_cost(std::size_t items,
                                               std::size_t pes) const {
  return (items + pes - 1) / pes;
}

std::uint64_t TopologyParser::reduction_cost(std::size_t pes) const {
  switch (topo_) {
    case Topology::CrcwPram:
      return 1;  // concurrent-write OR/AND
    case Topology::Mesh2D:
    case Topology::CellularAutomaton2D:
      return topo::mesh_reduce_steps(pes);
    case Topology::TreeHypercube:
      return topo::hypercube_reduce_steps(pes);
  }
  return 1;
}

TopoResult TopologyParser::parse(Network& net,
                                 const cdg::CancelFn& cancel) const {
  TopoResult r;
  const std::size_t P = pes_for(net.n());
  r.pes = P;
  const std::size_t R = static_cast<std::size_t>(net.num_roles());
  const std::size_t D = static_cast<std::size_t>(net.domain_size());
  const std::size_t arc_elems = R * (R - 1) / 2 * D * D;

  auto charge_elem = [&](std::size_t items) {
    const std::uint64_t c = elementwise_cost(items, P);
    r.elementwise_steps += c;
    r.time_steps += c;
  };
  auto charge_reduce = [&]() {
    const std::uint64_t c = reduction_cost(P);
    r.reduction_steps += c;
    r.time_steps += c;
  };

  // CN construction: one elementwise pass over role values + arcs.
  charge_elem(R * D);
  charge_elem(arc_elems);
  net.build_arcs();

  const int Di = net.domain_size();
  auto flags = net.arena().rv_flags();

  // Unary constraints: one elementwise pass over role values each,
  // plus the zeroing pass for eliminated values.  Evaluation runs
  // host-side through the masked unary kernel; the charges model the
  // abstract machine, not the host shortcut.
  std::vector<int> victims;
  {
    obs::Span span("mesh.unary");
    const std::uint64_t steps_before = r.time_steps;
    for (const auto& c : unary_) {
      if (resil::checkpoint(cancel)) {
        r.cancelled = true;
        break;
      }
      charge_elem(R * D);
      charge_elem(arc_elems / std::max<std::size_t>(1, D));  // zeroing rows
      std::fill(flags.begin(), flags.end(), std::uint8_t{0});
      for (int role = 0; role < net.num_roles(); ++role)
        cdg::kernels::propagate_unary_masked(
            c, net.sentence(), net.indexer(), net.role_id_of(role),
            net.word_of_role(role), net.domain(role),
            flags.subspan(static_cast<std::size_t>(role) * Di, Di),
            cdg::kernels::MaskedCounters{});
      for (int role = 0; role < net.num_roles(); ++role) {
        victims.clear();
        for (int rv = 0; rv < Di; ++rv)
          if (flags[static_cast<std::size_t>(role) * Di + rv])
            victims.push_back(rv);
        net.eliminate_batch(role, victims);
      }
    }
    span.arg("time_steps", r.time_steps - steps_before);
  }

  // Binary constraints: one elementwise pass over arc elements each.
  {
    obs::Span span("mesh.binary");
    const std::uint64_t steps_before = r.time_steps;
    for (std::size_t ci = 0; !r.cancelled && ci < binary_.size(); ++ci) {
      const auto& c = binary_[ci];
      if (resil::checkpoint(cancel)) {
        r.cancelled = true;
        break;
      }
      charge_elem(arc_elems);
      net.ensure_masks(c, ci);
      // Tile accounting only: mesh cost stays with charge_elem, but the
      // host-side SIMD tile sweeps are pinned per backend by the gate.
      cdg::kernels::MaskedCounters mc;
      mc.tile_sweeps = &net.counters().tile_sweeps;
      mc.lane_words = &net.counters().simd_lane_words;
      std::size_t zeroed = 0;
      for (int a = 0; a < net.num_roles(); ++a) {
        const cdg::kernels::FactoredMasks ma = net.masks(ci, a);
        for (int b = a + 1; b < net.num_roles(); ++b) {
          zeroed += static_cast<std::size_t>(cdg::kernels::sweep_binary_masked(
              c, net.sentence(), net.arena().arc(a, b), net.domain(a), ma,
              net.role_id_of(a), net.word_of_role(a), net.masks(ci, b),
              net.role_id_of(b), net.word_of_role(b), net.indexer(), mc));
        }
      }
      net.counters().arc_zeroings += zeroed;
      if (zeroed) net.arena().set_counts_valid(false);
    }
    span.arg("time_steps", r.time_steps - steps_before);
  }

  // Consistency maintenance + filtering: per iteration, one reduction
  // phase (the row ORs + role AND) and one elementwise zeroing pass.
  int iters = 0;
  {
    obs::Span span("mesh.filter");
    const std::uint64_t steps_before = r.time_steps;
    const std::uint64_t reductions_before = r.reduction_steps;
    while (!r.cancelled &&
           (filter_iterations_ < 0 || iters < filter_iterations_)) {
      if (resil::checkpoint(cancel)) {
        r.cancelled = true;
        break;
      }
      ++iters;
      charge_elem(arc_elems);
      charge_reduce();
      charge_elem(arc_elems);
      // Pre-state support semantics, as on the real machines: all roles'
      // support masks are filled before any elimination.
      for (int role = 0; role < net.num_roles(); ++role) net.support_mask(role);
      int swept = 0;
      for (int role = 0; role < net.num_roles(); ++role) {
        victims.clear();
        const util::ConstBitSpan sup =
            static_cast<const cdg::NetworkArena&>(net.arena())
                .support_scratch(role);
        net.domain(role).for_each([&](std::size_t rv) {
          if (!sup.test(rv)) victims.push_back(static_cast<int>(rv));
        });
        swept += net.eliminate_batch(role, victims);
      }
      if (swept == 0) break;
    }
    span.arg("iterations", iters);
    span.arg("time_steps", r.time_steps - steps_before);
    span.arg("reduction_steps", r.reduction_steps - reductions_before);
  }
  r.consistency_iterations = iters;
  charge_reduce();  // acceptance AND over roles
  r.accepted = !r.cancelled && net.all_roles_nonempty();
  return r;
}

}  // namespace parsec::engine
