#include "cfg/cyk.h"

#include <algorithm>

namespace parsec::cfg {

CykTable cyk_table(const CnfGrammar& g, const std::vector<int>& word,
                   CykStats* stats) {
  const int n = static_cast<int>(word.size());
  CykTable t(std::max(n, 1), g.num_nonterminals);
  if (n == 0) return t;
  for (int i = 0; i < n; ++i) t.cell(i, 1) = g.derives_terminal[word[i]];
  for (int len = 2; len <= n; ++len) {
    for (int i = 0; i + len <= n; ++i) {
      auto& out = t.cell(i, len);
      for (int k = 1; k < len; ++k) {
        const auto& left = t.cell(i, k);
        const auto& right = t.cell(i + k, len - k);
        for (const auto& r : g.binary) {
          if (stats) ++stats->rule_applications;
          if (left[r.left] && right[r.right]) out[r.lhs] = true;
        }
      }
    }
  }
  return t;
}

bool cyk_recognize(const CnfGrammar& g, const std::vector<int>& word,
                   CykStats* stats) {
  if (word.empty()) return false;
  const CykTable t = cyk_table(g, word, stats);
  return t.cell(0, static_cast<int>(word.size()))[g.start];
}

std::uint64_t cyk_count_parses(const CnfGrammar& g,
                               const std::vector<int>& word,
                               std::uint64_t limit) {
  const int n = static_cast<int>(word.size());
  if (n == 0) return 0;
  // counts[i][len][A] with saturation at `limit`.
  std::vector<std::vector<std::vector<std::uint64_t>>> counts(
      n, std::vector<std::vector<std::uint64_t>>(
             n + 1, std::vector<std::uint64_t>(g.num_nonterminals, 0)));
  auto sat_add = [&](std::uint64_t a, std::uint64_t b) {
    const std::uint64_t s = a + b;
    return std::min(s, limit);
  };
  auto sat_mul = [&](std::uint64_t a, std::uint64_t b) {
    if (a == 0 || b == 0) return std::uint64_t{0};
    if (a > limit / b) return limit;
    return a * b;
  };
  for (int i = 0; i < n; ++i)
    for (const auto& r : g.terminal)
      if (r.terminal == word[i]) counts[i][1][r.lhs] = 1;
  for (int len = 2; len <= n; ++len)
    for (int i = 0; i + len <= n; ++i)
      for (int k = 1; k < len; ++k)
        for (const auto& r : g.binary)
          counts[i][len][r.lhs] =
              sat_add(counts[i][len][r.lhs],
                      sat_mul(counts[i][k][r.left],
                              counts[i + k][len - k][r.right]));
  return counts[0][n][g.start];
}

}  // namespace parsec::cfg
