// Context-free grammar substrate (the CFG column of Figure 8).
//
// The paper compares CDG parsing against CFG parsing on several
// architectures; this module supplies the CFG side: grammar
// representation, CNF conversion, the sequential CYK recognizer, a
// systolic-mesh CYK (Kosaraju's O(n) row) and a round-counted parallel
// CYK on the P-RAM (standing in for Ruzzo's O(log^2 n) bound; see
// DESIGN.md §5).
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "cdg/symbols.h"

namespace parsec::cfg {

/// A grammar symbol: terminal or nonterminal id.
struct Symbol {
  enum class Kind { Terminal, Nonterminal };
  Kind kind;
  int id;
  auto operator<=>(const Symbol&) const = default;
};

struct Production {
  int lhs;                   // nonterminal id
  std::vector<Symbol> rhs;   // nonempty (no epsilon productions)
};

class Grammar {
 public:
  int add_nonterminal(std::string_view name) { return nts_.intern(name); }
  int add_terminal(std::string_view name) { return ts_.intern(name); }

  /// Adds lhs -> rhs.  Epsilon productions are rejected: the CYK
  /// pipeline assumes an epsilon-free grammar.
  void add_production(int lhs, std::vector<Symbol> rhs);

  /// Convenience: "S -> NP VP" style, names resolved/interned; terminal
  /// names are lowercase by convention here, but resolution is explicit:
  /// names already interned as nonterminals are nonterminals, all others
  /// terminals.
  void add_rule(std::string_view lhs, std::vector<std::string> rhs);

  void set_start(int nt) { start_ = nt; }
  int start() const { return start_; }

  int num_nonterminals() const { return nts_.size(); }
  int num_terminals() const { return ts_.size(); }
  const cdg::SymbolTable& nonterminals() const { return nts_; }
  const cdg::SymbolTable& terminals() const { return ts_; }
  const std::vector<Production>& productions() const { return prods_; }

  int terminal(std::string_view name) const { return ts_.at(name); }
  int nonterminal(std::string_view name) const { return nts_.at(name); }

  /// Encodes a space-separated terminal string.
  std::vector<int> encode(const std::string& text) const;

 private:
  cdg::SymbolTable nts_, ts_;
  std::vector<Production> prods_;
  int start_ = 0;
};

/// Exhaustively enumerates the language up to `max_len` by BFS over
/// derivations (reference oracle for recognizer tests; exponential, use
/// only on tiny grammars).
std::vector<std::vector<int>> enumerate_language(const Grammar& g,
                                                 std::size_t max_len,
                                                 std::size_t max_strings = 10000);

}  // namespace parsec::cfg
