// CYK parse-tree extraction and bracketing output.
//
// Recognition (cyk.h) answers membership; downstream users of the CFG
// substrate (and the Figure-8 comparisons against CDG's precedence
// graphs) also want the derivation itself.  Trees are extracted from a
// filled CYK table by re-finding a witness split per cell.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cfg/cnf.h"
#include "cfg/cyk.h"

namespace parsec::cfg {

/// A binary derivation tree over a CNF grammar.
struct ParseTree {
  int nt = 0;              // nonterminal at this node
  int terminal = -1;       // leaf: derived terminal id (-1 for internal)
  int start = 0;           // span [start, start+len) in the word, 0-based
  int len = 0;
  std::unique_ptr<ParseTree> left, right;

  bool is_leaf() const { return terminal >= 0; }
};

/// Extracts one (leftmost-split, first-rule) derivation of `word`, or
/// nullopt if the word is not in the language.
std::optional<ParseTree> cyk_parse(const CnfGrammar& g,
                                   const std::vector<int>& word);

/// Renders "(S (T0 a) (X1 (T0 a) (T1 b)))"-style bracketing.  When
/// `words` is given, leaves print the surface strings instead of
/// terminal ids.
std::string bracketing(const CnfGrammar& g, const ParseTree& t,
                       const std::vector<std::string>* words = nullptr);

/// Checks structural validity: spans partition, rules exist, leaves
/// match the word.  Used by tests and assertable by callers.
bool tree_is_valid(const CnfGrammar& g, const ParseTree& t,
                   const std::vector<int>& word);

}  // namespace parsec::cfg
