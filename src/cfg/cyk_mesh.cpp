#include "cfg/cyk_mesh.h"

#include <algorithm>

#include "cfg/cyk.h"

namespace parsec::cfg {

MeshCykResult mesh_cyk_recognize(const CnfGrammar& g,
                                 const std::vector<int>& word) {
  MeshCykResult r;
  const int n = static_cast<int>(word.size());
  if (n == 0) return r;
  r.cells = static_cast<std::uint64_t>(n) * n;

  CykTable t(n, g.num_nonterminals);
  // Wave 0: leaves.
  for (int i = 0; i < n; ++i) t.cell(i, 1) = g.derives_terminal[word[i]];
  r.waves = 1;

  // Wave schedule: at wave w (w >= 1), every cell with span length
  // len = w+1 fires once, consuming all splits of its span.  The
  // per-cell work in a wave is (len-1) * |binary|; on the systolic
  // array this is pipelined so that the *step* count stays O(n) while
  // per-step work is O(|G|) per cell — we charge the schedule's wave
  // count (2n-1 including the pipeline drain) and record the max local
  // work for honesty.
  for (int len = 2; len <= n; ++len) {
    ++r.waves;
    std::uint64_t wave_work = 0;
    for (int i = 0; i + len <= n; ++i) {
      auto& out = t.cell(i, len);
      std::uint64_t work = 0;
      for (int k = 1; k < len; ++k) {
        const auto& left = t.cell(i, k);
        const auto& right = t.cell(i + k, len - k);
        for (const auto& rule : g.binary) {
          ++work;
          if (left[rule.left] && right[rule.right]) out[rule.lhs] = true;
        }
      }
      wave_work = std::max(wave_work, work);
    }
    r.max_cell_work = std::max(r.max_cell_work, wave_work);
  }
  // Pipeline drain: results propagate to the apex cell in n-1 hops.
  r.waves += static_cast<std::uint64_t>(n - 1);
  r.accepted = t.cell(0, n)[g.start];
  return r;
}

}  // namespace parsec::cfg
