#include "cfg/cnf.h"

#include <map>
#include <set>

namespace parsec::cfg {

void CnfGrammar::finalize() {
  derives_terminal.assign(static_cast<std::size_t>(num_terminals),
                          std::vector<bool>(num_nonterminals, false));
  for (const auto& r : terminal) derives_terminal[r.terminal][r.lhs] = true;
}

CnfGrammar to_cnf(const Grammar& g) {
  CnfGrammar out;
  out.num_terminals = g.num_terminals();
  out.start = g.start();
  int next_nt = g.num_nonterminals();
  for (int i = 0; i < g.num_nonterminals(); ++i)
    out.nt_names.push_back(g.nonterminals().name(i));

  auto fresh = [&](const std::string& hint) {
    out.nt_names.push_back(hint + std::to_string(next_nt));
    return next_nt++;
  };

  // Step 1+2: lift terminals inside long rules, then binarize.
  // Unit productions (A -> B) are collected for step 3; A -> a is kept.
  std::vector<std::pair<int, int>> unit;          // A -> B
  std::vector<CnfGrammar::BinaryRule> binary;
  std::vector<CnfGrammar::TerminalRule> terminal;
  std::map<int, int> term_wrapper;  // terminal -> fresh NT deriving it

  auto wrap_terminal = [&](int t) {
    auto it = term_wrapper.find(t);
    if (it != term_wrapper.end()) return it->second;
    const int nt = fresh("T");
    terminal.push_back({nt, t});
    term_wrapper.emplace(t, nt);
    return nt;
  };

  for (const auto& p : g.productions()) {
    if (p.rhs.size() == 1) {
      if (p.rhs[0].kind == Symbol::Kind::Terminal)
        terminal.push_back({p.lhs, p.rhs[0].id});
      else
        unit.emplace_back(p.lhs, p.rhs[0].id);
      continue;
    }
    // Lift terminals.
    std::vector<int> nts;
    nts.reserve(p.rhs.size());
    for (const auto& s : p.rhs)
      nts.push_back(s.kind == Symbol::Kind::Terminal ? wrap_terminal(s.id)
                                                     : s.id);
    // Binarize left-to-right: A -> B1 R1, R1 -> B2 R2, ...
    int lhs = p.lhs;
    for (std::size_t i = 0; i + 2 < nts.size(); ++i) {
      const int rest = fresh("X");
      binary.push_back({lhs, nts[i], rest});
      lhs = rest;
    }
    binary.push_back({lhs, nts[nts.size() - 2], nts[nts.size() - 1]});
  }

  // Step 3: unit-production elimination via transitive closure.
  out.num_nonterminals = next_nt;
  std::vector<std::set<int>> reach(static_cast<std::size_t>(next_nt));
  for (int a = 0; a < next_nt; ++a) reach[a].insert(a);
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto [a, b] : unit)
      for (int c : std::set<int>(reach[b]))
        if (reach[a].insert(c).second) changed = true;
  }
  std::set<std::tuple<int, int, int>> bin_seen;
  std::set<std::pair<int, int>> term_seen;
  for (int a = 0; a < next_nt; ++a) {
    for (int b : reach[a]) {
      if (a == b) continue;
      for (const auto& r : binary)
        if (r.lhs == b) bin_seen.insert({a, r.left, r.right});
      for (const auto& r : terminal)
        if (r.lhs == b) term_seen.insert({a, r.terminal});
    }
  }
  for (const auto& r : binary) bin_seen.insert({r.lhs, r.left, r.right});
  for (const auto& r : terminal) term_seen.insert({r.lhs, r.terminal});

  for (auto [a, b, c] : bin_seen) out.binary.push_back({a, b, c});
  for (auto [a, t] : term_seen) out.terminal.push_back({a, t});
  out.finalize();
  return out;
}

}  // namespace parsec::cfg
