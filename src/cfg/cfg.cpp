#include "cfg/cfg.h"

#include <algorithm>
#include <deque>
#include <set>
#include <sstream>
#include <stdexcept>

namespace parsec::cfg {

void Grammar::add_production(int lhs, std::vector<Symbol> rhs) {
  if (rhs.empty())
    throw std::invalid_argument(
        "epsilon productions are not supported (CYK pipeline)");
  prods_.push_back(Production{lhs, std::move(rhs)});
}

void Grammar::add_rule(std::string_view lhs, std::vector<std::string> rhs) {
  const int l = nts_.intern(lhs);
  std::vector<Symbol> syms;
  syms.reserve(rhs.size());
  for (const auto& name : rhs) {
    if (auto nt = nts_.find(name))
      syms.push_back(Symbol{Symbol::Kind::Nonterminal, *nt});
    else
      syms.push_back(Symbol{Symbol::Kind::Terminal, ts_.intern(name)});
  }
  add_production(l, std::move(syms));
}

std::vector<int> Grammar::encode(const std::string& text) const {
  std::istringstream is(text);
  std::vector<int> out;
  std::string w;
  while (is >> w) out.push_back(ts_.at(w));
  return out;
}

std::vector<std::vector<int>> enumerate_language(const Grammar& g,
                                                 std::size_t max_len,
                                                 std::size_t max_strings) {
  // BFS over sentential forms, pruned by terminal-prefix length.
  using Form = std::vector<Symbol>;
  std::set<std::vector<int>> out;
  std::deque<Form> queue;
  queue.push_back({Symbol{Symbol::Kind::Nonterminal, g.start()}});
  std::set<Form> seen;
  std::size_t expansions = 0;
  const std::size_t kMaxExpansions = 2000000;

  auto terminal_count = [](const Form& f) {
    std::size_t c = 0;
    for (const auto& s : f)
      if (s.kind == Symbol::Kind::Terminal) ++c;
    return c;
  };

  while (!queue.empty() && out.size() < max_strings &&
         expansions < kMaxExpansions) {
    Form form = std::move(queue.front());
    queue.pop_front();
    // Fully terminal?
    if (std::all_of(form.begin(), form.end(), [](const Symbol& s) {
          return s.kind == Symbol::Kind::Terminal;
        })) {
      if (form.size() <= max_len) {
        std::vector<int> word;
        for (const auto& s : form) word.push_back(s.id);
        out.insert(std::move(word));
      }
      continue;
    }
    // Epsilon-free grammar: forms only grow or stay, so prune on length.
    if (form.size() > max_len || terminal_count(form) > max_len) continue;
    // Expand the leftmost nonterminal.
    std::size_t i = 0;
    while (form[i].kind != Symbol::Kind::Nonterminal) ++i;
    for (const auto& p : g.productions()) {
      if (p.lhs != form[i].id) continue;
      ++expansions;
      Form next;
      next.reserve(form.size() + p.rhs.size() - 1);
      next.insert(next.end(), form.begin(), form.begin() + i);
      next.insert(next.end(), p.rhs.begin(), p.rhs.end());
      next.insert(next.end(), form.begin() + i + 1, form.end());
      if (next.size() <= max_len + 4 && seen.insert(next).second)
        queue.push_back(std::move(next));
    }
  }
  return {out.begin(), out.end()};
}

}  // namespace parsec::cfg
