// Sequential CYK recognition: the O(n^3) (per |G|) CFG baseline of
// Figure 8's "Sequential Machine" row.
#pragma once

#include <cstdint>
#include <vector>

#include "cfg/cnf.h"

namespace parsec::cfg {

/// CYK table: cell(i, len) holds the nonterminal set deriving the span
/// of `len` words starting at i (0-based), as a bool vector.
class CykTable {
 public:
  CykTable(int n, int num_nts)
      : n_(n), num_nts_(num_nts),
        cells_(static_cast<std::size_t>(n) * n,
               std::vector<bool>(num_nts, false)) {}

  std::vector<bool>& cell(int i, int len) {
    return cells_[static_cast<std::size_t>(i) * n_ + (len - 1)];
  }
  const std::vector<bool>& cell(int i, int len) const {
    return cells_[static_cast<std::size_t>(i) * n_ + (len - 1)];
  }
  int n() const { return n_; }
  int num_nts() const { return num_nts_; }

 private:
  int n_, num_nts_;
  std::vector<std::vector<bool>> cells_;
};

struct CykStats {
  std::uint64_t rule_applications = 0;  // (i, k, rule) combinations tried
};

/// True iff `word` (terminal ids) is in L(g).  Empty words rejected
/// (epsilon-free pipeline).
bool cyk_recognize(const CnfGrammar& g, const std::vector<int>& word,
                   CykStats* stats = nullptr);

/// Full table for inspection / parse counting.
CykTable cyk_table(const CnfGrammar& g, const std::vector<int>& word,
                   CykStats* stats = nullptr);

/// Number of distinct parse trees (capped at `limit` to avoid overflow).
std::uint64_t cyk_count_parses(const CnfGrammar& g,
                               const std::vector<int>& word,
                               std::uint64_t limit = 1u << 30);

}  // namespace parsec::cfg
