// Chomsky-normal-form conversion for the CYK recognizers.
//
// Input grammars must be epsilon-free (enforced at construction).  The
// transform lifts terminals out of long rules, binarizes, and
// eliminates unit productions; language equivalence is preserved for
// strings of length >= 1.
#pragma once

#include <string>
#include <vector>

#include "cfg/cfg.h"

namespace parsec::cfg {

struct CnfGrammar {
  int num_nonterminals = 0;
  int num_terminals = 0;
  int start = 0;

  struct BinaryRule {
    int lhs, left, right;
  };
  struct TerminalRule {
    int lhs, terminal;
  };
  std::vector<BinaryRule> binary;
  std::vector<TerminalRule> terminal;

  /// Human-readable nonterminal names (originals plus fresh X<i>).
  std::vector<std::string> nt_names;

  /// Nonterminals deriving terminal `t` in one step, as a bitmask
  /// vector: unit_terminal[t] is a vector<bool> over nonterminals.
  std::vector<std::vector<bool>> derives_terminal;

  void finalize();  // builds derives_terminal
};

/// Converts `g` to CNF.
CnfGrammar to_cnf(const Grammar& g);

}  // namespace parsec::cfg
