// Round-counted parallel CYK on the CRCW P-RAM (the Ruzzo row of
// Figure 8, see DESIGN.md §5 for the honest caveat).
//
// Each round applies every (i, len, k, rule) combination in parallel
// (one processor each, O(n^3 |G|) processors) and ORs the results into
// the table concurrently; rounds repeat until the table stops changing.
// For balanced grammars the measured round count is O(log n); for
// left-linear grammars it degrades to O(n) — Ruzzo's O(log^2 n) bound
// needs tree-size-bounded alternation, which we report as the analytic
// bound next to our measured rounds in bench_fig8_architectures.
#pragma once

#include <cstdint>
#include <vector>

#include "cfg/cnf.h"
#include "pram/machine.h"

namespace parsec::cfg {

struct PramCykResult {
  bool accepted = false;
  std::uint64_t rounds = 0;
  pram::StepStats stats;
};

PramCykResult pram_cyk_recognize(const CnfGrammar& g,
                                 const std::vector<int>& word);

}  // namespace parsec::cfg
