#include "cfg/parse_tree.h"

namespace parsec::cfg {

namespace {

std::unique_ptr<ParseTree> rebuild(const CnfGrammar& g, const CykTable& t,
                                   const std::vector<int>& word, int nt,
                                   int start, int len) {
  auto node = std::make_unique<ParseTree>();
  node->nt = nt;
  node->start = start;
  node->len = len;
  if (len == 1) {
    node->terminal = word[start];
    return node;
  }
  for (int k = 1; k < len; ++k) {
    const auto& left = t.cell(start, k);
    const auto& right = t.cell(start + k, len - k);
    for (const auto& r : g.binary) {
      if (r.lhs != nt || !left[r.left] || !right[r.right]) continue;
      node->left = rebuild(g, t, word, r.left, start, k);
      node->right = rebuild(g, t, word, r.right, start + k, len - k);
      return node;
    }
  }
  return nullptr;  // table said derivable but no witness: impossible
}

}  // namespace

std::optional<ParseTree> cyk_parse(const CnfGrammar& g,
                                   const std::vector<int>& word) {
  if (word.empty()) return std::nullopt;
  const CykTable t = cyk_table(g, word);
  const int n = static_cast<int>(word.size());
  if (!t.cell(0, n)[g.start]) return std::nullopt;
  auto root = rebuild(g, t, word, g.start, 0, n);
  if (!root) return std::nullopt;
  return std::move(*root);
}

std::string bracketing(const CnfGrammar& g, const ParseTree& t,
                       const std::vector<std::string>* words) {
  std::string out = "(" + g.nt_names[t.nt];
  if (t.is_leaf()) {
    out += ' ';
    out += words ? (*words)[t.start] : std::to_string(t.terminal);
  } else {
    out += ' ' + bracketing(g, *t.left, words);
    out += ' ' + bracketing(g, *t.right, words);
  }
  out += ')';
  return out;
}

bool tree_is_valid(const CnfGrammar& g, const ParseTree& t,
                   const std::vector<int>& word) {
  if (t.is_leaf()) {
    if (t.len != 1 || t.start < 0 ||
        t.start >= static_cast<int>(word.size()))
      return false;
    if (word[t.start] != t.terminal) return false;
    for (const auto& r : g.terminal)
      if (r.lhs == t.nt && r.terminal == t.terminal) return true;
    return false;
  }
  if (!t.left || !t.right) return false;
  if (t.left->start != t.start || t.right->start != t.start + t.left->len ||
      t.left->len + t.right->len != t.len)
    return false;
  bool rule_ok = false;
  for (const auto& r : g.binary)
    if (r.lhs == t.nt && r.left == t.left->nt && r.right == t.right->nt)
      rule_ok = true;
  return rule_ok && tree_is_valid(g, *t.left, word) &&
         tree_is_valid(g, *t.right, word);
}

}  // namespace parsec::cfg
