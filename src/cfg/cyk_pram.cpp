#include "cfg/cyk_pram.h"

#include "cfg/cyk.h"

namespace parsec::cfg {

PramCykResult pram_cyk_recognize(const CnfGrammar& g,
                                 const std::vector<int>& word) {
  PramCykResult r;
  const int n = static_cast<int>(word.size());
  if (n == 0) return r;
  pram::Machine m;

  CykTable t(n, g.num_nonterminals);
  // Leaves: one parallel step over n * |terminal rules| processors.
  m.for_all(static_cast<std::size_t>(n) * g.terminal.size(),
            [](std::size_t) {});
  for (int i = 0; i < n; ++i) t.cell(i, 1) = g.derives_terminal[word[i]];

  // Fixpoint rounds.  Processor width: one per (i, len, k, rule).
  std::size_t combos = 0;
  for (int len = 2; len <= n; ++len)
    combos += static_cast<std::size_t>(n - len + 1) * (len - 1);
  combos *= g.binary.size();

  bool changed = true;
  while (changed) {
    ++r.rounds;
    changed = false;
    m.for_all(std::max<std::size_t>(combos, 1), [](std::size_t) {});
    // All reads see the previous round's table; concurrent OR-writes.
    CykTable next = t;
    for (int len = 2; len <= n; ++len) {
      for (int i = 0; i + len <= n; ++i) {
        for (int k = 1; k < len; ++k) {
          const auto& left = t.cell(i, k);
          const auto& right = t.cell(i + k, len - k);
          auto& out = next.cell(i, len);
          for (const auto& rule : g.binary) {
            if (left[rule.left] && right[rule.right] && !out[rule.lhs]) {
              out[rule.lhs] = true;
              changed = true;
            }
          }
        }
      }
    }
    t = std::move(next);
  }
  r.accepted = t.cell(0, n)[g.start];
  r.stats = m.stats();
  return r;
}

}  // namespace parsec::cfg
