// Systolic CYK on a 2-D cellular automaton / mesh (the Kosaraju row of
// Figure 8: CFG recognition in O(n) steps on O(n^2) cells).
//
// Cells are the CYK spans arranged on a triangular grid.  The automaton
// runs in synchronous waves: in wave t every cell of span length t+1
// fires, combining pairs of shorter spans that are (by induction)
// already final.  Each wave is one automaton step (all cells work in
// parallel, each doing O(|G|) local work per split it consumes; the
// per-step local work is bounded by |G| because a cell consumes one
// split per wave: cell (i, len) starts firing at wave len-1 and
// consumes split k at wave len-1+... — we follow Kosaraju's schedule in
// which cell (i,len) receives the pair (k, len-k) streams and is final
// by wave 2*len; total 2n waves).
#pragma once

#include <cstdint>
#include <vector>

#include "cfg/cnf.h"

namespace parsec::cfg {

struct MeshCykResult {
  bool accepted = false;
  std::uint64_t waves = 0;       // automaton steps (the O(n) bound)
  std::uint64_t cells = 0;       // O(n^2)
  std::uint64_t max_cell_work = 0;  // per-wave local rule applications
};

/// Runs the systolic schedule; the recognized language is identical to
/// cyk_recognize (tested), the step count follows the 2n-1 wave bound.
MeshCykResult mesh_cyk_recognize(const CnfGrammar& g,
                                 const std::vector<int>& word);

}  // namespace parsec::cfg
