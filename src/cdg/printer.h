// Rendering of constraint networks in the style of the paper's figures.
//
// The golden-figure tests (tests/cdg/golden_figures_test.cpp) compare
// these renderings against the CN states shown in Figs. 1-6; the example
// programs print them for humans.
#pragma once

#include <string>

#include "cdg/network.h"

namespace parsec::cdg {

/// Per-word, per-role domain listing:
///
///   word 1 "The" [det]
///     governor: {DET-2, DET-3}
///     needs:    {BLANK-nil}
///
/// Role values appear in dense-index order (label-major, then modifiee,
/// nil first).
std::string render_domains(const Network& net);

/// One role's domain as "{DET-2, DET-3}".
std::string render_role(const Network& net, int role);

/// The arc matrix between two roles restricted to their alive role
/// values, as a 0/1 grid with row/column headers (cf. Figs. 3-6, 9).
std::string render_arc_matrix(const Network& net, int role_a, int role_b);

/// Compact one-line summary: counts of alive role values and arc ones.
std::string render_summary(const Network& net);

}  // namespace parsec::cdg
