#include "cdg/constraint_parser.h"

#include <cctype>
#include <optional>
#include <string>

#include "cdg/grammar.h"

namespace parsec::cdg {

namespace {

using util::Sexpr;

[[noreturn]] void fail(const Sexpr& at, const std::string& msg) {
  throw ConstraintParseError(msg + " at " + std::to_string(at.line) + ":" +
                             std::to_string(at.col) + " in `" +
                             at.to_string() + "`");
}

std::optional<int> parse_int(const std::string& s) {
  if (s.empty()) return std::nullopt;
  std::size_t i = (s[0] == '-') ? 1 : 0;
  if (i == s.size()) return std::nullopt;
  for (; i < s.size(); ++i)
    if (!std::isdigit(static_cast<unsigned char>(s[i]))) return std::nullopt;
  return std::stoi(s);
}

class Parser {
 public:
  explicit Parser(const Grammar& g) : g_(g) {}

  Constraint parse(const Sexpr& sx) {
    if (!sx.is_list() || sx.size() != 3 || !sx[0].is("if"))
      fail(sx, "constraint must be (if antecedent consequent)");
    Constraint c;
    c.root.op = Op::If;
    c.root.type = ValueType::Bool;
    c.root.args.push_back(parse_bool(sx[1]));
    c.root.args.push_back(parse_bool(sx[2]));
    c.arity = uses_y_ ? 2 : 1;
    return c;
  }

 private:
  Expr parse_bool(const Sexpr& sx) {
    if (!sx.is_list() || sx.items.empty() || !sx[0].is_atom())
      fail(sx, "expected a predicate");
    const std::string& head = sx[0].atom;
    Expr e;
    e.type = ValueType::Bool;
    if (head == "and" || head == "or") {
      e.op = head == "and" ? Op::And : Op::Or;
      if (sx.size() < 3) fail(sx, "(and ...) / (or ...) need >= 2 operands");
      for (std::size_t i = 1; i < sx.size(); ++i)
        e.args.push_back(parse_bool(sx[i]));
      return e;
    }
    if (head == "not") {
      e.op = Op::Not;
      if (sx.size() != 2) fail(sx, "(not p) takes exactly one operand");
      e.args.push_back(parse_bool(sx[1]));
      return e;
    }
    if (head == "eq" || head == "gt" || head == "lt") {
      e.op = head == "eq" ? Op::Eq : head == "gt" ? Op::Gt : Op::Lt;
      if (sx.size() != 3) fail(sx, "comparison takes exactly two operands");
      auto [a, b] = parse_value_pair(sx[1], sx[2], sx);
      if (e.op != Op::Eq && a.type != ValueType::Pos)
        fail(sx, "gt/lt compare positions/integers only (paper §1.3)");
      e.args.push_back(std::move(a));
      e.args.push_back(std::move(b));
      return e;
    }
    fail(sx, "unknown predicate `" + head + "`");
  }

  /// Parses the two operands of a comparison, resolving bare atoms
  /// against the type of the structurally-typed side.
  std::pair<Expr, Expr> parse_value_pair(const Sexpr& lhs, const Sexpr& rhs,
                                         const Sexpr& ctx) {
    std::optional<Expr> a = try_parse_structural(lhs);
    std::optional<Expr> b = try_parse_structural(rhs);
    if (a && b) {
      if (a->type != b->type)
        fail(ctx, std::string("type mismatch: ") + to_string(a->type) +
                      " vs " + to_string(b->type));
      return {std::move(*a), std::move(*b)};
    }
    if (a && !b) return {std::move(*a), parse_atom_as(rhs, a->type)};
    if (!a && b) return {parse_atom_as(lhs, b->type), std::move(*b)};
    // Both bare atoms: only positions/nil are unambiguous.
    Expr ea = parse_atom_as(lhs, ValueType::Pos);
    Expr eb = parse_atom_as(rhs, ValueType::Pos);
    return {std::move(ea), std::move(eb)};
  }

  /// Parses access-function applications (whose type is determined by
  /// their head); returns nullopt for bare atoms.
  std::optional<Expr> try_parse_structural(const Sexpr& sx) {
    if (sx.is_atom()) return std::nullopt;
    if (sx.items.empty() || !sx[0].is_atom())
      fail(sx, "expected an access function");
    const std::string& head = sx[0].atom;
    Expr e;
    if (head == "lab" || head == "mod" || head == "role" || head == "pos") {
      if (sx.size() != 2) fail(sx, "(" + head + " v) takes one variable");
      e.op = head == "lab"    ? Op::Lab
             : head == "mod"  ? Op::Mod
             : head == "role" ? Op::RoleOf
                              : Op::PosOf;
      e.type = (e.op == Op::Lab)      ? ValueType::Label
               : (e.op == Op::RoleOf) ? ValueType::RoleT
                                      : ValueType::Pos;
      e.args.push_back(parse_var(sx[1]));
      return e;
    }
    if (head == "word") {
      if (sx.size() != 2) fail(sx, "(word p) takes one position expression");
      e.op = Op::WordAt;
      e.type = ValueType::Word;
      e.args.push_back(parse_pos_expr(sx[1]));
      return e;
    }
    if (head == "cat") {
      if (sx.size() != 2) fail(sx, "(cat w) takes one word expression");
      e.op = Op::CatOf;
      e.type = ValueType::Cat;
      auto w = try_parse_structural(sx[1]);
      if (!w || w->type != ValueType::Word)
        fail(sx, "(cat ...) expects a (word ...) expression");
      e.args.push_back(std::move(*w));
      return e;
    }
    fail(sx, "unknown access function `" + head + "`");
  }

  Expr parse_pos_expr(const Sexpr& sx) {
    if (sx.is_atom()) return parse_atom_as(sx, ValueType::Pos);
    auto e = try_parse_structural(sx);
    if (!e || e->type != ValueType::Pos)
      fail(sx, "expected a position expression");
    return std::move(*e);
  }

  Expr parse_var(const Sexpr& sx) {
    if (!sx.is_atom() || (sx.atom != "x" && sx.atom != "y"))
      fail(sx, "expected role-value variable x or y");
    if (sx.atom == "y") uses_y_ = true;
    Expr e;
    e.op = Op::Var;
    e.type = ValueType::Bool;  // placeholder; Var is not a value by itself
    e.value = sx.atom == "y" ? 1 : 0;
    return e;
  }

  Expr parse_atom_as(const Sexpr& sx, ValueType want) {
    if (!sx.is_atom())
      fail(sx, "expected a constant of type " + std::string(to_string(want)));
    const std::string& a = sx.atom;
    Expr e;
    e.type = want;
    switch (want) {
      case ValueType::Pos:
        if (a == "nil") {
          e.op = Op::ConstInt;
          e.value = kNil;
          return e;
        }
        if (auto v = parse_int(a)) {
          e.op = Op::ConstInt;
          e.value = *v;
          return e;
        }
        fail(sx, "expected a position literal or nil, got `" + a + "`");
      case ValueType::Label:
        if (auto id = g_.labels().find(a)) {
          e.op = Op::ConstSym;
          e.value = *id;
          return e;
        }
        fail(sx, "unknown label `" + a + "`");
      case ValueType::RoleT:
        if (auto id = g_.roles().find(a)) {
          e.op = Op::ConstSym;
          e.value = *id;
          return e;
        }
        fail(sx, "unknown role `" + a + "`");
      case ValueType::Cat:
        if (auto id = g_.categories().find(a)) {
          e.op = Op::ConstSym;
          e.value = *id;
          return e;
        }
        fail(sx, "unknown category `" + a + "`");
      case ValueType::Word:
      case ValueType::Bool:
        break;
    }
    fail(sx, "cannot write a literal of type " +
                 std::string(to_string(want)));
  }

  const Grammar& g_;
  bool uses_y_ = false;
};

}  // namespace

Constraint parse_constraint(const Grammar& g, const util::Sexpr& sexpr) {
  return Parser(g).parse(sexpr);
}

Constraint parse_constraint(const Grammar& g, std::string_view text) {
  return parse_constraint(g, util::parse_sexpr(text));
}

}  // namespace parsec::cdg
