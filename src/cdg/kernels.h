// Engine-agnostic filtering kernels over arena spans.
//
// Every backend — the sequential parser, the OpenMP engine, the CRCW
// P-RAM step model, the topology models, and (for its packed l×l PE
// words) the MasPar simulation — performs the same four bit-level
// operations: zero an eliminated role value's rows/columns, test
// support, evaluate a unary constraint over a domain, and sweep a
// binary constraint over an arc matrix.  These used to live as bespoke
// inner loops in each engine; they are defined once here, expressed
// over NetworkArena spans, so a layout change (or a future SIMD word
// kernel) lands in exactly one place.
//
// Semantics contracts (the equivalence tests depend on them):
//   * iteration order is role-major, rv-ascending, and set-bit
//     ascending within rows — matching the sequential formulation;
//   * counter hooks (`evals`) replicate the historical increments
//     exactly: one per unary test, two per binary pair tested (whether
//     or not the second assignment runs);
//   * sweep_binary clears bits in place and returns how many.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "cdg/arena.h"
#include "cdg/constraint_eval.h"
#include "cdg/role_value.h"
#include "util/bitmatrix.h"
#include "util/bitset.h"

namespace parsec::cdg::kernels {

/// Zeroes (role, rv)'s row (in arcs where `role` is the row side) and
/// column (where it is the column side) across every incident arc
/// matrix.  The matrix never shrinks (paper §2.2.1, design decision 4).
void zero_row_col(NetworkArena& a, int role, int rv);

/// True iff every arc incident to `role` still has a supporting 1-bit
/// for rv (the AND of row/column ORs, paper §1.4).
bool supported(const NetworkArena& a, int role, int rv);

/// Rebuilds the AC-4 support counters in `a.support_counts()` from the
/// current domains and arc matrices.  Word-granular: row counts are
/// popcounts over row words, column counts come from iterating each
/// row's set bits — no per-bit matrix probes.  Returns the number of
/// row words scanned (the initial counting work).
std::size_t count_supports(NetworkArena& a);

/// Evaluates one unary constraint over the set bits of `domain`
/// (ascending), appending failing dense rv indices to `victims`.
/// Bindings are derived from (ix, rid, w).  If `evals` is non-null it
/// is incremented once per value tested.
void propagate_unary(const CompiledConstraint& c, const Sentence& sent,
                     const RvIndexer& ix, RoleId rid, WordPos w,
                     util::ConstBitSpan domain, std::vector<int>& victims,
                     std::size_t* evals = nullptr);

/// As above, but marks victims by setting flags[rv] = 1.  Parallel
/// engines stage eliminations in per-role slices of the arena's
/// rv_flags region (disjoint writes, race-free), then eliminate in
/// role-major, rv-ascending order.
void propagate_unary(const CompiledConstraint& c, const Sentence& sent,
                     const RvIndexer& ix, RoleId rid, WordPos w,
                     util::ConstBitSpan domain, std::span<std::uint8_t> flags,
                     std::size_t* evals = nullptr);

/// Sweeps one binary constraint over the surviving bits of one arc
/// matrix: for every (alive_a[i], alive_b[j]) pair whose bit is set,
/// evaluates both variable assignments and clears the bit on failure.
/// If `evals` is non-null it is incremented by 2 per pair tested
/// (both assignments are charged even when the first already fails).
/// Returns the number of bits cleared.
int sweep_binary(const CompiledConstraint& c, const Sentence& sent,
                 util::BitMatrixView m, std::span<const int> alive_a,
                 std::span<const Binding> bind_a, std::span<const int> alive_b,
                 std::span<const Binding> bind_b,
                 std::size_t* evals = nullptr);

// ---------------------------------------------------------------------
// Packed l×l submatrix kernels (MasPar PE words, paper Fig. 13).
//
// Each MasPar PE holds an l×l label submatrix packed into one 64-bit
// word: bit (i*l + j) is row-label-slot i, column-label-slot j.  The
// row/column masking that the engine's SIMD phases perform is the
// packed counterpart of zero_row / zero_col above.
// ---------------------------------------------------------------------

/// Mask of row `lab` in an l×l packed submatrix.
constexpr std::uint64_t packed_row_mask(int lab, int l) {
  return ((std::uint64_t{1} << l) - 1) << (lab * l);
}

/// Mask of column `lab` in an l×l packed submatrix.
constexpr std::uint64_t packed_col_mask(int lab, int l) {
  std::uint64_t m = 0;
  for (int i = 0; i < l; ++i) m |= std::uint64_t{1} << (i * l + lab);
  return m;
}

constexpr std::uint64_t zero_packed_row(std::uint64_t w, int lab, int l) {
  return w & ~packed_row_mask(lab, l);
}

constexpr std::uint64_t zero_packed_col(std::uint64_t w, int lab, int l) {
  return w & ~packed_col_mask(lab, l);
}

/// Bit (i, j) of an l×l packed submatrix.
constexpr bool packed_test(std::uint64_t w, int i, int j, int l) {
  return (w >> (i * l + j)) & 1u;
}

}  // namespace parsec::cdg::kernels
