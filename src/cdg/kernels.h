// Engine-agnostic filtering kernels over arena spans.
//
// Every backend — the sequential parser, the OpenMP engine, the CRCW
// P-RAM step model, the topology models, and (for its packed l×l PE
// words) the MasPar simulation — performs the same four bit-level
// operations: zero an eliminated role value's rows/columns, test
// support, evaluate a unary constraint over a domain, and sweep a
// binary constraint over an arc matrix.  These used to live as bespoke
// inner loops in each engine; they are defined once here, expressed
// over NetworkArena spans, so a layout change (or a future SIMD word
// kernel) lands in exactly one place.
//
// Semantics contracts (the equivalence tests depend on them):
//   * iteration order is role-major, rv-ascending, and set-bit
//     ascending within rows — matching the sequential formulation;
//   * counter hooks (`evals`) replicate the historical increments
//     exactly: one per unary test, two per binary pair tested (whether
//     or not the second assignment runs);
//   * sweep_binary clears bits in place and returns how many.
//
// Counter-hook contract for the masked (vectorized) kernels:
//   * `evals` still counts ACTUAL bytecode-VM dispatches — one per
//     unary value tested, two per binary pair dispatched — so it is a
//     faithful cost measure of the residual path;
//   * pairs/values the mask pass batch-decides without a dispatch are
//     counted separately (`masked_pairs` / `masked_decided`), each
//     representing the same work the plain kernel would have charged:
//     2 evals per masked binary pair, 1 per masked unary value;
//   * therefore  evals_plain ==  evals_masked + 2 * masked_pairs
//     (binary) and  evals_plain == evals_masked + masked_decided
//     (unary) for any identical network state — the *effective* counts
//     NetworkCounters::effective_{unary,binary}_evals() report, which
//     is what the paper-figure benches consume (tested in
//     tests/cdg/maskcache_test.cpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "cdg/arena.h"
#include "cdg/constraint_eval.h"
#include "cdg/role_value.h"
#include "cdg/simd.h"
#include "util/bitmatrix.h"
#include "util/bitset.h"

// Portable inner-loop vectorization hint for the few word loops that
// do NOT route through the runtime dispatch table in cdg/simd.h:
// `omp simd` (compiled with any OpenMP-capable compiler, no runtime
// needed) lets the auto-vectorizer commit to SIMD code without a
// legality analysis.  Compiles to nothing when OpenMP is off (e.g. the
// TSan CI leg).  Not to be confused with the PARSEC_SIMD *environment
// variable*, which caps the dispatch tier at runtime (cdg/simd.h).
#if defined(_OPENMP)
#define PARSEC_OMP_SIMD _Pragma("omp simd")
#else
#define PARSEC_OMP_SIMD
#endif

namespace parsec::cdg::kernels {

/// Zeroes (role, rv)'s row (in arcs where `role` is the row side) and
/// column (where it is the column side) across every incident arc
/// matrix.  The matrix never shrinks (paper §2.2.1, design decision 4).
/// Column clears walk only the partner's alive rows, relying on the
/// arc invariant (bits only at alive×alive positions) that every
/// engine maintains.
void zero_row_col(NetworkArena& a, int role, int rv);

/// Batched zero_row_col for several victims of ONE role: rows are
/// zeroed per victim, but each column-side arc is cleared in a single
/// ANDN pass over the partner's alive rows using a victim bitmask
/// built in `scratch` (D bits, clobbered — the arena's support
/// scratch row for `role` is a natural fit).  End state is identical
/// to calling zero_row_col once per victim.
void zero_rows_cols(NetworkArena& a, int role, std::span<const int> rvs,
                    util::BitSpan scratch);

/// True iff every arc incident to `role` still has a supporting 1-bit
/// for rv (the AND of row/column ORs, paper §1.4).
bool supported(const NetworkArena& a, int role, int rv);

/// Rebuilds the AC-4 support counters in `a.support_counts()` from the
/// current domains and arc matrices.  Word-granular: row counts are
/// popcounts over row words, column counts come from iterating each
/// row's set bits — no per-bit matrix probes.  Returns the number of
/// row words scanned (the initial counting work).
std::size_t count_supports(NetworkArena& a);

/// Evaluates one unary constraint over the set bits of `domain`
/// (ascending), appending failing dense rv indices to `victims`.
/// Bindings are derived from (ix, rid, w).  If `evals` is non-null it
/// is incremented once per value tested.
void propagate_unary(const CompiledConstraint& c, const Sentence& sent,
                     const RvIndexer& ix, RoleId rid, WordPos w,
                     util::ConstBitSpan domain, std::vector<int>& victims,
                     std::size_t* evals = nullptr);

/// As above, but marks victims by setting flags[rv] = 1.  Parallel
/// engines stage eliminations in per-role slices of the arena's
/// rv_flags region (disjoint writes, race-free), then eliminate in
/// role-major, rv-ascending order.
void propagate_unary(const CompiledConstraint& c, const Sentence& sent,
                     const RvIndexer& ix, RoleId rid, WordPos w,
                     util::ConstBitSpan domain, std::span<std::uint8_t> flags,
                     std::size_t* evals = nullptr);

/// Sweeps one binary constraint over the surviving bits of one arc
/// matrix: for every (alive_a[i], alive_b[j]) pair whose bit is set,
/// evaluates both variable assignments and clears the bit on failure.
/// If `evals` is non-null it is incremented by 2 per pair tested
/// (both assignments are charged even when the first already fails).
/// Returns the number of bits cleared.
int sweep_binary(const CompiledConstraint& c, const Sentence& sent,
                 util::BitMatrixView m, std::span<const int> alive_a,
                 std::span<const Binding> bind_a, std::span<const int> alive_b,
                 std::span<const Binding> bind_b,
                 std::size_t* evals = nullptr);

// ---------------------------------------------------------------------
// Vectorized evaluation layer: per-(part, role) truth masks + word
// kernels (the host-side counterpart of the paper's per-PE constraint
// broadcast — one predicate applied to every role value at once).
// ---------------------------------------------------------------------

/// The four hoisted-part truth masks of one binary constraint for one
/// role, one bit per role value (dense rv index): "does this role's
/// value rv satisfy the x-side / y-side hoisted conjunction?".
struct FactoredMasks {
  util::ConstBitSpan ante_x, ante_y;
  util::ConstBitSpan cons_x, cons_y;
};

/// Per-sentence cache of hoisted-part truth masks, resident in the
/// arena's mask region (4 slots per binary constraint, see
/// NetworkArena::mask).  Each mask bit is a pure function of (sentence,
/// role, role value) — independent of the domain state — and is
/// materialized only for values alive at build time; since domains only
/// shrink and the sweep consults mask bits solely at alive positions,
/// eliminations never invalidate a mask.  Only re-binding the arena to
/// a new sentence does: staleness is generation-checked against
/// arena.reinits(), so Network::reinit invalidates every mask in O(1).
class MaskCache {
 public:
  static constexpr std::size_t kSlotsPerConstraint = 4;

  /// Sizes the generation table for `num_binary` constraints (the
  /// arena's mask region must hold 4 * num_binary slots).
  void configure(std::size_t num_binary) {
    if (gen_.size() != num_binary) gen_.assign(num_binary, 0);
  }

  /// True when constraint k's masks are valid for the arena's current
  /// sentence binding.
  bool built(const NetworkArena& a, std::size_t k) const {
    return k < gen_.size() && gen_[k] == a.reinits() + 1;
  }

  /// Materializes (if stale) the four mask rows of binary constraint
  /// `k` for every role.  Each hoisted term is evaluated at the
  /// cheapest granularity its dependences allow — once per label
  /// (mod-independent terms fill whole label runs of the label-major rv
  /// axis), once per modifiee, once per alive value only when the term
  /// reads both halves, and shared across roles when it reads neither
  /// (role v) nor (pos v) — so a build typically costs O(|L| + n)
  /// evaluations per term, not O(R*D).  `roles_per_word` maps dense
  /// role indices to (role id, word).  Returns hoisted evaluations
  /// performed (0 on a cache hit); the caller charges them to its
  /// mask-build counter.
  std::size_t ensure(NetworkArena& a, const FactoredConstraint& c,
                     std::size_t k, const Sentence& sent, const RvIndexer& ix,
                     int roles_per_word);

  /// Mask spans of constraint k for `role` (must be built).
  FactoredMasks masks(const NetworkArena& a, std::size_t k, int role) const {
    assert(built(a, k));
    const std::size_t base = k * kSlotsPerConstraint;
    return FactoredMasks{a.mask(base + 0, role), a.mask(base + 1, role),
                         a.mask(base + 2, role), a.mask(base + 3, role)};
  }

  /// Total mask (re)builds across the cache's lifetime.
  std::uint64_t builds() const { return builds_; }

 private:
  std::vector<std::uint64_t> gen_;  // arena.reinits()+1 when current
  std::uint64_t builds_ = 0;
};

/// Counter sink for the masked kernels (see the counter-hook contract
/// in the header comment).  Null members are simply not charged.
struct MaskedCounters {
  std::size_t* vm_evals = nullptr;       // actual bytecode dispatches
  std::size_t* masked = nullptr;         // pairs/values decided mask-only
  std::size_t* build_evals = nullptr;    // hoisted evals spent on masks
  // Tiled-sweep bookkeeping: row tiles processed and 64-bit words put
  // through the dispatched row kernel.  Both are pure functions of the
  // network state (tier-independent — the scalar, AVX2 and AVX-512
  // paths process identical words), so the perf gate can pin them.
  std::size_t* tile_sweeps = nullptr;
  std::size_t* lane_words = nullptr;
};

/// Tiling of the masked binary sweep: alive rows are processed in
/// blocks of up to `rows` rows — one uninterrupted dispatched-kernel
/// pass over the block staging every undecided word, then one residual
/// bytecode-VM pass over the staged bits (cache-blocked BMM shape: the
/// vector phase never alternates with VM dispatches).  Results and
/// counter totals are identical for every tile size, because a pair's
/// residual verdict depends only on (sentence, i, j), never on sweep
/// order; the tile-size axis of bench_ablation_masks measures the cost
/// difference.  `rows` is clamped to [1, kMaxSweepTileRows], and a
/// tile never stages more words than the kernel's stack budget allows
/// (wide rows shrink the effective block height).
struct SweepTiling {
  std::size_t rows = 64;
};

inline constexpr std::size_t kMaxSweepTileRows = 64;

/// Process-wide tiling override (ablation/bench knob).  Not a
/// synchronization point: set before parsing starts, like
/// simd::force_tier.
void set_sweep_tiling(const SweepTiling& t);
SweepTiling sweep_tiling();

/// Masked sweep of one binary constraint over one arc matrix: the
/// separable part of the constraint is applied as bitwise AND/ANDN over
/// each surviving row, deciding most pairs without a VM dispatch; only
/// pairs the masks leave undecided fall back to the full bytecode
/// program (both variable assignments, exactly like sweep_binary).
/// The row pass runs through the runtime-dispatched SIMD kernel
/// (cdg/simd.h — scalar / AVX2 / AVX-512, all bit-identical) in
/// cache-blocked row tiles (SweepTiling above): per tile, one vector
/// phase stages the undecided words, then one residual-VM phase
/// resolves them.
/// `dom_a` enumerates the row side's alive values; (rid, w) pairs give
/// the roles' binding coordinates for the fallback.  When
/// `apply_residual` is false undecided pairs are left untouched (the
/// mask-only ablation mode; results then UNDER-approximate the plain
/// sweep).  Returns bits cleared.  Bit-identical to sweep_binary by
/// construction when `apply_residual` is true.
int sweep_binary_masked(const FactoredConstraint& c, const Sentence& sent,
                        util::BitMatrixView m, util::ConstBitSpan dom_a,
                        const FactoredMasks& ma, RoleId rid_a, WordPos wa,
                        const FactoredMasks& mb, RoleId rid_b, WordPos wb,
                        const RvIndexer& ix, const MaskedCounters& counters,
                        bool apply_residual = true);

/// Hoisted-guard unary propagation: evaluates the constraint's
/// role-value-independent guard once for the role; when it fails the
/// whole domain is vacuously satisfied (domain.count() charged to
/// `counters.masked`) and no per-value work runs.  Otherwise the
/// residual program runs per alive value exactly like propagate_unary.
/// Victims are appended in ascending order.
void propagate_unary_masked(const FactoredConstraint& c, const Sentence& sent,
                            const RvIndexer& ix, RoleId rid, WordPos w,
                            util::ConstBitSpan domain,
                            std::vector<int>& victims,
                            const MaskedCounters& counters);

/// As above, but marks victims by setting flags[rv] = 1 (parallel
/// engines' staging; see the flags overload of propagate_unary).
void propagate_unary_masked(const FactoredConstraint& c, const Sentence& sent,
                            const RvIndexer& ix, RoleId rid, WordPos w,
                            util::ConstBitSpan domain,
                            std::span<std::uint8_t> flags,
                            const MaskedCounters& counters);

/// Word-parallel support sweep for one role: writes, into `out` (D
/// bits), the AND over every incident arc of "role value has at least
/// one supporting 1-bit on this arc".  Row-side arcs contribute one
/// row_any bit per value; column-side arcs contribute an OR-fold of
/// the partner's rows (one sequential pass instead of D strided
/// column probes).  out.test(rv) == supported(a, role, rv) for every
/// rv; dead values simply read 0.
void support_mask(const NetworkArena& a, int role, util::BitSpan out);

// ---------------------------------------------------------------------
// Packed l×l submatrix kernels (MasPar PE words, paper Fig. 13).
//
// Each MasPar PE holds an l×l label submatrix packed into one 64-bit
// word: bit (i*l + j) is row-label-slot i, column-label-slot j.  The
// row/column masking that the engine's SIMD phases perform is the
// packed counterpart of zero_row / zero_col above.
// ---------------------------------------------------------------------

/// Mask of row `lab` in an l×l packed submatrix.
constexpr std::uint64_t packed_row_mask(int lab, int l) {
  return ((std::uint64_t{1} << l) - 1) << (lab * l);
}

/// Mask of column `lab` in an l×l packed submatrix.
constexpr std::uint64_t packed_col_mask(int lab, int l) {
  std::uint64_t m = 0;
  for (int i = 0; i < l; ++i) m |= std::uint64_t{1} << (i * l + lab);
  return m;
}

constexpr std::uint64_t zero_packed_row(std::uint64_t w, int lab, int l) {
  return w & ~packed_row_mask(lab, l);
}

constexpr std::uint64_t zero_packed_col(std::uint64_t w, int lab, int l) {
  return w & ~packed_col_mask(lab, l);
}

/// Bit (i, j) of an l×l packed submatrix.
constexpr bool packed_test(std::uint64_t w, int i, int j, int l) {
  return (w >> (i * l + j)) & 1u;
}

}  // namespace parsec::cdg::kernels
