#include "cdg/constraint_eval.h"

#include <array>
#include <cassert>
#include <stdexcept>

#include "obs/trace.h"

namespace parsec::cdg {

namespace {

/// Runtime value: a tagged int plus a validity flag.  Accessing a
/// property of the nil word (e.g. (cat (word (mod x))) when mod is nil)
/// yields an invalid value; every comparison against it is false.
struct Value {
  int v = 0;
  bool valid = true;
  bool truth = false;  // for Bool values
};

Value make_bool(bool b) { return Value{0, true, b}; }
Value make_int(int v) { return Value{v, true, false}; }
Value make_invalid() { return Value{0, false, false}; }

const Binding& binding_for(const EvalContext& ctx, int var) {
  return var == 0 ? ctx.x : ctx.y;
}

Value eval_expr(const Expr& e, const EvalContext& ctx) {
  switch (e.op) {
    case Op::Lab:
      return make_int(binding_for(ctx, e.args[0].value).rv.label);
    case Op::Mod:
      return make_int(binding_for(ctx, e.args[0].value).rv.mod);
    case Op::RoleOf:
      return make_int(binding_for(ctx, e.args[0].value).role);
    case Op::PosOf:
      return make_int(binding_for(ctx, e.args[0].value).pos);
    case Op::WordAt: {
      Value p = eval_expr(e.args[0], ctx);
      if (!p.valid || p.v < 1 || p.v > ctx.sentence->size())
        return make_invalid();
      return make_int(p.v);
    }
    case Op::CatOf: {
      Value w = eval_expr(e.args[0], ctx);
      if (!w.valid) return make_invalid();
      return make_int(ctx.sentence->cat_at(w.v));
    }
    case Op::ConstInt:
    case Op::ConstSym:
      return make_int(e.value);
    case Op::Eq: {
      Value a = eval_expr(e.args[0], ctx);
      Value b = eval_expr(e.args[1], ctx);
      return make_bool(a.valid && b.valid && a.v == b.v);
    }
    case Op::Gt: {
      Value a = eval_expr(e.args[0], ctx);
      Value b = eval_expr(e.args[1], ctx);
      return make_bool(a.valid && b.valid && a.v > b.v);
    }
    case Op::Lt: {
      Value a = eval_expr(e.args[0], ctx);
      Value b = eval_expr(e.args[1], ctx);
      return make_bool(a.valid && b.valid && a.v < b.v);
    }
    case Op::And: {
      for (const Expr& a : e.args)
        if (!eval_expr(a, ctx).truth) return make_bool(false);
      return make_bool(true);
    }
    case Op::Or: {
      for (const Expr& a : e.args)
        if (eval_expr(a, ctx).truth) return make_bool(true);
      return make_bool(false);
    }
    case Op::Not:
      return make_bool(!eval_expr(e.args[0], ctx).truth);
    case Op::If: {
      // (if A C) as a value: !A || C.
      bool a = eval_expr(e.args[0], ctx).truth;
      if (!a) return make_bool(true);
      return make_bool(eval_expr(e.args[1], ctx).truth);
    }
    case Op::Var:
      break;  // vars only appear under access functions
  }
  throw std::logic_error("malformed constraint AST");
}

}  // namespace

bool eval_constraint(const Constraint& c, const EvalContext& ctx) {
  assert(c.root.op == Op::If);
  return eval_expr(c.root, ctx).truth;
}

// ---------------------------------------------------------------------
// Bytecode compiler / stack evaluator
// ---------------------------------------------------------------------

namespace {

using BOp = CompiledConstraint::BOp;
using Instr = CompiledConstraint::Instr;

void flatten(const Expr& e, std::vector<Instr>& out) {
  switch (e.op) {
    case Op::Lab:
      out.push_back({BOp::PushLab, e.args[0].value});
      return;
    case Op::Mod:
      out.push_back({BOp::PushMod, e.args[0].value});
      return;
    case Op::RoleOf:
      out.push_back({BOp::PushRole, e.args[0].value});
      return;
    case Op::PosOf:
      out.push_back({BOp::PushPos, e.args[0].value});
      return;
    case Op::ConstInt:
    case Op::ConstSym:
      out.push_back({BOp::PushConst, e.value});
      return;
    case Op::WordAt:
      flatten(e.args[0], out);
      out.push_back({BOp::WordAt, 0});
      return;
    case Op::CatOf:
      flatten(e.args[0], out);
      out.push_back({BOp::CatOf, 0});
      return;
    case Op::Not:
      flatten(e.args[0], out);
      out.push_back({BOp::Not, 0});
      return;
    case Op::Eq:
    case Op::Gt:
    case Op::Lt:
      flatten(e.args[0], out);
      flatten(e.args[1], out);
      out.push_back({e.op == Op::Eq   ? BOp::Eq
                     : e.op == Op::Gt ? BOp::Gt
                                      : BOp::Lt,
                     0});
      return;
    case Op::And:
    case Op::Or: {
      // Short-circuit: after each operand but the last, branch out if
      // it already decides the result (keeping it as the value).
      const BOp branch =
          e.op == Op::And ? BOp::JmpIfFalseKeep : BOp::JmpIfTrueKeep;
      std::vector<std::size_t> patches;
      for (std::size_t i = 0; i < e.args.size(); ++i) {
        flatten(e.args[i], out);
        if (i + 1 < e.args.size()) {
          patches.push_back(out.size());
          out.push_back({branch, 0});
        }
      }
      for (std::size_t p : patches)
        out[p].arg = static_cast<std::int32_t>(out.size());
      return;
    }
    case Op::If: {
      flatten(e.args[0], out);
      const std::size_t patch = out.size();
      out.push_back({BOp::IfAnte, 0});
      flatten(e.args[1], out);
      out[patch].arg = static_cast<std::int32_t>(out.size());
      return;
    }
    case Op::Var:
      break;
  }
  throw std::logic_error("malformed constraint AST (compile)");
}

}  // namespace

CompiledConstraint compile_constraint(const Constraint& c) {
  CompiledConstraint cc;
  cc.arity = c.arity;
  cc.name = c.name;
  flatten(c.root, cc.code);
  return cc;
}

std::vector<CompiledConstraint> compile_all(
    const std::vector<Constraint>& cs) {
  std::vector<CompiledConstraint> out;
  out.reserve(cs.size());
  for (const Constraint& c : cs) out.push_back(compile_constraint(c));
  return out;
}

// ---------------------------------------------------------------------
// Factoring pass (predicate hoisting)
// ---------------------------------------------------------------------

namespace {

/// Which variables a subtree consults, split by the access kind: the
/// label / modifiee halves of the role value, and the role/position
/// "site" slots.  The mask builder picks an evaluation granularity per
/// hoisted conjunct from these (see HoistedTerm).
struct VarUse {
  bool uses[2] = {false, false};
  bool lab_dep[2] = {false, false};   // (lab v) appears
  bool mod_dep[2] = {false, false};   // (mod v) appears
  bool site_dep[2] = {false, false};  // (role v) / (pos v) appears

  bool rv_dep(int v) const { return lab_dep[v] || mod_dep[v]; }
};

void scan_vars(const Expr& e, VarUse& u) {
  switch (e.op) {
    case Op::Lab:
      u.uses[e.args[0].value] = true;
      u.lab_dep[e.args[0].value] = true;
      return;
    case Op::Mod:
      u.uses[e.args[0].value] = true;
      u.mod_dep[e.args[0].value] = true;
      return;
    case Op::RoleOf:
    case Op::PosOf:
      u.uses[e.args[0].value] = true;
      u.site_dep[e.args[0].value] = true;
      return;
    default:
      for (const Expr& a : e.args) scan_vars(a, u);
      return;
  }
}

/// Top-level conjuncts of a Bool expression (the expression itself when
/// it is not an And).
std::vector<const Expr*> conjuncts_of(const Expr& e) {
  std::vector<const Expr*> out;
  if (e.op == Op::And)
    for (const Expr& a : e.args) out.push_back(&a);
  else
    out.push_back(&e);
  return out;
}

/// Compiles a conjunction of `parts` into a standalone program; empty
/// input yields an empty program (constant true for eval_hoisted).
CompiledConstraint compile_conjunction(const std::vector<const Expr*>& parts,
                                       int arity, const std::string& name) {
  CompiledConstraint cc;
  cc.arity = arity;
  cc.name = name;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    flatten(*parts[i], cc.code);
    if (i + 1 < parts.size())
      cc.code.push_back({BOp::JmpIfFalseKeep, 0});
  }
  // Patch every inter-conjunct branch to the end of the program.
  for (auto& in : cc.code)
    if (in.op == BOp::JmpIfFalseKeep && in.arg == 0)
      in.arg = static_cast<std::int32_t>(cc.code.size());
  return cc;
}

}  // namespace

FactoredConstraint factor_constraint(const Constraint& c) {
  FactoredConstraint f;
  f.full = compile_constraint(c);
  f.arity = c.arity;
  f.name = c.name;

  const auto term_of = [&c](const Expr* e, const VarUse& u, int var) {
    HoistedTerm t;
    t.prog = compile_conjunction({e}, c.arity, c.name);
    t.uses_lab = u.lab_dep[var];
    t.uses_mod = u.mod_dep[var];
    t.uses_site = u.site_dep[var];
    return t;
  };

  const auto classify = [&](const std::vector<const Expr*>& cs,
                            std::vector<const Expr*>& x_only,
                            std::vector<const Expr*>& y_only,
                            std::vector<HoistedTerm>& x_terms,
                            std::vector<HoistedTerm>& y_terms) {
    bool residual = false;
    for (const Expr* e : cs) {
      VarUse u;
      scan_vars(*e, u);
      if (u.uses[0] && u.uses[1]) {
        residual = true;  // genuinely pairwise
      } else if (u.uses[1]) {
        y_only.push_back(e);
        y_terms.push_back(term_of(e, u, 1));
      } else {
        x_only.push_back(e);  // x-only and constant conjuncts
        x_terms.push_back(term_of(e, u, 0));
      }
    }
    return residual;
  };

  if (c.arity == 2) {
    std::vector<const Expr*> ax, ay, cx, cy;
    f.ante_residual = classify(conjuncts_of(c.antecedent()), ax, ay,
                               f.ante_x_terms, f.ante_y_terms);
    f.cons_residual = classify(conjuncts_of(c.consequent()), cx, cy,
                               f.cons_x_terms, f.cons_y_terms);
    f.ante_x = compile_conjunction(ax, 2, c.name);
    f.ante_y = compile_conjunction(ay, 2, c.name);
    f.cons_x = compile_conjunction(cx, 2, c.name);
    f.cons_y = compile_conjunction(cy, 2, c.name);
    return f;
  }

  // Unary: split the antecedent into role-value-independent guard
  // conjuncts and the rest.
  std::vector<const Expr*> guard, rest;
  for (const Expr* e : conjuncts_of(c.antecedent())) {
    VarUse u;
    scan_vars(*e, u);
    (u.rv_dep(0) ? rest : guard).push_back(e);
  }
  f.unary_guard = compile_conjunction(guard, 1, c.name);
  // unary_rest == full with the guard conjuncts removed: when every
  // guard conjunct is true, If(And(guard, rest), C) == If(And(rest), C).
  f.unary_rest.arity = 1;
  f.unary_rest.name = c.name;
  if (rest.empty()) {
    // If(true, C) == C.
    flatten(c.consequent(), f.unary_rest.code);
  } else {
    for (std::size_t i = 0; i < rest.size(); ++i) {
      flatten(*rest[i], f.unary_rest.code);
      if (i + 1 < rest.size())
        f.unary_rest.code.push_back({BOp::JmpIfFalseKeep, 0});
    }
    for (auto& in : f.unary_rest.code)
      if (in.op == BOp::JmpIfFalseKeep && in.arg == 0)
        in.arg = static_cast<std::int32_t>(f.unary_rest.code.size());
    const std::size_t patch = f.unary_rest.code.size();
    f.unary_rest.code.push_back({BOp::IfAnte, 0});
    flatten(c.consequent(), f.unary_rest.code);
    f.unary_rest.code[patch].arg =
        static_cast<std::int32_t>(f.unary_rest.code.size());
  }
  return f;
}

std::vector<FactoredConstraint> factor_all(const std::vector<Constraint>& cs) {
  obs::Span span("cdg.factoring", "compile");
  std::vector<FactoredConstraint> out;
  out.reserve(cs.size());
  for (const Constraint& c : cs) out.push_back(factor_constraint(c));
  span.arg("constraints", static_cast<std::int64_t>(out.size()));
  return out;
}

bool eval_hoisted(const CompiledConstraint& part, const Sentence& sent,
                  const Binding& b) {
  if (part.code.empty()) return true;  // empty conjunction
  EvalContext ctx;
  ctx.sentence = &sent;
  ctx.x = b;
  ctx.y = b;  // either variable slot resolves to the same binding
  return eval_compiled(part, ctx);
}

bool eval_compiled(const CompiledConstraint& c, const EvalContext& ctx) {
  using BOp = CompiledConstraint::BOp;
  // Constraint trees are constant-depth (paper §1.3); 64 slots is ample.
  std::array<Value, 64> stack;
  std::size_t sp = 0;
  auto push = [&](Value v) {
    assert(sp < stack.size());
    stack[sp++] = v;
  };
  auto pop = [&]() -> Value {
    assert(sp > 0);
    return stack[--sp];
  };

  const auto n = c.code.size();
  for (std::size_t pc = 0; pc < n; ++pc) {
    const auto& in = c.code[pc];
    switch (in.op) {
      case BOp::PushLab:
        push(make_int(binding_for(ctx, in.arg).rv.label));
        break;
      case BOp::PushMod:
        push(make_int(binding_for(ctx, in.arg).rv.mod));
        break;
      case BOp::PushRole:
        push(make_int(binding_for(ctx, in.arg).role));
        break;
      case BOp::PushPos:
        push(make_int(binding_for(ctx, in.arg).pos));
        break;
      case BOp::PushConst:
        push(make_int(in.arg));
        break;
      case BOp::WordAt: {
        Value p = pop();
        push((!p.valid || p.v < 1 || p.v > ctx.sentence->size())
                 ? make_invalid()
                 : make_int(p.v));
        break;
      }
      case BOp::CatOf: {
        Value w = pop();
        push(w.valid ? make_int(ctx.sentence->cat_at(w.v)) : make_invalid());
        break;
      }
      case BOp::Eq: {
        Value b = pop(), a = pop();
        push(make_bool(a.valid && b.valid && a.v == b.v));
        break;
      }
      case BOp::Gt: {
        Value b = pop(), a = pop();
        push(make_bool(a.valid && b.valid && a.v > b.v));
        break;
      }
      case BOp::Lt: {
        Value b = pop(), a = pop();
        push(make_bool(a.valid && b.valid && a.v < b.v));
        break;
      }
      case BOp::Not:
        push(make_bool(!pop().truth));
        break;
      case BOp::JmpIfFalseKeep:
        if (!stack[sp - 1].truth) {
          pc = static_cast<std::size_t>(in.arg) - 1;
        } else {
          --sp;
        }
        break;
      case BOp::JmpIfTrueKeep:
        if (stack[sp - 1].truth) {
          pc = static_cast<std::size_t>(in.arg) - 1;
        } else {
          --sp;
        }
        break;
      case BOp::IfAnte: {
        const Value ante = pop();
        if (!ante.truth) {
          push(make_bool(true));
          pc = static_cast<std::size_t>(in.arg) - 1;
        }
        break;
      }
    }
  }
  assert(sp == 1);
  return stack[0].truth;
}

}  // namespace parsec::cdg
