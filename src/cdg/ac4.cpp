#include "cdg/ac4.h"

#include <algorithm>

#include "cdg/kernels.h"
#include "obs/trace.h"

namespace parsec::cdg {

Ac4Stats filter_ac4(Network& net) {
  obs::Span span("cdg.ac4_fixpoint");
  net.build_arcs();
  Ac4Stats stats;
  NetworkArena& arena = net.arena();
  const int R = net.num_roles();
  const int D = net.domain_size();

  // counts[(role * D + rv) * R + other]: supporting 1-bits of `rv` on
  // the arc to `other` (meaningless for other == role).  Built word-
  // granularly by the shared kernel.
  auto counts = arena.support_counts();
  auto count_at = [&](int role, int rv, int other) -> std::int32_t& {
    return counts[(static_cast<std::size_t>(role) * D + rv) * R + other];
  };
  stats.initial_count_work = kernels::count_supports(arena);

  // FIFO elimination queue in arena storage.  Each (role, rv) is
  // enqueued at most once (the flag is never cleared), so the R*D pair
  // capacity needs no wrap-around.
  auto queued = arena.rv_flags();
  std::fill(queued.begin(), queued.end(), std::uint8_t{0});
  auto ring = arena.queue_storage();
  std::size_t head = 0, tail = 0;
  auto enqueue = [&](int role, int rv) {
    auto& flag = queued[static_cast<std::size_t>(role) * D + rv];
    if (flag) return;
    flag = 1;
    ring[2 * tail] = role;
    ring[2 * tail + 1] = rv;
    ++tail;
  };

  // Seed the queue with unsupported values.
  for (int role = 0; role < R; ++role) {
    net.domain(role).for_each([&](std::size_t rv) {
      for (int other = 0; other < R; ++other) {
        if (other == role) continue;
        if (count_at(role, static_cast<int>(rv), other) == 0) {
          enqueue(role, static_cast<int>(rv));
          return;
        }
      }
    });
  }

  // Propagate.
  while (head != tail) {
    const int role = ring[2 * head];
    const int rv = ring[2 * head + 1];
    ++head;
    if (!net.alive(role, rv)) continue;
    // Decrement partners *before* the elimination zeroes the rows.
    for (int other = 0; other < R; ++other) {
      if (other == role) continue;
      if (role < other) {
        // Row side: the surviving bits of rv's row *are* the supported
        // alive partners (arc bits only exist at alive×alive), so walk
        // them directly instead of probing per alive value.
        const auto m = arena.arc(role, other);
        m.row_span(static_cast<std::size_t>(rv)).for_each([&](std::size_t j) {
          ++stats.counter_decrements;
          if (--count_at(other, static_cast<int>(j), role) == 0)
            enqueue(other, static_cast<int>(j));
        });
      } else {
        // Column side: probe rv's column at each alive partner.
        const auto m = arena.arc(other, role);
        net.domain(other).for_each([&](std::size_t j) {
          if (!m.test(j, static_cast<std::size_t>(rv))) return;
          ++stats.counter_decrements;
          if (--count_at(other, static_cast<int>(j), role) == 0)
            enqueue(other, static_cast<int>(j));
        });
      }
    }
    net.eliminate(role, rv);
    ++stats.eliminations;
  }
  // The counters now reflect the fixpoint matrices for every alive
  // value; let the invariant checker verify them.
  arena.set_counts_valid(true);
  span.arg("eliminations", stats.eliminations);
  span.arg("counter_decrements", stats.counter_decrements);
  span.arg("initial_count_work", stats.initial_count_work);
  return stats;
}

}  // namespace parsec::cdg
