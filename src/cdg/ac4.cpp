#include "cdg/ac4.h"

#include <deque>

namespace parsec::cdg {

Ac4Stats filter_ac4(Network& net, Ac4Scratch* scratch) {
  net.build_arcs();
  Ac4Stats stats;
  const int R = net.num_roles();
  const int D = net.domain_size();

  Ac4Scratch local;
  Ac4Scratch& s = scratch ? *scratch : local;

  // counts[(role * D + rv) * R + other]: supporting 1-bits of `rv` on
  // the arc to `other` (meaningless for other == role).
  s.counts.assign(
      static_cast<std::size_t>(R) * static_cast<std::size_t>(D) * R, 0);
  std::vector<int>& counts = s.counts;
  auto count_at = [&](int role, int rv, int other) -> int& {
    return counts[(static_cast<std::size_t>(role) * D + rv) * R + other];
  };

  s.queue.clear();
  std::deque<std::pair<int, int>>& queue = s.queue;  // (role, rv) to eliminate
  s.queued.assign(static_cast<std::size_t>(R) * static_cast<std::size_t>(D), 0);
  std::vector<std::uint8_t>& queued = s.queued;
  auto enqueue = [&](int role, int rv) {
    auto& flag = queued[static_cast<std::size_t>(role) * D + rv];
    if (flag) return;
    flag = 1;
    queue.emplace_back(role, rv);
  };

  // Build the counters from the current matrices.
  for (int a = 0; a < R; ++a) {
    for (int b = a + 1; b < R; ++b) {
      const util::BitMatrix& m = net.arc_matrix(a, b);
      net.domain(a).for_each([&](std::size_t i) {
        net.domain(b).for_each([&](std::size_t j) {
          ++stats.initial_count_work;
          if (!m.test(i, j)) return;
          ++count_at(a, static_cast<int>(i), b);
          ++count_at(b, static_cast<int>(j), a);
        });
      });
    }
  }
  // Seed the queue with unsupported values.
  for (int role = 0; role < R; ++role) {
    net.domain(role).for_each([&](std::size_t rv) {
      for (int other = 0; other < R; ++other) {
        if (other == role) continue;
        if (count_at(role, static_cast<int>(rv), other) == 0) {
          enqueue(role, static_cast<int>(rv));
          return;
        }
      }
    });
  }

  // Propagate.
  while (!queue.empty()) {
    const auto [role, rv] = queue.front();
    queue.pop_front();
    if (!net.alive(role, rv)) continue;
    // Decrement partners *before* the elimination zeroes the rows.
    for (int other = 0; other < R; ++other) {
      if (other == role) continue;
      const util::BitMatrix& m =
          role < other ? net.arc_matrix(role, other)
                       : net.arc_matrix(other, role);
      net.domain(other).for_each([&](std::size_t j) {
        const bool bit = role < other
                             ? m.test(static_cast<std::size_t>(rv), j)
                             : m.test(j, static_cast<std::size_t>(rv));
        if (!bit) return;
        ++stats.counter_decrements;
        if (--count_at(other, static_cast<int>(j), role) == 0)
          enqueue(other, static_cast<int>(j));
      });
    }
    net.eliminate(role, rv);
    ++stats.eliminations;
  }
  return stats;
}

}  // namespace parsec::cdg
