#include "cdg/simd.h"

#include <atomic>
#include <bit>
#include <cassert>
#include <cstdlib>
#include <string>

// The vector variants use function-level target attributes, so no
// special compile flags are needed: the file builds on any x86-64
// gcc/clang and the unsupported paths are simply never dispatched.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define PARSEC_SIMD_X86 1
#include <immintrin.h>
#endif

namespace parsec::cdg::simd {

namespace {

// ---------------------------------------------------------------------
// Scalar tier: the reference semantics every wider tier must reproduce
// bit-for-bit (and the tail loop the wider tiers reuse).
// ---------------------------------------------------------------------

void sweep_row_scalar(Word* row, const Word* ax, const Word* ay,
                      const Word* cx, const Word* cy, const SweepConsts& c,
                      std::size_t lanes, std::size_t n, Word* undecided,
                      SweepStats* stats) {
  assert(lanes == 1 || lanes == kMaxLanes);
  assert(n % lanes == 0);
  const std::size_t lm = lanes - 1;
  Word any = 0;
  for (std::size_t t = 0; t < n; ++t) {
    const std::size_t b = t & lm;
    const Word r = row[t];
    const Word axw = ax[t], ayw = ay[t];
    const Word cxw = cx[t], cyw = cy[t];
    // Direction 1 (x = row value, y = partner value j): known satisfied
    // iff the antecedent is falsified by a hoisted part, or the
    // consequent is proven by both hoisted parts with no residual;
    // known violated iff the antecedent is proven and a consequent part
    // fails.  Direction 2 mirrors with the sides swapped.  The
    // branchless form folds the row-side booleans into the broadcast
    // constants (kernels.cpp::sweep_row_consts), leaving a fixed
    // 8-term expression per word — the ACU-broadcast shape.
    const Word t1 = ~ayw | c.nax[b] | (cyw & c.t1c[b]);
    const Word f1 = c.f1[b] & ayw & (~cyw | c.ncx[b]);
    const Word t2 = ~axw | c.nay[b] | (cxw & c.t2c[b]);
    const Word f2 = c.f2[b] & axw & (~cxw | c.ncy[b]);
    const Word kill = f1 | f2;
    const Word keep = t1 & t2;
    const Word und = r & ~kill & ~keep;
    row[t] = r & ~kill;
    undecided[t] = und;
    any |= und;
    stats->masked[b] += static_cast<Word>(std::popcount(r)) -
                        static_cast<Word>(std::popcount(und));
    stats->dead[b] += static_cast<Word>(std::popcount(r & kill));
  }
  stats->any_undecided |= any != 0;
}

void andn_scalar(Word* dst, const Word* src, std::size_t n) {
  for (std::size_t t = 0; t < n; ++t) dst[t] &= ~src[t];
}

void or_scalar(Word* dst, const Word* src, std::size_t n) {
  for (std::size_t t = 0; t < n; ++t) dst[t] |= src[t];
}

void and_scalar(Word* dst, const Word* src, std::size_t n) {
  for (std::size_t t = 0; t < n; ++t) dst[t] &= src[t];
}

constexpr Ops kScalarOps{sweep_row_scalar, andn_scalar, or_scalar, and_scalar};

#if defined(PARSEC_SIMD_X86)

// ---------------------------------------------------------------------
// AVX2 tier: 4 words per op; popcount via the pshufb nibble LUT folded
// with psadbw (no scalar extract in the hot loop).
// ---------------------------------------------------------------------

__attribute__((target("avx2"))) inline __m256i popcnt256(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
  const __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                      _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

struct Avx2Acc {
  __m256i masked, dead, und;
};

__attribute__((target("avx2"))) inline void sweep_vec_avx2(
    Word* row, const Word* ax, const Word* ay, const Word* cx,
    const Word* cy, Word* undecided, std::size_t t, __m256i knax,
    __m256i kt1c, __m256i kf1, __m256i kncx, __m256i knay, __m256i kt2c,
    __m256i kf2, __m256i kncy, Avx2Acc* acc) {
  const __m256i ones = _mm256_set1_epi64x(-1);
  const __m256i r = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + t));
  const __m256i axv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ax + t));
  const __m256i ayv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(ay + t));
  const __m256i cxv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cx + t));
  const __m256i cyv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cy + t));
  const __m256i nay = _mm256_xor_si256(ayv, ones);
  const __m256i nax = _mm256_xor_si256(axv, ones);
  const __m256i ncy = _mm256_xor_si256(cyv, ones);
  const __m256i ncx = _mm256_xor_si256(cxv, ones);
  const __m256i t1 = _mm256_or_si256(
      _mm256_or_si256(nay, knax), _mm256_and_si256(cyv, kt1c));
  const __m256i f1 = _mm256_and_si256(
      _mm256_and_si256(kf1, ayv), _mm256_or_si256(ncy, kncx));
  const __m256i t2 = _mm256_or_si256(
      _mm256_or_si256(nax, knay), _mm256_and_si256(cxv, kt2c));
  const __m256i f2 = _mm256_and_si256(
      _mm256_and_si256(kf2, axv), _mm256_or_si256(ncx, kncy));
  const __m256i kill = _mm256_or_si256(f1, f2);
  const __m256i keep = _mm256_and_si256(t1, t2);
  const __m256i newr = _mm256_andnot_si256(kill, r);
  const __m256i und = _mm256_andnot_si256(keep, newr);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(row + t), newr);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(undecided + t), und);
  acc->masked = _mm256_add_epi64(
      acc->masked, _mm256_sub_epi64(popcnt256(r), popcnt256(und)));
  acc->dead = _mm256_add_epi64(acc->dead,
                               popcnt256(_mm256_and_si256(r, kill)));
  acc->und = _mm256_or_si256(acc->und, und);
}

__attribute__((target("avx2"))) void sweep_row_avx2(
    Word* row, const Word* ax, const Word* ay, const Word* cx,
    const Word* cy, const SweepConsts& c, std::size_t lanes, std::size_t n,
    Word* undecided, SweepStats* stats) {
  assert(lanes == 1 || lanes == kMaxLanes);
  assert(n % lanes == 0);
  __m256i k0[8], k1[8];
  const Word* const cptr[8] = {c.nax, c.t1c, c.f1, c.ncx,
                               c.nay, c.t2c, c.f2, c.ncy};
  if (lanes == 1) {
    for (int i = 0; i < 8; ++i)
      k0[i] = k1[i] = _mm256_set1_epi64x(static_cast<long long>(cptr[i][0]));
  } else {
    for (int i = 0; i < 8; ++i) {
      k0[i] = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cptr[i]));
      k1[i] = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(cptr[i] + 4));
    }
  }
  Avx2Acc a0{_mm256_setzero_si256(), _mm256_setzero_si256(),
             _mm256_setzero_si256()};
  Avx2Acc a1 = a0;
  std::size_t t = 0;
  for (; t + 8 <= n; t += 8) {
    sweep_vec_avx2(row, ax, ay, cx, cy, undecided, t, k0[0], k0[1], k0[2],
                   k0[3], k0[4], k0[5], k0[6], k0[7], &a0);
    sweep_vec_avx2(row, ax, ay, cx, cy, undecided, t + 4, k1[0], k1[1],
                   k1[2], k1[3], k1[4], k1[5], k1[6], k1[7], &a1);
  }
  if (lanes == 1 && t + 4 <= n) {
    sweep_vec_avx2(row, ax, ay, cx, cy, undecided, t, k0[0], k0[1], k0[2],
                   k0[3], k0[4], k0[5], k0[6], k0[7], &a0);
    t += 4;
  }
  alignas(32) Word m0[4], m1[4], d0[4], d1[4], u[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(m0), a0.masked);
  _mm256_store_si256(reinterpret_cast<__m256i*>(m1), a1.masked);
  _mm256_store_si256(reinterpret_cast<__m256i*>(d0), a0.dead);
  _mm256_store_si256(reinterpret_cast<__m256i*>(d1), a1.dead);
  _mm256_store_si256(reinterpret_cast<__m256i*>(u),
                     _mm256_or_si256(a0.und, a1.und));
  if (lanes == 1) {
    stats->masked[0] += m0[0] + m0[1] + m0[2] + m0[3] + m1[0] + m1[1] +
                        m1[2] + m1[3];
    stats->dead[0] +=
        d0[0] + d0[1] + d0[2] + d0[3] + d1[0] + d1[1] + d1[2] + d1[3];
  } else {
    // Word index t%8 == vector slot: a0 carries lanes 0-3, a1 lanes 4-7.
    for (int i = 0; i < 4; ++i) {
      stats->masked[i] += m0[i];
      stats->masked[i + 4] += m1[i];
      stats->dead[i] += d0[i];
      stats->dead[i + 4] += d1[i];
    }
  }
  stats->any_undecided |= (u[0] | u[1] | u[2] | u[3]) != 0;
  if (t < n)
    sweep_row_scalar(row + t, ax + t, ay + t, cx + t, cy + t, c, 1, n - t,
                     undecided + t, stats);
}

__attribute__((target("avx2"))) void andn_avx2(Word* dst, const Word* src,
                                               std::size_t n) {
  std::size_t t = 0;
  for (; t + 4 <= n; t += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + t));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + t));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + t),
                        _mm256_andnot_si256(s, d));
  }
  for (; t < n; ++t) dst[t] &= ~src[t];
}

__attribute__((target("avx2"))) void or_avx2(Word* dst, const Word* src,
                                             std::size_t n) {
  std::size_t t = 0;
  for (; t + 4 <= n; t += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + t));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + t));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + t),
                        _mm256_or_si256(d, s));
  }
  for (; t < n; ++t) dst[t] |= src[t];
}

__attribute__((target("avx2"))) void and_avx2(Word* dst, const Word* src,
                                              std::size_t n) {
  std::size_t t = 0;
  for (; t + 4 <= n; t += 4) {
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + t));
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + t));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + t),
                        _mm256_and_si256(d, s));
  }
  for (; t < n; ++t) dst[t] &= src[t];
}

constexpr Ops kAvx2Ops{sweep_row_avx2, andn_avx2, or_avx2, and_avx2};

// ---------------------------------------------------------------------
// AVX-512 tier: 8 words per op — one vector op per batch word group —
// with native vpopcntq.  With lanes == 8 the accumulator's 64-bit
// vector lanes ARE the sentence lanes, so the per-lane stats cost
// nothing extra.
// ---------------------------------------------------------------------

#define PARSEC_TARGET_AVX512 \
  __attribute__((target("avx512f,avx512vpopcntdq")))

struct Avx512Acc {
  __m512i masked, dead, und;
};

PARSEC_TARGET_AVX512 inline void sweep_vec_avx512(
    Word* row, const Word* ax, const Word* ay, const Word* cx,
    const Word* cy, Word* undecided, std::size_t t, __m512i knax,
    __m512i kt1c, __m512i kf1, __m512i kncx, __m512i knay, __m512i kt2c,
    __m512i kf2, __m512i kncy, Avx512Acc* acc) {
  const __m512i ones = _mm512_set1_epi64(-1);
  const __m512i r = _mm512_loadu_si512(row + t);
  const __m512i axv = _mm512_loadu_si512(ax + t);
  const __m512i ayv = _mm512_loadu_si512(ay + t);
  const __m512i cxv = _mm512_loadu_si512(cx + t);
  const __m512i cyv = _mm512_loadu_si512(cy + t);
  const __m512i nay = _mm512_xor_si512(ayv, ones);
  const __m512i nax = _mm512_xor_si512(axv, ones);
  const __m512i ncy = _mm512_xor_si512(cyv, ones);
  const __m512i ncx = _mm512_xor_si512(cxv, ones);
  const __m512i t1 = _mm512_or_si512(_mm512_or_si512(nay, knax),
                                     _mm512_and_si512(cyv, kt1c));
  const __m512i f1 = _mm512_and_si512(_mm512_and_si512(kf1, ayv),
                                      _mm512_or_si512(ncy, kncx));
  const __m512i t2 = _mm512_or_si512(_mm512_or_si512(nax, knay),
                                     _mm512_and_si512(cxv, kt2c));
  const __m512i f2 = _mm512_and_si512(_mm512_and_si512(kf2, axv),
                                      _mm512_or_si512(ncx, kncy));
  const __m512i kill = _mm512_or_si512(f1, f2);
  const __m512i keep = _mm512_and_si512(t1, t2);
  const __m512i newr = _mm512_andnot_si512(kill, r);
  const __m512i und = _mm512_andnot_si512(keep, newr);
  _mm512_storeu_si512(row + t, newr);
  _mm512_storeu_si512(undecided + t, und);
  acc->masked = _mm512_add_epi64(
      acc->masked,
      _mm512_sub_epi64(_mm512_popcnt_epi64(r), _mm512_popcnt_epi64(und)));
  acc->dead = _mm512_add_epi64(
      acc->dead, _mm512_popcnt_epi64(_mm512_and_si512(r, kill)));
  acc->und = _mm512_or_si512(acc->und, und);
}

PARSEC_TARGET_AVX512 void sweep_row_avx512(
    Word* row, const Word* ax, const Word* ay, const Word* cx,
    const Word* cy, const SweepConsts& c, std::size_t lanes, std::size_t n,
    Word* undecided, SweepStats* stats) {
  assert(lanes == 1 || lanes == kMaxLanes);
  assert(n % lanes == 0);
  __m512i k[8];
  const Word* const cptr[8] = {c.nax, c.t1c, c.f1, c.ncx,
                               c.nay, c.t2c, c.f2, c.ncy};
  if (lanes == 1) {
    for (int i = 0; i < 8; ++i)
      k[i] = _mm512_set1_epi64(static_cast<long long>(cptr[i][0]));
  } else {
    for (int i = 0; i < 8; ++i) k[i] = _mm512_loadu_si512(cptr[i]);
  }
  Avx512Acc acc{_mm512_setzero_si512(), _mm512_setzero_si512(),
                _mm512_setzero_si512()};
  std::size_t t = 0;
  for (; t + 8 <= n; t += 8)
    sweep_vec_avx512(row, ax, ay, cx, cy, undecided, t, k[0], k[1], k[2],
                     k[3], k[4], k[5], k[6], k[7], &acc);
  alignas(64) Word m[8], d[8], u[8];
  _mm512_store_si512(m, acc.masked);
  _mm512_store_si512(d, acc.dead);
  _mm512_store_si512(u, acc.und);
  if (lanes == 1) {
    for (int i = 0; i < 8; ++i) {
      stats->masked[0] += m[i];
      stats->dead[0] += d[i];
    }
  } else {
    for (int i = 0; i < 8; ++i) {
      stats->masked[i] += m[i];
      stats->dead[i] += d[i];
    }
  }
  stats->any_undecided |=
      (u[0] | u[1] | u[2] | u[3] | u[4] | u[5] | u[6] | u[7]) != 0;
  if (t < n)
    sweep_row_scalar(row + t, ax + t, ay + t, cx + t, cy + t, c, 1, n - t,
                     undecided + t, stats);
}

PARSEC_TARGET_AVX512 void andn_avx512(Word* dst, const Word* src,
                                      std::size_t n) {
  std::size_t t = 0;
  for (; t + 8 <= n; t += 8)
    _mm512_storeu_si512(dst + t,
                        _mm512_andnot_si512(_mm512_loadu_si512(src + t),
                                            _mm512_loadu_si512(dst + t)));
  for (; t < n; ++t) dst[t] &= ~src[t];
}

PARSEC_TARGET_AVX512 void or_avx512(Word* dst, const Word* src,
                                    std::size_t n) {
  std::size_t t = 0;
  for (; t + 8 <= n; t += 8)
    _mm512_storeu_si512(dst + t,
                        _mm512_or_si512(_mm512_loadu_si512(dst + t),
                                        _mm512_loadu_si512(src + t)));
  for (; t < n; ++t) dst[t] |= src[t];
}

PARSEC_TARGET_AVX512 void and_avx512(Word* dst, const Word* src,
                                     std::size_t n) {
  std::size_t t = 0;
  for (; t + 8 <= n; t += 8)
    _mm512_storeu_si512(dst + t,
                        _mm512_and_si512(_mm512_loadu_si512(dst + t),
                                         _mm512_loadu_si512(src + t)));
  for (; t < n; ++t) dst[t] &= src[t];
}

constexpr Ops kAvx512Ops{sweep_row_avx512, andn_avx512, or_avx512,
                         and_avx512};

#endif  // PARSEC_SIMD_X86

const Ops* const kTables[3] = {
    &kScalarOps,
#if defined(PARSEC_SIMD_X86)
    &kAvx2Ops,
    &kAvx512Ops,
#else
    &kScalarOps,
    &kScalarOps,
#endif
};

IsaTier detect_impl() {
#if defined(PARSEC_SIMD_X86)
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512vpopcntdq"))
    return IsaTier::Avx512;
  if (__builtin_cpu_supports("avx2")) return IsaTier::Avx2;
#endif
  return IsaTier::Scalar;
}

IsaTier min_tier(IsaTier a, IsaTier b) {
  return static_cast<int>(a) < static_cast<int>(b) ? a : b;
}

/// PARSEC_SIMD environment cap; unknown or unset means "no cap".
IsaTier env_cap() {
  const char* e = std::getenv("PARSEC_SIMD");
  if (!e || !*e) return IsaTier::Avx512;
  std::string s(e);
  for (char& ch : s)
    if (ch >= 'A' && ch <= 'Z') ch = static_cast<char>(ch - 'A' + 'a');
  if (s == "off" || s == "scalar" || s == "0" || s == "none")
    return IsaTier::Scalar;
  if (s == "avx2") return IsaTier::Avx2;
  return IsaTier::Avx512;
}

IsaTier env_tier() {
  static const IsaTier t = min_tier(detect_impl(), env_cap());
  return t;
}

std::atomic<int> g_forced{-1};

}  // namespace

const char* tier_name(IsaTier t) {
  switch (t) {
    case IsaTier::Scalar:
      return "scalar";
    case IsaTier::Avx2:
      return "avx2";
    case IsaTier::Avx512:
      return "avx512";
  }
  return "scalar";
}

IsaTier detected_tier() {
  static const IsaTier t = detect_impl();
  return t;
}

IsaTier active_tier() {
  const int f = g_forced.load(std::memory_order_relaxed);
  if (f >= 0) return static_cast<IsaTier>(f);
  return env_tier();
}

void force_tier(IsaTier t) {
  g_forced.store(static_cast<int>(min_tier(t, detected_tier())),
                 std::memory_order_relaxed);
}

void clear_forced_tier() { g_forced.store(-1, std::memory_order_relaxed); }

const Ops& ops() { return *kTables[static_cast<int>(active_tier())]; }

const Ops& ops_for(IsaTier t) {
  return *kTables[static_cast<int>(min_tier(t, detected_tier()))];
}

}  // namespace parsec::cdg::simd
