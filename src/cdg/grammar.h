// The CDG grammar 5-tuple <Sigma, L, R, T, C> (paper §1.1).
//
//   Sigma — terminal symbols: lexical categories (det, noun, verb, ...)
//   L     — labels: functions words can fill (SUBJ, ROOT, DET, NP, ...)
//   R     — roles per word (governor, needs, ...)
//   T     — table restricting which labels are legal for which role
//           (optionally further restricted per lexical category, as the
//           paper's implementation does: "we also restrict labels by
//           using word category information", §1.1 fn. 1)
//   C     — the unary and binary constraints
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "cdg/constraint.h"
#include "cdg/symbols.h"
#include "cdg/types.h"

namespace parsec::cdg {

class Grammar {
 public:
  // ---- construction -------------------------------------------------
  CatId add_category(std::string_view name) { return cats_.intern(name); }
  LabelId add_label(std::string_view name) { return labels_.intern(name); }
  RoleId add_role(std::string_view name) { return roles_.intern(name); }

  /// Table T: label `l` is legal for role `r` (for every category).
  void allow_label(RoleId r, LabelId l);

  /// Category-refined T: label `l` is legal for role `r` only when the
  /// word's category is `c`.  Once any category-level entry exists for
  /// (r, l), the plain allow_label grant for that pair is superseded.
  void allow_label_for_category(RoleId r, CatId c, LabelId l);

  /// Adds a parsed constraint; it is routed to the unary or binary set
  /// by its arity.
  void add_constraint(Constraint c);

  /// Parses the constraint from the paper's s-expression syntax and adds
  /// it.  `name` is used in diagnostics and traces.
  void add_constraint_text(std::string_view name, std::string_view text);

  // ---- symbol access -------------------------------------------------
  const SymbolTable& categories() const { return cats_; }
  const SymbolTable& labels() const { return labels_; }
  const SymbolTable& roles() const { return roles_; }

  int num_categories() const { return cats_.size(); }
  int num_labels() const { return labels_.size(); }
  int num_roles() const { return roles_.size(); }

  CatId category(std::string_view name) const { return cats_.at(name); }
  LabelId label(std::string_view name) const { return labels_.at(name); }
  RoleId role(std::string_view name) const { return roles_.at(name); }

  const std::string& category_name(CatId c) const { return cats_.name(c); }
  const std::string& label_name(LabelId l) const { return labels_.name(l); }
  const std::string& role_name(RoleId r) const { return roles_.name(r); }

  // ---- table T queries ----------------------------------------------
  /// True if label `l` may appear in role `r` for a word of category `c`.
  bool label_allowed(RoleId r, CatId c, LabelId l) const;

  /// True if label `l` may appear in role `r` for any category (this is
  /// the coarse table used when building arc matrices; cf. Fig. 9, where
  /// the matrix spans all T-allowed labels regardless of word category).
  bool label_allowed_any_cat(RoleId r, LabelId l) const;

  /// Labels allowed in role `r` under the coarse table, in label-id order.
  std::vector<LabelId> labels_for_role(RoleId r) const;

  /// Maximum over roles of labels_for_role().size(); the paper's
  /// grammatical constant `l` used for PE virtualization (Fig. 13).
  int max_labels_per_role() const;

  // ---- constraints ----------------------------------------------------
  const std::vector<Constraint>& unary_constraints() const { return unary_; }
  const std::vector<Constraint>& binary_constraints() const { return binary_; }
  /// k = k_u + k_b, the paper's grammatical constant.
  int num_constraints() const {
    return static_cast<int>(unary_.size() + binary_.size());
  }

 private:
  struct TableKey {
    RoleId role;
    LabelId label;
    bool operator==(const TableKey&) const = default;
  };

  bool coarse_allowed(RoleId r, LabelId l) const;

  SymbolTable cats_, labels_, roles_;
  // T as dense boolean tables, grown on demand.
  std::vector<std::vector<bool>> role_label_;               // [role][label]
  // Category refinements: [role][cat][label]; empty vectors mean
  // "no refinement recorded".
  std::vector<std::vector<std::vector<bool>>> role_cat_label_;
  std::vector<Constraint> unary_;
  std::vector<Constraint> binary_;
};

}  // namespace parsec::cdg
