// Sequential CDG parser (paper §1.4): the O(k n^4) baseline.
//
// Pipeline: unary constraint propagation, then binary constraint
// propagation with a consistency-maintenance sweep after each binary
// constraint, then filtering to a fixpoint (or a bounded number of
// sweeps).  A sentence is accepted iff every role retains at least one
// role value; actual parses are read out with cdg/extract.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "cdg/constraint_eval.h"
#include "cdg/grammar.h"
#include "cdg/network.h"

namespace parsec::cdg {

/// Cooperative cancellation hook: polled between constraint
/// applications and filtering sweeps; returning true aborts the parse
/// (serve uses this for per-request deadlines).
using CancelFn = std::function<bool()>;

struct ParseOptions {
  /// Build arc matrices before unary propagation (MasPar design
  /// decision 1) rather than on first binary constraint.
  bool prebuild_arcs = true;
  /// Run one consistency sweep after each binary constraint (paper
  /// §1.4); turning this off defers all maintenance to filtering.
  bool consistency_after_each_binary = true;
  /// Filtering sweep bound; <0 runs to fixpoint (sequential model),
  /// the MasPar uses a small constant (design decision 5; "typically
  /// fewer than 10 filtering steps", §2.1).
  int filter_sweeps = -1;
  /// Evaluate constraints through the vectorized path (hoisted-predicate
  /// truth masks + bitwise row kernels, with bytecode-VM fallback for
  /// mask-undecided pairs).  Results are bit-identical to the plain
  /// per-pair path; turning this off restores one-VM-dispatch-per-pair
  /// evaluation (differential tests, bench_ablation_masks).
  bool use_masks = true;
};

struct ParseResult {
  bool accepted = false;        // every role nonempty after propagation
  bool cancelled = false;       // the CancelFn fired mid-parse
  int filter_sweeps_used = 0;   // sweeps that eliminated something
  std::size_t alive_role_values = 0;
  bool ambiguous = false;       // some role retains > 1 role value
  NetworkCounters counters;     // work performed on the network
};

class SequentialParser {
 public:
  explicit SequentialParser(const Grammar& g, ParseOptions opt = {});

  const Grammar& grammar() const { return *grammar_; }
  const ParseOptions& options() const { return opt_; }

  /// Builds a fresh network for `s` (honouring prebuild_arcs).
  Network make_network(const Sentence& s) const;

  /// Runs the full pipeline on `net` (which must belong to this
  /// grammar).  `cancel` (if non-empty) is polled between constraints
  /// and sweeps; when it fires the result has `cancelled = true`,
  /// `accepted = false`, and the network is left mid-propagation.
  ParseResult parse(Network& net, const CancelFn& cancel = {}) const;

  /// Convenience: network construction + parse.
  ParseResult parse_sentence(const Sentence& s) const;

  /// Lexical-category ambiguity (the paper's nodes store "the possible
  /// parts of speech"; its access function (cat w) is single-valued,
  /// DESIGN.md §5 deviation 2): tries every tagging of `words`,
  /// preferred categories first, and returns the first accepted parse.
  /// `chosen` (if non-null) receives the winning tagging; on total
  /// failure the preferred tagging's (rejected) result is returned.
  ParseResult parse_any_tagging(const Lexicon& lexicon,
                                const std::vector<std::string>& words,
                                Sentence* chosen = nullptr,
                                std::size_t tagging_limit = 64) const;

  // ---- stepwise API (golden-figure tests, examples) --------------------
  /// Applies unary constraint `idx`; returns role values eliminated.
  int step_unary(Network& net, std::size_t idx) const;
  /// Applies all unary constraints.
  int run_unary(Network& net) const;
  /// Applies binary constraint `idx` (no consistency sweep).
  int step_binary(Network& net, std::size_t idx) const;
  /// Applies all binary constraints, with per-constraint consistency
  /// sweeps when enabled.
  int run_binary(Network& net) const;

  // Factored (hoisted) forms; each element's `.full` member is the
  // plain compiled program, so existing per-constraint callers keep
  // working unchanged.
  const std::vector<FactoredConstraint>& compiled_unary() const {
    return unary_;
  }
  const std::vector<FactoredConstraint>& compiled_binary() const {
    return binary_;
  }

 private:
  const Grammar* grammar_;
  ParseOptions opt_;
  std::vector<FactoredConstraint> unary_;
  std::vector<FactoredConstraint> binary_;
};

}  // namespace parsec::cdg
